(* Deterministic workload-data generators.  Everything is rendered to
   Prolog source text so the benchmarks exercise the full pipeline (lexer,
   parser, database) exactly as a user program would. *)

module Rng = Ace_sched.Rng

let int_list ~seed ~n ~bound =
  let rng = Rng.create seed in
  Rng.int_list rng ~n ~bound

let pp_int_list xs =
  "[" ^ String.concat "," (List.map string_of_int xs) ^ "]"

(* An n×n integer matrix as a Prolog list of row lists. *)
let matrix ~seed ~n ~bound =
  let rng = Rng.create seed in
  List.init n (fun _ -> Rng.int_list rng ~n ~bound)

let transpose rows =
  match rows with
  | [] -> []
  | first :: _ ->
    List.init (List.length first) (fun i -> List.map (fun row -> List.nth row i) rows)

let pp_matrix rows =
  "[" ^ String.concat "," (List.map pp_int_list rows) ^ "]"

(* Random arithmetic expression over constructors num/1, x/0, plus/2,
   times/2, rendered as a term.  [size] is the number of internal nodes. *)
let expression ~seed ~size =
  let rng = Rng.create seed in
  let buf = Buffer.create 256 in
  let rec emit size =
    if size <= 0 then
      if Rng.bool rng then Buffer.add_string buf "x"
      else Buffer.add_string buf (Printf.sprintf "num(%d)" (Rng.int rng 10))
    else begin
      let op = if Rng.bool rng then "plus" else "times" in
      let left = Rng.int rng size in
      Buffer.add_string buf op;
      Buffer.add_char buf '(';
      emit left;
      Buffer.add_char buf ',';
      emit (size - 1 - left);
      Buffer.add_char buf ')'
    end
  in
  emit size;
  Buffer.contents buf

(* Points for the clustering benchmark, as p(X,Y) terms. *)
let points ~seed ~n ~bound =
  let rng = Rng.create seed in
  List.init n (fun _ ->
      Printf.sprintf "p(%d,%d)" (Rng.int rng bound) (Rng.int rng bound))

let pp_term_list ts = "[" ^ String.concat "," ts ^ "]"

(* Peano numeral s(s(...0)) of n. *)
let peano n =
  let rec go n acc = if n = 0 then acc else go (n - 1) ("s(" ^ acc ^ ")") in
  go n "0"

(* A balanced binary ancestry: parent(i, 2i) and parent(i, 2i+1) for
   i in [1, 2^depth). *)
let ancestry_facts ~depth =
  let buf = Buffer.create 256 in
  let limit = (1 lsl depth) - 1 in
  for i = 1 to limit do
    Buffer.add_string buf (Printf.sprintf "parent(%d,%d).\n" i (2 * i));
    Buffer.add_string buf (Printf.sprintf "parent(%d,%d).\n" i ((2 * i) + 1))
  done;
  Buffer.contents buf

(* The symbolic derivative of an expression produced by {!expression},
   mirroring the Prolog [d/2] so workload generators can compute exact
   acceptance targets.  Returned as source text. *)
let derivative expr_src =
  let module Term = Ace_term.Term in
  let module Symbol = Ace_term.Symbol in
  let sym_x = Symbol.intern "x"
  and sym_num = Symbol.intern "num"
  and sym_plus = Symbol.intern "plus"
  and sym_times = Symbol.intern "times" in
  let term = Ace_lang.Parser.term_of_string (expr_src ^ " .") in
  let rec d t =
    match Term.deref t with
    | Term.Atom s when Symbol.equal s sym_x -> Term.app "num" [ Term.Int 1 ]
    | Term.Struct (s, _) when Symbol.equal s sym_num ->
      Term.app "num" [ Term.Int 0 ]
    | Term.Struct (s, [| a; b |]) when Symbol.equal s sym_plus ->
      Term.app "plus" [ d a; d b ]
    | Term.Struct (s, [| a; b |]) when Symbol.equal s sym_times ->
      Term.app "plus" [ Term.app "times" [ d a; b ]; Term.app "times" [ a; d b ] ]
    | _ -> invalid_arg "derivative: unexpected expression"
  in
  Ace_term.Pp.to_string (d term)
