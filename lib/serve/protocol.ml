(* Line-delimited JSON framing for the query server.  Kept data-only (no
   sockets, no sessions) so the in-process oracle row and the tests can
   speak the exact wire format without a connection. *)

module Json = Ace_obs.Json

type request =
  | Query of {
      id : int;
      goal : string;
      engine : Ace_core.Engine.kind option;
      agents : int option;
      limit : int option;
      deadline_ms : int option;
    }
  | Cancel of { id : int }
  | Assert of { clause : string; front : bool }
  | Retract of { clause : string }
  | Ping
  | Stats
  | Quit

let engine_of_string = function
  | "seq" -> Ok Ace_core.Engine.Sequential
  | "and" -> Ok Ace_core.Engine.And_parallel
  | "or" -> Ok Ace_core.Engine.Or_parallel
  | "par" -> Ok Ace_core.Engine.Par_or
  | s -> Error (Printf.sprintf "unknown engine %S (seq|and|or|par)" s)

let int_field j name =
  match Json.member name j with
  | Some (Json.Num n) when Float.is_integer n -> Some (int_of_float n)
  | _ -> None

let str_field j name =
  match Json.member name j with Some (Json.Str s) -> Some s | _ -> None

let bool_field j name =
  match Json.member name j with Some (Json.Bool b) -> Some b | _ -> None

let parse_request line =
  match Json.parse line with
  | Error msg -> Error ("bad json: " ^ msg)
  | Ok j -> (
    match str_field j "op" with
    | None -> Error "missing op"
    | Some "ping" -> Ok Ping
    | Some "stats" -> Ok Stats
    | Some "quit" -> Ok Quit
    | Some "cancel" -> (
      match int_field j "id" with
      | Some id -> Ok (Cancel { id })
      | None -> Error "cancel: missing id")
    | Some "assert" -> (
      match str_field j "clause" with
      | Some clause ->
        let front = Option.value ~default:false (bool_field j "front") in
        Ok (Assert { clause; front })
      | None -> Error "assert: missing clause")
    | Some "retract" -> (
      match str_field j "clause" with
      | Some clause -> Ok (Retract { clause })
      | None -> Error "retract: missing clause")
    | Some "query" -> (
      match (int_field j "id", str_field j "goal") with
      | None, _ -> Error "query: missing id"
      | _, None -> Error "query: missing goal"
      | Some id, Some goal -> (
        match
          match str_field j "engine" with
          | None -> Ok None
          | Some s -> Result.map Option.some (engine_of_string s)
        with
        | Error msg -> Error msg
        | Ok engine ->
          Ok
            (Query
               {
                 id;
                 goal;
                 engine;
                 agents = int_field j "agents";
                 limit = int_field j "limit";
                 deadline_ms = int_field j "deadline_ms";
               })))
    | Some op -> Error (Printf.sprintf "unknown op %S" op))

type response =
  | Answer of {
      id : int;
      solutions : string list;
      cancelled : string option;
      time_ns : int;
    }
  | Failure of { id : int option; message : string }
  | Reply of (string * Json.t) list

let overloaded = "overloaded"

let print_response = function
  | Answer { id; solutions; cancelled; time_ns } ->
    Json.to_string
      (Json.Obj
         ([
            ("id", Json.int id);
            ("ok", Json.Bool true);
            ("solutions", Json.List (List.map (fun s -> Json.Str s) solutions));
            ("count", Json.int (List.length solutions));
          ]
         @ (match cancelled with
           | Some why -> [ ("cancelled", Json.Str why) ]
           | None -> [])
         @ [ ("time_ns", Json.int time_ns) ]))
  | Failure { id; message } ->
    Json.to_string
      (Json.Obj
         ((match id with Some id -> [ ("id", Json.int id) ] | None -> [])
         @ [ ("ok", Json.Bool false); ("error", Json.Str message) ]))
  | Reply fields -> Json.to_string (Json.Obj (("ok", Json.Bool true) :: fields))
