(** One tenant's view of a prepared program: a private assert/retract
    overlay over the shared frozen base, plus the cancel tokens of its
    in-flight queries.

    Queries, asserts and retracts of one session serialize on an
    internal lock (the overlay is single-writer); different sessions
    run fully concurrently against the shared base.  {!cancel} and
    {!cancel_all} take effect mid-query from any thread. *)

type t

(** [create ?engine ?config prepared] — [engine] (default
    [Sequential]) and [config] (default {!Ace_machine.Config.default}
    with [compile] on) are the session's defaults; each query may
    override them. *)
val create :
  ?engine:Ace_core.Engine.kind -> ?config:Ace_machine.Config.t ->
  Ace_core.Engine.prepared -> t

(** The session's overlay database (for tests and introspection). *)
val db : t -> Ace_lang.Database.t

type answer = {
  solutions : string list;  (** printed instantiated goals, discovery order *)
  terms : Ace_term.Term.t list;  (** the same solutions, unprinted *)
  cancelled : Ace_core.Cancel.reason option;
  time_ns : int;  (** wall clock, parse to answer *)
}

(** Parses and runs one goal.  [id] registers the query for {!cancel};
    [deadline_ms] arms the cancel token's wall-clock deadline.  Engine
    errors (unknown predicate, arithmetic, parse) come back as
    [Error msg] — they never tear down the session. *)
val query :
  ?id:int ->
  ?engine:Ace_core.Engine.kind ->
  ?agents:int ->
  ?limit:int ->
  ?deadline_ms:int ->
  t ->
  string ->
  (answer, string) result

(** Fires the cancel token of in-flight query [id]; false when no such
    query is running. *)
val cancel : t -> int -> bool

(** Fires every in-flight query's token (server drain). *)
val cancel_all : t -> unit

(** Number of queries currently in flight. *)
val inflight : t -> int

(** Asserts one clause into the session overlay ([front] = [asserta]). *)
val assert_clause : ?front:bool -> t -> string -> (unit, string) result

(** Retracts the first overlay-view clause unifying with the pattern;
    [Ok false] when none matches. *)
val retract_clause : t -> string -> (bool, string) result
