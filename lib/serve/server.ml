(* Socket front end: listener + per-connection readers + a worker pool
   behind active-work-count admission control.

   Locking order and signal safety: [qlock] guards the job queue and
   counters, [clock] guards the connection list.  [drain] must be safe
   to call from a signal handler, so it only flips an atomic and spawns
   a helper thread — the helper does the lock-taking work (broadcast,
   cancel tokens).  The listener polls the drain flag with a short
   [select] timeout instead of relying on being woken out of [accept]. *)

module Engine = Ace_core.Engine

type conn = {
  c_fd : Unix.file_descr;
  c_ic : in_channel;
  c_oc : out_channel;
  c_wlock : Mutex.t; (* one response line at a time *)
  c_session : Session.t;
  mutable c_closed : bool; (* guarded by the server's [clock] *)
}

type job = {
  j_conn : conn;
  j_id : int;
  j_goal : string;
  j_engine : Engine.kind option;
  j_agents : int option;
  j_limit : int option;
  j_deadline_ms : int option;
}

type t = {
  prepared : Engine.prepared;
  engine : Engine.kind;
  config : Ace_machine.Config.t;
  listen_fd : Unix.file_descr;
  max_active : int;
  draining : bool Atomic.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  queue : job Queue.t; (* guarded by [qlock] *)
  mutable active : int; (* admitted (queued or running); guarded by [qlock] *)
  mutable served : int;
  mutable rejected : int;
  clock : Mutex.t;
  mutable conns : conn list; (* guarded by [clock] *)
  mutable rthreads : Thread.t list; (* reader threads; guarded by [clock] *)
  mutable core_threads : Thread.t list; (* listener + workers *)
}

type stats = { active : int; served : int; rejected : int; connections : int }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let stats srv =
  let active, served, rejected =
    with_lock srv.qlock (fun () -> (srv.active, srv.served, srv.rejected))
  in
  let connections =
    with_lock srv.clock (fun () ->
        List.length (List.filter (fun c -> not c.c_closed) srv.conns))
  in
  { active; served; rejected; connections }

(* A dead peer must not take the worker down with it: the query already
   ran; the response is simply lost with the connection. *)
let send conn line =
  with_lock conn.c_wlock (fun () ->
      try
        output_string conn.c_oc line;
        output_char conn.c_oc '\n';
        flush conn.c_oc
      with Sys_error _ | Unix.Unix_error _ -> ())

let close_conn srv conn =
  let do_close =
    with_lock srv.clock (fun () ->
        if conn.c_closed then false
        else begin
          conn.c_closed <- true;
          srv.conns <- List.filter (fun c -> c != conn) srv.conns;
          true
        end)
  in
  if do_close then begin
    (try Unix.shutdown conn.c_fd Unix.SHUTDOWN_ALL
     with Unix.Unix_error _ -> ());
    try Unix.close conn.c_fd with Unix.Unix_error _ -> ()
  end

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let reply_stats srv =
  let s = stats srv in
  Protocol.Reply
    [
      ("active", Ace_obs.Json.int s.active);
      ("served", Ace_obs.Json.int s.served);
      ("rejected", Ace_obs.Json.int s.rejected);
      ("connections", Ace_obs.Json.int s.connections);
    ]

let admit srv job =
  with_lock srv.qlock (fun () ->
      if Atomic.get srv.draining then Error "draining"
      else if srv.active >= srv.max_active then begin
        srv.rejected <- srv.rejected + 1;
        Error Protocol.overloaded
      end
      else begin
        srv.active <- srv.active + 1;
        Queue.push job srv.queue;
        Condition.signal srv.qcond;
        Ok ()
      end)

(* Returns false when the connection should close. *)
let handle_request srv conn req =
  let respond r = send conn (Protocol.print_response r) in
  match req with
  | Protocol.Ping ->
    respond (Protocol.Reply [ ("pong", Ace_obs.Json.Bool true) ]);
    true
  | Protocol.Stats ->
    respond (reply_stats srv);
    true
  | Protocol.Quit ->
    respond (Protocol.Reply [ ("bye", Ace_obs.Json.Bool true) ]);
    false
  | Protocol.Cancel { id } ->
    let hit = Session.cancel conn.c_session id in
    respond (Protocol.Reply [ ("cancelled", Ace_obs.Json.Bool hit) ]);
    true
  | Protocol.Assert { clause; front } ->
    (match Session.assert_clause ~front conn.c_session clause with
    | Ok () -> respond (Protocol.Reply [])
    | Error message -> respond (Protocol.Failure { id = None; message }));
    true
  | Protocol.Retract { clause } ->
    (match Session.retract_clause conn.c_session clause with
    | Ok removed ->
      respond (Protocol.Reply [ ("removed", Ace_obs.Json.Bool removed) ])
    | Error message -> respond (Protocol.Failure { id = None; message }));
    true
  | Protocol.Query { id; goal; engine; agents; limit; deadline_ms } ->
    (match
       admit srv
         {
           j_conn = conn;
           j_id = id;
           j_goal = goal;
           j_engine = engine;
           j_agents = agents;
           j_limit = limit;
           j_deadline_ms = deadline_ms;
         }
     with
    | Ok () -> ()
    | Error message -> respond (Protocol.Failure { id = Some id; message }));
    true

let reader srv conn () =
  let rec loop () =
    match input_line conn.c_ic with
    | exception (End_of_file | Sys_error _ | Unix.Unix_error _) -> ()
    | "" -> loop ()
    | line -> (
      match Protocol.parse_request line with
      | Error message ->
        send conn
          (Protocol.print_response (Protocol.Failure { id = None; message }));
        loop ()
      | Ok req -> if handle_request srv conn req then loop ())
  in
  loop ();
  (* the peer is gone (or sent quit): abort its in-flight queries *)
  Session.cancel_all conn.c_session;
  close_conn srv conn

(* ------------------------------------------------------------------ *)
(* Worker pool                                                         *)
(* ------------------------------------------------------------------ *)

let run_job srv job =
  let response =
    (* a drain between admission and execution refuses the job like
       admission would have — drain time stays bounded by the queries
       already running, whose tokens are fired *)
    if Atomic.get srv.draining then
      Protocol.Failure { id = Some job.j_id; message = "draining" }
    else
      match
        Session.query ~id:job.j_id ?engine:job.j_engine ?agents:job.j_agents
          ?limit:job.j_limit ?deadline_ms:job.j_deadline_ms job.j_conn.c_session
          job.j_goal
      with
      | Ok a ->
        Protocol.Answer
          {
            id = job.j_id;
            solutions = a.Session.solutions;
            cancelled =
              Option.map Ace_core.Cancel.reason_to_string a.Session.cancelled;
            time_ns = a.Session.time_ns;
          }
      | Error message -> Protocol.Failure { id = Some job.j_id; message }
  in
  (* counters first: a client that has read its answer must see it
     reflected in an immediately following stats reply *)
  with_lock srv.qlock (fun () ->
      srv.active <- srv.active - 1;
      srv.served <- srv.served + 1);
  send job.j_conn (Protocol.print_response response)

let worker srv () =
  let rec loop () =
    let job =
      with_lock srv.qlock (fun () ->
          let rec next () =
            if not (Queue.is_empty srv.queue) then Some (Queue.pop srv.queue)
            else if Atomic.get srv.draining then None
            else begin
              Condition.wait srv.qcond srv.qlock;
              next ()
            end
          in
          next ())
    in
    match job with
    | Some job ->
      run_job srv job;
      loop ()
    | None -> ()
  in
  loop ()

(* ------------------------------------------------------------------ *)
(* Listener                                                            *)
(* ------------------------------------------------------------------ *)

let accept_conn srv fd =
  let conn =
    {
      c_fd = fd;
      c_ic = Unix.in_channel_of_descr fd;
      c_oc = Unix.out_channel_of_descr fd;
      c_wlock = Mutex.create ();
      c_session = Session.create ~engine:srv.engine ~config:srv.config srv.prepared;
      c_closed = false;
    }
  in
  let th = Thread.create (reader srv conn) () in
  with_lock srv.clock (fun () ->
      srv.conns <- conn :: srv.conns;
      srv.rthreads <- th :: srv.rthreads)

let listener srv () =
  let rec loop () =
    if Atomic.get srv.draining then ()
    else begin
      (match Unix.select [ srv.listen_fd ] [] [] 0.2 with
      | [ _ ], _, _ -> (
        match Unix.accept srv.listen_fd with
        | fd, _ -> accept_conn srv fd
        | exception Unix.Unix_error _ -> ())
      | _ -> ()
      | exception Unix.Unix_error _ -> Thread.delay 0.05);
      loop ()
    end
  in
  loop ();
  try Unix.close srv.listen_fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Lifecycle                                                           *)
(* ------------------------------------------------------------------ *)

let create ?(workers = 4) ?max_active ?(engine = Engine.Sequential)
    ?(config = { Ace_machine.Config.default with compile = true })
    ~listen prepared =
  let max_active = Option.value ~default:(2 * workers) max_active in
  if workers < 1 then invalid_arg "Server.create: workers < 1";
  if max_active < 1 then invalid_arg "Server.create: max_active < 1";
  (* a worker writing to a connection the peer abandoned must get EPIPE
     as an exception path, not a process-killing signal *)
  (try ignore (Sys.signal Sys.sigpipe Sys.Signal_ignore)
   with Invalid_argument _ | Sys_error _ -> ());
  let domain =
    match listen with
    | Unix.ADDR_UNIX path ->
      (try if Sys.file_exists path then Unix.unlink path
       with Sys_error _ | Unix.Unix_error _ -> ());
      Unix.PF_UNIX
    | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let listen_fd = Unix.socket domain Unix.SOCK_STREAM 0 in
  (match listen with
  | Unix.ADDR_INET _ -> Unix.setsockopt listen_fd Unix.SO_REUSEADDR true
  | Unix.ADDR_UNIX _ -> ());
  Unix.bind listen_fd listen;
  Unix.listen listen_fd 64;
  let srv =
    {
      prepared;
      engine;
      config;
      listen_fd;
      max_active;
      draining = Atomic.make false;
      qlock = Mutex.create ();
      qcond = Condition.create ();
      queue = Queue.create ();
      active = 0;
      served = 0;
      rejected = 0;
      clock = Mutex.create ();
      conns = [];
      rthreads = [];
      core_threads = [];
    }
  in
  let ths =
    Thread.create (listener srv) ()
    :: List.init workers (fun _ -> Thread.create (worker srv) ())
  in
  srv.core_threads <- ths;
  srv

let drain srv =
  if not (Atomic.exchange srv.draining true) then
    (* from a signal handler: no locks here — the helper thread takes
       them *)
    ignore
      (Thread.create
         (fun () ->
           with_lock srv.qlock (fun () -> Condition.broadcast srv.qcond);
           let conns = with_lock srv.clock (fun () -> srv.conns) in
           List.iter (fun c -> Session.cancel_all c.c_session) conns)
         ())

let wait srv =
  List.iter Thread.join srv.core_threads;
  (* workers are done: wake the readers (EOF) and join them *)
  let conns = with_lock srv.clock (fun () -> srv.conns) in
  List.iter
    (fun c ->
      try Unix.shutdown c.c_fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())
    conns;
  let rec drain_readers () =
    let ths =
      with_lock srv.clock (fun () ->
          let ths = srv.rthreads in
          srv.rthreads <- [];
          ths)
    in
    match ths with
    | [] -> ()
    | ths ->
      List.iter Thread.join ths;
      drain_readers ()
  in
  drain_readers ()
