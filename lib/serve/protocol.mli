(** The ace_serve wire protocol: one JSON object per line, both ways.

    Requests:
    {v
    {"op":"query","id":1,"goal":"path(a,X)","engine":"par",
     "agents":4,"limit":10,"deadline_ms":500}
    {"op":"cancel","id":1}
    {"op":"assert","clause":"edge(x,y)","front":false}
    {"op":"retract","clause":"edge(x,y)"}
    {"op":"ping"}   {"op":"stats"}   {"op":"quit"}
    v}

    Responses (every request gets exactly one):
    {v
    {"id":1,"ok":true,"solutions":["path(a,b)"],"count":1,
     "cancelled":"deadline","time_ns":12345}
    {"id":1,"ok":false,"error":"overloaded"}
    {"ok":true,"pong":true}
    v}

    [cancelled] is absent from completed queries; [solutions] of a
    cancelled query are the ones completed before the abort.  The
    [error] string ["overloaded"] is the admission-control backpressure
    signal — the client should back off and retry. *)

type request =
  | Query of {
      id : int;  (** client-chosen; echoed back, names the query to [Cancel] *)
      goal : string;
      engine : Ace_core.Engine.kind option;  (** server default when absent *)
      agents : int option;
      limit : int option;
      deadline_ms : int option;
    }
  | Cancel of { id : int }
  | Assert of { clause : string; front : bool }
  | Retract of { clause : string }
  | Ping
  | Stats
  | Quit

(** Parses one request line. *)
val parse_request : string -> (request, string) result

val engine_of_string : string -> (Ace_core.Engine.kind, string) result

type response =
  | Answer of {
      id : int;
      solutions : string list;
      cancelled : string option;
      time_ns : int;
    }
  | Failure of { id : int option; message : string }
  | Reply of (string * Ace_obs.Json.t) list
      (** generic [{"ok":true, ...fields}] for the non-query ops *)

(** One line, without the trailing newline. *)
val print_response : response -> string

(** The backpressure error message. *)
val overloaded : string
