module Engine = Ace_core.Engine
module Cancel = Ace_core.Cancel
module Config = Ace_machine.Config
module Database = Ace_lang.Database
module Program = Ace_lang.Program
module Clause = Ace_lang.Clause

type t = {
  prepared : Engine.prepared;
  sdb : Database.t; (* the session's overlay *)
  engine : Engine.kind;
  config : Config.t;
  run_lock : Mutex.t;
    (* serializes this session's queries and overlay mutations: the
       overlay is single-writer and engines must not read it mid-assert *)
  inflight : (int, Cancel.t) Hashtbl.t; (* guarded by [ilock], not [run_lock] *)
  ilock : Mutex.t;
}

let create ?(engine = Engine.Sequential)
    ?(config = { Config.default with compile = true }) prepared =
  {
    prepared;
    sdb = Engine.session prepared;
    engine;
    config;
    run_lock = Mutex.create ();
    inflight = Hashtbl.create 8;
    ilock = Mutex.create ();
  }

let db s = s.sdb

type answer = {
  solutions : string list;
  terms : Ace_term.Term.t list;
  cancelled : Cancel.reason option;
  time_ns : int;
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let register s id token =
  match id with
  | None -> ()
  | Some id -> with_lock s.ilock (fun () -> Hashtbl.replace s.inflight id token)

let unregister s id =
  match id with
  | None -> ()
  | Some id -> with_lock s.ilock (fun () -> Hashtbl.remove s.inflight id)

let cancel s id =
  with_lock s.ilock (fun () ->
      match Hashtbl.find_opt s.inflight id with
      | Some token ->
        Cancel.cancel token;
        true
      | None -> false)

let cancel_all s =
  with_lock s.ilock (fun () ->
      Hashtbl.iter (fun _ token -> Cancel.cancel token) s.inflight)

let inflight s = with_lock s.ilock (fun () -> Hashtbl.length s.inflight)

let term_to_string t = Format.asprintf "%a" Ace_term.Pp.pp t

(* Anything a bad goal or a bad program can raise must come back as a
   protocol error, not kill the worker thread serving the session. *)
let guard f =
  match f () with
  | v -> Ok v
  | exception Program.Error msg -> Error msg
  | exception Ace_core.Errors.Engine_error msg -> Error msg
  | exception Ace_term.Arith.Error msg -> Error ("arithmetic error: " ^ msg)
  | exception Clause.Malformed msg -> Error ("malformed clause: " ^ msg)
  | exception Ace_lang.Parser.Error (msg, _) -> Error ("parse error: " ^ msg)
  | exception Invalid_argument msg -> Error msg

let query ?id ?engine ?agents ?limit ?deadline_ms s goal_text =
  let t0 = Unix.gettimeofday () in
  match guard (fun () -> Program.parse_query goal_text) with
  | Error _ as e -> e
  | Ok q ->
    let kind = Option.value ~default:s.engine engine in
    let config =
      {
        s.config with
        Config.agents = Option.value ~default:s.config.Config.agents agents;
        max_solutions =
          (match limit with
          | Some _ -> limit
          | None -> s.config.Config.max_solutions);
      }
    in
    let token = Cancel.create ?deadline_ms () in
    register s id token;
    Fun.protect
      ~finally:(fun () -> unregister s id)
      (fun () ->
        with_lock s.run_lock (fun () ->
            guard (fun () ->
                let r =
                  Engine.run ~cancel:token ~session:s.sdb kind config
                    s.prepared q.Program.goal
                in
                {
                  solutions = List.map term_to_string r.Engine.solutions;
                  terms = r.Engine.solutions;
                  cancelled = r.Engine.cancelled;
                  time_ns =
                    int_of_float ((Unix.gettimeofday () -. t0) *. 1e9);
                })))

(* Clause text: the final '.' is optional, as for queries. *)
let parse_clause text =
  let text = String.trim text in
  let text =
    if String.length text > 0 && text.[String.length text - 1] = '.' then text
    else text ^ "."
  in
  Clause.of_term (Ace_lang.Parser.term_of_string text)

let assert_clause ?(front = false) s text =
  guard (fun () ->
      let clause = parse_clause text in
      with_lock s.run_lock (fun () ->
          if front then Database.asserta s.sdb clause
          else Database.assertz s.sdb clause))

let retract_clause s text =
  guard (fun () ->
      let pattern = parse_clause text in
      with_lock s.run_lock (fun () -> Database.retract s.sdb pattern))
