(** The multi-tenant query server.

    One listener thread accepts connections; each connection gets a
    reader thread and its own {!Session.t} (private overlay, shared
    frozen base).  Control ops (ping, cancel, assert, retract, stats)
    are answered on the reader thread; queries go through admission
    control into a bounded active-work pool drained by [workers]
    worker threads — the ACL2-parallel-style throttle: when
    [max_active] queries are already admitted (queued or running), new
    ones are refused with the ["overloaded"] backpressure error
    instead of queueing without bound.

    {!drain} (wired to SIGTERM/SIGINT by [ace_serve]) stops accepting,
    refuses new queries, fires the cancel token of every in-flight
    query, and lets the workers finish; {!wait} joins everything. *)

type t

type stats = {
  active : int;  (** queries admitted and not yet answered *)
  served : int;  (** queries answered (including cancelled ones) *)
  rejected : int;  (** queries refused by admission control *)
  connections : int;  (** currently open connections *)
}

(** [create ~listen prepared] binds and listens on [listen] (Unix or
    TCP sockaddr).  [workers] (default 4) sizes the query pool;
    [max_active] (default [2 * workers]) is the admission-control
    bound; [engine]/[config] are the per-session defaults (see
    {!Session.create}).  Threads start immediately. *)
val create :
  ?workers:int ->
  ?max_active:int ->
  ?engine:Ace_core.Engine.kind ->
  ?config:Ace_machine.Config.t ->
  listen:Unix.sockaddr ->
  Ace_core.Engine.prepared ->
  t

val stats : t -> stats

(** Graceful shutdown: stop accepting, refuse new work, cancel
    in-flight queries.  Idempotent, safe from a signal handler's
    deferred context or any thread. *)
val drain : t -> unit

(** Blocks until the listener, workers and connection readers have all
    exited (after {!drain}, or a client sent [quit] to a server whose
    listener already stopped). *)
val wait : t -> unit
