(** Operator-aware term printing.  Printed output re-parses (via
    [ace_lang]) to an equal term, which the test suite checks by
    property. *)

val pp : Format.formatter -> Term.t -> unit

val to_string : Term.t -> string

(** Alpha-invariant rendering: unbound variables are numbered by first
    occurrence, so alpha-equivalent terms (e.g. the same solution copied by
    different engines) print identically.  Temporarily mutates the term's
    variable bindings — not safe concurrently with other users of [t]. *)
val to_canonical_string : Term.t -> string

(** Prints a single atom, quoting when lexically required. *)
val pp_atom : Format.formatter -> string -> unit

(** Canonical display name of an unbound variable ([_G<id>]). *)
val pp_var : Format.formatter -> Term.var -> unit
