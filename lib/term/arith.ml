(* Evaluation of Prolog arithmetic expressions (the right-hand side of
   [is/2] and the operands of arithmetic comparisons).

   Operators dispatch through tables keyed on interned symbol ids — the
   operator name is resolved to a string only to build an error message. *)

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let unary : (int, int -> int) Hashtbl.t = Hashtbl.create 16

let binary : (int, int -> int -> int) Hashtbl.t = Hashtbl.create 32

let comparison : (int, int -> int -> bool) Hashtbl.t = Hashtbl.create 8

let def table name f = Hashtbl.replace table (Symbol.id (Symbol.intern name)) f

let () =
  def unary "-" (fun x -> -x);
  def unary "+" (fun x -> x);
  def unary "abs" abs;
  def unary "sign" (fun x -> Stdlib.compare x 0);
  def unary "msb" (fun x ->
      if x <= 0 then error "msb: argument must be positive"
      else
        let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
        go x 0);
  def binary "+" ( + );
  def binary "-" ( - );
  def binary "*" ( * );
  let int_div x y = if y = 0 then error "division by zero" else x / y in
  def binary "//" int_div;
  def binary "div" int_div;
  def binary "/" (fun x y ->
      if y = 0 then error "division by zero"
      else if x mod y <> 0 then error "(/)/2: non-integral result %d/%d" x y
      else x / y);
  def binary "mod" (fun x y ->
      if y = 0 then error "mod by zero"
      else
        let r = x mod y in
        if (r < 0 && y > 0) || (r > 0 && y < 0) then r + y else r);
  def binary "rem" (fun x y -> if y = 0 then error "rem by zero" else x mod y);
  def binary "min" min;
  def binary "max" max;
  def binary ">>" ( asr );
  def binary "<<" ( lsl );
  def binary "gcd" (fun x y ->
      let rec gcd a b = if b = 0 then abs a else gcd b (a mod b) in
      gcd x y);
  def binary "^" (fun x y ->
      if y < 0 then error "(^)/2: negative exponent"
      else
        let rec pow b e acc =
          if e = 0 then acc
          else pow (b * b) (e / 2) (if e land 1 = 1 then acc * b else acc)
        in
        pow x y 1);
  def comparison "<" ( < );
  def comparison ">" ( > );
  def comparison "=<" ( <= );
  def comparison ">=" ( >= );
  def comparison "=:=" ( = );
  def comparison "=\\=" ( <> )

let random = Symbol.intern "random"

let rec eval t =
  match Term.deref t with
  | Term.Int n -> n
  | Term.Var _ -> error "arithmetic: unbound variable"
  | Term.Atom a when Symbol.equal a random ->
    error "arithmetic: random/0 unsupported (nondeterministic)"
  | Term.Atom a -> error "arithmetic: unknown constant %s" (Symbol.name a)
  | Term.Struct (op, [| x |]) -> (
    match Hashtbl.find_opt unary (Symbol.id op) with
    | Some f -> f (eval x)
    | None -> error "arithmetic: unknown operator %s/1" (Symbol.name op))
  | Term.Struct (op, [| x; y |]) -> (
    match Hashtbl.find_opt binary (Symbol.id op) with
    | Some f ->
      let x = eval x in
      f x (eval y)
    | None -> error "arithmetic: unknown operator %s/2" (Symbol.name op))
  | Term.Struct (op, args) ->
    error "arithmetic: unknown operator %s/%d" (Symbol.name op)
      (Array.length args)

let compare_op op x y =
  match Hashtbl.find_opt comparison (Symbol.id op) with
  | Some f -> f x y
  | None -> error "arithmetic: unknown comparison %s" (Symbol.name op)

(* Operator lookups for the compiled-body fast path, which evaluates
   put descriptors directly instead of building the expression term
   (lib/core/builtins.ml). *)
let unary_op sym = Hashtbl.find_opt unary (Symbol.id sym)
let binary_op sym = Hashtbl.find_opt binary (Symbol.id sym)
let comparison_op sym = Hashtbl.find_opt comparison (Symbol.id sym)
