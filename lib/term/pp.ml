(* Operator-aware pretty-printing of terms.

   The printer carries its own table of the standard operators (mirroring
   the parser's table in [ace_lang]); printing an operator term emits infix
   syntax with parentheses driven by priorities, so that printed terms
   re-parse to the same term.

   This is the one layer where symbols resolve back to strings: the tables
   are keyed on symbol ids, and [Symbol.name] is called only on the atoms
   actually printed. *)

type assoc = Xfx | Xfy | Yfx

let infix_ops : (int, int * assoc) Hashtbl.t =
  let t = Hashtbl.create 32 in
  List.iter
    (fun (name, prio, assoc) ->
      Hashtbl.replace t (Symbol.id (Symbol.intern name)) (prio, assoc))
    [ (":-", 1200, Xfx);
      ("-->", 1200, Xfx);
      (";", 1100, Xfy);
      ("->", 1050, Xfy);
      (",", 1000, Xfy);
      ("&", 950, Xfy);
      ("=", 700, Xfx);
      ("\\=", 700, Xfx);
      ("==", 700, Xfx);
      ("\\==", 700, Xfx);
      ("is", 700, Xfx);
      ("<", 700, Xfx);
      (">", 700, Xfx);
      ("=<", 700, Xfx);
      (">=", 700, Xfx);
      ("=:=", 700, Xfx);
      ("=\\=", 700, Xfx);
      ("@<", 700, Xfx);
      ("@>", 700, Xfx);
      ("@=<", 700, Xfx);
      ("@>=", 700, Xfx);
      ("+", 500, Yfx);
      ("-", 500, Yfx);
      ("*", 400, Yfx);
      ("/", 400, Yfx);
      ("//", 400, Yfx);
      ("mod", 400, Yfx);
      ("rem", 400, Yfx);
      ("div", 400, Yfx);
      (">>", 400, Yfx);
      ("<<", 400, Yfx);
      ("^", 200, Xfy) ];
  t

let prefix_ops : (int, int) Hashtbl.t =
  let t = Hashtbl.create 4 in
  List.iter
    (fun (name, prio) -> Hashtbl.replace t (Symbol.id (Symbol.intern name)) prio)
    [ ("-", 200); ("\\+", 900); ("?-", 1200); (":-", 1200) ];
  t

let is_letter_atom name =
  String.length name > 0
  && (match name.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let is_symbolic_atom name =
  String.length name > 0
  && String.for_all
       (fun c -> String.contains "+-*/\\^<>=~:.?@#&$" c)
       name

let atom_needs_quotes name =
  (* "." alone would lex as the end-of-clause dot *)
  String.equal name "."
  || (not (is_letter_atom name || is_symbolic_atom name)
      && not (List.mem name [ "[]"; "!"; ";"; "{}" ]))

let pp_atom ppf name =
  if atom_needs_quotes name then begin
    let buf = Buffer.create (String.length name + 2) in
    Buffer.add_char buf '\'';
    String.iter
      (fun c ->
        match c with
        | '\'' -> Buffer.add_string buf "\\'"
        | '\\' -> Buffer.add_string buf "\\\\"
        | '\n' -> Buffer.add_string buf "\\n"
        | c -> Buffer.add_char buf c)
      name;
    Buffer.add_char buf '\'';
    Format.pp_print_string ppf (Buffer.contents buf)
  end
  else Format.pp_print_string ppf name

let pp_var ppf (v : Term.var) = Format.fprintf ppf "_G%d" v.Term.vid

(* [max_prio] is the highest operator priority printable without
   parentheses in the current context. *)
let rec pp_prio max_prio ppf t =
  match Term.deref t with
  | Term.Var v -> pp_var ppf v
  | Term.Int n ->
    if n < 0 && max_prio < 200 then Format.fprintf ppf "(%d)" n
    else Format.pp_print_int ppf n
  | Term.Atom s -> pp_atom ppf (Symbol.name s)
  | Term.Struct (s, [| _; _ |]) as t when Symbol.equal s Symbol.dot ->
    pp_list ppf t
  | Term.Struct (s, [| x; y |]) when Hashtbl.mem infix_ops (Symbol.id s) ->
    let prio, assoc = Hashtbl.find infix_ops (Symbol.id s) in
    let name = Symbol.name s in
    let lp, rp =
      match assoc with
      | Xfx -> (prio - 1, prio - 1)
      | Xfy -> (prio - 1, prio)
      | Yfx -> (prio, prio - 1)
    in
    let body ppf () =
      if Symbol.equal s Symbol.comma then
        Format.fprintf ppf "%a%s@ %a" (pp_prio lp) x name (pp_prio rp) y
      else
        Format.fprintf ppf "%a %s@ %a" (pp_prio lp) x name (pp_prio rp) y
    in
    if prio > max_prio then Format.fprintf ppf "@[<hov 1>(%a)@]" body ()
    else Format.fprintf ppf "@[<hov 2>%a@]" body ()
  | Term.Struct (s, [| x |]) when Hashtbl.mem prefix_ops (Symbol.id s) ->
    let prio = Hashtbl.find prefix_ops (Symbol.id s) in
    let body ppf () =
      Format.fprintf ppf "%s %a" (Symbol.name s) (pp_prio prio) x
    in
    if prio > max_prio then Format.fprintf ppf "(%a)" body ()
    else body ppf ()
  | Term.Struct (s, args) ->
    Format.fprintf ppf "@[<hov 2>%a(%a)@]" pp_atom (Symbol.name s)
      (Format.pp_print_array
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
         (pp_prio 999))
      args

and pp_list ppf t =
  let rec tail ppf t =
    match Term.deref t with
    | Term.Atom s when Symbol.equal s Symbol.nil -> ()
    | Term.Struct (s, [| h; tl |]) when Symbol.equal s Symbol.dot ->
      Format.fprintf ppf ",%a%a" (pp_prio 999) h tail tl
    | rest -> Format.fprintf ppf "|%a" (pp_prio 999) rest
  in
  match Term.deref t with
  | Term.Struct (s, [| h; tl |]) when Symbol.equal s Symbol.dot ->
    Format.fprintf ppf "@[<hov 1>[%a%a]@]" (pp_prio 999) h tail tl
  | t -> pp_prio 1200 ppf t

let pp ppf t = pp_prio 1200 ppf t

(* Single-line rendering: [to_string] output is used for comparisons and
   re-parsing, where the pretty-printer's line breaks would only get in
   the way. *)
let to_string t =
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Format.pp_set_margin ppf 1_000_000;
  pp ppf t;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

(* Alpha-invariant rendering: unbound variables are numbered by first
   occurrence, so two alpha-equivalent terms print identically regardless
   of their variable ids.  Engines produce solution copies with fresh
   (engine-dependent) variables; this is the form to compare across
   engines.  Implemented by temporarily binding each variable to a marker
   atom, so it must not run concurrently with other users of the term.
   The marker atoms are interned (once per distinct index, globally). *)
let to_canonical_string t =
  let vars = Term.variables t in
  List.iteri
    (fun i (v : Term.var) ->
      v.Term.binding <- Some (Term.atom (Printf.sprintf "_V%d" i)))
    vars;
  Fun.protect
    ~finally:(fun () ->
      List.iter (fun (v : Term.var) -> v.Term.binding <- None) vars)
    (fun () -> to_string t)
