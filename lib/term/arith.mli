(** Integer arithmetic over terms, as used by [is/2] and the comparison
    builtins.  Operators dispatch on interned symbol ids. *)

exception Error of string

(** Evaluates an arithmetic expression; raises {!Error} on unbound
    variables, unknown functors, division by zero, or non-integral
    division. *)
val eval : Term.t -> int

(** [compare_op op x y] applies one of [< > =< >= =:= =\=] (by symbol). *)
val compare_op : Symbol.t -> int -> int -> bool
