(** Integer arithmetic over terms, as used by [is/2] and the comparison
    builtins.  Operators dispatch on interned symbol ids. *)

exception Error of string

(** Evaluates an arithmetic expression; raises {!Error} on unbound
    variables, unknown functors, division by zero, or non-integral
    division. *)
val eval : Term.t -> int

(** [compare_op op x y] applies one of [< > =< >= =:= =\=] (by symbol). *)
val compare_op : Symbol.t -> int -> int -> bool

(** Operator table lookups, for callers that evaluate expression shapes
    without building the term (the compiled-body fast path). *)
val unary_op : Symbol.t -> (int -> int) option

val binary_op : Symbol.t -> (int -> int -> int) option

val comparison_op : Symbol.t -> (int -> int -> bool) option
