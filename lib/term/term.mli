(** First-order terms with destructive variable bindings.

    This is the shared term representation for every engine in the
    repository.  Variables carry a mutable [binding] slot; unification binds
    them in place and the {!Trail} records the bindings so backtracking can
    undo them.

    Atom and functor names are interned {!Symbol}s: construct from strings
    with {!atom}/{!struct_}/{!app} (which intern) or directly from symbols;
    identity tests on names are integer comparisons. *)

type t =
  | Atom of Symbol.t
  | Int of int
  | Var of var
  | Struct of Symbol.t * t array

and var = { vid : int; mutable binding : t option }

(** Resets the fresh-variable counter (tests only; keeps runs
    deterministic). *)
val reset_gensym : unit -> unit

(** A fresh unbound variable. *)
val fresh_var : unit -> var

(** [var ()] is [Var (fresh_var ())]. *)
val var : unit -> t

(** [atom name] interns [name]. *)
val atom : string -> t

val int : int -> t

(** [struct_ name args] interns [name]; [Atom] when [args] is empty. *)
val struct_ : string -> t array -> t

(** Like {!struct_} from an already interned symbol (no table lookup). *)
val struct_sym : Symbol.t -> t array -> t

(** [app name args] is {!struct_} on a list. *)
val app : string -> t list -> t

(** Follows variable bindings to the representative term.  Every structural
    inspection must go through [deref]. *)
val deref : t -> t

val nil : t
val cons : t -> t -> t
val of_list : t list -> t

(** [to_list t] is the elements of the proper list [t], or [None]. *)
val to_list : t -> t list option

val is_nil : t -> bool
val true_ : t

val is_ground : t -> bool

(** Free variables in first-occurrence order. *)
val variables : t -> var list

(** Number of term cells (after dereferencing). *)
val size : t -> int

(** [size_at_most t ~limit] is [min (size t) limit], computed in
    O(limit). *)
val size_at_most : t -> limit:int -> int

val depth : t -> int

(** Structural equality modulo dereferencing. *)
val equal : t -> t -> bool

(** Standard order of terms: Var < Int < Atom < Struct. *)
val compare : t -> t -> int

(** [rename_with table t] copies [t] with fresh variables; [table] maps old
    variable ids to their replacements and may be shared between calls to
    rename several terms consistently. *)
val rename_with : (int, var) Hashtbl.t -> t -> t

val rename : t -> t

(** Snapshot of a term that survives backtracking: bindings are resolved
    away, remaining variables are fresh. *)
val copy_resolved : t -> t

(** Functor symbol and arity of an atom or structure. *)
val functor_of : t -> (Symbol.t * int) option

(** {!functor_of} with the name resolved to a string (cold paths only). *)
val functor_name_of : t -> (string * int) option
