(** Interned symbols: atom and functor names mapped to small dense integer
    ids, so term equality, indexing, and dispatch compare machine integers.
    Strings reappear only at print time, through {!name}.

    The table is shared by every domain of the process.  {!intern} is
    mutex-protected; {!name} is a lock-free read of an atomically published
    snapshot, safe to call from any domain for any id it has observed. *)

type t

(** Interns a string, returning its unique id.  Idempotent: the same string
    always yields the same symbol, from any domain. *)
val intern : string -> t

(** The string this symbol was interned from. *)
val name : t -> string

(** The raw integer id (dense, starting at 0). *)
val id : t -> int

(** The symbol with raw id [i] — the inverse of {!id}.  [i] must have
    been obtained from {!id} in this process (ids are not stable across
    runs). *)
val of_id : int -> t

(** Integer equality — the whole point. *)
val equal : t -> t -> bool

val hash : t -> int

(** Total order by id (cheap, arbitrary). *)
val compare : t -> t -> int

(** Alphabetical order of the underlying names (for the standard order of
    terms); resolves strings, so keep it off hot paths. *)
val compare_names : t -> t -> int

(** Number of interned symbols. *)
val count : unit -> int

val pp : Format.formatter -> t -> unit

(** {2 Pre-interned structural symbols}

    [nil]="[]", [dot]=".", [comma]=",", [semicolon]=";", [arrow]="->",
    [amp]="&", [cut]="!", [true_]="true", [fail]="fail", [false_]="false",
    [neck]=":-", [query]="?-", [naf]="\\+", [call]="call",
    [solution]="$solution", [curly]="{}". *)

val nil : t
val dot : t
val comma : t
val semicolon : t
val arrow : t
val amp : t
val cut : t
val true_ : t
val fail : t
val false_ : t
val neck : t
val query : t
val naf : t
val call : t
val solution : t
val curly : t
