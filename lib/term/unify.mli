(** Unification over {!Term.t} with trailing and step counting. *)

(** [bind trail v t] binds [v] to [t] and trails it — the single binding
    primitive, also used by the compiled head code ({!Ace_lang.Code}). *)
val bind : Trail.t -> Term.var -> Term.t -> unit

(** [unify ~trail ~steps a b] unifies destructively, trailing each binding.
    [steps] is incremented per visited pair (engines charge time
    proportionally).  On failure, bindings made so far are NOT undone —
    callers undo to their own trail mark (or use {!unify_or_undo}). *)
val unify :
  ?occurs_check:bool -> trail:Trail.t -> steps:int ref -> Term.t -> Term.t -> bool

(** Like {!unify} but restores the trail on failure. *)
val unify_or_undo :
  ?occurs_check:bool -> trail:Trail.t -> steps:int ref -> Term.t -> Term.t -> bool

(** Satisfiability check that leaves no bindings behind. *)
val matches : ?occurs_check:bool -> Term.t -> Term.t -> bool

(** [occurs v t] is the occurs check used by [unify ~occurs_check:true]. *)
val occurs : Term.var -> Term.t -> bool
