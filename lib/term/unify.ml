(* Unification with trailing.  [steps] counts visited term pairs so engines
   can charge a proportional cost. *)

let bind trail (v : Term.var) t =
  v.Term.binding <- Some t;
  Trail.push trail v

let rec occurs (v : Term.var) t =
  match Term.deref t with
  | Term.Var w -> w.Term.vid = v.Term.vid
  | Term.Atom _ | Term.Int _ -> false
  | Term.Struct (_, args) -> Array.exists (occurs v) args

let unify ?(occurs_check = false) ~trail ~steps a b =
  (* [go] threads the visited-pair count as a local int instead of bumping
     the shared [steps] ref once per pair: the count comes back positive on
     success and negative on failure (it is incremented before any return,
     so zero is unreachable), and [steps] is touched exactly once per
     unification. *)
  let rec go n a b =
    let n = n + 1 in
    let a = Term.deref a and b = Term.deref b in
    match a, b with
    | Term.Var x, Term.Var y ->
      if x.Term.vid = y.Term.vid then n
      else begin
        (* Bind the younger variable to the older one: keeps bindings
           pointing "downward" which shortens dereference chains. *)
        if x.Term.vid > y.Term.vid then bind trail x b else bind trail y a;
        n
      end
    | Term.Var x, t | t, Term.Var x ->
      if occurs_check && occurs x t then -n
      else begin
        bind trail x t;
        n
      end
    | Term.Atom x, Term.Atom y -> if Symbol.equal x y then n else -n
    | Term.Int x, Term.Int y -> if x = y then n else -n
    | Term.Struct (f, xs), Term.Struct (g, ys) ->
      if Symbol.equal f g && Array.length xs = Array.length ys then
        let rec all n i =
          if i >= Array.length xs then n
          else
            let r = go n xs.(i) ys.(i) in
            if r < 0 then r else all r (i + 1)
        in
        all n 0
      else -n
    | (Term.Atom _ | Term.Int _ | Term.Struct _), _ -> -n
  in
  let r = go 0 a b in
  steps := !steps + abs r;
  r > 0

(* Unification that undoes its own bindings on failure, leaving the trail
   as it was.  On success bindings remain (still trailed above the caller's
   own mark). *)
let unify_or_undo ?occurs_check ~trail ~steps a b =
  let mark = Trail.mark trail in
  if unify ?occurs_check ~trail ~steps a b then true
  else begin
    let undone = Trail.undo_to trail mark in
    steps := !steps + undone;
    false
  end

(* [matches a b] checks satisfiability of unification without leaving any
   binding behind; used for clause filtering and analysis. *)
let matches ?occurs_check a b =
  let trail = Trail.create () in
  let steps = ref 0 in
  let ok = unify ?occurs_check ~trail ~steps a b in
  ignore (Trail.undo_to trail 0);
  ok
