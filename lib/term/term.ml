(* First-order terms with mutable variable bindings.

   Variables are bound destructively during unification and unbound by the
   trail (see {!Trail}).  All structural traversals must dereference through
   bindings first; [deref] is the single entry point for that.

   Atom and functor names are interned {!Symbol}s: the string is resolved
   once (at parse/construction time) and every later identity test is an
   integer comparison. *)

type t =
  | Atom of Symbol.t
  | Int of int
  | Var of var
  | Struct of Symbol.t * t array

and var = { vid : int; mutable binding : t option }

(* The id counter is atomic so that engines running on several OCaml
   domains (the hardware or-parallel engine) can create fresh variables
   concurrently without ties or torn reads.  On a single domain the
   fetch-and-add costs the same as the old [incr]. *)
let counter = Atomic.make 0

let reset_gensym () = Atomic.set counter 0

let fresh_var () = { vid = 1 + Atomic.fetch_and_add counter 1; binding = None }

let var () = Var (fresh_var ())

let atom name = Atom (Symbol.intern name)

let int n = Int n

let struct_sym s args = if Array.length args = 0 then Atom s else Struct (s, args)

let struct_ name args = struct_sym (Symbol.intern name) args

let app name args = struct_ name (Array.of_list args)

let rec deref t =
  match t with
  | Var { binding = Some t'; _ } -> deref t'
  | Var _ | Atom _ | Int _ | Struct _ -> t

let nil = Atom Symbol.nil

let cons h t = Struct (Symbol.dot, [| h; t |])

let rec of_list = function
  | [] -> nil
  | x :: rest -> cons x (of_list rest)

(* Converts a Prolog list term to an OCaml list; [None] if not a proper
   list. *)
let to_list t =
  let rec go acc t =
    match deref t with
    | Atom s when Symbol.equal s Symbol.nil -> Some (List.rev acc)
    | Struct (s, [| h; tl |]) when Symbol.equal s Symbol.dot -> go (h :: acc) tl
    | Atom _ | Int _ | Var _ | Struct _ -> None
  in
  go [] t

let is_nil t =
  match deref t with Atom s -> Symbol.equal s Symbol.nil | _ -> false

let true_ = Atom Symbol.true_

let rec is_ground t =
  match deref t with
  | Atom _ | Int _ -> true
  | Var _ -> false
  | Struct (_, args) -> Array.for_all is_ground args

(* Free (unbound, after dereferencing) variables, in first-occurrence
   order. *)
let variables t =
  let seen = Hashtbl.create 16 in
  let acc = ref [] in
  let rec go t =
    match deref t with
    | Atom _ | Int _ -> ()
    | Var v ->
      if not (Hashtbl.mem seen v.vid) then begin
        Hashtbl.add seen v.vid ();
        acc := v :: !acc
      end
    | Struct (_, args) -> Array.iter go args
  in
  go t;
  List.rev !acc

let rec size t =
  match deref t with
  | Atom _ | Int _ | Var _ -> 1
  | Struct (_, args) -> Array.fold_left (fun n a -> n + size a) 1 args

(* Bounded size: counts cells up to [limit] then stops — cheap enough to
   use as a runtime granularity estimate. *)
let size_at_most t ~limit =
  let rec go budget t =
    if budget <= 0 then 0
    else
      match deref t with
      | Atom _ | Int _ | Var _ -> budget - 1
      | Struct (_, args) ->
        Array.fold_left (fun b a -> if b <= 0 then 0 else go b a) (budget - 1) args
  in
  limit - go limit t

let rec depth t =
  match deref t with
  | Atom _ | Int _ | Var _ -> 1
  | Struct (_, args) -> 1 + Array.fold_left (fun n a -> max n (depth a)) 0 args

(* Structural equality modulo dereferencing.  Unbound variables are equal
   only to themselves. *)
let rec equal a b =
  match deref a, deref b with
  | Atom x, Atom y -> Symbol.equal x y
  | Int x, Int y -> x = y
  | Var x, Var y -> x.vid = y.vid
  | Struct (f, xs), Struct (g, ys) ->
    Symbol.equal f g
    && Array.length xs = Array.length ys
    && (let rec all i = i >= Array.length xs || (equal xs.(i) ys.(i) && all (i + 1)) in
        all 0)
  | (Atom _ | Int _ | Var _ | Struct _), _ -> false

(* Standard order of terms: Var < Int < Atom < Struct; structs by arity,
   then name, then arguments left to right.  Atoms order alphabetically
   (via [Symbol.compare_names]) with an id fast path for equality. *)
let rec compare a b =
  let rank = function Var _ -> 0 | Int _ -> 1 | Atom _ -> 2 | Struct _ -> 3 in
  match deref a, deref b with
  | Var x, Var y -> Stdlib.compare x.vid y.vid
  | Int x, Int y -> Stdlib.compare x y
  | Atom x, Atom y -> Symbol.compare_names x y
  | Struct (f, xs), Struct (g, ys) ->
    let c = Stdlib.compare (Array.length xs) (Array.length ys) in
    if c <> 0 then c
    else
      let c = Symbol.compare_names f g in
      if c <> 0 then c
      else
        let rec go i =
          if i >= Array.length xs then 0
          else
            let c = compare xs.(i) ys.(i) in
            if c <> 0 then c else go (i + 1)
        in
        go 0
  | a, b -> Stdlib.compare (rank a) (rank b)

(* Copies a term, producing fresh variables for the unbound variables; the
   mapping table is shared across calls so several terms can be renamed
   consistently (e.g. a clause head and body). *)
let rename_with table t =
  let rec go t =
    match deref t with
    | (Atom _ | Int _) as t' -> t'
    | Var v ->
      (match Hashtbl.find_opt table v.vid with
       | Some v' -> Var v'
       | None ->
         let v' = fresh_var () in
         Hashtbl.add table v.vid v';
         Var v')
    | Struct (f, args) -> Struct (f, Array.map go args)
  in
  go t

let rename t = rename_with (Hashtbl.create 16) t

(* Snapshots a term into a binding-free value: bound variables are resolved
   away, unbound variables become fresh.  Used when a solution must survive
   subsequent backtracking.  Solution terms are usually ground, so the
   vid -> fresh-var table is allocated lazily, on the first unbound variable
   actually encountered. *)
let copy_resolved t =
  let table = ref None in
  let rec go t =
    match deref t with
    | (Atom _ | Int _) as t' -> t'
    | Var v ->
      let tbl =
        match !table with
        | Some h -> h
        | None ->
          let h = Hashtbl.create 8 in
          table := Some h;
          h
      in
      (match Hashtbl.find_opt tbl v.vid with
       | Some v' -> Var v'
       | None ->
         let v' = fresh_var () in
         Hashtbl.add tbl v.vid v';
         Var v')
    | Struct (f, args) -> Struct (f, Array.map go args)
  in
  go t

let functor_of t =
  match deref t with
  | Atom s -> Some (s, 0)
  | Struct (s, args) -> Some (s, Array.length args)
  | Int _ | Var _ -> None

let functor_name_of t =
  match functor_of t with
  | Some (s, n) -> Some (Symbol.name s, n)
  | None -> None
