(* Interned symbols: every atom and functor name in the system is mapped to
   a small dense integer id exactly once, so the hot paths (unification,
   first-argument indexing, builtin dispatch) compare and hash machine
   integers instead of strings.  Strings reappear only at print time,
   through [name].

   Thread safety.  The hardware or-parallel engine interns from several
   OCaml domains at once (runtime-interned atoms: canonical variable
   markers, asserted terms).  Interning takes a mutex — it happens at parse
   time and on cold paths, never per unification step.  Reverse lookup is
   lock-free: ids resolve through an immutable snapshot {arr; len}
   published with a release store ([Atomic.set]) after the slot is written,
   so a reader whose [Atomic.get] (acquire) observes [len > id] also
   observes the slot write.  An id can only travel to another domain
   through a synchronising channel established after its intern completed
   (the intern mutex, a deque steal, a solution mutex), so the stale-
   snapshot fallback below is unreachable in practice but keeps [name]
   total. *)

type t = int

type store = { arr : string array; len : int }

let mutex = Mutex.create ()

let table : (string, int) Hashtbl.t = Hashtbl.create 256

let store = Atomic.make { arr = Array.make 64 ""; len = 0 }

let equal (a : t) (b : t) = a = b

let id (s : t) : int = s
let of_id (i : int) : t = i

let hash (s : t) = s

(* by id; cheap total order, NOT alphabetical *)
let compare (a : t) (b : t) = Stdlib.compare a b

let intern str : t =
  Mutex.lock mutex;
  let s =
    match Hashtbl.find_opt table str with
    | Some s -> s
    | None ->
      let { arr; len } = Atomic.get store in
      let arr =
        if len < Array.length arr then arr
        else begin
          let bigger = Array.make (2 * Array.length arr) "" in
          Array.blit arr 0 bigger 0 len;
          bigger
        end
      in
      arr.(len) <- str;
      (* release: publishes the slot write together with the new length *)
      Atomic.set store { arr; len = len + 1 };
      Hashtbl.add table str len;
      len
  in
  Mutex.unlock mutex;
  s

let name (s : t) : string =
  let { arr; len } = Atomic.get store in
  if s < len then arr.(s)
  else begin
    (* stale snapshot (see header); synchronise through the mutex *)
    Mutex.lock mutex;
    let { arr; len } = Atomic.get store in
    Mutex.unlock mutex;
    if s < len then arr.(s) else invalid_arg "Symbol.name: unknown id"
  end

let count () = (Atomic.get store).len

(* alphabetical, for the standard order of terms *)
let compare_names a b = if a = b then 0 else String.compare (name a) (name b)

let pp ppf s = Format.pp_print_string ppf (name s)

(* Structural symbols, pre-interned at load time so pattern guards compare
   against constants. *)
let nil = intern "[]"
let dot = intern "."
let comma = intern ","
let semicolon = intern ";"
let arrow = intern "->"
let amp = intern "&"
let cut = intern "!"
let true_ = intern "true"
let fail = intern "fail"
let false_ = intern "false"
let neck = intern ":-"
let query = intern "?-"
let naf = intern "\\+"
let call = intern "call"
let solution = intern "$solution"
let curly = intern "{}"
