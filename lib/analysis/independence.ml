(* Strict-independence annotation.

   Stands in for the sharing+freeness parallelizing compiler the paper's
   &ACE uses [Muthukumar & Hermenegildo 91]: conjunctive goals that cannot
   share an unbound variable at runtime are rewritten into parallel
   conjunctions ('&').

   Groundness is tracked per variable with a simple forward pass seeded by
   mode declarations ([:- mode(p(+,-,?))] directives: '+' arguments are
   ground at call, '-' arguments are ground after success).  Two adjacent
   goals are strictly independent when every variable they share is ground
   at that program point.  Maximal runs of pairwise-independent goals
   become one parallel conjunction. *)

module Term = Ace_term.Term
module Symbol = Ace_term.Symbol
module Clause = Ace_lang.Clause
module Database = Ace_lang.Database

module Var_set = Set.Make (Int)

let sym_mode = Symbol.intern "mode"
let sym_in = Symbol.intern "+"
let sym_out = Symbol.intern "-"
let sym_unknown = Symbol.intern "?"

type mode = Input | Output | Unknown

type modes = (string * int, mode array) Hashtbl.t

let no_modes () : modes = Hashtbl.create 16

(* Parses a [mode(p(+,-,?))] directive term. *)
let add_mode_directive (modes : modes) t =
  match Term.deref t with
  | Term.Struct (s, [| spec |]) when Symbol.equal s sym_mode -> (
    match Term.deref spec with
    | Term.Struct (name, args) ->
      let parse_arg a =
        match Term.deref a with
        | Term.Atom s when Symbol.equal s sym_in -> Input
        | Term.Atom s when Symbol.equal s sym_out -> Output
        | Term.Atom s when Symbol.equal s sym_unknown -> Unknown
        | _ -> Unknown
      in
      Hashtbl.replace modes
        (Symbol.name name, Array.length args)
        (Array.map parse_arg args);
      true
    | Term.Atom name ->
      Hashtbl.replace modes (Symbol.name name, 0) [||];
      true
    | _ -> false)
  | _ -> false

let modes_of_directives directives =
  let modes = no_modes () in
  List.iter (fun d -> ignore (add_mode_directive modes d)) directives;
  modes

let vars_of_term t =
  List.fold_left
    (fun acc v -> Var_set.add v.Term.vid acc)
    Var_set.empty (Term.variables t)

let goal_args g =
  match Term.deref g with
  | Term.Struct (_, args) -> args
  | Term.Atom _ | Term.Int _ | Term.Var _ -> [||]

(* Variables of [g] made ground by success of [g], assuming [ground] holds
   before the call. *)
let grounded_after (modes : modes) ground g =
  let add_args ground args positions =
    Array.to_list args
    |> List.mapi (fun i a -> (i, a))
    |> List.fold_left
         (fun acc (i, a) -> if positions i then Var_set.union acc (vars_of_term a) else acc)
         ground
  in
  match Term.functor_name_of (Term.deref g) with
  | None -> ground
  | Some (name, arity) -> (
    let args = goal_args g in
    match name, arity with
    | "is", 2 ->
      (* left becomes ground when the right side is *)
      let rhs_ground = Var_set.subset (vars_of_term args.(1)) ground in
      if rhs_ground then Var_set.union ground (vars_of_term args.(0)) else ground
    | ("<" | ">" | "=<" | ">=" | "=:=" | "=\\="), 2 -> ground
    | "=", 2 ->
      (* each side becomes ground if the other already is *)
      let l = vars_of_term args.(0) and r = vars_of_term args.(1) in
      let ground = if Var_set.subset l ground then Var_set.union ground r else ground in
      if Var_set.subset r ground then Var_set.union ground l else ground
    | _, _ -> (
      match Hashtbl.find_opt modes (name, arity) with
      | None -> ground
      | Some mode_array ->
        (* inputs must be ground for the mode to apply; then outputs are
           ground on success *)
        let inputs_ground =
          Array.for_all Fun.id
            (Array.mapi
               (fun i m ->
                 m <> Input || Var_set.subset (vars_of_term args.(i)) ground)
               mode_array)
        in
        if inputs_ground then
          add_args ground args (fun i ->
              i < Array.length mode_array && mode_array.(i) = Output)
        else ground))

(* Unbound-at-this-point variables of a goal: its variables minus the
   ground set. *)
let free_vars ground g = Var_set.diff (vars_of_term g) ground

let independent ground g1 g2 =
  Var_set.is_empty (Var_set.inter (free_vars ground g1) (free_vars ground g2))

(* Greedily groups maximal runs of consecutive, pairwise-independent,
   non-builtin goals into parallel conjunctions.  Builtins stay sequential:
   they are cheap and usually bind shared arithmetic variables. *)
let annotate_body (modes : modes) ~head_ground body =
  let is_par_candidate g =
    match Term.functor_name_of (Term.deref g) with
    | Some (name, arity) -> not (Ace_core.Builtins.is_builtin name arity)
    | None -> false
  in
  let flush group acc =
    match group with
    | [] -> acc
    | [ g ] -> Clause.Call g :: acc
    | gs -> Clause.Par (List.rev_map (fun g -> [ Clause.Call g ]) gs) :: acc
  in
  let rec go ground group acc = function
    | [] -> List.rev (flush group acc)
    | item :: rest -> (
      match item with
      | Clause.Par _ | Clause.Exec _ ->
        (* parallel conjunction already annotated by hand / compiled
           frame resumption: opaque, keep as is *)
        go ground [] (item :: flush group acc) rest
      | Clause.Call g ->
        let ground' = grounded_after modes ground g in
        if
          is_par_candidate g
          && List.for_all (fun g' -> independent ground g g') group
        then go ground' (g :: group) acc rest
        else go ground' [ g ] (flush group acc) rest)
  in
  match go head_ground [] [] body with
  | [ Clause.Call _ ] as simple -> simple
  | annotated -> annotated

(* Head variables known ground at call time, per the predicate's mode. *)
let head_ground_of (modes : modes) head =
  match Term.functor_name_of (Term.deref head) with
  | None -> Var_set.empty
  | Some (name, arity) -> (
    match Hashtbl.find_opt modes (name, arity) with
    | None -> Var_set.empty
    | Some mode_array ->
      let args = goal_args head in
      Array.to_list mode_array
      |> List.mapi (fun i m -> (i, m))
      |> List.fold_left
           (fun acc (i, m) ->
             if m = Input && i < Array.length args then
               Var_set.union acc (vars_of_term args.(i))
             else acc)
           Var_set.empty)

let annotate_clause (modes : modes) clause =
  let head_ground = head_ground_of modes clause.Clause.head in
  { clause with Clause.body = annotate_body modes ~head_ground clause.Clause.body }

(* Annotates a whole program: returns a new database with every clause
   body re-annotated.  Mode directives are read from the program's
   directive list. *)
let annotate_program program =
  let modes = modes_of_directives (Ace_lang.Program.directives program) in
  let db = Ace_lang.Program.db program in
  let out = Database.create () in
  List.iter
    (fun (name, arity) ->
      List.iter
        (fun clause -> Database.assertz out (annotate_clause modes clause))
        (Database.clauses_of db name arity))
    (Database.predicates db);
  out

(* A body is well-annotated when every parallel conjunction's branches are
   pairwise syntactically disjoint on non-ground variables; used as a
   sanity check for hand-annotated benchmarks. *)
let check_annotation (modes : modes) ~head_ground body =
  let rec goals_of_body b =
    List.concat_map
      (function
        | Clause.Call g -> [ g ]
        | Clause.Par bs -> List.concat_map goals_of_body bs
        | Clause.Exec _ -> [])
      b
  in
  let rec go ground = function
    | [] -> true
    | Clause.Exec _ :: rest -> go ground rest (* opaque: grounds nothing *)
    | Clause.Call g :: rest -> go (grounded_after modes ground g) rest
    | Clause.Par bodies :: rest ->
      let branch_vars =
        List.map
          (fun b ->
            List.fold_left
              (fun acc g -> Var_set.union acc (free_vars ground g))
              Var_set.empty (goals_of_body b))
          bodies
      in
      let rec pairwise = function
        | [] -> true
        | vs :: more ->
          List.for_all (fun vs' -> Var_set.is_empty (Var_set.inter vs vs')) more
          && pairwise more
      in
      let ground' =
        List.fold_left
          (fun acc b -> List.fold_left (grounded_after modes) acc (goals_of_body b))
          ground bodies
      in
      pairwise branch_vars && go ground' rest
  in
  go head_ground body
