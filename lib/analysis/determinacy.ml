(* Static determinacy analysis.

   A predicate is *determinate* when any call to it can match at most one
   clause (after first-argument indexing) and its body cannot leave choice
   points behind.  This is the compile-time approximation of the property
   the runtime optimizations (LPCO, SPO) trigger on; as the paper notes,
   the runtime always knows determinacy exactly, while this analysis
   "discovers some of the cases" — the test suite checks the analysis is
   sound with respect to the runtime (never claims determinate for a
   predicate that creates choice points). *)

module Term = Ace_term.Term
module Clause = Ace_lang.Clause
module Database = Ace_lang.Database

module Pred_set = Set.Make (struct
  type t = string * int

  let compare = compare
end)

let builtins_are_determinate = true

(* Analysis is a cold path: it works on resolved (string) names so its
   sets print and compare naturally. *)
let goal_functor g =
  match Term.functor_name_of (Term.deref g) with
  | Some na -> Some na
  | None -> None

(* Greatest fixpoint: start by assuming every first-arg-exclusive predicate
   is determinate, then repeatedly demote predicates whose bodies call a
   non-determinate predicate. *)
let analyze db =
  let preds = Database.predicates db in
  let candidate (name, arity) = Database.first_arg_exclusive db name arity in
  let det = ref (Pred_set.of_list (List.filter candidate preds)) in
  let goal_det g =
    match goal_functor g with
    | None -> false
    | Some (name, arity) ->
      if Ace_core.Builtins.is_builtin name arity then builtins_are_determinate
      else if String.equal name "," || String.equal name "&" then
        (* compiled away; handled structurally *)
        true
      else Pred_set.mem (name, arity) !det
  in
  let clause_det clause =
    List.for_all goal_det (Clause.body_goals clause.Clause.body)
  in
  let pred_det (name, arity) =
    List.for_all clause_det (Database.clauses_of db name arity)
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Pred_set.iter
      (fun p ->
        if not (pred_det p) then begin
          det := Pred_set.remove p !det;
          changed := true
        end)
      !det
  done;
  !det

let is_determinate det name arity = Pred_set.mem (name, arity) det

let to_list det = Pred_set.elements det
