(* The abstract cost model.

   The discrete-event simulator charges each engine operation a number of
   abstract cycles from this table.  The paper's experiments compare times
   with and without each optimization at equal processor counts, so what
   matters is the *relative* weight of the operations the optimizations
   remove (frame/marker allocation, tree traversal, scheduler work), not
   absolute magnitudes.  Weights are loosely calibrated to a WAM-style
   engine where a unification step is the unit.

   One deliberate modelling choice (documented in DESIGN.md): the LAO
   in-place choice-point update is *more* expensive than a plain private
   allocation because in a MUSE-style system the updated node may be shared
   and needs synchronization.  This is the "characteristic of the MUSE
   implementation" the paper blames for LAO's 1-processor slowdowns, and it
   reproduces the negative entries of Table 3's first column. *)

type t = {
  (* resolution *)
  unify_step : int;          (* per unification node visited *)
  code_instr : int;          (* per compiled clause-code instruction executed *)
  index_lookup : int;        (* per call: first-argument index consultation *)
  clause_try : int;          (* per candidate clause attempted *)
  builtin : int;             (* base cost of a builtin call *)
  arith_op : int;            (* per arithmetic node evaluated *)
  trail_push : int;
  untrail : int;             (* per binding undone *)
  (* nondeterminism *)
  cp_alloc : int;            (* allocate a choice point *)
  cp_restore : int;          (* restore machine state from a choice point *)
  backtrack_node : int;      (* visit one node while walking back the tree *)
  (* and-parallelism *)
  frame_alloc : int;         (* allocate a parcall frame *)
  slot_init : int;           (* initialise one subgoal slot *)
  marker_alloc : int;        (* allocate an input or end marker *)
  frame_linear_scan : int;   (* per slot scanned inside one frame *)
  frame_unwind : int;        (* backtracking across one parcall frame:
                                deallocation + scheduler synchronization *)
  kill_signal : int;         (* signal a sibling subgoal to abort *)
  (* or-parallelism *)
  copy_cell : int;           (* per machine cell copied when sharing work *)
  copy_setup : int;          (* fixed part of a stack copy *)
  or_scan_node : int;        (* per choice point scanned looking for work *)
  lao_update : int;          (* LAO in-place update of a (shared) node *)
  (* scheduling *)
  steal_poll : int;          (* one unsuccessful look at the work pool *)
  steal_grab : int;          (* successful acquisition of work *)
  task_switch : int;         (* agent switches to a different computation *)
  runtime_check : int;       (* the "very simple runtime checks" that
                                trigger the optimizations *)
}

let default =
  {
    unify_step = 1;
    code_instr = 1;
    index_lookup = 2;
    clause_try = 2;
    builtin = 3;
    arith_op = 1;
    trail_push = 1;
    untrail = 1;
    cp_alloc = 12;
    cp_restore = 6;
    backtrack_node = 5;
    frame_alloc = 40;
    slot_init = 4;
    marker_alloc = 25;
    frame_linear_scan = 1;
    frame_unwind = 45;
    kill_signal = 6;
    copy_cell = 1;
    copy_setup = 40;
    or_scan_node = 3;
    lao_update = 16;
    steal_poll = 8;
    steal_grab = 12;
    task_switch = 8;
    runtime_check = 1;
  }

(* Control-stack sizes in words, used for the memory-consumption
   measurements (paper section 3.1: LPCO halves control-stack usage). *)
let words_choice_point = 8
let words_frame_base = 20
let words_per_slot = 4
let words_marker = 6
