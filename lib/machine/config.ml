(* Engine configuration: number of simulated agents plus one switch per
   optimization of the paper. *)

type t = {
  agents : int;
  lpco : bool; (* last parallel call optimization   (flattening, §3.1) *)
  lao : bool;  (* last alternative optimization     (flattening, §3.2) *)
  spo : bool;  (* shallow parallelism optimization  (procrastination, §4.1) *)
  pdo : bool;  (* processor determinacy optimization (sequentialization, §4.2) *)
  par_and : bool;
    (* multicore engine only: execute '&' conjunctions in parallel
       (parcall frames + cross-product join) in addition to the
       or-parallel work stealing.  The simulated engines ignore it. *)
  seq_threshold : int;
    (* granularity control (an instance of the sequentialization schema the
       paper names in §4): parallel conjunctions whose estimated work is
       below this many term cells run sequentially, without a frame.
       0 disables it. *)
  grain : int;
    (* or-parallel granularity: a choice point is published (environment
       copy) only if it still has at least this many untried alternatives;
       smaller nodes are kept for private backtracking.  1 = publish
       anything (no granularity control). *)
  chunk : int;
    (* or-parallel chunking: a published node's alternatives are shipped
       in tasks of at most this many alternatives each, so several thieves
       can share one wide node.  0 = all alternatives in one task. *)
  compile : bool;
    (* execute flat clause code (get/unify/put instructions) through the
       switch-on-term dispatch tree instead of interpreting templates.
       Off by default so [default] stays the interpreted oracle
       reference; ace_run turns it on. *)
  table_max_answers : int;
    (* tabling guard: a tabled subgoal accumulating more than this many
       distinct answers aborts the run with an engine error (runaway
       recursion over an unexpectedly large domain).  0 disables the
       guard. *)
  cost : Cost.t;
  max_solutions : int option; (* stop after this many solutions; None = all *)
}

let default =
  {
    agents = 1;
    lpco = false;
    lao = false;
    spo = false;
    pdo = false;
    par_and = false;
    seq_threshold = 0;
    grain = 1;
    chunk = 0;
    compile = false;
    table_max_answers = 0;
    cost = Cost.default;
    max_solutions = None;
  }

let unoptimized ?(agents = 1) () = { default with agents }

let all_optimizations ?(agents = 1) () =
  { default with agents; lpco = true; lao = true; spo = true; pdo = true }

let validate t =
  if t.agents < 1 then invalid_arg "Config: agents must be >= 1";
  if t.seq_threshold < 0 then invalid_arg "Config: seq_threshold must be >= 0";
  if t.grain < 1 then invalid_arg "Config: grain must be >= 1";
  if t.chunk < 0 then invalid_arg "Config: chunk must be >= 0";
  if t.table_max_answers < 0 then
    invalid_arg "Config: table_max_answers must be >= 0";
  (match t.max_solutions with
   | Some n when n < 1 -> invalid_arg "Config: max_solutions must be >= 1"
   | Some _ | None -> ());
  t

let pp ppf t =
  let flag name b = if b then [ name ] else [] in
  let opts =
    flag "lpco" t.lpco @ flag "lao" t.lao @ flag "spo" t.spo @ flag "pdo" t.pdo
    @ flag "par_and" t.par_and
    @ flag "compiled" t.compile
    @ (if t.seq_threshold > 0 then [ Printf.sprintf "gc=%d" t.seq_threshold ] else [])
    @ (if t.grain > 1 then [ Printf.sprintf "grain=%d" t.grain ] else [])
    @ (if t.chunk > 0 then [ Printf.sprintf "chunk=%d" t.chunk ] else [])
    @ (if t.table_max_answers > 0 then
         [ Printf.sprintf "table_max=%d" t.table_max_answers ]
       else [])
  in
  Format.fprintf ppf "agents=%d opts={%s}" t.agents (String.concat "," opts)
