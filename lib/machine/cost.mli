(** Abstract cost model charged by the discrete-event simulator.  See the
    implementation header and DESIGN.md for the calibration rationale. *)

type t = {
  unify_step : int;
  code_instr : int;
  index_lookup : int;
  clause_try : int;
  builtin : int;
  arith_op : int;
  trail_push : int;
  untrail : int;
  cp_alloc : int;
  cp_restore : int;
  backtrack_node : int;
  frame_alloc : int;
  slot_init : int;
  marker_alloc : int;
  frame_linear_scan : int;
  frame_unwind : int;
  kill_signal : int;
  copy_cell : int;
  copy_setup : int;
  or_scan_node : int;
  lao_update : int;
  steal_poll : int;
  steal_grab : int;
  task_switch : int;
  runtime_check : int;
}

val default : t

val words_choice_point : int
val words_frame_base : int
val words_per_slot : int
val words_marker : int
