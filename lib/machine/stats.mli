(** Structural execution counters collected by the engines. *)

type t = {
  mutable unify_steps : int;
  mutable clause_tries : int;
  mutable builtin_calls : int;
  mutable trail_pushes : int;
  mutable untrails : int;
  mutable cp_allocs : int;
  mutable cp_updates : int;
  mutable backtracks : int;
  mutable bt_nodes_visited : int;
  mutable frames : int;
  mutable slots : int;
  mutable input_markers : int;
  mutable end_markers : int;
  mutable markers_avoided : int;
  mutable frames_avoided : int;
  mutable max_frame_nesting : int;
  mutable kills : int;
  mutable copies : int;
  mutable copied_cells : int;
  mutable or_scans : int;
  mutable publish_skipped_small : int;
      (** publications declined because every candidate node had fewer
          untried alternatives than the configured grain *)
  mutable steals : int;
  mutable polls : int;
  mutable task_switches : int;
  mutable lpco_hits : int;
  mutable lao_hits : int;
  mutable spo_hits : int;
  mutable pdo_hits : int;
  mutable seq_hits : int;
  mutable solutions : int;
  mutable stack_words : int;
}

val create : unit -> t

(** Accumulates [b] into [into] (max for nesting depth, sum elsewhere). *)
val merge_into : into:t -> t -> unit

(** Field names and values, for tabular output. *)
val fields : t -> (string * int) list

val pp : Format.formatter -> t -> unit
