(** Structural execution counters collected by the engines. *)

type t = {
  mutable unify_steps : int;
  mutable code_instrs : int;
      (** compiled clause-code instructions executed (0 when
          interpreting) *)
  mutable env_allocs : int;
      (** heap environments allocated for compiled clause bodies; a
          last-call-optimized recursion runs entirely in the reusable
          scratch frame and keeps this at 0 *)
  mutable clause_tries : int;
  mutable builtin_calls : int;
  mutable trail_pushes : int;
  mutable untrails : int;
  mutable cp_allocs : int;
  mutable cp_updates : int;
  mutable backtracks : int;
  mutable bt_nodes_visited : int;
  mutable frames : int;
  mutable slots : int;
  mutable input_markers : int;
  mutable end_markers : int;
  mutable markers_avoided : int;
  mutable frames_avoided : int;
  mutable max_frame_nesting : int;
  mutable kills : int;
  mutable copies : int;
  mutable copied_cells : int;
  mutable or_scans : int;
  mutable publish_skipped_small : int;
      (** publications declined because every candidate node had fewer
          untried alternatives than the configured grain *)
  mutable steals : int;
  mutable polls : int;
  mutable task_switches : int;
  mutable lpco_hits : int;
  mutable lao_hits : int;
  mutable spo_hits : int;
  mutable pdo_hits : int;
  mutable seq_hits : int;
  mutable table_subgoals : int;
      (** tabling: subgoal-table entries created (one per variant class
          of tabled calls) *)
  mutable table_answers : int;
      (** tabling: distinct answers inserted into answer tries *)
  mutable table_answer_hits : int;
      (** tabling: tabled calls served straight from a complete table *)
  mutable table_variant_hits : int;
      (** tabling: calls that mapped onto an existing subgoal entry *)
  mutable table_suspends : int;
      (** tabling: consumer reads of an incomplete table (the
          suspension events of the SLG protocol) *)
  mutable table_resumes : int;
      (** tabling: generator re-passes scheduled because new answers or
          subgoals appeared during the previous pass *)
  mutable solutions : int;
  mutable stack_words : int;
  mutable minor_words : int;
      (** GC minor-heap words allocated during the solve (measured as a
          [Gc.minor_words] delta by the {!Ace_core.Engine} facade; on the
          multi-domain engine only the joining domain's counter is
          sampled, so treat multi-domain values as a lower bound) *)
  mutable promoted_words : int;
      (** GC words promoted to the major heap during the solve (same
          measurement caveats as [minor_words]) *)
}

val create : unit -> t

(** Accumulates [b] into [into] (max for nesting depth, sum elsewhere).

    Ownership: a [Stats.t] is a single-writer record.  Each engine worker
    (domain or simulated agent) updates its own private record — see
    {!Ace_obs.Metrics} — and [merge_into] may only fold worker records
    into a run total on the joining thread, after every worker has
    finished (for the multicore engine: after [Domain.join]).  Merging
    while a worker is still writing its record is a data race. *)
val merge_into : into:t -> t -> unit

(** Field names and values, for tabular output.  Stable order; covers every
    counter of the record. *)
val fields : t -> (string * int) list

(** Rebuilds a record from [fields]-style pairs (unknown names are
    ignored, so dumps from newer builds still load). *)
val of_fields : (string * int) list -> t

(** The counters as one flat JSON object (the machine-readable twin of
    {!pp}; parse with [Ace_obs.Json] or any JSON reader). *)
val to_json : t -> string

(** Prints one [name value] line per non-zero counter; [~verbose:true]
    prints zero-valued counters too, so "this optimization never fired"
    regressions stay visible. *)
val pp : ?verbose:bool -> Format.formatter -> t -> unit
