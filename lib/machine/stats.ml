(* Execution statistics.

   Engines update one record per run; the harness reads both the simulated
   completion time and the structural counters (allocations, traversals)
   that explain it.  [merge] folds per-agent records into a run total. *)

type t = {
  mutable unify_steps : int;
  mutable code_instrs : int; (* compiled clause-code instructions executed *)
  mutable env_allocs : int;
    (* heap environments allocated for compiled bodies; 0 on a pure
       scratch-frame (LCO) run *)
  mutable clause_tries : int;
  mutable builtin_calls : int;
  mutable trail_pushes : int;
  mutable untrails : int;
  (* nondeterminism *)
  mutable cp_allocs : int;
  mutable cp_updates : int;       (* LAO in-place updates *)
  mutable backtracks : int;
  mutable bt_nodes_visited : int; (* nodes walked during backtracking *)
  (* and-parallelism *)
  mutable frames : int;           (* parcall frames allocated *)
  mutable slots : int;            (* subgoal slots initialised *)
  mutable input_markers : int;
  mutable end_markers : int;
  mutable markers_avoided : int;  (* by SPO and PDO *)
  mutable frames_avoided : int;   (* by LPCO *)
  mutable max_frame_nesting : int;
  mutable kills : int;
  (* or-parallelism *)
  mutable copies : int;           (* stack-copy operations *)
  mutable copied_cells : int;
  mutable or_scans : int;         (* choice points scanned for work *)
  mutable publish_skipped_small : int; (* grain control declined a publish *)
  (* scheduling *)
  mutable steals : int;
  mutable polls : int;
  mutable task_switches : int;
  (* optimization hits *)
  mutable lpco_hits : int;
  mutable lao_hits : int;
  mutable spo_hits : int;
  mutable pdo_hits : int;
  mutable seq_hits : int; (* granularity control: parcalls sequentialized *)
  (* tabling *)
  mutable table_subgoals : int;    (* subgoal-table entries created *)
  mutable table_answers : int;     (* distinct answers inserted *)
  mutable table_answer_hits : int; (* tabled calls served from a complete table *)
  mutable table_variant_hits : int;(* variant calls that reused an entry *)
  mutable table_suspends : int;    (* consumer reads of an incomplete table *)
  mutable table_resumes : int;     (* generator re-passes after new answers *)
  (* outcomes *)
  mutable solutions : int;
  mutable stack_words : int;      (* cumulative control-stack allocation *)
  mutable minor_words : int;      (* GC minor words allocated by the solve *)
  mutable promoted_words : int;   (* GC words promoted to the major heap *)
}

let create () =
  {
    unify_steps = 0;
    code_instrs = 0;
    env_allocs = 0;
    clause_tries = 0;
    builtin_calls = 0;
    trail_pushes = 0;
    untrails = 0;
    cp_allocs = 0;
    cp_updates = 0;
    backtracks = 0;
    bt_nodes_visited = 0;
    frames = 0;
    slots = 0;
    input_markers = 0;
    end_markers = 0;
    markers_avoided = 0;
    frames_avoided = 0;
    max_frame_nesting = 0;
    kills = 0;
    copies = 0;
    copied_cells = 0;
    or_scans = 0;
    publish_skipped_small = 0;
    steals = 0;
    polls = 0;
    task_switches = 0;
    lpco_hits = 0;
    lao_hits = 0;
    spo_hits = 0;
    pdo_hits = 0;
    seq_hits = 0;
    table_subgoals = 0;
    table_answers = 0;
    table_answer_hits = 0;
    table_variant_hits = 0;
    table_suspends = 0;
    table_resumes = 0;
    solutions = 0;
    stack_words = 0;
    minor_words = 0;
    promoted_words = 0;
  }

let merge_into ~into:a b =
  a.unify_steps <- a.unify_steps + b.unify_steps;
  a.code_instrs <- a.code_instrs + b.code_instrs;
  a.env_allocs <- a.env_allocs + b.env_allocs;
  a.clause_tries <- a.clause_tries + b.clause_tries;
  a.builtin_calls <- a.builtin_calls + b.builtin_calls;
  a.trail_pushes <- a.trail_pushes + b.trail_pushes;
  a.untrails <- a.untrails + b.untrails;
  a.cp_allocs <- a.cp_allocs + b.cp_allocs;
  a.cp_updates <- a.cp_updates + b.cp_updates;
  a.backtracks <- a.backtracks + b.backtracks;
  a.bt_nodes_visited <- a.bt_nodes_visited + b.bt_nodes_visited;
  a.frames <- a.frames + b.frames;
  a.slots <- a.slots + b.slots;
  a.input_markers <- a.input_markers + b.input_markers;
  a.end_markers <- a.end_markers + b.end_markers;
  a.markers_avoided <- a.markers_avoided + b.markers_avoided;
  a.frames_avoided <- a.frames_avoided + b.frames_avoided;
  a.max_frame_nesting <- max a.max_frame_nesting b.max_frame_nesting;
  a.kills <- a.kills + b.kills;
  a.copies <- a.copies + b.copies;
  a.copied_cells <- a.copied_cells + b.copied_cells;
  a.or_scans <- a.or_scans + b.or_scans;
  a.publish_skipped_small <- a.publish_skipped_small + b.publish_skipped_small;
  a.steals <- a.steals + b.steals;
  a.polls <- a.polls + b.polls;
  a.task_switches <- a.task_switches + b.task_switches;
  a.lpco_hits <- a.lpco_hits + b.lpco_hits;
  a.lao_hits <- a.lao_hits + b.lao_hits;
  a.spo_hits <- a.spo_hits + b.spo_hits;
  a.pdo_hits <- a.pdo_hits + b.pdo_hits;
  a.seq_hits <- a.seq_hits + b.seq_hits;
  a.table_subgoals <- a.table_subgoals + b.table_subgoals;
  a.table_answers <- a.table_answers + b.table_answers;
  a.table_answer_hits <- a.table_answer_hits + b.table_answer_hits;
  a.table_variant_hits <- a.table_variant_hits + b.table_variant_hits;
  a.table_suspends <- a.table_suspends + b.table_suspends;
  a.table_resumes <- a.table_resumes + b.table_resumes;
  a.solutions <- a.solutions + b.solutions;
  a.stack_words <- a.stack_words + b.stack_words;
  a.minor_words <- a.minor_words + b.minor_words;
  a.promoted_words <- a.promoted_words + b.promoted_words

let fields t =
  [ ("unify_steps", t.unify_steps);
    ("code_instrs", t.code_instrs);
    ("env_allocs", t.env_allocs);
    ("clause_tries", t.clause_tries);
    ("builtin_calls", t.builtin_calls);
    ("trail_pushes", t.trail_pushes);
    ("untrails", t.untrails);
    ("cp_allocs", t.cp_allocs);
    ("cp_updates", t.cp_updates);
    ("backtracks", t.backtracks);
    ("bt_nodes_visited", t.bt_nodes_visited);
    ("frames", t.frames);
    ("slots", t.slots);
    ("input_markers", t.input_markers);
    ("end_markers", t.end_markers);
    ("markers_avoided", t.markers_avoided);
    ("frames_avoided", t.frames_avoided);
    ("max_frame_nesting", t.max_frame_nesting);
    ("kills", t.kills);
    ("copies", t.copies);
    ("copied_cells", t.copied_cells);
    ("or_scans", t.or_scans);
    ("publish_skipped_small", t.publish_skipped_small);
    ("steals", t.steals);
    ("polls", t.polls);
    ("task_switches", t.task_switches);
    ("lpco_hits", t.lpco_hits);
    ("lao_hits", t.lao_hits);
    ("spo_hits", t.spo_hits);
    ("pdo_hits", t.pdo_hits);
    ("seq_hits", t.seq_hits);
    ("table_subgoals", t.table_subgoals);
    ("table_answers", t.table_answers);
    ("table_answer_hits", t.table_answer_hits);
    ("table_variant_hits", t.table_variant_hits);
    ("table_suspends", t.table_suspends);
    ("table_resumes", t.table_resumes);
    ("solutions", t.solutions);
    ("stack_words", t.stack_words);
    ("minor_words", t.minor_words);
    ("promoted_words", t.promoted_words) ]

(* Writes one named counter.  Must stay in sync with [fields]; the
   unknown-name case is reserved for forward compatibility of
   [of_fields] (a JSON dump from a newer build parses without error). *)
let set_field t name v =
  match name with
  | "unify_steps" -> t.unify_steps <- v
  | "code_instrs" -> t.code_instrs <- v
  | "env_allocs" -> t.env_allocs <- v
  | "clause_tries" -> t.clause_tries <- v
  | "builtin_calls" -> t.builtin_calls <- v
  | "trail_pushes" -> t.trail_pushes <- v
  | "untrails" -> t.untrails <- v
  | "cp_allocs" -> t.cp_allocs <- v
  | "cp_updates" -> t.cp_updates <- v
  | "backtracks" -> t.backtracks <- v
  | "bt_nodes_visited" -> t.bt_nodes_visited <- v
  | "frames" -> t.frames <- v
  | "slots" -> t.slots <- v
  | "input_markers" -> t.input_markers <- v
  | "end_markers" -> t.end_markers <- v
  | "markers_avoided" -> t.markers_avoided <- v
  | "frames_avoided" -> t.frames_avoided <- v
  | "max_frame_nesting" -> t.max_frame_nesting <- v
  | "kills" -> t.kills <- v
  | "copies" -> t.copies <- v
  | "copied_cells" -> t.copied_cells <- v
  | "or_scans" -> t.or_scans <- v
  | "publish_skipped_small" -> t.publish_skipped_small <- v
  | "steals" -> t.steals <- v
  | "polls" -> t.polls <- v
  | "task_switches" -> t.task_switches <- v
  | "lpco_hits" -> t.lpco_hits <- v
  | "lao_hits" -> t.lao_hits <- v
  | "spo_hits" -> t.spo_hits <- v
  | "pdo_hits" -> t.pdo_hits <- v
  | "seq_hits" -> t.seq_hits <- v
  | "table_subgoals" -> t.table_subgoals <- v
  | "table_answers" -> t.table_answers <- v
  | "table_answer_hits" -> t.table_answer_hits <- v
  | "table_variant_hits" -> t.table_variant_hits <- v
  | "table_suspends" -> t.table_suspends <- v
  | "table_resumes" -> t.table_resumes <- v
  | "solutions" -> t.solutions <- v
  | "stack_words" -> t.stack_words <- v
  | "minor_words" -> t.minor_words <- v
  | "promoted_words" -> t.promoted_words <- v
  | _ -> ()

let of_fields pairs =
  let t = create () in
  List.iter (fun (name, v) -> set_field t name v) pairs;
  t

(* All counters are ints, so the JSON object is trivially well formed;
   kept dependency-free (Ace_obs depends on this module, not vice versa). *)
let to_json t =
  "{"
  ^ String.concat ", "
      (List.map (fun (name, v) -> Printf.sprintf "\"%s\": %d" name v) (fields t))
  ^ "}"

let pp ?(verbose = false) ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, value) ->
      if verbose || value <> 0 then Format.fprintf ppf "%-21s %d@," name value)
    (fields t);
  Format.fprintf ppf "@]"
