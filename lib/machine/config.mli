(** Engine configuration: agent count and the four optimization switches
    (LPCO, LAO, SPO, PDO). *)

type t = {
  agents : int;
  lpco : bool;
  lao : bool;
  spo : bool;
  pdo : bool;
  par_and : bool;
      (** multicore engine only: run ['&'] conjunctions in parallel
          (parcall frames + cross-product join) alongside the
          or-parallel work stealing *)
  seq_threshold : int;
      (** granularity control: sequentialize parallel conjunctions whose
          estimated work is below this many term cells (0 = off) *)
  grain : int;
      (** or-parallel granularity: publish a choice point only if it still
          has at least this many untried alternatives (1 = no control) *)
  chunk : int;
      (** or-parallel chunking: at most this many alternatives per
          published task (0 = whole node in one task) *)
  compile : bool;
      (** run clauses as flat instruction code through the switch-on-term
          dispatch tree; off by default (the interpreted oracle
          reference), on in ace_run *)
  table_max_answers : int;
      (** tabling guard: abort with an engine error when a tabled subgoal
          accumulates more than this many distinct answers (0 = off) *)
  cost : Cost.t;
  max_solutions : int option;
}

(** One agent, all optimizations off, default cost model, all solutions. *)
val default : t

val unoptimized : ?agents:int -> unit -> t

val all_optimizations : ?agents:int -> unit -> t

(** Checks invariants, returning the configuration; raises
    [Invalid_argument] otherwise. *)
val validate : t -> t

val pp : Format.formatter -> t -> unit
