(* Per-domain event tracing for the engines.

   Design constraints, in order:

   1. Near-zero cost when off.  Engines always hold a buffer; the disabled
      one is a shared zero-capacity [null] whose [record] is a single load
      and branch.  No allocation, no clock read.

   2. Lock-free on the hot path when on.  Each domain owns one ring buffer
      (three unboxed int arrays) and is its only writer, so recording an
      event is three stores and an increment — no fences, no sharing.
      Buffers are only read after the domains join ([events] and the
      exporters are merge-at-end operations).

   3. Bounded memory.  The ring keeps the newest [capacity] events per
      domain and counts what it overwrote ([dropped]); a runaway query
      cannot take the process down by tracing.

   Timestamps are nanoseconds since the trace epoch (creation time), made
   strictly monotone per buffer: a clock step backwards (or two events in
   the same gettimeofday quantum) is bumped forward by 1 ns, so per-domain
   event order is always reconstructible from timestamps alone.  The
   simulated engines instead stamp events with their virtual clock via
   [record_at], giving a Perfetto-loadable picture of the simulated
   schedule. *)

type kind =
  | Task_spawn    (* a published task entered a deque; arg = alternatives *)
  | Task_start    (* a worker began running a task *)
  | Task_finish   (* the task's subtree is exhausted *)
  | Steal         (* took a task from another deque; arg = victim domain *)
  | Publish       (* snapshotted a choice point; arg = tasks shipped *)
  | Publish_skip  (* grain control declined; arg = nodes below grain *)
  | Copy          (* environment copy; arg = cells copied *)
  | Lao_hit       (* last-alternative trust-pop / in-place update *)
  | Lpco_hit      (* last parallel call flattened *)
  | Spo_hit       (* shallow-parallelism markers avoided *)
  | Pdo_hit       (* processor-determinacy markers avoided *)
  | Solution      (* a solution was recorded *)
  | Idle_begin    (* worker went hungry (stealing/polling) *)
  | Idle_end      (* worker found work or the run ended *)
  | Table_subgoal (* tabling: new subgoal entry; arg = entry id *)
  | Table_answer  (* tabling: distinct answer inserted; arg = entry id *)
  | Table_suspend (* tabling: consumer read an incomplete table; arg = entry id *)
  | Table_resume  (* tabling: generator re-pass scheduled; arg = entry id *)
  | Table_complete(* tabling: entry marked complete; arg = entry id *)

let all_kinds =
  [ Task_spawn; Task_start; Task_finish; Steal; Publish; Publish_skip; Copy;
    Lao_hit; Lpco_hit; Spo_hit; Pdo_hit; Solution; Idle_begin; Idle_end;
    Table_subgoal; Table_answer; Table_suspend; Table_resume; Table_complete ]

let kind_to_string = function
  | Task_spawn -> "task_spawn"
  | Task_start -> "task_start"
  | Task_finish -> "task_finish"
  | Steal -> "steal"
  | Publish -> "publish"
  | Publish_skip -> "publish_skip"
  | Copy -> "copy"
  | Lao_hit -> "lao_hit"
  | Lpco_hit -> "lpco_hit"
  | Spo_hit -> "spo_hit"
  | Pdo_hit -> "pdo_hit"
  | Solution -> "solution"
  | Idle_begin -> "idle_begin"
  | Idle_end -> "idle_end"
  | Table_subgoal -> "table_subgoal"
  | Table_answer -> "table_answer"
  | Table_suspend -> "table_suspend"
  | Table_resume -> "table_resume"
  | Table_complete -> "table_complete"

let kind_to_int = function
  | Task_spawn -> 0
  | Task_start -> 1
  | Task_finish -> 2
  | Steal -> 3
  | Publish -> 4
  | Publish_skip -> 5
  | Copy -> 6
  | Lao_hit -> 7
  | Lpco_hit -> 8
  | Spo_hit -> 9
  | Pdo_hit -> 10
  | Solution -> 11
  | Idle_begin -> 12
  | Idle_end -> 13
  | Table_subgoal -> 14
  | Table_answer -> 15
  | Table_suspend -> 16
  | Table_resume -> 17
  | Table_complete -> 18

let kind_of_int i = List.nth all_kinds i

type buffer = {
  b_dom : int;
  b_cap : int;            (* power of two; 0 for [null] *)
  b_mask : int;
  b_epoch : float;        (* Unix time of the owning trace's creation *)
  b_ts : int array;
  b_kind : int array;
  b_arg : int array;
  mutable b_n : int;      (* events ever recorded (>= retained) *)
  mutable b_last : int;   (* last timestamp issued, for monotonicity *)
  b_enabled : bool;
}

let null =
  {
    b_dom = 0;
    b_cap = 0;
    b_mask = 0;
    b_epoch = 0.0;
    b_ts = [||];
    b_kind = [||];
    b_arg = [||];
    b_n = 0;
    b_last = 0;
    b_enabled = false;
  }

type t = {
  capacity : int;
  epoch : float;
  lock : Mutex.t;
  mutable buffers : buffer list; (* newest first; guarded by [lock] *)
  t_enabled : bool;
}

let rec pow2_above n k = if k >= n then k else pow2_above n (2 * k)

let create ?(capacity = 65536) () =
  if capacity < 1 then invalid_arg "Trace.create: capacity must be >= 1";
  {
    capacity = pow2_above capacity 1;
    epoch = Unix.gettimeofday ();
    lock = Mutex.create ();
    buffers = [];
    t_enabled = true;
  }

let disabled =
  {
    capacity = 0;
    epoch = 0.0;
    lock = Mutex.create ();
    buffers = [];
    t_enabled = false;
  }

let enabled t = t.t_enabled

(* Registers (under the trace lock) and returns the calling domain's ring.
   The returned buffer must only ever be written by one domain at a time —
   the engines allocate one per worker before the spawn. *)
let buffer t ~dom =
  if not t.t_enabled then null
  else begin
    let b =
      {
        b_dom = dom;
        b_cap = t.capacity;
        b_mask = t.capacity - 1;
        b_epoch = t.epoch;
        b_ts = Array.make t.capacity 0;
        b_kind = Array.make t.capacity 0;
        b_arg = Array.make t.capacity 0;
        b_n = 0;
        b_last = -1;
        b_enabled = true;
      }
    in
    Mutex.lock t.lock;
    t.buffers <- b :: t.buffers;
    Mutex.unlock t.lock;
    b
  end

(* Nanoseconds since the buffer's trace epoch.  Works on the [null] buffer
   too (engines use it for busy/idle accounting even when tracing is off;
   only differences are meaningful there). *)
let now_ns b = int_of_float ((Unix.gettimeofday () -. b.b_epoch) *. 1e9)

let record_at b ~ts kind arg =
  if b.b_enabled then begin
    let ts = if ts <= b.b_last then b.b_last + 1 else ts in
    b.b_last <- ts;
    let i = b.b_n land b.b_mask in
    b.b_ts.(i) <- ts;
    b.b_kind.(i) <- kind_to_int kind;
    b.b_arg.(i) <- arg;
    b.b_n <- b.b_n + 1
  end

let record b kind arg =
  if b.b_enabled then record_at b ~ts:(now_ns b) kind arg

(* ------------------------------------------------------------------ *)
(* Merge (after the domains join)                                      *)
(* ------------------------------------------------------------------ *)

type event = { e_dom : int; e_ts : int; e_kind : kind; e_arg : int }

let buffer_events b =
  let retained = min b.b_n b.b_cap in
  List.init retained (fun j ->
      let i = (b.b_n - retained + j) land b.b_mask in
      {
        e_dom = b.b_dom;
        e_ts = b.b_ts.(i);
        e_kind = kind_of_int b.b_kind.(i);
        e_arg = b.b_arg.(i);
      })

let buffers t =
  Mutex.lock t.lock;
  let bs = List.rev t.buffers in
  Mutex.unlock t.lock;
  bs

let events t =
  buffers t
  |> List.concat_map buffer_events
  |> List.stable_sort (fun a b ->
         match compare a.e_ts b.e_ts with 0 -> compare a.e_dom b.e_dom | c -> c)

let recorded t = List.fold_left (fun acc b -> acc + b.b_n) 0 (buffers t)

let dropped t =
  List.fold_left (fun acc b -> acc + max 0 (b.b_n - b.b_cap)) 0 (buffers t)

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

(* Chrome trace_event JSON (load in Perfetto / chrome://tracing): one
   thread ("track") per domain, duration events for task and idle spans,
   instants for everything else.  Timestamps are microseconds. *)
let to_chrome_json t =
  let us ts = Json.Num (float_of_int ts /. 1e3) in
  let base ph name dom = [ ("ph", Json.Str ph); ("name", Json.Str name);
                           ("pid", Json.int 0); ("tid", Json.int dom) ] in
  let meta_events =
    let doms =
      buffers t |> List.map (fun b -> b.b_dom) |> List.sort_uniq compare
    in
    Json.Obj
      (base "M" "process_name" 0
       @ [ ("args", Json.Obj [ ("name", Json.Str "ace") ]) ])
    :: List.map
         (fun dom ->
           Json.Obj
             (base "M" "thread_name" dom
              @ [ ("args",
                   Json.Obj [ ("name", Json.Str (Printf.sprintf "domain %d" dom)) ]) ]))
         doms
  in
  (* A buffer that wrapped may retain an E without its B; drop span ends
     with no matching open so the JSON always loads cleanly. *)
  let span_events b =
    let open_spans = Hashtbl.create 4 in (* name -> open count *)
    let depth name = Option.value ~default:0 (Hashtbl.find_opt open_spans name) in
    List.filter_map
      (fun e ->
        let span name = function
          | `Begin ->
            Hashtbl.replace open_spans name (depth name + 1);
            Some (Json.Obj (base "B" name b.b_dom @ [ ("ts", us e.e_ts) ]))
          | `End ->
            if depth name = 0 then None
            else begin
              Hashtbl.replace open_spans name (depth name - 1);
              Some (Json.Obj (base "E" name b.b_dom @ [ ("ts", us e.e_ts) ]))
            end
        in
        match e.e_kind with
        | Task_start -> span "task" `Begin
        | Task_finish -> span "task" `End
        | Idle_begin -> span "idle" `Begin
        | Idle_end -> span "idle" `End
        | kind ->
          Some
            (Json.Obj
               (base "i" (kind_to_string kind) b.b_dom
                @ [ ("ts", us e.e_ts); ("s", Json.Str "t");
                    ("args", Json.Obj [ ("n", Json.int e.e_arg) ]) ])))
      (buffer_events b)
  in
  let trace_events = meta_events @ List.concat_map span_events (buffers t) in
  Json.to_string
    (Json.Obj
       [ ("displayTimeUnit", Json.Str "ns");
         ("otherData",
          Json.Obj
            [ ("recorded", Json.int (recorded t));
              ("dropped", Json.int (dropped t)) ]);
         ("traceEvents", Json.List trace_events) ])

(* Compact JSONL: one event object per line, merged and time-sorted. *)
let to_jsonl t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf
        (Json.to_string
           (Json.Obj
              [ ("dom", Json.int e.e_dom); ("ts", Json.int e.e_ts);
                ("ev", Json.Str (kind_to_string e.e_kind));
                ("arg", Json.int e.e_arg) ]));
      Buffer.add_char buf '\n')
    (events t);
  Buffer.contents buf
