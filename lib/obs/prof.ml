(* Per-predicate profiler: 4-port counters, differential cost
   attribution, call-graph edges and a bounded-depth calling-context
   tree per shard.  See prof.mli for the discipline and DESIGN.md
   § Profiling for the port mapping. *)

module Symbol = Ace_term.Symbol
module Term = Ace_term.Term
module Stats = Ace_machine.Stats

(* Ancestor stacks deeper than this are truncated (counted, not
   pushed): recursion still profiles, folded stacks stay bounded. *)
let max_depth = 64

(* Packed predicate key: symbol id * 256 + arity.  Hot-path hooks hash
   machine integers only; names reappear at view time via
   [Symbol.of_id]. *)
let key sym arity = (Symbol.id sym lsl 8) lor (arity land 255)
let root_key = key (Symbol.intern "$root") 0
let unknown_key = key (Symbol.intern "?") 0

let key_of_term g =
  match Term.deref g with
  | Term.Atom s -> key s 0
  | Term.Struct (f, args) -> key f (Array.length args)
  | Term.Int _ | Term.Var _ -> unknown_key

let key_name k =
  let sym = Symbol.of_id (k lsr 8) and arity = k land 255 in
  if arity = 0 then Symbol.name sym
  else Printf.sprintf "%s/%d" (Symbol.name sym) arity

(* Per-predicate counters: the four ports, exclusive costs (charged
   differentially at port events) and the parallel attribution. *)
type counts = {
  mutable calls : int;
  mutable exits : int;
  mutable redos : int;
  mutable fails : int;
  mutable instrs : int;
  mutable tries : int;
  mutable envs : int;
  mutable trail : int;
  mutable cycles : int;
  mutable minor : int;
  mutable tasks : int;
  mutable steals : int;
  mutable copied : int;
  mutable pslots : int;
  mutable is_builtin : bool;
}

let fresh_counts () =
  {
    calls = 0;
    exits = 0;
    redos = 0;
    fails = 0;
    instrs = 0;
    tries = 0;
    envs = 0;
    trail = 0;
    cycles = 0;
    minor = 0;
    tasks = 0;
    steals = 0;
    copied = 0;
    pslots = 0;
    is_builtin = false;
  }

(* One calling-context-tree node: interned per (parent, predicate), so
   a path's exclusive cost accumulates in one cell. *)
type node = { n_key : int; n_parent : int; mutable n_cost : int }

type shard = {
  p_on : bool;
  p_dom : int;
  p_stats : Stats.t;
  p_clock : unit -> int;
  (* last-sample snapshot for differential attribution *)
  mutable l_instrs : int;
  mutable l_tries : int;
  mutable l_envs : int;
  mutable l_trail : int;
  mutable l_clock : int;
  mutable l_minor : float;
  tab : (int, counts) Hashtbl.t;
  edges : (int * int, int ref) Hashtbl.t;
  mutable nodes : node array;
  mutable n_nodes : int;
  children : (int * int, int) Hashtbl.t; (* (parent node, key) -> node *)
  stack : int array; (* node ids; stack.(0) is the root *)
  mutable depth : int;
  mutable truncated : int;
}

type t = { t_on : bool; t_lock : Mutex.t; mutable t_shards : shard list }

let null =
  {
    p_on = false;
    p_dom = 0;
    p_stats = Stats.create ();
    p_clock = (fun () -> 0);
    l_instrs = 0;
    l_tries = 0;
    l_envs = 0;
    l_trail = 0;
    l_clock = 0;
    l_minor = 0.0;
    tab = Hashtbl.create 1;
    edges = Hashtbl.create 1;
    nodes = [||];
    n_nodes = 0;
    children = Hashtbl.create 1;
    stack = [| 0 |];
    depth = 1;
    truncated = 0;
  }

let create () = { t_on = true; t_lock = Mutex.create (); t_shards = [] }
let disabled = { t_on = false; t_lock = Mutex.create (); t_shards = [] }
let enabled t = t.t_on

let shard t ~dom ?stats ?clock () =
  if not t.t_on then null
  else begin
    let root = { n_key = root_key; n_parent = -1; n_cost = 0 } in
    let nodes = Array.make 64 root in
    let sh =
      {
        p_on = true;
        p_dom = dom;
        p_stats = (match stats with Some s -> s | None -> Stats.create ());
        p_clock = (match clock with Some c -> c | None -> fun () -> 0);
        l_instrs = 0;
        l_tries = 0;
        l_envs = 0;
        l_trail = 0;
        l_clock = 0;
        l_minor = 0.0;
        tab = Hashtbl.create 64;
        edges = Hashtbl.create 64;
        nodes;
        n_nodes = 1;
        children = Hashtbl.create 64;
        stack = Array.make (max_depth + 1) 0;
        depth = 1;
        truncated = 0;
      }
    in
    (* sampling baseline: counters accumulated before profiling started
       must not be charged to the first predicate *)
    sh.l_instrs <- sh.p_stats.Stats.code_instrs;
    sh.l_tries <- sh.p_stats.Stats.clause_tries;
    sh.l_envs <- sh.p_stats.Stats.env_allocs;
    sh.l_trail <- sh.p_stats.Stats.trail_pushes + sh.p_stats.Stats.untrails;
    sh.l_clock <- sh.p_clock ();
    sh.l_minor <- Gc.minor_words ();
    Mutex.lock t.t_lock;
    t.t_shards <- sh :: t.t_shards;
    Mutex.unlock t.t_lock;
    sh
  end

let live sh = sh.p_on

let counts_for sh k =
  match Hashtbl.find_opt sh.tab k with
  | Some c -> c
  | None ->
    let c = fresh_counts () in
    Hashtbl.add sh.tab k c;
    c

let top_key sh = sh.nodes.(sh.stack.(sh.depth - 1)).n_key
let top_node sh = sh.nodes.(sh.stack.(sh.depth - 1))

(* Charge everything since the last port event to the current stack
   top: exclusive attribution (a callee's first port event closes the
   caller's window). *)
let flush sh =
  let st = sh.p_stats in
  let instrs = st.Stats.code_instrs
  and tries = st.Stats.clause_tries
  and envs = st.Stats.env_allocs
  and trail = st.Stats.trail_pushes + st.Stats.untrails
  and clock = sh.p_clock ()
  and minor = Gc.minor_words () in
  let c = counts_for sh (top_key sh) in
  c.instrs <- c.instrs + instrs - sh.l_instrs;
  c.tries <- c.tries + tries - sh.l_tries;
  c.envs <- c.envs + envs - sh.l_envs;
  c.trail <- c.trail + trail - sh.l_trail;
  let dt = clock - sh.l_clock in
  c.cycles <- c.cycles + dt;
  (top_node sh).n_cost <- (top_node sh).n_cost + dt;
  c.minor <- c.minor + int_of_float (minor -. sh.l_minor);
  sh.l_instrs <- instrs;
  sh.l_tries <- tries;
  sh.l_envs <- envs;
  sh.l_trail <- trail;
  sh.l_clock <- clock;
  sh.l_minor <- minor

let edge sh caller callee =
  match Hashtbl.find_opt sh.edges (caller, callee) with
  | Some r -> incr r
  | None -> Hashtbl.add sh.edges (caller, callee) (ref 1)

let intern_child sh parent k =
  match Hashtbl.find_opt sh.children (parent, k) with
  | Some id -> id
  | None ->
    if sh.n_nodes = Array.length sh.nodes then begin
      let bigger = Array.make (2 * sh.n_nodes) sh.nodes.(0) in
      Array.blit sh.nodes 0 bigger 0 sh.n_nodes;
      sh.nodes <- bigger
    end;
    let id = sh.n_nodes in
    sh.nodes.(id) <- { n_key = k; n_parent = parent; n_cost = 0 };
    sh.n_nodes <- id + 1;
    Hashtbl.add sh.children (parent, k) id;
    id

let push sh k =
  if sh.depth > max_depth then sh.truncated <- sh.truncated + 1
  else begin
    let id = intern_child sh sh.stack.(sh.depth - 1) k in
    sh.stack.(sh.depth) <- id;
    sh.depth <- sh.depth + 1
  end

(* Shallowest-from-top occurrence of [k] on the stack (never the root
   slot), or -1. *)
let find_on_stack sh k =
  let rec go i =
    if i < 1 then -1
    else if sh.nodes.(sh.stack.(i)).n_key = k then i
    else go (i - 1)
  in
  go (sh.depth - 1)

let call sh k =
  if sh.p_on then begin
    flush sh;
    let c = counts_for sh k in
    c.calls <- c.calls + 1;
    edge sh (top_key sh) k;
    push sh k
  end

let exit_key sh k =
  if sh.p_on then begin
    flush sh;
    let c = counts_for sh k in
    c.exits <- c.exits + 1;
    match find_on_stack sh k with
    | -1 -> ()
    | i -> sh.depth <- i (* pop through it: LCO frames above never exit *)
  end

let exit_top sh =
  if sh.p_on then begin
    flush sh;
    let c = counts_for sh (top_key sh) in
    c.exits <- c.exits + 1;
    if sh.depth > 1 then sh.depth <- sh.depth - 1
  end

let redo sh k =
  if sh.p_on then begin
    flush sh;
    let c = counts_for sh k in
    c.redos <- c.redos + 1;
    match find_on_stack sh k with
    | -1 ->
      (* a context this shard never entered (stolen task, copied
         machine): re-root the stack at the retried predicate *)
      sh.depth <- 1;
      push sh k
    | i -> sh.depth <- i + 1
  end

let fail sh k =
  if sh.p_on then begin
    flush sh;
    let c = counts_for sh k in
    c.fails <- c.fails + 1;
    match find_on_stack sh k with -1 -> () | i -> sh.depth <- i
  end

let builtin sh k ~ok =
  if sh.p_on then begin
    flush sh;
    let c = counts_for sh k in
    c.is_builtin <- true;
    c.calls <- c.calls + 1;
    if ok then c.exits <- c.exits + 1 else c.fails <- c.fails + 1;
    edge sh (top_key sh) k
  end

let spawned sh n =
  if sh.p_on then begin
    let c = counts_for sh (top_key sh) in
    c.tasks <- c.tasks + n
  end

let stole sh k =
  if sh.p_on then begin
    let c = counts_for sh k in
    c.steals <- c.steals + 1
  end

let copied sh cells =
  if sh.p_on then begin
    let c = counts_for sh (top_key sh) in
    c.copied <- c.copied + cells
  end

let slots sh n =
  if sh.p_on then begin
    let c = counts_for sh (top_key sh) in
    c.pslots <- c.pslots + n
  end

(* ------------------------------------------------------------------ *)
(* Views                                                               *)
(* ------------------------------------------------------------------ *)

type row = {
  r_name : string;
  r_calls : int;
  r_exits : int;
  r_redos : int;
  r_fails : int;
  r_instrs : int;
  r_tries : int;
  r_envs : int;
  r_trail : int;
  r_cycles : int;
  r_minor : int;
  r_tasks : int;
  r_steals : int;
  r_copied : int;
  r_slots : int;
}

(* Merge the shards' per-predicate tables (reads only; call after the
   run, like [Metrics.total]). *)
let merged t =
  let agg : (int, counts) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun sh ->
      Hashtbl.iter
        (fun k (c : counts) ->
          let m =
            match Hashtbl.find_opt agg k with
            | Some m -> m
            | None ->
              let m = fresh_counts () in
              Hashtbl.add agg k m;
              m
          in
          m.calls <- m.calls + c.calls;
          m.exits <- m.exits + c.exits;
          m.redos <- m.redos + c.redos;
          m.fails <- m.fails + c.fails;
          m.instrs <- m.instrs + c.instrs;
          m.tries <- m.tries + c.tries;
          m.envs <- m.envs + c.envs;
          m.trail <- m.trail + c.trail;
          m.cycles <- m.cycles + c.cycles;
          m.minor <- m.minor + c.minor;
          m.tasks <- m.tasks + c.tasks;
          m.steals <- m.steals + c.steals;
          m.copied <- m.copied + c.copied;
          m.pslots <- m.pslots + c.pslots;
          m.is_builtin <- m.is_builtin || c.is_builtin)
        sh.tab)
    t.t_shards;
  agg

let rank (ka, (a : counts)) (kb, (b : counts)) =
  if a.cycles <> b.cycles then compare b.cycles a.cycles
  else if a.instrs <> b.instrs then compare b.instrs a.instrs
  else if a.calls <> b.calls then compare b.calls a.calls
  else compare (key_name ka) (key_name kb)

let ranked t =
  merged t |> Hashtbl.to_seq |> List.of_seq
  |> List.filter (fun (k, _) -> k <> root_key)
  |> List.sort rank

let row_of (k, (c : counts)) =
  {
    r_name = key_name k;
    r_calls = c.calls;
    r_exits = c.exits;
    r_redos = c.redos;
    r_fails = c.fails;
    r_instrs = c.instrs;
    r_tries = c.tries;
    r_envs = c.envs;
    r_trail = c.trail;
    r_cycles = c.cycles;
    r_minor = c.minor;
    r_tasks = c.tasks;
    r_steals = c.steals;
    r_copied = c.copied;
    r_slots = c.pslots;
  }

let rows t = List.map row_of (ranked t)

let user_pred (k, (c : counts)) =
  (not c.is_builtin) && k <> unknown_key
  && String.length (key_name k) > 0
  && (key_name k).[0] <> '$'

let top_hotspot t =
  match List.filter user_pred (ranked t) with
  | [] -> None
  | best :: _ -> Some (row_of best)

let report ?(limit = 20) t =
  let buf = Buffer.create 1024 in
  let rs = rows t in
  let shown = List.filteri (fun i _ -> i < limit) rs in
  Buffer.add_string buf
    (Printf.sprintf "%-24s %9s %9s %9s %9s %11s %9s %12s %11s\n" "predicate"
       "calls" "exits" "redos" "fails" "instrs" "tries" "cycles" "minor_w");
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%-24s %9d %9d %9d %9d %11d %9d %12d %11d\n" r.r_name
           r.r_calls r.r_exits r.r_redos r.r_fails r.r_instrs r.r_tries
           r.r_cycles r.r_minor))
    shown;
  let par =
    List.filter
      (fun r -> r.r_tasks + r.r_steals + r.r_copied + r.r_slots > 0)
      rs
  in
  if par <> [] then begin
    Buffer.add_string buf
      (Printf.sprintf "\n%-24s %9s %9s %12s %9s\n" "predicate" "tasks" "steals"
         "copied" "slots");
    List.iter
      (fun r ->
        Buffer.add_string buf
          (Printf.sprintf "%-24s %9d %9d %12d %9d\n" r.r_name r.r_tasks
             r.r_steals r.r_copied r.r_slots))
      par
  end;
  Buffer.contents buf

let to_json t =
  let preds =
    List.map
      (fun r ->
        Json.Obj
          [ ("name", Json.Str r.r_name);
            ("calls", Json.int r.r_calls);
            ("exits", Json.int r.r_exits);
            ("redos", Json.int r.r_redos);
            ("fails", Json.int r.r_fails);
            ("code_instrs", Json.int r.r_instrs);
            ("clause_tries", Json.int r.r_tries);
            ("env_allocs", Json.int r.r_envs);
            ("trail_ops", Json.int r.r_trail);
            ("cycles", Json.int r.r_cycles);
            ("minor_words", Json.int r.r_minor);
            ("tasks", Json.int r.r_tasks);
            ("steals", Json.int r.r_steals);
            ("copied_cells", Json.int r.r_copied);
            ("parcall_slots", Json.int r.r_slots) ])
      (rows t)
  in
  let edges : (int * int, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun sh ->
      Hashtbl.iter
        (fun e r ->
          Hashtbl.replace edges e
            (!r + match Hashtbl.find_opt edges e with Some n -> n | None -> 0))
        sh.edges)
    t.t_shards;
  let edge_rows =
    Hashtbl.to_seq edges |> List.of_seq
    |> List.sort (fun ((a, b), _) ((c, d), _) -> compare (a, b) (c, d))
    |> List.map (fun ((caller, callee), n) ->
           Json.Obj
             [ ("caller", Json.Str (key_name caller));
               ("callee", Json.Str (key_name callee));
               ("count", Json.int n) ])
  in
  let truncated = List.fold_left (fun n sh -> n + sh.truncated) 0 t.t_shards in
  Json.Obj
    [ ("domains", Json.int (List.length t.t_shards));
      ("truncated", Json.int truncated);
      ("predicates", Json.List preds);
      ("edges", Json.List edge_rows) ]

let to_folded t =
  let paths : (string, int) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun sh ->
      for i = 0 to sh.n_nodes - 1 do
        let node = sh.nodes.(i) in
        if node.n_cost > 0 then begin
          let rec path id acc =
            if id < 0 then acc
            else
              let n = sh.nodes.(id) in
              path n.n_parent (key_name n.n_key :: acc)
          in
          let line = String.concat ";" (path i []) in
          Hashtbl.replace paths line
            (node.n_cost
            + match Hashtbl.find_opt paths line with Some n -> n | None -> 0)
        end
      done)
    t.t_shards;
  Hashtbl.to_seq paths |> List.of_seq
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.map (fun (p, n) -> Printf.sprintf "%s %d" p n)
  |> String.concat "\n"
  |> fun s -> if s = "" then s else s ^ "\n"
