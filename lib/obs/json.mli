(** Minimal JSON values, printing and parsing.

    Exists so the observability exporters can build provably
    well-formed output and the tests can round-trip it without an
    external JSON dependency. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(** Compact (single-line) serialization.  Integral [Num]s print without a
    decimal point. *)
val to_string : t -> string

(** Parses a complete JSON document; [Error msg] carries the byte offset of
    the first problem. *)
val parse : string -> (t, string) result

(** Object field lookup; [None] for non-objects and missing keys. *)
val member : string -> t -> t option

(** Array payload; [None] for non-arrays. *)
val to_list : t -> t list option

(** [int n] is [Num (float_of_int n)]. *)
val int : int -> t
