(* Per-domain metric shards.

   The engines' structural counters ({!Ace_machine.Stats}) were designed
   for one record per run; on the multi-domain engine that either means a
   racy shared record or a merge that loses attribution.  A [Metrics.t]
   gives every domain its own shard — a private [Stats.t] plus the
   distribution counters a flat total cannot express (copy sizes, task
   durations, steal retries) and the busy/idle nanosecond accounting behind
   the utilization report.

   Single-writer discipline: shard [i] may only be written by worker [i]
   while the run is live; [total]/[utilization]/[to_json] read all shards
   and must only run after the workers have joined (same contract as
   {!Trace.events}). *)

module Stats = Ace_machine.Stats

(* ------------------------------------------------------------------ *)
(* Power-of-two histograms                                             *)
(* ------------------------------------------------------------------ *)

(* Bucket [b] counts values in [2^(b-1), 2^b) (bucket 0 counts <= 0);
   enough resolution to see "one huge copy" vs "many small ones" at a cost
   of one store per sample. *)
type hist = {
  mutable h_n : int;
  mutable h_sum : int;
  mutable h_max : int;
  h_buckets : int array;
}

let hist_bucket_count = 63

let hist_create () =
  { h_n = 0; h_sum = 0; h_max = 0; h_buckets = Array.make hist_bucket_count 0 }

let bucket_of v =
  if v <= 0 then 0
  else begin
    let rec go b v = if v = 0 then b else go (b + 1) (v lsr 1) in
    min (hist_bucket_count - 1) (go 0 v)
  end

let hist_add h v =
  h.h_n <- h.h_n + 1;
  h.h_sum <- h.h_sum + v;
  if v > h.h_max then h.h_max <- v;
  h.h_buckets.(bucket_of v) <- h.h_buckets.(bucket_of v) + 1

let hist_mean h = if h.h_n = 0 then 0.0 else float_of_int h.h_sum /. float_of_int h.h_n

let hist_merge_into ~into:a b =
  a.h_n <- a.h_n + b.h_n;
  a.h_sum <- a.h_sum + b.h_sum;
  if b.h_max > a.h_max then a.h_max <- b.h_max;
  Array.iteri (fun i n -> a.h_buckets.(i) <- a.h_buckets.(i) + n) b.h_buckets

(* Non-empty buckets as (inclusive upper bound, count) pairs: bucket [b]
   holds values in [2^(b-1), 2^b - 1], so the bound is 2^b - 1. *)
let hist_buckets h =
  let acc = ref [] in
  for b = hist_bucket_count - 1 downto 0 do
    if h.h_buckets.(b) > 0 then
      acc := ((if b = 0 then 0 else (1 lsl b) - 1), h.h_buckets.(b)) :: !acc
  done;
  !acc

let hist_to_json h =
  Json.Obj
    [ ("n", Json.int h.h_n); ("sum", Json.int h.h_sum);
      ("max", Json.int h.h_max); ("mean", Json.Num (hist_mean h));
      ("buckets",
       Json.List
         (List.map
            (fun (ub, n) -> Json.List [ Json.int ub; Json.int n ])
            (hist_buckets h))) ]

(* ------------------------------------------------------------------ *)
(* Shards                                                              *)
(* ------------------------------------------------------------------ *)

type shard = {
  s_dom : int;
  s_stats : Stats.t;
  s_copy_cells : hist;  (* cells per environment copy *)
  s_task_ns : hist;     (* task durations (par engine, wall ns) *)
  s_steal_tries : hist; (* poll iterations per successful steal *)
  mutable s_busy_ns : int; (* wall ns inside tasks *)
  mutable s_idle_ns : int; (* wall ns hungry (stealing/polling) *)
}

type t = { shards : shard array }

let make_shard dom stats =
  {
    s_dom = dom;
    s_stats = stats;
    s_copy_cells = hist_create ();
    s_task_ns = hist_create ();
    s_steal_tries = hist_create ();
    s_busy_ns = 0;
    s_idle_ns = 0;
  }

let create ~domains =
  if domains < 1 then invalid_arg "Metrics.create: domains must be >= 1";
  { shards = Array.init domains (fun i -> make_shard i (Stats.create ())) }

(* Wraps existing per-agent records (the simulated engines already keep
   per-worker stats); the distribution counters start empty. *)
let of_stats_array stats = { shards = Array.mapi make_shard stats }

let of_stats stats = of_stats_array [| stats |]

let domains t = Array.length t.shards

let shard t i = t.shards.(i)

let stats t i = t.shards.(i).s_stats

let per_domain t = Array.map (fun s -> s.s_stats) t.shards

(* Merged run total; a fresh record, so calling it never aliases a shard. *)
let total t =
  let acc = Stats.create () in
  Array.iter (fun s -> Stats.merge_into ~into:acc s.s_stats) t.shards;
  acc

(* ------------------------------------------------------------------ *)
(* Utilization report                                                  *)
(* ------------------------------------------------------------------ *)

type util = {
  u_dom : int;
  u_busy_ns : int;
  u_idle_ns : int;
  u_busy_frac : float; (* busy / (busy + idle); 0 when unmeasured *)
  u_tasks : int;
  u_steals : int;
  u_copies : int;
  u_solutions : int;
}

let utilization t =
  Array.to_list
    (Array.map
       (fun s ->
         let span = s.s_busy_ns + s.s_idle_ns in
         {
           u_dom = s.s_dom;
           u_busy_ns = s.s_busy_ns;
           u_idle_ns = s.s_idle_ns;
           u_busy_frac =
             (if span = 0 then 0.0
              else float_of_int s.s_busy_ns /. float_of_int span);
           u_tasks = s.s_task_ns.h_n;
           u_steals = s.s_stats.Stats.steals;
           u_copies = s.s_stats.Stats.copies;
           u_solutions = s.s_stats.Stats.solutions;
         })
       t.shards)

let pp_utilization ppf t =
  Format.fprintf ppf "@[<v>== per-domain utilization ==@,";
  Format.fprintf ppf "%6s %10s %10s %7s %7s %7s %8s %10s@," "domain" "busy-ms"
    "idle-ms" "busy%" "tasks" "steals" "copies" "solutions";
  List.iter
    (fun u ->
      Format.fprintf ppf "%6d %10.3f %10.3f %6.1f%% %7d %7d %8d %10d@," u.u_dom
        (float_of_int u.u_busy_ns /. 1e6)
        (float_of_int u.u_idle_ns /. 1e6)
        (100.0 *. u.u_busy_frac) u.u_tasks u.u_steals u.u_copies u.u_solutions)
    (utilization t);
  Format.fprintf ppf "@]"

(* ------------------------------------------------------------------ *)
(* JSON export                                                         *)
(* ------------------------------------------------------------------ *)

let stats_to_json s =
  Json.Obj (List.map (fun (k, v) -> (k, Json.int v)) (Stats.fields s))

let shard_to_json s =
  Json.Obj
    [ ("dom", Json.int s.s_dom);
      ("busy_ns", Json.int s.s_busy_ns);
      ("idle_ns", Json.int s.s_idle_ns);
      ("copy_cells", hist_to_json s.s_copy_cells);
      ("task_ns", hist_to_json s.s_task_ns);
      ("steal_tries", hist_to_json s.s_steal_tries);
      ("stats", stats_to_json s.s_stats) ]

let to_json t =
  Json.Obj
    [ ("domains", Json.int (domains t));
      ("total", stats_to_json (total t));
      ("shards", Json.List (Array.to_list (Array.map shard_to_json t.shards))) ]
