(** Per-domain event tracing with fixed-capacity ring buffers.

    Each worker domain records into its own single-writer ring (lock-free,
    three unboxed stores per event); buffers are merged only after the
    domains join.  With tracing off the shared {!null} buffer makes
    {!record} a load and a branch.  See DESIGN.md, "Observability". *)

type kind =
  | Task_spawn    (** published task entered a deque; arg = alternatives *)
  | Task_start    (** worker began running a task *)
  | Task_finish   (** task subtree exhausted *)
  | Steal         (** took a task from another deque; arg = victim domain *)
  | Publish       (** choice point snapshotted; arg = tasks shipped *)
  | Publish_skip  (** grain control declined; arg = nodes below grain *)
  | Copy          (** environment copy; arg = cells copied *)
  | Lao_hit       (** last-alternative trust-pop / in-place update *)
  | Lpco_hit      (** last parallel call flattened *)
  | Spo_hit       (** shallow-parallelism markers avoided *)
  | Pdo_hit       (** processor-determinacy markers avoided *)
  | Solution      (** a solution was recorded *)
  | Idle_begin    (** worker went hungry *)
  | Idle_end      (** worker found work or the run ended *)
  | Table_subgoal (** tabling: new subgoal entry; arg = entry id *)
  | Table_answer  (** tabling: distinct answer inserted; arg = entry id *)
  | Table_suspend (** tabling: consumer read an incomplete table *)
  | Table_resume  (** tabling: generator re-pass scheduled *)
  | Table_complete  (** tabling: entry marked complete; arg = entry id *)

val all_kinds : kind list

val kind_to_string : kind -> string

type t
(** A whole-run trace: an epoch plus the registered per-domain buffers. *)

type buffer
(** One domain's ring.  Single-writer: only the owning domain may record
    into it while the run is live. *)

(** Creates an enabled trace; [capacity] (default 65536) is the per-domain
    ring size, rounded up to a power of two. *)
val create : ?capacity:int -> unit -> t

(** The shared no-op trace: {!buffer} returns {!null}. *)
val disabled : t

val enabled : t -> bool

(** Registers and returns the ring for [dom].  Call once per worker,
    before the domain spawns. *)
val buffer : t -> dom:int -> buffer

(** The shared disabled buffer ({!record} on it is a load and a branch). *)
val null : buffer

(** Nanoseconds since the trace epoch.  Also works on {!null} (used for
    busy/idle accounting when tracing is off; only differences are
    meaningful there). *)
val now_ns : buffer -> int

(** Records an event stamped with the wall clock.  Timestamps are made
    strictly monotone per buffer. *)
val record : buffer -> kind -> int -> unit

(** Records an event with an explicit timestamp — the simulated engines
    pass their virtual clock. *)
val record_at : buffer -> ts:int -> kind -> int -> unit

type event = { e_dom : int; e_ts : int; e_kind : kind; e_arg : int }

(** All retained events, merged and sorted by (timestamp, domain).  Only
    meaningful after the recording domains have joined. *)
val events : t -> event list

(** Events ever recorded (including overwritten ones). *)
val recorded : t -> int

(** Events lost to ring overflow, across all buffers. *)
val dropped : t -> int

(** Chrome [trace_event] JSON: one track per domain, duration events for
    task/idle spans, instants for the rest.  Open in Perfetto
    (https://ui.perfetto.dev) or chrome://tracing. *)
val to_chrome_json : t -> string

(** Compact JSONL: one time-sorted event object per line. *)
val to_jsonl : t -> string
