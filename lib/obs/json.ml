(* Minimal JSON: a value type, a printer and a recursive-descent parser.

   The container ships no JSON library, and the observability exporters
   must emit output that external tools (Perfetto, chrome://tracing, CI
   validators) can parse — so the repo carries its own small implementation
   and the tests round-trip every exporter through it.  Only what the
   exporters and validators need is supported: UTF-8 passes through
   untouched, numbers parse as floats, and `\u` escapes decode to UTF-8. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let add_num buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.0f" f)
  else Buffer.add_string buf (Printf.sprintf "%.17g" f)

let rec add buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num f -> add_num buf f
  | Str s -> escape_string buf s
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        add buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_string buf k;
        Buffer.add_char buf ':';
        add buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  add buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

type cursor = { text : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "at %d: %s" c.pos msg))

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | Some _ | None -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c (Printf.sprintf "expected %C, got %C" ch x)
  | None -> fail c (Printf.sprintf "expected %C, got end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

(* Encodes a Unicode scalar value as UTF-8 (for \uXXXX escapes). *)
let add_utf8 buf u =
  if u < 0x80 then Buffer.add_char buf (Char.chr u)
  else if u < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
    Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | Some '"' -> advance c; Buffer.add_char buf '"'; go ()
      | Some '\\' -> advance c; Buffer.add_char buf '\\'; go ()
      | Some '/' -> advance c; Buffer.add_char buf '/'; go ()
      | Some 'n' -> advance c; Buffer.add_char buf '\n'; go ()
      | Some 't' -> advance c; Buffer.add_char buf '\t'; go ()
      | Some 'r' -> advance c; Buffer.add_char buf '\r'; go ()
      | Some 'b' -> advance c; Buffer.add_char buf '\b'; go ()
      | Some 'f' -> advance c; Buffer.add_char buf '\012'; go ()
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.text then fail c "truncated \\u escape";
        let hex = String.sub c.text c.pos 4 in
        (match int_of_string_opt ("0x" ^ hex) with
         | Some u ->
           c.pos <- c.pos + 4;
           add_utf8 buf u;
           go ()
         | None -> fail c "bad \\u escape")
      | Some x -> fail c (Printf.sprintf "bad escape \\%C" x)
      | None -> fail c "unterminated escape")
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let rec go () =
    match peek c with
    | Some ('0' .. '9' | '-' | '+' | '.' | 'e' | 'E') ->
      advance c;
      go ()
    | Some _ | None -> ()
  in
  go ();
  let s = String.sub c.text start (c.pos - start) in
  match float_of_string_opt s with
  | Some f -> Num f
  | None -> fail c (Printf.sprintf "bad number %S" s)

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' -> parse_obj c
  | Some '[' -> parse_list c
  | Some '"' -> Str (parse_string c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %C" ch)

and parse_list c =
  expect c '[';
  skip_ws c;
  if peek c = Some ']' then begin
    advance c;
    List []
  end
  else begin
    let rec items acc =
      let v = parse_value c in
      skip_ws c;
      match peek c with
      | Some ',' ->
        advance c;
        items (v :: acc)
      | Some ']' ->
        advance c;
        List.rev (v :: acc)
      | Some ch -> fail c (Printf.sprintf "expected ',' or ']', got %C" ch)
      | None -> fail c "unterminated array"
    in
    List (items [])
  end

and parse_obj c =
  expect c '{';
  skip_ws c;
  if peek c = Some '}' then begin
    advance c;
    Obj []
  end
  else begin
    let rec fields acc =
      skip_ws c;
      let k = parse_string c in
      skip_ws c;
      expect c ':';
      let v = parse_value c in
      skip_ws c;
      match peek c with
      | Some ',' ->
        advance c;
        fields ((k, v) :: acc)
      | Some '}' ->
        advance c;
        List.rev ((k, v) :: acc)
      | Some ch -> fail c (Printf.sprintf "expected ',' or '}', got %C" ch)
      | None -> fail c "unterminated object"
    in
    Obj (fields [])
  end

let parse text =
  let c = { text; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos = String.length text then Ok v
    else Error (Printf.sprintf "at %d: trailing input" c.pos)
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors (for tests and validators)                                *)
(* ------------------------------------------------------------------ *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | Null | Bool _ | Num _ | Str _ | List _ -> None

let to_list = function List items -> Some items | _ -> None

let int n = Num (float_of_int n)
