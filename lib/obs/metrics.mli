(** Per-domain metric shards: one private {!Ace_machine.Stats.t} per
    worker plus distribution counters (histograms) and busy/idle
    accounting.

    Single-writer discipline: shard [i] may only be written by worker [i]
    while the run is live; the aggregating readers ({!total},
    {!utilization}, {!to_json}) must only run after the workers joined. *)

module Stats = Ace_machine.Stats

(** Power-of-two histogram: bucket [b] counts values in [2^(b-1), 2^b)
    (bucket 0 counts values <= 0). *)
type hist = {
  mutable h_n : int;
  mutable h_sum : int;
  mutable h_max : int;
  h_buckets : int array;
}

val hist_create : unit -> hist

val hist_add : hist -> int -> unit

val hist_mean : hist -> float

val hist_merge_into : into:hist -> hist -> unit

(** Non-empty buckets as (inclusive upper bound, count) pairs, ascending. *)
val hist_buckets : hist -> (int * int) list

type shard = {
  s_dom : int;
  s_stats : Stats.t;
  s_copy_cells : hist;   (** cells per environment copy *)
  s_task_ns : hist;      (** task durations (par engine, wall ns) *)
  s_steal_tries : hist;  (** poll iterations per successful steal *)
  mutable s_busy_ns : int;
  mutable s_idle_ns : int;
}

type t

(** Fresh shards, one per domain. *)
val create : domains:int -> t

(** Wraps existing per-agent records (no copy: shard [i]'s stats IS the
    given record); distribution counters start empty. *)
val of_stats_array : Stats.t array -> t

(** Single-shard wrapper for the sequential engine. *)
val of_stats : Stats.t -> t

val domains : t -> int

val shard : t -> int -> shard

val stats : t -> int -> Stats.t

val per_domain : t -> Stats.t array

(** Merged run total (a fresh record; never aliases a shard).  Only
    meaningful after the workers joined. *)
val total : t -> Stats.t

type util = {
  u_dom : int;
  u_busy_ns : int;
  u_idle_ns : int;
  u_busy_frac : float;  (** busy / (busy + idle); 0 when unmeasured *)
  u_tasks : int;
  u_steals : int;
  u_copies : int;
  u_solutions : int;
}

val utilization : t -> util list

val pp_utilization : Format.formatter -> t -> unit

val stats_to_json : Stats.t -> Json.t

val to_json : t -> Json.t
