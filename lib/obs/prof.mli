(** Per-predicate profiler: classic 4-port counters (call / exit / redo /
    fail), exclusive cost attribution, caller→callee call-graph edges and
    a bounded-depth calling-context tree for folded-stack (flamegraph)
    output — opt-in, sharded per agent/domain like {!Trace} and
    {!Metrics}.

    Discipline: one {!shard} per execution context (simulated agent or
    domain), single-writer, registered against the profile at creation
    and merged read-only by the export views after the run.  The
    {!null} shard makes every hook a load and a branch when profiling is
    off, so engines call the hooks unconditionally.

    Port mapping onto the kernel protocol (see DESIGN.md § Profiling):
    clause selection ({!Ace_core} [Resolver.select]/[select_args]) is
    {e call}; compiled-frame completion ([Ex_done] / an inline
    scratch-body completion) is {e exit}; a choice-point retry is
    {e redo}; candidate exhaustion is {e fail}.  Builtins record a
    call+exit (or call+fail) pair without entering the ancestor stack.

    Cost attribution is differential: each shard samples its engine's
    {!Ace_machine.Stats} shard, virtual/wall clock and the GC minor-word
    counter at every port event and charges the delta to the predicate
    on top of the ancestor stack — exclusive cost, so a builtin's work
    lands on its caller.  On the multicore engine minor words are
    process-wide and therefore approximate per domain. *)

module Symbol := Ace_term.Symbol
module Stats := Ace_machine.Stats

type t
(** A profile: the run-wide registry of per-context shards. *)

type shard
(** One execution context's single-writer slice of the profile. *)

val create : unit -> t
(** A fresh enabled profile. *)

val disabled : t
(** The shared disabled profile: {!shard} returns {!null}. *)

val enabled : t -> bool

val null : shard
(** The shared disabled shard; every hook on it is a load and a
    branch. *)

val live : shard -> bool
(** False exactly on {!null} — callers guard hook-argument computation
    (key packing, cell counts) behind this. *)

val shard :
  t -> dom:int -> ?stats:Stats.t -> ?clock:(unit -> int) -> unit -> shard
(** Registers (and returns) the shard for context [dom].  [stats] is the
    engine's per-context stat shard, sampled differentially for cost
    attribution; [clock] the engine's cycle/nanosecond clock (defaults
    to a constant — cost attribution then carries no time axis). *)

(** {2 Predicate keys}

    A predicate is identified by a packed [symbol-id * 256 + arity]
    integer, so the hot-path hooks hash machine integers only. *)

val key : Symbol.t -> int -> int

val key_of_term : Ace_term.Term.t -> int
(** The key of a goal term's principal functor ([f/0] for atoms;
    a dedicated [?/0] key for unbound or numeric goals). *)

val key_name : int -> string
(** ["name/arity"], resolving the symbol table. *)

(** {2 Port hooks} (single-writer; no-ops on a disabled shard) *)

val call : shard -> int -> unit
(** Call port: records the call-graph edge from the current stack top
    and descends the ancestor stack (depth-capped; beyond the cap the
    frame is counted as truncated instead of pushed). *)

val exit_key : shard -> int -> unit
(** Exit port for a known predicate: pops the stack through its
    shallowest occurrence (tolerates LCO frames that never exited). *)

val exit_top : shard -> unit
(** Exit port for the predicate on top of the stack (compiled-frame
    completion: the engine knows a frame finished, not which
    predicate — the stack does). *)

val redo : shard -> int -> unit
(** Redo port: truncates the stack back to the retried predicate (or
    re-roots at it — backtracking landed on a context this shard never
    saw, e.g. a stolen task). *)

val fail : shard -> int -> unit

val builtin : shard -> int -> ok:bool -> unit
(** A builtin call: call+exit or call+fail, edge from the stack top, no
    stack push. *)

(** {2 Parallel attribution} *)

val spawned : shard -> int -> unit
(** [n] parallel tasks published out of the current predicate. *)

val stole : shard -> int -> unit
(** A steal landed on (a task/slot of) the keyed predicate. *)

val copied : shard -> int -> unit
(** [cells] copied while publishing/stealing under the current
    predicate. *)

val slots : shard -> int -> unit
(** [n] parcall slots allocated under the current predicate. *)

(** {2 Views} (read the shards after the run; merged on the fly) *)

type row = {
  r_name : string;
  r_calls : int;
  r_exits : int;
  r_redos : int;
  r_fails : int;
  r_instrs : int;  (** compiled instructions, exclusive *)
  r_tries : int;  (** clause tries, exclusive *)
  r_envs : int;  (** heap environments, exclusive *)
  r_trail : int;  (** trail pushes + untrails, exclusive *)
  r_cycles : int;  (** clock delta (abstract cycles or ns), exclusive *)
  r_minor : int;  (** GC minor words, exclusive *)
  r_tasks : int;
  r_steals : int;
  r_copied : int;
  r_slots : int;
}

val rows : t -> row list
(** All predicates (builtins included, pseudo-roots excluded), ranked by
    exclusive cycles, then instructions, then calls. *)

val top_hotspot : t -> row option
(** The highest-ranked user predicate (builtins and [$]-pseudo
    predicates excluded) — what `bench profile` asserts against. *)

val report : ?limit:int -> t -> string
(** The ranked hotspot table ([--profile]). *)

val to_json : t -> Json.t
(** [{"predicates": [...], "edges": [...], "domains": n,
    "truncated": n}] ([--profile-json]). *)

val to_folded : t -> string
(** Folded stacks ([--profile-folded]): one
    ["root;p/1;q/2 <cycles>"] line per calling-context path with
    positive exclusive cost, flamegraph.pl / speedscope syntax. *)
