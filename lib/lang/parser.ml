(* Operator-precedence parser producing {!Ace_term.Term.t}.

   The algorithm is the classical Prolog reader: parse a primary (literal,
   variable, compound, list, parenthesised term, or prefix-operator
   application), then repeatedly absorb infix operators whose priority fits
   the current maximum. *)

module Term = Ace_term.Term
module Symbol = Ace_term.Symbol

let sym_minus = Symbol.intern "-"
let sym_plus = Symbol.intern "+"

exception Error of string * Lexer.position

let error pos fmt = Format.kasprintf (fun s -> raise (Error (s, pos))) fmt

type state = {
  lex : Lexer.state;
  mutable la : Lexer.lexeme; (* one-token lookahead *)
  vars : (string, Term.var) Hashtbl.t;
  mutable var_names : (string * Term.var) list; (* first-occurrence order *)
}

let make src =
  let lex = Lexer.make src in
  { lex; la = Lexer.next lex; vars = Hashtbl.create 16; var_names = [] }

let shift st = st.la <- Lexer.next st.lex

let reset_vars st =
  Hashtbl.reset st.vars;
  st.var_names <- []

let lookup_var st name =
  if String.equal name "_" then Term.fresh_var ()
  else
    match Hashtbl.find_opt st.vars name with
    | Some v -> v
    | None ->
      let v = Term.fresh_var () in
      Hashtbl.add st.vars name v;
      st.var_names <- (name, v) :: st.var_names;
      v

(* Can the lookahead begin a term?  Used to decide whether an atom that is
   also a prefix operator is being applied or stands alone. *)
let starts_term (lx : Lexer.lexeme) =
  match lx.token with
  | Lexer.Int _ | Lexer.Var _ | Lexer.Str _ -> true
  | Lexer.Atom name ->
    (* an infix-only operator cannot start a term *)
    let s = Symbol.intern name in
    not (Ops.infix s <> None && Ops.prefix s = None)
  | Lexer.Punct ("(" | "((" | "[" | "{") -> true
  | Lexer.Punct _ | Lexer.Dot | Lexer.Eof -> false

let string_to_codes s =
  Term.of_list (List.map (fun c -> Term.Int (Char.code c)) (List.init (String.length s) (String.get s)))

let rec parse st max_prio =
  let left, left_prio = parse_primary st max_prio in
  parse_infix st max_prio left left_prio

and parse_infix st max_prio left left_prio =
  let continue_with s prio assoc =
    let left_max, right_max =
      match assoc with
      | Ops.Xfx -> (prio - 1, prio - 1)
      | Ops.Xfy -> (prio - 1, prio)
      | Ops.Yfx -> (prio, prio - 1)
    in
    if prio > max_prio || left_prio > left_max then None
    else begin
      shift st;
      let right, _ = parse st right_max in
      Some (Term.Struct (s, [| left; right |]), prio)
    end
  in
  let attempt s =
    match Ops.infix s with
    | None -> None
    | Some { Ops.prio; assoc } -> continue_with s prio assoc
  in
  let result =
    match st.la.Lexer.token with
    | Lexer.Atom name -> attempt (Symbol.intern name)
    | Lexer.Punct "," -> attempt Symbol.comma
    | Lexer.Punct "|" ->
      (* '|' at priority 1100 is an alternative spelling of ';' in bodies *)
      (match Ops.infix Symbol.semicolon with
       | Some { Ops.prio; assoc } when prio <= max_prio ->
         continue_with Symbol.semicolon prio assoc
       | Some _ | None -> None)
    | Lexer.Int _ | Lexer.Var _ | Lexer.Str _ | Lexer.Punct _ | Lexer.Dot
    | Lexer.Eof ->
      None
  in
  match result with
  | Some (t, prio) -> parse_infix st max_prio t prio
  | None -> (left, left_prio)

and parse_primary st max_prio =
  let pos = st.la.Lexer.pos in
  match st.la.Lexer.token with
  | Lexer.Int n ->
    shift st;
    (Term.Int n, 0)
  | Lexer.Str s ->
    shift st;
    (string_to_codes s, 0)
  | Lexer.Var name ->
    shift st;
    (Term.Var (lookup_var st name), 0)
  | Lexer.Punct ("(" | "((") ->
    shift st;
    let t = parse st 1200 in
    expect_punct st ")";
    (fst t, 0)
  | Lexer.Punct "[" ->
    shift st;
    parse_list st
  | Lexer.Punct "{" ->
    shift st;
    (match st.la.Lexer.token with
     | Lexer.Punct "}" ->
       shift st;
       (Term.Atom Symbol.curly, 0)
     | _ ->
       let t, _ = parse st 1200 in
       expect_punct st "}";
       (Term.Struct (Symbol.curly, [| t |]), 0))
  | Lexer.Atom name -> (
    (* one intern per atom token: the symbol serves the operator probes and
       the term built from it *)
    let s = Symbol.intern name in
    shift st;
    match st.la.Lexer.token with
    | Lexer.Punct "((" ->
      shift st;
      let args = parse_args st in
      expect_punct st ")";
      (Term.struct_sym s (Array.of_list args), 0)
    | _ -> (
      match Ops.prefix s with
      | Some _ when Symbol.equal s sym_minus && is_int st.la ->
        let n = take_int st in
        (Term.Int (-n), 0)
      | Some _ when Symbol.equal s sym_plus && is_int st.la ->
        let n = take_int st in
        (Term.Int n, 0)
      | Some (prio, strict) when prio <= max_prio && starts_term st.la ->
        let arg_max = if strict then prio - 1 else prio in
        let arg, _ = parse st arg_max in
        (Term.Struct (s, [| arg |]), prio)
      | Some _ | None ->
        (* A bare atom; operators used as operands keep their priority so
           that e.g. [X = (:-)] needs the parentheses it was given. *)
        (Term.Atom s, if Ops.is_operator s then 1201 else 0)))
  | Lexer.Punct p -> error pos "unexpected %s" p
  | Lexer.Dot -> error pos "unexpected end of clause"
  | Lexer.Eof -> error pos "unexpected end of input"

and is_int (lx : Lexer.lexeme) =
  match lx.Lexer.token with Lexer.Int _ -> true | _ -> false

and take_int st =
  match st.la.Lexer.token with
  | Lexer.Int n ->
    shift st;
    n
  | _ -> error st.la.Lexer.pos "expected integer"

and parse_args st =
  let arg, _ = parse st 999 in
  match st.la.Lexer.token with
  | Lexer.Punct "," ->
    shift st;
    arg :: parse_args st
  | _ -> [ arg ]

and parse_list st =
  match st.la.Lexer.token with
  | Lexer.Punct "]" ->
    shift st;
    (Term.nil, 0)
  | _ ->
    let elements = parse_args st in
    let tail =
      match st.la.Lexer.token with
      | Lexer.Punct "|" ->
        shift st;
        let t, _ = parse st 999 in
        t
      | _ -> Term.nil
    in
    expect_punct st "]";
    (List.fold_right Term.cons elements tail, 0)

and expect_punct st p =
  match st.la.Lexer.token with
  | Lexer.Punct q when String.equal p q -> shift st
  | Lexer.Punct "((" when String.equal p "(" -> shift st
  | _ -> error st.la.Lexer.pos "expected %s" p

(* ------------------------------------------------------------------ *)
(* Entry points                                                        *)
(* ------------------------------------------------------------------ *)

type read_term = {
  term : Term.t;
  var_names : (string * Term.var) list; (* user variables, textual order *)
}

(* Reads the next clause/directive (a term terminated by '.'), or [None] at
   end of input.  Variable scoping is per clause. *)
let next_term st =
  reset_vars st;
  match st.la.Lexer.token with
  | Lexer.Eof -> None
  | _ ->
    let t, _ = parse st 1200 in
    (match st.la.Lexer.token with
     | Lexer.Dot ->
       shift st;
       Some { term = t; var_names = List.rev st.var_names }
     | _ -> error st.la.Lexer.pos "expected end of clause '.'")

let term_of_string src =
  let st = make src in
  match next_term st with
  | None -> invalid_arg "Parser.term_of_string: empty input"
  | Some { term; _ } ->
    (match st.la.Lexer.token with
     | Lexer.Eof -> term
     | _ -> error st.la.Lexer.pos "trailing input after term")

let read_all src =
  let st = make src in
  let rec go acc =
    match next_term st with None -> List.rev acc | Some rt -> go (rt :: acc)
  in
  go []
