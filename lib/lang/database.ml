(* Clause database with first-argument indexing.

   First-argument indexing matters beyond speed: the engines create a
   choice point only when more than one clause survives indexing, so the
   index is what makes *runtime determinacy* observable — the property the
   LPCO and shallow-parallelism optimizations of the paper are driven by.

   Indexing is fully integer-keyed: predicates are filed under
   (symbol id, arity) and first-argument buckets under a key whose
   equality and hash touch only machine integers.  No string is compared
   or hashed anywhere on the lookup path — callers resolve names through
   the symbol intern table at the (cold) API boundary.

   Representation.  Each predicate keeps its clauses in per-key hash
   buckets plus a separate list for variable-headed (Kany) clauses, so a
   lookup touches only the clauses that survive indexing instead of
   scanning the whole predicate.  Source order is reconstructed from
   per-clause sequence numbers: [assertz] counts up, [asserta] counts
   down, and a lookup merges the (sequence-sorted) bucket and Kany lists.
   Both assert directions prepend to lists, so asserting N clauses costs
   O(N) total — the old representation appended to a plain list, making
   [assertz] of N clauses O(N²).

   The structure is mutated only at assert time; lookups are read-only, so
   a consulted program can be shared by concurrently running engine
   workers (the hardware or-parallel engine relies on this). *)

module Term = Ace_term.Term
module Symbol = Ace_term.Symbol

type key =
  | Kany                      (* head first argument is a variable *)
  | Kint of int
  | Katom of Symbol.t
  | Kstruct of Symbol.t * int

(* Buckets dispatch on integers only: constructor tag, symbol id, arity.
   The polymorphic hash/equality would walk the same data, but through
   generic traversal; these monomorphic versions compile to straight-line
   integer code. *)
module Key = struct
  type t = key

  let equal a b =
    match a, b with
    | Kany, Kany -> true
    | Kint x, Kint y -> x = y
    | Katom x, Katom y -> Symbol.equal x y
    | Kstruct (x, n), Kstruct (y, m) -> Symbol.equal x y && n = m
    | (Kany | Kint _ | Katom _ | Kstruct _), _ -> false

  let hash = function
    | Kany -> 0
    | Kint n -> (n lsl 2) lor 1
    | Katom s -> (Symbol.id s lsl 2) lor 2
    | Kstruct (s, n) -> (((Symbol.id s lsl 5) lxor n) lsl 2) lor 3
end

module KeyTbl = Hashtbl.Make (Key)

(* Predicates are keyed on (symbol id, arity). *)
module Pred_key = struct
  type t = int * int

  let equal (a, b) (c, d) = a = c && b = d

  let hash (a, b) = (a lsl 4) lxor b
end

module PredTbl = Hashtbl.Make (Pred_key)

let key_of_term t =
  match Term.deref t with
  | Term.Var _ -> Kany
  | Term.Int n -> Kint n
  | Term.Atom a -> Katom a
  | Term.Struct (f, args) -> Kstruct (f, Array.length args)

(* Key compatibility (the old per-clause filter) is structural equality
   between non-Kany keys, and always true when either side is Kany; the
   bucket map below encodes exactly that relation. *)

type entry = { seq : int; e_key : key; e_clause : Clause.t }

type pred = {
  p_name : Symbol.t;
  p_arity : int;
  mutable front : entry list;
    (* asserta'd clauses, ascending [seq] (all negative) *)
  mutable back_rev : entry list;
    (* assertz'd clauses, descending [seq] (newest first) *)
  mutable count : int;
  mutable next_seq : int; (* next assertz sequence number (counts up) *)
  mutable prev_seq : int; (* next asserta sequence number (counts down) *)
  buckets : entry list KeyTbl.t;
    (* non-Kany clauses by key, descending [seq] *)
  mutable anys : entry list; (* Kany clauses, descending [seq] *)
  (* Lookup caches, populated by {!freeze} and invalidated by asserts.
     [lookup] never writes them, so a frozen database stays read-only and
     can be shared across domains. *)
  mutable all_cache : Clause.t list option; (* source-order clause list *)
  mutable anys_cache : Clause.t list option;
    (* ascending Kany clauses: the result for keys with no bucket *)
  key_cache : Clause.t list KeyTbl.t; (* merged bucket + anys per key *)
}

type t = { preds : pred PredTbl.t }

let create () = { preds = PredTbl.create 64 }

let clause_key clause =
  match Term.deref clause.Clause.head with
  | Term.Struct (_, args) when Array.length args > 0 -> key_of_term args.(0)
  | Term.Struct _ | Term.Atom _ -> Kany
  | Term.Int _ | Term.Var _ -> assert false

let find_pred_sym db sym arity =
  PredTbl.find_opt db.preds (Symbol.id sym, arity)

let find_pred db name arity = find_pred_sym db (Symbol.intern name) arity

let get_pred db sym arity =
  match find_pred_sym db sym arity with
  | Some p -> p
  | None ->
    let p =
      {
        p_name = sym;
        p_arity = arity;
        front = [];
        back_rev = [];
        count = 0;
        next_seq = 0;
        prev_seq = -1;
        buckets = KeyTbl.create 8;
        anys = [];
        all_cache = None;
        anys_cache = None;
        key_cache = KeyTbl.create 8;
      }
    in
    PredTbl.add db.preds (Symbol.id sym, arity) p;
    p

(* Files an entry under its index key.  [at_front] distinguishes the
   asserta direction, whose (descending-sorted) bucket position is the
   tail — an O(bucket) insertion, acceptable because asserta is rare and
   the cost is bounded by the matching clauses, not the predicate. *)
let index_entry p entry ~at_front =
  match entry.e_key with
  | Kany ->
    if at_front then p.anys <- p.anys @ [ entry ]
    else p.anys <- entry :: p.anys
  | key ->
    let bucket = Option.value ~default:[] (KeyTbl.find_opt p.buckets key) in
    let bucket = if at_front then bucket @ [ entry ] else entry :: bucket in
    KeyTbl.replace p.buckets key bucket

let invalidate p =
  p.all_cache <- None;
  p.anys_cache <- None;
  KeyTbl.reset p.key_cache

let assertz db clause =
  let sym, arity = Clause.functor_arity clause in
  let p = get_pred db sym arity in
  let entry = { seq = p.next_seq; e_key = clause_key clause; e_clause = clause } in
  p.next_seq <- p.next_seq + 1;
  p.back_rev <- entry :: p.back_rev;
  p.count <- p.count + 1;
  invalidate p;
  index_entry p entry ~at_front:false

let asserta db clause =
  let sym, arity = Clause.functor_arity clause in
  let p = get_pred db sym arity in
  let entry = { seq = p.prev_seq; e_key = clause_key clause; e_clause = clause } in
  p.prev_seq <- p.prev_seq - 1;
  p.front <- entry :: p.front;
  p.count <- p.count + 1;
  invalidate p;
  index_entry p entry ~at_front:true

let mem db name arity = find_pred db name arity <> None

(* All clauses in source order: the ascending front then the reversed
   back. *)
let all_entries p = p.front @ List.rev p.back_rev

let clauses_of db name arity =
  match find_pred db name arity with
  | None -> []
  | Some p -> List.map (fun e -> e.e_clause) (all_entries p)

(* Merges two descending-[seq] entry lists into one ascending clause list:
   source order, O(length of the inputs) — i.e. proportional to the
   clauses that survive indexing, never to the whole predicate. *)
let merge_desc a b =
  let rec go a b acc =
    match a, b with
    | [], [] -> acc
    | x :: xs, [] -> go xs [] (x.e_clause :: acc)
    | [], y :: ys -> go [] ys (y.e_clause :: acc)
    | x :: xs, y :: ys ->
      if x.seq > y.seq then go xs b (x.e_clause :: acc)
      else go a ys (y.e_clause :: acc)
  in
  go a b []

(* Candidate clauses for a call, filtered by first-argument indexing.
   Returns [None] when the predicate is undefined (distinct from defined
   with no matching clause). *)
let all_clauses p =
  match p.all_cache with
  | Some clauses -> clauses
  | None -> List.map (fun e -> e.e_clause) (all_entries p)

let lookup db call =
  match Term.functor_of (Term.deref call) with
  | None -> invalid_arg "Database.lookup: callable expected"
  | Some (sym, arity) ->
    (match find_pred_sym db sym arity with
     | None -> None
     | Some p ->
       if arity = 0 then Some (all_clauses p)
       else
         let call_key =
           match Term.deref call with
           | Term.Struct (_, args) -> key_of_term args.(0)
           | Term.Atom _ | Term.Int _ | Term.Var _ -> Kany
         in
         (match call_key with
          | Kany -> Some (all_clauses p)
          | key ->
            (match KeyTbl.find_opt p.key_cache key with
             | Some clauses -> Some clauses
             | None -> (
               match KeyTbl.find_opt p.buckets key with
               | None -> (
                 (* no bucket: the result is exactly the Kany clauses *)
                 match p.anys_cache with
                 | Some anys -> Some anys
                 | None -> Some (merge_desc [] p.anys))
               | Some bucket -> Some (merge_desc bucket p.anys)))))

(* Precomputes every lookup result reachable from the current clause set,
   so subsequent lookups are pure reads — safe to share across domains
   (the next assert invalidates, so freeze again after updates). *)
let freeze db =
  PredTbl.iter
    (fun _ p ->
      p.all_cache <- Some (List.map (fun e -> e.e_clause) (all_entries p));
      p.anys_cache <- Some (merge_desc [] p.anys);
      KeyTbl.reset p.key_cache;
      KeyTbl.iter
        (fun key bucket ->
          KeyTbl.replace p.key_cache key (merge_desc bucket p.anys))
        p.buckets)
    db.preds

let predicates db =
  PredTbl.fold
    (fun _ p acc -> (Symbol.name p.p_name, p.p_arity) :: acc)
    db.preds []
  |> List.sort compare

let total_clauses db =
  PredTbl.fold (fun _ p acc -> acc + p.count) db.preds 0

(* A predicate is statically determinate-on-first-arg when no two of its
   clauses can match the same (non-variable) first argument.  Used by the
   analysis library and by LPCO's applicability conditions.

   Two non-Kany keys are compatible exactly when they are equal, i.e. when
   they share a bucket — so with two or more clauses the predicate is
   exclusive iff no clause is variable-headed and every bucket is a
   singleton. *)
let first_arg_exclusive db name arity =
  match find_pred db name arity with
  | None -> false
  | Some p ->
    p.count <= 1
    || (p.anys = []
        && KeyTbl.fold
             (fun _ bucket ok ->
               ok && match bucket with [ _ ] -> true | _ -> false)
             p.buckets true)
