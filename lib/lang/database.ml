(* Clause database with first-argument indexing.

   First-argument indexing matters beyond speed: the engines create a
   choice point only when more than one clause survives indexing, so the
   index is what makes *runtime determinacy* observable — the property the
   LPCO and shallow-parallelism optimizations of the paper are driven by.

   Representation.  Each predicate keeps its clauses in per-key hash
   buckets plus a separate list for variable-headed (Kany) clauses, so a
   lookup touches only the clauses that survive indexing instead of
   scanning the whole predicate.  Source order is reconstructed from
   per-clause sequence numbers: [assertz] counts up, [asserta] counts
   down, and a lookup merges the (sequence-sorted) bucket and Kany lists.
   Both assert directions prepend to lists, so asserting N clauses costs
   O(N) total — the old representation appended to a plain list, making
   [assertz] of N clauses O(N²).

   The structure is mutated only at assert time; lookups are read-only, so
   a consulted program can be shared by concurrently running engine
   workers (the hardware or-parallel engine relies on this). *)

module Term = Ace_term.Term

type key =
  | Kany                      (* head first argument is a variable *)
  | Kint of int
  | Katom of string
  | Kstruct of string * int

let key_of_term t =
  match Term.deref t with
  | Term.Var _ -> Kany
  | Term.Int n -> Kint n
  | Term.Atom a -> Katom a
  | Term.Struct (f, args) -> Kstruct (f, Array.length args)

(* Key compatibility (the old per-clause filter) is structural equality
   between non-Kany keys, and always true when either side is Kany; the
   bucket map below encodes exactly that relation. *)

type entry = { seq : int; e_key : key; e_clause : Clause.t }

type pred = {
  mutable front : entry list;
    (* asserta'd clauses, ascending [seq] (all negative) *)
  mutable back_rev : entry list;
    (* assertz'd clauses, descending [seq] (newest first) *)
  mutable count : int;
  mutable next_seq : int; (* next assertz sequence number (counts up) *)
  mutable prev_seq : int; (* next asserta sequence number (counts down) *)
  buckets : (key, entry list) Hashtbl.t;
    (* non-Kany clauses by key, descending [seq] *)
  mutable anys : entry list; (* Kany clauses, descending [seq] *)
}

type t = { preds : (string * int, pred) Hashtbl.t }

let create () = { preds = Hashtbl.create 64 }

let clause_key clause =
  match Term.deref clause.Clause.head with
  | Term.Struct (_, args) when Array.length args > 0 -> key_of_term args.(0)
  | Term.Struct _ | Term.Atom _ -> Kany
  | Term.Int _ | Term.Var _ -> assert false

let find_pred db name arity = Hashtbl.find_opt db.preds (name, arity)

let get_pred db name arity =
  match find_pred db name arity with
  | Some p -> p
  | None ->
    let p =
      {
        front = [];
        back_rev = [];
        count = 0;
        next_seq = 0;
        prev_seq = -1;
        buckets = Hashtbl.create 8;
        anys = [];
      }
    in
    Hashtbl.add db.preds (name, arity) p;
    p

(* Files an entry under its index key.  [at_front] distinguishes the
   asserta direction, whose (descending-sorted) bucket position is the
   tail — an O(bucket) insertion, acceptable because asserta is rare and
   the cost is bounded by the matching clauses, not the predicate. *)
let index_entry p entry ~at_front =
  match entry.e_key with
  | Kany ->
    if at_front then p.anys <- p.anys @ [ entry ]
    else p.anys <- entry :: p.anys
  | key ->
    let bucket = Option.value ~default:[] (Hashtbl.find_opt p.buckets key) in
    let bucket = if at_front then bucket @ [ entry ] else entry :: bucket in
    Hashtbl.replace p.buckets key bucket

let assertz db clause =
  let name, arity = Clause.name_arity clause in
  let p = get_pred db name arity in
  let entry = { seq = p.next_seq; e_key = clause_key clause; e_clause = clause } in
  p.next_seq <- p.next_seq + 1;
  p.back_rev <- entry :: p.back_rev;
  p.count <- p.count + 1;
  index_entry p entry ~at_front:false

let asserta db clause =
  let name, arity = Clause.name_arity clause in
  let p = get_pred db name arity in
  let entry = { seq = p.prev_seq; e_key = clause_key clause; e_clause = clause } in
  p.prev_seq <- p.prev_seq - 1;
  p.front <- entry :: p.front;
  p.count <- p.count + 1;
  index_entry p entry ~at_front:true

let mem db name arity = find_pred db name arity <> None

(* All clauses in source order: the ascending front then the reversed
   back. *)
let all_entries p = p.front @ List.rev p.back_rev

let clauses_of db name arity =
  match find_pred db name arity with
  | None -> []
  | Some p -> List.map (fun e -> e.e_clause) (all_entries p)

(* Merges two descending-[seq] entry lists into one ascending clause list:
   source order, O(length of the inputs) — i.e. proportional to the
   clauses that survive indexing, never to the whole predicate. *)
let merge_desc a b =
  let rec go a b acc =
    match a, b with
    | [], [] -> acc
    | x :: xs, [] -> go xs [] (x.e_clause :: acc)
    | [], y :: ys -> go [] ys (y.e_clause :: acc)
    | x :: xs, y :: ys ->
      if x.seq > y.seq then go xs b (x.e_clause :: acc)
      else go a ys (y.e_clause :: acc)
  in
  go a b []

(* Candidate clauses for a call, filtered by first-argument indexing.
   Returns [None] when the predicate is undefined (distinct from defined
   with no matching clause). *)
let lookup db call =
  match Term.functor_of (Term.deref call) with
  | None -> invalid_arg "Database.lookup: callable expected"
  | Some (name, arity) ->
    (match find_pred db name arity with
     | None -> None
     | Some p ->
       if arity = 0 then Some (List.map (fun e -> e.e_clause) (all_entries p))
       else
         let call_key =
           match Term.deref call with
           | Term.Struct (_, args) -> key_of_term args.(0)
           | Term.Atom _ | Term.Int _ | Term.Var _ -> Kany
         in
         (match call_key with
          | Kany -> Some (List.map (fun e -> e.e_clause) (all_entries p))
          | key ->
            let bucket =
              Option.value ~default:[] (Hashtbl.find_opt p.buckets key)
            in
            Some (merge_desc bucket p.anys)))

let predicates db =
  Hashtbl.fold (fun na _ acc -> na :: acc) db.preds []
  |> List.sort compare

let total_clauses db =
  Hashtbl.fold (fun _ p acc -> acc + p.count) db.preds 0

(* A predicate is statically determinate-on-first-arg when no two of its
   clauses can match the same (non-variable) first argument.  Used by the
   analysis library and by LPCO's applicability conditions.

   Two non-Kany keys are compatible exactly when they are equal, i.e. when
   they share a bucket — so with two or more clauses the predicate is
   exclusive iff no clause is variable-headed and every bucket is a
   singleton. *)
let first_arg_exclusive db name arity =
  match find_pred db name arity with
  | None -> false
  | Some p ->
    p.count <= 1
    || (p.anys = []
        && Hashtbl.fold
             (fun _ bucket ok ->
               ok && match bucket with [ _ ] -> true | _ -> false)
             p.buckets true)
