(* Clause database with first-argument indexing.

   First-argument indexing matters beyond speed: the engines create a
   choice point only when more than one clause survives indexing, so the
   index is what makes *runtime determinacy* observable — the property the
   LPCO and shallow-parallelism optimizations of the paper are driven by.

   Indexing is fully integer-keyed: predicates are filed under
   (symbol id, arity) and first-argument buckets under a key whose
   equality and hash touch only machine integers.  No string is compared
   or hashed anywhere on the lookup path — callers resolve names through
   the symbol intern table at the (cold) API boundary.

   Representation.  Each predicate keeps its clauses in per-key hash
   buckets plus a separate list for variable-headed (Kany) clauses, so a
   lookup touches only the clauses that survive indexing instead of
   scanning the whole predicate.  Source order is reconstructed from
   per-clause sequence numbers: [assertz] counts up, [asserta] counts
   down, and a lookup merges the (sequence-sorted) bucket and Kany lists.
   Both assert directions prepend to lists, so asserting N clauses costs
   O(N) total — the old representation appended to a plain list, making
   [assertz] of N clauses O(N²).

   The structure is mutated only at assert time; lookups are read-only, so
   a consulted program can be shared by concurrently running engine
   workers (the hardware or-parallel engine relies on this). *)

module Term = Ace_term.Term
module Symbol = Ace_term.Symbol

type key =
  | Kany                      (* head first argument is a variable *)
  | Kint of int
  | Katom of Symbol.t
  | Kstruct of Symbol.t * int

(* Buckets dispatch on integers only: constructor tag, symbol id, arity.
   The polymorphic hash/equality would walk the same data, but through
   generic traversal; these monomorphic versions compile to straight-line
   integer code. *)
module Key = struct
  type t = key

  let equal a b =
    match a, b with
    | Kany, Kany -> true
    | Kint x, Kint y -> x = y
    | Katom x, Katom y -> Symbol.equal x y
    | Kstruct (x, n), Kstruct (y, m) -> Symbol.equal x y && n = m
    | (Kany | Kint _ | Katom _ | Kstruct _), _ -> false

  let hash = function
    | Kany -> 0
    | Kint n -> (n lsl 2) lor 1
    | Katom s -> (Symbol.id s lsl 2) lor 2
    | Kstruct (s, n) -> (((Symbol.id s lsl 5) lxor n) lsl 2) lor 3
end

module KeyTbl = Hashtbl.Make (Key)

(* Predicates are keyed on (symbol id, arity). *)
module Pred_key = struct
  type t = int * int

  let equal (a, b) (c, d) = a = c && b = d

  let hash (a, b) = (a lsl 4) lxor b
end

module PredTbl = Hashtbl.Make (Pred_key)

let key_of_term t =
  match Term.deref t with
  | Term.Var _ -> Kany
  | Term.Int n -> Kint n
  | Term.Atom a -> Katom a
  | Term.Struct (f, args) -> Kstruct (f, Array.length args)

(* Key compatibility (the old per-clause filter) is structural equality
   between non-Kany keys, and always true when either side is Kany; the
   bucket map below encodes exactly that relation. *)

type entry = { seq : int; e_key : key; e_clause : Clause.t }

(* Switch-on-term dispatch tree with deep argument indexing (built by
   {!freeze}, consumed by {!lookup_code} on the compiled execution path).

   A [Dswitch] discriminates on the key found at [d_path] — a sequence of
   argument positions from the call's root, so paths longer than one look
   *inside* structure arguments, beyond the classic first-argument key.
   [d_cases] maps each rigid key to the subtree over the clauses
   compatible with it (bucket clauses plus the variable-at-path clauses,
   merged in source order); a rigid call key with no case falls back to
   [d_anys] (just the variable-at-path clauses) and a call with a
   variable at the path to [d_all] (every clause of the subtree).
   Dropping a clause therefore only ever happens on provably
   non-unifiable rigid-key disagreement. *)
type dtree =
  | Dleaf of Clause.t list
  | Dswitch of {
      d_path : int array;
      d_cases : dtree KeyTbl.t;
      d_anys : Clause.t list;
      d_all : Clause.t list;
    }

type pred = {
  p_name : Symbol.t;
  p_arity : int;
  mutable front : entry list;
    (* asserta'd clauses, ascending [seq] (all negative) *)
  mutable back_rev : entry list;
    (* assertz'd clauses, descending [seq] (newest first) *)
  mutable count : int;
  mutable next_seq : int; (* next assertz sequence number (counts up) *)
  mutable prev_seq : int; (* next asserta sequence number (counts down) *)
  buckets : entry list KeyTbl.t;
    (* non-Kany clauses by key, descending [seq] *)
  mutable anys : entry list; (* Kany clauses, descending [seq] *)
  (* Lookup caches, populated by {!freeze} and invalidated by asserts.
     [lookup] never writes them, so a frozen database stays read-only and
     can be shared across domains. *)
  mutable all_cache : Clause.t list option; (* source-order clause list *)
  mutable anys_cache : Clause.t list option;
    (* ascending Kany clauses: the result for keys with no bucket *)
  key_cache : Clause.t list KeyTbl.t; (* merged bucket + anys per key *)
  mutable dtree : dtree option;
    (* deep-indexing dispatch tree for the compiled path; built by
       {!freeze}, invalidated by asserts *)
}

type t = {
  preds : pred PredTbl.t;
  mutable frozen : bool;
    (* caches are complete and the database is read-only; cleared by
       asserts, making a second {!freeze} O(1) *)
  freeze_lock : Mutex.t;
    (* serializes cache construction: two sessions freezing the shared
       base concurrently must not race the dispatch-tree build *)
  tabled : string PredTbl.t;
    (* predicates declared [:- table name/arity]; the value is the
       predicate name (cold-path introspection only).  Registered at
       consult time, read-only afterwards.  An overlay shares its
       base's registry (sessions never declare tables). *)
  mutable has_tabled : bool;
    (* fast gate so the engines' dispatch loops pay one load per call
       on programs with no tabled predicate *)
  base : t option;
    (* [Some b]: this database is a session overlay over the frozen
       base [b] — its own preds hold only the session's asserts, and
       every lookup merges them around [b]'s (never-mutated) result *)
  mutable removed : Clause.t list;
    (* overlay only: clauses retracted by this session, tombstoned by
       physical identity so the shared base stays untouched *)
}

let create () =
  {
    preds = PredTbl.create 64;
    frozen = false;
    freeze_lock = Mutex.create ();
    tabled = PredTbl.create 4;
    has_tabled = false;
    base = None;
    removed = [];
  }

let clause_key clause =
  match Term.deref clause.Clause.head with
  | Term.Struct (_, args) when Array.length args > 0 -> key_of_term args.(0)
  | Term.Struct _ | Term.Atom _ -> Kany
  | Term.Int _ | Term.Var _ -> assert false

let find_pred_sym db sym arity =
  PredTbl.find_opt db.preds (Symbol.id sym, arity)

let find_pred db name arity = find_pred_sym db (Symbol.intern name) arity

let get_pred db sym arity =
  match find_pred_sym db sym arity with
  | Some p -> p
  | None ->
    let p =
      {
        p_name = sym;
        p_arity = arity;
        front = [];
        back_rev = [];
        count = 0;
        next_seq = 0;
        prev_seq = -1;
        buckets = KeyTbl.create 8;
        anys = [];
        all_cache = None;
        anys_cache = None;
        key_cache = KeyTbl.create 8;
        dtree = None;
      }
    in
    PredTbl.add db.preds (Symbol.id sym, arity) p;
    p

(* Files an entry under its index key.  [at_front] distinguishes the
   asserta direction, whose (descending-sorted) bucket position is the
   tail — an O(bucket) insertion, acceptable because asserta is rare and
   the cost is bounded by the matching clauses, not the predicate. *)
let index_entry p entry ~at_front =
  match entry.e_key with
  | Kany ->
    if at_front then p.anys <- p.anys @ [ entry ]
    else p.anys <- entry :: p.anys
  | key ->
    let bucket = Option.value ~default:[] (KeyTbl.find_opt p.buckets key) in
    let bucket = if at_front then bucket @ [ entry ] else entry :: bucket in
    KeyTbl.replace p.buckets key bucket

let invalidate p =
  p.all_cache <- None;
  p.anys_cache <- None;
  p.dtree <- None;
  KeyTbl.reset p.key_cache

let assertz db clause =
  let sym, arity = Clause.functor_arity clause in
  let p = get_pred db sym arity in
  let entry = { seq = p.next_seq; e_key = clause_key clause; e_clause = clause } in
  p.next_seq <- p.next_seq + 1;
  p.back_rev <- entry :: p.back_rev;
  p.count <- p.count + 1;
  db.frozen <- false;
  invalidate p;
  index_entry p entry ~at_front:false

let asserta db clause =
  let sym, arity = Clause.functor_arity clause in
  let p = get_pred db sym arity in
  let entry = { seq = p.prev_seq; e_key = clause_key clause; e_clause = clause } in
  p.prev_seq <- p.prev_seq - 1;
  p.front <- entry :: p.front;
  p.count <- p.count + 1;
  db.frozen <- false;
  invalidate p;
  index_entry p entry ~at_front:true

(* All clauses in source order: the ascending front then the reversed
   back. *)
let all_entries p = p.front @ List.rev p.back_rev

let clauses_of db name arity =
  match find_pred db name arity with
  | None -> []
  | Some p -> List.map (fun e -> e.e_clause) (all_entries p)

(* Merges two descending-[seq] entry lists into one ascending clause list:
   source order, O(length of the inputs) — i.e. proportional to the
   clauses that survive indexing, never to the whole predicate. *)
let merge_desc a b =
  let rec go a b acc =
    match a, b with
    | [], [] -> acc
    | x :: xs, [] -> go xs [] (x.e_clause :: acc)
    | [], y :: ys -> go [] ys (y.e_clause :: acc)
    | x :: xs, y :: ys ->
      if x.seq > y.seq then go xs b (x.e_clause :: acc)
      else go a ys (y.e_clause :: acc)
  in
  go a b []

(* Candidate clauses for a call, filtered by first-argument indexing.
   Returns [None] when the predicate is undefined (distinct from defined
   with no matching clause). *)
let all_clauses p =
  match p.all_cache with
  | Some clauses -> clauses
  | None -> List.map (fun e -> e.e_clause) (all_entries p)

let lookup db call =
  match Term.functor_of (Term.deref call) with
  | None -> invalid_arg "Database.lookup: callable expected"
  | Some (sym, arity) ->
    (match find_pred_sym db sym arity with
     | None -> None
     | Some p ->
       if arity = 0 then Some (all_clauses p)
       else
         let call_key =
           match Term.deref call with
           | Term.Struct (_, args) -> key_of_term args.(0)
           | Term.Atom _ | Term.Int _ | Term.Var _ -> Kany
         in
         (match call_key with
          | Kany -> Some (all_clauses p)
          | key ->
            (match KeyTbl.find_opt p.key_cache key with
             | Some clauses -> Some clauses
             | None -> (
               match KeyTbl.find_opt p.buckets key with
               | None -> (
                 (* no bucket: the result is exactly the Kany clauses *)
                 match p.anys_cache with
                 | Some anys -> Some anys
                 | None -> Some (merge_desc [] p.anys))
               | Some bucket -> Some (merge_desc bucket p.anys)))))

(* ------------------------------------------------------------------ *)
(* Deep-indexing dispatch tree (compiled execution path)               *)
(* ------------------------------------------------------------------ *)

(* Bounds on tree construction: paths never look more than [max_depth]
   positions into the call, and a node tracks at most [max_paths]
   candidate paths.  Both cap build time on wide fact tables while
   leaving typical recursive predicates fully discriminated. *)
let max_depth = 3
let max_paths = 8

(* Key of a clause head at an argument path; [Kany] when a variable sits
   anywhere along it (such a clause matches any call, so it must be kept
   in every case). *)
let clause_key_at clause (path : int array) =
  let rec go t i =
    match Term.deref t with
    | Term.Var _ -> Kany
    | t' when i >= Array.length path -> key_of_term t'
    | Term.Struct (_, args) when path.(i) < Array.length args ->
      go args.(path.(i)) (i + 1)
    | _ -> Kany (* cannot descend: treat as compatible with anything *)
  in
  match Term.deref clause.Clause.head with
  | Term.Struct (_, args) when path.(0) < Array.length args ->
    go args.(path.(0)) 1
  | _ -> Kany

let entry_clauses entries = List.map (fun e -> e.e_clause) entries

(* Builds the tree over [entries] (ascending seq = source order).  A path
   is worth switching on when it has at least two distinct rigid keys and
   every case strictly shrinks (largest bucket + variable-keyed clauses
   < total); the most discriminating such path wins.  Each [Kstruct]
   case adds the positions inside that structure as new candidate paths —
   that is the deep indexing. *)
let rec build_dtree entries paths =
  match entries with
  | [] | [ _ ] -> Dleaf (entry_clauses entries)
  | _ when paths = [] -> Dleaf (entry_clauses entries)
  | _ ->
    let total = List.length entries in
    let score path =
      let tbl = KeyTbl.create 8 in
      let nanys = ref 0 in
      List.iter
        (fun e ->
          match clause_key_at e.e_clause path with
          | Kany -> incr nanys
          | k -> KeyTbl.replace tbl k (1 + Option.value ~default:0 (KeyTbl.find_opt tbl k)))
        entries;
      let distinct = KeyTbl.length tbl in
      let worst = KeyTbl.fold (fun _ n acc -> max n acc) tbl 0 in
      if distinct >= 2 && worst + !nanys < total then Some (worst + !nanys)
      else None
    in
    (* Prefer the earliest qualifying path over the best-scoring one:
       calls instantiate early (input) arguments far more often than
       late (output) ones, and a switch on a position that is unbound at
       run time degenerates to [d_all] however well it discriminates the
       clause heads.  Candidate order is leftmost-shallowest first, and
       [sub_paths] below keeps refinements of the matched position ahead
       of later arguments for the same reason. *)
    let best =
      List.find_map
        (fun path -> Option.map (fun _ -> path) (score path))
        paths
    in
    (match best with
     | None -> Dleaf (entry_clauses entries)
     | Some path ->
       let buckets = KeyTbl.create 8 in
       let anys_rev = ref [] in
       List.iter
         (fun e ->
           match clause_key_at e.e_clause path with
           | Kany -> anys_rev := e :: !anys_rev
           | k ->
             KeyTbl.replace buckets k
               (e :: Option.value ~default:[] (KeyTbl.find_opt buckets k)))
         entries;
       let anys = List.rev !anys_rev in
       let rest_paths = List.filter (fun p -> p != path) paths in
       let cases = KeyTbl.create (KeyTbl.length buckets) in
       KeyTbl.iter
         (fun k bucket_rev ->
           let bucket = List.rev bucket_rev in
           (* merge bucket and anys back into source order (both ascending) *)
           let rec merge a b =
             match (a, b) with
             | [], l | l, [] -> l
             | x :: xs, y :: ys ->
               if x.seq < y.seq then x :: merge xs b else y :: merge a ys
           in
           let sub_entries = merge bucket anys in
           let sub_paths =
             match k with
             | Kstruct (_, arity) when Array.length path < max_depth ->
               let ext =
                 List.init arity (fun j -> Array.append path [| j |])
               in
               let paths' = ext @ rest_paths in
               if List.length paths' > max_paths then
                 List.filteri (fun i _ -> i < max_paths) paths'
               else paths'
             | _ -> rest_paths
           in
           KeyTbl.replace cases k (build_dtree sub_entries sub_paths))
         buckets;
       Dswitch
         {
           d_path = path;
           d_cases = cases;
           d_anys = entry_clauses anys;
           d_all = entry_clauses entries;
         })

let build_pred_dtree p =
  if p.p_arity = 0 then Dleaf (all_clauses p)
  else
    build_dtree (all_entries p)
      (List.init p.p_arity (fun i -> [| i |]))

(* Key of a call at a path; [None] when a variable is met along it (the
   call could take any branch). *)
let call_key_at call (path : int array) =
  let rec go t i =
    match Term.deref t with
    | Term.Var _ -> None
    | t' when i >= Array.length path -> Some (key_of_term t')
    | Term.Struct (_, args) when path.(i) < Array.length args ->
      go args.(path.(i)) (i + 1)
    | _ -> None (* cannot descend; be conservative *)
  in
  match Term.deref call with
  | Term.Struct (_, args) when path.(0) < Array.length args ->
    go args.(path.(0)) 1
  | _ -> None

let rec walk_dtree tree call =
  match tree with
  | Dleaf clauses -> clauses
  | Dswitch { d_path; d_cases; d_anys; d_all } -> (
    match call_key_at call d_path with
    | None | Some Kany -> d_all
    | Some key -> (
      match KeyTbl.find_opt d_cases key with
      | Some sub -> walk_dtree sub call
      | None -> d_anys))

(* Candidate clauses via the dispatch tree — the compiled path's
   {!lookup}.  Falls back to first-argument indexing when the database
   has not been frozen (never mutates, so a frozen database stays
   shareable across domains). *)
let lookup_code db call =
  match Term.functor_of (Term.deref call) with
  | None -> invalid_arg "Database.lookup_code: callable expected"
  | Some (sym, arity) -> (
    match find_pred_sym db sym arity with
    | None -> None
    | Some p -> (
      match p.dtree with
      | Some tree -> Some (walk_dtree tree (Term.deref call))
      | None -> lookup db call))

(* ------------------------------------------------------------------ *)
(* Register-rooted lookups                                             *)
(* ------------------------------------------------------------------ *)

(* The compiled body path calls with the goal's arguments spread in a
   register file instead of packed in a [Term.Struct]: these variants
   root the key computations at the register array.  [args] may be
   longer than [arity] (a shared register buffer) — only the first
   [arity] cells are the call. *)

let call_key_at_args arity (args : Term.t array) (path : int array) =
  let rec go t i =
    match Term.deref t with
    | Term.Var _ -> None
    | t' when i >= Array.length path -> Some (key_of_term t')
    | Term.Struct (_, cells) when path.(i) < Array.length cells ->
      go cells.(path.(i)) (i + 1)
    | _ -> None (* cannot descend; be conservative *)
  in
  if path.(0) < arity then go args.(path.(0)) 1 else None

let rec walk_dtree_args tree arity args =
  match tree with
  | Dleaf clauses -> clauses
  | Dswitch { d_path; d_cases; d_anys; d_all } -> (
    match call_key_at_args arity args d_path with
    | None | Some Kany -> d_all
    | Some key -> (
      match KeyTbl.find_opt d_cases key with
      | Some sub -> walk_dtree_args sub arity args
      | None -> d_anys))

(* {!lookup} rooted at a register file. *)
let lookup_args db sym arity (args : Term.t array) =
  match find_pred_sym db sym arity with
  | None -> None
  | Some p ->
    if arity = 0 then Some (all_clauses p)
    else (
      match key_of_term args.(0) with
      | Kany -> Some (all_clauses p)
      | key ->
        (match KeyTbl.find_opt p.key_cache key with
         | Some clauses -> Some clauses
         | None -> (
           match KeyTbl.find_opt p.buckets key with
           | None -> (
             match p.anys_cache with
             | Some anys -> Some anys
             | None -> Some (merge_desc [] p.anys))
           | Some bucket -> Some (merge_desc bucket p.anys))))

(* {!lookup_code} rooted at a register file. *)
let lookup_code_args db sym arity (args : Term.t array) =
  match find_pred_sym db sym arity with
  | None -> None
  | Some p -> (
    match p.dtree with
    | Some tree -> Some (walk_dtree_args tree arity args)
    | None -> lookup_args db sym arity args)

(* Precomputes every lookup result reachable from the current clause set,
   so subsequent lookups are pure reads — safe to share across domains
   (the next assert invalidates, so freeze again after updates).  Also
   builds the dispatch trees and precompiles every clause to instruction
   code, so parallel workers on the compiled path never write.

   Idempotent: O(1) on an already-frozen database, so per-query freezing
   (as the engine front end does) costs nothing after the first. *)
let freeze_preds db =
  PredTbl.iter
    (fun _ p ->
      p.all_cache <- Some (List.map (fun e -> e.e_clause) (all_entries p));
      p.anys_cache <- Some (merge_desc [] p.anys);
      KeyTbl.reset p.key_cache;
      KeyTbl.iter
        (fun key bucket ->
          KeyTbl.replace p.key_cache key (merge_desc bucket p.anys))
        p.buckets;
      p.dtree <- Some (build_pred_dtree p);
      List.iter
        (fun e -> ignore (Code.of_clause e.e_clause))
        (all_entries p))
    db.preds

let rec freeze db =
  (match db.base with Some b -> freeze b | None -> ());
  (* Double-checked under the lock, and the flag is set only AFTER the
     caches are built: a concurrent freezer that loses the race blocks on
     the mutex until the build is done, and one that reads [frozen =
     true] without the lock can only do so once the caches are complete.
     (The unlocked fast path makes the per-query re-freeze of an
     already-frozen database one load, as before.) *)
  if not db.frozen then begin
    Mutex.lock db.freeze_lock;
    match
      if not db.frozen then begin
        freeze_preds db;
        db.frozen <- true
      end
    with
    | () -> Mutex.unlock db.freeze_lock
    | exception e ->
      Mutex.unlock db.freeze_lock;
      raise e
  end

(* ------------------------------------------------------------------ *)
(* Session overlays                                                    *)
(* ------------------------------------------------------------------ *)

let overlay b =
  if b.base <> None then
    invalid_arg "Database.overlay: the base is itself an overlay";
  freeze b;
  {
    preds = PredTbl.create 8;
    frozen = true; (* nothing to cache yet *)
    freeze_lock = Mutex.create ();
    tabled = b.tabled; (* shared: sessions never declare tables *)
    has_tabled = b.has_tabled;
    base = Some b;
    removed = [];
  }

let base db = db.base

(* The overlay's own entries surviving first-argument indexing for
   [key], ascending seq.  Overlays are small and mutate often, so this
   reads the buckets directly instead of the freeze caches. *)
let overlay_entries p key =
  match key with
  | Kany -> all_entries p
  | key ->
    let bucket = Option.value ~default:[] (KeyTbl.find_opt p.buckets key) in
    let rec go a b acc =
      match a, b with
      | [], [] -> acc
      | x :: xs, [] -> go xs [] (x :: acc)
      | [], y :: ys -> go [] ys (y :: acc)
      | x :: xs, y :: ys ->
        if x.seq > y.seq then go xs b (x :: acc) else go a ys (y :: acc)
    in
    go bucket p.anys []

(* The session view of one (keyed) lookup, in overlay source order:
   asserta'd session clauses (negative seq), then the base's (cached,
   indexed) answer, then assertz'd session clauses — with this session's
   tombstones filtered out of every part.  [None] exactly when neither
   side defines the predicate. *)
let overlay_view db p_opt key base_part =
  let keep =
    match db.removed with
    | [] -> fun _ -> true
    | removed -> fun c -> not (List.memq c removed)
  in
  match p_opt, base_part with
  | None, None -> None
  | None, Some bs -> Some (List.filter keep bs)
  | Some p, _ ->
    let front, back =
      List.partition (fun e -> e.seq < 0) (overlay_entries p key)
    in
    let part es =
      List.filter_map
        (fun e -> if keep e.e_clause then Some e.e_clause else None)
        es
    in
    let bs =
      match base_part with None -> [] | Some bs -> List.filter keep bs
    in
    Some (part front @ bs @ part back)

(* Retracts the first clause of the session view whose [H :- B] term
   unifies with [pattern]'s, by tombstoning it in the overlay; the base
   database is never written.  Returns [false] when nothing matched. *)
let retract db pattern =
  match db.base with
  | None -> invalid_arg "Database.retract: session overlay expected"
  | Some b ->
    let sym, arity = Clause.functor_arity pattern in
    let own_front, own_back =
      match find_pred_sym db sym arity with
      | None -> ([], [])
      | Some p ->
        let f, bk = List.partition (fun e -> e.seq < 0) (all_entries p) in
        (List.map (fun e -> e.e_clause) f, List.map (fun e -> e.e_clause) bk)
    in
    let base_cs =
      match find_pred_sym b sym arity with
      | None -> []
      | Some p -> List.map (fun e -> e.e_clause) (all_entries p)
    in
    let pat = Clause.to_term (Clause.rename pattern) in
    let live c = not (List.memq c db.removed) in
    let rec go = function
      | [] -> false
      | c :: rest ->
        if live c && Ace_term.Unify.matches (Clause.to_term c) pat then begin
          db.removed <- c :: db.removed;
          true
        end
        else go rest
    in
    go (own_front @ base_cs @ own_back)

(* Overlay-aware public lookups, shadowing the direct versions above.
   A database without a base pays exactly one extra load and branch;
   an overlay merges its (bucket-indexed) delta around the base's
   answer, never touching the base's caches.  The compiled-path
   variants run the base through its dispatch tree and filter the
   overlay part by first-argument key only — both filters drop only
   provably non-unifiable clauses, so the combination is still sound. *)

let overlay_call_key call arity =
  if arity = 0 then Kany
  else
    match Term.deref call with
    | Term.Struct (_, args) -> key_of_term args.(0)
    | Term.Atom _ | Term.Int _ | Term.Var _ -> Kany

let direct_lookup = lookup
let direct_lookup_code = lookup_code
let direct_lookup_args = lookup_args
let direct_lookup_code_args = lookup_code_args

let overlay_lookup db b ~base_part call =
  match Term.functor_of (Term.deref call) with
  | None -> invalid_arg "Database.lookup: callable expected"
  | Some (sym, arity) ->
    let key = overlay_call_key call arity in
    overlay_view db (find_pred_sym db sym arity) key (base_part b call)

let lookup db call =
  match db.base with
  | None -> direct_lookup db call
  | Some b -> overlay_lookup db b ~base_part:direct_lookup call

let lookup_code db call =
  match db.base with
  | None -> direct_lookup_code db call
  | Some b -> overlay_lookup db b ~base_part:direct_lookup_code call

let lookup_args db sym arity (args : Term.t array) =
  match db.base with
  | None -> direct_lookup_args db sym arity args
  | Some b ->
    let key = if arity = 0 then Kany else key_of_term args.(0) in
    overlay_view db
      (find_pred_sym db sym arity)
      key
      (direct_lookup_args b sym arity args)

let lookup_code_args db sym arity (args : Term.t array) =
  match db.base with
  | None -> direct_lookup_code_args db sym arity args
  | Some b ->
    let key = if arity = 0 then Kany else key_of_term args.(0) in
    overlay_view db
      (find_pred_sym db sym arity)
      key
      (direct_lookup_code_args b sym arity args)

(* Overlay-aware introspection (cold paths). *)

let mem db name arity =
  find_pred db name arity <> None
  || match db.base with None -> false | Some b -> find_pred b name arity <> None

let clauses_of db name arity =
  match db.base with
  | None -> clauses_of db name arity
  | Some b ->
    let keep =
      match db.removed with
      | [] -> fun _ -> true
      | removed -> fun c -> not (List.memq c removed)
    in
    let split =
      match find_pred db name arity with
      | None -> ([], [])
      | Some p ->
        let f, bk = List.partition (fun e -> e.seq < 0) (all_entries p) in
        ( List.map (fun e -> e.e_clause) f,
          List.map (fun e -> e.e_clause) bk )
    in
    let front, back = split in
    List.filter keep (front @ clauses_of b name arity @ back)

(* ------------------------------------------------------------------ *)
(* Tabling registry                                                    *)
(* ------------------------------------------------------------------ *)

let set_tabled db name arity =
  let sym = Symbol.intern name in
  PredTbl.replace db.tabled (Symbol.id sym, arity) name;
  db.has_tabled <- true

let is_tabled db sym arity =
  db.has_tabled && PredTbl.mem db.tabled (Symbol.id sym, arity)

let is_tabled_goal db goal =
  db.has_tabled
  &&
  match Term.functor_of (Term.deref goal) with
  | Some (sym, arity) -> PredTbl.mem db.tabled (Symbol.id sym, arity)
  | None -> false

let tabled_preds db =
  PredTbl.fold (fun (_, arity) name acc -> (name, arity) :: acc) db.tabled []
  |> List.sort compare

let predicates db =
  let fold db acc =
    PredTbl.fold
      (fun _ p acc -> (Symbol.name p.p_name, p.p_arity) :: acc)
      db.preds acc
  in
  let own = fold db [] in
  (match db.base with None -> own | Some b -> fold b own)
  |> List.sort_uniq compare

let total_clauses db =
  let own = PredTbl.fold (fun _ p acc -> acc + p.count) db.preds 0 in
  match db.base with
  | None -> own
  | Some b ->
    own
    + PredTbl.fold (fun _ p acc -> acc + p.count) b.preds 0
    - List.length db.removed

(* A predicate is statically determinate-on-first-arg when no two of its
   clauses can match the same (non-variable) first argument.  Used by the
   analysis library and by LPCO's applicability conditions.

   Two non-Kany keys are compatible exactly when they are equal, i.e. when
   they share a bucket — so with two or more clauses the predicate is
   exclusive iff no clause is variable-headed and every bucket is a
   singleton. *)
let rec first_arg_exclusive db name arity =
  match find_pred db name arity with
  | None -> (
    (* an overlay that does not touch the predicate inherits the base's
       answer; one that does is conservatively non-exclusive *)
    match db.base with
    | Some b when db.removed = [] -> first_arg_exclusive b name arity
    | _ -> false)
  | Some _ when db.base <> None ->
    false (* session clauses may overlap the base's: stay conservative *)
  | Some p ->
    p.count <= 1
    || (p.anys = []
        && KeyTbl.fold
             (fun _ bucket ok ->
               ok && match bucket with [ _ ] -> true | _ -> false)
             p.buckets true)
