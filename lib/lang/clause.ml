(* Compiled clauses.

   A clause body is compiled once at consult time into a list of items;
   sequential conjunction is flattened, and each parallel conjunction
   ('&'/2, as in &ACE) becomes a [Par] node holding one compiled body per
   parallel branch.  Engines interpret this structure directly. *)

module Term = Ace_term.Term
module Symbol = Ace_term.Symbol

(* Slot for the flat instruction code of {!Code}.  Extensible so this
   module needs no forward reference to the compiler: [Code] adds its own
   constructor and caches the compiled form here (filled in by
   {!Database.freeze}, or lazily on first compiled execution). *)
type code = ..

type code += No_code

type body = item list

and item =
  | Call of Term.t
  | Par of body list
  | Exec of exec_frame

(* A compiled-body continuation: resume [xf_code]'s body steps at
   [xf_pc] against the clause instance's environment.  Built only by the
   engines (via {!Kernel}) when a compiled clause's body cannot run to
   completion inside the resolver — it never appears in consult-time
   templates, so renaming and analysis treat it as opaque. *)
and exec_frame = { xf_code : code; xf_pc : int; xf_env : Term.t array }

(* How a fresh instance maps template variables to slots of a fresh-var
   array.  [Closed] clauses (no variables — fact tables, mostly) rename to
   themselves; [Dense] covers the normal case where canonicalization
   allocated the template's variable ids consecutively, so the slot is an
   offset subtraction; [Sparse] is the fallback mapping. *)
type renamer =
  | Closed
  | Dense of int (* slot = vid - base *)
  | Sparse of (int, int) Hashtbl.t (* vid -> slot *)

type t = {
  head : Term.t;
  body : body;
  nvars : int;
  renamer : renamer;
  mutable code : code;
}

exception Malformed of string

let rec compile_body t : body = conj t []

and conj t rest =
  match Term.deref t with
  | Term.Struct (s, [| a; b |]) when Symbol.equal s Symbol.comma ->
    conj a (conj b rest)
  | Term.Atom s when Symbol.equal s Symbol.true_ -> rest
  | Term.Struct (s, [| _; _ |]) as t when Symbol.equal s Symbol.amp ->
    Par (branches t) :: rest
  | g -> Call g :: rest

and branches t =
  match Term.deref t with
  | Term.Struct (s, [| a; b |]) when Symbol.equal s Symbol.amp ->
    compile_body a :: branches b
  | g -> [ compile_body g ]

(* Re-assembles a body into a goal term (for printing and analysis). *)
let rec term_of_body = function
  | [] -> Term.true_
  | [ item ] -> term_of_item item
  | item :: rest ->
    Term.Struct (Symbol.comma, [| term_of_item item; term_of_body rest |])

and term_of_item = function
  | Call g -> g
  | Exec _ -> Term.Atom (Symbol.intern "$code")
  | Par bodies ->
    (match List.rev_map term_of_body bodies with
     | [] -> Term.true_
     | last :: before ->
       List.fold_left
         (fun acc b -> Term.Struct (Symbol.amp, [| b; acc |]))
         last before)

let check_head head =
  match Term.deref head with
  | Term.Atom _ | Term.Struct _ -> ()
  | Term.Int _ | Term.Var _ ->
    raise (Malformed (Format.asprintf "invalid clause head: %a" Ace_term.Pp.pp head))

(* Canonicalizes a freshly parsed clause into a template: bound variables
   are resolved away and the remaining variables are replaced by fresh ones
   whose ids — allocated back to back from the gensym — normally form a
   dense range, enabling array-indexed renaming with no hashing. *)
let compile head body =
  let table = Hashtbl.create 16 in
  let head = Term.rename_with table head in
  let rec go_body b = List.map go_item b
  and go_item = function
    | Call g -> Call (Term.rename_with table g)
    | Par bodies -> Par (List.map go_body bodies)
    | Exec _ as item -> item (* runtime-only; never in parsed clauses *)
  in
  let body = go_body body in
  let nvars = Hashtbl.length table in
  let renamer =
    if nvars = 0 then Closed
    else begin
      let vids = Hashtbl.fold (fun _ v acc -> v.Term.vid :: acc) table [] in
      let base = List.fold_left min max_int vids in
      let hi = List.fold_left max min_int vids in
      if hi - base + 1 = nvars then Dense base
      else begin
        (* another domain allocated variables concurrently; fall back to an
           explicit index (slot order is arbitrary) *)
        let index = Hashtbl.create (2 * nvars) in
        List.iteri (fun slot vid -> Hashtbl.replace index vid slot) vids;
        Sparse index
      end
    end
  in
  { head; body; nvars; renamer; code = No_code }

let of_term t =
  match Term.deref t with
  | Term.Struct (s, [| head; body |]) when Symbol.equal s Symbol.neck ->
    check_head head;
    compile head (compile_body body)
  | head ->
    check_head head;
    compile head []

let to_term { head; body; _ } =
  match body with
  | [] -> head
  | _ -> Term.Struct (Symbol.neck, [| head; term_of_body body |])

let functor_arity { head; _ } =
  match Term.functor_of head with
  | Some sa -> sa
  | None -> assert false (* checked at construction *)

let name_arity c =
  let s, a = functor_arity c in
  (Symbol.name s, a)

(* Fresh instances.  The hot path — a [Dense] template — copies terms with
   one fresh-var array allocation and an offset subtraction per variable
   occurrence, no hash table.  Head and body are instantiated separately
   (sharing the fresh-var array, so variable identity between them is
   preserved): engines unify the head first and pay for the body copy only
   on the clauses whose head actually matched. *)

let no_vars : Term.var array = [||]

let inst_term c fresh t =
  let slot v =
    match c.renamer with
    | Dense base -> v.Term.vid - base
    | Sparse index -> Hashtbl.find index v.Term.vid
    | Closed -> assert false
  in
  let rec go t =
    match t with
    | Term.Atom _ | Term.Int _ -> t
    | Term.Var v -> (
      (* template variables are never bound, but a [with]-updated clause
         could in principle carry bound terms: stay deref-correct *)
      match v.Term.binding with
      | Some t' -> go t'
      | None -> Term.Var fresh.(slot v))
    | Term.Struct (f, args) -> Term.Struct (f, Array.map go args)
  in
  go t

(* Fresh-instance slot of a template variable — the compiler uses this to
   translate variable occurrences into frame offsets. *)
let var_slot c (v : Term.var) =
  match c.renamer with
  | Dense base -> v.Term.vid - base
  | Sparse index -> Hashtbl.find index v.Term.vid
  | Closed -> invalid_arg "Clause.var_slot: closed clause"

let rename_head c =
  match c.renamer with
  | Closed -> (c.head, no_vars)
  | _ ->
    let fresh = Array.init c.nvars (fun _ -> Term.fresh_var ()) in
    (inst_term c fresh c.head, fresh)

let rename_body c fresh =
  match c.renamer with
  | Closed -> c.body
  | _ ->
    let rec go_body b = List.map go_item b
    and go_item = function
      | Call g -> Call (inst_term c fresh g)
      | Par bodies -> Par (List.map go_body bodies)
      | Exec _ as item -> item (* runtime-only; never in templates *)
    in
    go_body c.body

let rename c =
  match c.renamer with
  | Closed -> c
  | _ ->
    let head, fresh = rename_head c in
    (* a fresh instance is not the template its code was compiled from *)
    { c with head; body = rename_body c fresh; code = No_code }

let rec body_goals body =
  List.concat_map
    (function
      | Call g -> [ g ]
      | Exec _ -> []
      | Par bodies -> List.concat_map body_goals bodies)
    body

(* True when the body contains a parallel conjunction at any depth. *)
let rec has_par body =
  List.exists (function Call _ | Exec _ -> false | Par _ -> true) body
  || List.exists
       (function
         | Call _ | Exec _ -> false
         | Par bodies -> List.exists has_par bodies)
       body

let pp ppf c = Ace_term.Pp.pp ppf (to_term c)
