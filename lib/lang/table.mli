(** The shared answer table for SLG tabling.

    One table lives for the duration of one engine run and is shared by
    every worker of that run.  Subgoals are filed in per-shard subgoal
    tries keyed on the alpha-canonical flattening of the call
    ({!Trie.tokens}), so variant calls — equal up to variable renaming —
    share one {!entry}.  Each entry owns an answer trie with
    insert-if-new semantics plus the answers in insertion order.

    Shard discipline (mirroring [lib/obs]): the table is split into
    {!shards} shards by subgoal-token hash.  Created with
    [~locked:true] (the hardware Domains engine) every shard operation
    takes the shard's mutex; with [~locked:false] (the sequential and
    simulated engines, which interleave but never run concurrently) the
    locks are skipped entirely.  Stored subgoals and answers are
    resolved copies — immutable once published — so readers never need
    a lock: completion flags are {!Stdlib.Atomic} and list updates are
    single-word writes of immutable spines. *)

type entry = {
  id : int;  (** unique per table; allocation order *)
  subgoal : Ace_term.Term.t;
      (** canonical instance of the call (resolved copy; read-only) *)
  mutable answers_rev : Ace_term.Term.t list;  (** newest first *)
  answer_trie : unit Trie.t;
  complete : bool Atomic.t;
  mutable answer_clauses : Clause.t list option;
      (** pseudo-fact clauses over the final answers, cached by the
          kernel once the entry is complete *)
}

type t

(** [create ~locked ~max_answers ()] — [locked] arms the per-shard
    mutexes (hardware engine only); [max_answers = 0] means
    unlimited. *)
val create : ?locked:bool -> ?max_answers:int -> unit -> t

val max_answers : t -> int

(** Seeded mutation hook for CI must-fail runs, mirroring
    [Code.mutation]: [Some k] silently truncates every answer set to its
    first [k] answers (later inserts are reported as {!Duplicate}).
    Every engine shares the broken table, so engines still agree with
    each other and only an independent reference evaluator can catch
    it — exactly what the tabled oracle rows must prove they do. *)
val mutation : int option ref

(** [subgoal_entry t call] returns the entry for [call]'s variant class
    and whether it was just created. *)
val subgoal_entry : t -> Ace_term.Term.t -> entry * bool

(** Entry lookup without creation (tests, introspection). *)
val find_entry : t -> Ace_term.Term.t -> entry option

type inserted =
  | Inserted
  | Duplicate
  | Overflow  (** the per-subgoal [max_answers] guard tripped *)

(** [insert t entry answer] files a resolved copy of [answer] in the
    entry's answer trie.  [answer] must be the instantiated subgoal
    (the caller resolves it; this function does not copy). *)
val insert : t -> entry -> Ace_term.Term.t -> inserted

(** Answers in insertion order (a snapshot: the list only grows). *)
val answers : entry -> Ace_term.Term.t list

val answer_count : entry -> int

val is_complete : entry -> bool

(** Marks [entry] complete and appends its canonical subgoal string to
    the completion log (once: later calls are no-ops, so racing workers
    log a region exactly once). *)
val set_complete : t -> entry -> unit

(** Canonical subgoal strings in completion order — the golden record
    for incremental-completion tests. *)
val completion_log : t -> string list

(** All entries, in creation order. *)
val entries : t -> entry list

val subgoal_count : t -> int
