(* The clause compiler: lowers a clause template to flat instruction code.

   Head arguments become get_*/unify_* instructions executed directly
   against the caller's goal arguments — no renamed head copy is
   allocated and the goal is walked exactly once.  Clause variables live
   in a per-try frame (a [Term.t array]); a head first occurrence stores
   the goal subterm into its slot without allocating a variable at all,
   so a fully instantiated call binds nothing and trails nothing.

   Bodies become register-machine code: each body goal is one {!step} —
   [put_*] loads of the goal's arguments into the argument registers
   followed by an operation.  Builtin goals ([O_builtin]) dispatch from
   the registers without ever building a goal term; plain user calls
   ([O_call]) jump into the callee's clause selection with the registers
   as the goal arguments; the final user call compiles to [O_execute]
   (last-call optimization — the caller's frame is dead, so the callee
   may reuse the machinery without stacking a continuation).  Control
   constructs (cut, ';', '->', naf, call/1, the solver's solution/1
   sentinel) and parallel conjunctions keep term-building form
   ([O_goal]/[O_par]) and drop back into each engine's interpreted
   control machinery, so cut barriers, parcall frames and or-parallel
   publication are untouched by compilation.

   Frame slots are ordered by *descending last occurrence* (a step index;
   head-only variables sort last), so the live slots after any step form
   a prefix: [O_call] carries the size of that prefix and engines that
   can prove the frame private may trim the dead suffix (environment
   trimming).  Variables occurring exactly once are voids — they get no
   slot at all ([U_void] in heads, [P_void] in bodies).

   Trail discipline is the interpreter's: every binding of a caller-side
   variable goes through {!Unify.bind} on the worker's trail (structure
   cells freshly allocated in write mode are not caller state and are not
   trailed), so choice-point marks, MUSE stack copies and parcall
   unwinding work identically on compiled code. *)

module Term = Ace_term.Term
module Symbol = Ace_term.Symbol
module Trail = Ace_term.Trail
module Unify = Ace_term.Unify

(* Head instructions.  [Get_*] match one goal argument (the [int] is the
   argument index); [U_*] match the cells of the structure entered by the
   nearest enclosing [Get_struct]/[U_struct], left to right, with [U_pop]
   closing the structure.  In read mode a [*_struct] against an unbound
   variable binds it to a fresh skeleton and switches the cells below to
   write mode (WAM read/write modes, structure-threaded). *)
type instr =
  | Get_atom of Symbol.t * int
  | Get_int of int * int
  | Get_var of int * int (* frame slot <- goal argument; first occurrence *)
  | Get_val of int * int (* full unify frame slot vs goal argument *)
  | Get_struct of Symbol.t * int * int (* functor, arity, argument *)
  | Get_ground of Term.t * int (* ground argument: unify against template *)
  | U_atom of Symbol.t
  | U_int of int
  | U_var of int
  | U_val of int
  | U_void (* single-occurrence variable: matches anything, stores nothing *)
  | U_struct of Symbol.t * int (* functor, arity *)
  | U_ground of Term.t
  | U_pop

(* Body put code: builds argument-register (or goal-term) contents from
   the frame.  [P_const] shares the (ground, hence immutable) template
   subterm; [P_fresh] is a variable's first occurrence — the fresh
   variable is stored into its slot for later [P_val] reads; [P_void] is
   a single-occurrence variable (fresh, unstored). *)
type put =
  | P_const of Term.t
  | P_fresh of int
  | P_val of int
  | P_void
  | P_struct of Symbol.t * put array

(* Parallel-conjunction branches keep the term-building item form: their
   bodies are instantiated wholesale into a {!Clause.body} when the
   parcall is reached. *)
type bitem =
  | B_call of put
  | B_par of bitem list list

(* One body goal.  [s_puts] loads the argument registers (empty for
   [O_goal]/[O_par], whose payload carries its own puts); [s_op] then
   consumes them. *)
type op =
  | O_builtin of Symbol.t (* dispatch from the registers *)
  | O_call of Symbol.t * int (* user call; [int] = live slots after it *)
  | O_execute of Symbol.t (* last user call: frame is dead, no return *)
  | O_goal of put (* control construct: build the term, let the engine
                     classify and dispatch it *)
  | O_par of bitem list list (* parallel conjunction *)

type step = { s_puts : put array; s_op : op }

type t = {
  c_head : instr array;
  c_body : step array;
  c_nvars : int; (* frame slots after void elimination *)
  c_scratch : bool;
      (* body is all builtins plus at most a final execute: the whole
         clause try can run on the reusable scratch frame (no heap
         environment, no continuation) *)
}

(* The engines' builtin table lives above this library; it registers its
   membership test here at startup so the compiler can classify body
   goals.  Defaults to "nothing is a builtin", which is only correct
   before {!Ace_core.Builtins} initializes — i.e. never at runtime. *)
let builtin_hook : (Symbol.t -> int -> bool) ref = ref (fun _ _ -> false)

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

(* Seeded mutation hook for the CI compile-smoke test: when set to
   [Some k], one structure-preserving rewrite is applied to every
   subsequently compiled clause (at point [k mod points], scanning
   forward to the first rewritable point; body steps come before head
   instructions so small seeds exercise the new body code), and the
   differential oracle must report compiled-vs-interpreted
   discrepancies.  Never set outside tests. *)
let mutation : int option ref = ref None

let mutant_atom = lazy (Symbol.intern "$mutant")

(* Rewrites one head instruction without changing the code's structure
   (cell counts and struct nesting preserved), twisting its matching
   semantics. *)
let mutate_instr = function
  | Get_atom (_, i) -> Some (Get_atom (Lazy.force mutant_atom, i))
  | Get_int (n, i) -> Some (Get_int (n + 1, i))
  | Get_var (_, i) -> Some (Get_atom (Lazy.force mutant_atom, i))
  | Get_val (s, i) -> Some (Get_var (s, i)) (* drops the consistency check *)
  | Get_struct (_, n, i) -> Some (Get_struct (Lazy.force mutant_atom, n, i))
  | Get_ground (_, i) -> Some (Get_atom (Lazy.force mutant_atom, i))
  | U_atom _ -> Some (U_atom (Lazy.force mutant_atom))
  | U_int n -> Some (U_int (n + 1))
  | U_var _ -> Some (U_atom (Lazy.force mutant_atom))
  | U_val s -> Some (U_var s)
  | U_struct (_, n) -> Some (U_struct (Lazy.force mutant_atom, n))
  | U_ground _ -> Some (U_atom (Lazy.force mutant_atom))
  | U_void | U_pop -> None (* structural; never rewritten *)

let rec mutate_put = function
  | P_const (Term.Int n) -> Some (P_const (Term.Int (n + 1)))
  | P_const _ -> Some (P_const (Term.Atom (Lazy.force mutant_atom)))
  | P_val _ -> Some P_void (* reads a fresh variable instead of the slot *)
  | P_fresh _ | P_void -> None
  | P_struct (f, ps) ->
    (* rewrite the first rewritable argument, else the functor *)
    let n = Array.length ps in
    let rec go i =
      if i >= n then Some (P_struct (Lazy.force mutant_atom, ps))
      else
        match mutate_put ps.(i) with
        | Some p ->
          let ps = Array.copy ps in
          ps.(i) <- p;
          Some (P_struct (f, ps))
        | None -> go (i + 1)
    in
    go 0

(* Retargets a step's operation (call/execute/builtin aimed at the
   [$mutant] predicate — an existence error or a failed dispatch on the
   compiled path only), falling back to put rewrites for [O_goal]. *)
let mutate_step step =
  match step.s_op with
  | O_builtin _ -> Some { step with s_op = O_builtin (Lazy.force mutant_atom) }
  | O_call (_, trim) ->
    Some { step with s_op = O_call (Lazy.force mutant_atom, trim) }
  | O_execute _ -> Some { step with s_op = O_execute (Lazy.force mutant_atom) }
  | O_goal p ->
    (match mutate_put p with
     | Some p -> Some { step with s_op = O_goal p }
     | None -> None)
  | O_par _ -> None

(* Mutation points are the body steps (first) then the head
   instructions, so the small seeds used by CI land on body code
   whenever the clause has a body. *)
let apply_mutation head body =
  match !mutation with
  | None -> (head, body)
  | Some k ->
    let nb = Array.length body and nh = Array.length head in
    let total = nb + nh in
    if total = 0 then (head, body)
    else begin
      let head = Array.copy head and body = Array.copy body in
      let rec go tries i =
        if tries >= total then ()
        else if i < nb then (
          match mutate_step body.(i) with
          | Some s -> body.(i) <- s
          | None -> go (tries + 1) ((i + 1) mod total))
        else
          match mutate_instr head.(i - nb) with
          | Some ins -> head.(i - nb) <- ins
          | None -> go (tries + 1) ((i + 1) mod total)
      in
      go 0 (k mod total);
      (head, body)
    end

let is_ground_template t =
  (* template variables are never bound, so plain groundness is right *)
  Term.is_ground t

(* Goals the engines treat as control rather than plain calls — must
   mirror [Kernel.is_plain]/[Kernel.classify] exactly, or compiled
   dispatch would disagree with the interpreter on what is a
   predicate. *)
let is_control g =
  match g with
  | Term.Atom s -> Symbol.equal s Symbol.cut
  | Term.Struct (s, [| _ |]) ->
    Symbol.equal s Symbol.naf || Symbol.equal s Symbol.call
    || Symbol.equal s Symbol.solution
  | Term.Struct (s, [| _; _ |]) ->
    Symbol.equal s Symbol.comma || Symbol.equal s Symbol.amp
    || Symbol.equal s Symbol.semicolon || Symbol.equal s Symbol.arrow
  | _ -> false

(* Occurrence analysis over the whole template: per canonical slot, the
   total occurrence count and the last step index that mentions it (-1 =
   head only).  Single-occurrence variables are voids; the rest are
   renumbered by descending last occurrence so trimming keeps a
   prefix. *)
let analyze clause =
  let n = max 1 clause.Clause.nvars in
  let occ = Array.make n 0 in
  let last = Array.make n (-1) in
  let rec scan step t =
    match Term.deref t with
    | Term.Atom _ | Term.Int _ -> ()
    | Term.Var v ->
      let s = Clause.var_slot clause v in
      occ.(s) <- occ.(s) + 1;
      if step > last.(s) then last.(s) <- step
    | Term.Struct (_, args) -> Array.iter (scan step) args
  in
  (match Term.deref clause.Clause.head with
   | Term.Struct (_, args) -> Array.iter (scan (-1)) args
   | _ -> ());
  let rec scan_item step = function
    | Clause.Call g -> scan step g
    | Clause.Par bodies -> List.iter (List.iter (scan_item step)) bodies
    | Clause.Exec _ -> ()
  in
  List.iteri scan_item clause.Clause.body;
  let order =
    List.filter (fun s -> occ.(s) > 1) (List.init clause.Clause.nvars Fun.id)
  in
  (* stable: equal last occurrences keep canonical (first-appearance)
     order, so listings stay readable *)
  let order = List.stable_sort (fun a b -> compare last.(b) last.(a)) order in
  let slot_map = Array.make n (-1) in
  List.iteri (fun ns cs -> slot_map.(cs) <- ns) order;
  let trim_at k = List.length (List.filter (fun cs -> last.(cs) > k) order) in
  (occ, slot_map, List.length order, trim_at)

let compile clause =
  let occ, slot_map, nslots, trim_at = analyze clause in
  let seen = Array.make (max 1 nslots) false in
  let slot v =
    let cs = Clause.var_slot clause v in
    if occ.(cs) = 1 then None
    else begin
      let s = slot_map.(cs) in
      let first = not seen.(s) in
      seen.(s) <- true;
      Some (s, first)
    end
  in
  (* head *)
  let acc = ref [] in
  let emit i = acc := i :: !acc in
  let rec emit_cell t =
    match Term.deref t with
    | Term.Atom s -> emit (U_atom s)
    | Term.Int n -> emit (U_int n)
    | Term.Var v ->
      (match slot v with
       | None -> emit U_void
       | Some (s, first) -> emit (if first then U_var s else U_val s))
    | Term.Struct (f, args) ->
      if is_ground_template t then emit (U_ground (Term.deref t))
      else begin
        emit (U_struct (f, Array.length args));
        Array.iter emit_cell args;
        emit U_pop
      end
  in
  let emit_arg i t =
    match Term.deref t with
    | Term.Atom s -> emit (Get_atom (s, i))
    | Term.Int n -> emit (Get_int (n, i))
    | Term.Var v ->
      (match slot v with
       | None -> () (* a top-level void argument matches anything *)
       | Some (s, first) -> emit (if first then Get_var (s, i) else Get_val (s, i)))
    | Term.Struct (f, args) ->
      if is_ground_template t then emit (Get_ground (Term.deref t, i))
      else begin
        emit (Get_struct (f, Array.length args, i));
        Array.iter emit_cell args;
        emit U_pop
      end
  in
  (match Term.deref clause.Clause.head with
   | Term.Atom _ -> ()
   | Term.Struct (_, args) -> Array.iteri emit_arg args
   | Term.Int _ | Term.Var _ -> assert false (* checked at clause construction *));
  let head = Array.of_list (List.rev !acc) in
  (* body.  Put trees are built in execution order, so the compile-time
     first-occurrence marking ([P_fresh] vs [P_val]) matches the runtime
     order in which [build_put] fills slots. *)
  let rec put_of t =
    match Term.deref t with
    | (Term.Atom _ | Term.Int _) as t' -> P_const t'
    | Term.Var v ->
      (match slot v with
       | None -> P_void
       | Some (s, first) -> if first then P_fresh s else P_val s)
    | Term.Struct (f, args) as t' ->
      if is_ground_template t' then P_const t'
      else P_struct (f, Array.map put_of args)
  in
  let rec go_bbody b = List.map go_bitem b
  and go_bitem = function
    | Clause.Call g -> B_call (put_of g)
    | Clause.Par bodies -> B_par (List.map go_bbody bodies)
    | Clause.Exec _ -> assert false (* runtime-only, never in templates *)
  in
  let nsteps = List.length clause.Clause.body in
  let step_of k item =
    match item with
    | Clause.Par bodies -> { s_puts = [||]; s_op = O_par (List.map go_bbody bodies) }
    | Clause.Exec _ -> assert false (* runtime-only, never in templates *)
    | Clause.Call g ->
      (match Term.deref g with
       | g' when is_control g' -> { s_puts = [||]; s_op = O_goal (put_of g') }
       | Term.Atom s ->
         if !builtin_hook s 0 then { s_puts = [||]; s_op = O_builtin s }
         else if k = nsteps - 1 then { s_puts = [||]; s_op = O_execute s }
         else { s_puts = [||]; s_op = O_call (s, trim_at k) }
       | Term.Struct (s, args) ->
         let puts = Array.map put_of args in
         if !builtin_hook s (Array.length args) then
           { s_puts = puts; s_op = O_builtin s }
         else if k = nsteps - 1 then { s_puts = puts; s_op = O_execute s }
         else { s_puts = puts; s_op = O_call (s, trim_at k) }
       | (Term.Var _ | Term.Int _) as g' ->
         (* runtime dispatch decides (meta-variable or type error) *)
         { s_puts = [||]; s_op = O_goal (put_of g') })
  in
  let body = Array.of_list (List.mapi step_of clause.Clause.body) in
  let head, body = apply_mutation head body in
  let scratch_ok =
    let n = Array.length body in
    let rec ok i =
      if i >= n then true
      else
        match body.(i).s_op with
        | O_builtin _ -> ok (i + 1)
        | O_execute _ -> i = n - 1
        | O_call _ | O_goal _ | O_par _ -> false
    in
    ok 0
  in
  { c_head = head; c_body = body; c_nvars = nslots; c_scratch = scratch_ok }

(* The compiled form is cached on the clause through the extensible
   {!Clause.code} slot.  {!Database.freeze} precompiles every clause
   before parallel workers start; the lazy path below is for
   single-threaded callers on unfrozen databases (a concurrent duplicate
   compile would be idempotent — the code is a pure function of the
   immutable template — so the benign race costs at most a recompile). *)
type Clause.code += Compiled of t

let of_clause clause =
  match clause.Clause.code with
  | Compiled code -> code
  | _ ->
    let code = compile clause in
    clause.Clause.code <- Compiled code;
    code

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(* Frame slots start as this sentinel (compared with [==]): a head first
   occurrence overwrites it with a goal subterm, and a body [P_fresh]
   stores a fresh variable — variables never mentioned by the surviving
   execution path are never allocated. *)
let unset : Term.t = Term.Atom (Symbol.intern "$unset")

let no_args : Term.t array = [||]

(* A heap environment frame for one clause instance (used when the body
   needs a continuation — [c_scratch] bodies never allocate one). *)
let frame code =
  if code.c_nvars = 0 then no_args else Array.make code.c_nvars unset

(* Per-agent execution scratch reused across clause tries: the two
   counters, a frame buffer and the argument-register file.  A scratch
   frame is dead as soon as the clause try has either failed or handed
   off (built its registers / heap environment), so one live buffer per
   scheduler agent suffices; each engine owns one scratch per worker or
   simulated agent, which keeps the parallel engines race-free without
   per-try allocation. *)
type scratch = {
  mutable s_instrs : int;
  s_steps : int ref; (* a ref so it threads into the general unifier *)
  mutable s_buf : Term.t array;
  mutable s_regs : Term.t array; (* the argument registers *)
}

let create_scratch () =
  { s_instrs = 0; s_steps = ref 0; s_buf = [||]; s_regs = [||] }

(* A frame for [code] carved out of the scratch buffer: slots [0 ..
   c_nvars-1] reset to [unset] (the buffer may be longer; slots past
   [c_nvars] are never read). *)
let scratch_frame sc code =
  let n = code.c_nvars in
  if n = 0 then no_args
  else if Array.length sc.s_buf < n then begin
    sc.s_buf <- Array.make n unset;
    sc.s_buf
  end
  else begin
    Array.fill sc.s_buf 0 n unset;
    sc.s_buf
  end

exception Fail

(* The head-code interpreter: top-level recursions with the machine
   state threaded through arguments, so running a head allocates nothing
   beyond the bindings it creates — no per-try closure environments (the
   engines are allocation-bound on this path, so those environments were
   measurable).  [sc.s_instrs] accumulates executed instructions (the
   per-instruction cycle charge), [sc.s_steps] the nodes visited by the
   embedded general unifications ([*_val]/[*_ground]); bindings are
   trailed, and the caller undoes to its own mark on failure. *)

let unify_cell sc trail a b =
  if not (Unify.unify ~trail ~steps:sc.s_steps a b) then raise Fail

(* [exec_sub code sc frame trail ip cells pos write] runs U_*
   instructions against [cells] from [pos] until the matching U_pop;
   returns the instruction pointer past the U_pop. *)
let rec exec_sub code sc frame trail ip (cells : Term.t array) pos write =
  match code.(ip) with
  | U_pop -> ip + 1
  | ins ->
    sc.s_instrs <- sc.s_instrs + 1;
    let ip' =
      match ins with
      | U_atom s ->
        (if write then cells.(pos) <- Term.Atom s
         else
           match Term.deref cells.(pos) with
           | Term.Atom s' when Symbol.equal s s' -> ()
           | Term.Var v -> Unify.bind trail v (Term.Atom s)
           | _ -> raise Fail);
        ip + 1
      | U_int k ->
        (if write then cells.(pos) <- Term.Int k
         else
           match Term.deref cells.(pos) with
           | Term.Int k' when k = k' -> ()
           | Term.Var v -> Unify.bind trail v (Term.Int k)
           | _ -> raise Fail);
        ip + 1
      | U_var slot ->
        (if write then begin
           let v = Term.var () in
           cells.(pos) <- v;
           frame.(slot) <- v
         end
         else frame.(slot) <- cells.(pos));
        ip + 1
      | U_val slot ->
        if write then cells.(pos) <- frame.(slot)
        else unify_cell sc trail frame.(slot) cells.(pos);
        ip + 1
      | U_void ->
        (* matches anything; in write mode the cell still needs a value *)
        if write then cells.(pos) <- Term.var ();
        ip + 1
      | U_ground t ->
        (if write then cells.(pos) <- t
         else
           let cell = cells.(pos) in
           if not (Term.deref cell == t) then unify_cell sc trail t cell);
        ip + 1
      | U_struct (f, arity) ->
        if write then begin
          let cs = Array.make arity Term.nil in
          cells.(pos) <- Term.Struct (f, cs);
          exec_sub code sc frame trail (ip + 1) cs 0 true
        end
        else (
          match Term.deref cells.(pos) with
          | Term.Struct (g, cs) when Symbol.equal f g && Array.length cs = arity
            ->
            exec_sub code sc frame trail (ip + 1) cs 0 false
          | Term.Var v ->
            let cs = Array.make arity Term.nil in
            Unify.bind trail v (Term.Struct (f, cs));
            exec_sub code sc frame trail (ip + 1) cs 0 true
          | _ -> raise Fail)
      | Get_atom _ | Get_int _ | Get_var _ | Get_val _ | Get_struct _
      | Get_ground _ ->
        (* a mutated/truncated program cannot reach here in well-formed
           code; fail the clause rather than crash *)
        raise Fail
      | U_pop -> assert false (* handled by the enclosing match *)
    in
    exec_sub code sc frame trail ip' cells (pos + 1) write

let rec exec_top code n sc frame trail (args : Term.t array) ip =
  if ip >= n then ()
  else begin
    sc.s_instrs <- sc.s_instrs + 1;
    let ip' =
      match code.(ip) with
      | Get_atom (s, i) ->
        (match Term.deref args.(i) with
         | Term.Atom s' when Symbol.equal s s' -> ()
         | Term.Var v -> Unify.bind trail v (Term.Atom s)
         | _ -> raise Fail);
        ip + 1
      | Get_int (k, i) ->
        (match Term.deref args.(i) with
         | Term.Int k' when k = k' -> ()
         | Term.Var v -> Unify.bind trail v (Term.Int k)
         | _ -> raise Fail);
        ip + 1
      | Get_var (slot, i) ->
        frame.(slot) <- args.(i);
        ip + 1
      | Get_val (slot, i) ->
        unify_cell sc trail frame.(slot) args.(i);
        ip + 1
      | Get_ground (t, i) ->
        let arg = args.(i) in
        if not (Term.deref arg == t) then unify_cell sc trail t arg;
        ip + 1
      | Get_struct (f, arity, i) -> (
        match Term.deref args.(i) with
        | Term.Struct (g, cs) when Symbol.equal f g && Array.length cs = arity
          ->
          exec_sub code sc frame trail (ip + 1) cs 0 false
        | Term.Var v ->
          let cs = Array.make arity Term.nil in
          Unify.bind trail v (Term.Struct (f, cs));
          exec_sub code sc frame trail (ip + 1) cs 0 true
        | _ -> raise Fail)
      | U_atom _ | U_int _ | U_var _ | U_val _ | U_void | U_struct _
      | U_ground _ | U_pop ->
        raise Fail (* see the mutation note above *)
    in
    exec_top code n sc frame trail args ip'
  end

let run_head code ~trail ~sc (frame : Term.t array) (args : Term.t array) =
  let code = code.c_head in
  match exec_top code (Array.length code) sc frame trail args 0 with
  | () -> true
  | exception Fail -> false

(* Builds one register (or goal subterm) from the frame.  [P_fresh]
   allocates the variable's one fresh cell and publishes it in the slot
   for later [P_val] reads; under a mutated program a [P_val] can read a
   still-unset slot — it then harmlessly produces the sentinel atom. *)
let rec build_put frame = function
  | P_const t -> t
  | P_val slot -> frame.(slot)
  | P_fresh slot ->
    let v = Term.var () in
    frame.(slot) <- v;
    v
  | P_void -> Term.var ()
  | P_struct (f, ps) -> Term.Struct (f, Array.map (build_put frame) ps)

(* Loads a step's argument registers.  The register file is scratch
   state: put trees only read the frame and constants, never the
   registers, so an [O_execute] may overwrite the registers that hold
   its own caller's arguments in place. *)
let load_regs sc frame (puts : put array) =
  let n = Array.length puts in
  if Array.length sc.s_regs < n then sc.s_regs <- Array.make (max n 8) unset;
  let regs = sc.s_regs in
  for i = 0 to n - 1 do
    regs.(i) <- build_put frame puts.(i)
  done;
  regs

(* Instantiates parallel-conjunction branches into an ordinary
   {!Clause.body} (the parcall machinery consumes items, not code). *)
let rec inst_bbody frame b : Clause.body = List.map (inst_bitem frame) b

and inst_bitem frame = function
  | B_call p -> Clause.Call (build_put frame p)
  | B_par bodies -> Clause.Par (List.map (inst_bbody frame) bodies)

(* ------------------------------------------------------------------ *)
(* Listings (golden tests, debugging)                                  *)
(* ------------------------------------------------------------------ *)

let pp_term = Ace_term.Pp.pp

let pp_instr ppf = function
  | Get_atom (s, i) -> Format.fprintf ppf "get_atom %s, A%d" (Symbol.name s) i
  | Get_int (n, i) -> Format.fprintf ppf "get_int %d, A%d" n i
  | Get_var (s, i) -> Format.fprintf ppf "get_var X%d, A%d" s i
  | Get_val (s, i) -> Format.fprintf ppf "get_val X%d, A%d" s i
  | Get_struct (f, n, i) ->
    Format.fprintf ppf "get_struct %s/%d, A%d" (Symbol.name f) n i
  | Get_ground (t, i) -> Format.fprintf ppf "get_ground %a, A%d" pp_term t i
  | U_atom s -> Format.fprintf ppf "unify_atom %s" (Symbol.name s)
  | U_int n -> Format.fprintf ppf "unify_int %d" n
  | U_var s -> Format.fprintf ppf "unify_var X%d" s
  | U_val s -> Format.fprintf ppf "unify_val X%d" s
  | U_void -> Format.fprintf ppf "unify_void"
  | U_struct (f, n) ->
    Format.fprintf ppf "unify_struct %s/%d" (Symbol.name f) n
  | U_ground t -> Format.fprintf ppf "unify_ground %a" pp_term t
  | U_pop -> Format.fprintf ppf "pop"

let rec pp_put ppf = function
  | P_const t -> pp_term ppf t
  | P_fresh s | P_val s -> Format.fprintf ppf "X%d" s
  | P_void -> Format.fprintf ppf "_"
  | P_struct (f, ps) ->
    Format.fprintf ppf "%s(" (Symbol.name f);
    Array.iteri
      (fun i p ->
        if i > 0 then Format.fprintf ppf ",";
        pp_put ppf p)
      ps;
    Format.fprintf ppf ")"

(* One register load.  The top-level put determines the mnemonic, WAM
   style; nested puts render as terms with slots written X<n>. *)
let pp_reg_put ppf i p =
  match p with
  | P_const (Term.Atom s) ->
    Format.fprintf ppf "put_atom %s, A%d" (Symbol.name s) i
  | P_const (Term.Int n) -> Format.fprintf ppf "put_int %d, A%d" n i
  | P_const t -> Format.fprintf ppf "put_ground %a, A%d" pp_term t i
  | P_fresh s -> Format.fprintf ppf "put_var X%d, A%d" s i
  | P_val s -> Format.fprintf ppf "put_val X%d, A%d" s i
  | P_void -> Format.fprintf ppf "put_void A%d" i
  | P_struct _ -> Format.fprintf ppf "put_struct %a, A%d" pp_put p i

let pp_listing ppf code =
  let depth = ref 0 in
  Array.iter
    (fun ins ->
      (match ins with U_pop -> decr depth | _ -> ());
      Format.fprintf ppf "  %s%a@." (String.make (2 * !depth) ' ') pp_instr ins;
      match ins with
      | Get_struct _ | U_struct _ -> incr depth
      | _ -> ())
    code.c_head;
  let rec pp_items indent items =
    List.iter
      (fun item ->
        match item with
        | B_call p -> Format.fprintf ppf "  %scall %a@." indent pp_put p
        | B_par bodies ->
          Format.fprintf ppf "  %spar@." indent;
          List.iter
            (fun b ->
              Format.fprintf ppf "  %s branch@." indent;
              pp_items (indent ^ "  ") b)
            bodies)
      items
  in
  Array.iter
    (fun step ->
      Array.iteri (fun i p -> Format.fprintf ppf "  %a@." (fun ppf -> pp_reg_put ppf i) p) step.s_puts;
      match step.s_op with
      | O_builtin s ->
        Format.fprintf ppf "  builtin %s/%d@." (Symbol.name s)
          (Array.length step.s_puts)
      | O_call (s, trim) ->
        Format.fprintf ppf "  call %s/%d, trim %d@." (Symbol.name s)
          (Array.length step.s_puts) trim
      | O_execute s ->
        Format.fprintf ppf "  execute %s/%d@." (Symbol.name s)
          (Array.length step.s_puts)
      | O_goal p -> Format.fprintf ppf "  goal %a@." pp_put p
      | O_par bodies -> pp_items "" [ B_par bodies ])
    code.c_body

let listing code = Format.asprintf "%a" pp_listing code
