(* The clause compiler: lowers a clause template to flat instruction code.

   Head arguments become get_*/unify_* instructions executed directly
   against the caller's goal arguments — no renamed head copy is
   allocated and the goal is walked exactly once.  Clause variables live
   in a per-try frame (a [Term.t array] indexed by the template's dense
   slots, see {!Clause.var_slot}); a head first occurrence stores the
   goal subterm into its slot without allocating a variable at all, so a
   fully instantiated call binds nothing and trails nothing.

   Bodies become put code: a tree of {!put} nodes mirroring the template
   with variables replaced by slots and ground subtrees replaced by
   [P_const] nodes that *share* the immutable template subterm instead of
   copying it.  Executing the puts yields an ordinary {!Clause.body}, so
   everything downstream of head unification — continuations, cut
   barriers, parcall frames, or-parallel publication snapshots — is
   untouched by compilation.

   Trail discipline is the interpreter's: every binding of a caller-side
   variable goes through {!Unify.bind} on the worker's trail (structure
   cells freshly allocated in write mode are not caller state and are not
   trailed), so choice-point marks, MUSE stack copies and parcall
   unwinding work identically on compiled code. *)

module Term = Ace_term.Term
module Symbol = Ace_term.Symbol
module Trail = Ace_term.Trail
module Unify = Ace_term.Unify

(* Head instructions.  [Get_*] match one goal argument (the [int] is the
   argument index); [U_*] match the cells of the structure entered by the
   nearest enclosing [Get_struct]/[U_struct], left to right, with [U_pop]
   closing the structure.  In read mode a [*_struct] against an unbound
   variable binds it to a fresh skeleton and switches the cells below to
   write mode (WAM read/write modes, structure-threaded). *)
type instr =
  | Get_atom of Symbol.t * int
  | Get_int of int * int
  | Get_var of int * int (* frame slot <- goal argument; first occurrence *)
  | Get_val of int * int (* full unify frame slot vs goal argument *)
  | Get_struct of Symbol.t * int * int (* functor, arity, argument *)
  | Get_ground of Term.t * int (* ground argument: unify against template *)
  | U_atom of Symbol.t
  | U_int of int
  | U_var of int
  | U_val of int
  | U_struct of Symbol.t * int (* functor, arity *)
  | U_ground of Term.t
  | U_pop

(* Body put code: builds goal terms from the frame.  [P_const] shares the
   (ground, hence immutable) template subterm. *)
type put =
  | P_const of Term.t
  | P_var of int
  | P_struct of Symbol.t * put array

type bitem =
  | B_call of put
  | B_par of bitem list list

type t = {
  c_head : instr array;
  c_body : bitem list;
  c_nvars : int;
}

(* ------------------------------------------------------------------ *)
(* Compilation                                                         *)
(* ------------------------------------------------------------------ *)

(* Seeded mutation hook for the CI compile-smoke test: when set to
   [Some k], one structure-preserving instruction rewrite is applied to
   every subsequently compiled head (at index [k mod length]), so the
   differential oracle must report compiled-vs-interpreted
   discrepancies.  Never set outside tests. *)
let mutation : int option ref = ref None

let mutant_atom = lazy (Symbol.intern "$mutant")

(* Rewrites one instruction without changing the code's structure (cell
   counts and struct nesting preserved), twisting its matching
   semantics. *)
let mutate_instr = function
  | Get_atom (_, i) -> Some (Get_atom (Lazy.force mutant_atom, i))
  | Get_int (n, i) -> Some (Get_int (n + 1, i))
  | Get_var (_, i) -> Some (Get_atom (Lazy.force mutant_atom, i))
  | Get_val (s, i) -> Some (Get_var (s, i)) (* drops the consistency check *)
  | Get_struct (_, n, i) -> Some (Get_struct (Lazy.force mutant_atom, n, i))
  | Get_ground (_, i) -> Some (Get_atom (Lazy.force mutant_atom, i))
  | U_atom _ -> Some (U_atom (Lazy.force mutant_atom))
  | U_int n -> Some (U_int (n + 1))
  | U_var _ -> Some (U_atom (Lazy.force mutant_atom))
  | U_val s -> Some (U_var s)
  | U_struct (_, n) -> Some (U_struct (Lazy.force mutant_atom, n))
  | U_ground _ -> Some (U_atom (Lazy.force mutant_atom))
  | U_pop -> None (* structural; never rewritten *)

let apply_mutation code =
  match !mutation with
  | None -> code
  | Some k ->
    let n = Array.length code in
    if n = 0 then code
    else begin
      let code = Array.copy code in
      (* first rewritable instruction at or after k mod n *)
      let rec go tries i =
        if tries >= n then ()
        else
          match mutate_instr code.(i) with
          | Some ins -> code.(i) <- ins
          | None -> go (tries + 1) ((i + 1) mod n)
      in
      go 0 (k mod n);
      code
    end

let is_ground_template t =
  (* template variables are never bound, so plain groundness is right *)
  Term.is_ground t

let compile_head clause =
  let seen = Array.make (max 1 clause.Clause.nvars) false in
  let slot v =
    let s = Clause.var_slot clause v in
    let first = not seen.(s) in
    seen.(s) <- true;
    (s, first)
  in
  let acc = ref [] in
  let emit i = acc := i :: !acc in
  let rec emit_cell t =
    match Term.deref t with
    | Term.Atom s -> emit (U_atom s)
    | Term.Int n -> emit (U_int n)
    | Term.Var v ->
      let s, first = slot v in
      emit (if first then U_var s else U_val s)
    | Term.Struct (f, args) ->
      if is_ground_template t then emit (U_ground (Term.deref t))
      else begin
        emit (U_struct (f, Array.length args));
        Array.iter emit_cell args;
        emit U_pop
      end
  in
  let emit_arg i t =
    match Term.deref t with
    | Term.Atom s -> emit (Get_atom (s, i))
    | Term.Int n -> emit (Get_int (n, i))
    | Term.Var v ->
      let s, first = slot v in
      emit (if first then Get_var (s, i) else Get_val (s, i))
    | Term.Struct (f, args) ->
      if is_ground_template t then emit (Get_ground (Term.deref t, i))
      else begin
        emit (Get_struct (f, Array.length args, i));
        Array.iter emit_cell args;
        emit U_pop
      end
  in
  (match Term.deref clause.Clause.head with
   | Term.Atom _ -> ()
   | Term.Struct (_, args) -> Array.iteri emit_arg args
   | Term.Int _ | Term.Var _ -> assert false (* checked at clause construction *));
  apply_mutation (Array.of_list (List.rev !acc))

let compile_body clause =
  let slot v = Clause.var_slot clause v in
  let rec put_of t =
    match Term.deref t with
    | (Term.Atom _ | Term.Int _) as t' -> P_const t'
    | Term.Var v -> P_var (slot v)
    | Term.Struct (f, args) as t' ->
      if is_ground_template t' then P_const t'
      else P_struct (f, Array.map put_of args)
  in
  let rec go_body b = List.map go_item b
  and go_item = function
    | Clause.Call g -> B_call (put_of g)
    | Clause.Par bodies -> B_par (List.map go_body bodies)
  in
  go_body clause.Clause.body

let compile clause =
  {
    c_head = compile_head clause;
    c_body = compile_body clause;
    c_nvars = clause.Clause.nvars;
  }

(* The compiled form is cached on the clause through the extensible
   {!Clause.code} slot.  {!Database.freeze} precompiles every clause
   before parallel workers start; the lazy path below is for
   single-threaded callers on unfrozen databases (a concurrent duplicate
   compile would be idempotent — the code is a pure function of the
   immutable template — so the benign race costs at most a recompile). *)
type Clause.code += Compiled of t

let of_clause clause =
  match clause.Clause.code with
  | Compiled code -> code
  | _ ->
    let code = compile clause in
    clause.Clause.code <- Compiled code;
    code

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

(* Frame slots start as this sentinel (compared with [==]): a head first
   occurrence overwrites it with a goal subterm, and body puts replace a
   still-unset slot with a fresh variable on demand — variables never
   mentioned by the surviving execution path are never allocated. *)
let unset : Term.t = Term.Atom (Symbol.intern "$unset")

let no_args : Term.t array = [||]

let frame code =
  if code.c_nvars = 0 then no_args else Array.make code.c_nvars unset

(* Per-domain scratch reused across clause tries: the two counters and a
   frame buffer.  A frame is dead as soon as {!inst_body} has built the
   body (neither the goal subterms it holds nor the body terms reference
   the array itself), so one live buffer per domain suffices;
   domain-local storage keeps the parallel engines race-free without a
   per-try allocation. *)
type scratch = {
  mutable s_instrs : int;
  s_steps : int ref; (* a ref so it threads into the general unifier *)
  mutable s_buf : Term.t array;
}

let scratch_key =
  Domain.DLS.new_key (fun () -> { s_instrs = 0; s_steps = ref 0; s_buf = [||] })

let scratch () = Domain.DLS.get scratch_key

(* A frame for [code] carved out of the scratch buffer: slots [0 ..
   c_nvars-1] reset to [unset] (the buffer may be longer; slots past
   [c_nvars] are never read). *)
let scratch_frame sc code =
  let n = code.c_nvars in
  if n = 0 then no_args
  else if Array.length sc.s_buf < n then begin
    sc.s_buf <- Array.make n unset;
    sc.s_buf
  end
  else begin
    Array.fill sc.s_buf 0 n unset;
    sc.s_buf
  end

exception Fail

(* The head-code interpreter: top-level recursions with the machine
   state threaded through arguments, so running a head allocates nothing
   beyond the bindings it creates — no per-try closure environments (the
   engines are allocation-bound on this path, so those environments were
   measurable).  [sc.s_instrs] accumulates executed instructions (the
   per-instruction cycle charge), [sc.s_steps] the nodes visited by the
   embedded general unifications ([*_val]/[*_ground]); bindings are
   trailed, and the caller undoes to its own mark on failure. *)

let unify_cell sc trail a b =
  if not (Unify.unify ~trail ~steps:sc.s_steps a b) then raise Fail

(* [exec_sub code sc frame trail ip cells pos write] runs U_*
   instructions against [cells] from [pos] until the matching U_pop;
   returns the instruction pointer past the U_pop. *)
let rec exec_sub code sc frame trail ip (cells : Term.t array) pos write =
  match code.(ip) with
  | U_pop -> ip + 1
  | ins ->
    sc.s_instrs <- sc.s_instrs + 1;
    let ip' =
      match ins with
      | U_atom s ->
        (if write then cells.(pos) <- Term.Atom s
         else
           match Term.deref cells.(pos) with
           | Term.Atom s' when Symbol.equal s s' -> ()
           | Term.Var v -> Unify.bind trail v (Term.Atom s)
           | _ -> raise Fail);
        ip + 1
      | U_int k ->
        (if write then cells.(pos) <- Term.Int k
         else
           match Term.deref cells.(pos) with
           | Term.Int k' when k = k' -> ()
           | Term.Var v -> Unify.bind trail v (Term.Int k)
           | _ -> raise Fail);
        ip + 1
      | U_var slot ->
        (if write then begin
           let v = Term.var () in
           cells.(pos) <- v;
           frame.(slot) <- v
         end
         else frame.(slot) <- cells.(pos));
        ip + 1
      | U_val slot ->
        if write then cells.(pos) <- frame.(slot)
        else unify_cell sc trail frame.(slot) cells.(pos);
        ip + 1
      | U_ground t ->
        (if write then cells.(pos) <- t
         else
           let cell = cells.(pos) in
           if not (Term.deref cell == t) then unify_cell sc trail t cell);
        ip + 1
      | U_struct (f, arity) ->
        if write then begin
          let cs = Array.make arity Term.nil in
          cells.(pos) <- Term.Struct (f, cs);
          exec_sub code sc frame trail (ip + 1) cs 0 true
        end
        else (
          match Term.deref cells.(pos) with
          | Term.Struct (g, cs) when Symbol.equal f g && Array.length cs = arity
            ->
            exec_sub code sc frame trail (ip + 1) cs 0 false
          | Term.Var v ->
            let cs = Array.make arity Term.nil in
            Unify.bind trail v (Term.Struct (f, cs));
            exec_sub code sc frame trail (ip + 1) cs 0 true
          | _ -> raise Fail)
      | Get_atom _ | Get_int _ | Get_var _ | Get_val _ | Get_struct _
      | Get_ground _ ->
        (* a mutated/truncated program cannot reach here in well-formed
           code; fail the clause rather than crash *)
        raise Fail
      | U_pop -> assert false (* handled by the enclosing match *)
    in
    exec_sub code sc frame trail ip' cells (pos + 1) write

let rec exec_top code n sc frame trail (args : Term.t array) ip =
  if ip >= n then ()
  else begin
    sc.s_instrs <- sc.s_instrs + 1;
    let ip' =
      match code.(ip) with
      | Get_atom (s, i) ->
        (match Term.deref args.(i) with
         | Term.Atom s' when Symbol.equal s s' -> ()
         | Term.Var v -> Unify.bind trail v (Term.Atom s)
         | _ -> raise Fail);
        ip + 1
      | Get_int (k, i) ->
        (match Term.deref args.(i) with
         | Term.Int k' when k = k' -> ()
         | Term.Var v -> Unify.bind trail v (Term.Int k)
         | _ -> raise Fail);
        ip + 1
      | Get_var (slot, i) ->
        frame.(slot) <- args.(i);
        ip + 1
      | Get_val (slot, i) ->
        unify_cell sc trail frame.(slot) args.(i);
        ip + 1
      | Get_ground (t, i) ->
        let arg = args.(i) in
        if not (Term.deref arg == t) then unify_cell sc trail t arg;
        ip + 1
      | Get_struct (f, arity, i) -> (
        match Term.deref args.(i) with
        | Term.Struct (g, cs) when Symbol.equal f g && Array.length cs = arity
          ->
          exec_sub code sc frame trail (ip + 1) cs 0 false
        | Term.Var v ->
          let cs = Array.make arity Term.nil in
          Unify.bind trail v (Term.Struct (f, cs));
          exec_sub code sc frame trail (ip + 1) cs 0 true
        | _ -> raise Fail)
      | U_atom _ | U_int _ | U_var _ | U_val _ | U_struct _ | U_ground _
      | U_pop ->
        raise Fail (* see the mutation note above *)
    in
    exec_top code n sc frame trail args ip'
  end

let run_head code ~trail ~sc (frame : Term.t array) (args : Term.t array) =
  let code = code.c_head in
  match exec_top code (Array.length code) sc frame trail args 0 with
  | () -> true
  | exception Fail -> false

(* Builds the body against the frame.  A slot still unset here belongs to
   a variable whose first occurrence is in the body: it becomes fresh
   now. *)
let rec build_put frame = function
  | P_const t -> t
  | P_var slot ->
    let t = frame.(slot) in
    if t == unset then begin
      let v = Term.var () in
      frame.(slot) <- v;
      v
    end
    else t
  | P_struct (f, ps) -> Term.Struct (f, Array.map (build_put frame) ps)

let inst_body code frame : Clause.body =
  let rec go_body b = List.map go_item b
  and go_item = function
    | B_call p -> Clause.Call (build_put frame p)
    | B_par bodies -> Clause.Par (List.map go_body bodies)
  in
  go_body code.c_body

(* ------------------------------------------------------------------ *)
(* Listings (golden tests, debugging)                                  *)
(* ------------------------------------------------------------------ *)

let pp_term = Ace_term.Pp.pp

let pp_instr ppf = function
  | Get_atom (s, i) -> Format.fprintf ppf "get_atom %s, A%d" (Symbol.name s) i
  | Get_int (n, i) -> Format.fprintf ppf "get_int %d, A%d" n i
  | Get_var (s, i) -> Format.fprintf ppf "get_var X%d, A%d" s i
  | Get_val (s, i) -> Format.fprintf ppf "get_val X%d, A%d" s i
  | Get_struct (f, n, i) ->
    Format.fprintf ppf "get_struct %s/%d, A%d" (Symbol.name f) n i
  | Get_ground (t, i) -> Format.fprintf ppf "get_ground %a, A%d" pp_term t i
  | U_atom s -> Format.fprintf ppf "unify_atom %s" (Symbol.name s)
  | U_int n -> Format.fprintf ppf "unify_int %d" n
  | U_var s -> Format.fprintf ppf "unify_var X%d" s
  | U_val s -> Format.fprintf ppf "unify_val X%d" s
  | U_struct (f, n) ->
    Format.fprintf ppf "unify_struct %s/%d" (Symbol.name f) n
  | U_ground t -> Format.fprintf ppf "unify_ground %a" pp_term t
  | U_pop -> Format.fprintf ppf "pop"

let rec pp_put ppf = function
  | P_const t -> pp_term ppf t
  | P_var s -> Format.fprintf ppf "X%d" s
  | P_struct (f, ps) ->
    Format.fprintf ppf "%s(" (Symbol.name f);
    Array.iteri
      (fun i p ->
        if i > 0 then Format.fprintf ppf ",";
        pp_put ppf p)
      ps;
    Format.fprintf ppf ")"

let pp_listing ppf code =
  let depth = ref 0 in
  Array.iter
    (fun ins ->
      (match ins with U_pop -> decr depth | _ -> ());
      Format.fprintf ppf "  %s%a@." (String.make (2 * !depth) ' ') pp_instr ins;
      match ins with
      | Get_struct _ | U_struct _ -> incr depth
      | _ -> ())
    code.c_head;
  let rec pp_items indent items =
    List.iter
      (fun item ->
        match item with
        | B_call p -> Format.fprintf ppf "  %scall %a@." indent pp_put p
        | B_par bodies ->
          Format.fprintf ppf "  %spar@." indent;
          List.iter
            (fun b ->
              Format.fprintf ppf "  %s branch@." indent;
              pp_items (indent ^ "  ") b)
            bodies)
      items
  in
  pp_items "" code.c_body

let listing code = Format.asprintf "%a" pp_listing code
