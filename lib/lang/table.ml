(* The shared answer table for SLG tabling (see table.mli).

   Concurrency contract.  All structural mutation — subgoal-trie
   insertion, answer-trie insertion — happens under the owning shard's
   mutex when the table is [locked]; the simulated engines pass
   [locked:false] and skip the mutexes (their "workers" are coroutines
   of one thread, so every table operation is atomic with respect to
   the simulation already).  Reads need no lock in either mode: stored
   terms are resolved copies that are never mutated, [answers_rev] is a
   single-word pointer to an immutable spine (a racing reader sees some
   monotone prefix state), and [complete] is an Atomic whose
   false→true transition is the only change. *)

module Term = Ace_term.Term

type entry = {
  id : int;
  subgoal : Term.t;
  mutable answers_rev : Term.t list;
  answer_trie : unit Trie.t;
  complete : bool Atomic.t;
  mutable answer_clauses : Clause.t list option;
}

type shard = { lock : Mutex.t; subgoals : entry Trie.t }

let shards = 16

type t = {
  locked : bool;
  shard_arr : shard array;
  next_id : int Atomic.t;
  t_max_answers : int;
  log_lock : Mutex.t;
  mutable log_rev : string list;
}

let mutation : int option ref = ref None

let create ?(locked = false) ?(max_answers = 0) () =
  {
    locked;
    shard_arr =
      Array.init shards (fun _ ->
          { lock = Mutex.create (); subgoals = Trie.create () });
    next_id = Atomic.make 0;
    t_max_answers = max_answers;
    log_lock = Mutex.create ();
    log_rev = [];
  }

let max_answers t = t.t_max_answers

let with_shard t shard f =
  if t.locked then begin
    Mutex.lock shard.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock shard.lock) f
  end
  else f ()

let shard_of t toks = t.shard_arr.(Trie.hash toks land (shards - 1))

let subgoal_entry t call =
  let toks = Trie.tokens call in
  let shard = shard_of t toks in
  with_shard t shard (fun () ->
      match Trie.find shard.subgoals toks with
      | Some e -> (e, false)
      | None ->
        let e =
          {
            id = Atomic.fetch_and_add t.next_id 1;
            subgoal = Term.copy_resolved call;
            answers_rev = [];
            answer_trie = Trie.create ();
            complete = Atomic.make false;
            answer_clauses = None;
          }
        in
        Trie.add shard.subgoals toks e;
        (e, true))

let find_entry t call =
  let toks = Trie.tokens call in
  let shard = shard_of t toks in
  with_shard t shard (fun () -> Trie.find shard.subgoals toks)

type inserted =
  | Inserted
  | Duplicate
  | Overflow

let insert t entry answer =
  let toks = Trie.tokens answer in
  let shard = shard_of t (Trie.tokens entry.subgoal) in
  with_shard t shard (fun () ->
      if Trie.find entry.answer_trie toks <> None then Duplicate
      else begin
        let n = Trie.cardinal entry.answer_trie in
        if t.t_max_answers > 0 && n >= t.t_max_answers then Overflow
        else if
          (* seeded CI mutation: silently lose the k-th distinct answer *)
          match !mutation with Some k -> n = k | None -> false
        then Duplicate
        else begin
          ignore (Trie.insert_new entry.answer_trie toks () : bool);
          entry.answers_rev <- answer :: entry.answers_rev;
          Inserted
        end
      end)

let answers entry = List.rev entry.answers_rev

let answer_count entry = List.length entry.answers_rev

let is_complete entry = Atomic.get entry.complete

let set_complete t entry =
  if Atomic.compare_and_set entry.complete false true then begin
    Mutex.lock t.log_lock;
    t.log_rev <- Ace_term.Pp.to_canonical_string entry.subgoal :: t.log_rev;
    Mutex.unlock t.log_lock
  end

let completion_log t = List.rev t.log_rev

let entries t =
  let all = ref [] in
  Array.iter
    (fun shard -> Trie.iter (fun e -> all := e :: !all) shard.subgoals)
    t.shard_arr;
  List.sort (fun a b -> compare a.id b.id) !all

let subgoal_count t = Atomic.get t.next_id
