(** Operator table for the parser (standard ISO core operators plus the
    ['&'/2] parallel-conjunction operator at priority 1000, as in ACE).
    Lookups are by interned symbol; declarations intern their name. *)

type assoc = Xfx | Xfy | Yfx

type infix = { prio : int; assoc : assoc }

val infix : Ace_term.Symbol.t -> infix option

(** [prefix s] is [Some (prio, strict)]; [strict] means the argument must
    have strictly smaller priority ([fy] operators are non-strict). *)
val prefix : Ace_term.Symbol.t -> (int * bool) option

val is_operator : Ace_term.Symbol.t -> bool

val declare_infix : string -> int -> assoc -> unit
val declare_prefix : ?strict:bool -> string -> int -> unit
