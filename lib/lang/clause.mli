(** Compiled clauses: flattened sequential conjunctions with explicit
    parallel-conjunction ([Par]) nodes. *)

(** Cache slot for the flat instruction code of {!Code}.  Extensible so
    the clause representation carries compiled code without a forward
    dependency on the compiler; [No_code] means "not compiled yet". *)
type code = ..

type code += No_code

type body = item list

and item =
  | Call of Ace_term.Term.t
  | Par of body list  (** one compiled body per '&' branch *)
  | Exec of exec_frame
      (** resume a compiled clause body (runtime-only: built by the
          engines through {!Ace_core.Kernel}, never present in
          consult-time templates) *)

and exec_frame = {
  xf_code : code;  (** the clause's compiled code ([Code.Compiled]) *)
  xf_pc : int;  (** body step to resume at *)
  xf_env : Ace_term.Term.t array;  (** the instance's environment frame *)
}

(** Maps template variables to fresh-instance slots (see {!rename}). *)
type renamer

type t = {
  head : Ace_term.Term.t;
  body : body;
  nvars : int;  (** distinct variables in the template *)
  renamer : renamer;
  mutable code : code;  (** filled by {!Code.of_clause}; idempotent *)
}

exception Malformed of string

(** Compiles a goal term (','/2, '&'/2, [true]) into a body. *)
val compile_body : Ace_term.Term.t -> body

(** Inverse of {!compile_body} (round-trips up to [true] elimination). *)
val term_of_body : body -> Ace_term.Term.t

(** From a [H :- B] or fact term; raises {!Malformed} on invalid heads. *)
val of_term : Ace_term.Term.t -> t

val to_term : t -> Ace_term.Term.t

(** Head functor as an interned symbol — the hot-path form used by the
    database. *)
val functor_arity : t -> Ace_term.Symbol.t * int

(** Head functor with the name resolved to a string (cold paths). *)
val name_arity : t -> string * int

(** Fresh instance with consistently renamed variables. *)
val rename : t -> t

(** Two-phase fresh instance for the engines' hot path: [rename_head]
    allocates the instance's fresh variables and copies only the head;
    [rename_body] copies the body against the same fresh-var array, to be
    called only after the head unified — failing clause tries never pay for
    their bodies. *)
val rename_head : t -> Ace_term.Term.t * Ace_term.Term.var array

val rename_body : t -> Ace_term.Term.var array -> body

(** Fresh-instance frame slot (in [0 .. nvars-1]) of a template variable;
    raises on a closed (variable-free) clause. *)
val var_slot : t -> Ace_term.Term.var -> int

(** All [Call] goals, left-to-right, descending into [Par]. *)
val body_goals : body -> Ace_term.Term.t list

(** Whether a parallel conjunction occurs anywhere in the body. *)
val has_par : body -> bool

val pp : Format.formatter -> t -> unit
