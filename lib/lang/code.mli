(** The clause compiler: flat get/unify head code plus register-machine
    body code.

    Compiled at assert/consult time (cached on the clause via the
    extensible {!Clause.code} slot; {!Database.freeze} precompiles every
    clause so parallel workers only read).  The head code matches the
    goal arguments in place — no renamed head copy, no fresh variables
    for head occurrences — and the body code loads argument registers
    with [put_*] instructions and dispatches [call]/[execute]/[builtin]
    operations without materializing intermediate goal terms; control
    constructs and parallel conjunctions fall back to term-building
    ([O_goal]/[O_par]) and the engines' interpreted control machinery.
    All caller-visible bindings are trailed exactly as the interpreter's,
    so choice points, MUSE copies and parcall unwinding are unaffected. *)

(** Head instructions.  [Get_*] match one goal argument; [U_*] run
    against the cells of the nearest enclosing [*_struct] (closed by
    [U_pop]), switching to write mode when the structure position was an
    unbound variable. *)
type instr =
  | Get_atom of Ace_term.Symbol.t * int
  | Get_int of int * int
  | Get_var of int * int  (** frame slot <- goal argument (first occurrence) *)
  | Get_val of int * int  (** general unify: frame slot vs goal argument *)
  | Get_struct of Ace_term.Symbol.t * int * int  (** functor, arity, argument *)
  | Get_ground of Ace_term.Term.t * int
      (** ground argument: one general unify against the shared template *)
  | U_atom of Ace_term.Symbol.t
  | U_int of int
  | U_var of int
  | U_val of int
  | U_void
      (** single-occurrence variable: matches anything, stores nothing *)
  | U_struct of Ace_term.Symbol.t * int
  | U_ground of Ace_term.Term.t
  | U_pop

(** Body put code; [P_const] shares the immutable template subterm,
    [P_fresh] is a variable's first occurrence (the fresh variable is
    stored into its slot), [P_val] reads a slot, [P_void] is a
    single-occurrence variable. *)
type put =
  | P_const of Ace_term.Term.t
  | P_fresh of int
  | P_val of int
  | P_void
  | P_struct of Ace_term.Symbol.t * put array

(** Parallel-conjunction branches (instantiated wholesale into a
    {!Clause.body} when the parcall is reached). *)
type bitem =
  | B_call of put
  | B_par of bitem list list

(** A body step's operation, consuming the registers loaded by its
    puts. *)
type op =
  | O_builtin of Ace_term.Symbol.t  (** dispatch straight from registers *)
  | O_call of Ace_term.Symbol.t * int
      (** user call; the [int] is the number of frame slots still live
          after it (environment trimming) *)
  | O_execute of Ace_term.Symbol.t
      (** last user call: the frame is dead, no continuation is stacked
          (last-call optimization) *)
  | O_goal of put
      (** control construct (cut, ';', '->', naf, call/1, solution/1) or
          meta-variable: build the term, let the engine dispatch it *)
  | O_par of bitem list list  (** parallel conjunction *)

type step = { s_puts : put array; s_op : op }

type t = {
  c_head : instr array;
  c_body : step array;
  c_nvars : int;  (** frame slots after void elimination *)
  c_scratch : bool;
      (** body is all builtins plus at most a final execute — the whole
          try runs on the scratch frame, no heap environment *)
}

type Clause.code += Compiled of t

(** The builtin membership test, registered by [Ace_core.Builtins] at
    startup (this library sits below the builtin table).  The compiler
    classifies body goals through it; the default rejects everything. *)
val builtin_hook : (Ace_term.Symbol.t -> int -> bool) ref

(** Compiles a clause template (no caching). *)
val compile : Clause.t -> t

(** Cached compilation through the clause's {!Clause.code} slot. *)
val of_clause : Clause.t -> t

(** A fresh heap environment frame for one clause instance: [c_nvars]
    slots holding the {!unset} sentinel. *)
val frame : t -> Ace_term.Term.t array

(** The frame sentinel (compare with [==]). *)
val unset : Ace_term.Term.t

val no_args : Ace_term.Term.t array

(** Per-agent execution scratch: the instruction/unify-step counters, a
    frame buffer reused across clause tries and the argument-register
    file.  Each engine allocates one per worker or simulated agent. *)
type scratch = {
  mutable s_instrs : int;
  s_steps : int ref;  (** threads into the embedded general unifier *)
  mutable s_buf : Ace_term.Term.t array;
  mutable s_regs : Ace_term.Term.t array;  (** the argument registers *)
}

val create_scratch : unit -> scratch

(** A frame for [code] carved out of the scratch buffer, slots reset to
    {!unset}.  Invalidated by the next [scratch_frame] call on this
    agent — consume it (run the head, run or hand off the body) before
    the next clause try. *)
val scratch_frame : scratch -> t -> Ace_term.Term.t array

(** [run_head code ~trail ~sc frame args] executes the head code against
    the goal arguments; [true] on match.  [args] may be longer than the
    head's arity (a register file): the extra cells are ignored.  Adds
    executed instructions to [sc.s_instrs] and the nodes visited by
    embedded general unifications to [sc.s_steps] (the caller resets
    them).  Bindings stay trailed on failure — the caller undoes to its
    own mark (same contract as a failed {!Ace_term.Unify.unify}). *)
val run_head :
  t ->
  trail:Ace_term.Trail.t ->
  sc:scratch ->
  Ace_term.Term.t array ->
  Ace_term.Term.t array ->
  bool

(** Builds one register (or goal subterm) from the frame; [P_fresh]
    publishes its fresh variable in the slot. *)
val build_put : Ace_term.Term.t array -> put -> Ace_term.Term.t

(** Loads a step's argument registers into [sc.s_regs] (growing it as
    needed) and returns the register file.  Valid until the next
    [load_regs] on this scratch; put trees never read the registers, so
    an [O_execute] may reload in place over its caller's arguments. *)
val load_regs :
  scratch -> Ace_term.Term.t array -> put array -> Ace_term.Term.t array

(** Instantiates parallel-conjunction branches against the frame. *)
val inst_bbody : Ace_term.Term.t array -> bitem list -> Clause.body

(** Seeded structure-preserving mutation applied to every clause
    compiled while set ([Some k] rewrites the point at [k mod points];
    body steps index before head instructions).  CI's compile-smoke test
    sets this and requires the differential oracle to fail.  Never set
    outside tests. *)
val mutation : int option ref

(** Human-readable instruction listing (golden tests). *)
val pp_listing : Format.formatter -> t -> unit

val listing : t -> string
