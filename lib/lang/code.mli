(** The clause compiler: flat get/unify head code plus body put code.

    Compiled at assert/consult time (cached on the clause via the
    extensible {!Clause.code} slot; {!Database.freeze} precompiles every
    clause so parallel workers only read).  The head code matches the
    goal arguments in place — no renamed head copy, no fresh variables
    for head occurrences — and the put code instantiates the body into an
    ordinary {!Clause.body}, sharing ground template subterms instead of
    copying them.  All caller-visible bindings are trailed exactly as the
    interpreter's, so choice points, MUSE copies and parcall unwinding
    are unaffected. *)

(** Head instructions.  [Get_*] match one goal argument; [U_*] run
    against the cells of the nearest enclosing [*_struct] (closed by
    [U_pop]), switching to write mode when the structure position was an
    unbound variable. *)
type instr =
  | Get_atom of Ace_term.Symbol.t * int
  | Get_int of int * int
  | Get_var of int * int  (** frame slot <- goal argument (first occurrence) *)
  | Get_val of int * int  (** general unify: frame slot vs goal argument *)
  | Get_struct of Ace_term.Symbol.t * int * int  (** functor, arity, argument *)
  | Get_ground of Ace_term.Term.t * int
      (** ground argument: one general unify against the shared template *)
  | U_atom of Ace_term.Symbol.t
  | U_int of int
  | U_var of int
  | U_val of int
  | U_struct of Ace_term.Symbol.t * int
  | U_ground of Ace_term.Term.t
  | U_pop

(** Body put code; [P_const] shares the immutable template subterm. *)
type put =
  | P_const of Ace_term.Term.t
  | P_var of int
  | P_struct of Ace_term.Symbol.t * put array

type bitem =
  | B_call of put
  | B_par of bitem list list

type t = {
  c_head : instr array;
  c_body : bitem list;
  c_nvars : int;
}

type Clause.code += Compiled of t

(** Compiles a clause template (no caching). *)
val compile : Clause.t -> t

(** Cached compilation through the clause's {!Clause.code} slot. *)
val of_clause : Clause.t -> t

(** A fresh frame for one clause try: [c_nvars] slots holding the
    {!unset} sentinel. *)
val frame : t -> Ace_term.Term.t array

(** The frame sentinel (compare with [==]). *)
val unset : Ace_term.Term.t

val no_args : Ace_term.Term.t array

(** Per-domain execution scratch: the instruction/unify-step counters
    and a frame buffer reused across clause tries (a frame is dead once
    {!inst_body} has run, so one live buffer per domain suffices). *)
type scratch = {
  mutable s_instrs : int;
  s_steps : int ref;  (** threads into the embedded general unifier *)
  mutable s_buf : Ace_term.Term.t array;
}

(** This domain's scratch (domain-local storage; allocation-free after
    the first call on each domain). *)
val scratch : unit -> scratch

(** A frame for [code] carved out of the scratch buffer, slots reset to
    {!unset}.  Invalidated by the next [scratch_frame] call on this
    domain — consume it (run the head, instantiate the body) before the
    next clause try. *)
val scratch_frame : scratch -> t -> Ace_term.Term.t array

(** [run_head code ~trail ~sc frame args] executes the head code against
    the goal arguments; [true] on match.  Adds executed instructions to
    [sc.s_instrs] and the nodes visited by embedded general unifications
    to [sc.s_steps] (the caller resets them).  Bindings stay trailed on
    failure — the caller undoes to its own mark (same contract as a
    failed {!Ace_term.Unify.unify}). *)
val run_head :
  t ->
  trail:Ace_term.Trail.t ->
  sc:scratch ->
  Ace_term.Term.t array ->
  Ace_term.Term.t array ->
  bool

(** Instantiates the body against a frame produced by {!run_head};
    body-only variables become fresh here. *)
val inst_body : t -> Ace_term.Term.t array -> Clause.body

(** Seeded structure-preserving instruction mutation applied to every
    head compiled while set ([Some k] rewrites the instruction at
    [k mod length]).  CI's compile-smoke test sets this and requires the
    differential oracle to fail.  Never set outside tests. *)
val mutation : int option ref

(** Human-readable instruction listing (golden tests). *)
val pp_listing : Format.formatter -> t -> unit

val listing : t -> string
