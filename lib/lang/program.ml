(* Consulting: turning Prolog source text into a clause database. *)

module Term = Ace_term.Term
module Symbol = Ace_term.Symbol

type t = { db : Database.t; mutable directives : Term.t list }

let create () = { db = Database.create (); directives = [] }

exception Error of string

(* [:- table(name/arity)] — the spec may be a ','-separated sequence of
   [name/arity] terms, as in [:- table(path/2, edge/2)]. *)
let slash = Symbol.intern "/"
let table_sym = Symbol.intern "table"

let rec table_specs t acc =
  match Term.deref t with
  | Term.Struct (c, [| a; b |]) when Symbol.equal c Symbol.comma ->
    table_specs a (table_specs b acc)
  | Term.Struct (s, [| name; arity |]) when Symbol.equal s slash -> (
    match Term.deref name, Term.deref arity with
    | Term.Atom n, Term.Int k when k >= 0 -> (Symbol.name n, k) :: acc
    | _ -> raise (Error "table directive expects name/arity specs"))
  | _ -> raise (Error "table directive expects name/arity specs")

let apply_directive program d =
  match Term.deref d with
  | Term.Struct (s, args) when Symbol.equal s table_sym && Array.length args >= 1
    ->
    Array.iter
      (fun spec ->
        List.iter
          (fun (name, arity) -> Database.set_tabled program.db name arity)
          (table_specs spec []))
      args
  | _ -> ()

let add_term program t =
  match Term.deref t with
  | Term.Struct (s, [| d |])
    when Symbol.equal s Symbol.neck || Symbol.equal s Symbol.query ->
    apply_directive program d;
    program.directives <- program.directives @ [ d ]
  | _ -> (
    match Clause.of_term t with
    | clause -> Database.assertz program.db clause
    | exception Clause.Malformed msg -> raise (Error msg))

let consult_string ?(program = create ()) src =
  (match Parser.read_all src with
   | terms -> List.iter (fun rt -> add_term program rt.Parser.term) terms
   | exception Parser.Error (msg, pos) ->
     raise (Error (Format.sprintf "parse error at %d:%d: %s" pos.Lexer.line pos.Lexer.col msg))
   | exception Lexer.Error (msg, pos) ->
     raise (Error (Format.sprintf "lex error at %d:%d: %s" pos.Lexer.line pos.Lexer.col msg)));
  program

let consult_file ?program path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let src = really_input_string ic n in
  close_in ic;
  consult_string ?program src

(* A query is a goal term optionally prefixed by [?-]; the named variables
   are reported so callers can display solutions. *)
type query = { goal : Term.t; query_vars : (string * Term.var) list }

let parse_query src =
  let src =
    let trimmed = String.trim src in
    if String.length trimmed > 0 && trimmed.[String.length trimmed - 1] = '.'
    then src
    else src ^ " ."
  in
  match Parser.read_all src with
  | [ { Parser.term; var_names } ] ->
    let goal =
      match Term.deref term with
      | Term.Struct (s, [| g |]) when Symbol.equal s Symbol.query -> g
      | g -> g
    in
    { goal; query_vars = var_names }
  | [] -> raise (Error "empty query")
  | _ :: _ :: _ -> raise (Error "query must be a single term")
  | exception Parser.Error (msg, pos) ->
    raise (Error (Format.sprintf "parse error at %d:%d: %s" pos.Lexer.line pos.Lexer.col msg))
  | exception Lexer.Error (msg, pos) ->
    raise (Error (Format.sprintf "lex error at %d:%d: %s" pos.Lexer.line pos.Lexer.col msg))

let db program = program.db

let directives program = program.directives
