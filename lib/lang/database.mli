(** Clause database with first-argument indexing.

    Indexing is what makes runtime determinacy observable to the engines:
    a call with a single surviving clause allocates no choice point, which
    is the trigger condition for the paper's LPCO and shallow-parallelism
    optimizations. *)

type t

val create : unit -> t

val assertz : t -> Clause.t -> unit
val asserta : t -> Clause.t -> unit

val mem : t -> string -> int -> bool

(** Clauses of a predicate in source order (no indexing). *)
val clauses_of : t -> string -> int -> Clause.t list

(** Candidate clauses for a call after first-argument indexing; [None] when
    the predicate is undefined. *)
val lookup : t -> Ace_term.Term.t -> Clause.t list option

(** Candidate clauses for a call through the switch-on-term dispatch tree
    with deep argument indexing (the compiled path's {!lookup}); built by
    {!freeze}, falls back to {!lookup} on an unfrozen database.  Like
    {!lookup}, [None] means the predicate is undefined, and the result is
    in source order — only provably non-unifiable clauses are filtered
    out, so solution sets are unchanged (choice-point counts may
    shrink). *)
val lookup_code : t -> Ace_term.Term.t -> Clause.t list option

(** {!lookup} with the call spread in a register file (the compiled body
    path never packs a [Term.Struct] for the call): [args] holds the
    goal's arguments in its first [arity] cells and may be longer. *)
val lookup_args :
  t -> Ace_term.Symbol.t -> int -> Ace_term.Term.t array -> Clause.t list option

(** {!lookup_code} rooted at a register file (see {!lookup_args}). *)
val lookup_code_args :
  t -> Ace_term.Symbol.t -> int -> Ace_term.Term.t array -> Clause.t list option

(** Precomputes every {!lookup} result so later lookups are allocation-free
    pure reads (safe to share across domains).  Asserting invalidates the
    affected predicate; freeze again after updates.  Idempotent, and
    thread-safe: concurrent freezes serialize on an internal lock and the
    frozen flag is published only after the caches (including the
    dispatch trees) are completely built, so two sessions freezing the
    same base cannot race the build or observe a half-built index. *)
val freeze : t -> unit

(** {2 Session overlays}

    A session overlay is a private delta over a shared frozen base:
    clauses asserted into the overlay are visible only through it
    ([asserta]'d ones before the base's clauses, [assertz]'d ones
    after), {!retract} tombstones clauses without writing the base, and
    every lookup merges the delta around the base's indexed answer.
    The base is never mutated, so any number of sessions can overlay
    the same database while engines run queries against it. *)

(** [overlay base] freezes [base] and returns a fresh empty overlay
    over it.  Raises [Invalid_argument] if [base] is itself an overlay
    (deltas do not stack). *)
val overlay : t -> t

(** The overlay's base database; [None] for an ordinary database. *)
val base : t -> t option

(** [retract db pattern] removes the first clause of the session view
    (overlay [asserta]s, then base, then overlay [assertz]s) whose
    [H :- B] term unifies with [pattern]'s; returns [false] when no
    clause matches.  Overlay-only: raises [Invalid_argument] on a
    database without a base. *)
val retract : t -> Clause.t -> bool

(** Registers a predicate for SLG tabling (the [:- table name/arity]
    directive, applied by {!Program} at consult time). *)
val set_tabled : t -> string -> int -> unit

(** Whether [sym/arity] is tabled — integer-keyed and gated on a single
    boolean, so untabled programs pay one load per call. *)
val is_tabled : t -> Ace_term.Symbol.t -> int -> bool

(** {!is_tabled} of a goal term's functor. *)
val is_tabled_goal : t -> Ace_term.Term.t -> bool

(** Tabled predicates, sorted. *)
val tabled_preds : t -> (string * int) list

(** Defined predicates, sorted. *)
val predicates : t -> (string * int) list

val total_clauses : t -> int

(** No two clauses of the predicate can match the same non-variable first
    argument (static determinacy). *)
val first_arg_exclusive : t -> string -> int -> bool
