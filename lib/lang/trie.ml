(* Term tries keyed on alpha-canonical flattened terms (see trie.mli).

   A node is a hashtable from one token to the child node; a value sits
   on the node reached by the whole token list.  The token table is
   monomorphic so lookups hash and compare machine integers only, like
   the database's first-argument index.  The root additionally keeps the
   stored values in insertion order, so table dumps and tests iterate
   deterministically. *)

module Term = Ace_term.Term
module Symbol = Ace_term.Symbol

type token =
  | Tatom of Symbol.t
  | Tint of int
  | Tstruct of Symbol.t * int
  | Tvar of int

module Tok = struct
  type t = token

  let equal a b =
    match a, b with
    | Tatom x, Tatom y -> Symbol.equal x y
    | Tint x, Tint y -> x = y
    | Tstruct (x, n), Tstruct (y, m) -> Symbol.equal x y && n = m
    | Tvar x, Tvar y -> x = y
    | (Tatom _ | Tint _ | Tstruct _ | Tvar _), _ -> false

  let hash = function
    | Tatom s -> (Symbol.id s lsl 2) lor 0
    | Tint n -> (n lsl 2) lor 1
    | Tstruct (s, n) -> (((Symbol.id s lsl 5) lxor n) lsl 2) lor 2
    | Tvar n -> (n lsl 2) lor 3
end

module TokTbl = Hashtbl.Make (Tok)

let tokens t =
  let vars = Hashtbl.create 8 in
  let next = ref 0 in
  let acc = ref [] in
  let rec go t =
    match Term.deref t with
    | Term.Atom s -> acc := Tatom s :: !acc
    | Term.Int n -> acc := Tint n :: !acc
    | Term.Var v -> (
      match Hashtbl.find_opt vars v.Term.vid with
      | Some n -> acc := Tvar n :: !acc
      | None ->
        let n = !next in
        incr next;
        Hashtbl.add vars v.Term.vid n;
        acc := Tvar n :: !acc)
    | Term.Struct (f, args) ->
      acc := Tstruct (f, Array.length args) :: !acc;
      Array.iter go args
  in
  go t;
  List.rev !acc

let hash toks =
  List.fold_left (fun h tok -> (h * 31) + Tok.hash tok) 5381 toks

type 'a node = {
  mutable value : 'a option;
  children : 'a node TokTbl.t;
}

type 'a t = {
  root : 'a node;
  mutable vals_rev : 'a list;  (* stored values, newest first *)
  mutable count : int;
}

let node () = { value = None; children = TokTbl.create 4 }

let create () = { root = node (); vals_rev = []; count = 0 }

let rec descend n = function
  | [] -> Some n
  | tok :: rest -> (
    match TokTbl.find_opt n.children tok with
    | None -> None
    | Some child -> descend child rest)

let find t key =
  match descend t.root key with None -> None | Some n -> n.value

(* Walks [key] creating missing nodes, returns the final node. *)
let rec force n = function
  | [] -> n
  | tok :: rest ->
    let child =
      match TokTbl.find_opt n.children tok with
      | Some c -> c
      | None ->
        let c = node () in
        TokTbl.add n.children tok c;
        c
    in
    force child rest

let add t key v =
  let n = force t.root key in
  (match n.value with
  | None ->
    t.vals_rev <- v :: t.vals_rev;
    t.count <- t.count + 1
  | Some _ -> ());
  n.value <- Some v

let insert_new t key v =
  let n = force t.root key in
  match n.value with
  | Some _ -> false
  | None ->
    n.value <- Some v;
    t.vals_rev <- v :: t.vals_rev;
    t.count <- t.count + 1;
    true

let iter f t = List.iter f (List.rev t.vals_rev)

let cardinal t = t.count
