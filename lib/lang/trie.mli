(** Term tries keyed on alpha-canonical flattened terms.

    The tabling subsystem ({!Table}) needs two lookups that ordinary
    structural hashing cannot provide: *variant detection* (two calls
    that are equal up to variable renaming must share one subgoal table)
    and *answer dedup* (an answer already in a table must not be
    inserted again).  Both reduce to exact lookup on the preorder
    flattening of a term with variables numbered in first-occurrence
    order — the classic subgoal/answer-trie encoding of SLG engines. *)

(** One cell of the preorder flattening.  [Tvar n] is the [n]-th
    distinct variable of the term (first-occurrence numbering), so any
    two alpha-equivalent terms flatten to the same token list. *)
type token =
  | Tatom of Ace_term.Symbol.t
  | Tint of int
  | Tstruct of Ace_term.Symbol.t * int  (** functor, arity *)
  | Tvar of int

(** Alpha-canonical preorder flattening (dereferences as it walks). *)
val tokens : Ace_term.Term.t -> token list

(** Hash of a token list (used by {!Table} to pick a shard).  Depends
    only on the tokens, so alpha-equivalent terms land in the same
    shard. *)
val hash : token list -> int

(** A trie from token lists to values.  Not synchronized: {!Table} holds
    a lock per shard for the hardware engine and skips it for the
    single-threaded simulated engines. *)
type 'a t

val create : unit -> 'a t

val find : 'a t -> token list -> 'a option

(** [add t key v] stores [v] at [key]; any previous value is
    replaced. *)
val add : 'a t -> token list -> 'a -> unit

(** [insert_new t key v] is [true] (and stores [v]) when [key] was
    absent — the answer-trie "insert if new" primitive. *)
val insert_new : 'a t -> token list -> 'a -> bool

(** Values in insertion order. *)
val iter : ('a -> unit) -> 'a t -> unit

val cardinal : 'a t -> int
