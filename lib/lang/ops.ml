(* The operator table.  This is the parsing-side twin of the printing table
   in [Ace_term.Pp]; the round-trip property test keeps them consistent.
   Lookups are by interned symbol — the parser interns each atom token once
   and reuses the symbol for both the operator probe and the term it
   builds. *)

module Symbol = Ace_term.Symbol

type assoc = Xfx | Xfy | Yfx

type infix = { prio : int; assoc : assoc }

let infix_table : (int, infix) Hashtbl.t = Hashtbl.create 64

let prefix_table : (int, int * bool) Hashtbl.t = Hashtbl.create 16
(* bool: argument must have strictly smaller priority (fy = false) *)

let declare_infix name prio assoc =
  Hashtbl.replace infix_table (Symbol.id (Symbol.intern name)) { prio; assoc }

let declare_prefix ?(strict = true) name prio =
  Hashtbl.replace prefix_table (Symbol.id (Symbol.intern name)) (prio, strict)

let () =
  List.iter
    (fun (name, prio, assoc) -> declare_infix name prio assoc)
    [ (":-", 1200, Xfx);
      ("-->", 1200, Xfx);
      (";", 1100, Xfy);
      ("->", 1050, Xfy);
      (",", 1000, Xfy);
      ("&", 950, Xfy);
      ("=", 700, Xfx);
      ("\\=", 700, Xfx);
      ("==", 700, Xfx);
      ("\\==", 700, Xfx);
      ("is", 700, Xfx);
      ("<", 700, Xfx);
      (">", 700, Xfx);
      ("=<", 700, Xfx);
      (">=", 700, Xfx);
      ("=:=", 700, Xfx);
      ("=\\=", 700, Xfx);
      ("@<", 700, Xfx);
      ("@>", 700, Xfx);
      ("@=<", 700, Xfx);
      ("@>=", 700, Xfx);
      ("=..", 700, Xfx);
      ("+", 500, Yfx);
      ("-", 500, Yfx);
      ("/\\", 500, Yfx);
      ("\\/", 500, Yfx);
      ("xor", 500, Yfx);
      ("*", 400, Yfx);
      ("/", 400, Yfx);
      ("//", 400, Yfx);
      ("mod", 400, Yfx);
      ("rem", 400, Yfx);
      ("div", 400, Yfx);
      (">>", 400, Yfx);
      ("<<", 400, Yfx);
      ("^", 200, Xfy) ];
  List.iter
    (fun (name, prio) -> declare_prefix ~strict:false name prio)
    [ (":-", 1200); ("?-", 1200) ];
  declare_prefix "\\+" 900 ~strict:false;
  declare_prefix "-" 200 ~strict:true;
  declare_prefix "+" 200 ~strict:true

let infix s = Hashtbl.find_opt infix_table (Symbol.id s)

let prefix s = Hashtbl.find_opt prefix_table (Symbol.id s)

let is_operator s =
  Hashtbl.mem infix_table (Symbol.id s) || Hashtbl.mem prefix_table (Symbol.id s)
