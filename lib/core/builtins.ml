(* Deterministic builtin predicates, shared by all engines.

   Control constructs (cut, negation, if-then-else, disjunction) are engine
   business and are not here.  Each builtin either succeeds (possibly
   binding variables through the caller's trail), fails, or reports that the
   call is not a builtin at all.

   Dispatch is a single integer-keyed hash lookup: the key packs the
   goal's interned functor id with its arity (all builtins have arity
   <= 3, so two bits suffice).  No string is touched on the call path —
   the giant string-match this replaces compared the functor name
   character by character on every goal. *)

module Term = Ace_term.Term
module Symbol = Ace_term.Symbol
module Trail = Ace_term.Trail
module Unify = Ace_term.Unify
module Arith = Ace_term.Arith

type outcome =
  | Ok
  | Fail
  | Not_builtin

type ctx = {
  trail : Trail.t;
  steps : int ref;      (* unification steps performed, for cost charging *)
  arith_nodes : int ref;(* arithmetic nodes evaluated *)
  output : Buffer.t option; (* destination of write/1, nl/0; None = stdout *)
}

let make_ctx ?output ~trail () = { trail; steps = ref 0; arith_nodes = ref 0; output }

let names =
  [ ("true", 0); ("fail", 0); ("false", 0);
    ("=", 2); ("\\=", 2); ("==", 2); ("\\==", 2);
    ("@<", 2); ("@>", 2); ("@=<", 2); ("@>=", 2);
    ("compare", 3);
    ("is", 2); ("<", 2); (">", 2); ("=<", 2); (">=", 2); ("=:=", 2); ("=\\=", 2);
    ("var", 1); ("nonvar", 1); ("atom", 1); ("number", 1); ("integer", 1);
    ("atomic", 1); ("compound", 1); ("callable", 1); ("is_list", 1); ("ground", 1);
    ("functor", 3); ("arg", 3); ("=..", 2);
    ("write", 1); ("print", 1); ("nl", 0); ("write_canonical", 1);
    ("halt", 0) ]

let is_builtin name arity = List.mem (name, arity) names

let arith ctx t =
  ctx.arith_nodes := !(ctx.arith_nodes) + Term.size t;
  Arith.eval t

let bool_outcome b = if b then Ok else Fail

let emit ctx s =
  match ctx.output with
  | Some buf -> Buffer.add_string buf s
  | None -> print_string s

let univ ctx a b =
  (* X =.. [f, Args...] in both directions *)
  match Term.deref a with
  | Term.Var _ -> (
    match Term.to_list b with
    | Some (f :: args) -> (
      match Term.deref f, args with
      | Term.Atom sym, args ->
        bool_outcome
          (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps a
             (Term.struct_sym sym (Array.of_list args)))
      | Term.Int _, [] ->
        bool_outcome (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps a f)
      | _ -> Errors.error "=../2: invalid functor list")
    | Some [] -> Errors.error "=../2: empty list"
    | None -> Errors.error "=../2: unbound arguments")
  | Term.Atom sym ->
    bool_outcome
      (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps b
         (Term.of_list [ Term.Atom sym ]))
  | Term.Int n ->
    bool_outcome
      (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps b
         (Term.of_list [ Term.Int n ]))
  | Term.Struct (sym, args) ->
    bool_outcome
      (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps b
         (Term.of_list (Term.Atom sym :: Array.to_list args)))

let fa = Symbol.intern "fa"

let functor3 ctx t f a =
  match Term.deref t with
  | Term.Var _ -> (
    match Term.deref f, Term.deref a with
    | f', Term.Int 0 ->
      bool_outcome (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps t f')
    | Term.Atom sym, Term.Int n when n > 0 ->
      let args = Array.init n (fun _ -> Term.var ()) in
      bool_outcome
        (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps t
           (Term.Struct (sym, args)))
    | _ -> Errors.error "functor/3: insufficiently instantiated"
  )
  | Term.Atom sym ->
    bool_outcome
      (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps
         (Term.Struct (fa, [| f; a |]))
         (Term.Struct (fa, [| Term.Atom sym; Term.Int 0 |])))
  | Term.Int n ->
    bool_outcome
      (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps
         (Term.Struct (fa, [| f; a |]))
         (Term.Struct (fa, [| Term.Int n; Term.Int 0 |])))
  | Term.Struct (sym, args) ->
    bool_outcome
      (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps
         (Term.Struct (fa, [| f; a |]))
         (Term.Struct (fa, [| Term.Atom sym; Term.Int (Array.length args) |])))

let arg3 ctx n t a =
  match Term.deref n, Term.deref t with
  | Term.Int i, Term.Struct (_, args) ->
    if i >= 1 && i <= Array.length args then
      bool_outcome
        (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps a args.(i - 1))
    else Fail
  | _ -> Errors.error "arg/3: insufficiently instantiated"

(* ------------------------------------------------------------------ *)
(* Dispatch table                                                      *)
(* ------------------------------------------------------------------ *)

(* Key: functor id shifted past a 2-bit arity field (all builtins have
   arity <= 3). *)
let key_of id arity = (id lsl 2) lor arity

type impl = ctx -> Term.t array -> outcome

let dispatch : (int, impl) Hashtbl.t = Hashtbl.create 64

let def name arity (f : impl) =
  Hashtbl.replace dispatch (key_of (Symbol.id (Symbol.intern name)) arity) f

let unify2 ctx a b =
  bool_outcome (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps a b)

let sym_lt = Symbol.intern "<"
let sym_gt = Symbol.intern ">"
let sym_eq = Symbol.intern "="

let def_type_check name (p : Term.t -> bool) =
  def name 1 (fun _ctx args -> bool_outcome (p (Term.deref args.(0))))

let def_arith_cmp name =
  let op = Symbol.intern name in
  def name 2 (fun ctx args ->
      bool_outcome (Arith.compare_op op (arith ctx args.(0)) (arith ctx args.(1))))

let () =
  def "true" 0 (fun _ _ -> Ok);
  def "fail" 0 (fun _ _ -> Fail);
  def "false" 0 (fun _ _ -> Fail);
  def "nl" 0 (fun ctx _ ->
      emit ctx "\n";
      Ok);
  def "halt" 0 (fun _ _ -> Errors.error "halt/0: not allowed in embedded engine");
  def "=" 2 (fun ctx args -> unify2 ctx args.(0) args.(1));
  def "\\=" 2 (fun ctx args ->
      let mark = Trail.mark ctx.trail in
      let unified =
        Unify.unify ~trail:ctx.trail ~steps:ctx.steps args.(0) args.(1)
      in
      ignore (Trail.undo_to ctx.trail mark);
      bool_outcome (not unified));
  def "==" 2 (fun _ args -> bool_outcome (Term.equal args.(0) args.(1)));
  def "\\==" 2 (fun _ args -> bool_outcome (not (Term.equal args.(0) args.(1))));
  def "@<" 2 (fun _ args -> bool_outcome (Term.compare args.(0) args.(1) < 0));
  def "@>" 2 (fun _ args -> bool_outcome (Term.compare args.(0) args.(1) > 0));
  def "@=<" 2 (fun _ args -> bool_outcome (Term.compare args.(0) args.(1) <= 0));
  def "@>=" 2 (fun _ args -> bool_outcome (Term.compare args.(0) args.(1) >= 0));
  def "compare" 3 (fun ctx args ->
      let c = Term.compare args.(1) args.(2) in
      let sym = if c < 0 then sym_lt else if c > 0 then sym_gt else sym_eq in
      unify2 ctx args.(0) (Term.Atom sym));
  def "is" 2 (fun ctx args ->
      let n = arith ctx args.(1) in
      unify2 ctx args.(0) (Term.Int n));
  List.iter def_arith_cmp [ "<"; ">"; "=<"; ">="; "=:="; "=\\=" ];
  def_type_check "var" (function Term.Var _ -> true | _ -> false);
  def_type_check "nonvar" (function Term.Var _ -> false | _ -> true);
  def_type_check "atom" (function Term.Atom _ -> true | _ -> false);
  def_type_check "number" (function Term.Int _ -> true | _ -> false);
  def_type_check "integer" (function Term.Int _ -> true | _ -> false);
  def_type_check "atomic" (function
    | Term.Atom _ | Term.Int _ -> true
    | _ -> false);
  def_type_check "compound" (function Term.Struct _ -> true | _ -> false);
  def_type_check "callable" (function
    | Term.Atom _ | Term.Struct _ -> true
    | _ -> false);
  def_type_check "is_list" (fun t -> Term.to_list t <> None);
  def_type_check "ground" Term.is_ground;
  def "functor" 3 (fun ctx args -> functor3 ctx args.(0) args.(1) args.(2));
  def "arg" 3 (fun ctx args -> arg3 ctx args.(0) args.(1) args.(2));
  def "=.." 2 (fun ctx args -> univ ctx args.(0) args.(1));
  let write ctx args =
    emit ctx (Ace_term.Pp.to_string args.(0));
    Ok
  in
  def "write" 1 write;
  def "print" 1 write;
  def "write_canonical" 1 write

let no_args = [||]

(* Executes a builtin call; [Not_builtin] lets the engine fall back to the
   clause database. *)
let rec call ctx goal =
  try call_unchecked ctx goal
  with Arith.Error msg ->
    raise
      (Arith.Error
         (Format.asprintf "%s in %a" msg Ace_term.Pp.pp (Term.deref goal)))

and call_unchecked ctx goal =
  match Term.deref goal with
  | Term.Atom s -> (
    match Hashtbl.find_opt dispatch (key_of (Symbol.id s) 0) with
    | Some f -> f ctx no_args
    | None -> Not_builtin)
  | Term.Struct (s, args) when Array.length args <= 3 -> (
    match Hashtbl.find_opt dispatch (key_of (Symbol.id s) (Array.length args)) with
    | Some f -> f ctx args
    | None -> Not_builtin)
  | Term.Struct _ -> Not_builtin
  | Term.Int _ -> Errors.error "callable expected, got integer"
  | Term.Var _ -> Errors.error "unbound goal"

(* Register-file entry point for the compiled body path: the goal's
   arguments arrive spread in [args]'s first [arity] cells (the array
   may be longer — it is the caller's shared register file, passed
   through without copying; every implementation indexes only within its
   arity).  The goal term for the arithmetic error message is built only
   on the error path. *)
let call_args ctx sym arity (args : Term.t array) =
  if arity > 3 then Not_builtin
  else
    match Hashtbl.find_opt dispatch (key_of (Symbol.id sym) arity) with
    | None -> Not_builtin
    | Some f -> (
      try f ctx args
      with Arith.Error msg ->
        let goal =
          if arity = 0 then Term.Atom sym
          else Term.Struct (sym, Array.sub args 0 arity)
        in
        raise
          (Arith.Error (Format.asprintf "%s in %a" msg Ace_term.Pp.pp goal)))

(* ------------------------------------------------------------------ *)
(* Arithmetic over compiled put descriptors                            *)
(* ------------------------------------------------------------------ *)

module Code = Ace_lang.Code

exception Non_arith

(* Evaluates a compiled body step's put tree against the frame without
   building the expression term; node counting matches [arith] on the
   built term.  [Non_arith] aborts to the generic register path, which
   rebuilds the term and reproduces the exact error behavior for
   non-arithmetic shapes (unbound operands, unknown operators). *)
let rec eval_put ctx frame (p : Code.put) =
  match p with
  | Code.P_const t -> arith ctx t
  | Code.P_val slot -> arith ctx frame.(slot)
  | Code.P_struct (op, [| x |]) -> (
    match Arith.unary_op op with
    | Some f ->
      ctx.arith_nodes := !(ctx.arith_nodes) + 1;
      f (eval_put ctx frame x)
    | None -> raise Non_arith)
  | Code.P_struct (op, [| x; y |]) -> (
    match Arith.binary_op op with
    | Some f ->
      ctx.arith_nodes := !(ctx.arith_nodes) + 1;
      let x = eval_put ctx frame x in
      f x (eval_put ctx frame y)
    | None -> raise Non_arith)
  | Code.P_struct _ | Code.P_fresh _ | Code.P_void -> raise Non_arith

let sym_is = Symbol.intern "is"

(* The generic path's error message prints the goal term; rebuild it
   from the puts on this cold path so the two are indistinguishable. *)
let rebuilt_error frame (puts : Code.put array) sym msg =
  let goal = Term.Struct (sym, Array.map (Code.build_put frame) puts) in
  raise (Arith.Error (Format.asprintf "%s in %a" msg Ace_term.Pp.pp goal))

(* [is/2] and the arithmetic comparisons straight off a compiled body
   step's put descriptors: [Some outcome] when evaluated without
   materializing the expression, [None] to fall back to the register
   path.  A first-occurrence result variable stores its integer into
   the frame slot directly — the slot is invisible to the caller until
   read, so no fresh variable and no trail entry are needed (deeper
   backtracking discards the whole frame). *)
let call_put_args ctx (frame : Term.t array) (puts : Code.put array) sym arity =
  if arity <> 2 then None
  else if Symbol.equal sym sym_is then (
    match try Some (eval_put ctx frame puts.(1)) with Non_arith -> None with
    | exception Arith.Error msg -> rebuilt_error frame puts sym msg
    | None -> None
    | Some n -> (
      match puts.(0) with
      | Code.P_fresh slot ->
        frame.(slot) <- Term.Int n;
        Some Ok
      | Code.P_void -> Some Ok
      | lhs -> Some (unify2 ctx (Code.build_put frame lhs) (Term.Int n))))
  else
    match Arith.comparison_op sym with
    | None -> None
    | Some f -> (
      match
        (* operand order mirrors the generic call's right-to-left
           argument evaluation, so error precedence is unchanged *)
        try
          let y = eval_put ctx frame puts.(1) in
          let x = eval_put ctx frame puts.(0) in
          Some (x, y)
        with Non_arith -> None
      with
      | exception Arith.Error msg -> rebuilt_error frame puts sym msg
      | None -> None
      | Some (x, y) -> Some (bool_outcome (f x y)))

(* Tell the clause compiler what a builtin is, so body goals classify
   identically here and there (the compiler library sits below this
   table and cannot ask it directly). *)
let () =
  Ace_lang.Code.builtin_hook :=
    fun s arity ->
      arity <= 3 && Hashtbl.mem dispatch (key_of (Symbol.id s) arity)
