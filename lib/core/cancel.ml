(* Cooperative cancellation tokens: one atomic flag, an optional
   wall-clock deadline, an optional poll budget.  See cancel.mli.

   The poll counter is a plain mutable field on purpose: under the
   multi-domain engine concurrent polls may lose increments, but the
   counter only decimates deadline clock reads (any domain's ticks keep
   the clock checked often enough) and the poll-budget tokens are a
   single-domain test device.  The fired state itself is atomic. *)

type reason = Requested | Deadline | Budget

exception Cancelled

type t = {
  flag : bool Atomic.t; (* the one word every chokepoint loads *)
  why : int Atomic.t; (* 0 = live, else reason code; first writer wins *)
  deadline : float; (* absolute [Unix.gettimeofday]; [infinity] = none *)
  budget : int; (* fire on this poll count; [max_int] = none *)
  mutable polls : int;
}

let code_of_reason = function Requested -> 1 | Deadline -> 2 | Budget -> 3

let reason_of_code = function
  | 1 -> Requested
  | 2 -> Deadline
  | _ -> Budget

let reason_to_string = function
  | Requested -> "requested"
  | Deadline -> "deadline"
  | Budget -> "budget"

let make ~deadline ~budget =
  {
    flag = Atomic.make false;
    why = Atomic.make 0;
    deadline;
    budget;
    polls = 0;
  }

let none = make ~deadline:infinity ~budget:max_int

let create ?deadline_ms () =
  let deadline =
    match deadline_ms with
    | None -> infinity
    | Some ms -> Unix.gettimeofday () +. (float_of_int ms /. 1000.)
  in
  make ~deadline ~budget:max_int

let at_polls n = make ~deadline:infinity ~budget:(max n 1)

let fire t reason =
  if t != none then begin
    (* first reason wins; the flag is set after so [fired] never returns
       [None] for a token whose flag reads true *)
    ignore (Atomic.compare_and_set t.why 0 (code_of_reason reason));
    Atomic.set t.flag true
  end

let cancel t = fire t Requested

let fired t =
  match Atomic.get t.why with 0 -> None | c -> Some (reason_of_code c)

(* How many polls between wall-clock reads.  Chokepoints fire every few
   hundred nanoseconds of engine work, so 16 keeps deadline overshoot in
   the microseconds while keeping [gettimeofday] off the hot path. *)
let clock_stride = 16

let poll t =
  t != none
  && (Atomic.get t.flag
     ||
     let n = t.polls + 1 in
     t.polls <- n;
     if n >= t.budget then begin
       fire t Budget;
       true
     end
     else if
       t.deadline < infinity
       && n land (clock_stride - 1) = 0
       && Unix.gettimeofday () >= t.deadline
     then begin
       fire t Deadline;
       true
     end
     else false)

let check t = if poll t then raise Cancelled
