(** Deterministic builtin predicates shared by the engines.  Control
    constructs (cut, [\+], [;], [->]) are handled by each engine, not
    here. *)

type outcome =
  | Ok
  | Fail
  | Not_builtin

type ctx = {
  trail : Ace_term.Trail.t;
  steps : int ref;        (** unification steps, reset/read by the engine *)
  arith_nodes : int ref;  (** arithmetic nodes evaluated *)
  output : Buffer.t option;
}

val make_ctx : ?output:Buffer.t -> trail:Ace_term.Trail.t -> unit -> ctx

val is_builtin : string -> int -> bool

(** Runs [goal] if it is a builtin.  May bind variables (trailed); raises
    {!Errors.Engine_error} on type errors. *)
val call : ctx -> Ace_term.Term.t -> outcome

(** Runs the builtin [sym/arity] with its arguments spread in a register
    file (which may be longer than [arity] — no goal term, no copy).
    [Not_builtin] when no such builtin is registered, which on the
    compiled path only happens under seeded code mutation. *)
val call_args :
  ctx -> Ace_term.Symbol.t -> int -> Ace_term.Term.t array -> outcome

(** [is/2] and the arithmetic comparisons evaluated directly over a
    compiled body step's put descriptors against the frame — no
    expression term is materialized.  [Some outcome] when handled;
    [None] means the caller must load the registers and go through
    {!call_args} (non-arithmetic shapes keep the generic error
    behavior). *)
val call_put_args :
  ctx ->
  Ace_term.Term.t array ->
  Ace_lang.Code.put array ->
  Ace_term.Symbol.t ->
  int ->
  outcome option
