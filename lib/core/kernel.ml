(* The shared solver kernel: goal classification, builtin dispatch,
   clause selection, trail discipline and the schema-optimization
   decisions, factored out of the four engines.  See kernel.mli for the
   architecture notes. *)

module Term = Ace_term.Term
module Symbol = Ace_term.Symbol
module Trail = Ace_term.Trail
module Unify = Ace_term.Unify
module Clause = Ace_lang.Clause
module Code = Ace_lang.Code
module Database = Ace_lang.Database
module Cost = Ace_machine.Cost
module Stats = Ace_machine.Stats
module Config = Ace_machine.Config
module Prof = Ace_obs.Prof
module Trace = Ace_obs.Trace
module Table = Ace_lang.Table

module type SCHEDULER = sig
  type t

  val name : string
  val cost : t -> Cost.t
  val stats : t -> Stats.t
  val charge : t -> int -> unit
  val scratch : t -> Code.scratch
  val prof : t -> Prof.shard
  val record : t -> Trace.kind -> int -> unit

  val cancel : t -> Cancel.t
  (* the run's cancellation token ({!Cancel.none} when the caller set no
     deadline); the kernel polls it inside the tabling mini-solver, whose
     fixpoint rounds never pass through an engine chokepoint *)
end

type cls =
  | Cut
  | Conj of Term.t
  | Amp of Term.t
  | Disj of Term.t * Term.t
  | Ite of Term.t * Term.t * Term.t
  | Naf of Term.t
  | Meta of Term.t
  | Sentinel of Term.t
  | Goal of Term.t

let classify g =
  match Term.deref g with
  | Term.Atom s when Symbol.equal s Symbol.cut -> Cut
  | Term.Struct (s, [| _; _ |]) as g' when Symbol.equal s Symbol.comma ->
    Conj g'
  | Term.Struct (s, [| _; _ |]) as g' when Symbol.equal s Symbol.amp -> Amp g'
  | Term.Struct (s, [| cond_then; else_ |]) when Symbol.equal s Symbol.semicolon
    -> (
    match Term.deref cond_then with
    | Term.Struct (s', [| cond; then_ |]) when Symbol.equal s' Symbol.arrow ->
      Ite (cond, then_, else_)
    | l -> Disj (l, else_))
  | Term.Struct (s, [| cond; then_ |]) when Symbol.equal s Symbol.arrow ->
    Ite (cond, then_, Term.Atom Symbol.fail)
  | Term.Struct (s, [| g' |]) when Symbol.equal s Symbol.naf -> Naf g'
  | Term.Struct (s, [| g' |]) when Symbol.equal s Symbol.call -> Meta g'
  | Term.Struct (s, [| g' |]) when Symbol.equal s Symbol.solution ->
    Sentinel g'
  | g' -> Goal g'

(* Allocation-free test for the dominant classification: [is_plain g] is
   true exactly when {!classify} would answer [Goal g] — [g] must already
   be dereferenced.  The engines' dispatch loops test this first, so
   plain calls (user predicates and builtins, the vast majority of
   dispatches) never build a [cls] value; only control constructs pay for
   the full classification. *)
let is_plain g =
  match g with
  | Term.Atom s -> not (Symbol.equal s Symbol.cut)
  | Term.Struct (s, [| _ |]) ->
    not
      (Symbol.equal s Symbol.naf || Symbol.equal s Symbol.call
     || Symbol.equal s Symbol.solution)
  | Term.Struct (s, [| _; _ |]) ->
    not
      (Symbol.equal s Symbol.comma || Symbol.equal s Symbol.amp
     || Symbol.equal s Symbol.semicolon || Symbol.equal s Symbol.arrow)
  | _ -> true

let sentinel_body goal =
  Clause.compile_body goal
  @ [ Clause.Call (Term.Struct (Symbol.solution, [| goal |])) ]

let merge_shards shards =
  let total = Stats.create () in
  Array.iter (fun s -> Stats.merge_into ~into:total s) shards;
  total

(* What one clause try resolved to.  [R_exec] is the last-call case: the
   clause's body ran to its final user call entirely on the scratch
   frame, the callee's arguments are loaded in the scratch registers,
   and no continuation was stacked — the engine re-enters clause
   selection directly (a determinate recursion loops here in constant
   space, allocating nothing). *)
type resolved =
  | R_fail
  | R_body of Clause.body
  | R_exec of Symbol.t * int (* callee symbol, arity; args in registers *)

(* Where {!Resolver.exec_body} stopped: the next thing the engine must
   schedule.  Register-consuming cases ([Ex_call]/[Ex_exec]) have the
   callee's arguments loaded in the scratch registers. *)
type executed =
  | Ex_fail
  | Ex_done
  | Ex_call of Symbol.t * int * int * int
      (* callee, arity, pc after the call, frame slots still live *)
  | Ex_exec of Symbol.t * int (* last call: the frame is dead *)
  | Ex_goal of Term.t * int (* control construct (engine dispatch), next pc *)
  | Ex_par of Clause.body list * int (* parallel conjunction, next pc *)

let code_of_frame (xf : Clause.exec_frame) =
  match xf.Clause.xf_code with
  | Code.Compiled code -> code
  | _ -> assert false (* Exec frames are built from compiled clauses only *)

(* The continuation for resuming [xf] at [pc]: dropped entirely when the
   body is exhausted (the last-call generalization — no empty frames are
   ever stacked). *)
let exec_cont xf pc rest =
  if pc >= Array.length (code_of_frame xf).Code.c_body then rest
  else Clause.Exec { xf with Clause.xf_pc = pc } :: rest

(* Materializes a register call as an ordinary goal term — the slow
   path, taken only when clause selection leaves more than one candidate
   (the goal must outlive the scratch registers inside choice points). *)
let goal_of_regs sym arity (args : Term.t array) =
  if arity = 0 then Term.Atom sym else Term.Struct (sym, Array.sub args 0 arity)

(* Environment trimming: clears the dead suffix of a frame so the terms
   it holds become collectable.  Unsafe in general — the clears are not
   trailed — so callers must prove the frame private first (the
   sequential engine trims only when no choice point was pushed since
   clause entry; resuming at an earlier pc is then impossible). *)
let trim_env (xf : Clause.exec_frame) live =
  let env = xf.Clause.xf_env in
  for i = live to Array.length env - 1 do
    env.(i) <- Code.unset
  done

module Resolver (S : SCHEDULER) = struct
  let call_builtin s (ctx : Builtins.ctx) goal =
    let cost = S.cost s and stats = S.stats s in
    let steps0 = !(ctx.Builtins.steps)
    and arith0 = !(ctx.Builtins.arith_nodes) in
    let trail0 = Trail.size ctx.Builtins.trail in
    let outcome = Builtins.call ctx goal in
    let steps = !(ctx.Builtins.steps) - steps0 in
    let arith = !(ctx.Builtins.arith_nodes) - arith0 in
    let pushed = max 0 (Trail.size ctx.Builtins.trail - trail0) in
    S.charge s cost.Cost.builtin;
    S.charge s ((steps * cost.Cost.unify_step) + (arith * cost.Cost.arith_op));
    S.charge s (pushed * cost.Cost.trail_push);
    stats.Stats.builtin_calls <- stats.Stats.builtin_calls + 1;
    stats.Stats.unify_steps <- stats.Stats.unify_steps + steps;
    stats.Stats.trail_pushes <- stats.Stats.trail_pushes + pushed;
    let psh = S.prof s in
    (if Prof.live psh then
       match outcome with
       | Builtins.Ok -> Prof.builtin psh (Prof.key_of_term goal) ~ok:true
       | Builtins.Fail -> Prof.builtin psh (Prof.key_of_term goal) ~ok:false
       | Builtins.Not_builtin -> ());
    outcome

  let untrail s trail mark =
    let undone = Trail.undo_to trail mark in
    if undone > 0 then begin
      S.charge s (undone * (S.cost s).Cost.untrail);
      (S.stats s).Stats.untrails <- (S.stats s).Stats.untrails + undone
    end

  (* Charges one head unification against [goal]; [mark] is the trail
     position to restore on failure. *)
  let charged_unify s ~trail a b =
    let cost = S.cost s and stats = S.stats s in
    let steps = ref 0 in
    let mark = Trail.mark trail in
    let ok = Unify.unify ~trail ~steps a b in
    S.charge s (!steps * cost.Cost.unify_step);
    stats.Stats.unify_steps <- stats.Stats.unify_steps + !steps;
    let pushed = Trail.size trail - mark in
    S.charge s (pushed * cost.Cost.trail_push);
    stats.Stats.trail_pushes <- stats.Stats.trail_pushes + pushed;
    if not ok then untrail s trail mark;
    ok

  (* Charging epilogue shared by every builtin entry point: one
     [builtin] charge plus the unify steps, arithmetic nodes and trail
     pushes the call performed (counters passed as plain ints so the
     hot path allocates nothing). *)
  let builtin_epilogue s (ctx : Builtins.ctx) steps0 arith0 trail0 outcome =
    let cost = S.cost s and stats = S.stats s in
    let steps = !(ctx.Builtins.steps) - steps0 in
    let arith = !(ctx.Builtins.arith_nodes) - arith0 in
    let pushed = max 0 (Trail.size ctx.Builtins.trail - trail0) in
    S.charge s cost.Cost.builtin;
    S.charge s ((steps * cost.Cost.unify_step) + (arith * cost.Cost.arith_op));
    S.charge s (pushed * cost.Cost.trail_push);
    stats.Stats.builtin_calls <- stats.Stats.builtin_calls + 1;
    stats.Stats.unify_steps <- stats.Stats.unify_steps + steps;
    stats.Stats.trail_pushes <- stats.Stats.trail_pushes + pushed;
    outcome

  (* [call_builtin] with the goal's arguments spread in a register file
     (no goal term exists; the compiled body path). *)
  let call_builtin_args s (ctx : Builtins.ctx) sym arity args =
    let steps0 = !(ctx.Builtins.steps)
    and arith0 = !(ctx.Builtins.arith_nodes) in
    let trail0 = Trail.size ctx.Builtins.trail in
    let outcome =
      builtin_epilogue s ctx steps0 arith0 trail0
        (Builtins.call_args ctx sym arity args)
    in
    let psh = S.prof s in
    (if Prof.live psh then
       match outcome with
       | Builtins.Ok -> Prof.builtin psh (Prof.key sym arity) ~ok:true
       | Builtins.Fail -> Prof.builtin psh (Prof.key sym arity) ~ok:false
       | Builtins.Not_builtin -> ());
    outcome

  (* A compiled body step's builtin: arithmetic ([is/2], comparisons)
     evaluates the put descriptors directly against the frame — no
     expression term — and anything else loads the register file and
     dispatches through the table.  [Not_builtin] implies the generic
     path ran, so the registers are loaded. *)
  let call_builtin_step s (ctx : Builtins.ctx) sym sc frame
      (puts : Code.put array) =
    let steps0 = !(ctx.Builtins.steps)
    and arith0 = !(ctx.Builtins.arith_nodes) in
    let trail0 = Trail.size ctx.Builtins.trail in
    let arity = Array.length puts in
    let outcome =
      match Builtins.call_put_args ctx frame puts sym arity with
      | Some outcome -> outcome
      | None -> Builtins.call_args ctx sym arity (Code.load_regs sc frame puts)
    in
    let outcome = builtin_epilogue s ctx steps0 arith0 trail0 outcome in
    let psh = S.prof s in
    (if Prof.live psh then
       match outcome with
       | Builtins.Ok -> Prof.builtin psh (Prof.key sym arity) ~ok:true
       | Builtins.Fail -> Prof.builtin psh (Prof.key sym arity) ~ok:false
       | Builtins.Not_builtin -> ());
    outcome

  let try_clause s ~trail goal clause =
    S.charge s (S.cost s).Cost.clause_try;
    (S.stats s).Stats.clause_tries <- (S.stats s).Stats.clause_tries + 1;
    let head, fresh = Clause.rename_head clause in
    if charged_unify s ~trail head goal then begin
      let body = Clause.rename_body clause fresh in
      (if body = [] then
         let psh = S.prof s in
         if Prof.live psh then Prof.exit_key psh (Prof.key_of_term goal));
      R_body body
    end
    else R_fail

  (* Runs a scratch-eligible body (builtins plus at most a final
     execute) to completion against the scratch frame: nothing is
     stacked and no goal terms are built.  [R_fail] restores the trail to
     [mark] — the whole clause try failed as one unit, exactly as if the
     head had not matched (the builtins here are the determinate prefix
     of the body; running them before the engine stacks anything is
     observably equivalent and is where the choice points and
     environments die). *)
  let rec run_scratch_body s ~ctx ~trail ~mark code sc frame pc =
    let body = code.Code.c_body in
    if pc >= Array.length body then R_body []
    else begin
      let step = body.(pc) in
      let nput = Array.length step.Code.s_puts in
      let cost = S.cost s and stats = S.stats s in
      S.charge s ((nput + 1) * cost.Cost.code_instr);
      stats.Stats.code_instrs <- stats.Stats.code_instrs + nput + 1;
      match step.Code.s_op with
      | Code.O_builtin sym -> (
        match call_builtin_step s ctx sym sc frame step.Code.s_puts with
        | Builtins.Ok -> run_scratch_body s ~ctx ~trail ~mark code sc frame (pc + 1)
        | Builtins.Fail ->
          untrail s trail mark;
          R_fail
        | Builtins.Not_builtin ->
          (* seeded mutation retargeted the dispatch: hand the engine a
             goal term so it raises its ordinary existence error; the
             rest of the body escapes as an Exec over a private copy of
             the (otherwise reusable) scratch frame *)
          let rest =
            if pc + 1 >= Array.length body then []
            else
              [ Clause.Exec
                  {
                    Clause.xf_code = Code.Compiled code;
                    xf_pc = pc + 1;
                    xf_env = Array.sub frame 0 code.Code.c_nvars;
                  } ]
          in
          R_body (Clause.Call (goal_of_regs sym nput sc.Code.s_regs) :: rest))
      | Code.O_execute sym ->
        ignore (Code.load_regs sc frame step.Code.s_puts : Term.t array);
        R_exec (sym, nput)
      | Code.O_call _ | Code.O_goal _ | Code.O_par _ ->
        assert false (* excluded by [c_scratch] *)
    end

  (* The compiled counterpart of [try_clause]: runs the clause's flat
     instruction code directly against the caller's argument cells (no
     renamed head copy), charging one [code_instr] per executed
     instruction plus the embedded general-unification steps.  Trail
     discipline is identical — bindings are marked and undone here on
     failure — so the engines' choice-point machinery cannot tell the
     two apart.

     Frame policy: a [c_scratch] clause runs head and body on the
     agent's reusable scratch frame and never allocates; any other
     clause gets a heap environment (counted in [env_allocs]) that
     doubles as the instance's frame, and its body escapes as a single
     [Clause.Exec] item — the engine executes it step by step through
     [exec_body]. *)
  let try_code_args s ~ctx ~trail (args : Term.t array) clause =
    let cost = S.cost s and stats = S.stats s in
    S.charge s cost.Cost.clause_try;
    stats.Stats.clause_tries <- stats.Stats.clause_tries + 1;
    let code = Code.of_clause clause in
    let sc = S.scratch s in
    let mark = Trail.mark trail in
    let frame =
      if code.Code.c_scratch then Code.scratch_frame sc code
      else begin
        stats.Stats.env_allocs <- stats.Stats.env_allocs + 1;
        Code.frame code
      end
    in
    sc.Code.s_instrs <- 0;
    sc.Code.s_steps := 0;
    let ok = Code.run_head code ~trail ~sc frame args in
    let instrs = sc.Code.s_instrs and steps = !(sc.Code.s_steps) in
    S.charge s ((instrs * cost.Cost.code_instr) + (steps * cost.Cost.unify_step));
    stats.Stats.code_instrs <- stats.Stats.code_instrs + instrs;
    stats.Stats.unify_steps <- stats.Stats.unify_steps + steps;
    let pushed = Trail.size trail - mark in
    S.charge s (pushed * cost.Cost.trail_push);
    stats.Stats.trail_pushes <- stats.Stats.trail_pushes + pushed;
    if not ok then begin
      untrail s trail mark;
      R_fail
    end
    else if code.Code.c_scratch then begin
      let r = run_scratch_body s ~ctx ~trail ~mark code sc frame 0 in
      (match r with
      | R_body [] ->
        let psh = S.prof s in
        if Prof.live psh then
          Prof.exit_key psh (Prof.key_of_term clause.Clause.head)
      | R_fail | R_body _ | R_exec _ -> ());
      r
    end
    else
      R_body
        [ Clause.Exec
            { Clause.xf_code = clause.Clause.code; xf_pc = 0; xf_env = frame } ]

  let try_code s ~ctx ~trail goal clause =
    let args =
      match Term.deref goal with
      | Term.Struct (_, a) -> a
      | Term.Atom _ | Term.Int _ | Term.Var _ -> Code.no_args
    in
    try_code_args s ~ctx ~trail args clause

  (* One entry point for both execution modes, so each engine threads a
     single [compiled] flag instead of duplicating its resolution
     sites. *)
  let resolve s ~ctx ~compiled ~trail goal clause =
    if compiled then try_code s ~ctx ~trail goal clause
    else try_clause s ~trail goal clause

  (* Executes a compiled body from its saved pc: consecutive builtins
     run inline (the common determinate prefix), and the first step the
     kernel cannot finish by itself is decoded for the engine to
     schedule.  Charges one [code_instr] per register load plus one per
     operation.  On [Ex_fail] the trail is NOT unwound here — the engine
     backtracks to its own choice-point mark, exactly as when an
     interpreted body goal fails. *)
  let exec_body s ~ctx (xf : Clause.exec_frame) =
    let code = code_of_frame xf in
    let body = code.Code.c_body in
    let env = xf.Clause.xf_env in
    let sc = S.scratch s in
    let cost = S.cost s and stats = S.stats s in
    let rec go pc =
      if pc >= Array.length body then begin
        let psh = S.prof s in
        if Prof.live psh then Prof.exit_top psh;
        Ex_done
      end
      else begin
        let step = body.(pc) in
        let nput = Array.length step.Code.s_puts in
        S.charge s ((nput + 1) * cost.Cost.code_instr);
        stats.Stats.code_instrs <- stats.Stats.code_instrs + nput + 1;
        match step.Code.s_op with
        | Code.O_builtin sym -> (
          match call_builtin_step s ctx sym sc env step.Code.s_puts with
          | Builtins.Ok -> go (pc + 1)
          | Builtins.Fail -> Ex_fail
          | Builtins.Not_builtin ->
            (* seeded mutation only: surface as a goal so the engine
               raises its ordinary existence error *)
            Ex_goal (goal_of_regs sym nput sc.Code.s_regs, pc + 1))
        | Code.O_call (sym, live) ->
          ignore (Code.load_regs sc env step.Code.s_puts : Term.t array);
          Ex_call (sym, nput, pc + 1, live)
        | Code.O_execute sym ->
          ignore (Code.load_regs sc env step.Code.s_puts : Term.t array);
          Ex_exec (sym, nput)
        | Code.O_goal p -> Ex_goal (Code.build_put env p, pc + 1)
        | Code.O_par bodies -> Ex_par (List.map (Code.inst_bbody env) bodies, pc + 1)
      end
    in
    go xf.Clause.xf_pc

  let unify_goal s ~trail a b = charged_unify s ~trail a b

  let existence goal =
    let name, arity =
      match Term.functor_name_of goal with Some na -> na | None -> ("?", 0)
    in
    Errors.existence_error name arity

  let lookup s db goal =
    S.charge s (S.cost s).Cost.index_lookup;
    match Database.lookup db goal with
    | Some clauses -> clauses
    | None -> existence goal

  (* Mode-aware clause selection: the compiled path goes through the
     deep-indexing dispatch tree, the interpreted path through classic
     first-argument indexing. *)
  let select s ~compiled db goal =
    let clauses =
      if not compiled then lookup s db goal
      else begin
        S.charge s (S.cost s).Cost.index_lookup;
        match Database.lookup_code db goal with
        | Some clauses -> clauses
        | None -> existence goal
      end
    in
    let psh = S.prof s in
    (if Prof.live psh then begin
       let k = Prof.key_of_term goal in
       Prof.call psh k;
       if clauses = [] then Prof.fail psh k
     end);
    clauses

  (* Clause selection for a register call (compiled path only): walks
     the dispatch tree rooted at the register file, so determinate
     recursion selects its one clause without a goal term existing. *)
  let select_args s db sym arity args =
    S.charge s (S.cost s).Cost.index_lookup;
    let clauses =
      match Database.lookup_code_args db sym arity args with
      | Some clauses -> clauses
      | None -> Errors.existence_error (Symbol.name sym) arity
    in
    let psh = S.prof s in
    (if Prof.live psh then begin
       let k = Prof.key sym arity in
       Prof.call psh k;
       if clauses = [] then Prof.fail psh k
     end);
    clauses

  let unsupported _s g =
    Errors.error "control construct %s not supported inside %s"
      (Ace_term.Pp.to_string g) S.name

  (* ---------------------------------------------------------------- *)
  (* Tabling: SLG evaluation of tabled subgoals                        *)
  (*                                                                   *)
  (* A tabled call is answered from the shared answer table; when the  *)
  (* table is incomplete the calling worker evaluates the subgoal to   *)
  (* completion right here, with a private mini-solver, and only then  *)
  (* returns to the engine.  The engine consumes the finished answers  *)
  (* as pseudo-fact clauses through its ordinary choice-point/trail    *)
  (* machinery, so tabling never adds frame kinds to the engines.      *)
  (*                                                                   *)
  (* The mini-solver is an SLD interpreter in CPS over a private       *)
  (* trail, with generator frames kept on an explicit stack.  Mutual   *)
  (* recursion between tabled predicates is handled with a lowlink     *)
  (* (Tarjan-style leader) check: a frame whose evaluation consumed an *)
  (* older on-stack entry is subordinate and stays on the stack; the   *)
  (* region's oldest frame (the leader) drives naive fixpoint rounds — *)
  (* every region frame is re-passed until a round inserts no new      *)
  (* answer and every consumption of an incomplete table saw the       *)
  (* table's final answer count.  Answer sets only grow (inserts are   *)
  (* deduplicated in the shared trie), so count stability means the    *)
  (* least fixpoint was reached even when several workers evaluate the *)
  (* same region concurrently: workers never wait on each other, they  *)
  (* at worst re-derive answers the trie rejects as duplicates.        *)

  exception Cut_hit of int

  type tframe = {
    fr_entry : Table.entry;
    fr_depth : int;            (* position on the generator stack *)
    mutable fr_low : int;      (* shallowest on-stack entry consumed *)
    mutable fr_passes : int;
  }

  (* Per-fixpoint-round bookkeeping.  Rounds nest (an inner independent
     SCC completes inside an outer round), so each leader scopes its own
     record and a subordinate first pass merges its records upward. *)
  type tround = {
    mutable rc_inserts : int;
    rc_consumed : (int, Table.entry * int) Hashtbl.t;
      (* entry id -> smallest incomplete snapshot consumed this round *)
  }

  type teval = {
    tv_s : S.t;
    tv_table : Table.t;
    tv_db : Database.t;
    tv_compiled : bool;
    tv_ctx : Builtins.ctx;     (* engine ctx rebased on the private trail *)
    tv_trail : Trail.t;
    mutable tv_frames : tframe list;        (* generator stack, newest first *)
    tv_on_stack : (int, tframe) Hashtbl.t;  (* entry id -> its frame *)
    mutable tv_cur : tframe option;         (* the generator being passed *)
    mutable tv_round : tround;
    mutable tv_cuts : int;                  (* fresh cut-barrier ids *)
  }

  let fresh_round () = { rc_inserts = 0; rc_consumed = Hashtbl.create 8 }

  (* Records that a consumer read [n] answers of the incomplete [entry];
     the round is only quiescent if the smallest such snapshot equals the
     entry's final count (a smaller one means some rule evaluation missed
     answers and must be re-passed). *)
  let note_consumed rc (entry : Table.entry) n =
    match Hashtbl.find_opt rc.rc_consumed entry.Table.id with
    | Some (_, m) when m <= n -> ()
    | _ -> Hashtbl.replace rc.rc_consumed entry.Table.id (entry, n)

  (* Quiescent if nothing incomplete was consumed (the round was plain
     SLD over complete tables, hence exhaustive), or if no new answer
     was derived and every snapshot consumed was already final. *)
  let round_stable rc =
    Hashtbl.length rc.rc_consumed = 0
    || rc.rc_inserts = 0
       && Hashtbl.fold
            (fun _ ((entry : Table.entry), n) ok ->
              ok && Table.answer_count entry = n)
            rc.rc_consumed true

  (* A solution of the current generator: resolve the bindings away and
     publish into the shared answer trie (insert-if-new). *)
  let tinsert tv (entry : Table.entry) goal =
    let stats = S.stats tv.tv_s in
    match Table.insert tv.tv_table entry (Term.copy_resolved goal) with
    | Table.Inserted ->
      tv.tv_round.rc_inserts <- tv.tv_round.rc_inserts + 1;
      stats.Stats.table_answers <- stats.Stats.table_answers + 1;
      S.record tv.tv_s Trace.Table_answer entry.Table.id
    | Table.Duplicate -> ()
    | Table.Overflow ->
      Errors.error "tabled subgoal %s exceeded the answer limit %d (raise it with --table-max-answers)"
        (Ace_term.Pp.to_canonical_string entry.Table.subgoal)
        (Table.max_answers tv.tv_table)

  (* Enumerates an entry's current answers against [goal].  For an
     incomplete entry this is a consumer reading a snapshot; the size it
     saw is noted for the leader's quiescence check. *)
  let tconsume tv ~complete (entry : Table.entry) goal sk =
    let s = tv.tv_s in
    let answers = Table.answers entry in
    if not complete then
      note_consumed tv.tv_round entry (List.length answers);
    List.iter
      (fun ans ->
        let inst = if Term.is_ground ans then ans else Term.rename ans in
        let mark = Trail.mark tv.tv_trail in
        if unify_goal s ~trail:tv.tv_trail goal inst then begin
          sk ();
          untrail s tv.tv_trail mark
        end
        else untrail s tv.tv_trail mark)
      answers

  let tsuspend tv (entry : Table.entry) goal sk =
    let stats = S.stats tv.tv_s in
    stats.Stats.table_suspends <- stats.Stats.table_suspends + 1;
    S.record tv.tv_s Trace.Table_suspend entry.Table.id;
    tconsume tv ~complete:false entry goal sk

  (* The body solver: SLD resolution in CPS.  Invariant: every entry
     point returns with the private trail restored to its state at the
     call, and [sk] is invoked once per solution with the bindings in
     place.  Cut is an exception barrier: each predicate invocation (and
     each cut-opaque construct) allocates a fresh id; [!] succeeds and
     then raises to its barrier, whose handler restores the trail. *)
  let rec tsolve tv ~cut goal sk =
    let g = Term.deref goal in
    if is_plain g then tcall tv g sk
    else
      match classify g with
      | Cut ->
        sk ();
        raise (Cut_hit cut)
      | Conj g' | Amp g' -> (
        (* no parallel machinery inside a generator: '&' runs as ',' *)
        match Term.deref g' with
        | Term.Struct (_, [| a; b |]) ->
          tsolve tv ~cut a (fun () -> tsolve tv ~cut b sk)
        | _ -> assert false)
      | Disj (a, b) ->
        tsolve tv ~cut a sk;
        tsolve tv ~cut b sk
      | Ite (c, t, e) ->
        let s = tv.tv_s in
        let mark = Trail.mark tv.tv_trail in
        tv.tv_cuts <- tv.tv_cuts + 1;
        let bid = tv.tv_cuts in
        let taken = ref false in
        (try
           tsolve tv ~cut:bid c (fun () ->
               taken := true;
               raise (Cut_hit bid))
         with Cut_hit i when i = bid -> ());
        if !taken then begin
          (* committed to the condition's first solution: its bindings
             are still in place (the barrier raise skipped the undos) *)
          tsolve tv ~cut t sk;
          untrail s tv.tv_trail mark
        end
        else tsolve tv ~cut e sk
      | Naf g' ->
        let s = tv.tv_s in
        let mark = Trail.mark tv.tv_trail in
        tv.tv_cuts <- tv.tv_cuts + 1;
        let bid = tv.tv_cuts in
        let found = ref false in
        (try
           tsolve tv ~cut:bid g' (fun () ->
               found := true;
               raise (Cut_hit bid))
         with Cut_hit i when i = bid -> ());
        untrail s tv.tv_trail mark;
        if not !found then sk ()
      | Meta g' ->
        (* call/1 is cut-opaque: a fresh barrier, absorbed here *)
        tv.tv_cuts <- tv.tv_cuts + 1;
        let bid = tv.tv_cuts in
        let mark = Trail.mark tv.tv_trail in
        (try tsolve tv ~cut:bid g' sk
         with Cut_hit i when i = bid -> untrail tv.tv_s tv.tv_trail mark)
      | Sentinel _ ->
        Errors.error "solution sentinel inside a tabled generator"
      | Goal g' -> tcall tv g' sk

  and tcall tv g sk =
    let s = tv.tv_s in
    (* the generator's chokepoint: a fixpoint round over a large region
       never returns to the engine, so an abort must fire here.  The
       raise unwinds out of [table_call] before [set_complete]: the
       entry keeps its (monotone, deduplicated) partial answers and is
       simply re-evaluated by the next caller. *)
    Cancel.check (S.cancel s);
    let mark = Trail.mark tv.tv_trail in
    match call_builtin s tv.tv_ctx g with
    | Builtins.Ok ->
      sk ();
      untrail s tv.tv_trail mark
    | Builtins.Fail -> untrail s tv.tv_trail mark
    | Builtins.Not_builtin ->
      if Database.is_tabled_goal tv.tv_db g then ttabled tv g sk
      else tresolve tv g sk

  (* Plain (untabled) user predicate: ordinary clause resolution.  The
     compiled flag only steers clause selection through the dispatch
     tree; bodies are resolved interpreted, which is observationally
     equivalent and keeps the generator solver small. *)
  and tresolve tv goal sk =
    let s = tv.tv_s in
    let clauses = select s ~compiled:tv.tv_compiled tv.tv_db goal in
    tv.tv_cuts <- tv.tv_cuts + 1;
    let bid = tv.tv_cuts in
    let mark = Trail.mark tv.tv_trail in
    try
      List.iter
        (fun clause ->
          let m = Trail.mark tv.tv_trail in
          (match try_clause s ~trail:tv.tv_trail goal clause with
          | R_fail -> ()
          | R_body body -> tbody tv ~cut:bid body sk
          | R_exec _ -> assert false (* try_clause never answers R_exec *));
          untrail s tv.tv_trail m)
        clauses
    with Cut_hit i when i = bid -> untrail s tv.tv_trail mark

  and tbody tv ~cut body sk =
    match body with
    | [] -> sk ()
    | Clause.Call g :: rest -> tsolve tv ~cut g (fun () -> tbody tv ~cut rest sk)
    | Clause.Par bodies :: rest ->
      (* parallel conjunctions run sequentially inside a generator *)
      tseq tv ~cut bodies (fun () -> tbody tv ~cut rest sk)
    | Clause.Exec _ :: _ -> assert false (* interpreted bodies only *)

  and tseq tv ~cut bodies sk =
    match bodies with
    | [] -> sk ()
    | b :: rest -> tbody tv ~cut b (fun () -> tseq tv ~cut rest sk)

  (* A tabled call inside a generator. *)
  and ttabled tv g sk =
    let stats = S.stats tv.tv_s in
    let entry, created = Table.subgoal_entry tv.tv_table g in
    if created then begin
      stats.Stats.table_subgoals <- stats.Stats.table_subgoals + 1;
      S.record tv.tv_s Trace.Table_subgoal entry.Table.id
    end
    else stats.Stats.table_variant_hits <- stats.Stats.table_variant_hits + 1;
    if Table.is_complete entry then begin
      stats.Stats.table_answer_hits <- stats.Stats.table_answer_hits + 1;
      tconsume tv ~complete:true entry g sk
    end
    else
      match Hashtbl.find_opt tv.tv_on_stack entry.Table.id with
      | Some fr ->
        (* consumer of an on-stack generator: the running generator's
           region now reaches down to [fr] *)
        (match tv.tv_cur with
        | Some cur -> cur.fr_low <- min cur.fr_low fr.fr_depth
        | None -> assert false (* on-stack entries imply a running pass *));
        tsuspend tv entry g sk
      | None -> (
        teval_entry tv entry;
        if Table.is_complete entry then begin
          stats.Stats.table_answer_hits <- stats.Stats.table_answer_hits + 1;
          tconsume tv ~complete:true entry g sk
        end
        else
          (* the new entry joined an enclosing region (its lowlink
             reached below it); consume the snapshot built so far *)
          tsuspend tv entry g sk)

  (* One generator pass: a fresh instance of the subgoal resolved
     against the program, every solution published into the entry. *)
  and tpass tv fr =
    let s = tv.tv_s in
    let stats = S.stats s in
    fr.fr_passes <- fr.fr_passes + 1;
    if fr.fr_passes > 1 then begin
      stats.Stats.table_resumes <- stats.Stats.table_resumes + 1;
      S.record s Trace.Table_resume fr.fr_entry.Table.id
    end;
    let saved_cur = tv.tv_cur in
    tv.tv_cur <- Some fr;
    let goal = Term.rename fr.fr_entry.Table.subgoal in
    tresolve tv goal (fun () -> tinsert tv fr.fr_entry goal);
    tv.tv_cur <- saved_cur

  (* Evaluates a new entry: push a generator frame and run its first
     pass.  If the pass consumed an older on-stack entry the frame is
     subordinate — it stays on the stack and its bookkeeping merges into
     the enclosing round, whose leader will re-pass it.  Otherwise the
     frame leads its own region: iterate fixpoint rounds over every
     frame at or below it, then pop and complete the whole region. *)
  and teval_entry tv entry =
    let s = tv.tv_s in
    S.charge s (S.cost s).Cost.index_lookup;
    let depth =
      match tv.tv_frames with [] -> 0 | f :: _ -> f.fr_depth + 1
    in
    let fr =
      { fr_entry = entry; fr_depth = depth; fr_low = depth; fr_passes = 0 }
    in
    tv.tv_frames <- fr :: tv.tv_frames;
    Hashtbl.replace tv.tv_on_stack entry.Table.id fr;
    let saved_round = tv.tv_round in
    let rc = fresh_round () in
    tv.tv_round <- rc;
    tpass tv fr;
    if fr.fr_low < fr.fr_depth then begin
      (* subordinate: hand the bookkeeping up to the enclosing round and
         propagate the lowlink to the generator that called us *)
      tv.tv_round <- saved_round;
      saved_round.rc_inserts <- saved_round.rc_inserts + rc.rc_inserts;
      Hashtbl.iter
        (fun _ (e, n) -> note_consumed saved_round e n)
        rc.rc_consumed;
      match tv.tv_cur with
      | Some parent -> parent.fr_low <- min parent.fr_low fr.fr_low
      | None -> assert false (* a lowered lowlink implies an outer pass *)
    end
    else begin
      (* leader: fixpoint rounds over the region (frames may join it
         mid-round; they are passed on entry, within the round) *)
      while not (round_stable rc) do
        rc.rc_inserts <- 0;
        Hashtbl.reset rc.rc_consumed;
        let region =
          List.rev
            (List.filter (fun f -> f.fr_depth >= fr.fr_depth) tv.tv_frames)
        in
        List.iter (fun f -> tpass tv f) region
      done;
      tv.tv_round <- saved_round;
      (* completion, deepest frame first (the leader logs last) *)
      let rec pop () =
        match tv.tv_frames with
        | f :: rest when f.fr_depth >= fr.fr_depth ->
          tv.tv_frames <- rest;
          Hashtbl.remove tv.tv_on_stack f.fr_entry.Table.id;
          Table.set_complete tv.tv_table f.fr_entry;
          S.record s Trace.Table_complete f.fr_entry.Table.id;
          pop ()
        | _ -> ()
      in
      pop ()
    end

  (* The engine entry point.  Ensures [goal]'s table is complete —
     evaluating the subgoal synchronously when it is not — and returns
     the answers as pseudo-fact clauses, so the engine's ordinary clause
     machinery (choice points, trail, publication, profiling) enumerates
     them exactly like a predicate of facts. *)
  let table_call s ~table ~ctx ~compiled ~db goal =
    let stats = S.stats s in
    let entry, created = Table.subgoal_entry table goal in
    if created then begin
      stats.Stats.table_subgoals <- stats.Stats.table_subgoals + 1;
      S.record s Trace.Table_subgoal entry.Table.id
    end
    else stats.Stats.table_variant_hits <- stats.Stats.table_variant_hits + 1;
    if Table.is_complete entry then
      stats.Stats.table_answer_hits <- stats.Stats.table_answer_hits + 1
    else begin
      let trail = Trail.create () in
      let tv =
        {
          tv_s = s;
          tv_table = table;
          tv_db = db;
          tv_compiled = compiled;
          tv_ctx = { ctx with Builtins.trail };
          tv_trail = trail;
          tv_frames = [];
          tv_on_stack = Hashtbl.create 16;
          tv_cur = None;
          tv_round = fresh_round ();
          tv_cuts = 0;
        }
      in
      teval_entry tv entry;
      (* with no enclosing generator the entry's lowlink cannot drop
         below its depth, so it led its own region and is complete *)
      assert (Table.is_complete entry)
    end;
    match entry.Table.answer_clauses with
    | Some clauses -> clauses
    | None ->
      let clauses =
        List.map
          (fun ans ->
            let c = Clause.of_term ans in
            (* precompile before publishing the clause so concurrent
               readers never race on the mutable code slot *)
            ignore (Code.of_clause c : Code.t);
            c)
          (Table.answers entry)
      in
      entry.Table.answer_clauses <- Some clauses;
      clauses
end

(* ------------------------------------------------------------------ *)
(* Optimization-schema decisions                                       *)
(* ------------------------------------------------------------------ *)

module Schema = struct
  (* Granularity control: bounded term-size estimate of the branches —
     for list recursions this is proportional to the remaining input, so
     the top of a computation forks and the fine-grained bottom stays
     sequential. *)
  let sequentialize (config : Config.t) bodies =
    config.Config.seq_threshold > 0
    &&
    let limit = config.Config.seq_threshold in
    let goal_estimate g = Term.size_at_most g ~limit in
    let rec body_estimate budget = function
      | [] -> budget
      | Clause.Call g :: rest ->
        let budget = budget - goal_estimate g in
        if budget <= 0 then 0 else body_estimate budget rest
      | Clause.Exec _ :: rest ->
        (* a compiled continuation carries no term to measure; charge a
           token unit (parcall branches never contain these anyway) *)
        body_estimate (budget - 1) rest
      | Clause.Par inner :: rest ->
        let budget =
          List.fold_left
            (fun b body -> if b <= 0 then 0 else body_estimate b body)
            budget inner
        in
        if budget <= 0 then 0 else body_estimate budget rest
    in
    let remaining =
      List.fold_left
        (fun b body -> if b <= 0 then 0 else body_estimate b body)
        limit bodies
    in
    remaining > 0

  (* A branch that is nothing but a nested parallel conjunction brings no
     work of its own: splice its branches into the enclosing parcall. *)
  let lpco_flatten (config : Config.t) bodies =
    if not config.Config.lpco then (bodies, 0)
    else begin
      let splices = ref 0 in
      let rec flatten bodies =
        List.concat_map
          (function
            | [ Clause.Par inner ] ->
              incr splices;
              flatten inner
            | body -> [ body ])
          bodies
      in
      let flat = flatten bodies in
      (flat, !splices)
    end

  let spo_inline (config : Config.t) ~hungry = config.Config.spo && hungry = 0

  let pdo_contiguous (config : Config.t) ~last ~next =
    config.Config.pdo
    &&
    match last with
    | Some (frame, index) -> frame = fst next && index + 1 = snd next
    | None -> false

  let publish_grain (config : Config.t) ~nalts = nalts >= config.Config.grain

  let chunk_alts (config : Config.t) alts =
    let chunk = config.Config.chunk in
    if chunk <= 0 then [ alts ]
    else begin
      let rec go acc run n = function
        | [] -> List.rev (List.rev run :: acc)
        | a :: rest ->
          if n = chunk then go (List.rev run :: acc) [ a ] 1 rest
          else go acc (a :: run) (n + 1) rest
      in
      go [] [] 0 alts
    end

  let lao_refurbish (config : Config.t) ~top_exhausted =
    config.Config.lao && top_exhausted
end

(* ------------------------------------------------------------------ *)
(* State copying                                                       *)
(* ------------------------------------------------------------------ *)

module Copy = struct
  type table = (int, Term.var) Hashtbl.t

  (* Bindings resolved away, unbound variables made fresh: the receiving
     worker needs no further setup (publication snapshot). *)
  let rec snapshot_term table cells t =
    incr cells;
    match Term.deref t with
    | (Term.Atom _ | Term.Int _) as t' -> t'
    | Term.Var v -> (
      match Hashtbl.find_opt table v.Term.vid with
      | Some v' -> Term.Var v'
      | None ->
        let v' = Term.fresh_var () in
        Hashtbl.add table v.Term.vid v';
        Term.Var v')
    | Term.Struct (f, args) ->
      Term.Struct (f, Array.map (snapshot_term table cells) args)

  let rec snapshot_body table cells body =
    List.map
      (function
        | Clause.Call g -> Clause.Call (snapshot_term table cells g)
        | Clause.Exec xf ->
          (* the environment is copied cell-wise through the same table,
             so variables shared between the frame and the rest of the
             continuation stay shared in the copy *)
          Clause.Exec
            {
              xf with
              Clause.xf_env =
                Array.map (snapshot_term table cells) xf.Clause.xf_env;
            }
        | Clause.Par bodies ->
          Clause.Par (List.map (snapshot_body table cells) bodies))
      body

  (* Bound variables copied as bound variables, so the receiving trail
     can undo them independently (MUSE stack copy). *)
  let rec raw_term table cells t =
    incr cells;
    match t with
    | Term.Atom _ | Term.Int _ -> t
    | Term.Struct (f, args) ->
      Term.Struct (f, Array.map (raw_term table cells) args)
    | Term.Var v -> (
      match Hashtbl.find_opt table v.Term.vid with
      | Some v' -> Term.Var v'
      | None ->
        let v' = Term.fresh_var () in
        Hashtbl.add table v.Term.vid v';
        (match v.Term.binding with
         | Some b -> v'.Term.binding <- Some (raw_term table cells b)
         | None -> ());
        Term.Var v')

  let rec raw_items table cells items =
    List.map
      (function
        | Clause.Call g -> Clause.Call (raw_term table cells g)
        | Clause.Exec xf ->
          Clause.Exec
            {
              xf with
              Clause.xf_env = Array.map (raw_term table cells) xf.Clause.xf_env;
            }
        | Clause.Par bodies ->
          Clause.Par (List.map (raw_items table cells) bodies))
      items

  let raw_var table cells v =
    match raw_term table cells (Term.Var v) with
    | Term.Var v' -> v'
    | Term.Atom _ | Term.Int _ | Term.Struct _ -> assert false
end

(* ------------------------------------------------------------------ *)
(* And-parallel join helpers                                           *)
(* ------------------------------------------------------------------ *)

module Parcall = struct
  let partuple = Symbol.intern "$partuple"
  let parjoin = Symbol.intern "$parjoin"

  (* Free (unbound, after dereferencing) variables of one branch, in
     first-occurrence order; [seen] spans all branches so sharing is
     detected. *)
  exception Shared

  let slot_tuples bodies =
    let seen = Hashtbl.create 16 in
    let tuple body =
      let local = Hashtbl.create 16 in
      let acc = ref [] in
      let rec go t =
        match Term.deref t with
        | Term.Atom _ | Term.Int _ -> ()
        | Term.Var v ->
          if not (Hashtbl.mem local v.Term.vid) then begin
            if Hashtbl.mem seen v.Term.vid then raise Shared;
            Hashtbl.add local v.Term.vid ();
            acc := Term.Var v :: !acc
          end
        | Term.Struct (_, args) -> Array.iter go args
      in
      let rec go_body body =
        List.iter
          (function
            | Clause.Call g -> go g
            | Clause.Exec _ ->
              (* opaque compiled continuation: cannot enumerate its free
                 variables, so refuse independence (sequential fallback) *)
              raise Shared
            | Clause.Par bodies -> List.iter go_body bodies)
          body
      in
      go_body body;
      Hashtbl.iter (fun vid () -> Hashtbl.replace seen vid ()) local;
      Term.Struct (partuple, Array.of_list (List.rev !acc))
    in
    match List.map tuple bodies with
    | tuples -> Some (Array.of_list tuples)
    | exception Shared -> None

  let template tuples = Term.Struct (parjoin, Array.copy tuples)

  (* Rightmost slot varying fastest — the order sequential backtracking
     over the same conjunction would enumerate. *)
  let cross rows =
    let n = Array.length rows in
    let acc = ref [] in
    let combo = Array.make n (Term.Atom Symbol.nil) in
    let rec go i =
      if i = n then acc := Term.Struct (parjoin, Array.copy combo) :: !acc
      else
        List.iter
          (fun t ->
            combo.(i) <- t;
            go (i + 1))
          rows.(i)
    in
    if n = 0 then [ Term.Struct (parjoin, [||]) ]
    else begin
      go 0;
      List.rev !acc
    end
end
