(* The shared solver kernel: goal classification, builtin dispatch,
   clause selection, trail discipline and the schema-optimization
   decisions, factored out of the four engines.  See kernel.mli for the
   architecture notes. *)

module Term = Ace_term.Term
module Symbol = Ace_term.Symbol
module Trail = Ace_term.Trail
module Unify = Ace_term.Unify
module Clause = Ace_lang.Clause
module Code = Ace_lang.Code
module Database = Ace_lang.Database
module Cost = Ace_machine.Cost
module Stats = Ace_machine.Stats
module Config = Ace_machine.Config

module type SCHEDULER = sig
  type t

  val name : string
  val cost : t -> Cost.t
  val stats : t -> Stats.t
  val charge : t -> int -> unit
end

type cls =
  | Cut
  | Conj of Term.t
  | Amp of Term.t
  | Disj of Term.t * Term.t
  | Ite of Term.t * Term.t * Term.t
  | Naf of Term.t
  | Meta of Term.t
  | Sentinel of Term.t
  | Goal of Term.t

let classify g =
  match Term.deref g with
  | Term.Atom s when Symbol.equal s Symbol.cut -> Cut
  | Term.Struct (s, [| _; _ |]) as g' when Symbol.equal s Symbol.comma ->
    Conj g'
  | Term.Struct (s, [| _; _ |]) as g' when Symbol.equal s Symbol.amp -> Amp g'
  | Term.Struct (s, [| cond_then; else_ |]) when Symbol.equal s Symbol.semicolon
    -> (
    match Term.deref cond_then with
    | Term.Struct (s', [| cond; then_ |]) when Symbol.equal s' Symbol.arrow ->
      Ite (cond, then_, else_)
    | l -> Disj (l, else_))
  | Term.Struct (s, [| cond; then_ |]) when Symbol.equal s Symbol.arrow ->
    Ite (cond, then_, Term.Atom Symbol.fail)
  | Term.Struct (s, [| g' |]) when Symbol.equal s Symbol.naf -> Naf g'
  | Term.Struct (s, [| g' |]) when Symbol.equal s Symbol.call -> Meta g'
  | Term.Struct (s, [| g' |]) when Symbol.equal s Symbol.solution ->
    Sentinel g'
  | g' -> Goal g'

(* Allocation-free test for the dominant classification: [is_plain g] is
   true exactly when {!classify} would answer [Goal g] — [g] must already
   be dereferenced.  The engines' dispatch loops test this first, so
   plain calls (user predicates and builtins, the vast majority of
   dispatches) never build a [cls] value; only control constructs pay for
   the full classification. *)
let is_plain g =
  match g with
  | Term.Atom s -> not (Symbol.equal s Symbol.cut)
  | Term.Struct (s, [| _ |]) ->
    not
      (Symbol.equal s Symbol.naf || Symbol.equal s Symbol.call
     || Symbol.equal s Symbol.solution)
  | Term.Struct (s, [| _; _ |]) ->
    not
      (Symbol.equal s Symbol.comma || Symbol.equal s Symbol.amp
     || Symbol.equal s Symbol.semicolon || Symbol.equal s Symbol.arrow)
  | _ -> true

let sentinel_body goal =
  Clause.compile_body goal
  @ [ Clause.Call (Term.Struct (Symbol.solution, [| goal |])) ]

let merge_shards shards =
  let total = Stats.create () in
  Array.iter (fun s -> Stats.merge_into ~into:total s) shards;
  total

module Resolver (S : SCHEDULER) = struct
  let call_builtin s (ctx : Builtins.ctx) goal =
    let cost = S.cost s and stats = S.stats s in
    let steps0 = !(ctx.Builtins.steps)
    and arith0 = !(ctx.Builtins.arith_nodes) in
    let trail0 = Trail.size ctx.Builtins.trail in
    let outcome = Builtins.call ctx goal in
    let steps = !(ctx.Builtins.steps) - steps0 in
    let arith = !(ctx.Builtins.arith_nodes) - arith0 in
    let pushed = max 0 (Trail.size ctx.Builtins.trail - trail0) in
    S.charge s cost.Cost.builtin;
    S.charge s ((steps * cost.Cost.unify_step) + (arith * cost.Cost.arith_op));
    S.charge s (pushed * cost.Cost.trail_push);
    stats.Stats.builtin_calls <- stats.Stats.builtin_calls + 1;
    stats.Stats.unify_steps <- stats.Stats.unify_steps + steps;
    stats.Stats.trail_pushes <- stats.Stats.trail_pushes + pushed;
    outcome

  let untrail s trail mark =
    let undone = Trail.undo_to trail mark in
    if undone > 0 then begin
      S.charge s (undone * (S.cost s).Cost.untrail);
      (S.stats s).Stats.untrails <- (S.stats s).Stats.untrails + undone
    end

  (* Charges one head unification against [goal]; [mark] is the trail
     position to restore on failure. *)
  let charged_unify s ~trail a b =
    let cost = S.cost s and stats = S.stats s in
    let steps = ref 0 in
    let mark = Trail.mark trail in
    let ok = Unify.unify ~trail ~steps a b in
    S.charge s (!steps * cost.Cost.unify_step);
    stats.Stats.unify_steps <- stats.Stats.unify_steps + !steps;
    let pushed = Trail.size trail - mark in
    S.charge s (pushed * cost.Cost.trail_push);
    stats.Stats.trail_pushes <- stats.Stats.trail_pushes + pushed;
    if not ok then untrail s trail mark;
    ok

  let try_clause s ~trail goal clause =
    S.charge s (S.cost s).Cost.clause_try;
    (S.stats s).Stats.clause_tries <- (S.stats s).Stats.clause_tries + 1;
    let head, fresh = Clause.rename_head clause in
    if charged_unify s ~trail head goal then
      Some (Clause.rename_body clause fresh)
    else None

  (* The compiled counterpart of [try_clause]: runs the clause's flat
     instruction code directly against the goal's argument cells (no
     renamed head copy), charging one [code_instr] per executed
     instruction plus the embedded general-unification steps.  Trail
     discipline is identical — bindings are marked and undone here on
     failure — so the engines' choice-point machinery cannot tell the
     two apart. *)
  let try_code s ~trail goal clause =
    let cost = S.cost s and stats = S.stats s in
    S.charge s cost.Cost.clause_try;
    stats.Stats.clause_tries <- stats.Stats.clause_tries + 1;
    let code = Code.of_clause clause in
    let sc = Code.scratch () in
    let mark = Trail.mark trail in
    (* Scratch-critical section: the simulated engines interleave their
       workers at [S.charge] tick points on a single domain, so between
       resetting the scratch and consuming the frame ([inst_body]) no
       charge may be issued — another worker's clause try would clobber
       the shared buffer.  Everything here is pure term work. *)
    let frame = Code.scratch_frame sc code in
    let args =
      match Term.deref goal with
      | Term.Struct (_, a) -> a
      | Term.Atom _ | Term.Int _ | Term.Var _ -> Code.no_args
    in
    sc.Code.s_instrs <- 0;
    sc.Code.s_steps := 0;
    let body =
      if Code.run_head code ~trail ~sc frame args then
        Some (Code.inst_body code frame)
      else None
    in
    let instrs = sc.Code.s_instrs and steps = !(sc.Code.s_steps) in
    (* frame dead: charging (and with it simulated context switches) is
       safe again *)
    S.charge s ((instrs * cost.Cost.code_instr) + (steps * cost.Cost.unify_step));
    stats.Stats.code_instrs <- stats.Stats.code_instrs + instrs;
    stats.Stats.unify_steps <- stats.Stats.unify_steps + steps;
    let pushed = Trail.size trail - mark in
    S.charge s (pushed * cost.Cost.trail_push);
    stats.Stats.trail_pushes <- stats.Stats.trail_pushes + pushed;
    (match body with
     | Some _ -> ()
     | None -> untrail s trail mark);
    body

  (* One entry point for both execution modes, so each engine threads a
     single [compiled] flag instead of duplicating its resolution
     sites. *)
  let resolve s ~compiled ~trail goal clause =
    if compiled then try_code s ~trail goal clause
    else try_clause s ~trail goal clause

  let unify_goal s ~trail a b = charged_unify s ~trail a b

  let existence goal =
    let name, arity =
      match Term.functor_name_of goal with Some na -> na | None -> ("?", 0)
    in
    Errors.existence_error name arity

  let lookup s db goal =
    S.charge s (S.cost s).Cost.index_lookup;
    match Database.lookup db goal with
    | Some clauses -> clauses
    | None -> existence goal

  (* Mode-aware clause selection: the compiled path goes through the
     deep-indexing dispatch tree, the interpreted path through classic
     first-argument indexing. *)
  let select s ~compiled db goal =
    if not compiled then lookup s db goal
    else begin
      S.charge s (S.cost s).Cost.index_lookup;
      match Database.lookup_code db goal with
      | Some clauses -> clauses
      | None -> existence goal
    end

  let unsupported _s g =
    Errors.error "control construct %s not supported inside %s"
      (Ace_term.Pp.to_string g) S.name
end

(* ------------------------------------------------------------------ *)
(* Optimization-schema decisions                                       *)
(* ------------------------------------------------------------------ *)

module Schema = struct
  (* Granularity control: bounded term-size estimate of the branches —
     for list recursions this is proportional to the remaining input, so
     the top of a computation forks and the fine-grained bottom stays
     sequential. *)
  let sequentialize (config : Config.t) bodies =
    config.Config.seq_threshold > 0
    &&
    let limit = config.Config.seq_threshold in
    let goal_estimate g = Term.size_at_most g ~limit in
    let rec body_estimate budget = function
      | [] -> budget
      | Clause.Call g :: rest ->
        let budget = budget - goal_estimate g in
        if budget <= 0 then 0 else body_estimate budget rest
      | Clause.Par inner :: rest ->
        let budget =
          List.fold_left
            (fun b body -> if b <= 0 then 0 else body_estimate b body)
            budget inner
        in
        if budget <= 0 then 0 else body_estimate budget rest
    in
    let remaining =
      List.fold_left
        (fun b body -> if b <= 0 then 0 else body_estimate b body)
        limit bodies
    in
    remaining > 0

  (* A branch that is nothing but a nested parallel conjunction brings no
     work of its own: splice its branches into the enclosing parcall. *)
  let lpco_flatten (config : Config.t) bodies =
    if not config.Config.lpco then (bodies, 0)
    else begin
      let splices = ref 0 in
      let rec flatten bodies =
        List.concat_map
          (function
            | [ Clause.Par inner ] ->
              incr splices;
              flatten inner
            | body -> [ body ])
          bodies
      in
      let flat = flatten bodies in
      (flat, !splices)
    end

  let spo_inline (config : Config.t) ~hungry = config.Config.spo && hungry = 0

  let pdo_contiguous (config : Config.t) ~last ~next =
    config.Config.pdo
    &&
    match last with
    | Some (frame, index) -> frame = fst next && index + 1 = snd next
    | None -> false

  let publish_grain (config : Config.t) ~nalts = nalts >= config.Config.grain

  let chunk_alts (config : Config.t) alts =
    let chunk = config.Config.chunk in
    if chunk <= 0 then [ alts ]
    else begin
      let rec go acc run n = function
        | [] -> List.rev (List.rev run :: acc)
        | a :: rest ->
          if n = chunk then go (List.rev run :: acc) [ a ] 1 rest
          else go acc (a :: run) (n + 1) rest
      in
      go [] [] 0 alts
    end

  let lao_refurbish (config : Config.t) ~top_exhausted =
    config.Config.lao && top_exhausted
end

(* ------------------------------------------------------------------ *)
(* State copying                                                       *)
(* ------------------------------------------------------------------ *)

module Copy = struct
  type table = (int, Term.var) Hashtbl.t

  (* Bindings resolved away, unbound variables made fresh: the receiving
     worker needs no further setup (publication snapshot). *)
  let rec snapshot_term table cells t =
    incr cells;
    match Term.deref t with
    | (Term.Atom _ | Term.Int _) as t' -> t'
    | Term.Var v -> (
      match Hashtbl.find_opt table v.Term.vid with
      | Some v' -> Term.Var v'
      | None ->
        let v' = Term.fresh_var () in
        Hashtbl.add table v.Term.vid v';
        Term.Var v')
    | Term.Struct (f, args) ->
      Term.Struct (f, Array.map (snapshot_term table cells) args)

  let rec snapshot_body table cells body =
    List.map
      (function
        | Clause.Call g -> Clause.Call (snapshot_term table cells g)
        | Clause.Par bodies ->
          Clause.Par (List.map (snapshot_body table cells) bodies))
      body

  (* Bound variables copied as bound variables, so the receiving trail
     can undo them independently (MUSE stack copy). *)
  let rec raw_term table cells t =
    incr cells;
    match t with
    | Term.Atom _ | Term.Int _ -> t
    | Term.Struct (f, args) ->
      Term.Struct (f, Array.map (raw_term table cells) args)
    | Term.Var v -> (
      match Hashtbl.find_opt table v.Term.vid with
      | Some v' -> Term.Var v'
      | None ->
        let v' = Term.fresh_var () in
        Hashtbl.add table v.Term.vid v';
        (match v.Term.binding with
         | Some b -> v'.Term.binding <- Some (raw_term table cells b)
         | None -> ());
        Term.Var v')

  let rec raw_items table cells items =
    List.map
      (function
        | Clause.Call g -> Clause.Call (raw_term table cells g)
        | Clause.Par bodies ->
          Clause.Par (List.map (raw_items table cells) bodies))
      items

  let raw_var table cells v =
    match raw_term table cells (Term.Var v) with
    | Term.Var v' -> v'
    | Term.Atom _ | Term.Int _ | Term.Struct _ -> assert false
end

(* ------------------------------------------------------------------ *)
(* And-parallel join helpers                                           *)
(* ------------------------------------------------------------------ *)

module Parcall = struct
  let partuple = Symbol.intern "$partuple"
  let parjoin = Symbol.intern "$parjoin"

  (* Free (unbound, after dereferencing) variables of one branch, in
     first-occurrence order; [seen] spans all branches so sharing is
     detected. *)
  exception Shared

  let slot_tuples bodies =
    let seen = Hashtbl.create 16 in
    let tuple body =
      let local = Hashtbl.create 16 in
      let acc = ref [] in
      let rec go t =
        match Term.deref t with
        | Term.Atom _ | Term.Int _ -> ()
        | Term.Var v ->
          if not (Hashtbl.mem local v.Term.vid) then begin
            if Hashtbl.mem seen v.Term.vid then raise Shared;
            Hashtbl.add local v.Term.vid ();
            acc := Term.Var v :: !acc
          end
        | Term.Struct (_, args) -> Array.iter go args
      in
      let rec go_body body =
        List.iter
          (function
            | Clause.Call g -> go g
            | Clause.Par bodies -> List.iter go_body bodies)
          body
      in
      go_body body;
      Hashtbl.iter (fun vid () -> Hashtbl.replace seen vid ()) local;
      Term.Struct (partuple, Array.of_list (List.rev !acc))
    in
    match List.map tuple bodies with
    | tuples -> Some (Array.of_list tuples)
    | exception Shared -> None

  let template tuples = Term.Struct (parjoin, Array.copy tuples)

  (* Rightmost slot varying fastest — the order sequential backtracking
     over the same conjunction would enumerate. *)
  let cross rows =
    let n = Array.length rows in
    let acc = ref [] in
    let combo = Array.make n (Term.Atom Symbol.nil) in
    let rec go i =
      if i = n then acc := Term.Struct (parjoin, Array.copy combo) :: !acc
      else
        List.iter
          (fun t ->
            combo.(i) <- t;
            go (i + 1))
          rows.(i)
    in
    if n = 0 then [ Term.Struct (parjoin, [||]) ]
    else begin
      go 0;
      List.rev !acc
    end
end
