(* The shared solver kernel: goal classification, builtin dispatch,
   clause selection, trail discipline and the schema-optimization
   decisions, factored out of the four engines.  See kernel.mli for the
   architecture notes. *)

module Term = Ace_term.Term
module Symbol = Ace_term.Symbol
module Trail = Ace_term.Trail
module Unify = Ace_term.Unify
module Clause = Ace_lang.Clause
module Code = Ace_lang.Code
module Database = Ace_lang.Database
module Cost = Ace_machine.Cost
module Stats = Ace_machine.Stats
module Config = Ace_machine.Config
module Prof = Ace_obs.Prof

module type SCHEDULER = sig
  type t

  val name : string
  val cost : t -> Cost.t
  val stats : t -> Stats.t
  val charge : t -> int -> unit
  val scratch : t -> Code.scratch
  val prof : t -> Prof.shard
end

type cls =
  | Cut
  | Conj of Term.t
  | Amp of Term.t
  | Disj of Term.t * Term.t
  | Ite of Term.t * Term.t * Term.t
  | Naf of Term.t
  | Meta of Term.t
  | Sentinel of Term.t
  | Goal of Term.t

let classify g =
  match Term.deref g with
  | Term.Atom s when Symbol.equal s Symbol.cut -> Cut
  | Term.Struct (s, [| _; _ |]) as g' when Symbol.equal s Symbol.comma ->
    Conj g'
  | Term.Struct (s, [| _; _ |]) as g' when Symbol.equal s Symbol.amp -> Amp g'
  | Term.Struct (s, [| cond_then; else_ |]) when Symbol.equal s Symbol.semicolon
    -> (
    match Term.deref cond_then with
    | Term.Struct (s', [| cond; then_ |]) when Symbol.equal s' Symbol.arrow ->
      Ite (cond, then_, else_)
    | l -> Disj (l, else_))
  | Term.Struct (s, [| cond; then_ |]) when Symbol.equal s Symbol.arrow ->
    Ite (cond, then_, Term.Atom Symbol.fail)
  | Term.Struct (s, [| g' |]) when Symbol.equal s Symbol.naf -> Naf g'
  | Term.Struct (s, [| g' |]) when Symbol.equal s Symbol.call -> Meta g'
  | Term.Struct (s, [| g' |]) when Symbol.equal s Symbol.solution ->
    Sentinel g'
  | g' -> Goal g'

(* Allocation-free test for the dominant classification: [is_plain g] is
   true exactly when {!classify} would answer [Goal g] — [g] must already
   be dereferenced.  The engines' dispatch loops test this first, so
   plain calls (user predicates and builtins, the vast majority of
   dispatches) never build a [cls] value; only control constructs pay for
   the full classification. *)
let is_plain g =
  match g with
  | Term.Atom s -> not (Symbol.equal s Symbol.cut)
  | Term.Struct (s, [| _ |]) ->
    not
      (Symbol.equal s Symbol.naf || Symbol.equal s Symbol.call
     || Symbol.equal s Symbol.solution)
  | Term.Struct (s, [| _; _ |]) ->
    not
      (Symbol.equal s Symbol.comma || Symbol.equal s Symbol.amp
     || Symbol.equal s Symbol.semicolon || Symbol.equal s Symbol.arrow)
  | _ -> true

let sentinel_body goal =
  Clause.compile_body goal
  @ [ Clause.Call (Term.Struct (Symbol.solution, [| goal |])) ]

let merge_shards shards =
  let total = Stats.create () in
  Array.iter (fun s -> Stats.merge_into ~into:total s) shards;
  total

(* What one clause try resolved to.  [R_exec] is the last-call case: the
   clause's body ran to its final user call entirely on the scratch
   frame, the callee's arguments are loaded in the scratch registers,
   and no continuation was stacked — the engine re-enters clause
   selection directly (a determinate recursion loops here in constant
   space, allocating nothing). *)
type resolved =
  | R_fail
  | R_body of Clause.body
  | R_exec of Symbol.t * int (* callee symbol, arity; args in registers *)

(* Where {!Resolver.exec_body} stopped: the next thing the engine must
   schedule.  Register-consuming cases ([Ex_call]/[Ex_exec]) have the
   callee's arguments loaded in the scratch registers. *)
type executed =
  | Ex_fail
  | Ex_done
  | Ex_call of Symbol.t * int * int * int
      (* callee, arity, pc after the call, frame slots still live *)
  | Ex_exec of Symbol.t * int (* last call: the frame is dead *)
  | Ex_goal of Term.t * int (* control construct (engine dispatch), next pc *)
  | Ex_par of Clause.body list * int (* parallel conjunction, next pc *)

let code_of_frame (xf : Clause.exec_frame) =
  match xf.Clause.xf_code with
  | Code.Compiled code -> code
  | _ -> assert false (* Exec frames are built from compiled clauses only *)

(* The continuation for resuming [xf] at [pc]: dropped entirely when the
   body is exhausted (the last-call generalization — no empty frames are
   ever stacked). *)
let exec_cont xf pc rest =
  if pc >= Array.length (code_of_frame xf).Code.c_body then rest
  else Clause.Exec { xf with Clause.xf_pc = pc } :: rest

(* Materializes a register call as an ordinary goal term — the slow
   path, taken only when clause selection leaves more than one candidate
   (the goal must outlive the scratch registers inside choice points). *)
let goal_of_regs sym arity (args : Term.t array) =
  if arity = 0 then Term.Atom sym else Term.Struct (sym, Array.sub args 0 arity)

(* Environment trimming: clears the dead suffix of a frame so the terms
   it holds become collectable.  Unsafe in general — the clears are not
   trailed — so callers must prove the frame private first (the
   sequential engine trims only when no choice point was pushed since
   clause entry; resuming at an earlier pc is then impossible). *)
let trim_env (xf : Clause.exec_frame) live =
  let env = xf.Clause.xf_env in
  for i = live to Array.length env - 1 do
    env.(i) <- Code.unset
  done

module Resolver (S : SCHEDULER) = struct
  let call_builtin s (ctx : Builtins.ctx) goal =
    let cost = S.cost s and stats = S.stats s in
    let steps0 = !(ctx.Builtins.steps)
    and arith0 = !(ctx.Builtins.arith_nodes) in
    let trail0 = Trail.size ctx.Builtins.trail in
    let outcome = Builtins.call ctx goal in
    let steps = !(ctx.Builtins.steps) - steps0 in
    let arith = !(ctx.Builtins.arith_nodes) - arith0 in
    let pushed = max 0 (Trail.size ctx.Builtins.trail - trail0) in
    S.charge s cost.Cost.builtin;
    S.charge s ((steps * cost.Cost.unify_step) + (arith * cost.Cost.arith_op));
    S.charge s (pushed * cost.Cost.trail_push);
    stats.Stats.builtin_calls <- stats.Stats.builtin_calls + 1;
    stats.Stats.unify_steps <- stats.Stats.unify_steps + steps;
    stats.Stats.trail_pushes <- stats.Stats.trail_pushes + pushed;
    let psh = S.prof s in
    (if Prof.live psh then
       match outcome with
       | Builtins.Ok -> Prof.builtin psh (Prof.key_of_term goal) ~ok:true
       | Builtins.Fail -> Prof.builtin psh (Prof.key_of_term goal) ~ok:false
       | Builtins.Not_builtin -> ());
    outcome

  let untrail s trail mark =
    let undone = Trail.undo_to trail mark in
    if undone > 0 then begin
      S.charge s (undone * (S.cost s).Cost.untrail);
      (S.stats s).Stats.untrails <- (S.stats s).Stats.untrails + undone
    end

  (* Charges one head unification against [goal]; [mark] is the trail
     position to restore on failure. *)
  let charged_unify s ~trail a b =
    let cost = S.cost s and stats = S.stats s in
    let steps = ref 0 in
    let mark = Trail.mark trail in
    let ok = Unify.unify ~trail ~steps a b in
    S.charge s (!steps * cost.Cost.unify_step);
    stats.Stats.unify_steps <- stats.Stats.unify_steps + !steps;
    let pushed = Trail.size trail - mark in
    S.charge s (pushed * cost.Cost.trail_push);
    stats.Stats.trail_pushes <- stats.Stats.trail_pushes + pushed;
    if not ok then untrail s trail mark;
    ok

  (* Charging epilogue shared by every builtin entry point: one
     [builtin] charge plus the unify steps, arithmetic nodes and trail
     pushes the call performed (counters passed as plain ints so the
     hot path allocates nothing). *)
  let builtin_epilogue s (ctx : Builtins.ctx) steps0 arith0 trail0 outcome =
    let cost = S.cost s and stats = S.stats s in
    let steps = !(ctx.Builtins.steps) - steps0 in
    let arith = !(ctx.Builtins.arith_nodes) - arith0 in
    let pushed = max 0 (Trail.size ctx.Builtins.trail - trail0) in
    S.charge s cost.Cost.builtin;
    S.charge s ((steps * cost.Cost.unify_step) + (arith * cost.Cost.arith_op));
    S.charge s (pushed * cost.Cost.trail_push);
    stats.Stats.builtin_calls <- stats.Stats.builtin_calls + 1;
    stats.Stats.unify_steps <- stats.Stats.unify_steps + steps;
    stats.Stats.trail_pushes <- stats.Stats.trail_pushes + pushed;
    outcome

  (* [call_builtin] with the goal's arguments spread in a register file
     (no goal term exists; the compiled body path). *)
  let call_builtin_args s (ctx : Builtins.ctx) sym arity args =
    let steps0 = !(ctx.Builtins.steps)
    and arith0 = !(ctx.Builtins.arith_nodes) in
    let trail0 = Trail.size ctx.Builtins.trail in
    let outcome =
      builtin_epilogue s ctx steps0 arith0 trail0
        (Builtins.call_args ctx sym arity args)
    in
    let psh = S.prof s in
    (if Prof.live psh then
       match outcome with
       | Builtins.Ok -> Prof.builtin psh (Prof.key sym arity) ~ok:true
       | Builtins.Fail -> Prof.builtin psh (Prof.key sym arity) ~ok:false
       | Builtins.Not_builtin -> ());
    outcome

  (* A compiled body step's builtin: arithmetic ([is/2], comparisons)
     evaluates the put descriptors directly against the frame — no
     expression term — and anything else loads the register file and
     dispatches through the table.  [Not_builtin] implies the generic
     path ran, so the registers are loaded. *)
  let call_builtin_step s (ctx : Builtins.ctx) sym sc frame
      (puts : Code.put array) =
    let steps0 = !(ctx.Builtins.steps)
    and arith0 = !(ctx.Builtins.arith_nodes) in
    let trail0 = Trail.size ctx.Builtins.trail in
    let arity = Array.length puts in
    let outcome =
      match Builtins.call_put_args ctx frame puts sym arity with
      | Some outcome -> outcome
      | None -> Builtins.call_args ctx sym arity (Code.load_regs sc frame puts)
    in
    let outcome = builtin_epilogue s ctx steps0 arith0 trail0 outcome in
    let psh = S.prof s in
    (if Prof.live psh then
       match outcome with
       | Builtins.Ok -> Prof.builtin psh (Prof.key sym arity) ~ok:true
       | Builtins.Fail -> Prof.builtin psh (Prof.key sym arity) ~ok:false
       | Builtins.Not_builtin -> ());
    outcome

  let try_clause s ~trail goal clause =
    S.charge s (S.cost s).Cost.clause_try;
    (S.stats s).Stats.clause_tries <- (S.stats s).Stats.clause_tries + 1;
    let head, fresh = Clause.rename_head clause in
    if charged_unify s ~trail head goal then begin
      let body = Clause.rename_body clause fresh in
      (if body = [] then
         let psh = S.prof s in
         if Prof.live psh then Prof.exit_key psh (Prof.key_of_term goal));
      R_body body
    end
    else R_fail

  (* Runs a scratch-eligible body (builtins plus at most a final
     execute) to completion against the scratch frame: nothing is
     stacked and no goal terms are built.  [R_fail] restores the trail to
     [mark] — the whole clause try failed as one unit, exactly as if the
     head had not matched (the builtins here are the determinate prefix
     of the body; running them before the engine stacks anything is
     observably equivalent and is where the choice points and
     environments die). *)
  let rec run_scratch_body s ~ctx ~trail ~mark code sc frame pc =
    let body = code.Code.c_body in
    if pc >= Array.length body then R_body []
    else begin
      let step = body.(pc) in
      let nput = Array.length step.Code.s_puts in
      let cost = S.cost s and stats = S.stats s in
      S.charge s ((nput + 1) * cost.Cost.code_instr);
      stats.Stats.code_instrs <- stats.Stats.code_instrs + nput + 1;
      match step.Code.s_op with
      | Code.O_builtin sym -> (
        match call_builtin_step s ctx sym sc frame step.Code.s_puts with
        | Builtins.Ok -> run_scratch_body s ~ctx ~trail ~mark code sc frame (pc + 1)
        | Builtins.Fail ->
          untrail s trail mark;
          R_fail
        | Builtins.Not_builtin ->
          (* seeded mutation retargeted the dispatch: hand the engine a
             goal term so it raises its ordinary existence error; the
             rest of the body escapes as an Exec over a private copy of
             the (otherwise reusable) scratch frame *)
          let rest =
            if pc + 1 >= Array.length body then []
            else
              [ Clause.Exec
                  {
                    Clause.xf_code = Code.Compiled code;
                    xf_pc = pc + 1;
                    xf_env = Array.sub frame 0 code.Code.c_nvars;
                  } ]
          in
          R_body (Clause.Call (goal_of_regs sym nput sc.Code.s_regs) :: rest))
      | Code.O_execute sym ->
        ignore (Code.load_regs sc frame step.Code.s_puts : Term.t array);
        R_exec (sym, nput)
      | Code.O_call _ | Code.O_goal _ | Code.O_par _ ->
        assert false (* excluded by [c_scratch] *)
    end

  (* The compiled counterpart of [try_clause]: runs the clause's flat
     instruction code directly against the caller's argument cells (no
     renamed head copy), charging one [code_instr] per executed
     instruction plus the embedded general-unification steps.  Trail
     discipline is identical — bindings are marked and undone here on
     failure — so the engines' choice-point machinery cannot tell the
     two apart.

     Frame policy: a [c_scratch] clause runs head and body on the
     agent's reusable scratch frame and never allocates; any other
     clause gets a heap environment (counted in [env_allocs]) that
     doubles as the instance's frame, and its body escapes as a single
     [Clause.Exec] item — the engine executes it step by step through
     [exec_body]. *)
  let try_code_args s ~ctx ~trail (args : Term.t array) clause =
    let cost = S.cost s and stats = S.stats s in
    S.charge s cost.Cost.clause_try;
    stats.Stats.clause_tries <- stats.Stats.clause_tries + 1;
    let code = Code.of_clause clause in
    let sc = S.scratch s in
    let mark = Trail.mark trail in
    let frame =
      if code.Code.c_scratch then Code.scratch_frame sc code
      else begin
        stats.Stats.env_allocs <- stats.Stats.env_allocs + 1;
        Code.frame code
      end
    in
    sc.Code.s_instrs <- 0;
    sc.Code.s_steps := 0;
    let ok = Code.run_head code ~trail ~sc frame args in
    let instrs = sc.Code.s_instrs and steps = !(sc.Code.s_steps) in
    S.charge s ((instrs * cost.Cost.code_instr) + (steps * cost.Cost.unify_step));
    stats.Stats.code_instrs <- stats.Stats.code_instrs + instrs;
    stats.Stats.unify_steps <- stats.Stats.unify_steps + steps;
    let pushed = Trail.size trail - mark in
    S.charge s (pushed * cost.Cost.trail_push);
    stats.Stats.trail_pushes <- stats.Stats.trail_pushes + pushed;
    if not ok then begin
      untrail s trail mark;
      R_fail
    end
    else if code.Code.c_scratch then begin
      let r = run_scratch_body s ~ctx ~trail ~mark code sc frame 0 in
      (match r with
      | R_body [] ->
        let psh = S.prof s in
        if Prof.live psh then
          Prof.exit_key psh (Prof.key_of_term clause.Clause.head)
      | R_fail | R_body _ | R_exec _ -> ());
      r
    end
    else
      R_body
        [ Clause.Exec
            { Clause.xf_code = clause.Clause.code; xf_pc = 0; xf_env = frame } ]

  let try_code s ~ctx ~trail goal clause =
    let args =
      match Term.deref goal with
      | Term.Struct (_, a) -> a
      | Term.Atom _ | Term.Int _ | Term.Var _ -> Code.no_args
    in
    try_code_args s ~ctx ~trail args clause

  (* One entry point for both execution modes, so each engine threads a
     single [compiled] flag instead of duplicating its resolution
     sites. *)
  let resolve s ~ctx ~compiled ~trail goal clause =
    if compiled then try_code s ~ctx ~trail goal clause
    else try_clause s ~trail goal clause

  (* Executes a compiled body from its saved pc: consecutive builtins
     run inline (the common determinate prefix), and the first step the
     kernel cannot finish by itself is decoded for the engine to
     schedule.  Charges one [code_instr] per register load plus one per
     operation.  On [Ex_fail] the trail is NOT unwound here — the engine
     backtracks to its own choice-point mark, exactly as when an
     interpreted body goal fails. *)
  let exec_body s ~ctx (xf : Clause.exec_frame) =
    let code = code_of_frame xf in
    let body = code.Code.c_body in
    let env = xf.Clause.xf_env in
    let sc = S.scratch s in
    let cost = S.cost s and stats = S.stats s in
    let rec go pc =
      if pc >= Array.length body then begin
        let psh = S.prof s in
        if Prof.live psh then Prof.exit_top psh;
        Ex_done
      end
      else begin
        let step = body.(pc) in
        let nput = Array.length step.Code.s_puts in
        S.charge s ((nput + 1) * cost.Cost.code_instr);
        stats.Stats.code_instrs <- stats.Stats.code_instrs + nput + 1;
        match step.Code.s_op with
        | Code.O_builtin sym -> (
          match call_builtin_step s ctx sym sc env step.Code.s_puts with
          | Builtins.Ok -> go (pc + 1)
          | Builtins.Fail -> Ex_fail
          | Builtins.Not_builtin ->
            (* seeded mutation only: surface as a goal so the engine
               raises its ordinary existence error *)
            Ex_goal (goal_of_regs sym nput sc.Code.s_regs, pc + 1))
        | Code.O_call (sym, live) ->
          ignore (Code.load_regs sc env step.Code.s_puts : Term.t array);
          Ex_call (sym, nput, pc + 1, live)
        | Code.O_execute sym ->
          ignore (Code.load_regs sc env step.Code.s_puts : Term.t array);
          Ex_exec (sym, nput)
        | Code.O_goal p -> Ex_goal (Code.build_put env p, pc + 1)
        | Code.O_par bodies -> Ex_par (List.map (Code.inst_bbody env) bodies, pc + 1)
      end
    in
    go xf.Clause.xf_pc

  let unify_goal s ~trail a b = charged_unify s ~trail a b

  let existence goal =
    let name, arity =
      match Term.functor_name_of goal with Some na -> na | None -> ("?", 0)
    in
    Errors.existence_error name arity

  let lookup s db goal =
    S.charge s (S.cost s).Cost.index_lookup;
    match Database.lookup db goal with
    | Some clauses -> clauses
    | None -> existence goal

  (* Mode-aware clause selection: the compiled path goes through the
     deep-indexing dispatch tree, the interpreted path through classic
     first-argument indexing. *)
  let select s ~compiled db goal =
    let clauses =
      if not compiled then lookup s db goal
      else begin
        S.charge s (S.cost s).Cost.index_lookup;
        match Database.lookup_code db goal with
        | Some clauses -> clauses
        | None -> existence goal
      end
    in
    let psh = S.prof s in
    (if Prof.live psh then begin
       let k = Prof.key_of_term goal in
       Prof.call psh k;
       if clauses = [] then Prof.fail psh k
     end);
    clauses

  (* Clause selection for a register call (compiled path only): walks
     the dispatch tree rooted at the register file, so determinate
     recursion selects its one clause without a goal term existing. *)
  let select_args s db sym arity args =
    S.charge s (S.cost s).Cost.index_lookup;
    let clauses =
      match Database.lookup_code_args db sym arity args with
      | Some clauses -> clauses
      | None -> Errors.existence_error (Symbol.name sym) arity
    in
    let psh = S.prof s in
    (if Prof.live psh then begin
       let k = Prof.key sym arity in
       Prof.call psh k;
       if clauses = [] then Prof.fail psh k
     end);
    clauses

  let unsupported _s g =
    Errors.error "control construct %s not supported inside %s"
      (Ace_term.Pp.to_string g) S.name
end

(* ------------------------------------------------------------------ *)
(* Optimization-schema decisions                                       *)
(* ------------------------------------------------------------------ *)

module Schema = struct
  (* Granularity control: bounded term-size estimate of the branches —
     for list recursions this is proportional to the remaining input, so
     the top of a computation forks and the fine-grained bottom stays
     sequential. *)
  let sequentialize (config : Config.t) bodies =
    config.Config.seq_threshold > 0
    &&
    let limit = config.Config.seq_threshold in
    let goal_estimate g = Term.size_at_most g ~limit in
    let rec body_estimate budget = function
      | [] -> budget
      | Clause.Call g :: rest ->
        let budget = budget - goal_estimate g in
        if budget <= 0 then 0 else body_estimate budget rest
      | Clause.Exec _ :: rest ->
        (* a compiled continuation carries no term to measure; charge a
           token unit (parcall branches never contain these anyway) *)
        body_estimate (budget - 1) rest
      | Clause.Par inner :: rest ->
        let budget =
          List.fold_left
            (fun b body -> if b <= 0 then 0 else body_estimate b body)
            budget inner
        in
        if budget <= 0 then 0 else body_estimate budget rest
    in
    let remaining =
      List.fold_left
        (fun b body -> if b <= 0 then 0 else body_estimate b body)
        limit bodies
    in
    remaining > 0

  (* A branch that is nothing but a nested parallel conjunction brings no
     work of its own: splice its branches into the enclosing parcall. *)
  let lpco_flatten (config : Config.t) bodies =
    if not config.Config.lpco then (bodies, 0)
    else begin
      let splices = ref 0 in
      let rec flatten bodies =
        List.concat_map
          (function
            | [ Clause.Par inner ] ->
              incr splices;
              flatten inner
            | body -> [ body ])
          bodies
      in
      let flat = flatten bodies in
      (flat, !splices)
    end

  let spo_inline (config : Config.t) ~hungry = config.Config.spo && hungry = 0

  let pdo_contiguous (config : Config.t) ~last ~next =
    config.Config.pdo
    &&
    match last with
    | Some (frame, index) -> frame = fst next && index + 1 = snd next
    | None -> false

  let publish_grain (config : Config.t) ~nalts = nalts >= config.Config.grain

  let chunk_alts (config : Config.t) alts =
    let chunk = config.Config.chunk in
    if chunk <= 0 then [ alts ]
    else begin
      let rec go acc run n = function
        | [] -> List.rev (List.rev run :: acc)
        | a :: rest ->
          if n = chunk then go (List.rev run :: acc) [ a ] 1 rest
          else go acc (a :: run) (n + 1) rest
      in
      go [] [] 0 alts
    end

  let lao_refurbish (config : Config.t) ~top_exhausted =
    config.Config.lao && top_exhausted
end

(* ------------------------------------------------------------------ *)
(* State copying                                                       *)
(* ------------------------------------------------------------------ *)

module Copy = struct
  type table = (int, Term.var) Hashtbl.t

  (* Bindings resolved away, unbound variables made fresh: the receiving
     worker needs no further setup (publication snapshot). *)
  let rec snapshot_term table cells t =
    incr cells;
    match Term.deref t with
    | (Term.Atom _ | Term.Int _) as t' -> t'
    | Term.Var v -> (
      match Hashtbl.find_opt table v.Term.vid with
      | Some v' -> Term.Var v'
      | None ->
        let v' = Term.fresh_var () in
        Hashtbl.add table v.Term.vid v';
        Term.Var v')
    | Term.Struct (f, args) ->
      Term.Struct (f, Array.map (snapshot_term table cells) args)

  let rec snapshot_body table cells body =
    List.map
      (function
        | Clause.Call g -> Clause.Call (snapshot_term table cells g)
        | Clause.Exec xf ->
          (* the environment is copied cell-wise through the same table,
             so variables shared between the frame and the rest of the
             continuation stay shared in the copy *)
          Clause.Exec
            {
              xf with
              Clause.xf_env =
                Array.map (snapshot_term table cells) xf.Clause.xf_env;
            }
        | Clause.Par bodies ->
          Clause.Par (List.map (snapshot_body table cells) bodies))
      body

  (* Bound variables copied as bound variables, so the receiving trail
     can undo them independently (MUSE stack copy). *)
  let rec raw_term table cells t =
    incr cells;
    match t with
    | Term.Atom _ | Term.Int _ -> t
    | Term.Struct (f, args) ->
      Term.Struct (f, Array.map (raw_term table cells) args)
    | Term.Var v -> (
      match Hashtbl.find_opt table v.Term.vid with
      | Some v' -> Term.Var v'
      | None ->
        let v' = Term.fresh_var () in
        Hashtbl.add table v.Term.vid v';
        (match v.Term.binding with
         | Some b -> v'.Term.binding <- Some (raw_term table cells b)
         | None -> ());
        Term.Var v')

  let rec raw_items table cells items =
    List.map
      (function
        | Clause.Call g -> Clause.Call (raw_term table cells g)
        | Clause.Exec xf ->
          Clause.Exec
            {
              xf with
              Clause.xf_env = Array.map (raw_term table cells) xf.Clause.xf_env;
            }
        | Clause.Par bodies ->
          Clause.Par (List.map (raw_items table cells) bodies))
      items

  let raw_var table cells v =
    match raw_term table cells (Term.Var v) with
    | Term.Var v' -> v'
    | Term.Atom _ | Term.Int _ | Term.Struct _ -> assert false
end

(* ------------------------------------------------------------------ *)
(* And-parallel join helpers                                           *)
(* ------------------------------------------------------------------ *)

module Parcall = struct
  let partuple = Symbol.intern "$partuple"
  let parjoin = Symbol.intern "$parjoin"

  (* Free (unbound, after dereferencing) variables of one branch, in
     first-occurrence order; [seen] spans all branches so sharing is
     detected. *)
  exception Shared

  let slot_tuples bodies =
    let seen = Hashtbl.create 16 in
    let tuple body =
      let local = Hashtbl.create 16 in
      let acc = ref [] in
      let rec go t =
        match Term.deref t with
        | Term.Atom _ | Term.Int _ -> ()
        | Term.Var v ->
          if not (Hashtbl.mem local v.Term.vid) then begin
            if Hashtbl.mem seen v.Term.vid then raise Shared;
            Hashtbl.add local v.Term.vid ();
            acc := Term.Var v :: !acc
          end
        | Term.Struct (_, args) -> Array.iter go args
      in
      let rec go_body body =
        List.iter
          (function
            | Clause.Call g -> go g
            | Clause.Exec _ ->
              (* opaque compiled continuation: cannot enumerate its free
                 variables, so refuse independence (sequential fallback) *)
              raise Shared
            | Clause.Par bodies -> List.iter go_body bodies)
          body
      in
      go_body body;
      Hashtbl.iter (fun vid () -> Hashtbl.replace seen vid ()) local;
      Term.Struct (partuple, Array.of_list (List.rev !acc))
    in
    match List.map tuple bodies with
    | tuples -> Some (Array.of_list tuples)
    | exception Shared -> None

  let template tuples = Term.Struct (parjoin, Array.copy tuples)

  (* Rightmost slot varying fastest — the order sequential backtracking
     over the same conjunction would enumerate. *)
  let cross rows =
    let n = Array.length rows in
    let acc = ref [] in
    let combo = Array.make n (Term.Atom Symbol.nil) in
    let rec go i =
      if i = n then acc := Term.Struct (parjoin, Array.copy combo) :: !acc
      else
        List.iter
          (fun t ->
            combo.(i) <- t;
            go (i + 1))
          rows.(i)
    in
    if n = 0 then [ Term.Struct (parjoin, [||]) ]
    else begin
      go 0;
      List.rev !acc
    end
end
