(* The or-parallel engine (MUSE-style, as in the ACE or-parallel
   component).

   Every worker owns a complete private machine state (choice-point stack,
   trail, bindings).  An idle worker picks a victim, scans the victim's
   choice-point stack bottom-up for a node with untried alternatives
   (charged per node visited — dead, exhausted nodes on the way cost real
   scan time), then *copies* the victim's machine state, backtracks the
   copy to the stolen node, and takes the next alternative.  The
   alternative lists of copied choice points are shared (behind a ref), so
   every alternative is explored exactly once globally — the MUSE
   public-region discipline.

   Because a shared (copied) node may back branches of other workers, an
   exhausted node cannot be trust-popped at its last alternative the way a
   sequential engine would: it stays on the stack until backtracking pops
   it, and scans and copies keep paying for it.  This is precisely the
   behaviour the Last Alternative Optimization (LAO, paper §3.2) attacks:
   with LAO, creating a choice point while the current top node is
   exhausted *updates that node in place* instead of allocating a new one,
   so member/2-style generators keep a single live node holding all
   remaining alternatives (paper's Figures 6 and 7).  The in-place update
   of a potentially shared node needs synchronization, so it is charged
   *more* than a private allocation — which is why LAO loses a little at 1
   worker (the negative first column of the paper's Table 3) and wins once
   scans and copies matter.

   Solutions: the root continuation ends in a sentinel goal ['$solution']
   that records the current bindings and then fails, driving exploration of
   the entire search tree (or until [max_solutions]). *)

module Term = Ace_term.Term
module Trail = Ace_term.Trail
module Clause = Ace_lang.Clause
module Code = Ace_lang.Code
module Database = Ace_lang.Database
module Table = Ace_lang.Table
module Cost = Ace_machine.Cost
module Stats = Ace_machine.Stats
module Config = Ace_machine.Config
module Sim = Ace_sched.Sim
module Chaos = Ace_sched.Chaos
module Trace = Ace_obs.Trace
module Prof = Ace_obs.Prof

type ocp = {
  mutable o_goal : Term.t;
  mutable o_alts : Clause.t list ref; (* shared with copies of this node *)
  mutable o_cont : Clause.item list;
  mutable o_trail : int;
}

type worker = {
  w_id : int;
  mutable w_cps : ocp list; (* newest first *)
  mutable w_trail : Trail.t;
  mutable w_idle : bool;
}

type t = {
  db : Database.t;
  table : Table.t; (* shared answer table for tabled predicates *)
  config : Config.t;
  cost : Cost.t;
  shards : Stats.t array; (* one per simulated worker *)
  tbufs : Trace.buffer array; (* one trace ring per simulated worker *)
  chaos : Chaos.agent array; (* per-worker schedule-jitter streams *)
  sim : Sim.t;
  workers : worker array;
  scratches : Code.scratch array; (* per-agent frame buffer + registers *)
  pshards : Prof.shard array; (* per-agent profiler shards *)
  goal : Term.t;
  output : Buffer.t option;
  cancel : Cancel.t;
    (* polled at the call/backtrack chokepoints; once fired the run stops
       through the same finished+stop path as a solution limit *)
  mutable finished : bool;
  mutable idle_count : int;
  mutable sol_count : int;
  mutable solutions : Term.t list; (* newest first *)
}

let charge (_st : t) n = Sim.tick n

(* Counter updates are attributed to the agent the simulator is currently
   stepping: the coroutines run on one OS thread, so the "current agent"
   is exact at every update site (interleaving happens only at ticks). *)
let cur st =
  let c = Sim.current_agent st.sim in
  if c < 0 then 0 else c

let shard st = st.shards.(cur st)
let psh st = st.pshards.(cur st)

let tbuf st = st.tbufs.(cur st)

(* Events are stamped with the virtual clock, so an exported trace shows
   the simulated schedule. *)
let record st kind arg = Trace.record_at (tbuf st) ~ts:(Sim.now st.sim) kind arg

(* Schedule-exploration yield site: chaos may charge a few extra virtual
   cycles here.  The simulator always resumes the agent with the smallest
   clock, so each jitter seed deterministically selects one alternative
   interleaving of the same search. *)
let chaos_yield st =
  let j = Chaos.jitter st.chaos.(cur st) in
  if j > 0 then Sim.tick j

(* The kernel resolver instantiated for this engine: charges tick the
   discrete-event simulator, stats go to the current agent's shard. *)
module K = Kernel.Resolver (struct
  type nonrec t = t

  let name = "the or-parallel engine"
  let cost st = st.cost
  let stats = shard
  let charge = charge

  (* One scratch per simulated agent: a context switch at a tick can
     never hand one agent's half-loaded registers to another. *)
  let scratch st = st.scratches.(cur st)
  let prof = psh
  let record = record
  let cancel st = st.cancel
end)

(* Cancellation observed: stop the whole search exactly like a solution
   limit — [Sim.stop] discards the other agents' pending continuations,
   abandoning their (private) stacks and trails mid-flight, as when a
   real query completes. *)
let stop st =
  st.finished <- true;
  Sim.stop st.sim

(* ------------------------------------------------------------------ *)
(* Raw state copying (the MUSE stack copy)                             *)
(* ------------------------------------------------------------------ *)

(* Copies the victim's entire machine state into the thief (full stack +
   full trail, exactly like a MUSE stack copy); the caller then backtracks
   the copy to the stolen node.  The alternative refs stay shared. *)
let copy_state st ~victim ~thief =
  let table = Hashtbl.create 256 in
  let cells = ref 0 in
  let cps =
    List.map
      (fun cp ->
        {
          o_goal = Kernel.Copy.raw_term table cells cp.o_goal;
          o_alts = cp.o_alts; (* shared *)
          o_cont = Kernel.Copy.raw_items table cells cp.o_cont;
          o_trail = cp.o_trail;
        })
      victim.w_cps
  in
  let trail = Trail.create () in
  let n = Trail.size victim.w_trail in
  let entries = Trail.segment victim.w_trail ~lo:0 ~hi:n in
  Array.iter (fun v -> Trail.push trail (Kernel.Copy.raw_var table cells v)) entries;
  thief.w_cps <- cps;
  thief.w_trail <- trail;
  charge st (st.cost.Cost.copy_setup + (!cells * st.cost.Cost.copy_cell));
  (shard st).Stats.copies <- (shard st).Stats.copies + 1;
  (shard st).Stats.copied_cells <- (shard st).Stats.copied_cells + !cells;
  if Prof.live (psh st) then Prof.copied (psh st) !cells;
  record st Trace.Copy !cells

(* ------------------------------------------------------------------ *)
(* Resolution                                                          *)
(* ------------------------------------------------------------------ *)

let ctx_of st w = Builtins.make_ctx ?output:st.output ~trail:w.w_trail ()

let call_builtin st w goal = K.call_builtin st (ctx_of st w) goal

let try_clause st w goal clause =
  K.resolve st ~ctx:(ctx_of st w) ~compiled:st.config.Config.compile
    ~trail:w.w_trail goal clause

(* Choice-point creation, with the LAO check: if the current top node is
   exhausted, refurbish it in place instead of allocating a new node. *)
let debug = ref false

let push_cp st w ~goal ~alts ~cont =
  if !debug then Format.eprintf "[w%d] push_cp %s alts=%d@." w.w_id (Ace_term.Pp.to_string goal) (List.length alts);
  chaos_yield st;
  if st.config.Config.lao then charge st st.cost.Cost.runtime_check;
  match w.w_cps with
  | top :: _
    when Kernel.Schema.lao_refurbish st.config ~top_exhausted:(!(top.o_alts) = []) ->
    charge st st.cost.Cost.lao_update;
    (shard st).Stats.cp_updates <- (shard st).Stats.cp_updates + 1;
    (shard st).Stats.lao_hits <- (shard st).Stats.lao_hits + 1;
    record st Trace.Lao_hit (List.length alts);
    top.o_goal <- goal;
    top.o_alts <- ref alts; (* fresh ref: old copies keep their dead ref *)
    top.o_cont <- cont;
    top.o_trail <- Trail.mark w.w_trail
  | _ ->
    charge st st.cost.Cost.cp_alloc;
    (shard st).Stats.cp_allocs <- (shard st).Stats.cp_allocs + 1;
    (shard st).Stats.stack_words <-
      (shard st).Stats.stack_words + Cost.words_choice_point;
    w.w_cps <-
      { o_goal = goal; o_alts = ref alts; o_cont = cont; o_trail = Trail.mark w.w_trail }
      :: w.w_cps

let record_solution st =
  (shard st).Stats.solutions <- (shard st).Stats.solutions + 1;
  st.sol_count <- st.sol_count + 1;
  record st Trace.Solution st.sol_count

(* Forward execution until a failure (solutions report-and-fail via the
   sentinel) or engine shutdown.  Returns when the worker has no local
   alternatives left. *)
let rec run_worker st w (cont : Clause.item list) : unit =
  if st.finished then ()
  else
    match cont with
    | [] ->
      (* only reachable for a goal without the sentinel; treat as done *)
      backtrack st w
    | Clause.Par bodies :: rest ->
      (* the or-engine runs '&' sequentially *)
      run_worker st w (List.concat bodies @ rest)
    | Clause.Call g :: rest -> dispatch st w g rest
    | Clause.Exec xf :: rest -> exec_frame st w xf rest

(* Resumes a compiled clause body from its saved pc.  No environment
   trimming here: a stolen (copied) stack may still reference the frame
   at an earlier pc, so dead slots must survive. *)
and exec_frame st w xf cont =
  match K.exec_body st ~ctx:(ctx_of st w) xf with
  | Kernel.Ex_fail -> backtrack st w
  | Kernel.Ex_done -> run_worker st w cont
  | Kernel.Ex_goal (g, pc) -> dispatch st w g (Kernel.exec_cont xf pc cont)
  | Kernel.Ex_par (bodies, pc) ->
    run_worker st w (List.concat bodies @ Kernel.exec_cont xf pc cont)
  | Kernel.Ex_call (sym, arity, pc, _live) ->
    user_call_regs st w sym arity (Kernel.exec_cont xf pc cont)
  | Kernel.Ex_exec (sym, arity) -> user_call_regs st w sym arity cont

(* Schedules what one clause try resolved to; [R_exec] re-enters clause
   selection straight from the registers (last-call optimization). *)
and continue st w resolved cont =
  match resolved with
  | Kernel.R_fail -> backtrack st w
  | Kernel.R_body body -> run_worker st w (body @ cont)
  | Kernel.R_exec (sym, arity) -> user_call_regs st w sym arity cont

and user_call_regs st w sym arity cont =
  if st.finished then ()
  else
    let regs = st.scratches.(w.w_id).Code.s_regs in
    if Database.is_tabled st.db sym arity then
      (* materialize the register call: tabled answers must outlive the
         registers, and the table keys on the goal term *)
      user_call st w (Kernel.goal_of_regs sym arity regs) cont
    else
    match K.select_args st st.db sym arity regs with
    | [] -> backtrack st w
    | [ clause ] ->
      continue st w
        (K.try_code_args st ~ctx:(ctx_of st w) ~trail:w.w_trail regs clause)
        cont
    | clause :: rest ->
      (* nondeterminate: materialize the goal once — the alternatives in
         the (shareable) choice point must outlive the registers *)
      let g = Kernel.goal_of_regs sym arity regs in
      push_cp st w ~goal:g ~alts:rest ~cont;
      continue st w (try_clause st w g clause) cont

and dispatch st w g cont =
  let g = Term.deref g in
  if Kernel.is_plain g then
    (* the hot case, allocation-free: a plain user or builtin call *)
    match call_builtin st w g with
    | Builtins.Ok -> run_worker st w cont
    | Builtins.Fail -> backtrack st w
    | Builtins.Not_builtin -> user_call st w g cont
  else
    dispatch_control st w g cont

and dispatch_control st w g cont =
  match Kernel.classify g with
  | Kernel.Sentinel goal ->
    if !debug then Format.eprintf "[w%d] solution %s@." w.w_id (Ace_term.Pp.to_string goal);
    record_solution st;
    st.solutions <- Term.copy_resolved goal :: st.solutions;
    let enough =
      match st.config.Config.max_solutions with
      | Some limit -> st.sol_count >= limit
      | None -> false
    in
    if enough then begin
      st.finished <- true;
      Sim.stop st.sim
    end
    else backtrack st w (* report-and-fail drives the full search *)
  | Kernel.Cut | Kernel.Disj _ | Kernel.Ite _ | Kernel.Naf _ ->
    K.unsupported st (Term.deref g)
  | Kernel.Conj g | Kernel.Amp g -> run_worker st w (Clause.compile_body g @ cont)
  | Kernel.Meta g -> dispatch st w g cont
  | Kernel.Goal g -> (
    (* unreachable from [dispatch] (filtered by [is_plain]); kept for
       direct [classify] completeness *)
    match call_builtin st w g with
    | Builtins.Ok -> run_worker st w cont
    | Builtins.Fail -> backtrack st w
    | Builtins.Not_builtin -> user_call st w g cont)

and user_call st w g cont =
  if Cancel.poll st.cancel then stop st
  else
  match
    (* tabled predicates answer from the shared table; the kernel
       completes the subgoal first when needed (see Kernel.table_call) *)
    if Database.is_tabled_goal st.db g then
      K.table_call st ~table:st.table ~ctx:(ctx_of st w)
        ~compiled:st.config.Config.compile ~db:st.db g
    else K.select st ~compiled:st.config.Config.compile st.db g
  with
  | exception Cancel.Cancelled ->
    (* an abort inside the tabling mini-solver: the entry stays
       incomplete but consistent (Kernel.table_call's contract) *)
    stop st
  | [] -> backtrack st w
  | [ clause ] -> continue st w (try_clause st w g clause) cont
  | clause :: rest ->
    push_cp st w ~goal:g ~alts:rest ~cont;
    continue st w (try_clause st w g clause) cont

(* Local backtracking: exhausted nodes are popped (each visit charged); a
   node with remaining shared alternatives yields the next one. *)
and backtrack st w =
  if !debug then
    Format.eprintf "[w%d] backtrack stack=%d top_alts=%s@." w.w_id (List.length w.w_cps)
      (match w.w_cps with [] -> "-" | cp :: _ -> string_of_int (List.length !(cp.o_alts)));
  (shard st).Stats.backtracks <- (shard st).Stats.backtracks + 1;
  if st.finished then ()
  else if Cancel.poll st.cancel then stop st
  else begin
    chaos_yield st;
    match w.w_cps with
    | [] -> () (* no local work left: the worker loop will go stealing *)
    | cp :: below -> (
      charge st st.cost.Cost.backtrack_node;
      (shard st).Stats.bt_nodes_visited <- (shard st).Stats.bt_nodes_visited + 1;
      match !(cp.o_alts) with
      | [] ->
        if Prof.live (psh st) then Prof.fail (psh st) (Prof.key_of_term cp.o_goal);
        w.w_cps <- below;
        backtrack st w
      | clause :: alts ->
        if !debug then Format.eprintf "[w%d] retry %s@." w.w_id (Ace_term.Pp.to_string cp.o_goal);
        if Prof.live (psh st) then Prof.redo (psh st) (Prof.key_of_term cp.o_goal);
        cp.o_alts := alts;
        K.untrail st w.w_trail cp.o_trail;
        charge st st.cost.Cost.cp_restore;
        continue st w (try_clause st w cp.o_goal clause) cp.o_cont)
  end

(* ------------------------------------------------------------------ *)
(* Or-scheduler: scanning and stealing                                 *)
(* ------------------------------------------------------------------ *)

(* Scans [victim]'s stack bottom-up for the first node with untried
   alternatives; charges per node visited (dead nodes on the way cost real
   scan time).  The scan itself does not tick, so the result is consistent
   with the claim that follows; the accumulated cost is charged in one
   step. *)
let find_work st victim =
  let visited = ref 0 in
  let rec scan = function
    | [] -> None
    | cp :: above ->
      incr visited;
      if !(cp.o_alts) <> [] then Some cp else scan above
  in
  let result = scan (List.rev victim.w_cps) in
  (shard st).Stats.or_scans <- (shard st).Stats.or_scans + !visited;
  (result, !visited * st.cost.Cost.or_scan_node)

(* Steals from the first victim (in id order after the thief) that has
   work: copy the whole state, backtrack the copy to the stolen node, pop
   one alternative.  Returns the goal/continuation to resume with. *)
let try_steal st (w : worker) =
  let p = Array.length st.workers in
  let rec attempt k =
    if k >= p then None
    else
      let victim = st.workers.((w.w_id + 1 + k) mod p) in
      (* injected steal failure: skip this victim as if it had no work *)
      if
        victim.w_id = w.w_id || victim.w_cps = []
        || Chaos.steal_blocked st.chaos.(w.w_id)
      then attempt (k + 1)
      else begin
        (* scan, claim and copy happen without an intervening tick: a live
           node (non-empty alternatives) is guaranteed to still be on the
           victim's stack, so the copied stack contains the target *)
        let target, scan_cost = find_work st victim in
        match target with
        | None ->
          charge st scan_cost;
          attempt (k + 1)
        | Some target -> (
          match !(target.o_alts) with
          | [] ->
            charge st scan_cost;
            attempt (k + 1)
          | clause :: alts ->
            if !debug then Format.eprintf "[w%d] steal claim %s (left %d)@." w.w_id (Ace_term.Pp.to_string target.o_goal) (List.length alts);
            (* claim, remember the claimed ref, and copy — all before the
               first tick, so the victim cannot mutate underneath.  Leaving
               the idle set must be atomic with the claim, or another
               worker could observe "everyone idle" while this one holds
               claimed work and declare premature exhaustion. *)
            let claimed_ref = target.o_alts in
            claimed_ref := alts;
            (if Prof.live (psh st) then begin
               let k = Prof.key_of_term target.o_goal in
               Prof.stole (psh st) k;
               Prof.redo (psh st) k
             end);
            if w.w_idle then begin
              w.w_idle <- false;
              st.idle_count <- st.idle_count - 1
            end;
            copy_state st ~victim ~thief:w;
            charge st scan_cost;
            (* backtrack the copy to the stolen node *)
            let rec pop_to popped = function
              | [] -> assert false
              | cp :: below ->
                if cp.o_alts == claimed_ref then (cp, popped + 1)
                else pop_to (popped + 1) below
            in
            let cp, visited = pop_to 0 w.w_cps in
            let rec drop = function
              | cp' :: below when not (cp'.o_alts == claimed_ref) -> drop below
              | rest -> rest
            in
            w.w_cps <- drop w.w_cps;
            charge st (visited * st.cost.Cost.backtrack_node);
            (shard st).Stats.bt_nodes_visited <-
              (shard st).Stats.bt_nodes_visited + visited;
            K.untrail st w.w_trail cp.o_trail;
            charge st (st.cost.Cost.cp_restore + st.cost.Cost.steal_grab);
            (shard st).Stats.steals <- (shard st).Stats.steals + 1;
            record st Trace.Steal victim.w_id;
            Some (cp, clause))
      end
  in
  attempt 0

let worker_body st w ~initial () =
  let resume (cp, clause) =
    continue st w (try_clause st w cp.o_goal clause) cp.o_cont
  in
  (match initial with
   | Some cont -> run_worker st w cont
   | None -> ());
  (* steal loop with distributed termination detection: a worker that finds
     nothing to steal while every other worker is idle declares global
     exhaustion *)
  let rec idle_loop () =
    if st.finished then ()
    else begin
      w.w_idle <- true;
      st.idle_count <- st.idle_count + 1;
      record st Trace.Idle_begin 0;
      let rec poll () =
        if st.finished then record st Trace.Idle_end 0
        else if Cancel.poll st.cancel then begin
          stop st;
          record st Trace.Idle_end 0
        end
        else
          match try_steal st w with
          | Some work ->
            (* the idle set was left at claim time, inside try_steal *)
            record st Trace.Idle_end 0;
            resume work;
            idle_loop ()
          | None ->
            if st.idle_count = Array.length st.workers then begin
              st.finished <- true;
              Sim.stop st.sim;
              record st Trace.Idle_end 0
            end
            else begin
              charge st st.cost.Cost.steal_poll;
              (shard st).Stats.polls <- (shard st).Stats.polls + 1;
              chaos_yield st;
              poll ()
            end
      in
      poll ()
    end
  in
  idle_loop ()

(* ------------------------------------------------------------------ *)
(* Public interface                                                    *)
(* ------------------------------------------------------------------ *)

type result = {
  solutions : Term.t list; (* in discovery order (nondeterministic for P>1) *)
  stats : Stats.t; (* merged over all simulated workers *)
  per_agent : Stats.t array; (* the per-worker shards behind [stats] *)
  time : int;
}

let create ?output ?(trace = Trace.disabled) ?(chaos = Chaos.disabled)
    ?(prof = Prof.disabled) ?table ?(cancel = Cancel.none) (config : Config.t)
    db goal =
  let config = Config.validate config in
  let sim = Sim.create ~max_steps:3_000_000 () in
  let workers =
    Array.init config.Config.agents (fun i ->
        { w_id = i; w_cps = []; w_trail = Trail.create (); w_idle = false })
  in
  let shards = Array.init config.Config.agents (fun _ -> Stats.create ()) in
  let pshards =
    Array.init config.Config.agents (fun i ->
        if Prof.enabled prof then
          Prof.shard prof ~dom:i ~stats:shards.(i)
            ~clock:(fun () -> Sim.now sim)
            ()
        else Prof.null)
  in
  {
    db;
    table =
      (match table with
      | Some t -> t
      | None -> Table.create ~max_answers:config.Config.table_max_answers ());
    config;
    cost = config.Config.cost;
    shards;
    tbufs = Array.init config.Config.agents (fun i -> Trace.buffer trace ~dom:i);
    chaos = Array.init config.Config.agents (fun i -> Chaos.agent chaos i);
    sim;
    workers;
    scratches = Array.init config.Config.agents (fun _ -> Code.create_scratch ());
    pshards;
    goal;
    output;
    cancel;
    finished = false;
    idle_count = 0;
    sol_count = 0;
    solutions = [];
  }

let run st =
  let init = Kernel.sentinel_body st.goal in
  Array.iter
    (fun w ->
      let initial = if w.w_id = 0 then Some init else None in
      Sim.spawn st.sim ~agent:w.w_id (worker_body st w ~initial))
    st.workers;
  Sim.run st.sim;
  {
    solutions = List.rev st.solutions;
    stats = Kernel.merge_shards st.shards;
    per_agent = st.shards;
    time = Sim.stop_time st.sim;
  }

let solve ?output ?trace ?chaos ?prof ?table ?cancel config db goal =
  run (create ?output ?trace ?chaos ?prof ?table ?cancel config db goal)
