(* Sequential Prolog engine: the "state-of-the-art sequential system"
   baseline of the paper (its SICStus stand-in).

   An explicit machine with a continuation stack and a choice-point stack.
   Parallel conjunctions ('&') are executed as ordinary sequential
   conjunctions, so annotated benchmark programs run unchanged and the
   parallel engines' 1-agent overhead can be measured against this engine
   on identical programs.

   The engine charges every operation to an abstract-cycle accumulator
   using the same {!Ace_machine.Cost} table as the simulated parallel
   engines; the resulting total is the T_seq that parallel overhead is
   computed against. *)

module Term = Ace_term.Term
module Trail = Ace_term.Trail
module Clause = Ace_lang.Clause
module Code = Ace_lang.Code
module Database = Ace_lang.Database
module Table = Ace_lang.Table
module Cost = Ace_machine.Cost
module Stats = Ace_machine.Stats
module Chaos = Ace_sched.Chaos
module Trace = Ace_obs.Trace
module Prof = Ace_obs.Prof

type alts =
  | Aclauses of Clause.t list
      (* remaining candidate clauses, stored as the selection's own list
         so a nondeterminate call allocates no per-clause wrapper *)
  | Agoal of Clause.body (* right branch of a disjunction *)

type seg = { items : Clause.item list; barrier : int }
(* [barrier] is the choice-point stack height a cut in these items
   restores. *)

type cp = {
  cp_goal : Term.t option; (* None for disjunction choice points *)
  mutable cp_alts : alts;
  cp_cont : seg list;
  cp_trail : int;
  cp_height : int; (* stack height below this choice point *)
}

type t = {
  db : Database.t;
  table : Table.t; (* shared answer table for tabled predicates *)
  trail : Trail.t;
  stats : Stats.t;
  cost : Cost.t;
  ctx : Builtins.ctx;
  goal : Term.t;
  compile : bool; (* execute flat clause code instead of interpreting *)
  tbuf : Trace.buffer; (* events stamped with the abstract-cycle clock *)
  chaos : Chaos.agent;
    (* jitter charges extra abstract cycles at yield sites; answers must
       not depend on it (there is no concurrency here — the hook exists so
       the checker can assert cycle-jitter invariance uniformly) *)
  sc : Code.scratch; (* frame buffer + argument registers (compiled path) *)
  cancel : Cancel.t;
    (* polled at the call and backtrack chokepoints; {!Cancel.none} costs
       one physical-equality test there (the allocation gate covers it) *)
  mutable prof : Prof.shard;
    (* per-predicate profiler shard ([Prof.null] when off); mutable only
       because its clock closure needs the machine *)
  mutable cps : cp list;
  mutable height : int;
  mutable charge : int; (* accumulated abstract cycles *)
  mutable started : bool;
  mutable exhausted : bool;
}

let create ?(cost = Cost.default) ?(compile = false) ?output
    ?(trace = Trace.disabled) ?(chaos = Chaos.disabled)
    ?(prof = Prof.disabled) ?table ?(cancel = Cancel.none) db goal =
  let trail = Trail.create () in
  let m =
    {
      db;
      table = (match table with Some t -> t | None -> Table.create ());
      trail;
      stats = Stats.create ();
      cost;
      ctx = Builtins.make_ctx ?output ~trail ();
      goal;
      compile;
      tbuf = Trace.buffer trace ~dom:0;
      chaos = Chaos.agent chaos 0;
      sc = Code.create_scratch ();
      cancel;
      prof = Prof.null;
      cps = [];
      height = 0;
      charge = 0;
      started = false;
      exhausted = false;
    }
  in
  if Prof.enabled prof then
    m.prof <-
      Prof.shard prof ~dom:0 ~stats:m.stats ~clock:(fun () -> m.charge) ();
  m

let spend m n = m.charge <- m.charge + n

(* The kernel resolver instantiated for this engine: charges go to the
   private abstract-cycle accumulator, stats to the single machine
   shard. *)
module K = Kernel.Resolver (struct
  type nonrec t = t

  let name = "the sequential engine"
  let cost m = m.cost
  let stats m = m.stats
  let charge = spend
  let scratch m = m.sc
  let prof m = m.prof
  let record m kind arg = Trace.record_at m.tbuf ~ts:m.charge kind arg
  let cancel m = m.cancel
end)

(* [mark] is the trail height the choice point restores on backtracking —
   the caller's mark from *before* any bindings the first taken
   alternative made (shallow backtracking pushes the choice point only
   after a head has already matched). *)
let push_cp m ~mark ~goal ~alts ~cont =
  spend m (Chaos.jitter m.chaos);
  spend m m.cost.Cost.cp_alloc;
  m.stats.Stats.cp_allocs <- m.stats.Stats.cp_allocs + 1;
  m.stats.Stats.stack_words <- m.stats.Stats.stack_words + Cost.words_choice_point;
  let cp =
    {
      cp_goal = goal;
      cp_alts = alts;
      cp_cont = cont;
      cp_trail = mark;
      cp_height = m.height;
    }
  in
  m.cps <- cp :: m.cps;
  m.height <- m.height + 1

let undo_to m mark = K.untrail m m.trail mark

let cut m barrier =
  while m.height > barrier do
    match m.cps with
    | [] -> assert false
    | _ :: below ->
      m.cps <- below;
      m.height <- m.height - 1
  done

(* [run] drives forward execution; [backtrack] resumes at the newest choice
   point.  Both return [true] when a solution is reached (the machine state
   is then frozen until the caller asks for the next solution). *)
let rec run m (cont : seg list) : bool =
  match cont with
  | [] -> true
  | { items = []; _ } :: rest -> run m rest
  | ({ items = item :: items; barrier } as seg) :: rest -> (
    (* last item of the segment: drop the seg instead of keeping an
       empty one around (saves an allocation per body executed) *)
    let cont' =
      match items with [] -> rest | _ -> { seg with items } :: rest
    in
    match item with
    | Clause.Par bodies ->
      (* Sequential semantics of '&': plain conjunction. *)
      run m (List.map (fun body -> { items = body; barrier }) bodies @ cont')
    | Clause.Call g -> dispatch m g ~barrier cont'
    | Clause.Exec xf -> exec_frame m xf ~barrier cont')

(* Resumes a compiled clause body from its saved pc.  The kernel runs
   consecutive builtins inline and decodes the first step it cannot
   finish; trimming and calling are scheduling policy, so they live
   here. *)
and exec_frame m xf ~barrier cont =
  match K.exec_body m ~ctx:m.ctx xf with
  | Kernel.Ex_fail -> backtrack m
  | Kernel.Ex_done -> run m cont
  | Kernel.Ex_goal (g, pc) -> dispatch m g ~barrier (resume xf pc ~barrier cont)
  | Kernel.Ex_par (bodies, pc) ->
    (* Sequential semantics of '&', as in [run]. *)
    run m
      (List.map (fun body -> { items = body; barrier }) bodies
      @ resume xf pc ~barrier cont)
  | Kernel.Ex_call (sym, arity, pc, live) ->
    (* Environment trimming: untrailed clears, legal only while the
       frame is provably private — no choice point pushed (and still
       alive) since clause entry, so no earlier pc of this frame can
       ever be resumed. *)
    if m.height = barrier then Kernel.trim_env xf live;
    user_call_regs m sym arity (resume xf pc ~barrier cont)
  | Kernel.Ex_exec (sym, arity) ->
    (* Last call: the frame is dropped before the callee runs. *)
    user_call_regs m sym arity cont

and resume xf pc ~barrier cont =
  match Kernel.exec_cont xf pc [] with
  | [] -> cont
  | items -> { items; barrier } :: cont

and dispatch m g ~barrier cont =
  let g = Term.deref g in
  if Kernel.is_plain g then
    (* the hot case, allocation-free: a plain user or builtin call *)
    match K.call_builtin m m.ctx g with
    | Builtins.Ok -> run m cont
    | Builtins.Fail -> backtrack m
    | Builtins.Not_builtin -> user_call m g cont
  else
    match Kernel.classify g with
    | Kernel.Cut ->
      cut m barrier;
      run m cont
    | Kernel.Conj g ->
      run m ({ items = Clause.compile_body g; barrier } :: cont)
    | Kernel.Ite (cond, then_, else_) ->
      if_then_else m cond then_ else_ ~barrier cont
    | Kernel.Disj (left, else_) ->
      push_cp m ~mark:(Trail.mark m.trail) ~goal:None
        ~alts:(Agoal (Clause.compile_body else_)) ~cont;
      run m ({ items = Clause.compile_body left; barrier } :: cont)
    | Kernel.Naf g ->
      let mark = Trail.mark m.trail in
      let proved = solve_once m g in
      undo_to m mark;
      if proved then backtrack m else run m cont
    | Kernel.Meta g ->
      (* call/1 is transparent to everything but cut: the cut barrier becomes
         the current height, making the inner cut local. *)
      dispatch m g ~barrier:m.height cont
    | Kernel.Amp _ | Kernel.Sentinel _ | Kernel.Goal _ -> (
      (* dynamically built '&'/2 goals and the '$solution' sentinel are not
         part of this engine's language: both fall through to the database
         (and its existence error), as they always have *)
      match K.call_builtin m m.ctx g with
      | Builtins.Ok -> run m cont
      | Builtins.Fail -> backtrack m
      | Builtins.Not_builtin -> user_call m g cont)

and if_then_else m cond then_ else_ ~barrier cont =
  let mark = Trail.mark m.trail in
  if solve_once m cond then
    (* commit to the condition's first solution (bindings kept) *)
    run m ({ items = Clause.compile_body then_; barrier } :: cont)
  else begin
    undo_to m mark;
    run m ({ items = Clause.compile_body else_; barrier } :: cont)
  end

(* Proves [g] once on a private choice-point stack, keeping bindings.  Used
   by negation and if-then-else. *)
and solve_once m g =
  let saved_cps = m.cps and saved_height = m.height in
  m.cps <- [];
  m.height <- 0;
  let found = dispatch m g ~barrier:0 [] in
  m.cps <- saved_cps;
  m.height <- saved_height;
  found

and user_call m g cont =
  (* call chokepoint: a fired token unwinds out of [next] through the
     [Cancelled] handler, so no further (possibly wrong-under-
     cancellation) solution can be reported *)
  Cancel.check m.cancel;
  let clauses =
    (* tabled predicates are answered from the shared answer table; the
       kernel completes the subgoal first if needed and the pseudo-fact
       answers flow through the ordinary clause machinery below *)
    if Database.is_tabled_goal m.db g then
      K.table_call m ~table:m.table ~ctx:m.ctx ~compiled:m.compile ~db:m.db g
    else K.select m ~compiled:m.compile m.db g
  in
  match clauses with
  | [] -> backtrack m
  | [ clause ] ->
    (* Determinate after indexing: no choice point (the property LPCO and
       SPO key on in the parallel engines). *)
    continue m (K.resolve m ~ctx:m.ctx ~compiled:m.compile ~trail:m.trail g clause)
      cont
  | clauses -> shallow m g clauses cont

(* Schedules what one clause try resolved to.  [R_exec] is the last-call
   case: the callee's arguments sit in the registers and nothing was
   stacked, so a determinate recursion bounces between [continue] and
   [user_call_regs] in constant space (both calls are tail calls). *)
and continue m resolved cont =
  match resolved with
  | Kernel.R_fail -> backtrack m
  | Kernel.R_body [] -> run m cont
  | Kernel.R_body items -> run m ({ items; barrier = m.height } :: cont)
  | Kernel.R_exec (sym, arity) -> user_call_regs m sym arity cont

(* A user call whose arguments live in the scratch registers: clause
   selection walks the dispatch tree straight from the register file.
   Only the nondeterminate case materializes a goal term — alternatives
   stored in a choice point must outlive the registers. *)
and user_call_regs m sym arity cont =
  Cancel.check m.cancel;
  if Database.is_tabled m.db sym arity then
    (* materialize the register call: tabled answers must outlive the
       registers, and the table keys on the goal term *)
    user_call m (Kernel.goal_of_regs sym arity m.sc.Code.s_regs) cont
  else
  match K.select_args m m.db sym arity m.sc.Code.s_regs with
  | [] -> backtrack m
  | [ clause ] ->
    continue m (K.try_code_args m ~ctx:m.ctx ~trail:m.trail m.sc.Code.s_regs clause)
      cont
  | clauses ->
    let g = Kernel.goal_of_regs sym arity m.sc.Code.s_regs in
    shallow m g clauses cont

(* Shallow backtracking (WAM-style): scan the candidates for the first
   one whose head matches before allocating a choice point, so clauses
   rejected by head unification cost no choice-point traffic.  The
   choice point — pushed only when a later alternative remains — records
   the pre-scan trail mark, since those alternatives must be retried
   from the caller's bindings. *)
and shallow m g clauses cont =
  let mark = Trail.mark m.trail in
  let rec scan = function
    | [] ->
      if Prof.live m.prof then Prof.fail m.prof (Prof.key_of_term g);
      backtrack m
    | clause :: rest -> (
      match K.resolve m ~ctx:m.ctx ~compiled:m.compile ~trail:m.trail g clause with
      | Kernel.R_fail ->
        undo_to m mark;
        scan rest
      | resolved ->
        (* The choice point is pushed before [continue] consumes the
           resolution, so an [R_exec] callee's segments sit above it —
           its barrier (the pre-push height) is captured first. *)
        let barrier = m.height in
        if rest <> [] then
          push_cp m ~mark ~goal:(Some g) ~alts:(Aclauses rest) ~cont;
        (match resolved with
        | Kernel.R_body items -> run m ({ items; barrier } :: cont)
        | resolved -> continue m resolved cont))
  in
  scan clauses

and backtrack m =
  Cancel.check m.cancel;
  m.stats.Stats.backtracks <- m.stats.Stats.backtracks + 1;
  spend m (Chaos.jitter m.chaos);
  match m.cps with
  | [] -> false
  | cp :: below -> (
    spend m m.cost.Cost.backtrack_node;
    m.stats.Stats.bt_nodes_visited <- m.stats.Stats.bt_nodes_visited + 1;
    match cp.cp_alts with
    | Aclauses clauses ->
      undo_to m cp.cp_trail;
      spend m m.cost.Cost.cp_restore;
      let goal = match cp.cp_goal with Some g -> g | None -> assert false in
      if Prof.live m.prof then Prof.redo m.prof (Prof.key_of_term goal);
      (* Shallow scan, as in [shallow]: head-rejected alternatives are
         dropped without re-entering the backtracker; the last matching
         alternative pops the choice point (WAM "trust"). *)
      let rec rescan = function
        | [] ->
          if Prof.live m.prof then Prof.fail m.prof (Prof.key_of_term goal);
          m.cps <- below;
          m.height <- m.height - 1;
          backtrack m
        | clause :: alts -> (
          match
            K.resolve m ~ctx:m.ctx ~compiled:m.compile ~trail:m.trail goal clause
          with
          | Kernel.R_fail ->
            undo_to m cp.cp_trail;
            rescan alts
          | resolved ->
            if alts = [] then begin
              m.cps <- below;
              m.height <- m.height - 1
            end
            else begin
              (* the retained choice point is updated in place with the
                 shrunken alternative list *)
              cp.cp_alts <- Aclauses alts;
              m.stats.Stats.cp_updates <- m.stats.Stats.cp_updates + 1
            end;
            (match resolved with
            | Kernel.R_body items ->
              run m ({ items; barrier = cp.cp_height } :: cp.cp_cont)
            | resolved -> continue m resolved cp.cp_cont))
      in
      rescan clauses
    | Agoal body ->
      undo_to m cp.cp_trail;
      spend m m.cost.Cost.cp_restore;
      (* a disjunction's right branch is its only alternative: trust *)
      m.cps <- below;
      m.height <- m.height - 1;
      run m ({ items = body; barrier = m.height } :: cp.cp_cont))

(* ------------------------------------------------------------------ *)
(* Public interface                                                    *)
(* ------------------------------------------------------------------ *)

let next m =
  if m.exhausted then None
  else begin
    let found =
      (* a fired cancel token unwinds here like exhaustion: solutions
         already reported stay valid (each was complete when copied),
         the machine just stops producing more *)
      match
        if not m.started then begin
          m.started <- true;
          run m [ { items = Clause.compile_body m.goal; barrier = 0 } ]
        end
        else backtrack m
      with
      | found -> found
      | exception Cancel.Cancelled -> false
    in
    if found then begin
      m.stats.Stats.solutions <- m.stats.Stats.solutions + 1;
      Trace.record_at m.tbuf ~ts:m.charge Trace.Solution m.stats.Stats.solutions;
      Some (Term.copy_resolved m.goal)
    end
    else begin
      m.exhausted <- true;
      None
    end
  end

let all_solutions ?limit m =
  let rec go acc n =
    match limit with
    | Some l when n >= l -> List.rev acc
    | Some _ | None -> (
      match next m with
      | Some s -> go (s :: acc) (n + 1)
      | None -> List.rev acc)
  in
  go [] 0

(* Named query-variable bindings, snapshotted against backtracking. *)
let bindings _m vars =
  List.map (fun (name, v) -> (name, Term.copy_resolved (Term.Var v))) vars

let stats m = m.stats

let time m = m.charge

let solve ?cost ?compile ?output ?trace ?chaos ?prof ?table ?cancel ?limit db
    goal =
  let m = create ?cost ?compile ?output ?trace ?chaos ?prof ?table ?cancel db
      goal
  in
  let solutions = all_solutions ?limit m in
  (solutions, m)
