(* Hardware or-parallel engine: the wall-clock twin of {!Or_engine}.

   {!Or_engine} reproduces the paper's LAO numbers on a deterministic
   discrete-event simulator; this engine runs the same search on real
   silicon using OCaml 5 domains.  The design is the MUSE environment-
   copying model mapped onto a work-stealing scheduler:

   - Every worker (one per domain) owns a complete private machine state:
     choice-point stack, trail, and its own copies of every term it binds.
     Workers share only the clause database (read-only after consult) and
     the atomic fresh-variable counter, so forward execution and local
     backtracking never synchronize — the property that makes or-parallel
     Prolog scale on shared-memory multicores (Vieira, Rocha & Silva).

   - Unexplored alternatives are published on demand.  When another worker
     is hungry (idle and looking for work), a running worker snapshots its
     *bottom-most* choice point that still has untried alternatives — the
     node nearest the root, i.e. the biggest unexplored subtree — into a
     self-contained task (goal + continuation copied with bindings
     resolved; this is the environment copy, charged to the publisher) and
     pushes it onto its work-stealing deque.  The snapshot is taken at the
     choice point's creation state by temporarily unwinding the trail
     segment above its mark, exactly the incremental-copy discipline of
     MUSE.  Publishing is throttled: a worker publishes only while its
     deque holds fewer tasks than there are hungry workers, so a saturated
     machine runs at private-backtracking speed with zero copies.

   - The paper's LAO / sequentialization schema (§3.2) appears here
     structurally rather than as a flag: a worker taking the last
     alternative of a node it owns trust-pops the node and continues in
     place — no re-dispatch, no copy, no synchronization (counted as
     [lao_hits]).  Only published (shared) nodes ever pay the copy, which
     is the simulated engine's account of why LAO converts member/2-style
     generators from O(nodes) shared overhead into in-place iteration.

   - Thieves steal from the top of a victim's deque (oldest task, biggest
     subtree); an owner re-acquiring its own published work pops from the
     bottom (deepest, cache-warm) with no further copying.

   Termination uses an outstanding-task counter: the root task counts one,
   every published task one more, and a worker decrements when a task's
   subtree is exhausted.  Idle workers spin (with [Domain.cpu_relax])
   until the counter reaches zero or a solution limit stops the run.

   Like {!Or_engine}, parallel conjunctions run sequentially and cut /
   if-then-else / negation are rejected.  Solutions are collected through
   a mutex-guarded channel in nondeterministic discovery order for P > 1;
   with one domain the engine is exactly a sequential backtracker and
   reproduces the sequential solution order. *)

module Term = Ace_term.Term
module Symbol = Ace_term.Symbol
module Trail = Ace_term.Trail
module Unify = Ace_term.Unify
module Clause = Ace_lang.Clause
module Database = Ace_lang.Database
module Stats = Ace_machine.Stats
module Config = Ace_machine.Config
module Deque = Ace_sched.Deque
module Chaos = Ace_sched.Chaos
module Trace = Ace_obs.Trace
module Metrics = Ace_obs.Metrics

(* A task is a self-contained unit of or-work: its terms are private
   copies, so the receiving worker needs no further setup. *)
type task =
  | Root of Clause.body
  | Node of {
      n_goal : Term.t;          (* snapshot of the choice point's goal *)
      n_alts : Clause.t list;   (* the untried alternatives, >= 1 *)
      n_cont : Clause.body;     (* snapshot of its continuation *)
    }

type cp = {
  cp_goal : Term.t;
  mutable cp_alts : Clause.t list;
  cp_cont : Clause.body;
  cp_trail : int;
}

type shared = {
  db : Database.t;
  config : Config.t;
  deques : task Deque.t array;
  hungry : int Atomic.t;      (* workers currently idle and stealing *)
  outstanding : int Atomic.t; (* tasks created but not yet exhausted *)
  stop : bool Atomic.t;
  failure : exn option Atomic.t; (* first worker exception, re-raised *)
  sol_mutex : Mutex.t;
  mutable sols_rev : Term.t list; (* guarded by [sol_mutex] *)
  mutable sol_count : int;        (* guarded by [sol_mutex] *)
}

type worker = {
  w_id : int;
  sh : shared;
  trail : Trail.t;
  shard : Metrics.shard;
    (* worker-private metrics; single-writer, aggregated after the join *)
  stats : Stats.t; (* alias of [shard.s_stats], for the hot-path updates *)
  tbuf : Trace.buffer; (* worker-private trace ring ([Trace.null] when off) *)
  ctx : Builtins.ctx;
  out : Buffer.t option; (* worker-private output, appended after the join *)
  chaos : Chaos.agent;
    (* per-worker fault-injection stream ([Chaos.null_agent] when off) *)
  mutable cps : cp list; (* newest first *)
  mutable live_alts : int; (* choice points with untried alternatives *)
}

let stopped w = Atomic.get w.sh.stop

(* ------------------------------------------------------------------ *)
(* Publishing (the MUSE environment copy)                              *)
(* ------------------------------------------------------------------ *)

(* Copies a term with bindings resolved away and unbound variables made
   fresh through [table]; [cells] counts copied cells for the stats. *)
let rec snapshot_term table cells t =
  incr cells;
  match Term.deref t with
  | (Term.Atom _ | Term.Int _) as t' -> t'
  | Term.Var v -> (
    match Hashtbl.find_opt table v.Term.vid with
    | Some v' -> Term.Var v'
    | None ->
      let v' = Term.fresh_var () in
      Hashtbl.add table v.Term.vid v';
      Term.Var v')
  | Term.Struct (f, args) ->
    Term.Struct (f, Array.map (snapshot_term table cells) args)

let rec snapshot_body table cells body =
  List.map
    (function
      | Clause.Call g -> Clause.Call (snapshot_term table cells g)
      | Clause.Par bodies ->
        Clause.Par (List.map (snapshot_body table cells) bodies))
    body

(* A worker publishes only while someone is hungry and its deque is not
   already stocked for them: bounded copying, zero when saturated.  Chaos
   may veto an otherwise due publish (a delayed publish — the work stays
   private and a later opportunity ships it). *)
let should_publish w =
  w.live_alts > 0
  && (let h = Atomic.get w.sh.hungry in
      h > 0 && Deque.length w.sh.deques.(w.w_id) < h)
  && not (Chaos.publish_delayed w.chaos)

(* Splits [alts] into runs of at most [chunk] alternatives (0 = one run). *)
let chunk_alts chunk alts =
  if chunk <= 0 then [ alts ]
  else begin
    let rec go acc run n = function
      | [] -> List.rev (List.rev run :: acc)
      | a :: rest ->
        if n = chunk then go (List.rev run :: acc) [ a ] 1 rest
        else go acc (a :: run) (n + 1) rest
    in
    go [] [] 0 alts
  end

(* Snapshots the bottom-most choice point whose untried-alternative count
   reaches the configured grain, at its creation state (trail segment above
   its mark temporarily unwound — the incremental copy), and pushes its
   alternatives as tasks of at most [chunk] alternatives each; every chunk
   gets its own snapshot inside the unwind window so tasks stay fully
   private to whichever worker takes them.  The node itself becomes
   exhausted for the owner.  Nodes below the grain are skipped — they stay
   reserved for private (cheap) backtracking. *)
let publish w =
  let grain = w.sh.config.Config.grain in
  let rec last_live skipped acc = function
    | [] -> (skipped, acc)
    | cp :: rest ->
      if cp.cp_alts = [] then last_live skipped acc rest
      else if List.length cp.cp_alts >= grain then last_live skipped (Some cp) rest
      else last_live (skipped + 1) acc rest
  in
  match last_live 0 None w.cps with
  | skipped, None ->
    if skipped > 0 then begin
      w.stats.Stats.publish_skipped_small <-
        w.stats.Stats.publish_skipped_small + 1;
      Trace.record w.tbuf Trace.Publish_skip skipped
    end
  | _, Some cp ->
    let seg = Trail.segment w.trail ~lo:cp.cp_trail ~hi:(Trail.size w.trail) in
    let saved = Array.map (fun (v : Term.var) -> v.Term.binding) seg in
    Array.iter (fun (v : Term.var) -> v.Term.binding <- None) seg;
    let chunks = chunk_alts w.sh.config.Config.chunk cp.cp_alts in
    let tasks =
      List.map
        (fun n_alts ->
          let table = Hashtbl.create 64 in
          let cells = ref 0 in
          let goal = snapshot_term table cells cp.cp_goal in
          let cont = snapshot_body table cells cp.cp_cont in
          w.stats.Stats.copies <- w.stats.Stats.copies + 1;
          w.stats.Stats.copied_cells <- w.stats.Stats.copied_cells + !cells;
          Metrics.hist_add w.shard.Metrics.s_copy_cells !cells;
          Trace.record w.tbuf Trace.Copy !cells;
          Node { n_goal = goal; n_alts; n_cont = cont })
        chunks
    in
    Array.iteri (fun i (v : Term.var) -> v.Term.binding <- saved.(i)) seg;
    cp.cp_alts <- [];
    w.live_alts <- w.live_alts - 1;
    Trace.record w.tbuf Trace.Publish (List.length tasks);
    List.iter
      (fun task ->
        (match task with
         | Node { n_alts; _ } ->
           Trace.record w.tbuf Trace.Task_spawn (List.length n_alts)
         | Root _ -> ());
        Atomic.incr w.sh.outstanding;
        (* forced preemption between the accounting and the push widens the
           window in which thieves observe outstanding > 0 with an empty
           deque — the termination-detection corner under test *)
        Chaos.preempt w.chaos;
        Deque.push_bottom w.sh.deques.(w.w_id) task)
      tasks

(* ------------------------------------------------------------------ *)
(* Resolution (private, no synchronization)                            *)
(* ------------------------------------------------------------------ *)

let call_builtin w goal =
  let steps0 = !(w.ctx.Builtins.steps) in
  let trail0 = Trail.size w.trail in
  let outcome = Builtins.call w.ctx goal in
  w.stats.Stats.builtin_calls <- w.stats.Stats.builtin_calls + 1;
  w.stats.Stats.unify_steps <-
    w.stats.Stats.unify_steps + !(w.ctx.Builtins.steps) - steps0;
  w.stats.Stats.trail_pushes <-
    w.stats.Stats.trail_pushes + max 0 (Trail.size w.trail - trail0);
  outcome

let try_clause w goal clause =
  w.stats.Stats.clause_tries <- w.stats.Stats.clause_tries + 1;
  let head, fresh = Clause.rename_head clause in
  let steps = ref 0 in
  let mark = Trail.mark w.trail in
  let ok = Unify.unify ~trail:w.trail ~steps head goal in
  w.stats.Stats.unify_steps <- w.stats.Stats.unify_steps + !steps;
  w.stats.Stats.trail_pushes <-
    w.stats.Stats.trail_pushes + (Trail.size w.trail - mark);
  if ok then Some (Clause.rename_body clause fresh)
  else begin
    w.stats.Stats.untrails <-
      w.stats.Stats.untrails + Trail.undo_to w.trail mark;
    None
  end

let push_cp w ~goal ~alts ~cont =
  w.stats.Stats.cp_allocs <- w.stats.Stats.cp_allocs + 1;
  w.stats.Stats.stack_words <-
    w.stats.Stats.stack_words + Ace_machine.Cost.words_choice_point;
  w.cps <-
    { cp_goal = goal; cp_alts = alts; cp_cont = cont; cp_trail = Trail.mark w.trail }
    :: w.cps;
  if alts <> [] then w.live_alts <- w.live_alts + 1

let record_solution w goal =
  let s = Term.copy_resolved goal in
  (* delayed publish of the solution itself: preempt before taking the
     lock, letting other domains race the limit check *)
  Chaos.preempt w.chaos;
  let sh = w.sh in
  Mutex.lock sh.sol_mutex;
  let accepted =
    match sh.config.Config.max_solutions with
    | Some limit when sh.sol_count >= limit -> false
    | Some limit ->
      sh.sols_rev <- s :: sh.sols_rev;
      sh.sol_count <- sh.sol_count + 1;
      if sh.sol_count >= limit then Atomic.set sh.stop true;
      true
    | None ->
      sh.sols_rev <- s :: sh.sols_rev;
      sh.sol_count <- sh.sol_count + 1;
      true
  in
  Mutex.unlock sh.sol_mutex;
  if accepted then begin
    w.stats.Stats.solutions <- w.stats.Stats.solutions + 1;
    Trace.record w.tbuf Trace.Solution 0
  end

let rec run_worker w (cont : Clause.body) : unit =
  if stopped w then ()
  else
    match cont with
    | [] -> backtrack w
    | Clause.Par bodies :: rest ->
      (* the or-engines run '&' sequentially *)
      run_worker w (List.concat bodies @ rest)
    | Clause.Call g :: rest -> dispatch w g rest

and dispatch w g cont =
  match Term.deref g with
  | Term.Struct (s, [| goal |]) when Symbol.equal s Symbol.solution ->
    record_solution w goal;
    backtrack w (* report-and-fail drives the full search *)
  | Term.Atom s when Symbol.equal s Symbol.cut ->
    Errors.error "control construct %s not supported inside the or-parallel engine"
      (Ace_term.Pp.to_string g)
  | Term.Struct (s, _)
    when Symbol.equal s Symbol.semicolon
         || Symbol.equal s Symbol.arrow
         || Symbol.equal s Symbol.naf ->
    Errors.error "control construct %s not supported inside the or-parallel engine"
      (Ace_term.Pp.to_string g)
  | Term.Struct (s, [| _; _ |])
    when Symbol.equal s Symbol.comma || Symbol.equal s Symbol.amp ->
    run_worker w (Clause.compile_body g @ cont)
  | Term.Struct (s, [| g |]) when Symbol.equal s Symbol.call ->
    dispatch w g cont
  | g -> (
    match call_builtin w g with
    | Builtins.Ok -> run_worker w cont
    | Builtins.Fail -> backtrack w
    | Builtins.Not_builtin -> user_call w g cont)

and user_call w g cont =
  match Database.lookup w.sh.db g with
  | None ->
    let name, arity =
      match Term.functor_name_of g with Some na -> na | None -> ("?", 0)
    in
    Errors.existence_error name arity
  | Some [] -> backtrack w
  | Some [ clause ] -> (
    (* determinate after indexing: no choice point *)
    match try_clause w g clause with
    | Some body -> run_worker w (body @ cont)
    | None -> backtrack w)
  | Some (clause :: rest) -> (
    push_cp w ~goal:g ~alts:rest ~cont;
    if should_publish w then publish w;
    match try_clause w g clause with
    | Some body -> run_worker w (body @ cont)
    | None -> backtrack w)

(* Private backtracking.  Taking the last alternative of an owned node
   trust-pops it and continues in place — the engine's structural LAO. *)
and backtrack w =
  w.stats.Stats.backtracks <- w.stats.Stats.backtracks + 1;
  if stopped w then ()
  else begin
    Chaos.preempt w.chaos;
    if should_publish w then publish w;
    match w.cps with
    | [] -> () (* task exhausted; the worker loop takes over *)
    | cp :: below -> (
      w.stats.Stats.bt_nodes_visited <- w.stats.Stats.bt_nodes_visited + 1;
      match cp.cp_alts with
      | [] ->
        (* published or spent node: pop and keep unwinding *)
        w.cps <- below;
        backtrack w
      | clause :: rest ->
        w.stats.Stats.untrails <-
          w.stats.Stats.untrails + Trail.undo_to w.trail cp.cp_trail;
        if rest = [] then begin
          w.cps <- below;
          w.live_alts <- w.live_alts - 1;
          w.stats.Stats.lao_hits <- w.stats.Stats.lao_hits + 1;
          Trace.record w.tbuf Trace.Lao_hit 0
        end
        else cp.cp_alts <- rest;
        (match try_clause w cp.cp_goal clause with
         | Some body -> run_worker w (body @ cp.cp_cont)
         | None -> backtrack w))
  end

(* ------------------------------------------------------------------ *)
(* Worker loop: run, pop own deque, steal                              *)
(* ------------------------------------------------------------------ *)

let run_task w task =
  let t0 = Trace.now_ns w.tbuf in
  Trace.record_at w.tbuf ~ts:t0 Trace.Task_start 0;
  (match task with
   | Root body -> run_worker w body
   | Node { n_goal; n_alts; n_cont } -> (
     match n_alts with
     | [] -> ()
     | first :: rest ->
       if rest <> [] then push_cp w ~goal:n_goal ~alts:rest ~cont:n_cont;
       (match try_clause w n_goal first with
        | Some body -> run_worker w (body @ n_cont)
        | None -> backtrack w)));
  (* reset private state (relevant after an early stop) *)
  ignore (Trail.undo_to w.trail 0);
  w.cps <- [];
  w.live_alts <- 0;
  let dt = Trace.now_ns w.tbuf - t0 in
  w.shard.Metrics.s_busy_ns <- w.shard.Metrics.s_busy_ns + dt;
  Metrics.hist_add w.shard.Metrics.s_task_ns dt;
  Trace.record w.tbuf Trace.Task_finish 0;
  Atomic.decr w.sh.outstanding

let rec main_loop w =
  if stopped w then ()
  else
    match Deque.pop_bottom w.sh.deques.(w.w_id) with
    | Some task ->
      (* re-acquiring own published work: no re-dispatch, no copy *)
      run_task w task;
      main_loop w
    | None -> steal_loop w

and steal_loop w =
  let sh = w.sh in
  let t0 = Trace.now_ns w.tbuf in
  Trace.record_at w.tbuf ~ts:t0 Trace.Idle_begin 0;
  let end_idle () =
    let dt = Trace.now_ns w.tbuf - t0 in
    w.shard.Metrics.s_idle_ns <- w.shard.Metrics.s_idle_ns + dt;
    Trace.record w.tbuf Trace.Idle_end 0
  in
  Atomic.incr sh.hungry;
  let p = Array.length sh.deques in
  let rec poll misses =
    if stopped w || Atomic.get sh.outstanding = 0 then begin
      Atomic.decr sh.hungry;
      end_idle ()
    end
    else begin
      let rec try_victims k =
        if k >= p then None
        else
          let victim = (w.w_id + 1 + k) mod p in
          (* injected steal failure: skip this victim as if empty; the
             task stays in the deque for a later attempt, so nothing is
             lost — only the acquisition order is perturbed *)
          if Chaos.steal_blocked w.chaos then try_victims (k + 1)
          else
            match Deque.steal_top sh.deques.(victim) with
            | Some task -> Some (victim, task)
            | None -> try_victims (k + 1)
      in
      match try_victims 0 with
      | Some (victim, task) ->
        Atomic.decr sh.hungry;
        w.stats.Stats.steals <- w.stats.Stats.steals + 1;
        Metrics.hist_add w.shard.Metrics.s_steal_tries (misses + 1);
        end_idle ();
        Trace.record w.tbuf Trace.Steal victim;
        (* preempt between grabbing the task and running it: the thief
           holds work while looking idle to the hungry counter *)
        Chaos.preempt w.chaos;
        run_task w task;
        main_loop w
      | None ->
        w.stats.Stats.polls <- w.stats.Stats.polls + 1;
        (* spin briefly, then sleep: on an oversubscribed host a spinning
           thief would steal timeslices from the worker producing its
           food *)
        if misses < 64 then Domain.cpu_relax ()
        else Unix.sleepf (if misses < 256 then 5e-5 else 5e-4);
        poll (misses + 1)
    end
  in
  poll 0

let worker_main w =
  try main_loop w
  with e ->
    (* first failure wins; stop the others and re-raise after the join *)
    ignore (Atomic.compare_and_set w.sh.failure None (Some e));
    Atomic.set w.sh.stop true

(* ------------------------------------------------------------------ *)
(* Public interface                                                    *)
(* ------------------------------------------------------------------ *)

type result = {
  solutions : Term.t list; (* discovery order; nondeterministic for P > 1 *)
  stats : Stats.t; (* merged run total *)
  metrics : Metrics.t; (* per-domain shards behind [stats] *)
  wall_ns : int; (* wall-clock nanoseconds, whole run including the join *)
  domains : int;
}

let solve ?output ?(trace = Trace.disabled) ?(chaos = Chaos.disabled)
    (config : Config.t) db goal =
  let config = Config.validate config in
  let p = config.Config.agents in
  let metrics = Metrics.create ~domains:p in
  let sh =
    {
      db;
      config;
      deques = Array.init p (fun _ -> Deque.create ());
      hungry = Atomic.make 0;
      outstanding = Atomic.make 1;
      stop = Atomic.make false;
      failure = Atomic.make None;
      sol_mutex = Mutex.create ();
      sols_rev = [];
      sol_count = 0;
    }
  in
  let workers =
    Array.init p (fun i ->
        let trail = Trail.create () in
        let out =
          match output with None -> None | Some _ -> Some (Buffer.create 64)
        in
        let shard = Metrics.shard metrics i in
        {
          w_id = i;
          sh;
          trail;
          shard;
          stats = shard.Metrics.s_stats;
          tbuf = Trace.buffer trace ~dom:i;
          ctx = Builtins.make_ctx ?output:out ~trail ();
          out;
          chaos = Chaos.agent chaos i;
          cps = [];
          live_alts = 0;
        })
  in
  let init =
    Clause.compile_body goal
    @ [ Clause.Call (Term.Struct (Symbol.solution, [| goal |])) ]
  in
  Deque.push_bottom sh.deques.(0) (Root init);
  let t0 = Unix.gettimeofday () in
  let domains =
    Array.init (p - 1) (fun i -> Domain.spawn (fun () -> worker_main workers.(i + 1)))
  in
  worker_main workers.(0);
  Array.iter Domain.join domains;
  let wall_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  (match Atomic.get sh.failure with Some e -> raise e | None -> ());
  (* the domains have joined: aggregating the single-writer shards is safe
     from here on (see the Stats.merge_into ownership contract) *)
  let stats = Metrics.total metrics in
  (* solutions were counted per worker and merged; keep the shared total *)
  stats.Stats.solutions <- sh.sol_count;
  (match output with
   | None -> ()
   | Some buf ->
     Array.iter
       (fun w ->
         match w.out with
         | Some b -> Buffer.add_buffer buf b
         | None -> ())
       workers);
  { solutions = List.rev sh.sols_rev; stats; metrics; wall_ns; domains = p }
