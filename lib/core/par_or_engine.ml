(* Hardware and+or parallel engine: the wall-clock twin of {!Or_engine}
   (which reproduces the paper's numbers on a deterministic simulator),
   extended with &ACE-style and-parallelism on OCaml 5 domains.

   Or-parallelism is the MUSE environment-copying model on a
   work-stealing scheduler.  Each worker (one per domain) owns a private
   machine — choice points, trail, its own term copies — and shares only
   the read-only database, so forward execution and local backtracking
   never synchronize.  Unexplored alternatives are published on demand:
   while some worker is hungry, a running worker snapshots its
   bottom-most live choice point (the biggest unexplored subtree) at its
   creation state — trail segment above its mark temporarily unwound,
   MUSE's incremental copy — into self-contained tasks on its deque,
   throttled by the hungry count so a saturated machine runs at
   private-backtracking speed with zero copies.  The paper's LAO schema
   is structural: taking the last alternative of an owned node trust-pops
   it and continues in place ([lao_hits]); only published nodes pay the
   copy.  Thieves steal oldest-first (biggest subtree); owners pop
   newest-first (cache-warm, no copy).

   And-parallelism ([config.par_and]): a parcall whose branches are
   strictly independent at runtime ({!Kernel.Parcall.slot_tuples})
   allocates a heap frame with one slot per branch; non-first slots are
   offered to thieves as [Slot] tasks through the same deques.  Each slot
   enumerates all its solutions on a private sub-machine, recording its
   free-variable tuple per solution; an empty slot fails the frame and
   kills the siblings (inside failure).  The join replays the cross
   product of recorded tuples through an ordinary — hence or-publishable
   — choice point whose alternatives are join rows, trading the paper's
   marker-per-slot recomputation for enumerate-once / join-by-unification
   with one atomic per slot.  Frame setup is guarded by the schemas:
   sequentialization below [seq_threshold], LPCO flattening of nested
   parcalls, SPO skipping the frame while nobody is hungry, and PDO
   steering the owner to the sequentially-next free slot.  Slot
   sub-machines do not or-publish (their solutions join locally); nested
   parcalls inside a slot do spawn further [Slot] tasks.

   Termination: an outstanding-task counter (root = 1, each published
   task one more), decremented when a task's subtree is exhausted; a
   [Slot] already run by its frame's owner is discarded on pop.  Idle
   workers spin with [Domain.cpu_relax] until the counter hits zero or a
   solution limit stops the run.  Cut / if-then-else / negation are
   rejected; solutions arrive through a mutex-guarded channel. *)

module Term = Ace_term.Term
module Trail = Ace_term.Trail
module Clause = Ace_lang.Clause
module Code = Ace_lang.Code
module Database = Ace_lang.Database
module Table = Ace_lang.Table
module Stats = Ace_machine.Stats
module Config = Ace_machine.Config
module Deque = Ace_sched.Deque
module Chaos = Ace_sched.Chaos
module Trace = Ace_obs.Trace
module Metrics = Ace_obs.Metrics
module Prof = Ace_obs.Prof
module Schema = Kernel.Schema

(* An alternative of a choice point: a program clause, or a recorded
   and-parallel join row to unify the tuple template against. *)
type alt =
  | Aclause of Clause.t
  | Acombo of Term.t

(* A task is a self-contained unit of work: or-tasks carry private
   copies; a [Slot] task is claimed by CAS (the frame owner may get
   there first, making the deque entry stale). *)
type task =
  | Root of Clause.body
  | Node of {
      n_goal : Term.t;       (* snapshot of the choice point's goal *)
      n_alts : alt list;     (* the untried alternatives, >= 1 *)
      n_cont : Clause.body;  (* snapshot of its continuation *)
    }
  | Slot of pslot

and pslot = {
  ps_state : int Atomic.t;  (* 0 = free, 1 = running, 2 = finished *)
  ps_frame : pframe;
  ps_body : Clause.body;
  ps_tuple : Term.t;  (* '$partuple' over the branch's free variables *)
  mutable ps_sols : Term.t list;
    (* recorded tuple snapshots, newest first; written only by the
       claiming worker, published to the owner by [ps_state := 2] *)
}

and pframe = {
  pf_id : int;
  pf_failed : bool Atomic.t;  (* inside failure: some slot had no solution *)
}

type cp = {
  cp_goal : Term.t;
  mutable cp_alts : alt list;
  cp_cont : Clause.body;
  cp_trail : int;
}

type shared = {
  db : Database.t;
  table : Table.t; (* shared answer table for tabled predicates (locked) *)
  config : Config.t;
  deques : task Deque.t array;
  hungry : int Atomic.t;      (* workers currently idle and stealing *)
  outstanding : int Atomic.t; (* tasks created but not yet exhausted *)
  frame_ids : int Atomic.t;
  cancel : Cancel.t;
    (* the generalized kill switch: polled through [stopped] at the same
       chokepoints as [stop], folded into [stop] once fired *)
  stop : bool Atomic.t;
  failure : exn option Atomic.t; (* first worker exception, re-raised *)
  sol_mutex : Mutex.t;
  mutable sols_rev : Term.t list; (* guarded by [sol_mutex] *)
  mutable sol_count : int;        (* guarded by [sol_mutex] *)
}

(* One resolution machine: the worker's root search, or a parcall slot's
   private enumeration.  Either way the state is private to the running
   worker. *)
type mach = {
  m_trail : Trail.t;
  m_ctx : Builtins.ctx;
  mutable m_cps : cp list; (* newest first *)
  mutable m_live : int;    (* choice points with untried alternatives *)
  m_slot : pslot option;   (* Some: slot enumeration (no or-publishing) *)
}

type worker = {
  w_id : int;
  sh : shared;
  shard : Metrics.shard;
    (* worker-private metrics; single-writer, aggregated after the join *)
  stats : Stats.t; (* alias of [shard.s_stats], for the hot-path updates *)
  tbuf : Trace.buffer; (* worker-private trace ring ([Trace.null] when off) *)
  out : Buffer.t option; (* worker-private output, appended after the join *)
  chaos : Chaos.agent;
    (* per-worker fault-injection stream ([Chaos.null_agent] when off) *)
  root : mach;
  w_prof : Prof.shard;
    (* worker-private profiler shard ([Prof.null] when profiling is off) *)
  w_scratch : Code.scratch;
    (* domain-private frame buffer + argument registers; shared by the
       root machine and slot sub-machines (register use never spans a
       machine switch) *)
}

let stopped w =
  Atomic.get w.sh.stop
  || (Cancel.poll w.sh.cancel
      && begin
           (* fold into the atomic flag so siblings stop on their next
              check even if their own poll is decimated *)
           Atomic.set w.sh.stop true;
           true
         end)

(* A slot enumeration aborts as soon as a sibling fails the frame. *)
let aborted w m =
  stopped w
  ||
  match m.m_slot with
  | Some s -> Atomic.get s.ps_frame.pf_failed
  | None -> false

let make_mach ?slot ?output () =
  let trail = Trail.create () in
  {
    m_trail = trail;
    m_ctx = Builtins.make_ctx ?output ~trail ();
    m_cps = [];
    m_live = 0;
    m_slot = slot;
  }

(* The kernel resolver instantiated for this engine: real time instead of
   abstract cycles, so charging is a no-op and only stats remain. *)
module K = Kernel.Resolver (struct
  type t = worker

  let name = "the or-parallel engine"
  let cost w = w.sh.config.Config.cost
  let stats w = w.stats
  let charge _ _ = ()
  let scratch w = w.w_scratch
  let prof w = w.w_prof
  let record w kind arg = Trace.record w.tbuf kind arg
  let cancel w = w.sh.cancel
end)

(* ------------------------------------------------------------------ *)
(* Publishing (the MUSE environment copy)                              *)
(* ------------------------------------------------------------------ *)

let snapshot_term = Kernel.Copy.snapshot_term
let snapshot_body = Kernel.Copy.snapshot_body

let snapshot_alt table cells = function
  | Aclause c -> Aclause c (* clause templates are immutable and shared *)
  | Acombo row -> Acombo (snapshot_term table cells row)

(* A worker publishes only from its root machine (slot solutions are
   joined locally), and only while someone is hungry and its deque is not
   already stocked for them: bounded copying, zero when saturated.  Chaos
   may veto an otherwise due publish (a delayed publish — the work stays
   private and a later opportunity ships it). *)
let should_publish w m =
  m.m_slot = None && m.m_live > 0
  && (let h = Atomic.get w.sh.hungry in
      h > 0 && Deque.length w.sh.deques.(w.w_id) < h)
  && not (Chaos.publish_delayed w.chaos)

(* Snapshots the bottom-most choice point whose untried-alternative count
   reaches the configured grain, at its creation state (trail segment above
   its mark temporarily unwound — the incremental copy), and pushes its
   alternatives as tasks of at most [chunk] alternatives each; every chunk
   gets its own snapshot inside the unwind window so tasks stay fully
   private to whichever worker takes them.  The node itself becomes
   exhausted for the owner.  Nodes below the grain are skipped — they stay
   reserved for private (cheap) backtracking. *)
let publish w m =
  let config = w.sh.config in
  let rec last_live skipped acc = function
    | [] -> (skipped, acc)
    | cp :: rest ->
      if cp.cp_alts = [] then last_live skipped acc rest
      else if Schema.publish_grain config ~nalts:(List.length cp.cp_alts) then
        last_live skipped (Some cp) rest
      else last_live (skipped + 1) acc rest
  in
  match last_live 0 None m.m_cps with
  | skipped, None ->
    if skipped > 0 then begin
      w.stats.Stats.publish_skipped_small <-
        w.stats.Stats.publish_skipped_small + 1;
      Trace.record w.tbuf Trace.Publish_skip skipped
    end
  | _, Some cp ->
    let seg = Trail.segment m.m_trail ~lo:cp.cp_trail ~hi:(Trail.size m.m_trail) in
    let saved = Array.map (fun (v : Term.var) -> v.Term.binding) seg in
    Array.iter (fun (v : Term.var) -> v.Term.binding <- None) seg;
    let chunks = Schema.chunk_alts config cp.cp_alts in
    let tasks =
      List.map
        (fun alts ->
          let table = Hashtbl.create 64 in
          let cells = ref 0 in
          let goal = snapshot_term table cells cp.cp_goal in
          let n_alts = List.map (snapshot_alt table cells) alts in
          let cont = snapshot_body table cells cp.cp_cont in
          w.stats.Stats.copies <- w.stats.Stats.copies + 1;
          w.stats.Stats.copied_cells <- w.stats.Stats.copied_cells + !cells;
          if Prof.live w.w_prof then Prof.copied w.w_prof !cells;
          Metrics.hist_add w.shard.Metrics.s_copy_cells !cells;
          Trace.record w.tbuf Trace.Copy !cells;
          Node { n_goal = goal; n_alts; n_cont = cont })
        chunks
    in
    Array.iteri (fun i (v : Term.var) -> v.Term.binding <- saved.(i)) seg;
    cp.cp_alts <- [];
    m.m_live <- m.m_live - 1;
    if Prof.live w.w_prof then Prof.spawned w.w_prof (List.length tasks);
    Trace.record w.tbuf Trace.Publish (List.length tasks);
    List.iter
      (fun task ->
        (match task with
         | Node { n_alts; _ } ->
           Trace.record w.tbuf Trace.Task_spawn (List.length n_alts)
         | Root _ | Slot _ -> ());
        Atomic.incr w.sh.outstanding;
        (* forced preemption between the accounting and the push widens the
           window in which thieves observe outstanding > 0 with an empty
           deque — the termination-detection corner under test *)
        Chaos.preempt w.chaos;
        Deque.push_bottom w.sh.deques.(w.w_id) task)
      tasks

(* ------------------------------------------------------------------ *)
(* Resolution (private, no synchronization)                            *)
(* ------------------------------------------------------------------ *)

let try_alt w m goal = function
  | Aclause clause ->
    K.resolve w ~ctx:m.m_ctx ~compiled:w.sh.config.Config.compile
      ~trail:m.m_trail goal clause
  | Acombo row ->
    (* join replay: bind the tuple template to one cross-product row *)
    if K.unify_goal w ~trail:m.m_trail goal row then Kernel.R_body []
    else Kernel.R_fail

let push_cp w m ~goal ~alts ~cont =
  w.stats.Stats.cp_allocs <- w.stats.Stats.cp_allocs + 1;
  w.stats.Stats.stack_words <-
    w.stats.Stats.stack_words + Ace_machine.Cost.words_choice_point;
  m.m_cps <-
    { cp_goal = goal; cp_alts = alts; cp_cont = cont; cp_trail = Trail.mark m.m_trail }
    :: m.m_cps;
  if alts <> [] then m.m_live <- m.m_live + 1

let record_solution w goal =
  let s = Term.copy_resolved goal in
  (* delayed publish of the solution itself: preempt before taking the
     lock, letting other domains race the limit check *)
  Chaos.preempt w.chaos;
  let sh = w.sh in
  Mutex.lock sh.sol_mutex;
  let accepted =
    match sh.config.Config.max_solutions with
    | Some limit when sh.sol_count >= limit -> false
    | Some limit ->
      sh.sols_rev <- s :: sh.sols_rev;
      sh.sol_count <- sh.sol_count + 1;
      if sh.sol_count >= limit then Atomic.set sh.stop true;
      true
    | None ->
      sh.sols_rev <- s :: sh.sols_rev;
      sh.sol_count <- sh.sol_count + 1;
      true
  in
  Mutex.unlock sh.sol_mutex;
  if accepted then begin
    w.stats.Stats.solutions <- w.stats.Stats.solutions + 1;
    Trace.record w.tbuf Trace.Solution 0
  end

let rec run_mach w m (cont : Clause.body) : unit =
  if aborted w m then ()
  else
    match cont with
    | [] ->
      (* root: only reachable without the sentinel — treat as done.
         Slot: one complete solution of the branch — record its tuple. *)
      (match m.m_slot with
       | Some s -> s.ps_sols <- Term.copy_resolved s.ps_tuple :: s.ps_sols
       | None -> ());
      backtrack w m
    | Clause.Par bodies :: rest -> exec_parcall w m bodies rest
    | Clause.Call g :: rest -> dispatch w m g rest
    | Clause.Exec xf :: rest -> exec_frame w m xf rest

(* Resumes a compiled clause body from its saved pc.  No environment
   trimming here: choice points of this machine may resume the frame at
   an earlier pc, and published snapshots may replay it. *)
and exec_frame w m xf cont =
  match K.exec_body w ~ctx:m.m_ctx xf with
  | Kernel.Ex_fail -> backtrack w m
  | Kernel.Ex_done -> run_mach w m cont
  | Kernel.Ex_goal (g, pc) -> dispatch w m g (Kernel.exec_cont xf pc cont)
  | Kernel.Ex_par (bodies, pc) ->
    exec_parcall w m bodies (Kernel.exec_cont xf pc cont)
  | Kernel.Ex_call (sym, arity, pc, _live) ->
    user_call_regs w m sym arity (Kernel.exec_cont xf pc cont)
  | Kernel.Ex_exec (sym, arity) -> user_call_regs w m sym arity cont

(* Schedules what one clause try resolved to; [R_exec] re-enters clause
   selection straight from the registers (last-call optimization). *)
and continue w m resolved cont =
  match resolved with
  | Kernel.R_fail -> backtrack w m
  | Kernel.R_body body -> run_mach w m (body @ cont)
  | Kernel.R_exec (sym, arity) -> user_call_regs w m sym arity cont

and user_call_regs w m sym arity cont =
  if aborted w m then ()
  else
    let regs = w.w_scratch.Code.s_regs in
    if Database.is_tabled w.sh.db sym arity then
      (* materialize the register call: tabled answers must outlive the
         registers, and the table keys on the goal term *)
      user_call w m (Kernel.goal_of_regs sym arity regs) cont
    else
    match K.select_args w w.sh.db sym arity regs with
    | [] -> backtrack w m
    | [ clause ] ->
      continue w m
        (K.try_code_args w ~ctx:m.m_ctx ~trail:m.m_trail regs clause)
        cont
    | clause :: rest ->
      (* nondeterminate: materialize the goal once — the alternatives in
         the (publishable) choice point must outlive the registers *)
      let g = Kernel.goal_of_regs sym arity regs in
      push_cp w m ~goal:g ~alts:(List.map (fun c -> Aclause c) rest) ~cont;
      if should_publish w m then publish w m;
      continue w m
        (K.resolve w ~ctx:m.m_ctx ~compiled:w.sh.config.Config.compile
           ~trail:m.m_trail g clause)
        cont

and dispatch w m g cont =
  let g = Term.deref g in
  if Kernel.is_plain g then
    (* the hot case, allocation-free: a plain user or builtin call *)
    match K.call_builtin w m.m_ctx g with
    | Builtins.Ok -> run_mach w m cont
    | Builtins.Fail -> backtrack w m
    | Builtins.Not_builtin -> user_call w m g cont
  else
    dispatch_control w m g cont

and dispatch_control w m g cont =
  match Kernel.classify g with
  | Kernel.Sentinel goal ->
    record_solution w goal;
    backtrack w m (* report-and-fail drives the full search *)
  | Kernel.Cut | Kernel.Disj _ | Kernel.Ite _ | Kernel.Naf _ ->
    K.unsupported w (Term.deref g)
  | Kernel.Conj g | Kernel.Amp g -> run_mach w m (Clause.compile_body g @ cont)
  | Kernel.Meta g -> dispatch w m g cont
  | Kernel.Goal g -> (
    match K.call_builtin w m.m_ctx g with
    | Builtins.Ok -> run_mach w m cont
    | Builtins.Fail -> backtrack w m
    | Builtins.Not_builtin -> user_call w m g cont)

and user_call w m g cont =
  let compiled = w.sh.config.Config.compile in
  let clauses =
    (* tabled predicates answer from the shared (locked) table; the
       kernel completes the subgoal first when needed.  Workers never
       block on each other: concurrent callers evaluate redundantly and
       deduplicate through the shared answer trie. *)
    if Database.is_tabled_goal w.sh.db g then
      K.table_call w ~table:w.sh.table ~ctx:m.m_ctx ~compiled ~db:w.sh.db g
    else K.select w ~compiled w.sh.db g
  in
  match clauses with
  | [] -> backtrack w m
  | [ clause ] ->
    (* determinate after indexing: no choice point *)
    continue w m (K.resolve w ~ctx:m.m_ctx ~compiled ~trail:m.m_trail g clause)
      cont
  | clause :: rest ->
    push_cp w m ~goal:g ~alts:(List.map (fun c -> Aclause c) rest) ~cont;
    if should_publish w m then publish w m;
    continue w m (K.resolve w ~ctx:m.m_ctx ~compiled ~trail:m.m_trail g clause)
      cont

(* Private backtracking.  Taking the last alternative of an owned node
   trust-pops it and continues in place — the engine's structural LAO. *)
and backtrack w m =
  w.stats.Stats.backtracks <- w.stats.Stats.backtracks + 1;
  if aborted w m then ()
  else begin
    Chaos.preempt w.chaos;
    if should_publish w m then publish w m;
    match m.m_cps with
    | [] -> () (* machine exhausted; the worker/slot loop takes over *)
    | cp :: below -> (
      w.stats.Stats.bt_nodes_visited <- w.stats.Stats.bt_nodes_visited + 1;
      match cp.cp_alts with
      | [] ->
        (* published or spent node: pop and keep unwinding *)
        if Prof.live w.w_prof then
          Prof.fail w.w_prof (Prof.key_of_term cp.cp_goal);
        m.m_cps <- below;
        backtrack w m
      | alt :: rest ->
        if Prof.live w.w_prof then
          Prof.redo w.w_prof (Prof.key_of_term cp.cp_goal);
        w.stats.Stats.untrails <-
          w.stats.Stats.untrails + Trail.undo_to m.m_trail cp.cp_trail;
        if rest = [] then begin
          m.m_cps <- below;
          m.m_live <- m.m_live - 1;
          w.stats.Stats.lao_hits <- w.stats.Stats.lao_hits + 1;
          Trace.record w.tbuf Trace.Lao_hit 0
        end
        else begin
          cp.cp_alts <- rest;
          w.stats.Stats.cp_updates <- w.stats.Stats.cp_updates + 1
        end;
        continue w m (try_alt w m cp.cp_goal alt) cp.cp_cont)
  end

(* ------------------------------------------------------------------ *)
(* And-parallel parcall frames                                         *)
(* ------------------------------------------------------------------ *)

(* Enumerates one slot to exhaustion on a private sub-machine.  Runs on
   whichever worker claimed the slot (owner in place, or a thief through
   a [Slot] task). *)
and run_pslot w s =
  Trace.record w.tbuf Trace.Task_start s.ps_frame.pf_id;
  w.stats.Stats.task_switches <- w.stats.Stats.task_switches + 1;
  let m = make_mach ~slot:s ?output:w.out () in
  run_mach w m s.ps_body;
  ignore (Trail.undo_to m.m_trail 0);
  if s.ps_sols = [] && not (stopped w) then begin
    (* inside failure (or a sibling already failed): kill the frame *)
    Atomic.set s.ps_frame.pf_failed true;
    w.stats.Stats.kills <- w.stats.Stats.kills + 1
  end;
  Atomic.set s.ps_state 2;
  Trace.record w.tbuf Trace.Task_finish s.ps_frame.pf_id

(* A parallel conjunction.  Without [par_and] (or when a schema decision
   says so) it runs as a plain sequential conjunction on the current
   machine. *)
and exec_parcall w m bodies cont =
  let config = w.sh.config in
  let sequential () = run_mach w m (List.concat bodies @ cont) in
  if not config.Config.par_and then sequential ()
  else if
    config.Config.seq_threshold > 0 && Schema.sequentialize config bodies
  then begin
    w.stats.Stats.seq_hits <- w.stats.Stats.seq_hits + 1;
    sequential ()
  end
  else begin
    let bodies, splices = Schema.lpco_flatten config bodies in
    if splices > 0 then begin
      w.stats.Stats.lpco_hits <- w.stats.Stats.lpco_hits + splices;
      w.stats.Stats.frames_avoided <- w.stats.Stats.frames_avoided + splices;
      Trace.record w.tbuf Trace.Lpco_hit splices
    end;
    let sequential () = run_mach w m (List.concat bodies @ cont) in
    if Schema.spo_inline config ~hungry:(Atomic.get w.sh.hungry) then begin
      (* SPO, procrastinated to frame granularity: nobody to share with,
         so skip the parcall-frame setup entirely *)
      w.stats.Stats.spo_hits <- w.stats.Stats.spo_hits + 1;
      w.stats.Stats.frames_avoided <- w.stats.Stats.frames_avoided + 1;
      Trace.record w.tbuf Trace.Spo_hit 0;
      sequential ()
    end
    else
      match Kernel.Parcall.slot_tuples bodies with
      | None -> sequential () (* shared variable: not strictly independent *)
      | Some tuples when Array.length tuples < 2 -> sequential ()
      | Some tuples -> run_parcall w m bodies tuples cont
  end

and run_parcall w m bodies tuples cont =
  let n = Array.length tuples in
  let fr =
    { pf_id = Atomic.fetch_and_add w.sh.frame_ids 1;
      pf_failed = Atomic.make false }
  in
  let bodies = Array.of_list bodies in
  let slots =
    Array.init n (fun i ->
        {
          ps_state = Atomic.make (if i = 0 then 1 else 0);
          ps_frame = fr;
          ps_body = bodies.(i);
          ps_tuple = tuples.(i);
          ps_sols = [];
        })
  in
  w.stats.Stats.frames <- w.stats.Stats.frames + 1;
  w.stats.Stats.slots <- w.stats.Stats.slots + n;
  (if Prof.live w.w_prof then begin
     Prof.slots w.w_prof n;
     Prof.spawned w.w_prof (n - 1)
   end);
  (* Offer every non-first slot to the thieves.  Pushed highest-index
     first so the oldest deque entry (what a thief steals first) is the
     slot farthest from the owner's own PDO-ordered claims. *)
  for i = n - 1 downto 1 do
    Atomic.incr w.sh.outstanding;
    Trace.record w.tbuf Trace.Task_spawn fr.pf_id;
    Chaos.preempt w.chaos;
    Deque.push_bottom w.sh.deques.(w.w_id) (Slot slots.(i))
  done;
  (* The owner runs slot 0 in place (no markers, as in the paper), then
     claims whatever is still free, sequentially-next slot first. *)
  run_pslot w slots.(0);
  let config = w.sh.config in
  let last = ref (Some (fr.pf_id, 0)) in
  let claim i = Atomic.compare_and_set slots.(i).ps_state 0 1 in
  let rec help () =
    if stopped w then ()
    else begin
      let next = match !last with Some (_, i) -> i + 1 | None -> n in
      let pick =
        if
          next < n
          && Schema.pdo_contiguous config ~last:!last ~next:(fr.pf_id, next)
          && claim next
        then begin
          w.stats.Stats.pdo_hits <- w.stats.Stats.pdo_hits + 1;
          Trace.record w.tbuf Trace.Pdo_hit fr.pf_id;
          Some next
        end
        else begin
          let rec scan i =
            if i >= n then None else if claim i then Some i else scan (i + 1)
          in
          scan 1
        end
      in
      match pick with
      | Some i ->
        run_pslot w slots.(i);
        last := Some (fr.pf_id, i);
        help ()
      | None ->
        (* every slot claimed; wait for stragglers on other domains *)
        let rec wait i =
          if i >= n || stopped w then ()
          else if Atomic.get slots.(i).ps_state = 2 then wait (i + 1)
          else begin
            Chaos.preempt w.chaos;
            Domain.cpu_relax ();
            wait i
          end
        in
        wait 0
    end
  in
  help ();
  if stopped w then ()
  else if Atomic.get fr.pf_failed then backtrack w m
  else begin
    (* Join: replay the cross product of the recorded tuples, rightmost
       slot fastest (the sequential enumeration order).  The rows become
       ordinary choice-point alternatives, so a wide cross product is
       or-publishable like any other node. *)
    let rows = Kernel.Parcall.cross (Array.map (fun s -> List.rev s.ps_sols) slots) in
    match rows with
    | [] -> backtrack w m
    | first :: rest ->
      let template = Kernel.Parcall.template tuples in
      if rest <> [] then begin
        push_cp w m ~goal:template ~alts:(List.map (fun r -> Acombo r) rest) ~cont;
        if should_publish w m then publish w m
      end;
      if K.unify_goal w ~trail:m.m_trail template first then run_mach w m cont
      else backtrack w m
  end

(* ------------------------------------------------------------------ *)
(* Worker loop: run, pop own deque, steal                              *)
(* ------------------------------------------------------------------ *)

let run_task w task =
  let t0 = Trace.now_ns w.tbuf in
  let ran =
    match task with
    | Root body ->
      Trace.record_at w.tbuf ~ts:t0 Trace.Task_start 0;
      run_mach w w.root body;
      (* reset private state (relevant after an early stop) *)
      ignore (Trail.undo_to w.root.m_trail 0);
      w.root.m_cps <- [];
      w.root.m_live <- 0;
      true
    | Node { n_goal; n_alts; n_cont } ->
      Trace.record_at w.tbuf ~ts:t0 Trace.Task_start 0;
      (match n_alts with
       | [] -> ()
       | first :: rest ->
         if rest <> [] then
           push_cp w w.root ~goal:n_goal ~alts:rest ~cont:n_cont;
         continue w w.root (try_alt w w.root n_goal first) n_cont);
      ignore (Trail.undo_to w.root.m_trail 0);
      w.root.m_cps <- [];
      w.root.m_live <- 0;
      true
    | Slot s ->
      (* claim by CAS: the frame owner may have run it already, leaving a
         stale deque entry to discard *)
      if Atomic.compare_and_set s.ps_state 0 1 then begin
        run_pslot w s;
        true
      end
      else false
  in
  if ran then begin
    let dt = Trace.now_ns w.tbuf - t0 in
    w.shard.Metrics.s_busy_ns <- w.shard.Metrics.s_busy_ns + dt;
    Metrics.hist_add w.shard.Metrics.s_task_ns dt;
    Trace.record w.tbuf Trace.Task_finish 0
  end;
  Atomic.decr w.sh.outstanding

let rec main_loop w =
  if stopped w then ()
  else
    match Deque.pop_bottom w.sh.deques.(w.w_id) with
    | Some task ->
      (* re-acquiring own published work: no re-dispatch, no copy *)
      run_task w task;
      main_loop w
    | None -> steal_loop w

and steal_loop w =
  let sh = w.sh in
  let t0 = Trace.now_ns w.tbuf in
  Trace.record_at w.tbuf ~ts:t0 Trace.Idle_begin 0;
  let end_idle () =
    let dt = Trace.now_ns w.tbuf - t0 in
    w.shard.Metrics.s_idle_ns <- w.shard.Metrics.s_idle_ns + dt;
    Trace.record w.tbuf Trace.Idle_end 0
  in
  Atomic.incr sh.hungry;
  let p = Array.length sh.deques in
  let rec poll misses =
    if stopped w || Atomic.get sh.outstanding = 0 then begin
      Atomic.decr sh.hungry;
      end_idle ()
    end
    else begin
      let rec try_victims k =
        if k >= p then None
        else
          let victim = (w.w_id + 1 + k) mod p in
          (* injected steal failure: skip this victim as if empty; the
             task stays in the deque for a later attempt, so nothing is
             lost — only the acquisition order is perturbed *)
          if Chaos.steal_blocked w.chaos then try_victims (k + 1)
          else
            match Deque.steal_top sh.deques.(victim) with
            | Some task -> Some (victim, task)
            | None -> try_victims (k + 1)
      in
      match try_victims 0 with
      | Some (victim, task) ->
        Atomic.decr sh.hungry;
        w.stats.Stats.steals <- w.stats.Stats.steals + 1;
        (if Prof.live w.w_prof then
           match task with
           | Node { n_goal; _ } ->
             let k = Prof.key_of_term n_goal in
             Prof.stole w.w_prof k;
             Prof.redo w.w_prof k
           | Slot s -> (
             match s.ps_body with
             | Clause.Call g :: _ ->
               let k = Prof.key_of_term g in
               Prof.stole w.w_prof k;
               Prof.redo w.w_prof k
             | _ -> ())
           | Root _ -> ());
        Metrics.hist_add w.shard.Metrics.s_steal_tries (misses + 1);
        end_idle ();
        Trace.record w.tbuf Trace.Steal victim;
        (* preempt between grabbing the task and running it: the thief
           holds work while looking idle to the hungry counter *)
        Chaos.preempt w.chaos;
        run_task w task;
        main_loop w
      | None ->
        w.stats.Stats.polls <- w.stats.Stats.polls + 1;
        (* spin briefly, then sleep: on an oversubscribed host a spinning
           thief would steal timeslices from the worker producing its
           food *)
        if misses < 64 then Domain.cpu_relax ()
        else Unix.sleepf (if misses < 256 then 5e-5 else 5e-4);
        poll (misses + 1)
    end
  in
  poll 0

let worker_main w =
  try main_loop w with
  | Cancel.Cancelled ->
    (* the kernel's tabling chokepoint unwound this worker: an orderly
       stop, not a failure — solutions already published stand *)
    Atomic.set w.sh.stop true
  | e ->
    (* first failure wins; stop the others and re-raise after the join *)
    ignore (Atomic.compare_and_set w.sh.failure None (Some e));
    Atomic.set w.sh.stop true

(* ------------------------------------------------------------------ *)
(* Public interface                                                    *)
(* ------------------------------------------------------------------ *)

type result = {
  solutions : Term.t list; (* discovery order; nondeterministic for P > 1 *)
  stats : Stats.t; (* merged run total *)
  metrics : Metrics.t; (* per-domain shards behind [stats] *)
  wall_ns : int; (* wall-clock nanoseconds, whole run including the join *)
  domains : int;
}

let solve ?output ?(trace = Trace.disabled) ?(chaos = Chaos.disabled)
    ?(prof = Prof.disabled) ?table ?(cancel = Cancel.none) (config : Config.t)
    db goal =
  let config = Config.validate config in
  let p = config.Config.agents in
  let metrics = Metrics.create ~domains:p in
  let sh =
    {
      db;
      table =
        (match table with
        | Some t -> t
        | None ->
          Table.create ~locked:true
            ~max_answers:config.Config.table_max_answers ());
      config;
      deques = Array.init p (fun _ -> Deque.create ());
      hungry = Atomic.make 0;
      outstanding = Atomic.make 1;
      frame_ids = Atomic.make 0;
      cancel;
      stop = Atomic.make false;
      failure = Atomic.make None;
      sol_mutex = Mutex.create ();
      sols_rev = [];
      sol_count = 0;
    }
  in
  let workers =
    Array.init p (fun i ->
        let out =
          match output with None -> None | Some _ -> Some (Buffer.create 64)
        in
        let shard = Metrics.shard metrics i in
        let tbuf = Trace.buffer trace ~dom:i in
        let w_prof =
          (* registered on the spawning domain, before the workers start:
             the profile registry is never touched concurrently *)
          if Prof.enabled prof then
            Prof.shard prof ~dom:i ~stats:shard.Metrics.s_stats
              ~clock:(fun () -> Trace.now_ns tbuf)
              ()
          else Prof.null
        in
        {
          w_id = i;
          sh;
          shard;
          stats = shard.Metrics.s_stats;
          tbuf;
          out;
          chaos = Chaos.agent chaos i;
          root = make_mach ?output:out ();
          w_prof;
          w_scratch = Code.create_scratch ();
        })
  in
  Deque.push_bottom sh.deques.(0) (Root (Kernel.sentinel_body goal));
  let t0 = Unix.gettimeofday () in
  let domains =
    Array.init (p - 1) (fun i -> Domain.spawn (fun () -> worker_main workers.(i + 1)))
  in
  worker_main workers.(0);
  Array.iter Domain.join domains;
  let wall_ns = int_of_float ((Unix.gettimeofday () -. t0) *. 1e9) in
  (match Atomic.get sh.failure with Some e -> raise e | None -> ());
  (* the domains have joined: aggregating the single-writer shards is safe
     from here on (see the Stats.merge_into ownership contract) *)
  let stats = Metrics.total metrics in
  (* solutions were counted per worker and merged; keep the shared total *)
  stats.Stats.solutions <- sh.sol_count;
  (match output with
   | None -> ()
   | Some buf ->
     Array.iter
       (fun w ->
         match w.out with
         | Some b -> Buffer.add_buffer buf b
         | None -> ())
       workers);
  { solutions = List.rev sh.sols_rev; stats; metrics; wall_ns; domains = p }
