(** The shared solver kernel.

    All four engines (sequential, simulated and-parallel, simulated
    or-parallel, multicore or+and) resolve goals the same way: classify
    the goal, dispatch builtins through {!Builtins}, look clauses up in
    the frozen database, unify a renamed head, and undo the trail on
    failure — while charging the {!Ace_machine.Cost} table and updating a
    {!Ace_machine.Stats} shard.  This module owns that common machinery,
    parameterized by a small {!SCHEDULER} signature so each engine keeps
    only its scheduling policy (stacks, stealing, frames, publication).

    The paper's optimization schemas (LPCO, LAO, SPO, PDO and the
    sequentialization/granularity schema) are exposed as pure,
    engine-agnostic decision functions in {!Schema}: an engine asks
    "should this fire here?" and implements only the mechanical
    consequence. *)

module Term = Ace_term.Term
module Trail = Ace_term.Trail
module Clause = Ace_lang.Clause
module Database = Ace_lang.Database
module Cost = Ace_machine.Cost
module Stats = Ace_machine.Stats
module Config = Ace_machine.Config

(** What an engine must provide for the kernel to account work against
    it.  [t] is the engine's per-execution-context handle (the machine
    for the sequential engine, the simulator state for the simulated
    engines, the worker for the multicore engine). *)
module type SCHEDULER = sig
  type t

  val name : string
  (** Used in "control construct ... not supported inside <name>"
      errors, e.g. ["the or-parallel engine"]. *)

  val cost : t -> Cost.t

  val stats : t -> Stats.t
  (** The stat shard work is attributed to right now (per simulated
      agent / per domain; single-writer). *)

  val charge : t -> int -> unit
  (** Abstract-cycle accounting.  The wall-clock engine passes a
      no-op. *)
end

(** Goal classification shared by every dispatch loop.  Constructors
    carry the decomposed subterms; [Goal] carries the dereferenced
    term. *)
type cls =
  | Cut
  | Conj of Term.t  (** a [','/2] goal, to be recompiled into the body *)
  | Amp of Term.t  (** a ['&'/2] goal (parallel conjunction) *)
  | Disj of Term.t * Term.t
  | Ite of Term.t * Term.t * Term.t  (** condition, then, else *)
  | Naf of Term.t
  | Meta of Term.t  (** [call/1] *)
  | Sentinel of Term.t  (** the ['$solution'/1] report-and-fail sentinel *)
  | Goal of Term.t

val classify : Term.t -> cls

(** True exactly when {!classify} would answer [Goal] — the argument
    must already be dereferenced.  Allocation-free, so dispatch loops
    test it before paying for a full classification (plain calls are the
    vast majority of dispatches). *)
val is_plain : Term.t -> bool

(** Builds the report-and-fail continuation for a whole-search engine:
    the compiled query followed by the ['$solution'] sentinel. *)
val sentinel_body : Term.t -> Clause.body

(** Merges per-agent stat shards into a fresh total (the shards must no
    longer be written; see the {!Stats.merge_into} ownership
    contract). *)
val merge_shards : Stats.t array -> Stats.t

module Resolver (S : SCHEDULER) : sig
  val call_builtin : S.t -> Builtins.ctx -> Term.t -> Builtins.outcome
  (** Runs a builtin, translating its unification/arithmetic work and
      trail growth into charges and stats. *)

  val try_clause : S.t -> trail:Trail.t -> Term.t -> Clause.t -> Clause.body option
  (** Unifies a renamed clause head against the goal; on success returns
      the instantiated body, on failure undoes the partial bindings
      (charged). *)

  val try_code : S.t -> trail:Trail.t -> Term.t -> Clause.t -> Clause.body option
  (** Compiled counterpart of {!try_clause}: executes the clause's flat
      instruction code ({!Ace_lang.Code}) against the goal arguments —
      same success/failure and trail contract, charged per executed
      instruction ([Cost.code_instr]) plus embedded unification steps. *)

  val resolve :
    S.t -> compiled:bool -> trail:Trail.t -> Term.t -> Clause.t -> Clause.body option
  (** {!try_code} when [compiled], {!try_clause} otherwise. *)

  val unify_goal : S.t -> trail:Trail.t -> Term.t -> Term.t -> bool
  (** Plain goal-level unification with the same accounting as a clause
      try (used to replay recorded and-parallel solutions); undoes on
      failure. *)

  val lookup : S.t -> Database.t -> Term.t -> Clause.t list
  (** Indexed clause lookup; raises the existence error for unknown
      procedures. *)

  val select : S.t -> compiled:bool -> Database.t -> Term.t -> Clause.t list
  (** Mode-aware {!lookup}: the compiled path selects through the
      deep-indexing dispatch tree ({!Database.lookup_code}), the
      interpreted path through first-argument indexing. *)

  val untrail : S.t -> Trail.t -> int -> unit
  (** [untrail s trail mark] undoes to [mark], charging per entry. *)

  val unsupported : S.t -> Term.t -> 'a
  (** Raises the "control construct not supported" engine error. *)
end

(** The paper's optimization schemas as pure decisions (unit-tested in
    [test/test_kernel.ml]); engines implement only the mechanics. *)
module Schema : sig
  val sequentialize : Config.t -> Clause.body list -> bool
  (** Granularity control (sequentialization schema, §4): true when the
      bounded term-size estimate of the parallel conjunction stays under
      [config.seq_threshold] — run it as a plain conjunction. *)

  val lpco_flatten : Config.t -> Clause.body list -> Clause.body list * int
  (** LPCO (§3.1) as a static flatten: a branch consisting solely of a
      nested parallel conjunction is spliced into the enclosing one.
      Returns the flattened branches and the number of splices (0 when
      the optimization is off or nothing matched). *)

  val spo_inline : Config.t -> hungry:int -> bool
  (** SPO (§4.1) as frame procrastination for the multicore engine: with
      no hungry worker there is nobody to share with, so skip the
      parcall-frame setup entirely and run in place. *)

  val pdo_contiguous : Config.t -> last:(int * int) option -> next:int * int -> bool
  (** PDO (§4.2): true when [next] (frame id, slot index) is the
      sequentially-next slot of the same frame [last] — the agent may
      continue without markers / with sequential preference. *)

  val publish_grain : Config.t -> nalts:int -> bool
  (** Or-parallel granularity: a node is worth publishing only with at
      least [config.grain] untried alternatives. *)

  val chunk_alts : Config.t -> 'a list -> 'a list list
  (** Splits published alternatives into runs of at most [config.chunk]
      (0 = one run). *)

  val lao_refurbish : Config.t -> top_exhausted:bool -> bool
  (** LAO (§3.2): reuse the exhausted top choice point in place instead
      of allocating a new node. *)
end

(** State copying shared by the copying engines: [snapshot_*] resolves
    bindings away (publishing self-contained tasks), [raw_*] preserves
    bindings so the receiving trail can undo them (MUSE stack copy).
    [cells] counts copied cells for cost accounting. *)
module Copy : sig
  type table = (int, Term.var) Hashtbl.t

  val snapshot_term : table -> int ref -> Term.t -> Term.t
  val snapshot_body : table -> int ref -> Clause.body -> Clause.body
  val raw_term : table -> int ref -> Term.t -> Term.t
  val raw_items : table -> int ref -> Clause.item list -> Clause.item list
  val raw_var : table -> int ref -> Term.var -> Term.var
end

(** Helpers for recomputation-free and-parallel joins: each parcall slot
    gets a tuple of the free variables of its body; slot solutions are
    recorded as snapshots of that tuple and joined by unifying the tuple
    template against every cross-product row. *)
module Parcall : sig
  val slot_tuples : Clause.body list -> Term.t array option
  (** Per-branch ['$partuple'] terms over the branch's free variables,
      or [None] when two branches share a free variable (not strictly
      independent — the caller must fall back to sequential
      execution). *)

  val template : Term.t array -> Term.t
  (** The ['$parjoin'] term over the live tuples, unified against each
      row. *)

  val cross : Term.t list array -> Term.t list
  (** All ['$parjoin'] rows of the per-slot solution lists, rightmost
      slot varying fastest (the sequential enumeration order). *)
end
