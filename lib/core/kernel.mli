(** The shared solver kernel.

    All four engines (sequential, simulated and-parallel, simulated
    or-parallel, multicore or+and) resolve goals the same way: classify
    the goal, dispatch builtins through {!Builtins}, look clauses up in
    the frozen database, unify a renamed head, and undo the trail on
    failure — while charging the {!Ace_machine.Cost} table and updating a
    {!Ace_machine.Stats} shard.  This module owns that common machinery,
    parameterized by a small {!SCHEDULER} signature so each engine keeps
    only its scheduling policy (stacks, stealing, frames, publication).

    The paper's optimization schemas (LPCO, LAO, SPO, PDO and the
    sequentialization/granularity schema) are exposed as pure,
    engine-agnostic decision functions in {!Schema}: an engine asks
    "should this fire here?" and implements only the mechanical
    consequence. *)

module Term = Ace_term.Term
module Trail = Ace_term.Trail
module Clause = Ace_lang.Clause
module Database = Ace_lang.Database
module Cost = Ace_machine.Cost
module Stats = Ace_machine.Stats
module Config = Ace_machine.Config

(** What an engine must provide for the kernel to account work against
    it.  [t] is the engine's per-execution-context handle (the machine
    for the sequential engine, the simulator state for the simulated
    engines, the worker for the multicore engine). *)
module type SCHEDULER = sig
  type t

  val name : string
  (** Used in "control construct ... not supported inside <name>"
      errors, e.g. ["the or-parallel engine"]. *)

  val cost : t -> Cost.t

  val stats : t -> Stats.t
  (** The stat shard work is attributed to right now (per simulated
      agent / per domain; single-writer). *)

  val charge : t -> int -> unit
  (** Abstract-cycle accounting.  The wall-clock engine passes a
      no-op. *)

  val scratch : t -> Ace_lang.Code.scratch
  (** The *current agent's* execution scratch (frame buffer + argument
      registers).  Must be private to the scheduling context the other
      accessors describe: one per simulated agent / per domain, so a
      simulated context switch at a [charge] point can never hand one
      agent's half-used registers to another. *)

  val prof : t -> Ace_obs.Prof.shard
  (** The current context's profiler shard ({!Ace_obs.Prof.null} when
      profiling is off — every kernel hook is then a load and a
      branch).  Same single-writer discipline as [stats] and
      [scratch]. *)

  val record : t -> Ace_obs.Trace.kind -> int -> unit
  (** Records a trace event into the current context's ring buffer (the
      simulated engines stamp it with their virtual clock).  A no-op
      when tracing is off. *)

  val cancel : t -> Cancel.t
  (** The run's cancellation token ({!Cancel.none} when the caller set
      no deadline).  The kernel polls it inside the tabling mini-solver
      — whose fixpoint rounds never pass through an engine chokepoint —
      and raises {!Cancel.Cancelled} out of {!Resolver.table_call},
      leaving the entry incomplete but consistent (monotone partial
      answers; the next caller re-evaluates). *)
end

(** Goal classification shared by every dispatch loop.  Constructors
    carry the decomposed subterms; [Goal] carries the dereferenced
    term. *)
type cls =
  | Cut
  | Conj of Term.t  (** a [','/2] goal, to be recompiled into the body *)
  | Amp of Term.t  (** a ['&'/2] goal (parallel conjunction) *)
  | Disj of Term.t * Term.t
  | Ite of Term.t * Term.t * Term.t  (** condition, then, else *)
  | Naf of Term.t
  | Meta of Term.t  (** [call/1] *)
  | Sentinel of Term.t  (** the ['$solution'/1] report-and-fail sentinel *)
  | Goal of Term.t

val classify : Term.t -> cls

(** True exactly when {!classify} would answer [Goal] — the argument
    must already be dereferenced.  Allocation-free, so dispatch loops
    test it before paying for a full classification (plain calls are the
    vast majority of dispatches). *)
val is_plain : Term.t -> bool

(** Builds the report-and-fail continuation for a whole-search engine:
    the compiled query followed by the ['$solution'] sentinel. *)
val sentinel_body : Term.t -> Clause.body

(** Merges per-agent stat shards into a fresh total (the shards must no
    longer be written; see the {!Stats.merge_into} ownership
    contract). *)
val merge_shards : Stats.t array -> Stats.t

(** What one clause try resolved to.  [R_exec] is the last-call case:
    the clause body ran to its final user call entirely on the scratch
    frame, the callee's arguments are loaded in the scratch registers
    ([SCHEDULER.scratch]), and nothing was stacked — the engine
    re-enters clause selection directly ({!Resolver.select_args}), so a
    determinate recursion loops in constant space. *)
type resolved =
  | R_fail
  | R_body of Clause.body
  | R_exec of Ace_term.Symbol.t * int  (** callee, arity; args in registers *)

(** Where {!Resolver.exec_body} stopped — the next thing the engine must
    schedule.  [Ex_call]/[Ex_exec] have the callee's arguments loaded in
    the scratch registers; [Ex_call] also carries the pc to resume the
    frame at and the number of frame slots still live there (see
    {!trim_env}). *)
type executed =
  | Ex_fail
  | Ex_done
  | Ex_call of Ace_term.Symbol.t * int * int * int
  | Ex_exec of Ace_term.Symbol.t * int
  | Ex_goal of Term.t * int
  | Ex_par of Clause.body list * int

(** The {!Ace_lang.Code.t} behind an [Exec] item's extensible code slot. *)
val code_of_frame : Clause.exec_frame -> Ace_lang.Code.t

(** [exec_cont xf pc rest] is the continuation that resumes [xf] at
    [pc] — just [rest] when the body is exhausted, so no empty frames
    are ever stacked (the last-call generalization). *)
val exec_cont : Clause.exec_frame -> int -> Clause.body -> Clause.body

(** Materializes a register call as a goal term (the multi-candidate
    slow path: goals inside choice points must outlive the registers). *)
val goal_of_regs : Ace_term.Symbol.t -> int -> Term.t array -> Term.t

(** [trim_env xf live] clears the dead slot suffix of the frame so the
    terms it holds become collectable.  The clears are not trailed:
    callers must prove the frame private (no choice point pushed since
    clause entry) before trimming. *)
val trim_env : Clause.exec_frame -> int -> unit

module Resolver (S : SCHEDULER) : sig
  val call_builtin : S.t -> Builtins.ctx -> Term.t -> Builtins.outcome
  (** Runs a builtin, translating its unification/arithmetic work and
      trail growth into charges and stats. *)

  val call_builtin_args :
    S.t -> Builtins.ctx -> Ace_term.Symbol.t -> int -> Term.t array ->
    Builtins.outcome
  (** {!call_builtin} with the arguments spread in a register file — no
      goal term exists on the compiled body path. *)

  val try_clause : S.t -> trail:Trail.t -> Term.t -> Clause.t -> resolved
  (** Unifies a renamed clause head against the goal; on success returns
      the instantiated body ([R_body], never [R_exec]), on failure
      undoes the partial bindings (charged). *)

  val try_code :
    S.t -> ctx:Builtins.ctx -> trail:Trail.t -> Term.t -> Clause.t -> resolved
  (** Compiled counterpart of {!try_clause}: executes the clause's flat
      instruction code ({!Ace_lang.Code}) against the goal arguments —
      same trail contract, charged per executed instruction
      ([Cost.code_instr]) plus embedded unification steps.  A
      scratch-eligible body (builtins + final execute) runs to its last
      call inline, yielding [R_exec] or [R_body []]; any other body
      escapes as one [Clause.Exec] item over a heap environment
      (counted in [Stats.env_allocs]). *)

  val try_code_args :
    S.t -> ctx:Builtins.ctx -> trail:Trail.t -> Term.t array -> Clause.t ->
    resolved
  (** {!try_code} with the caller's arguments spread in a register file
      (the [R_exec] fast path — no goal term on either side). *)

  val resolve :
    S.t -> ctx:Builtins.ctx -> compiled:bool -> trail:Trail.t -> Term.t ->
    Clause.t -> resolved
  (** {!try_code} when [compiled], {!try_clause} otherwise. *)

  val exec_body : S.t -> ctx:Builtins.ctx -> Clause.exec_frame -> executed
  (** Executes a compiled body from its saved pc: consecutive builtins
      run inline, the first step the kernel cannot finish is decoded for
      the engine.  On [Ex_fail] the trail is NOT unwound here — the
      engine backtracks to its own choice-point mark, exactly as when an
      interpreted body goal fails. *)

  val unify_goal : S.t -> trail:Trail.t -> Term.t -> Term.t -> bool
  (** Plain goal-level unification with the same accounting as a clause
      try (used to replay recorded and-parallel solutions); undoes on
      failure. *)

  val lookup : S.t -> Database.t -> Term.t -> Clause.t list
  (** Indexed clause lookup; raises the existence error for unknown
      procedures. *)

  val select : S.t -> compiled:bool -> Database.t -> Term.t -> Clause.t list
  (** Mode-aware {!lookup}: the compiled path selects through the
      deep-indexing dispatch tree ({!Database.lookup_code}), the
      interpreted path through first-argument indexing. *)

  val select_args :
    S.t -> Database.t -> Ace_term.Symbol.t -> int -> Term.t array ->
    Clause.t list
  (** Clause selection for a register call: the dispatch tree walked
      from the register file (compiled path only). *)

  val untrail : S.t -> Trail.t -> int -> unit
  (** [untrail s trail mark] undoes to [mark], charging per entry. *)

  val unsupported : S.t -> Term.t -> 'a
  (** Raises the "control construct not supported" engine error. *)

  val table_call :
    S.t -> table:Ace_lang.Table.t -> ctx:Builtins.ctx -> compiled:bool ->
    db:Database.t -> Term.t -> Clause.t list
  (** SLG evaluation of a tabled call.  Ensures the call's subgoal table
      is complete — when it is not, the calling worker evaluates the
      subgoal to completion right here with a private solver (fixpoint
      rounds over the subgoal's strongly-connected region; see
      DESIGN.md, "Tabling") — then returns the answers as pseudo-fact
      clauses, precompiled, so the engine enumerates them through its
      ordinary clause machinery.  Workers never block on each other:
      concurrent callers of an incomplete subgoal evaluate redundantly
      and deduplicate through the shared answer trie.  Raises the
      engine error when a subgoal exceeds [Table.max_answers]. *)
end

(** The paper's optimization schemas as pure decisions (unit-tested in
    [test/test_kernel.ml]); engines implement only the mechanics. *)
module Schema : sig
  val sequentialize : Config.t -> Clause.body list -> bool
  (** Granularity control (sequentialization schema, §4): true when the
      bounded term-size estimate of the parallel conjunction stays under
      [config.seq_threshold] — run it as a plain conjunction. *)

  val lpco_flatten : Config.t -> Clause.body list -> Clause.body list * int
  (** LPCO (§3.1) as a static flatten: a branch consisting solely of a
      nested parallel conjunction is spliced into the enclosing one.
      Returns the flattened branches and the number of splices (0 when
      the optimization is off or nothing matched). *)

  val spo_inline : Config.t -> hungry:int -> bool
  (** SPO (§4.1) as frame procrastination for the multicore engine: with
      no hungry worker there is nobody to share with, so skip the
      parcall-frame setup entirely and run in place. *)

  val pdo_contiguous : Config.t -> last:(int * int) option -> next:int * int -> bool
  (** PDO (§4.2): true when [next] (frame id, slot index) is the
      sequentially-next slot of the same frame [last] — the agent may
      continue without markers / with sequential preference. *)

  val publish_grain : Config.t -> nalts:int -> bool
  (** Or-parallel granularity: a node is worth publishing only with at
      least [config.grain] untried alternatives. *)

  val chunk_alts : Config.t -> 'a list -> 'a list list
  (** Splits published alternatives into runs of at most [config.chunk]
      (0 = one run). *)

  val lao_refurbish : Config.t -> top_exhausted:bool -> bool
  (** LAO (§3.2): reuse the exhausted top choice point in place instead
      of allocating a new node. *)
end

(** State copying shared by the copying engines: [snapshot_*] resolves
    bindings away (publishing self-contained tasks), [raw_*] preserves
    bindings so the receiving trail can undo them (MUSE stack copy).
    [cells] counts copied cells for cost accounting. *)
module Copy : sig
  type table = (int, Term.var) Hashtbl.t

  val snapshot_term : table -> int ref -> Term.t -> Term.t
  val snapshot_body : table -> int ref -> Clause.body -> Clause.body
  val raw_term : table -> int ref -> Term.t -> Term.t
  val raw_items : table -> int ref -> Clause.item list -> Clause.item list
  val raw_var : table -> int ref -> Term.var -> Term.var
end

(** Helpers for recomputation-free and-parallel joins: each parcall slot
    gets a tuple of the free variables of its body; slot solutions are
    recorded as snapshots of that tuple and joined by unifying the tuple
    template against every cross-product row. *)
module Parcall : sig
  val slot_tuples : Clause.body list -> Term.t array option
  (** Per-branch ['$partuple'] terms over the branch's free variables,
      or [None] when two branches share a free variable (not strictly
      independent — the caller must fall back to sequential
      execution). *)

  val template : Term.t array -> Term.t
  (** The ['$parjoin'] term over the live tuples, unified against each
      row. *)

  val cross : Term.t list array -> Term.t list
  (** All ['$parjoin'] rows of the per-slot solution lists, rightmost
      slot varying fastest (the sequential enumeration order). *)
end
