(* The and-parallel engine (&ACE).

   Mirrors the abstract machine of the paper's Figure 2: a parallel
   conjunction allocates a *parcall frame* with one slot per subgoal; idle
   agents steal slots; a stolen subgoal is delimited by an *input marker*
   and an *end marker* on the executing agent's stack.  Local
   nondeterminism inside a subgoal is handled by ordinary backtracking over
   choice points private to that subgoal's execution.

   Execution records ("execs").  Every subgoal execution owns a private
   trail and a private backtrack stack, so undoing one subgoal never has to
   skip over another agent's bindings — this plays the structural role of
   the paper's stack sections delimited by markers, while the *costs* of
   markers and of traversing them are charged explicitly from the cost
   model (and skipped when an optimization removes them).

   Independence semantics.  Subgoals of a parcall are assumed strictly
   independent (the paper's &ACE condition, established by annotation):
   - inside failure: if a subgoal fails outright, the whole parcall fails
     (siblings are killed) — re-trying a left sibling could not revive it;
   - outside backtracking: retry the rightmost slot with alternatives and
     *recompute* the slots to its right in parallel.

   Optimizations (all runtime-triggered, per the paper):
   - LPCO (§3.1): a determinate slot whose body *ends* in a parallel
     conjunction splices the nested subgoals into the enclosing frame as
     fresh slots inserted right after it, instead of allocating a nested
     frame.
   - SPO (§4.1): the input marker of a stolen subgoal is procrastinated
     until the subgoal is about to create a choice point; a subgoal that
     completes deterministically allocates no markers at all (only its
     trail section, recorded in the slot, is kept for later undoing).
   - PDO (§4.2): when the scheduler hands an agent the sequentially-next
     slot of the frame it just finished a slot of, no markers are placed
     between the two computations. *)

module Term = Ace_term.Term
module Trail = Ace_term.Trail
module Clause = Ace_lang.Clause
module Code = Ace_lang.Code
module Database = Ace_lang.Database
module Table = Ace_lang.Table
module Cost = Ace_machine.Cost
module Stats = Ace_machine.Stats
module Config = Ace_machine.Config
module Sim = Ace_sched.Sim
module Chaos = Ace_sched.Chaos
module Trace = Ace_obs.Trace
module Prof = Ace_obs.Prof

type acp = {
  a_goal : Term.t;
  mutable a_alts : Clause.t list;
  a_cont : Clause.item list;
  a_trail : int;
}

type entry =
  | Ecp of acp
  | Eframe of frame * int
    (* the int is the trail mark of the enclosing exec at the moment the
       frame completed: bindings made by the continuation after the parcall
       must be undone before outside-backtracking into the frame *)

and exec = {
  x_trail : Trail.t;
  mutable x_stack : entry list; (* newest first *)
  x_slot : slot option;         (* the slot this exec runs; None for root *)
  mutable x_input_marker : bool;
  mutable x_end_marker : bool;
  mutable x_marker_pending : bool; (* SPO: input marker procrastinated *)
  mutable x_det : bool;
    (* no choice point was created and no nested frame retains
       alternatives: backtracking over this execution is pure untrailing,
       so SPO may omit its markers *)
}

and frame = {
  f_id : int;
  mutable f_nondet : bool; (* some slot execution retains alternatives *)
  f_depth : int; (* 1 = outermost parcall *)
  f_parent : exec;
  f_owner : int; (* agent that allocated the frame *)
  mutable f_slots : slot array;
  mutable f_nslots : int;
  mutable f_pending : int; (* slots not yet Sdone *)
  mutable f_failing : bool;
  f_cont : Clause.item list; (* continuation after the parcall *)
}

and slot = {
  sl_frame : frame;
  mutable sl_index : int;
  sl_body : Clause.body;
  mutable sl_state : slot_state;
  mutable sl_exec : exec option;
  mutable sl_no_input : bool; (* slot 0 run in place by the owner *)
  mutable sl_spliced : slot list;
    (* LPCO: slots this (delegated) slot spliced into the frame; they leave
       the frame with it when it is reset for recomputation, and reappear
       when its re-execution splices again *)
}

and slot_state = Sfree | Srunning of int | Sdone | Sfailed | Skilled

exception Killed
(* Raised inside an agent when the frame of the slot it is executing (or an
   ancestor frame) starts failing; unwinds to [run_slot]. *)

type agent_state = {
  ag_id : int;
  mutable ag_last_done : slot option; (* for the PDO contiguity check *)
  mutable ag_pending_end : slot option; (* PDO: procrastinated end marker *)
}

type t = {
  db : Database.t;
  table : Table.t; (* shared answer table for tabled predicates *)
  config : Config.t;
  cost : Cost.t;
  shards : Stats.t array; (* one per simulated agent *)
  tbufs : Trace.buffer array; (* one trace ring per simulated agent *)
  chaos : Chaos.agent array; (* per-agent schedule-jitter streams *)
  sim : Sim.t;
  ctx : Builtins.ctx; (* trail field is unused; per-exec trails are passed *)
  agents : agent_state array;
  scratches : Code.scratch array; (* per-agent frame buffer + registers *)
  pshards : Prof.shard array; (* per-agent profiler shards *)
  mutable pool : frame list; (* frames that may have free slots, oldest first *)
  mutable frame_counter : int;
  cancel : Cancel.t;
    (* polled at the exec/backtrack chokepoints and the steal loop; once
       fired the run stops like a satisfied solution limit *)
  mutable finished : bool;
  mutable sol_count : int; (* global solution count (shards hold per-agent) *)
  mutable solutions : Term.t list; (* newest first *)
  goal : Term.t;
}

let debug = ref false

let dbg fmt =
  if !debug then Format.eprintf fmt
  else Format.ifprintf Format.err_formatter fmt

(* ------------------------------------------------------------------ *)
(* Charging helpers                                                    *)
(* ------------------------------------------------------------------ *)

let charge (_st : t) n = Sim.tick n

(* Counter updates are attributed to the agent the simulator is currently
   stepping: the coroutines run on one OS thread, so the "current agent"
   is exact at every update site (interleaving happens only at ticks). *)
let cur st =
  let c = Sim.current_agent st.sim in
  if c < 0 then 0 else c

let shard st = st.shards.(cur st)
let psh st = st.pshards.(cur st)

let tbuf st = st.tbufs.(cur st)

(* Events are stamped with the virtual clock, so an exported trace shows
   the simulated schedule. *)
let record_ev st kind arg = Trace.record_at (tbuf st) ~ts:(Sim.now st.sim) kind arg

(* Schedule-exploration yield site (see {!Or_engine.chaos_yield}): seeded
   extra virtual cycles deterministically select alternative interleavings.
   Never called between a state read and the claim that depends on it. *)
let chaos_yield st =
  let j = Chaos.jitter st.chaos.(cur st) in
  if j > 0 then Sim.tick j

let charge_cp_alloc st =
  charge st st.cost.Cost.cp_alloc;
  (shard st).Stats.cp_allocs <- (shard st).Stats.cp_allocs + 1;
  (shard st).Stats.stack_words <-
    (shard st).Stats.stack_words + Cost.words_choice_point

let charge_marker st ~input =
  charge st st.cost.Cost.marker_alloc;
  (shard st).Stats.stack_words <- (shard st).Stats.stack_words + Cost.words_marker;
  if input then (shard st).Stats.input_markers <- (shard st).Stats.input_markers + 1
  else (shard st).Stats.end_markers <- (shard st).Stats.end_markers + 1

(* The kernel resolver instantiated for this engine: charges tick the
   discrete-event simulator, stats go to the current agent's shard. *)
module K = Kernel.Resolver (struct
  type nonrec t = t

  let name = "the and-parallel engine"
  let cost st = st.cost
  let stats = shard
  let charge = charge

  (* One scratch per simulated agent: a context switch at a tick can
     never hand one agent's half-loaded registers to another. *)
  let scratch st = st.scratches.(cur st)
  let prof = psh
  let record = record_ev
  let cancel st = st.cancel
end)

(* Cancellation observed at a chokepoint: stop the simulation (pending
   coroutines are abandoned mid-flight, as on a solution limit) and
   unwind the current agent with [Cancel.Cancelled], caught at its body
   top — no failure path runs under a fired token, so the solutions
   already recorded stay exactly the ones completed before the abort. *)
let check_cancel st =
  if Cancel.poll st.cancel then begin
    st.finished <- true;
    Sim.stop st.sim;
    raise Cancel.Cancelled
  end

let charge_bt_node st =
  charge st st.cost.Cost.backtrack_node;
  (shard st).Stats.bt_nodes_visited <- (shard st).Stats.bt_nodes_visited + 1

(* ------------------------------------------------------------------ *)
(* Exec and frame bookkeeping                                          *)
(* ------------------------------------------------------------------ *)

let make_exec ?slot () =
  {
    x_trail = Trail.create ();
    x_stack = [];
    x_slot = slot;
    x_input_marker = false;
    x_end_marker = false;
    x_marker_pending = false;
    x_det = true;
  }

(* Fully undoes an execution: its own bindings plus, recursively, every
   nested frame still hanging on its backtrack stack.  Charges traversal
   per node crossed — this is the overhead LPCO's flattening removes. *)
let rec undo_exec st exec =
  List.iter
    (fun entry ->
      charge_bt_node st;
      match entry with
      | Ecp _ -> ()
      | Eframe (f, _) -> undo_frame st f)
    exec.x_stack;
  exec.x_stack <- [];
  K.untrail st exec.x_trail 0;
  (* crossing this exec's markers (if it has any) costs a node each *)
  if exec.x_input_marker then charge_bt_node st;
  if exec.x_end_marker then charge_bt_node st

and undo_frame st frame =
  charge st st.cost.Cost.frame_unwind;
  for i = 0 to frame.f_nslots - 1 do
    let slot = frame.f_slots.(i) in
    (match slot.sl_exec with
     | Some exec -> undo_exec st exec
     | None -> ());
    slot.sl_exec <- None;
    slot.sl_state <- Sfree
  done;
  frame.f_pending <- frame.f_nslots

let unregister_frame st frame =
  st.pool <- List.filter (fun f -> f.f_id <> frame.f_id) st.pool

let register_frame st frame =
  if not (List.exists (fun f -> f.f_id = frame.f_id) st.pool) then
    st.pool <- st.pool @ [ frame ]

let take_free_slot frame =
  let rec go i =
    if i >= frame.f_nslots then None
    else
      match frame.f_slots.(i).sl_state with
      | Sfree -> Some frame.f_slots.(i)
      | Srunning _ | Sdone | Sfailed | Skilled -> go (i + 1)
  in
  go 0

(* True when some frame on the path from [exec] to the root is failing:
   the current computation is doomed and should abort. *)
let rec aborting exec =
  match exec.x_slot with
  | None -> false
  | Some slot -> slot.sl_frame.f_failing || aborting slot.sl_frame.f_parent

(* ------------------------------------------------------------------ *)
(* Resolution within one exec                                          *)
(* ------------------------------------------------------------------ *)

let ctx_of st exec = { st.ctx with Builtins.trail = exec.x_trail }

let call_builtin st exec goal = K.call_builtin st (ctx_of st exec) goal

let try_clause st exec goal clause =
  K.resolve st ~ctx:(ctx_of st exec) ~compiled:st.config.Config.compile
    ~trail:exec.x_trail goal clause

(* SPO: the procrastinated input marker materialises just before the first
   choice point of the slot. *)
let materialize_input_marker st exec =
  if exec.x_marker_pending then begin
    exec.x_marker_pending <- false;
    exec.x_input_marker <- true;
    charge_marker st ~input:true
  end

let push_cp st exec ~goal ~alts ~cont =
  chaos_yield st;
  materialize_input_marker st exec;
  exec.x_det <- false;
  charge_cp_alloc st;
  exec.x_stack <-
    Ecp { a_goal = goal; a_alts = alts; a_cont = cont; a_trail = Trail.mark exec.x_trail }
    :: exec.x_stack

(* Forward execution inside [exec].  Returns true on success of the whole
   continuation.  May recursively create and wait on parcall frames.
   Raises [Killed] if an ancestor frame starts failing. *)
let rec exec_run st (agent : agent_state) exec (cont : Clause.item list) : bool =
  check_cancel st;
  if aborting exec then raise Killed;
  match cont with
  | [] -> true
  | Clause.Par bodies :: rest -> exec_parcall st agent exec bodies rest
  | Clause.Call g :: rest -> dispatch st agent exec g rest
  | Clause.Exec xf :: rest -> exec_frame_item st agent exec xf rest

(* Resumes a compiled clause body from its saved pc.  No environment
   trimming here: choice points on this exec's private stack may resume
   the frame at an earlier pc, and recomputation may replay it. *)
and exec_frame_item st agent exec xf cont =
  match K.exec_body st ~ctx:(ctx_of st exec) xf with
  | Kernel.Ex_fail -> exec_backtrack st agent exec
  | Kernel.Ex_done -> exec_run st agent exec cont
  | Kernel.Ex_goal (g, pc) ->
    dispatch st agent exec g (Kernel.exec_cont xf pc cont)
  | Kernel.Ex_par (bodies, pc) ->
    exec_parcall st agent exec bodies (Kernel.exec_cont xf pc cont)
  | Kernel.Ex_call (sym, arity, pc, _live) ->
    user_call_regs st agent exec sym arity (Kernel.exec_cont xf pc cont)
  | Kernel.Ex_exec (sym, arity) -> user_call_regs st agent exec sym arity cont

(* Schedules what one clause try resolved to; [R_exec] re-enters clause
   selection straight from the registers (last-call optimization). *)
and continue st agent exec resolved cont =
  match resolved with
  | Kernel.R_fail -> exec_backtrack st agent exec
  | Kernel.R_body body -> exec_run st agent exec (body @ cont)
  | Kernel.R_exec (sym, arity) -> user_call_regs st agent exec sym arity cont

and user_call_regs st agent exec sym arity cont =
  check_cancel st;
  if aborting exec then raise Killed;
  let regs = st.scratches.(agent.ag_id).Code.s_regs in
  if Database.is_tabled st.db sym arity then
    (* materialize the register call: tabled answers must outlive the
       registers, and the table keys on the goal term *)
    user_call st agent exec (Kernel.goal_of_regs sym arity regs) cont
  else
  match K.select_args st st.db sym arity regs with
  | [] -> exec_backtrack st agent exec
  | [ clause ] ->
    continue st agent exec
      (K.try_code_args st ~ctx:(ctx_of st exec) ~trail:exec.x_trail regs clause)
      cont
  | clause :: rest ->
    (* nondeterminate: materialize the goal once — the alternatives in
       the choice point must outlive the registers *)
    let g = Kernel.goal_of_regs sym arity regs in
    push_cp st exec ~goal:g ~alts:rest ~cont;
    continue st agent exec (try_clause st exec g clause) cont

and dispatch st agent exec g cont =
  let g = Term.deref g in
  if Kernel.is_plain g then
    (* the hot case, allocation-free: a plain user or builtin call *)
    match call_builtin st exec g with
    | Builtins.Ok -> exec_run st agent exec cont
    | Builtins.Fail -> exec_backtrack st agent exec
    | Builtins.Not_builtin -> user_call st agent exec g cont
  else
    match Kernel.classify g with
    | Kernel.Cut ->
      Errors.error "cut is not supported inside the and-parallel engine"
    | Kernel.Disj _ | Kernel.Ite _ | Kernel.Naf _ -> K.unsupported st g
    | Kernel.Conj g | Kernel.Amp g ->
      exec_run st agent exec (Clause.compile_body g @ cont)
    | Kernel.Meta g -> dispatch st agent exec g cont
    | Kernel.Sentinel _ | Kernel.Goal _ -> (
      match call_builtin st exec g with
      | Builtins.Ok -> exec_run st agent exec cont
      | Builtins.Fail -> exec_backtrack st agent exec
      | Builtins.Not_builtin -> user_call st agent exec g cont)

and user_call st agent exec g cont =
  let clauses =
    (* tabled predicates answer from the shared table; the kernel
       completes the subgoal first when needed (see Kernel.table_call) *)
    if Database.is_tabled_goal st.db g then
      K.table_call st ~table:st.table ~ctx:(ctx_of st exec)
        ~compiled:st.config.Config.compile ~db:st.db g
    else K.select st ~compiled:st.config.Config.compile st.db g
  in
  match clauses with
  | [] -> exec_backtrack st agent exec
  | [ clause ] -> continue st agent exec (try_clause st exec g clause) cont
  | clause :: rest ->
    push_cp st exec ~goal:g ~alts:rest ~cont;
    continue st agent exec (try_clause st exec g clause) cont

(* Backtracking inside one exec.  Walks the private stack: choice points
   are retried; completed parcall frames get outside backtracking. *)
and exec_backtrack st agent exec : bool =
  check_cancel st;
  (shard st).Stats.backtracks <- (shard st).Stats.backtracks + 1;
  match exec.x_stack with
  | [] -> false
  | Ecp cp :: below -> (
    charge_bt_node st;
    match cp.a_alts with
    | [] ->
      if Prof.live (psh st) then Prof.fail (psh st) (Prof.key_of_term cp.a_goal);
      exec.x_stack <- below;
      exec_backtrack st agent exec
    | clause :: alts ->
      if Prof.live (psh st) then Prof.redo (psh st) (Prof.key_of_term cp.a_goal);
      K.untrail st exec.x_trail cp.a_trail;
      charge st st.cost.Cost.cp_restore;
      if alts = [] then exec.x_stack <- below
      else begin
        cp.a_alts <- alts;
        (shard st).Stats.cp_updates <- (shard st).Stats.cp_updates + 1
      end;
      continue st agent exec (try_clause st exec cp.a_goal clause) cp.a_cont)
  | Eframe (frame, mark) :: below ->
    charge st st.cost.Cost.frame_unwind;
    (shard st).Stats.bt_nodes_visited <- (shard st).Stats.bt_nodes_visited + 1;
    K.untrail st exec.x_trail mark;
    if retry_frame st agent frame then exec_run st agent exec frame.f_cont
    else begin
      exec.x_stack <- below;
      exec_backtrack st agent exec
    end

(* ------------------------------------------------------------------ *)
(* Parcall frames                                                      *)
(* ------------------------------------------------------------------ *)

and make_slot frame index body =
  {
    sl_frame = frame;
    sl_index = index;
    sl_body = body;
    sl_state = Sfree;
    sl_exec = None;
    sl_no_input = false;
    sl_spliced = [];
  }

and exec_parcall st agent exec bodies rest =
  (* Granularity control (sequentialization schema, §4): a parallel
     conjunction whose estimated work is too small to amortize a frame runs
     as a plain conjunction in the current execution.  The estimate is the
     bounded term size of the branch goals — for list recursions this is
     proportional to the remaining input, so the top of a computation
     forks and the fine-grained bottom stays sequential. *)
  let sequentialize =
    st.config.Config.seq_threshold > 0
    &&
    (charge st st.cost.Cost.runtime_check;
     Kernel.Schema.sequentialize st.config bodies)
  in
  if sequentialize then begin
    (shard st).Stats.seq_hits <- (shard st).Stats.seq_hits + 1;
    exec_run st agent exec (List.concat bodies @ rest)
  end
  else begin
  (* LPCO: determinate slot whose body ends in a parcall — splice into the
     enclosing frame instead of nesting. *)
  let lpco_applicable =
    st.config.Config.lpco && rest = [] && exec.x_stack = []
    &&
    match exec.x_slot with
    | Some slot -> not slot.sl_frame.f_failing
    | None -> false
  in
  if st.config.Config.lpco then charge st st.cost.Cost.runtime_check;
  if lpco_applicable then begin
    let slot = Option.get exec.x_slot in
    let frame = slot.sl_frame in
    (shard st).Stats.lpco_hits <- (shard st).Stats.lpco_hits + 1;
    (shard st).Stats.frames_avoided <- (shard st).Stats.frames_avoided + 1;
    record_ev st Trace.Lpco_hit frame.f_id;
    slot.sl_spliced <- splice_slots st frame ~after_slot:slot bodies;
    register_frame st frame;
    (* this slot is done: its residual work now lives in the new slots *)
    true
  end
  else begin
    let frame = alloc_frame st agent exec bodies rest in
    register_frame st frame;
    if run_frame st agent frame then begin
      exec.x_stack <- Eframe (frame, Trail.mark exec.x_trail) :: exec.x_stack;
      if frame.f_nondet then exec.x_det <- false;
      exec_run st agent exec rest
    end
    else
      (* inside failure: the parcall as a whole fails; continue backtracking
         at older entries of this exec — this is the level-by-level failure
         propagation that LPCO's flattening short-circuits. *)
      exec_backtrack st agent exec
  end
  end

and alloc_frame st agent exec bodies rest =
  let n = List.length bodies in
  dbg "[a%d] alloc_frame n=%d depth_slot=%s@." agent.ag_id n
    (match exec.x_slot with None -> "root" | Some s -> Printf.sprintf "f%d.%d" s.sl_frame.f_id s.sl_index);
  charge st (st.cost.Cost.frame_alloc + (n * st.cost.Cost.slot_init));
  (shard st).Stats.frames <- (shard st).Stats.frames + 1;
  (shard st).Stats.slots <- (shard st).Stats.slots + n;
  (if Prof.live (psh st) then begin
     Prof.slots (psh st) n;
     Prof.spawned (psh st) n
   end);
  (shard st).Stats.stack_words <-
    (shard st).Stats.stack_words + Cost.words_frame_base + (n * Cost.words_per_slot);
  let depth =
    match exec.x_slot with
    | None -> 1
    | Some slot -> slot.sl_frame.f_depth + 1
  in
  if depth > (shard st).Stats.max_frame_nesting then
    (shard st).Stats.max_frame_nesting <- depth;
  st.frame_counter <- st.frame_counter + 1;
  let frame =
    {
      f_id = st.frame_counter;
      f_nondet = false;
      f_depth = depth;
      f_parent = exec;
      f_owner = agent.ag_id;
      f_slots = [||];
      f_nslots = 0;
      f_pending = n;
      f_failing = false;
      f_cont = rest;
    }
  in
  let slots = List.mapi (fun i body -> make_slot frame i body) bodies in
  frame.f_slots <- Array.of_list slots;
  frame.f_nslots <- n;
  (match slots with
   | first :: _ -> first.sl_no_input <- true
   | [] -> ());
  record_ev st Trace.Task_spawn n;
  frame

(* LPCO splice: insert the nested parcall's subgoals as fresh slots right
   after [after], preserving sequential order for backward execution. *)
and splice_slots st frame ~after_slot bodies =
  let k = List.length bodies in
  charge st (k * st.cost.Cost.slot_init);
  (shard st).Stats.slots <- (shard st).Stats.slots + k;
  (if Prof.live (psh st) then begin
     Prof.slots (psh st) k;
     Prof.spawned (psh st) k
   end);
  (shard st).Stats.stack_words <-
    (shard st).Stats.stack_words + (k * Cost.words_per_slot);
  (* the delegator's index is read *after* the tick above: a concurrent
     splice by another agent may have shifted it, and inserting at a stale
     position would break the delegator-before-children invariant that
     outside backtracking relies on *)
  let after = after_slot.sl_index in
  let n = frame.f_nslots in
  let slots = Array.make (n + k) frame.f_slots.(0) in
  Array.blit frame.f_slots 0 slots 0 (after + 1);
  let fresh = List.mapi (fun i body -> make_slot frame (after + 1 + i) body) bodies in
  List.iteri (fun i slot -> slots.(after + 1 + i) <- slot) fresh;
  Array.blit frame.f_slots (after + 1) slots (after + 1 + k) (n - after - 1);
  for i = after + 1 + k to n + k - 1 do
    slots.(i).sl_index <- i
  done;
  frame.f_slots <- slots;
  frame.f_nslots <- n + k;
  frame.f_pending <- frame.f_pending + k;
  fresh

(* Removes [dead] slots (by physical identity) from the frame, re-indexing
   the survivors.  Does not touch [f_pending]; callers recount. *)
and remove_slots frame dead =
  if dead <> [] then begin
    let keep =
      Array.to_list frame.f_slots
      |> List.filter (fun s -> not (List.memq s dead))
    in
    frame.f_slots <- Array.of_list keep;
    frame.f_nslots <- Array.length frame.f_slots;
    Array.iteri (fun i s -> s.sl_index <- i) frame.f_slots
  end

(* Fully frees a slot for recomputation.  A delegated slot removes its
   spliced products from the frame (recursively): its re-execution will
   splice fresh ones, so leaving the old ones would duplicate work. *)
and reset_slot st frame slot =
  List.iter (fun child -> reset_slot st frame child) slot.sl_spliced;
  remove_slots frame slot.sl_spliced;
  slot.sl_spliced <- [];
  (match slot.sl_exec with
   | Some exec -> undo_exec st exec
   | None -> ());
  slot.sl_exec <- None;
  slot.sl_state <- Sfree

(* The owner's wait loop: execute free slots (preferring this frame), help
   other frames, or idle until the frame completes or fails. *)
and run_frame st agent frame : bool =
  let rec loop () =
    if aborting frame.f_parent then begin
      (* an ancestor failed: take this frame down, then unwind *)
      frame.f_failing <- true;
      drain_and_cleanup st frame;
      raise Killed
    end
    else if frame.f_failing then begin
      drain_and_cleanup st frame;
      false
    end
    else if frame.f_pending = 0 then begin
      unregister_frame st frame;
      dbg "[a%d] frame f%d complete@." agent.ag_id frame.f_id;
      true
    end
    else
      match take_free_slot frame with
      | Some slot ->
        claim_slot agent slot;
        run_slot st agent slot;
        loop ()
      | None -> (
        match steal st agent with
        | Some slot ->
          run_slot st agent slot;
          loop ()
        | None -> loop ())
  in
  loop ()

(* Waits until no slot is still running on another agent, then undoes all
   slot executions.  Used on the failure paths. *)
and drain_and_cleanup st frame =
  let someone_running () =
    let rec go i =
      if i >= frame.f_nslots then false
      else
        match frame.f_slots.(i).sl_state with
        | Srunning _ -> true
        | Sfree | Sdone | Sfailed | Skilled -> go (i + 1)
    in
    go 0
  in
  while someone_running () do
    charge st st.cost.Cost.steal_poll;
    (shard st).Stats.polls <- (shard st).Stats.polls + 1
  done;
  undo_frame st frame;
  unregister_frame st frame

(* Claims a slot for [agent].  The state change happens before any tick,
   so acquisition is atomic in the simulation: no other agent can claim the
   same slot. *)
and claim_slot agent slot = slot.sl_state <- Srunning agent.ag_id

(* Picks and claims a stealable slot from any registered frame.  Frames
   found with no free slot are dropped from the pool as we go: a slot can
   only become free again through outside backtracking, which re-registers
   the frame — keeping exhausted frames around would make every steal scan
   the entire history of the computation (and did, before this pruning). *)
and steal st agent =
  chaos_yield st;
  let visited = ref 0 in
  let rec scan = function
    | [] ->
      st.pool <- [];
      None
    | frame :: rest ->
      incr visited;
      (* injected steal failure: pass over this frame as if it had no
         free slot; its slots stay claimable for later scans *)
      if frame.f_failing || Chaos.steal_blocked st.chaos.(agent.ag_id) then
        scan rest
      else (
        match take_free_slot frame with
        | Some slot ->
          claim_slot agent slot;
          st.pool <- frame :: rest;
          Some slot
        | None -> scan rest)
  in
  let result = scan st.pool in
  (shard st).Stats.polls <- (shard st).Stats.polls + max 1 !visited;
  (match result with
   | Some slot ->
     charge st ((!visited * st.cost.Cost.steal_poll) + st.cost.Cost.steal_grab);
     (shard st).Stats.steals <- (shard st).Stats.steals + 1;
     (if Prof.live (psh st) then
        match slot.sl_body with
        | Clause.Call g :: _ -> Prof.stole (psh st) (Prof.key_of_term g)
        | _ -> ());
     record_ev st Trace.Steal slot.sl_frame.f_owner
   | None -> charge st (max 1 !visited * st.cost.Cost.steal_poll));
  result

(* Executes one slot to completion (or failure/kill).  All marker
   bookkeeping — including the SPO and PDO variants — lives here. *)
and run_slot st agent slot =
  let frame = slot.sl_frame in
  dbg "[a%d] run_slot f%d.%d@." agent.ag_id frame.f_id slot.sl_index;
  assert (match slot.sl_state with Srunning id -> id = agent.ag_id | _ -> false);
  let exec = make_exec ~slot () in
  slot.sl_exec <- Some exec;
  (* PDO contiguity check: did this agent just finish the sequentially
     preceding slot of the same frame? *)
  let contiguous =
    st.config.Config.pdo
    && (charge st st.cost.Cost.runtime_check;
        Kernel.Schema.pdo_contiguous st.config
          ~last:
            (match agent.ag_last_done with
             | Some prev -> Some (prev.sl_frame.f_id, prev.sl_index)
             | None -> None)
          ~next:(frame.f_id, slot.sl_index))
  in
  (* Settle the procrastinated end marker of the previous slot. *)
  (match agent.ag_pending_end with
   | Some prev_slot when not contiguous ->
     (match prev_slot.sl_exec with
      | Some prev_exec when not prev_exec.x_end_marker ->
        prev_exec.x_end_marker <- true;
        charge_marker st ~input:false
      | Some _ | None -> ())
   | Some _ | None -> ());
  agent.ag_pending_end <- None;
  if contiguous then begin
    (shard st).Stats.pdo_hits <- (shard st).Stats.pdo_hits + 1;
    (shard st).Stats.markers_avoided <- (shard st).Stats.markers_avoided + 2;
    record_ev st Trace.Pdo_hit frame.f_id
  end
  else if slot.sl_no_input && agent.ag_id = frame.f_owner then
    (* first subgoal run in place by the owner: the parcall frame itself
       marks its beginning (paper, Figure 2) *)
    ()
  else if st.config.Config.spo then begin
    charge st st.cost.Cost.runtime_check;
    exec.x_marker_pending <- true
  end
  else begin
    exec.x_input_marker <- true;
    charge_marker st ~input:true
  end;
  agent.ag_last_done <- None;
  charge st st.cost.Cost.task_switch;
  (shard st).Stats.task_switches <- (shard st).Stats.task_switches + 1;
  record_ev st Trace.Task_start frame.f_id;
  match exec_run st agent exec slot.sl_body with
  | true ->
    if not exec.x_det then frame.f_nondet <- true;
    (* completion markers *)
    let deterministic = exec.x_det in
    if contiguous then
      (* part of a contiguous section: no end marker here either; the next
         scheduling decision settles the section's final end marker *)
      agent.ag_pending_end <- Some slot
    else if st.config.Config.spo && exec.x_marker_pending && deterministic
    then begin
      (* SPO payoff: subgoal finished without ever creating a choice point;
         neither marker is needed — only the trail section survives. *)
      exec.x_marker_pending <- false;
      (shard st).Stats.spo_hits <- (shard st).Stats.spo_hits + 1;
      (shard st).Stats.markers_avoided <- (shard st).Stats.markers_avoided + 2;
      record_ev st Trace.Spo_hit frame.f_id
    end
    else if st.config.Config.pdo then
      (* defer the end marker: the next scheduling decision may merge *)
      agent.ag_pending_end <- Some slot
    else begin
      exec.x_end_marker <- true;
      charge_marker st ~input:false
    end;
    slot.sl_state <- Sdone;
    frame.f_pending <- frame.f_pending - 1;
    dbg "[a%d] done f%d.%d pending=%d@." agent.ag_id frame.f_id slot.sl_index frame.f_pending;
    record_ev st Trace.Task_finish frame.f_id;
    agent.ag_last_done <- Some slot
  | false ->
    (* inside failure: the whole parcall fails *)
    (shard st).Stats.kills <- (shard st).Stats.kills + 1;
    charge st st.cost.Cost.kill_signal;
    undo_exec st exec;
    slot.sl_state <- Sfailed;
    frame.f_failing <- true;
    record_ev st Trace.Task_finish frame.f_id
  | exception Killed ->
    charge st st.cost.Cost.kill_signal;
    (shard st).Stats.kills <- (shard st).Stats.kills + 1;
    undo_exec st exec;
    slot.sl_state <- Skilled;
    record_ev st Trace.Task_finish frame.f_id

(* ------------------------------------------------------------------ *)
(* Outside backtracking: retrying a completed frame                    *)
(* ------------------------------------------------------------------ *)

(* Advances [slot]'s execution to its next solution; false when the slot is
   exhausted (in which case it is fully undone and reset). *)
and retry_slot st agent slot =
  match slot.sl_exec with
  | None -> false
  | Some exec ->
    charge st st.cost.Cost.task_switch;
    (shard st).Stats.task_switches <- (shard st).Stats.task_switches + 1;
    (* crossing the slot's end marker to get into it *)
    if exec.x_end_marker then charge_bt_node st;
    if exec_backtrack st agent exec then true
    else begin
      reset_slot st slot.sl_frame slot;
      false
    end

(* Outside backtracking into a completed frame: retry the rightmost slot
   owning alternatives, then recompute the slots to its right in parallel
   (sound under strict independence).  Returns false when the frame is
   exhausted (all slots then reset and the frame is dead). *)
and retry_frame st agent frame : bool =
  dbg "[a%d] retry_frame f%d nslots=%d@." agent.ag_id frame.f_id frame.f_nslots;
  let rec scan j =
    if j < 0 then false
    else begin
      charge st st.cost.Cost.frame_linear_scan;
      assert (j < frame.f_nslots);
      let slot = frame.f_slots.(j) in
      dbg "[a%d] retry scan f%d.%d state=%s@." agent.ag_id frame.f_id j
        (match slot.sl_state with Sdone -> "done" | Sfree -> "free" | Srunning _ -> "running" | Sfailed -> "failed" | Skilled -> "killed");
      if retry_slot st agent slot then begin
        (* recompute everything to the right, in parallel; spliced slots
           leave the frame with their delegators and will be re-spliced *)
        for k = frame.f_nslots - 1 downto j + 1 do
          if k < frame.f_nslots then reset_slot st frame frame.f_slots.(k)
        done;
        let to_recompute = ref 0 in
        for k = j + 1 to frame.f_nslots - 1 do
          if frame.f_slots.(k).sl_state = Sfree then incr to_recompute
        done;
        frame.f_pending <- !to_recompute;
        frame.f_failing <- false;
        dbg "[a%d] retry ok f%d.%d recompute=%d@." agent.ag_id frame.f_id j !to_recompute;
        if !to_recompute > 0 then begin
          register_frame st frame;
          if run_frame st agent frame then true
          else
            (* recomputation failed: only possible when the annotation was
               not strictly independent; treat as frame failure *)
            false
        end
        else true
      end
      else scan (j - 1)
    end
  in
  (shard st).Stats.backtracks <- (shard st).Stats.backtracks + 1;
  scan (frame.f_nslots - 1)

(* ------------------------------------------------------------------ *)
(* Agents and the top-level query                                      *)
(* ------------------------------------------------------------------ *)

let worker_body st agent () =
  let rec loop () =
    if st.finished then ()
    else begin
      check_cancel st;
      (match steal st agent with
       | Some slot -> run_slot st agent slot
       | None -> ());
      loop ()
    end
  in
  (* a fired token unwinds out of a stolen slot (or the steal loop itself);
     stop the simulation and park — idempotent when [check_cancel] already
     stopped it, and needed when the kernel's tabling chokepoint raised *)
  try loop ()
  with Cancel.Cancelled ->
    st.finished <- true;
    Sim.stop st.sim

let root_body st () =
  let agent = st.agents.(0) in
  let exec = make_exec () in
  let record () =
    (shard st).Stats.solutions <- (shard st).Stats.solutions + 1;
    st.sol_count <- st.sol_count + 1;
    record_ev st Trace.Solution st.sol_count;
    st.solutions <- Term.copy_resolved st.goal :: st.solutions
  in
  let want_more () =
    match st.config.Config.max_solutions with
    | None -> true
    | Some limit -> st.sol_count < limit
  in
  let rec drive ok =
    if ok then begin
      record ();
      if want_more () then drive (exec_backtrack st agent exec) else ()
    end
    else ()
  in
  (try drive (exec_run st agent exec (Clause.compile_body st.goal))
   with
   | Killed -> assert false (* the root exec has no ancestor frames *)
   | Cancel.Cancelled -> () (* solutions recorded so far stand *));
  st.finished <- true;
  Sim.stop st.sim

let create ?output ?(trace = Trace.disabled) ?(chaos = Chaos.disabled)
    ?(prof = Prof.disabled) ?table ?(cancel = Cancel.none) (config : Config.t)
    db goal =
  let config = Config.validate config in
  let sim = Sim.create ~max_steps:3_000_000 () in
  let agents =
    Array.init config.Config.agents (fun i ->
        { ag_id = i; ag_last_done = None; ag_pending_end = None })
  in
  let shards = Array.init config.Config.agents (fun _ -> Stats.create ()) in
  let pshards =
    Array.init config.Config.agents (fun i ->
        if Prof.enabled prof then
          Prof.shard prof ~dom:i ~stats:shards.(i)
            ~clock:(fun () -> Sim.now sim)
            ()
        else Prof.null)
  in
  {
    db;
    table =
      (match table with
      | Some t -> t
      | None -> Table.create ~max_answers:config.Config.table_max_answers ());
    config;
    cost = config.Config.cost;
    shards;
    tbufs = Array.init config.Config.agents (fun i -> Trace.buffer trace ~dom:i);
    chaos = Array.init config.Config.agents (fun i -> Chaos.agent chaos i);
    sim;
    ctx = Builtins.make_ctx ?output ~trail:(Trail.create ()) ();
    agents;
    scratches = Array.init config.Config.agents (fun _ -> Code.create_scratch ());
    pshards;
    pool = [];
    frame_counter = 0;
    cancel;
    finished = false;
    sol_count = 0;
    solutions = [];
    goal;
  }

type result = {
  solutions : Term.t list;
  stats : Stats.t; (* merged over all simulated agents *)
  per_agent : Stats.t array; (* the per-agent shards behind [stats] *)
  time : int; (* simulated completion time in abstract cycles *)
}

let run st =
  Sim.spawn st.sim ~agent:0 (root_body st);
  for i = 1 to st.config.Config.agents - 1 do
    Sim.spawn st.sim ~agent:i (worker_body st st.agents.(i))
  done;
  Sim.run st.sim;
  {
    solutions = List.rev st.solutions;
    stats = Kernel.merge_shards st.shards;
    per_agent = st.shards;
    time = Sim.stop_time st.sim;
  }

let solve ?output ?trace ?chaos ?prof ?table ?cancel config db goal =
  run (create ?output ?trace ?chaos ?prof ?table ?cancel config db goal)
