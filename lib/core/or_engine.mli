(** The or-parallel engine (MUSE-style stack-copying workers) with the Last
    Alternative Optimization of the paper's §3.2.

    Finds all solutions (or [config.max_solutions]) by exploring the or-tree
    with [config.agents] simulated workers.  Parallel conjunctions run
    sequentially; cut and other control constructs are rejected. *)

type t

type result = {
  solutions : Ace_term.Term.t list;
      (** discovery order; deterministic but interleaved for P > 1 —
          compare as multisets against the sequential engine *)
  stats : Ace_machine.Stats.t;  (** merged over all simulated workers *)
  per_agent : Ace_machine.Stats.t array;
      (** one single-writer shard per simulated worker; [stats] is their
          merge *)
  time : int;
}

(** [trace] (default {!Ace_obs.Trace.disabled}) collects per-agent event
    rings (steal, copy, LAO hit, solution, idle spans) stamped with the
    simulator's virtual clock.

    [chaos] (default {!Ace_sched.Chaos.disabled}) charges seeded extra
    virtual cycles at yield sites and skips steal victims; because the
    simulator is deterministic, each chaos seed selects one exact
    alternative interleaving — deterministic schedule exploration.  The
    solution multiset must be invariant across seeds.

    [cancel] (default {!Cancel.none}) is polled at every worker's call
    and backtrack chokepoints; once fired the run stops through the same
    path as a solution limit, returning the solutions recorded so far. *)
val create :
  ?output:Buffer.t ->
  ?trace:Ace_obs.Trace.t ->
  ?chaos:Ace_sched.Chaos.t ->
  ?prof:Ace_obs.Prof.t ->
  ?table:Ace_lang.Table.t ->
  ?cancel:Cancel.t ->
  Ace_machine.Config.t ->
  Ace_lang.Database.t ->
  Ace_term.Term.t ->
  t

val run : t -> result

val solve :
  ?output:Buffer.t ->
  ?trace:Ace_obs.Trace.t ->
  ?chaos:Ace_sched.Chaos.t ->
  ?prof:Ace_obs.Prof.t ->
  ?table:Ace_lang.Table.t ->
  ?cancel:Cancel.t ->
  Ace_machine.Config.t ->
  Ace_lang.Database.t ->
  Ace_term.Term.t ->
  result

(**/**)

(** Temporary debug tracing. *)
val debug : bool ref
