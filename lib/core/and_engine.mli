(** The and-parallel engine (&ACE): parcall frames, input/end markers, work
    stealing over simulated agents, inside/outside backtracking with
    recomputation, and the LPCO, SPO and PDO optimizations of the paper
    (switched from {!Ace_machine.Config}).

    Subgoals of a parallel conjunction must be strictly independent (share
    no unbound variables at call time) — the standard &ACE condition.  Cut
    and control constructs other than [call/1] are rejected. *)

type t

type result = {
  solutions : Ace_term.Term.t list;
      (** snapshots of the instantiated goal, in discovery order *)
  stats : Ace_machine.Stats.t;  (** merged over all simulated agents *)
  per_agent : Ace_machine.Stats.t array;
      (** one single-writer shard per simulated agent; [stats] is their
          merge *)
  time : int;  (** simulated completion time, abstract cycles *)
}

(** [trace] (default {!Ace_obs.Trace.disabled}) collects per-agent event
    rings (slot start/finish, steal, LPCO/SPO/PDO hits, solutions) stamped
    with the simulator's virtual clock.

    [chaos] (default {!Ace_sched.Chaos.disabled}) charges seeded extra
    virtual cycles at choice-point and steal yield sites and skips frames
    during steal scans — deterministic schedule exploration on the
    simulator; the solution multiset must be invariant across seeds.

    [cancel] (default {!Cancel.none}) is polled at the exec, backtrack
    and steal chokepoints; once fired the simulation stops like a
    satisfied solution limit, returning the solutions recorded so far. *)
val create :
  ?output:Buffer.t ->
  ?trace:Ace_obs.Trace.t ->
  ?chaos:Ace_sched.Chaos.t ->
  ?prof:Ace_obs.Prof.t ->
  ?table:Ace_lang.Table.t ->
  ?cancel:Cancel.t ->
  Ace_machine.Config.t ->
  Ace_lang.Database.t ->
  Ace_term.Term.t ->
  t

(** Runs the query to exhaustion (or [config.max_solutions]). *)
val run : t -> result

val solve :
  ?output:Buffer.t ->
  ?trace:Ace_obs.Trace.t ->
  ?chaos:Ace_sched.Chaos.t ->
  ?prof:Ace_obs.Prof.t ->
  ?table:Ace_lang.Table.t ->
  ?cancel:Cancel.t ->
  Ace_machine.Config.t ->
  Ace_lang.Database.t ->
  Ace_term.Term.t ->
  result

(**/**)

(** Debug tracing. *)
val debug : bool ref
