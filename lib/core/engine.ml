(* Facade over the three engines, exposing one result type so that the
   harness, tests and examples can sweep engine × configuration
   uniformly. *)

module Term = Ace_term.Term
module Stats = Ace_machine.Stats
module Config = Ace_machine.Config
module Database = Ace_lang.Database
module Metrics = Ace_obs.Metrics

type kind =
  | Sequential   (* baseline; '&' runs as ',' *)
  | And_parallel (* &ACE: LPCO / SPO / PDO *)
  | Or_parallel  (* MUSE-style: LAO, on the deterministic simulator *)
  | Par_or       (* MUSE-style on real OCaml domains (wall clock) *)

let kind_to_string = function
  | Sequential -> "seq"
  | And_parallel -> "and"
  | Or_parallel -> "or"
  | Par_or -> "par"

type result = {
  solutions : Term.t list;
  stats : Stats.t;
  metrics : Metrics.t;
    (* per-agent shards behind [stats]; the multicore engine also fills
       the busy/idle and histogram fields *)
  time : int;
    (* abstract cycles: charged total (seq) or simulated makespan; for
       [Par_or] this is measured wall-clock nanoseconds instead *)
  cancelled : Cancel.reason option;
    (* [Some _]: the run was aborted and [solutions] is the partial set
       completed before the token fired *)
}

(* Samples the GC allocation counters around [f] and writes the deltas
   into the result's stats.  [Gc.quick_stat] counters are per-domain in
   OCaml 5, so for the multi-domain engine the deltas cover only the
   calling domain's share — a lower bound, which is still the right
   signal for the allocation-regression gate (the sequential engine, the
   gate's subject, runs entirely on this domain). *)
let with_alloc_counters f =
  let g0 = Gc.quick_stat () in
  let result = f () in
  let g1 = Gc.quick_stat () in
  let minor = int_of_float (g1.Gc.minor_words -. g0.Gc.minor_words) in
  let promoted = int_of_float (g1.Gc.promoted_words -. g0.Gc.promoted_words) in
  result.stats.Stats.minor_words <- result.stats.Stats.minor_words + minor;
  result.stats.Stats.promoted_words <-
    result.stats.Stats.promoted_words + promoted;
  result

(* The shared, immutable artifact of the run lifecycle split: consulting,
   freezing and clause compilation happen once in [prepare]; [run] is the
   cheap per-query step, safe to issue concurrently against one
   [prepared] (sessions overlay it, they never mutate it). *)
type prepared = { pbase : Database.t }

let prepare db =
  (* warm the lookup caches and precompile clause code once; runs then
     read the database without mutating it (required by the multi-domain
     engine) *)
  Database.freeze db;
  { pbase = db }

let prepare_string program =
  prepare (Ace_lang.Program.db (Ace_lang.Program.consult_string program))

let database p = p.pbase
let session p = Database.overlay p.pbase

let run ?output ?trace ?chaos ?prof ?table ?(cancel = Cancel.none) ?session
    kind (config : Config.t) p goal =
  let db = match session with Some s -> s | None -> p.pbase in
  (* idempotent on the shared base; for a session overlay this re-caches
     and re-compiles only the session's own asserted clauses *)
  Database.freeze db;
  (* one answer table per run unless the caller shares one across runs;
     only the multi-domain engine needs the per-shard locks *)
  let table =
    match table with
    | Some t -> t
    | None ->
      Ace_lang.Table.create
        ~locked:(kind = Par_or)
        ~max_answers:config.Config.table_max_answers ()
  in
  with_alloc_counters @@ fun () ->
  match kind with
  | Sequential ->
    let solutions, m =
      Seq_engine.solve ?output ?trace ?chaos ?prof ~cost:config.Config.cost
        ~compile:config.Config.compile ~table ~cancel
        ?limit:config.Config.max_solutions db goal
    in
    let stats = Seq_engine.stats m in
    {
      solutions;
      stats;
      metrics = Metrics.of_stats stats;
      time = Seq_engine.time m;
      cancelled = Cancel.fired cancel;
    }
  | And_parallel ->
    let r =
      And_engine.solve ?output ?trace ?chaos ?prof ~table ~cancel config db goal
    in
    {
      solutions = r.And_engine.solutions;
      stats = r.And_engine.stats;
      metrics = Metrics.of_stats_array r.And_engine.per_agent;
      time = r.And_engine.time;
      cancelled = Cancel.fired cancel;
    }
  | Or_parallel ->
    let r =
      Or_engine.solve ?output ?trace ?chaos ?prof ~table ~cancel config db goal
    in
    {
      solutions = r.Or_engine.solutions;
      stats = r.Or_engine.stats;
      metrics = Metrics.of_stats_array r.Or_engine.per_agent;
      time = r.Or_engine.time;
      cancelled = Cancel.fired cancel;
    }
  | Par_or ->
    let r =
      Par_or_engine.solve ?output ?trace ?chaos ?prof ~table ~cancel config db
        goal
    in
    {
      solutions = r.Par_or_engine.solutions;
      stats = r.Par_or_engine.stats;
      metrics = r.Par_or_engine.metrics;
      time = r.Par_or_engine.wall_ns;
      cancelled = Cancel.fired cancel;
    }

let solve ?output ?trace ?chaos ?prof ?table ?cancel kind config db goal =
  run ?output ?trace ?chaos ?prof ?table ?cancel kind config (prepare db) goal

(* Convenience: consult a program and run a query in one call. *)
let solve_program ?output ?trace ?chaos ?prof ?table ?cancel kind config
    ~program ~query =
  let p = prepare_string program in
  let q = Ace_lang.Program.parse_query query in
  run ?output ?trace ?chaos ?prof ?table ?cancel kind config p
    q.Ace_lang.Program.goal

(* Solutions as a sorted list (for multiset comparison between engines,
   since or-parallel discovery order is interleaved). *)
let sorted_solutions result = List.sort Term.compare result.solutions
