(** Facade over the sequential, and-parallel and or-parallel engines. *)

type kind =
  | Sequential
  | And_parallel
  | Or_parallel
      (** MUSE-style or-parallelism on the deterministic simulator *)
  | Par_or
      (** MUSE-style or-parallelism on real OCaml 5 domains
          ({!Par_or_engine}); [config.agents] = number of domains *)

val kind_to_string : kind -> string

type result = {
  solutions : Ace_term.Term.t list;
  stats : Ace_machine.Stats.t;
  metrics : Ace_obs.Metrics.t;
      (** the per-agent shards behind [stats]; for [Par_or] also busy/idle
          times and copy/task/steal histograms *)
  time : int;
      (** abstract cycles: total charge (sequential) or simulated makespan
          (parallel engines); measured wall-clock nanoseconds for
          [Par_or] *)
  cancelled : Cancel.reason option;
      (** [Some _] when the run's cancel token fired: [solutions] holds
          the solutions completed before the abort (each one was complete
          when recorded, so the partial set is sound) *)
}

(** {1 Prepared programs and sessions}

    The run lifecycle in two steps: {!prepare} does the expensive,
    shareable part once (consult, freeze, clause compilation); {!run} is
    the cheap per-query part.  A [prepared] value is immutable — many
    queries, including concurrent ones from different domains, can [run]
    against the same [prepared].  Per-client [assert]/[retract] go
    through a {!session} overlay, never the shared base. *)

type prepared

(** Freezes (and thereby compiles) the database.  The database must not
    be mutated afterwards except through {!session} overlays. *)
val prepare : Ace_lang.Database.t -> prepared

(** Consults [program] source and prepares it. *)
val prepare_string : string -> prepared

(** The underlying frozen database. *)
val database : prepared -> Ace_lang.Database.t

(** A fresh session overlay: assert/retract on it are private to the
    session and shadow the shared base (see
    {!Ace_lang.Database.overlay}). *)
val session : prepared -> Ace_lang.Database.t

(** [trace] (default {!Ace_obs.Trace.disabled}) collects per-agent event
    rings; export with {!Ace_obs.Trace.to_chrome_json} or
    {!Ace_obs.Trace.to_jsonl}.  Simulated engines stamp events with the
    virtual clock, [Par_or] with wall-clock nanoseconds.

    [chaos] (default {!Ace_sched.Chaos.disabled}) is deterministic fault
    injection for the correctness checker: seeded schedule jitter on the
    simulated engines, steal-failure / publish-delay / forced-preemption
    on [Par_or].  Faults only reorder or delay work — the solution
    multiset must not depend on the chaos seed.

    [prof] (default {!Ace_obs.Prof.disabled}) attaches the per-predicate
    profiler: 4-port counters, exclusive cost attribution and call-graph
    edges, sharded per agent/domain.  Profiling observes the run without
    perturbing it — solutions are unchanged.

    [table] (default: a fresh table sized by
    [config.table_max_answers], sharded with per-shard locks only for
    [Par_or]) is the shared SLG answer table for [:- table] predicates.
    Pass one explicitly to share answers across runs or to inspect
    entries and the completion log after the run.

    [cancel] (default {!Cancel.none}) aborts the run cooperatively —
    on request, on a wall-clock deadline or on a poll budget — and the
    result reports [cancelled = Some reason] with the solutions found so
    far.

    [session] runs the query against a session overlay (from {!session})
    instead of the shared base. *)
val run :
  ?output:Buffer.t ->
  ?trace:Ace_obs.Trace.t ->
  ?chaos:Ace_sched.Chaos.t ->
  ?prof:Ace_obs.Prof.t ->
  ?table:Ace_lang.Table.t ->
  ?cancel:Cancel.t ->
  ?session:Ace_lang.Database.t ->
  kind ->
  Ace_machine.Config.t ->
  prepared ->
  Ace_term.Term.t ->
  result

(** [prepare] + {!run} in one call — the one-shot convenience used by the
    harness and tests. *)
val solve :
  ?output:Buffer.t ->
  ?trace:Ace_obs.Trace.t ->
  ?chaos:Ace_sched.Chaos.t ->
  ?prof:Ace_obs.Prof.t ->
  ?table:Ace_lang.Table.t ->
  ?cancel:Cancel.t ->
  kind ->
  Ace_machine.Config.t ->
  Ace_lang.Database.t ->
  Ace_term.Term.t ->
  result

(** Consults [program] source and runs [query]. *)
val solve_program :
  ?output:Buffer.t ->
  ?trace:Ace_obs.Trace.t ->
  ?chaos:Ace_sched.Chaos.t ->
  ?prof:Ace_obs.Prof.t ->
  ?table:Ace_lang.Table.t ->
  ?cancel:Cancel.t ->
  kind ->
  Ace_machine.Config.t ->
  program:string ->
  query:string ->
  result

(** Solutions in the standard order of terms, for engine-to-engine multiset
    comparison. *)
val sorted_solutions : result -> Ace_term.Term.t list
