(** Facade over the sequential, and-parallel and or-parallel engines. *)

type kind =
  | Sequential
  | And_parallel
  | Or_parallel
      (** MUSE-style or-parallelism on the deterministic simulator *)
  | Par_or
      (** MUSE-style or-parallelism on real OCaml 5 domains
          ({!Par_or_engine}); [config.agents] = number of domains *)

val kind_to_string : kind -> string

type result = {
  solutions : Ace_term.Term.t list;
  stats : Ace_machine.Stats.t;
  metrics : Ace_obs.Metrics.t;
      (** the per-agent shards behind [stats]; for [Par_or] also busy/idle
          times and copy/task/steal histograms *)
  time : int;
      (** abstract cycles: total charge (sequential) or simulated makespan
          (parallel engines); measured wall-clock nanoseconds for
          [Par_or] *)
}

(** [trace] (default {!Ace_obs.Trace.disabled}) collects per-agent event
    rings; export with {!Ace_obs.Trace.to_chrome_json} or
    {!Ace_obs.Trace.to_jsonl}.  Simulated engines stamp events with the
    virtual clock, [Par_or] with wall-clock nanoseconds.

    [chaos] (default {!Ace_sched.Chaos.disabled}) is deterministic fault
    injection for the correctness checker: seeded schedule jitter on the
    simulated engines, steal-failure / publish-delay / forced-preemption
    on [Par_or].  Faults only reorder or delay work — the solution
    multiset must not depend on the chaos seed.

    [prof] (default {!Ace_obs.Prof.disabled}) attaches the per-predicate
    profiler: 4-port counters, exclusive cost attribution and call-graph
    edges, sharded per agent/domain.  Profiling observes the run without
    perturbing it — solutions are unchanged.

    [table] (default: a fresh table sized by
    [config.table_max_answers], sharded with per-shard locks only for
    [Par_or]) is the shared SLG answer table for [:- table] predicates.
    Pass one explicitly to share answers across runs or to inspect
    entries and the completion log after the run. *)
val solve :
  ?output:Buffer.t ->
  ?trace:Ace_obs.Trace.t ->
  ?chaos:Ace_sched.Chaos.t ->
  ?prof:Ace_obs.Prof.t ->
  ?table:Ace_lang.Table.t ->
  kind ->
  Ace_machine.Config.t ->
  Ace_lang.Database.t ->
  Ace_term.Term.t ->
  result

(** Consults [program] source and runs [query]. *)
val solve_program :
  ?output:Buffer.t ->
  ?trace:Ace_obs.Trace.t ->
  ?chaos:Ace_sched.Chaos.t ->
  ?prof:Ace_obs.Prof.t ->
  ?table:Ace_lang.Table.t ->
  kind ->
  Ace_machine.Config.t ->
  program:string ->
  query:string ->
  result

(** Solutions in the standard order of terms, for engine-to-engine multiset
    comparison. *)
val sorted_solutions : result -> Ace_term.Term.t list
