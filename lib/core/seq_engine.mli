(** Sequential Prolog engine — the paper's "state-of-the-art sequential
    system" baseline.  Parallel conjunctions ('&') run as ordinary
    conjunctions.  Supports cut, negation-as-failure, if-then-else and
    disjunction; charges abstract cycles from the shared cost model so the
    parallel engines' overhead can be measured against it. *)

type t

(** [trace] (default {!Ace_obs.Trace.disabled}) records solution events on
    domain track 0, stamped with the abstract-cycle clock.

    [chaos] (default {!Ace_sched.Chaos.disabled}) charges seeded extra
    abstract cycles at yield sites; with no concurrency the answers must
    not depend on it (the checker asserts cycle-jitter invariance
    uniformly across engines).

    [compile] (default [false]) executes clauses as flat instruction code
    through the deep-indexing dispatch tree; identical solutions, fewer
    cycles.

    [prof] (default {!Ace_obs.Prof.disabled}) attributes 4-port counters
    and exclusive costs per predicate, stamped against the abstract-cycle
    clock.

    [cancel] (default {!Cancel.none}) is polled at the call and
    backtrack chokepoints; once fired, {!next} answers [None] (and
    {!all_solutions} returns the solutions found so far) — each already
    reported solution was complete when copied, so partial results stay
    valid. *)
val create :
  ?cost:Ace_machine.Cost.t ->
  ?compile:bool ->
  ?output:Buffer.t ->
  ?trace:Ace_obs.Trace.t ->
  ?chaos:Ace_sched.Chaos.t ->
  ?prof:Ace_obs.Prof.t ->
  ?table:Ace_lang.Table.t ->
  ?cancel:Cancel.t ->
  Ace_lang.Database.t ->
  Ace_term.Term.t ->
  t

(** Next solution: a snapshot of the instantiated goal, or [None] when
    exhausted. *)
val next : t -> Ace_term.Term.t option

val all_solutions : ?limit:int -> t -> Ace_term.Term.t list

(** Snapshot of named query variables (take before asking for the next
    solution). *)
val bindings :
  t -> (string * Ace_term.Term.var) list -> (string * Ace_term.Term.t) list

val stats : t -> Ace_machine.Stats.t

(** Abstract cycles consumed so far (the sequential execution time). *)
val time : t -> int

(** Convenience: run to exhaustion (or [limit] solutions). *)
val solve :
  ?cost:Ace_machine.Cost.t ->
  ?compile:bool ->
  ?output:Buffer.t ->
  ?trace:Ace_obs.Trace.t ->
  ?chaos:Ace_sched.Chaos.t ->
  ?prof:Ace_obs.Prof.t ->
  ?table:Ace_lang.Table.t ->
  ?cancel:Cancel.t ->
  ?limit:int ->
  Ace_lang.Database.t ->
  Ace_term.Term.t ->
  Ace_term.Term.t list * t
