(** Cooperative cancellation tokens with optional deadlines.

    Generalizes the par engine's atomic kill flags into one primitive
    that every engine polls at its existing yield/backtrack chokepoints.
    A token is a single atomic flag plus an optional wall-clock deadline
    and an optional poll budget; [poll] is cheap enough for the
    sequential hot path (one load on the fast no-token path, one load
    plus a decimated clock check otherwise) and safe to share across
    domains.

    Cancellation is cooperative: an engine that observes a fired token
    stops starting new work and unwinds through its normal failure path,
    so the trail, scratch frames and the shared answer table stay
    consistent — exactly as when a solution limit fires. *)

type t

(** Why a token fired. *)
type reason =
  | Requested  (** [cancel] was called (client abort, server drain) *)
  | Deadline  (** the wall-clock deadline passed *)
  | Budget  (** the poll budget ran out (deterministic test aborts) *)

(** Raised by [check]; engines translate it into their stop path. *)
exception Cancelled

(** The never-fired token: [poll] is one physical-equality test.
    [cancel] on it is ignored. *)
val none : t

(** A fresh token; [deadline_ms] arms a wall-clock deadline that many
    milliseconds from now. *)
val create : ?deadline_ms:int -> unit -> t

(** A token that fires [Budget] on the [n]-th poll — a deterministic
    abort point for chaos tests ([n] counts polls from any engine
    chokepoint, so a fixed [n] replays the same abort site on the
    deterministic engines). *)
val at_polls : int -> t

(** Fires the token with [Requested]; idempotent, first reason wins. *)
val cancel : t -> unit

(** True once the token has fired.  Checks the deadline (every few
    polls) and the poll budget as a side effect. *)
val poll : t -> bool

(** [if poll t then raise Cancelled]. *)
val check : t -> unit

(** Why the token fired, if it has. *)
val fired : t -> reason option

val reason_to_string : reason -> string
