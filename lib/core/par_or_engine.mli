(** Hardware and+or parallel engine: MUSE-style environment-copying
    workers on OCaml 5 domains, with demand-driven publishing into
    work-stealing deques and the paper's LAO / sequentialization schema
    applied structurally (the last alternative of an owned node continues
    in place with no re-dispatch or copy).

    [config.agents] is the number of domains.  Finds all solutions (or
    [config.max_solutions]).  Cut and other control constructs are
    rejected, and calling an undefined predicate raises
    {!Errors.Engine_error} (worker exceptions are re-raised in the
    calling domain).

    Parallel conjunctions run sequentially unless [config.par_and] is
    set, in which case strictly-independent ['&'] branches execute as
    parcall-frame slots offered through the same work-stealing deques:
    each slot enumerates its solutions on a private sub-machine, a slot
    with none fails the frame and kills its siblings (inside failure),
    and the cross product of the recorded free-variable tuples is
    replayed through an ordinary — and therefore or-publishable — choice
    point.  The frame setup is guarded by the paper's schemas:
    sequentialization below [config.seq_threshold], LPCO flattening of
    nested parcalls, SPO skipping the frame when no worker is hungry,
    and PDO steering the owner to the sequentially-next free slot.
    Branches sharing an unbound variable fall back to sequential
    execution (runtime strict-independence check).

    With one domain and [par_and] off the engine is a plain sequential
    backtracker and reproduces the sequential solution order; otherwise
    solutions arrive in nondeterministic discovery order — compare
    solution {e multisets} against {!Seq_engine}. *)

type result = {
  solutions : Ace_term.Term.t list;
      (** discovery order; nondeterministic for more than one domain *)
  stats : Ace_machine.Stats.t;
      (** merged over all workers; wall-clock runs have real (not
          simulated) counter values *)
  metrics : Ace_obs.Metrics.t;
      (** the per-domain shards behind [stats]: copy-size / task-duration /
          steal-retry histograms and busy/idle nanoseconds per domain *)
  wall_ns : int;  (** wall-clock nanoseconds for the whole run *)
  domains : int;  (** domains actually used ([config.agents]) *)
}

(** [trace] (default {!Ace_obs.Trace.disabled}) collects per-domain event
    rings: task spawn/start/finish, steal, publish/skip, copy, LAO hits,
    and-parallel schema hits (LPCO / SPO / PDO), solutions, idle spans.

    [chaos] (default {!Ace_sched.Chaos.disabled}) injects deterministic,
    seed-replayable faults at the engine's yield sites: steal failures,
    delayed publishes, and forced preemption around publish, steal and the
    solution channel.  Injection reorders and delays work but never drops
    it, so the solution multiset must not change — the invariant the
    differential checker ({!Ace_check}) exercises.

    [cancel] (default {!Cancel.none}) is polled by every domain at its
    stop-flag chokepoints; once fired it is folded into the shared stop
    flag, all domains wind down and join, and the solutions recorded so
    far are returned. *)
val solve :
  ?output:Buffer.t ->
  ?trace:Ace_obs.Trace.t ->
  ?chaos:Ace_sched.Chaos.t ->
  ?prof:Ace_obs.Prof.t ->
  ?table:Ace_lang.Table.t ->
  ?cancel:Cancel.t ->
  Ace_machine.Config.t ->
  Ace_lang.Database.t ->
  Ace_term.Term.t ->
  result
