(* Experiment descriptors and the sweep runner.

   An experiment fixes a benchmark workload, an engine, one optimization
   under study and a processor axis; running it measures simulated
   execution time with the optimization off and on at every processor
   count, which is exactly the row structure of the paper's tables
   ("unoptimized/optimized (±x%)"). *)

module Config = Ace_machine.Config
module Engine = Ace_core.Engine
module Programs = Ace_benchmarks.Programs

type optimization = Lpco | Lao | Spo | Pdo | All

let optimization_to_string = function
  | Lpco -> "lpco"
  | Lao -> "lao"
  | Spo -> "spo"
  | Pdo -> "pdo"
  | All -> "all"

let apply_optimization config = function
  | Lpco -> { config with Config.lpco = true }
  | Lao -> { config with Config.lao = true }
  | Spo -> { config with Config.spo = true }
  | Pdo -> { config with Config.pdo = true }
  | All -> { config with Config.lpco = true; lao = true; spo = true; pdo = true }

type workload = {
  w_label : string;      (* row label, e.g. "map1" or "matrix mult(12)" *)
  w_benchmark : string;  (* Programs registry name *)
  w_size : int;
}

let workload ?label ?size name =
  let b = Programs.find name in
  let w_size = Option.value size ~default:b.Programs.default_size in
  { w_label = Option.value label ~default:name; w_benchmark = name; w_size }

type t = {
  id : string;            (* "table1" ... "figure8" *)
  title : string;
  paper_ref : string;     (* e.g. "Table 1" *)
  optimization : optimization;
  workloads : workload list;
  processors : int list;
}

(* One measurement cell. *)
type cell = {
  unopt : int; (* simulated cycles, optimization off *)
  opt : int;   (* simulated cycles, optimization on *)
  unopt_stats : Ace_machine.Stats.t;
  opt_stats : Ace_machine.Stats.t;
  unopt_metrics : Ace_obs.Metrics.t; (* per-agent shards behind the stats *)
  opt_metrics : Ace_obs.Metrics.t;
}

let improvement_percent cell =
  if cell.unopt = 0 then 0.0
  else 100.0 *. float_of_int (cell.unopt - cell.opt) /. float_of_int cell.unopt

type row = { label : string; cells : cell list (* one per processor count *) }

type results = { experiment : t; rows : row list }

(* Runs one (workload, processors, optimization-state) point. *)
let run_point ~workload:w ~agents ~config =
  let b = Programs.find w.w_benchmark in
  let program = b.Programs.program w.w_size in
  let query = b.Programs.query w.w_size in
  let config = { config with Config.agents } in
  Engine.solve_program b.Programs.kind config ~program ~query

let run_cell ~workload ~agents ~optimization =
  let base = Config.default in
  let unopt_result = run_point ~workload ~agents ~config:base in
  let opt_result =
    run_point ~workload ~agents ~config:(apply_optimization base optimization)
  in
  {
    unopt = unopt_result.Engine.time;
    opt = opt_result.Engine.time;
    unopt_stats = unopt_result.Engine.stats;
    opt_stats = opt_result.Engine.stats;
    unopt_metrics = unopt_result.Engine.metrics;
    opt_metrics = opt_result.Engine.metrics;
  }

let run ?(progress = fun _ -> ()) experiment =
  let rows =
    List.map
      (fun w ->
        progress w.w_label;
        let cells =
          List.map
            (fun agents ->
              run_cell ~workload:w ~agents ~optimization:experiment.optimization)
            experiment.processors
        in
        { label = w.w_label; cells })
      experiment.workloads
  in
  { experiment; rows }

(* ------------------------------------------------------------------ *)
(* The paper's experiments                                             *)
(* ------------------------------------------------------------------ *)

let table1 =
  {
    id = "table1";
    title = "LPCO: savings in execution time (forward execution only)";
    paper_ref = "Table 1";
    optimization = Lpco;
    workloads = [ workload ~label:"map2" "map2"; workload ~label:"occur(5)" "occur" ];
    processors = [ 1; 3; 5; 10 ];
  }

let table2 =
  {
    id = "table2";
    title = "LPCO with backward execution";
    paper_ref = "Table 2";
    optimization = Lpco;
    workloads =
      [ workload ~label:"matrix" "matrix_bt";
        workload ~label:"pderiv" "pderiv_bt";
        workload ~label:"map1" "map1";
        workload ~label:"annotator" "annotator" ];
    processors = [ 1; 3; 5; 10 ];
  }

let figure5 =
  {
    id = "figure5";
    title = "Speedups on backward execution (with/without LPCO)";
    paper_ref = "Figure 5";
    optimization = Lpco;
    workloads =
      [ workload ~label:"map" "map1";
        workload ~label:"matrix mult" "matrix_bt";
        workload ~label:"pderiv" "pderiv_bt" ];
    processors = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  }

let table3 =
  {
    id = "table3";
    title = "Improvements using LAO";
    paper_ref = "Table 3";
    optimization = Lao;
    workloads =
      [ workload ~label:"queen1" "queen1";
        workload ~label:"queen2" "queen2";
        workload ~label:"puzzle" "puzzle";
        workload ~label:"ancestors" "ancestors";
        workload ~label:"members" "members";
        workload ~label:"maps" "maps" ];
    processors = [ 1; 2; 4; 8; 10 ];
  }

let table4 =
  {
    id = "table4";
    title = "Shallow parallelism optimization";
    paper_ref = "Table 4";
    optimization = Spo;
    workloads =
      [ workload ~label:"matrix mult" "matrix";
        workload ~label:"takeuchi" "takeuchi";
        workload ~label:"hanoi" "hanoi";
        workload ~label:"occur" "occur";
        workload ~label:"bt_cluster" "bt_cluster";
        workload ~label:"annotator" "annotator" ];
    processors = [ 1; 3; 5; 10 ];
  }

let figure8 =
  {
    id = "figure8";
    title = "Execution time with shallow parallelism optimization";
    paper_ref = "Figure 8";
    optimization = Spo;
    workloads =
      [ workload ~label:"poccur" "occur";
        workload ~label:"annotator" "annotator";
        workload ~label:"hanoi" "hanoi" ];
    processors = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ];
  }

let table5 =
  {
    id = "table5";
    title = "Processor determinacy optimization";
    paper_ref = "Table 5";
    optimization = Pdo;
    workloads =
      [ workload ~label:"matrix mult" "matrix";
        workload ~label:"quick sort" "quick_sort";
        workload ~label:"takeuchi" "takeuchi";
        workload ~label:"poccur(5)" "occur";
        workload ~label:"bt_cluster" "bt_cluster";
        workload ~label:"annotator" "annotator" ];
    processors = [ 1; 3; 5; 10 ];
  }

let all = [ table1; table2; figure5; table3; table4; figure8; table5 ]

let find id =
  match List.find_opt (fun e -> String.equal e.id id) all with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Experiment.find: unknown experiment %s" id)
