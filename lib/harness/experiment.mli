(** Experiment descriptors and sweep runner for every table and figure of
    the paper's evaluation. *)

type optimization = Lpco | Lao | Spo | Pdo | All

val optimization_to_string : optimization -> string

val apply_optimization :
  Ace_machine.Config.t -> optimization -> Ace_machine.Config.t

type workload = { w_label : string; w_benchmark : string; w_size : int }

(** Workload over a registered benchmark; size defaults to the benchmark's
    paper-experiment size. *)
val workload : ?label:string -> ?size:int -> string -> workload

type t = {
  id : string;
  title : string;
  paper_ref : string;
  optimization : optimization;
  workloads : workload list;
  processors : int list;
}

type cell = {
  unopt : int;
  opt : int;
  unopt_stats : Ace_machine.Stats.t;
  opt_stats : Ace_machine.Stats.t;
  unopt_metrics : Ace_obs.Metrics.t;
      (** per-agent shards behind [unopt_stats] (load-balance reporting) *)
  opt_metrics : Ace_obs.Metrics.t;
}

(** Percent time saved by the optimization (negative = slowdown). *)
val improvement_percent : cell -> float

type row = { label : string; cells : cell list }

type results = { experiment : t; rows : row list }

(** Runs a single measurement point. *)
val run_point :
  workload:workload ->
  agents:int ->
  config:Ace_machine.Config.t ->
  Ace_core.Engine.result

val run_cell :
  workload:workload -> agents:int -> optimization:optimization -> cell

(** Runs the full sweep; [progress] is called per row label. *)
val run : ?progress:(string -> unit) -> t -> results

val table1 : t
val table2 : t
val figure5 : t
val table3 : t
val table4 : t
val figure8 : t
val table5 : t

val all : t list

val find : string -> t
