(* Rendering experiment results in the paper's format:
   "unopt/opt (±x%)" cells for tables, per-processor series for figures. *)

module Stats = Ace_machine.Stats

let pp_cell ppf (cell : Experiment.cell) =
  Format.fprintf ppf "%d/%d (%+.0f%%)" cell.Experiment.unopt cell.Experiment.opt
    (Experiment.improvement_percent cell)

let pp_table ppf (results : Experiment.results) =
  let e = results.Experiment.experiment in
  Format.fprintf ppf "== %s: %s ==@," e.Experiment.paper_ref e.Experiment.title;
  Format.fprintf ppf "(simulated kilocycles are reported as unopt/opt (improvement))@,";
  let header =
    Format.asprintf "%-14s %s" "benchmark"
      (String.concat "  "
         (List.map (fun p -> Printf.sprintf "%21s" (Printf.sprintf "P=%d" p))
            e.Experiment.processors))
  in
  Format.fprintf ppf "%s@," header;
  List.iter
    (fun (row : Experiment.row) ->
      Format.fprintf ppf "%-14s " row.Experiment.label;
      List.iter
        (fun (cell : Experiment.cell) ->
          let text =
            Format.asprintf "%d/%d (%+.0f%%)"
              ((cell.Experiment.unopt + 500) / 1000)
              ((cell.Experiment.opt + 500) / 1000)
              (Experiment.improvement_percent cell)
          in
          Format.fprintf ppf "%21s  " text)
        row.Experiment.cells;
      Format.fprintf ppf "@,")
    results.Experiment.rows;
  Format.fprintf ppf "@,"

(* Figures are emitted as series: one line per (workload, variant) with the
   per-processor values, plus speedup relative to the variant's own P=1
   point (the paper's Figure 5 plots speedups, Figure 8 raw times). *)
let pp_figure ~speedup ppf (results : Experiment.results) =
  let e = results.Experiment.experiment in
  Format.fprintf ppf "== %s: %s ==@," e.Experiment.paper_ref e.Experiment.title;
  Format.fprintf ppf "%-24s %s@," "series"
    (String.concat " "
       (List.map (fun p -> Printf.sprintf "%8s" (Printf.sprintf "P=%d" p))
          e.Experiment.processors));
  let series label values =
    Format.fprintf ppf "%-24s %s@," label
      (String.concat " " (List.map (fun v -> Printf.sprintf "%8s" v) values))
  in
  List.iter
    (fun (row : Experiment.row) ->
      let unopts = List.map (fun c -> c.Experiment.unopt) row.Experiment.cells in
      let opts = List.map (fun c -> c.Experiment.opt) row.Experiment.cells in
      if speedup then begin
        let base_u = match unopts with [] -> 1 | v :: _ -> max v 1 in
        let base_o = match opts with [] -> 1 | v :: _ -> max v 1 in
        series
          (row.Experiment.label ^ " (no opt)")
          (List.map
             (fun v -> Printf.sprintf "%.2f" (float_of_int base_u /. float_of_int (max v 1)))
             unopts);
        series
          (row.Experiment.label ^ " (opt)")
          (List.map
             (fun v -> Printf.sprintf "%.2f" (float_of_int base_o /. float_of_int (max v 1)))
             opts)
      end
      else begin
        series
          (row.Experiment.label ^ " (no opt)")
          (List.map (fun v -> Printf.sprintf "%d" ((v + 500) / 1000)) unopts);
        series
          (row.Experiment.label ^ " (opt)")
          (List.map (fun v -> Printf.sprintf "%d" ((v + 500) / 1000)) opts)
      end)
    results.Experiment.rows;
  Format.fprintf ppf "@,"

let is_figure (e : Experiment.t) =
  String.length e.Experiment.id >= 6 && String.sub e.Experiment.id 0 6 = "figure"

let pp_results ppf (results : Experiment.results) =
  let e = results.Experiment.experiment in
  if is_figure e then
    pp_figure ~speedup:(String.equal e.Experiment.id "figure5") ppf results
  else pp_table ppf results

let to_string results = Format.asprintf "@[<v>%a@]" pp_results results

(* Imbalance of the optimized run: the busiest agent's share of the total
   work (clause tries), normalized so 1.00 = perfectly balanced and P =
   all work on one agent.  Computed from the per-agent shards. *)
let balance metrics =
  let per = Ace_obs.Metrics.per_domain metrics in
  let p = Array.length per in
  if p <= 1 then 1.0
  else begin
    let total = Array.fold_left (fun a s -> a + s.Stats.clause_tries) 0 per in
    if total = 0 then 1.0
    else
      let busiest =
        Array.fold_left (fun a s -> max a s.Stats.clause_tries) 0 per
      in
      float_of_int busiest *. float_of_int p /. float_of_int total
  end

(* Structural summary used by EXPERIMENTS.md: optimization-hit counters and
   the allocation savings that explain the timing shape. *)
let pp_structural ppf (results : Experiment.results) =
  let e = results.Experiment.experiment in
  Format.fprintf ppf "-- structural counters (%s, optimized run, max P) --@,"
    e.Experiment.paper_ref;
  List.iter
    (fun (row : Experiment.row) ->
      match List.rev row.Experiment.cells with
      | [] -> ()
      | last :: _ ->
        let s = last.Experiment.opt_stats and u = last.Experiment.unopt_stats in
        Format.fprintf ppf
          "%-14s frames %d->%d  markers %d->%d (avoided %d)  cp_allocs %d->%d  \
           scans %d->%d  copied_cells %d->%d  nesting %d->%d  \
           hits lao=%d lpco=%d spo=%d pdo=%d  imbalance %.2f@,"
          row.Experiment.label u.Stats.frames s.Stats.frames
          (u.Stats.input_markers + u.Stats.end_markers)
          (s.Stats.input_markers + s.Stats.end_markers)
          s.Stats.markers_avoided u.Stats.cp_allocs s.Stats.cp_allocs
          u.Stats.or_scans s.Stats.or_scans u.Stats.copied_cells
          s.Stats.copied_cells u.Stats.max_frame_nesting s.Stats.max_frame_nesting
          s.Stats.lao_hits s.Stats.lpco_hits s.Stats.spo_hits s.Stats.pdo_hits
          (balance last.Experiment.opt_metrics))
    results.Experiment.rows;
  Format.fprintf ppf "@,"
