(** Unnumbered evaluation claims of the paper: X1 (1-processor parallel
    overhead, §1/§2.3/§5) and X2 (LPCO control-stack savings, §3.1). *)

type overhead_row = {
  o_label : string;
  seq_time : int;
  unopt_time : int;
  opt_time : int;
  gc_time : int;  (** all optimizations plus granularity control *)
  unopt_overhead : float;
  opt_overhead : float;
  gc_overhead : float;
}

val overhead_benchmarks : string list

val run_overhead :
  ?benchmarks:string list ->
  ?size_of:(Ace_benchmarks.Programs.t -> int) ->
  unit ->
  overhead_row list

val pp_overhead : Format.formatter -> overhead_row list -> unit

type memory_row = {
  m_label : string;
  unopt_words : int;
  opt_words : int;
  saving : float;
}

val run_memory :
  ?benchmarks:string list -> ?agents:int -> unit -> memory_row list

val pp_memory : Format.formatter -> memory_row list -> unit

(** One wall-clock measurement of the hardware or-parallel engine. *)
type par_or_row = {
  p_label : string;
  p_domains : int;
  p_wall_ms : float;    (** best of the repeated runs *)
  p_solutions : int;
  p_speedup : float;    (** vs the 1-domain row of the same benchmark *)
  p_matches_seq : bool; (** solution set equals the sequential engine's *)
}

val par_or_benchmarks : string list

(** Runs the or-parallel benchmarks on {!Ace_core.Par_or_engine} across
    [domains] (default [[1; 2; 4]]), checking every run's solution set
    against the sequential engine; reports the best wall time of [repeat]
    runs (default 3). *)
val run_par_or :
  ?benchmarks:string list ->
  ?domains:int list ->
  ?repeat:int ->
  ?size_of:(Ace_benchmarks.Programs.t -> int) ->
  unit ->
  par_or_row list

val pp_par_or : Format.formatter -> par_or_row list -> unit

(** Serializes rows for [BENCH_par_or.json]. *)
val par_or_json : par_or_row list -> string
