(** Unnumbered evaluation claims of the paper: X1 (1-processor parallel
    overhead, §1/§2.3/§5) and X2 (LPCO control-stack savings, §3.1). *)

type overhead_row = {
  o_label : string;
  seq_time : int;
  unopt_time : int;
  opt_time : int;
  gc_time : int;  (** all optimizations plus granularity control *)
  unopt_overhead : float;
  opt_overhead : float;
  gc_overhead : float;
}

(** Physical processor count of this host (from [/proc/cpuinfo] where
    available, else the runtime's recommendation). *)
val host_cores : unit -> int

(** [Domain.recommended_domain_count ()]. *)
val recommended_domains : unit -> int

(** The standard host object embedded in every BENCH_*.json: core
    count, recommended domains and the OCaml version. *)
val host_json : unit -> Ace_obs.Json.t

(** Prints a warning on stderr when a sweep requests more domains than
    the host has cores. *)
val warn_domains : requested:int -> unit

val overhead_benchmarks : string list

val run_overhead :
  ?benchmarks:string list ->
  ?size_of:(Ace_benchmarks.Programs.t -> int) ->
  unit ->
  overhead_row list

val pp_overhead : Format.formatter -> overhead_row list -> unit

type memory_row = {
  m_label : string;
  unopt_words : int;
  opt_words : int;
  saving : float;
}

val run_memory :
  ?benchmarks:string list -> ?agents:int -> unit -> memory_row list

val pp_memory : Format.formatter -> memory_row list -> unit

(** One wall-clock measurement of the hardware or-parallel engine. *)
type par_or_row = {
  p_label : string;
  p_domains : int;
  p_grain : int;        (** publish only nodes with >= this many alternatives *)
  p_wall_ms : float;    (** best of the repeated runs *)
  p_solutions : int;
  p_speedup : float;    (** vs the 1-domain row of the same benchmark *)
  p_matches_seq : bool; (** solution set equals the sequential engine's *)
  p_steals : int;       (** total successful steals in the best run *)
  p_busy_frac : float;  (** mean per-domain busy fraction of the best run *)
  p_metrics : Ace_obs.Metrics.t;
      (** per-domain shards of the best run (busy/idle, histograms) *)
}

val par_or_benchmarks : string list

(** Runs the or-parallel benchmarks on {!Ace_core.Par_or_engine}: one
    1-domain baseline per benchmark, then every multi-domain count in
    [domains] (default [[1; 2; 4]]) crossed with every publish grain in
    [grains] (default [[1; 2; 4]]), checking every run's solution set
    against the sequential engine; reports the best wall time of [repeat]
    runs (default 3). *)
val run_par_or :
  ?benchmarks:string list ->
  ?domains:int list ->
  ?grains:int list ->
  ?repeat:int ->
  ?size_of:(Ace_benchmarks.Programs.t -> int) ->
  unit ->
  par_or_row list

val pp_par_or : Format.formatter -> par_or_row list -> unit

(** Serializes rows for [BENCH_par_or.json]. *)
val par_or_json : par_or_row list -> string

(** One wall-clock measurement of the hardware engine with and-parallel
    execution ([config.par_and]). *)
type par_and_row = {
  a_label : string;
  a_domains : int;
  a_wall_ms : float;    (** best of the repeated runs *)
  a_solutions : int;
  a_speedup : float;    (** vs the 1-domain row of the same benchmark *)
  a_matches_seq : bool; (** solution multiset equals the sequential engine's *)
  a_frames : int;       (** parcall frames built in the best run *)
  a_slots : int;
  a_spo_hits : int;     (** frames procrastinated away (SPO) *)
  a_pdo_hits : int;     (** contiguous-slot claims (PDO) *)
  a_steals : int;
  a_metrics : Ace_obs.Metrics.t;
}

val par_and_benchmarks : string list

(** Runs the and-parallel benchmarks on {!Ace_core.Par_or_engine} with
    [par_and] at every domain count in [domains] (default [[1; 2; 4]]),
    checking every run's solution multiset against the sequential engine;
    reports the best wall time of [repeat] runs (default 3).  [spo]
    defaults to [false] so every independent parcall builds a frame. *)
val run_par_and :
  ?benchmarks:string list ->
  ?domains:int list ->
  ?repeat:int ->
  ?spo:bool ->
  ?size_of:(Ace_benchmarks.Programs.t -> int) ->
  unit ->
  par_and_row list

val pp_par_and : Format.formatter -> par_and_row list -> unit

(** Serializes rows for [BENCH_par_and.json]. *)
val par_and_json : par_and_row list -> string

(** One wall-clock measurement of the engine hot path (consult + solve). *)
type seq_core_row = {
  c_label : string;
  c_engine : string;
      (** "seq" | "and" | "or" | "par", with "/c" appended for the
          compiled-clause-code run of the same engine *)
  c_wall_ms : float;    (** best of the repeated runs *)
  c_solutions : int;
  c_digest : string;    (** MD5 of the sorted canonical solution set *)
  c_stats : Ace_machine.Stats.t;  (** counters of the best run *)
}

val seq_core_benchmarks : string list

(** Runs every benchmark on every engine at one agent/domain, interpreted
    and compiled; reports the best wall time of [repeat] runs (default 3)
    and a digest of the alpha-canonical solution set for semantic-drift
    checks. *)
val run_seq_core :
  ?benchmarks:string list ->
  ?engines:Ace_core.Engine.kind list ->
  ?repeat:int ->
  ?size_of:(Ace_benchmarks.Programs.t -> int) ->
  unit ->
  seq_core_row list

(** Geometric-mean wall-clock speedup of each engine's compiled rows over
    its interpreted rows, as [(engine_tag, geomean)] pairs. *)
val seq_core_speedups : seq_core_row list -> (string * float) list

val pp_seq_core : Format.formatter -> seq_core_row list -> unit

(** Serializes rows for [BENCH_seq_core.json]. *)
val seq_core_json : seq_core_row list -> string

(** Renders rows in the "benchmark engine solutions digest" line format of
    [bench/seq_core_expected.txt]. *)
val expected_of_rows : seq_core_row list -> string

(** Compares rows against a seed-recorded expected file (one
    "benchmark engine solutions digest" line per row); returns the list of
    divergence messages, empty when every solution set matches. *)
val check_seq_core : expected:string -> seq_core_row list -> string list

(** GC minor words allocated per solution in a row (sampled into the
    row's stats by the {!Ace_core.Engine} facade). *)
val words_per_solution : seq_core_row -> float

(** For a compiled ("tag/c") row, the interpreted counterpart's
    minor-words/solution divided by the compiled row's ([> 1.] = the
    compiled path allocates less); [None] for interpreted rows. *)
val alloc_ratio : seq_core_row list -> seq_core_row -> float option

(** Renders rows in the "benchmark engine words_per_solution" line format
    of [bench/seq_core_alloc_expected.txt]. *)
val alloc_expected_of_rows : seq_core_row list -> string

(** Compares rows against pinned allocation baselines; a row regresses
    when its minor-words/solution exceeds the pinned value by more than
    [tolerance] (relative, default 0.10) plus one word of slack.
    Returns the regression messages, empty when the gate passes. *)
val check_alloc :
  ?tolerance:float -> expected:string -> seq_core_row list -> string list
