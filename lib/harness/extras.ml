(* The evaluation claims of the paper that are not a numbered table or
   figure:

   X1 — parallel overhead: the unoptimized &ACE engine runs 10-25% slower
   than sequential SICStus on one processor; the optimizations bring the
   overhead under 5% "for many programs" (§1, §2.3, §5).

   X2 — memory: LPCO cuts control-stack usage by about half on
   flattening-friendly programs (§3.1). *)

module Config = Ace_machine.Config
module Engine = Ace_core.Engine
module Programs = Ace_benchmarks.Programs
module Stats = Ace_machine.Stats

type overhead_row = {
  o_label : string;
  seq_time : int;
  unopt_time : int; (* and-engine, 1 agent, no optimizations *)
  opt_time : int;   (* and-engine, 1 agent, all optimizations *)
  gc_time : int;    (* all optimizations + granularity control *)
  unopt_overhead : float; (* percent over sequential *)
  opt_overhead : float;
  gc_overhead : float;
}

let percent_over base v =
  if base = 0 then 0.0 else 100.0 *. float_of_int (v - base) /. float_of_int base

(* The deterministic and-parallel benchmarks, where the sequential engine
   computes the identical result. *)
let overhead_benchmarks =
  [ "map2"; "occur"; "matrix"; "pderiv"; "annotator"; "takeuchi"; "hanoi";
    "bt_cluster"; "quick_sort" ]

let run_overhead ?(benchmarks = overhead_benchmarks) ?size_of () =
  List.map
    (fun name ->
      let b = Programs.find name in
      let size =
        match size_of with Some f -> f b | None -> b.Programs.default_size
      in
      let program = b.Programs.program size and query = b.Programs.query size in
      let seq =
        Engine.solve_program Engine.Sequential Config.default ~program ~query
      in
      let unopt =
        Engine.solve_program Engine.And_parallel
          { Config.default with agents = 1 }
          ~program ~query
      in
      let opt =
        Engine.solve_program Engine.And_parallel
          (Config.all_optimizations ~agents:1 ())
          ~program ~query
      in
      let gc =
        Engine.solve_program Engine.And_parallel
          { (Config.all_optimizations ~agents:1 ()) with Config.seq_threshold = 24 }
          ~program ~query
      in
      {
        o_label = name;
        seq_time = seq.Engine.time;
        unopt_time = unopt.Engine.time;
        opt_time = opt.Engine.time;
        gc_time = gc.Engine.time;
        unopt_overhead = percent_over seq.Engine.time unopt.Engine.time;
        opt_overhead = percent_over seq.Engine.time opt.Engine.time;
        gc_overhead = percent_over seq.Engine.time gc.Engine.time;
      })
    benchmarks

let pp_overhead ppf rows =
  Format.fprintf ppf
    "== X1: parallel overhead on one processor (vs sequential engine) ==@,";
  Format.fprintf ppf "%-12s %10s %12s %12s %12s %10s %9s %9s@," "benchmark"
    "seq" "and(unopt)" "and(opt)" "and(opt+gc)" "ovh-unopt" "ovh-opt" "ovh-gc";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %10d %12d %12d %12d %9.1f%% %8.1f%% %8.1f%%@,"
        r.o_label r.seq_time r.unopt_time r.opt_time r.gc_time r.unopt_overhead
        r.opt_overhead r.gc_overhead)
    rows;
  let avg f =
    match rows with
    | [] -> 0.0
    | _ ->
      List.fold_left (fun acc r -> acc +. f r) 0.0 rows
      /. float_of_int (List.length rows)
  in
  Format.fprintf ppf "%-12s %10s %12s %12s %12s %9.1f%% %8.1f%% %8.1f%%@,@,"
    "average" "" "" "" ""
    (avg (fun r -> r.unopt_overhead))
    (avg (fun r -> r.opt_overhead))
    (avg (fun r -> r.gc_overhead))

type memory_row = {
  m_label : string;
  unopt_words : int;
  opt_words : int;
  saving : float; (* percent *)
}

(* X2: control-stack words allocated with and without LPCO. *)
let run_memory ?(benchmarks = [ "map2"; "occur"; "bt_cluster" ]) ?(agents = 5) () =
  List.map
    (fun name ->
      let b = Programs.find name in
      let size = b.Programs.default_size in
      let program = b.Programs.program size and query = b.Programs.query size in
      let run config =
        Engine.solve_program Engine.And_parallel config ~program ~query
      in
      let unopt = run { Config.default with agents } in
      let opt = run { Config.default with agents; lpco = true } in
      let uw = unopt.Engine.stats.Stats.stack_words in
      let ow = opt.Engine.stats.Stats.stack_words in
      {
        m_label = name;
        unopt_words = uw;
        opt_words = ow;
        saving = (if uw = 0 then 0.0 else 100.0 *. float_of_int (uw - ow) /. float_of_int uw);
      })
    benchmarks

(* ------------------------------------------------------------------ *)
(* Hardware or-parallelism: wall-clock runs on OCaml domains            *)
(* ------------------------------------------------------------------ *)

type par_or_row = {
  p_label : string;
  p_domains : int;
  p_wall_ms : float;   (* best of [repeat] runs *)
  p_solutions : int;
  p_speedup : float;   (* vs the 1-domain row of the same benchmark *)
  p_matches_seq : bool; (* same solution set as the sequential engine *)
}

(* Or-parallel benchmarks where the sequential engine computes the
   identical solution set. *)
let par_or_benchmarks = [ "queen1"; "queen2"; "puzzle"; "members"; "maps" ]

let canonical_set solutions =
  List.sort String.compare (List.map Ace_term.Pp.to_canonical_string solutions)

(* Runs each benchmark on the hardware engine across [domains], comparing
   every run's solution set against the sequential engine and reporting
   the best wall time of [repeat] runs (wall-clock measurements on a
   shared host are noisy; the minimum is the standard robust estimate). *)
let run_par_or ?(benchmarks = par_or_benchmarks) ?(domains = [ 1; 2; 4 ])
    ?(repeat = 3) ?size_of () =
  List.concat_map
    (fun name ->
      let b = Programs.find name in
      let size =
        match size_of with Some f -> f b | None -> b.Programs.default_size
      in
      let program = b.Programs.program size and query = b.Programs.query size in
      let seq =
        Engine.solve_program Engine.Sequential Config.default ~program ~query
      in
      let reference = canonical_set seq.Engine.solutions in
      let base_ms = ref 0.0 in
      List.map
        (fun agents ->
          let config = { Config.default with Config.agents } in
          let runs =
            List.init (max 1 repeat) (fun _ ->
                Engine.solve_program Engine.Par_or config ~program ~query)
          in
          let best =
            List.fold_left
              (fun acc r -> if r.Engine.time < acc.Engine.time then r else acc)
              (List.hd runs) (List.tl runs)
          in
          let wall_ms = float_of_int best.Engine.time /. 1e6 in
          if agents = 1 then base_ms := wall_ms;
          {
            p_label = name;
            p_domains = agents;
            p_wall_ms = wall_ms;
            p_solutions = List.length best.Engine.solutions;
            p_speedup = (if wall_ms > 0.0 then !base_ms /. wall_ms else 0.0);
            p_matches_seq =
              List.for_all
                (fun r -> canonical_set r.Engine.solutions = reference)
                runs;
          })
        domains)
    benchmarks

let pp_par_or ppf rows =
  Format.fprintf ppf
    "== hardware or-parallelism: wall-clock on OCaml domains ==@,";
  Format.fprintf ppf "%-12s %8s %12s %10s %9s %8s@," "benchmark" "domains"
    "wall-ms" "solutions" "speedup" "matches";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %8d %12.2f %10d %8.2fx %8s@," r.p_label
        r.p_domains r.p_wall_ms r.p_solutions r.p_speedup
        (if r.p_matches_seq then "yes" else "NO"))
    rows;
  Format.fprintf ppf "@,"

(* JSON for BENCH_par_or.json: hand-rolled (no JSON dependency in the
   container), schema {host: {...}, rows: [...]}. *)
let par_or_json rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf
       "  \"host\": {\"recommended_domains\": %d, \"ocaml\": \"%s\"},\n"
       (Domain.recommended_domain_count ())
       Sys.ocaml_version);
  Buffer.add_string buf "  \"rows\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"benchmark\": \"%s\", \"domains\": %d, \"wall_ms\": %.3f, \
            \"solutions\": %d, \"speedup\": %.3f, \"matches_seq\": %b}%s\n"
           r.p_label r.p_domains r.p_wall_ms r.p_solutions r.p_speedup
           r.p_matches_seq
           (if i = List.length rows - 1 then "" else ",")))
    rows;
  Buffer.add_string buf "  ]\n}\n";
  Buffer.contents buf

let pp_memory ppf rows =
  Format.fprintf ppf
    "== X2: control-stack allocation with/without LPCO (words) ==@,";
  Format.fprintf ppf "%-12s %12s %12s %10s@," "benchmark" "no LPCO" "LPCO" "saved";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %12d %12d %9.1f%%@," r.m_label r.unopt_words
        r.opt_words r.saving)
    rows;
  Format.fprintf ppf "@,"
