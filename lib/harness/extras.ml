(* The evaluation claims of the paper that are not a numbered table or
   figure:

   X1 — parallel overhead: the unoptimized &ACE engine runs 10-25% slower
   than sequential SICStus on one processor; the optimizations bring the
   overhead under 5% "for many programs" (§1, §2.3, §5).

   X2 — memory: LPCO cuts control-stack usage by about half on
   flattening-friendly programs (§3.1). *)

module Config = Ace_machine.Config
module Engine = Ace_core.Engine
module Programs = Ace_benchmarks.Programs
module Stats = Ace_machine.Stats
module Metrics = Ace_obs.Metrics
module Json = Ace_obs.Json

type overhead_row = {
  o_label : string;
  seq_time : int;
  unopt_time : int; (* and-engine, 1 agent, no optimizations *)
  opt_time : int;   (* and-engine, 1 agent, all optimizations *)
  gc_time : int;    (* all optimizations + granularity control *)
  unopt_overhead : float; (* percent over sequential *)
  opt_overhead : float;
  gc_overhead : float;
}

(* Host shape recorded in every benchmark JSON row: wall-clock numbers
   are meaningless without knowing how many cores the recording host
   had.  [host_cores] counts physical processors from /proc/cpuinfo
   where available and falls back to the runtime's recommendation. *)
let recommended_domains () = Domain.recommended_domain_count ()

let host_cores () =
  try
    let ic = open_in "/proc/cpuinfo" in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.length line >= 9 && String.sub line 0 9 = "processor" then
           incr n
       done
     with End_of_file -> ());
    close_in ic;
    if !n > 0 then !n else recommended_domains ()
  with Sys_error _ -> recommended_domains ()

let host_json () =
  Json.Obj
    [ ("cores", Json.int (host_cores ()));
      ("recommended_domains", Json.int (recommended_domains ()));
      ("ocaml", Json.Str Sys.ocaml_version) ]

(* Emitted by the bench subcommands before a hardware sweep whose domain
   counts exceed what the host can actually run in parallel. *)
let warn_domains ~requested =
  let cores = host_cores () in
  if requested > cores then
    Format.eprintf
      "warning: sweep requests %d domains but this host has %d core(s); \
       speedups above %d domains measure scheduling, not parallelism@."
      requested cores cores

let percent_over base v =
  if base = 0 then 0.0 else 100.0 *. float_of_int (v - base) /. float_of_int base

(* The deterministic and-parallel benchmarks, where the sequential engine
   computes the identical result. *)
let overhead_benchmarks =
  [ "map2"; "occur"; "matrix"; "pderiv"; "annotator"; "takeuchi"; "hanoi";
    "bt_cluster"; "quick_sort" ]

let run_overhead ?(benchmarks = overhead_benchmarks) ?size_of () =
  List.map
    (fun name ->
      let b = Programs.find name in
      let size =
        match size_of with Some f -> f b | None -> b.Programs.default_size
      in
      let program = b.Programs.program size and query = b.Programs.query size in
      let seq =
        Engine.solve_program Engine.Sequential Config.default ~program ~query
      in
      let unopt =
        Engine.solve_program Engine.And_parallel
          { Config.default with agents = 1 }
          ~program ~query
      in
      let opt =
        Engine.solve_program Engine.And_parallel
          (Config.all_optimizations ~agents:1 ())
          ~program ~query
      in
      let gc =
        Engine.solve_program Engine.And_parallel
          { (Config.all_optimizations ~agents:1 ()) with Config.seq_threshold = 24 }
          ~program ~query
      in
      {
        o_label = name;
        seq_time = seq.Engine.time;
        unopt_time = unopt.Engine.time;
        opt_time = opt.Engine.time;
        gc_time = gc.Engine.time;
        unopt_overhead = percent_over seq.Engine.time unopt.Engine.time;
        opt_overhead = percent_over seq.Engine.time opt.Engine.time;
        gc_overhead = percent_over seq.Engine.time gc.Engine.time;
      })
    benchmarks

let pp_overhead ppf rows =
  Format.fprintf ppf
    "== X1: parallel overhead on one processor (vs sequential engine) ==@,";
  Format.fprintf ppf "%-12s %10s %12s %12s %12s %10s %9s %9s@," "benchmark"
    "seq" "and(unopt)" "and(opt)" "and(opt+gc)" "ovh-unopt" "ovh-opt" "ovh-gc";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %10d %12d %12d %12d %9.1f%% %8.1f%% %8.1f%%@,"
        r.o_label r.seq_time r.unopt_time r.opt_time r.gc_time r.unopt_overhead
        r.opt_overhead r.gc_overhead)
    rows;
  let avg f =
    match rows with
    | [] -> 0.0
    | _ ->
      List.fold_left (fun acc r -> acc +. f r) 0.0 rows
      /. float_of_int (List.length rows)
  in
  Format.fprintf ppf "%-12s %10s %12s %12s %12s %9.1f%% %8.1f%% %8.1f%%@,@,"
    "average" "" "" "" ""
    (avg (fun r -> r.unopt_overhead))
    (avg (fun r -> r.opt_overhead))
    (avg (fun r -> r.gc_overhead))

type memory_row = {
  m_label : string;
  unopt_words : int;
  opt_words : int;
  saving : float; (* percent *)
}

(* X2: control-stack words allocated with and without LPCO. *)
let run_memory ?(benchmarks = [ "map2"; "occur"; "bt_cluster" ]) ?(agents = 5) () =
  List.map
    (fun name ->
      let b = Programs.find name in
      let size = b.Programs.default_size in
      let program = b.Programs.program size and query = b.Programs.query size in
      let run config =
        Engine.solve_program Engine.And_parallel config ~program ~query
      in
      let unopt = run { Config.default with agents } in
      let opt = run { Config.default with agents; lpco = true } in
      let uw = unopt.Engine.stats.Stats.stack_words in
      let ow = opt.Engine.stats.Stats.stack_words in
      {
        m_label = name;
        unopt_words = uw;
        opt_words = ow;
        saving = (if uw = 0 then 0.0 else 100.0 *. float_of_int (uw - ow) /. float_of_int uw);
      })
    benchmarks

(* ------------------------------------------------------------------ *)
(* Hardware or-parallelism: wall-clock runs on OCaml domains            *)
(* ------------------------------------------------------------------ *)

type par_or_row = {
  p_label : string;
  p_domains : int;
  p_grain : int;       (* publish only nodes with >= this many alternatives *)
  p_wall_ms : float;   (* best of [repeat] runs *)
  p_solutions : int;
  p_speedup : float;   (* vs the 1-domain row of the same benchmark *)
  p_matches_seq : bool; (* same solution set as the sequential engine *)
  p_steals : int;      (* total successful steals, best run *)
  p_busy_frac : float; (* mean per-domain busy fraction, best run *)
  p_metrics : Metrics.t; (* per-domain shards of the best run *)
}

(* Or-parallel benchmarks where the sequential engine computes the
   identical solution set. *)
let par_or_benchmarks = [ "queen1"; "queen2"; "puzzle"; "members"; "maps" ]

let canonical_set = Ace_check.Canon.multiset

(* Runs each benchmark on the hardware engine across [domains] × [grains],
   comparing every run's solution set against the sequential engine and
   reporting the best wall time of [repeat] runs (wall-clock measurements
   on a shared host are noisy; the minimum is the standard robust
   estimate).  With one domain no worker is ever hungry, so grain cannot
   matter there: the sweep measures one 1-domain baseline per benchmark and
   crosses grains only with the multi-domain counts. *)
let run_par_or ?(benchmarks = par_or_benchmarks) ?(domains = [ 1; 2; 4 ])
    ?(grains = [ 1; 2; 4 ]) ?(repeat = 3) ?size_of () =
  List.concat_map
    (fun name ->
      let b = Programs.find name in
      let size =
        match size_of with Some f -> f b | None -> b.Programs.default_size
      in
      let program = b.Programs.program size and query = b.Programs.query size in
      let seq =
        Engine.solve_program Engine.Sequential Config.default ~program ~query
      in
      let reference = canonical_set seq.Engine.solutions in
      let base_ms = ref 0.0 in
      let cell agents grain =
        let config = { Config.default with Config.agents; grain } in
        let runs =
          List.init (max 1 repeat) (fun _ ->
              Engine.solve_program Engine.Par_or config ~program ~query)
        in
        let best =
          List.fold_left
            (fun acc r -> if r.Engine.time < acc.Engine.time then r else acc)
            (List.hd runs) (List.tl runs)
        in
        let wall_ms = float_of_int best.Engine.time /. 1e6 in
        if agents = 1 then base_ms := wall_ms;
        let util = Metrics.utilization best.Engine.metrics in
        let busy_frac =
          match util with
          | [] -> 0.0
          | us ->
            List.fold_left (fun acc u -> acc +. u.Metrics.u_busy_frac) 0.0 us
            /. float_of_int (List.length us)
        in
        {
          p_label = name;
          p_domains = agents;
          p_grain = grain;
          p_wall_ms = wall_ms;
          p_solutions = List.length best.Engine.solutions;
          p_speedup = (if wall_ms > 0.0 then !base_ms /. wall_ms else 0.0);
          p_matches_seq =
            List.for_all
              (fun r -> canonical_set r.Engine.solutions = reference)
              runs;
          p_steals = best.Engine.stats.Stats.steals;
          p_busy_frac = busy_frac;
          p_metrics = best.Engine.metrics;
        }
      in
      let multi = List.filter (fun d -> d > 1) domains in
      (* bind the baseline first: it must run before the multi-domain
         cells that divide by its time *)
      let base = cell 1 1 in
      base :: List.concat_map (fun agents -> List.map (cell agents) grains) multi)
    benchmarks

let pp_par_or ppf rows =
  Format.fprintf ppf
    "== hardware or-parallelism: wall-clock on OCaml domains ==@,";
  Format.fprintf ppf "%-12s %8s %6s %12s %10s %9s %8s %7s %6s@," "benchmark"
    "domains" "grain" "wall-ms" "solutions" "speedup" "matches" "steals"
    "busy%";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %8d %6d %12.2f %10d %8.2fx %8s %7d %5.0f%%@,"
        r.p_label r.p_domains r.p_grain r.p_wall_ms r.p_solutions r.p_speedup
        (if r.p_matches_seq then "yes" else "NO")
        r.p_steals (100.0 *. r.p_busy_frac))
    rows;
  Format.fprintf ppf "@,"

(* JSON for BENCH_par_or.json, schema {host: {...}, rows: [...]}; each row
   carries the per-domain busy/idle/steal breakdown so a flat speedup on a
   1-core host shows up as idle fractions in data, not just a README
   caveat. *)
let par_or_json rows =
  let per_domain m =
    Json.List
      (List.map
         (fun u ->
           Json.Obj
             [ ("domain", Json.int u.Metrics.u_dom);
               ("busy_ns", Json.int u.Metrics.u_busy_ns);
               ("idle_ns", Json.int u.Metrics.u_idle_ns);
               ("busy_frac", Json.Num u.Metrics.u_busy_frac);
               ("tasks", Json.int u.Metrics.u_tasks);
               ("steals", Json.int u.Metrics.u_steals);
               ("copies", Json.int u.Metrics.u_copies) ])
         (Metrics.utilization m))
  in
  let row r =
    Json.Obj
      [ ("benchmark", Json.Str r.p_label);
        ("domains", Json.int r.p_domains);
        ("grain", Json.int r.p_grain);
        ("wall_ms", Json.Num r.p_wall_ms);
        ("solutions", Json.int r.p_solutions);
        ("speedup", Json.Num r.p_speedup);
        ("matches_seq", Json.Bool r.p_matches_seq);
        ("steals", Json.int r.p_steals);
        ("busy_frac", Json.Num r.p_busy_frac);
        ("host_cores", Json.int (host_cores ()));
        ("recommended_domains", Json.int (recommended_domains ()));
        ("per_domain", per_domain r.p_metrics) ]
  in
  Json.to_string
    (Json.Obj
       [ ("host", host_json ());
         ("rows", Json.List (List.map row rows)) ])
  ^ "\n"

(* ------------------------------------------------------------------ *)
(* Sequential-core benchmark: wall clock of the engine hot path         *)
(* ------------------------------------------------------------------ *)

(* One row per benchmark × engine: wall-clock time of a whole
   consult+solve run, plus a digest of the alpha-canonical solution set so
   a refactor of the term representation can be checked for semantic
   drift against seed-recorded digests. *)
type seq_core_row = {
  c_label : string;
  c_engine : string;    (* "seq" | "and" | "or" | "par" *)
  c_wall_ms : float;    (* best of the repeated runs *)
  c_solutions : int;
  c_digest : string;    (* MD5 of the sorted canonical solution set *)
  c_stats : Stats.t;    (* counters of the best run *)
}

(* ------------------------------------------------------------------ *)
(* Hardware and-parallelism: parcall frames on OCaml domains            *)
(* ------------------------------------------------------------------ *)

type par_and_row = {
  a_label : string;
  a_domains : int;
  a_wall_ms : float;    (* best of [repeat] runs *)
  a_solutions : int;
  a_speedup : float;    (* vs the 1-domain row of the same benchmark *)
  a_matches_seq : bool; (* same solution multiset as the sequential engine *)
  a_frames : int;       (* parcall frames actually built, best run *)
  a_slots : int;
  a_spo_hits : int;     (* frames procrastinated away *)
  a_pdo_hits : int;     (* contiguous-slot claims *)
  a_steals : int;       (* stolen tasks (or-tasks and slots), best run *)
  a_metrics : Metrics.t;
}

(* And-parallel benchmarks with deterministic solution sets. *)
let par_and_benchmarks = [ "map2"; "matrix"; "hanoi"; "takeuchi"; "quick_sort" ]

(* Runs each benchmark on the hardware engine with [par_and] across
   [domains], comparing every run's solution multiset against the
   sequential engine and reporting the best wall time of [repeat] runs.
   SPO is off by default here: a benchmark sweep wants the parcall-frame
   machinery exercised on every '&', not procrastinated away whenever the
   machine happens to be saturated. *)
let run_par_and ?(benchmarks = par_and_benchmarks) ?(domains = [ 1; 2; 4 ])
    ?(repeat = 3) ?(spo = false) ?size_of () =
  List.concat_map
    (fun name ->
      let b = Programs.find name in
      let size =
        match size_of with Some f -> f b | None -> b.Programs.default_size
      in
      let program = b.Programs.program size and query = b.Programs.query size in
      let seq =
        Engine.solve_program Engine.Sequential Config.default ~program ~query
      in
      let reference = canonical_set seq.Engine.solutions in
      let base_ms = ref 0.0 in
      let cell agents =
        let config =
          { (Config.all_optimizations ~agents ()) with
            Config.par_and = true; spo }
        in
        let runs =
          List.init (max 1 repeat) (fun _ ->
              Engine.solve_program Engine.Par_or config ~program ~query)
        in
        let best =
          List.fold_left
            (fun acc r -> if r.Engine.time < acc.Engine.time then r else acc)
            (List.hd runs) (List.tl runs)
        in
        let wall_ms = float_of_int best.Engine.time /. 1e6 in
        if agents = 1 then base_ms := wall_ms;
        {
          a_label = name;
          a_domains = agents;
          a_wall_ms = wall_ms;
          a_solutions = List.length best.Engine.solutions;
          a_speedup = (if wall_ms > 0.0 then !base_ms /. wall_ms else 0.0);
          a_matches_seq =
            List.for_all
              (fun r -> canonical_set r.Engine.solutions = reference)
              runs;
          a_frames = best.Engine.stats.Stats.frames;
          a_slots = best.Engine.stats.Stats.slots;
          a_spo_hits = best.Engine.stats.Stats.spo_hits;
          a_pdo_hits = best.Engine.stats.Stats.pdo_hits;
          a_steals = best.Engine.stats.Stats.steals;
          a_metrics = best.Engine.metrics;
        }
      in
      (* 1-domain baseline first: the multi-domain cells divide by it *)
      List.map cell (1 :: List.filter (fun d -> d > 1) domains))
    benchmarks

let pp_par_and ppf rows =
  Format.fprintf ppf
    "== hardware and-parallelism: parcall frames on OCaml domains ==@,";
  Format.fprintf ppf "%-12s %8s %12s %10s %9s %8s %7s %6s %5s %5s@,"
    "benchmark" "domains" "wall-ms" "solutions" "speedup" "matches" "frames"
    "slots" "spo" "pdo";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %8d %12.2f %10d %8.2fx %8s %7d %6d %5d %5d@,"
        r.a_label r.a_domains r.a_wall_ms r.a_solutions r.a_speedup
        (if r.a_matches_seq then "yes" else "NO")
        r.a_frames r.a_slots r.a_spo_hits r.a_pdo_hits)
    rows;
  Format.fprintf ppf "@,"

let par_and_json rows =
  let row r =
    Json.Obj
      [ ("benchmark", Json.Str r.a_label);
        ("domains", Json.int r.a_domains);
        ("wall_ms", Json.Num r.a_wall_ms);
        ("solutions", Json.int r.a_solutions);
        ("speedup", Json.Num r.a_speedup);
        ("matches_seq", Json.Bool r.a_matches_seq);
        ("frames", Json.int r.a_frames);
        ("slots", Json.int r.a_slots);
        ("spo_hits", Json.int r.a_spo_hits);
        ("pdo_hits", Json.int r.a_pdo_hits);
        ("steals", Json.int r.a_steals);
        ("host_cores", Json.int (host_cores ()));
        ("recommended_domains", Json.int (recommended_domains ())) ]
  in
  Json.to_string
    (Json.Obj
       [ ("host", host_json ());
         ("rows", Json.List (List.map row rows)) ])
  ^ "\n"

(* The par-or sweep's search benchmarks plus the structure- and
   arithmetic-heavy workloads (symbolic differentiation, matrix
   arithmetic, recursion-bound programs, sorting) that exercise the
   clause compiler's get/unify and put paths. *)
let seq_core_benchmarks =
  par_or_benchmarks
  @ [ "pderiv"; "matrix"; "hanoi"; "takeuchi"; "bt_cluster"; "quick_sort" ]

let seq_core_engines =
  [ Engine.Sequential; Engine.And_parallel; Engine.Or_parallel; Engine.Par_or ]

let canonical_digest = Ace_check.Canon.digest

(* Runs every benchmark on every engine at one agent/domain — first
   interpreted, then on the compiled clause code (engine tag suffixed
   with "/c") — reporting the best wall time of [repeat] runs.  All four
   engines execute the same programs, so the rows double as a
   cross-engine semantic check, and each interpreted/compiled pair as a
   compiler check. *)
let run_seq_core ?(benchmarks = seq_core_benchmarks)
    ?(engines = seq_core_engines) ?(repeat = 5) ?size_of () =
  List.concat_map
    (fun name ->
      let b = Programs.find name in
      let size =
        match size_of with Some f -> f b | None -> b.Programs.default_size
      in
      let program = b.Programs.program size and query = b.Programs.query size in
      List.concat_map
        (fun kind ->
          List.map
            (fun compile ->
              let config =
                { Config.default with Config.agents = 1; compile }
              in
              let measure () =
                (* program loading (parse, consult, freeze) stays outside
                   the timed region: these rows measure the resolution
                   hot path, and the load cost is identical across
                   engines and execution modes.  A fresh database per run
                   keeps runs independent. *)
                let p = Ace_lang.Program.consult_string program in
                let q = Ace_lang.Program.parse_query query in
                let db = Ace_lang.Program.db p in
                Ace_lang.Database.freeze db;
                (* collect the previous run's garbage so each timed run
                   starts from the same heap state *)
                Gc.full_major ();
                let t0 = Unix.gettimeofday () in
                let r = Engine.solve kind config db q.Ace_lang.Program.goal in
                let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
                (ms, r)
              in
              let runs = List.init (max 1 repeat) (fun _ -> measure ()) in
              let best_ms, best =
                List.fold_left
                  (fun (am, ar) (m, r) -> if m < am then (m, r) else (am, ar))
                  (List.hd runs) (List.tl runs)
              in
              {
                c_label = name;
                c_engine =
                  Engine.kind_to_string kind ^ (if compile then "/c" else "");
                c_wall_ms = best_ms;
                c_solutions = List.length best.Engine.solutions;
                c_digest = canonical_digest best.Engine.solutions;
                c_stats = best.Engine.stats;
              })
            [ false; true ])
        engines)
    benchmarks

(* Geometric-mean wall-clock speedup of the compiled rows over their
   interpreted counterparts, per engine tag ("seq" -> seq vs seq/c). *)
let seq_core_speedups rows =
  let tags =
    List.filter_map
      (fun r ->
        match String.index_opt r.c_engine '/' with
        | Some _ -> None
        | None -> Some r.c_engine)
      rows
    |> List.sort_uniq compare
  in
  List.filter_map
    (fun tag ->
      let ratios =
        List.filter_map
          (fun r ->
            if r.c_engine <> tag then None
            else
              List.find_opt
                (fun r' ->
                  r'.c_label = r.c_label && r'.c_engine = tag ^ "/c")
                rows
              |> Option.map (fun r' ->
                     if r'.c_wall_ms > 0.0 then r.c_wall_ms /. r'.c_wall_ms
                     else 1.0))
          rows
      in
      match ratios with
      | [] -> None
      | _ ->
        let n = float_of_int (List.length ratios) in
        let g =
          exp (List.fold_left (fun acc x -> acc +. log x) 0.0 ratios /. n)
        in
        Some (tag, g))
    tags

(* GC minor words allocated per solution (the engine facade samples the
   deltas into the row's stats). *)
let words_per_solution r =
  float_of_int r.c_stats.Stats.minor_words
  /. float_of_int (max 1 r.c_solutions)

(* For a compiled row, the interpreted counterpart's minor-words/solution
   divided by the compiled row's: > 1 means the compiled path allocates
   less.  [None] for interpreted rows and unpaired tags. *)
let alloc_ratio rows r =
  match String.index_opt r.c_engine '/' with
  | None -> None
  | Some i ->
    let tag = String.sub r.c_engine 0 i in
    List.find_opt
      (fun r' -> r'.c_label = r.c_label && r'.c_engine = tag)
      rows
    |> Option.map (fun r' ->
           (* a zero-allocation compiled row divides by one word so the
              ratio stays finite while still reporting the full win *)
           words_per_solution r' /. Float.max (words_per_solution r) 1.0)

let pp_seq_core ppf rows =
  Format.fprintf ppf "== sequential-core hot path: wall-clock per run ==@,";
  Format.fprintf ppf "%-12s %6s %12s %10s %12s %8s  %s@," "benchmark" "engine"
    "wall-ms" "solutions" "wds/sol" "alloc-x" "digest";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %6s %12.2f %10d %12.1f %8s  %s@," r.c_label
        r.c_engine r.c_wall_ms r.c_solutions (words_per_solution r)
        (match alloc_ratio rows r with
        | Some x -> Printf.sprintf "%.2fx" x
        | None -> "-")
        r.c_digest)
    rows;
  List.iter
    (fun (tag, g) ->
      Format.fprintf ppf "compiled speedup geomean (%s): %.2fx@," tag g)
    (seq_core_speedups rows);
  Format.fprintf ppf "@,"

let seq_core_json rows =
  let row r =
    Json.Obj
      ([ ("benchmark", Json.Str r.c_label);
         ("engine", Json.Str r.c_engine);
         ("wall_ms", Json.Num r.c_wall_ms);
         ("solutions", Json.int r.c_solutions);
         ("digest", Json.Str r.c_digest);
         ("words_per_solution", Json.Num (words_per_solution r)) ]
      @ (match alloc_ratio rows r with
        | Some x -> [ ("alloc_ratio_vs_interpreted", Json.Num x) ]
        | None -> [])
      @ [ ("host_cores", Json.int (host_cores ()));
          ("recommended_domains", Json.int (recommended_domains ()));
          ("stats", Metrics.stats_to_json r.c_stats) ])
  in
  let speedups =
    Json.Obj
      (List.map (fun (tag, g) -> (tag, Json.Num g)) (seq_core_speedups rows))
  in
  Json.to_string
    (Json.Obj
       [ ("host", host_json ());
         ("compiled_speedup_geomean", speedups);
         ("rows", Json.List (List.map row rows)) ])
  ^ "\n"

(* Expected-digest files: one "benchmark engine solutions digest" line per
   row (seed-recorded; see bench/seq_core_expected.txt). *)
let parse_expected text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         match String.split_on_char ' ' (String.trim line) with
         | [ bench; engine; sols; digest ] ->
           Some ((bench, engine), (int_of_string sols, digest))
         | _ -> None)

let expected_of_rows rows =
  let buf = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %d %s\n" r.c_label r.c_engine r.c_solutions
           r.c_digest))
    rows;
  Buffer.contents buf

(* Checks rows against a seed-recorded expected file; returns the list of
   divergences (empty = all solution sets match the seed). *)
let check_seq_core ~expected rows =
  let table = parse_expected expected in
  List.filter_map
    (fun r ->
      match List.assoc_opt (r.c_label, r.c_engine) table with
      | None -> None (* benchmark added after the seed recording *)
      | Some (sols, digest) ->
        if sols = r.c_solutions && String.equal digest r.c_digest then None
        else
          Some
            (Printf.sprintf
               "%s/%s: expected %d solutions (digest %s), got %d (digest %s)"
               r.c_label r.c_engine sols digest r.c_solutions r.c_digest))
    rows

(* ------------------------------------------------------------------ *)
(* Allocation-regression gate                                          *)
(* ------------------------------------------------------------------ *)

(* Pinned-baseline file: one "benchmark engine words_per_solution" line
   per row (see bench/seq_core_alloc_expected.txt).  Allocation per
   solution is deterministic up to small GC-sampling noise, so a wide
   relative tolerance suffices and wall-clock noise never enters. *)
let alloc_expected_of_rows rows =
  let buf = Buffer.create 256 in
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf "%s %s %.1f\n" r.c_label r.c_engine
           (words_per_solution r)))
    rows;
  Buffer.contents buf

let parse_alloc_expected text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         match String.split_on_char ' ' (String.trim line) with
         | [ bench; engine; words ] ->
           Some ((bench, engine), float_of_string words)
         | _ -> None)

(* Checks rows against the pinned baselines; a row regresses when its
   minor-words/solution exceeds the pinned value by more than
   [tolerance] (relative, default 10%).  Rows without a pinned value
   pass (benchmark added after recording).  Returns the regressions. *)
let check_alloc ?(tolerance = 0.10) ~expected rows =
  let table = parse_alloc_expected expected in
  List.filter_map
    (fun r ->
      match List.assoc_opt (r.c_label, r.c_engine) table with
      | None -> None
      | Some pinned ->
        let current = words_per_solution r in
        (* an extra word of slack keeps near-zero baselines meaningful *)
        if current <= (pinned *. (1.0 +. tolerance)) +. 1.0 then None
        else
          Some
            (Printf.sprintf
               "%s/%s: %.1f minor words/solution, pinned %.1f (+%.0f%% > %.0f%% \
                tolerance)"
               r.c_label r.c_engine current pinned
               ((current /. Float.max pinned 1e-9 -. 1.0) *. 100.0)
               (tolerance *. 100.0)))
    rows

let pp_memory ppf rows =
  Format.fprintf ppf
    "== X2: control-stack allocation with/without LPCO (words) ==@,";
  Format.fprintf ppf "%-12s %12s %12s %10s@," "benchmark" "no LPCO" "LPCO" "saved";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %12d %12d %9.1f%%@," r.m_label r.unopt_words
        r.opt_words r.saving)
    rows;
  Format.fprintf ppf "@,"
