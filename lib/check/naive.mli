(** Bounded semi-naive bottom-up (Datalog) evaluation of the tabled
    cases — the independent reference for the tabled oracle rows.  Shares
    no code with the engines: no terms, no unification, no answer
    tables, so an SLG bug (or a seeded {!Ace_lang.Table.mutation})
    cannot cancel out of the differential comparison. *)

type outcome =
  | Solutions of Ace_term.Term.t list
      (** instantiated query goals, one per derived fact matching the
          query — ground, so multiset comparison via {!Canon} is exact *)
  | Overflow  (** more than [max_facts] derived facts *)
  | Unsupported of string
      (** outside the Datalog fragment (builtins, compound arguments,
          parallel conjunctions, non-range-restricted rules) *)

(** Evaluates the case bottom-up to fixpoint; [max_facts]
    (default 20000) bounds the derived-fact count, so termination does
    not depend on the generator. *)
val run : ?max_facts:int -> Gen_prog.t -> outcome
