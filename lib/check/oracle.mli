(** Differential oracle: one generated case, all four engines, a matrix of
    optimization settings and seeded chaos schedules; solution multisets
    are compared alpha-canonically against the sequential reference. *)

type outcome = Solutions of string list | Error of string

type mutation = { m_engine : Ace_core.Engine.kind; m_drop : int }
(** Drop generated clause [m_drop mod clause_count] from the program copy
    given to [m_engine] only — an injected semantics bug the oracle must
    catch (mutation smoke test). *)

type verdict =
  | Agree of int  (** number of runs compared against the reference *)
  | Skip of string  (** case not comparable (e.g. solution cap exceeded) *)
  | Disagree of {
      d_label : string;  (** engine/config label, e.g. ["or@4 chaos#1"] *)
      d_expected : outcome;
      d_got : outcome;
      d_chaos : string;  (** chaos spec for replay, or ["off"] *)
    }

val outcome_to_string : outcome -> string
val pp_outcome : Format.formatter -> outcome -> unit

(** Runs one engine on program source, collecting solutions as sorted
    canonical strings; engine / arithmetic / syntax errors become
    [Error]. *)
val run_engine :
  ?chaos:Ace_sched.Chaos.t ->
  ?profiled:bool ->
  Ace_core.Engine.kind ->
  Ace_machine.Config.t ->
  program:string ->
  query:string ->
  outcome

(** [check ~schedules case] runs the full matrix: sequential reference,
    jittered sequential, and/or engines with each optimization schema on
    and off plus grain/chunk/threshold sweeps, the domains engine, and
    [schedules] seeded chaos schedules per parallel engine (derived from
    the case seed, so counterexamples replay from the printed pair).
    [extra_chaos] appends one run per engine under exactly that spec —
    counterexample replay from a printed [--check-chaos] line.

    One matrix row always runs with the per-predicate profiler enabled;
    [profile_all] enables it on {e every} row — profiling must never
    perturb the solution multiset. *)
val check :
  ?schedules:int ->
  ?mutation:mutation ->
  ?extra_chaos:Ace_sched.Chaos.t ->
  ?profile_all:bool ->
  Gen_prog.t ->
  verdict

(** True when [check] returns [Disagree] — the shrinker's property. *)
val fails :
  ?schedules:int ->
  ?mutation:mutation ->
  ?extra_chaos:Ace_sched.Chaos.t ->
  ?profile_all:bool ->
  Gen_prog.t ->
  bool
