(* Greedy structural shrinking of a failing case to a local minimum: try
   ever-smaller variants, keep any that still fails the property, repeat
   to fixpoint.  Reductions, most aggressive first: drop a generated
   clause, drop a query goal, drop a body goal, collapse a parallel
   conjunction to one branch, shorten a list literal. *)

open Gen_prog

let replace i x l = List.mapi (fun j y -> if j = i then x else y) l
let remove i l = List.filteri (fun j _ -> j <> i) l

let rec term_variants t =
  match t with
  | Lst ts ->
    let shorter = if ts = [] then [] else [ Lst (remove (List.length ts - 1) ts) ] in
    shorter
    @ List.concat
        (List.mapi
           (fun i ti ->
             List.map (fun ti' -> Lst (replace i ti' ts)) (term_variants ti))
           ts)
  | App (f, args) ->
    List.concat
      (List.mapi
         (fun i ai ->
           List.map (fun ai' -> App (f, replace i ai' args)) (term_variants ai))
         args)
  | Int _ | Atm _ | Var _ -> []

let goal_variants g =
  match g with
  | Call t -> List.map (fun t' -> Call t') (term_variants t)
  | Par (l, r) ->
    [ Call l; Call r ]
    @ List.map (fun l' -> Par (l', r)) (term_variants l)
    @ List.map (fun r' -> Par (l, r')) (term_variants r)

let clause_variants c =
  List.concat
    (List.mapi
       (fun i g ->
         ({ c with c_body = remove i c.c_body } :: [])
         @ List.map
             (fun g' -> { c with c_body = replace i g' c.c_body })
             (goal_variants g))
       c.c_body)

(* Smaller variants of a whole case, most aggressive first. *)
let case_variants (t : t) =
  let drop_clauses =
    List.mapi (fun i _ -> { t with clauses = remove i t.clauses }) t.clauses
  in
  let drop_query =
    if List.length t.query > 1 then
      List.mapi (fun i _ -> { t with query = remove i t.query }) t.query
    else []
  in
  let clause_level =
    List.concat
      (List.mapi
         (fun i c ->
           List.map
             (fun c' -> { t with clauses = replace i c' t.clauses })
             (clause_variants c))
         t.clauses)
  in
  let query_level =
    List.concat
      (List.mapi
         (fun i g ->
           List.map
             (fun g' -> { t with query = replace i g' t.query })
             (goal_variants g))
         t.query)
  in
  drop_clauses @ drop_query @ clause_level @ query_level

let minimize ~property (case : t) =
  let steps = ref 0 in
  let rec fix case =
    if !steps > 500 then case
    else
      let rec first = function
        | [] -> None
        | v :: rest ->
          incr steps;
          if property v then Some v else first rest
      in
      match first (case_variants case) with
      | Some smaller -> fix smaller
      | None -> case
  in
  fix case
