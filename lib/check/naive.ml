(* Bounded semi-naive bottom-up evaluation of the tabled (Datalog)
   cases: an independent reference for the tabled oracle rows.

   The evaluator shares nothing with the engines — no terms, no
   unification, no tables — so a bug in the SLG machinery (or a seeded
   [Table.mutation]) cannot cancel out of the comparison.  It handles
   exactly the fragment the tabled generator emits: constant arguments
   (atoms / integers), variables, and bodies made of user-predicate
   calls.  Anything else — builtins, compound arguments, parallel
   conjunctions, rules whose head variables do not all occur in the
   body — is [Unsupported], which the oracle reports as a skip.

   Semi-naive iteration: each round joins every rule with at least one
   body literal restricted to the previous round's delta, so already
   drawn conclusions are not re-derived.  The total fact count is
   bounded ([Overflow] beyond it) — termination does not depend on the
   generator's well-formedness. *)

open Gen_prog

type outcome =
  | Solutions of Ace_term.Term.t list
  | Overflow
  | Unsupported of string

(* ------------------------------------------------------------------ *)
(* The Datalog fragment                                                *)
(* ------------------------------------------------------------------ *)

type arg = C of term (* Atm or Int — compared structurally *) | V of string

exception Out of string

let arg_of_term = function
  | Atm _ | Int _ as c -> C c
  | Var v -> V v
  | Lst _ | App _ -> raise (Out "compound argument")

let atom_of_term t =
  match t with
  | App (p, args) -> (p, List.map arg_of_term args)
  | Atm p -> (p, [])
  | _ -> raise (Out "head/goal is not a predicate call")

let atom_of_goal = function
  | Call t -> atom_of_term t
  | Par _ -> raise (Out "parallel conjunction")

type rule = { r_head : string * arg list; r_body : (string * arg list) list }

let range_restricted { r_head = _, hargs; r_body } =
  let bound =
    List.concat_map (fun (_, args) ->
        List.filter_map (function V v -> Some v | C _ -> None) args)
      r_body
  in
  List.for_all (function C _ -> true | V v -> List.mem v bound) hargs

(* ------------------------------------------------------------------ *)
(* Fact store                                                          *)
(* ------------------------------------------------------------------ *)

type store = {
  seen : (string * term list, unit) Hashtbl.t;
  by_pred : (string, term list list ref) Hashtbl.t;
  mutable count : int;
}

let facts_of store p =
  match Hashtbl.find_opt store.by_pred p with Some r -> !r | None -> []

let add store (p, tuple) =
  if Hashtbl.mem store.seen (p, tuple) then false
  else begin
    Hashtbl.replace store.seen (p, tuple) ();
    let r =
      match Hashtbl.find_opt store.by_pred p with
      | Some r -> r
      | None ->
        let r = ref [] in
        Hashtbl.replace store.by_pred p r;
        r
    in
    r := tuple :: !r;
    store.count <- store.count + 1;
    true
  end

(* Environment: variable name -> constant, built by matching. *)
let match_args args tuple env =
  let rec go args tuple env =
    match (args, tuple) with
    | [], [] -> Some env
    | C c :: args, t :: tuple -> if c = t then go args tuple env else None
    | V v :: args, t :: tuple -> (
      match List.assoc_opt v env with
      | Some t' -> if t = t' then go args tuple env else None
      | None -> go args tuple ((v, t) :: env))
    | _ -> None
  in
  go args tuple env

let instantiate env args =
  List.map (function C c -> c | V v -> List.assoc v env) args

(* ------------------------------------------------------------------ *)
(* Evaluation                                                          *)
(* ------------------------------------------------------------------ *)

let default_max_facts = 20_000

let term_to_engine = function
  | Atm a -> Ace_term.Term.atom a
  | Int n -> Ace_term.Term.int n
  | Lst _ | App _ | Var _ -> assert false (* store holds constants only *)

let run ?(max_facts = default_max_facts) (case : Gen_prog.t) =
  match
    let rules =
      List.map
        (fun c ->
          let r =
            { r_head = atom_of_term c.c_head;
              r_body = List.map atom_of_goal c.c_body }
          in
          if not (range_restricted r) then
            raise (Out "head variable unbound by the body");
          r)
        case.clauses
    in
    let query =
      match case.query with
      | [ g ] -> atom_of_goal g
      | _ -> raise (Out "query is not a single call")
    in
    (rules, query)
  with
  | exception Out msg -> Unsupported msg
  | rules, (qp, qargs) -> (
    let store =
      { seen = Hashtbl.create 256; by_pred = Hashtbl.create 16; count = 0 }
    in
    (* delta per predicate from the previous round; round 0 treats every
       rule as all-delta so facts (empty bodies) seed the store *)
    let delta = ref None in
    let delta_of p =
      match !delta with
      | None -> facts_of store p
      | Some d -> ( match Hashtbl.find_opt d p with Some r -> !r | None -> [])
    in
    let exception Too_many in
    let eval_round () =
      let fresh = Hashtbl.create 16 in
      let emit (p, tuple) =
        if add store (p, tuple) then begin
          if store.count > max_facts then raise Too_many;
          let r =
            match Hashtbl.find_opt fresh p with
            | Some r -> r
            | None ->
              let r = ref [] in
              Hashtbl.replace fresh p r;
              r
          in
          r := tuple :: !r
        end
      in
      List.iter
        (fun rule ->
          let nbody = List.length rule.r_body in
          (* literal [d] reads the delta, the rest read the full store;
             round 0 (delta = None) evaluates each rule once, all-full *)
          let splits = if !delta = None then [ -1 ] else List.init nbody Fun.id in
          List.iter
            (fun d ->
              let rec join i body env =
                match body with
                | [] -> emit (fst rule.r_head, instantiate env (snd rule.r_head))
                | (p, args) :: rest ->
                  let source = if i = d then delta_of p else facts_of store p in
                  List.iter
                    (fun tuple ->
                      match match_args args tuple env with
                      | Some env -> join (i + 1) rest env
                      | None -> ())
                    source
              in
              join 0 rule.r_body [])
            splits)
        rules;
      delta := Some fresh;
      Hashtbl.fold (fun _ r any -> any || !r <> []) fresh false
    in
    match
      let continue = ref true in
      while !continue do
        continue := eval_round ()
      done
    with
    | exception Too_many -> Overflow
    | () ->
      (* solutions are the instantiated query goal, matching what the
         engines record for a solved query *)
      let sols =
        List.filter_map
          (fun tuple ->
            match match_args qargs tuple [] with
            | Some env ->
              Some
                (Ace_term.Term.app qp
                   (List.map term_to_engine (instantiate env qargs)))
            | None -> None)
          (facts_of store qp)
      in
      Solutions sols)
