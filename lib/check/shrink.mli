(** Greedy structural shrinking of failing generated cases. *)

(** [minimize ~property case] returns a locally minimal variant of [case]
    for which [property] still holds (the property is "the oracle still
    fails").  Reductions: drop a clause, drop a query or body goal,
    collapse ['&'] to one branch, shorten a list literal.  Bounded at 500
    property evaluations. *)
val minimize : property:(Gen_prog.t -> bool) -> Gen_prog.t -> Gen_prog.t
