(** Alpha-canonical solution normalization, shared by the differential
    oracle, the harness reproducibility checks, and the test suite.

    Two engine runs agree when their solution {e multisets} agree:
    discovery order is scheduler-dependent and variable identifiers are
    renaming-dependent, so solutions are compared as sorted lists of
    alpha-canonical strings ([Ace_term.Pp.to_canonical_string]). *)

(** Alpha-canonical strings in the solutions' own order. *)
val strings : Ace_term.Term.t list -> string list

(** Alpha-canonical strings, sorted: the multiset normal form. *)
val multiset : Ace_term.Term.t list -> string list

(** Multiset equality of two solution lists. *)
val equal : Ace_term.Term.t list -> Ace_term.Term.t list -> bool

(** Hex MD5 of the multiset normal form, for compact run digests. *)
val digest : Ace_term.Term.t list -> string
