(* Seeded random generator of closed Prolog programs plus a query, over
   the subset all four engines accept: user predicates, ground arithmetic,
   comparisons, unification, list library calls and independent parallel
   conjunctions.  No cut, disjunction, if-then-else or negation (the
   or-parallel engines reject those).

   Termination is by construction:
   - generated predicates only call strictly lower-numbered predicates, so
     the call graph is acyclic;
   - the only recursive predicates are the fixed list prelude
     (mem_l/app_l/sel_l), and every generated call to them puts a ground
     list literal in the structurally-descending argument.

   The generator keeps a global budget of nondeterministic goals per
   program so the solution count stays small enough to compare in full. *)

module Rng = Ace_sched.Rng

type term =
  | Int of int
  | Atm of string
  | Var of string
  | Lst of term list
  | App of string * term list

type goal =
  | Call of term
  | Par of term * term (* g1 & g2, generated variable-free: independent *)

type clause = { c_head : term; c_body : goal list }

type t = {
  seed : int;
  arities : int array; (* arity of generated predicate [i] *)
  clauses : clause list; (* flat, grouped by predicate in order *)
  query : goal list;
  tabled : (string * int) list; (* predicates under [:- table] (else []) *)
}

(* ------------------------------------------------------------------ *)
(* Rendering                                                           *)
(* ------------------------------------------------------------------ *)

let infix_ops =
  [ "+"; "-"; "*"; "is"; "="; "<"; ">"; "=<"; ">="; "=:="; "=="; "@<" ]

let rec bpp_term b t =
  match t with
  | Int n -> if n < 0 then Printf.bprintf b "(%d)" n else Printf.bprintf b "%d" n
  | Atm a -> Buffer.add_string b a
  | Var v -> Buffer.add_string b v
  | Lst ts ->
    Buffer.add_char b '[';
    List.iteri
      (fun i t ->
        if i > 0 then Buffer.add_char b ',';
        bpp_term b t)
      ts;
    Buffer.add_char b ']'
  | App (op, [ l; r ]) when List.mem op infix_ops ->
    Buffer.add_char b '(';
    bpp_term b l;
    Printf.bprintf b " %s " op;
    bpp_term b r;
    Buffer.add_char b ')'
  | App (f, args) ->
    Buffer.add_string b f;
    Buffer.add_char b '(';
    List.iteri
      (fun i t ->
        if i > 0 then Buffer.add_char b ',';
        bpp_term b t)
      args;
    Buffer.add_char b ')'

let bpp_goal b = function
  | Call t -> bpp_term b t
  | Par (l, r) ->
    bpp_term b l;
    Buffer.add_string b " & ";
    bpp_term b r

let bpp_clause b { c_head; c_body } =
  bpp_term b c_head;
  (match c_body with
  | [] -> ()
  | gs ->
    Buffer.add_string b " :- ";
    List.iteri
      (fun i g ->
        if i > 0 then Buffer.add_string b ", ";
        bpp_goal b g)
      gs);
  Buffer.add_string b ".\n"

(* The fixed list library; every generated call drives recursion with a
   ground list literal, so these always terminate. *)
let prelude =
  "mem_l(X, [X|_]).\n\
   mem_l(X, [_|T]) :- mem_l(X, T).\n\
   app_l([], Y, Y).\n\
   app_l([H|T], Y, [H|R]) :- app_l(T, Y, R).\n\
   sel_l(X, [X|T], T).\n\
   sel_l(X, [H|T], [H|R]) :- sel_l(X, T, R).\n"

let program_text ?drop t =
  let b = Buffer.create 512 in
  List.iter
    (fun (name, arity) -> Printf.bprintf b ":- table(%s/%d).\n" name arity)
    t.tabled;
  Buffer.add_string b prelude;
  List.iteri
    (fun i c -> if drop <> Some i then bpp_clause b c)
    t.clauses;
  Buffer.contents b

let query_text t =
  let b = Buffer.create 64 in
  List.iteri
    (fun i g ->
      if i > 0 then Buffer.add_string b ", ";
      bpp_goal b g)
    t.query;
  Buffer.contents b

let clause_count t = List.length t.clauses

let pp ppf t =
  Format.fprintf ppf "%% seed %d@.%s?- %s.@." t.seed
    (program_text t) (query_text t)

(* ------------------------------------------------------------------ *)
(* Generation                                                          *)
(* ------------------------------------------------------------------ *)

type st = {
  rng : Rng.t;
  mutable fresh : int; (* per-clause fresh-variable counter *)
  mutable nondet : int; (* global budget of nondeterministic goals *)
}

let pred_name i = Printf.sprintf "p%d" i

let fresh_var st =
  let v = Printf.sprintf "V%d" st.fresh in
  st.fresh <- st.fresh + 1;
  Var v

let small_int st = Int (Rng.int st.rng 10)

let ground_list st =
  let n = 1 + Rng.int st.rng 3 in
  Lst (List.init n (fun _ -> small_int st))

let ground_atom st = Atm [| "a"; "b"; "c" |].(Rng.int st.rng 3)

let ground_term st =
  match Rng.int st.rng 4 with
  | 0 -> ground_atom st
  | 1 -> ground_list st
  | 2 -> App ("f", [ small_int st; ground_atom st ])
  | _ -> small_int st

(* Ground arithmetic expression, depth-bounded; only total operators. *)
let rec arith_expr st depth =
  if depth = 0 || Rng.int st.rng 3 = 0 then small_int st
  else
    let op = [| "+"; "-"; "*" |].(Rng.int st.rng 3) in
    App (op, [ arith_expr st (depth - 1); arith_expr st (depth - 1) ])

(* A goal that mentions no variables at all (safe on either side of '&'). *)
let ground_goal st npreds arities =
  match Rng.int st.rng (if npreds > 0 then 3 else 2) with
  | 0 ->
    let cmp = [| "<"; "=<"; "=:=" |].(Rng.int st.rng 3) in
    App (cmp, [ small_int st; small_int st ])
  | 1 -> App ("integer", [ small_int st ])
  | _ ->
    let j = Rng.int st.rng npreds in
    let args = List.init arities.(j) (fun _ -> ground_term st) in
    App (pred_name j, args)

(* An argument for a call: an in-scope variable, a fresh one, or ground. *)
let call_arg st pool =
  match Rng.int st.rng 10 with
  | 0 | 1 | 2 | 3 when !pool <> [] ->
    List.nth !pool (Rng.int st.rng (List.length !pool))
  | 4 | 5 | 6 ->
    let v = fresh_var st in
    pool := v :: !pool;
    v
  | _ -> ground_term st

(* One body goal for predicate [i]; [pool] is the in-scope variable pool. *)
let body_goal st ~i arities pool =
  let nondet_ok = st.nondet < 5 in
  let k = Rng.int st.rng 100 in
  if i > 0 && k < 30 then begin
    let j = Rng.int st.rng i in
    let args = List.init arities.(j) (fun _ -> call_arg st pool) in
    Call (App (pred_name j, args))
  end
  else if k < 55 && nondet_ok then begin
    st.nondet <- st.nondet + 1;
    match Rng.int st.rng 3 with
    | 0 ->
      let v = call_arg st pool in
      Call (App ("mem_l", [ v; ground_list st ]))
    | 1 ->
      let a = fresh_var st and b = fresh_var st in
      pool := a :: b :: !pool;
      Call (App ("app_l", [ a; b; ground_list st ]))
    | _ ->
      let v = fresh_var st and r = fresh_var st in
      pool := v :: !pool;
      Call (App ("sel_l", [ v; ground_list st; r ]))
  end
  else if k < 70 then begin
    let v = fresh_var st in
    pool := v :: !pool;
    Call (App ("is", [ v; arith_expr st 2 ]))
  end
  else if k < 80 then
    Call (App ([| "<"; "=<"; "=:=" |].(Rng.int st.rng 3),
               [ small_int st; small_int st ]))
  else if k < 90 then begin
    let v = call_arg st pool in
    Call (App ("=", [ v; ground_term st ]))
  end
  else
    (* variable-free branches: strictly independent by construction *)
    Par (ground_goal st i arities, ground_goal st i arities)

let gen_clause st ~i arities =
  st.fresh <- 0;
  let arity = arities.(i) in
  let pool = ref [] in
  let head_args =
    List.init arity (fun k ->
        if Rng.int st.rng 10 < 7 then begin
          let v = Var (Printf.sprintf "A%d" k) in
          pool := v :: !pool;
          v
        end
        else ground_term st)
  in
  let head =
    if arity = 0 then Atm (pred_name i) else App (pred_name i, head_args)
  in
  let ngoals = Rng.int st.rng 4 in
  let body = List.init ngoals (fun _ -> body_goal st ~i arities pool) in
  { c_head = head; c_body = body }

(* ------------------------------------------------------------------ *)
(* Tabled (Datalog) cases                                              *)
(* ------------------------------------------------------------------ *)

(* Every fourth seed generates a *tabled* case instead: a ground edge
   relation over a small node universe plus [:- table]d recursive rules —
   left-recursive, right-recursive, doubly recursive, mutually recursive
   or same-generation — and a single tabled (or tabled-via-wrapper) query.
   These would loop forever under plain SLD; termination comes from the
   answer table, and the oracle checks them against the independent
   bottom-up evaluator ({!Naive}) rather than the sequential engine. *)

let generate_tabled st seed =
  let nnodes = 4 + Rng.int st.rng 5 in
  let node i = Atm (Printf.sprintf "n%d" i) in
  let rand_node () = node (Rng.int st.rng nnodes) in
  (* a spine cycle (usually) so recursion must cross a loop, plus extras *)
  let edge_facts =
    let ring =
      List.concat
        (List.init nnodes (fun i ->
             if Rng.int st.rng 4 > 0 then
               [ { c_head = App ("e0", [ node i; node ((i + 1) mod nnodes) ]);
                   c_body = [] } ]
             else []))
    in
    let extras =
      List.init
        (1 + Rng.int st.rng nnodes)
        (fun _ ->
          { c_head = App ("e0", [ rand_node (); rand_node () ]); c_body = [] })
    in
    ring @ extras
  in
  let x = Var "X" and y = Var "Y" and z = Var "Z" and w = Var "W" in
  let e a b = Call (App ("e0", [ a; b ])) in
  let t0 a b = App ("t0", [ a; b ]) in
  let t1 a b = App ("t1", [ a; b ]) in
  let base = { c_head = t0 x y; c_body = [ e x y ] } in
  let rules, tabled =
    match Rng.int st.rng 5 with
    | 0 ->
      (* left-recursive transitive closure *)
      ( [ base; { c_head = t0 x y; c_body = [ Call (t0 x z); e z y ] } ],
        [ ("t0", 2) ] )
    | 1 ->
      (* right-recursive transitive closure *)
      ( [ base; { c_head = t0 x y; c_body = [ e x z; Call (t0 z y) ] } ],
        [ ("t0", 2) ] )
    | 2 ->
      (* doubly recursive transitive closure *)
      ( [ base; { c_head = t0 x y; c_body = [ Call (t0 x z); Call (t0 z y) ] } ],
        [ ("t0", 2) ] )
    | 3 ->
      (* mutual recursion through a tabled alias *)
      ( [ base;
          { c_head = t0 x y; c_body = [ Call (t1 x z); e z y ] };
          { c_head = t1 x y; c_body = [ Call (t0 x y) ] } ],
        [ ("t0", 2); ("t1", 2) ] )
    | _ ->
      (* same generation over the edge relation *)
      ( List.init nnodes (fun i ->
            { c_head = App ("t0", [ node i; node i ]); c_body = [] })
        @ [ { c_head = t0 x y;
              c_body = [ e z x; Call (t0 z w); e w y ] } ],
        [ ("t0", 2) ] )
  in
  (* sometimes query through an untabled wrapper, so plain SLD clauses
     resolve against a completed table *)
  let wrapper, qname =
    if Rng.int st.rng 3 = 0 then
      ([ { c_head = App ("q0", [ x; y ]); c_body = [ Call (t0 x y) ] } ], "q0")
    else ([], "t0")
  in
  let qarg bound = if bound then rand_node () else fresh_var st in
  let query =
    let pattern = Rng.int st.rng 3 in
    [ Call
        (App (qname, [ qarg (pattern = 0); qarg (pattern = 2) ])) ]
  in
  {
    seed;
    arities = [| 2 |];
    clauses = edge_facts @ rules @ wrapper;
    query;
    tabled;
  }

let generate ~seed =
  let st = { rng = Rng.create seed; fresh = 0; nondet = 0 } in
  if seed mod 4 = 3 then generate_tabled st seed
  else
  let npreds = 2 + Rng.int st.rng 4 in
  let arities = Array.init npreds (fun _ -> 1 + Rng.int st.rng 2) in
  let clauses =
    List.concat
      (List.init npreds (fun i ->
           let n = 1 + Rng.int st.rng 3 in
           List.init n (fun _ -> gen_clause st ~i arities)))
  in
  st.fresh <- 0;
  let query_goal j =
    let args = List.init arities.(j) (fun _ ->
        if Rng.int st.rng 4 = 0 then ground_term st
        else fresh_var st)
    in
    Call (App (pred_name j, args))
  in
  let query =
    let top = npreds - 1 in
    if Rng.int st.rng 3 = 0 && npreds > 1 then
      [ query_goal top; query_goal (Rng.int st.rng top) ]
    else [ query_goal top ]
  in
  { seed; arities; clauses; query; tabled = [] }
