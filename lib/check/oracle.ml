(* Differential oracle: runs one generated case on all four engines under
   a matrix of optimization settings and seeded chaos schedules, and
   compares alpha-canonical solution multisets against the sequential
   reference.

   Comparison rules:
   - reference succeeds with multiset S  -> every run must produce S
     (solutions compared as sorted lists of canonical strings, so
     discovery order and variable ids are irrelevant);
   - reference raises                    -> every run must raise (the
     parallel engines may surface a *different* branch's error first, so
     only the fact of an error is compared here; exact error texts are
     covered by directed unit tests).

   Cases whose reference run exceeds the solution cap are skipped — with a
   solution limit the engines legitimately take different prefixes. *)

module Config = Ace_machine.Config
module Chaos = Ace_sched.Chaos
module Engine = Ace_core.Engine

type outcome = Solutions of string list | Error of string

type mutation = { m_engine : Engine.kind; m_drop : int }

type verdict =
  | Agree of int
  | Skip of string
  | Disagree of {
      d_label : string;
      d_expected : outcome;
      d_got : outcome;
      d_chaos : string;
    }

let solution_cap = 2000

let outcome_to_string = function
  | Solutions [] -> "no (0 solutions)"
  | Solutions ss -> Printf.sprintf "%d solutions" (List.length ss)
  | Error m -> Printf.sprintf "error: %s" m

let pp_outcome ppf o =
  match o with
  | Error m -> Format.fprintf ppf "error: %s" m
  | Solutions ss ->
    Format.fprintf ppf "%d solutions" (List.length ss);
    List.iter (fun s -> Format.fprintf ppf "@.  %s" s) ss

(* ------------------------------------------------------------------ *)

let run_engine ?chaos ?(profiled = false) kind config ~program ~query =
  (* a fresh enabled profile per run: profiling must observe without
     perturbing, so a profiled row's solutions are compared like any
     other's *)
  let prof =
    if profiled then Ace_obs.Prof.create () else Ace_obs.Prof.disabled
  in
  match Engine.solve_program ?chaos ~prof kind config ~program ~query with
  | r -> Solutions (Canon.multiset r.Engine.solutions)
  | exception Ace_core.Errors.Engine_error m -> Error m
  | exception Ace_term.Arith.Error m -> Error ("arith: " ^ m)
  | exception Ace_lang.Program.Error m -> Error ("syntax: " ^ m)

(* A sample of cases also round-trips through an in-process server
   session (lib/serve): the program is prepared once, the query routed
   through [Session.query] over the session's overlay database.  This
   differentially checks the prepare/run facade, the overlay lookup
   path and the session locking against the same reference multiset as
   the direct engine rows. *)
let run_serve kind config ~program ~query =
  match
    let prepared = Engine.prepare_string program in
    let session = Ace_server.Session.create ~engine:kind ~config prepared in
    Ace_server.Session.query session query
  with
  | Ok a -> Solutions (Canon.multiset a.Ace_server.Session.terms)
  | Error m -> Error m
  | exception Ace_core.Errors.Engine_error m -> Error m
  | exception Ace_term.Arith.Error m -> Error ("arith: " ^ m)
  | exception Ace_lang.Program.Error m -> Error ("syntax: " ^ m)

let agrees ~reference outcome =
  match (reference, outcome) with
  | Solutions a, Solutions b -> a = b
  | Error _, Error _ -> true
  | _ -> false

(* The run matrix for one case.  [schedules] chaos seeds are derived from
   the case seed so a reported counterexample replays from (seed, spec)
   alone. *)
let matrix ?extra_chaos ~seed ~schedules () =
  let seq1 = Config.default in
  let all4 = Config.all_optimizations ~agents:4 () in
  let un4 = Config.unoptimized ~agents:4 () in
  let andor4 = { all4 with Config.par_and = true } in
  let chaos k = Some (Chaos.make ~seed:(seed + k) ()) in
  let fixed =
    [
      ("seq+jitter", Engine.Sequential, seq1, chaos 0);
      (* compiled-vs-interpreted rows: the reference always interprets,
         so each of these checks the clause compiler + dispatch tree
         against the template interpreter on every case *)
      ("seq compiled", Engine.Sequential,
       { seq1 with Config.compile = true }, None);
      ("and@4 compiled", Engine.And_parallel,
       { all4 with Config.compile = true }, None);
      ("or@4 compiled", Engine.Or_parallel,
       { all4 with Config.compile = true }, None);
      ("par@4 compiled", Engine.Par_or,
       { all4 with Config.compile = true }, None);
      ("par@4 and+or compiled", Engine.Par_or,
       { andor4 with Config.compile = true }, None);
      ("and@4", Engine.And_parallel, all4, None);
      ("and@4 unopt", Engine.And_parallel, un4, None);
      ("and@4 thresh", Engine.And_parallel,
       { all4 with Config.seq_threshold = 64 }, None);
      ("or@4", Engine.Or_parallel, all4, None);
      ("or@4 unopt", Engine.Or_parallel, un4, None);
      ("or@4 grain2", Engine.Or_parallel, { all4 with Config.grain = 2 }, None);
      ("or@4 chunk1", Engine.Or_parallel, { all4 with Config.chunk = 1 }, None);
      ("par@4", Engine.Par_or, all4, None);
      ("par@4 and+or", Engine.Par_or, andor4, None);
      ("par@4 and+or thresh", Engine.Par_or,
       { andor4 with Config.seq_threshold = 64 }, None);
      ("par@4 and+or nospo", Engine.Par_or,
       (* SPO off forces the parcall-frame path even when nobody is
          hungry, so the frame machinery is exercised on every case *)
       { andor4 with Config.spo = false }, None);
    ]
  in
  (* one always-profiled row: profiling must never perturb solutions *)
  let profiled_row =
    [ ("par@4 compiled profiled", Engine.Par_or,
       { andor4 with Config.compile = true }, None) ]
  in
  let sched =
    List.concat
      (List.init schedules (fun k ->
           [
             (Printf.sprintf "and@4 chaos#%d" k, Engine.And_parallel, all4,
              chaos (1 + k));
             (Printf.sprintf "or@4 chaos#%d" k, Engine.Or_parallel, all4,
              chaos (101 + k));
             (Printf.sprintf "par@4 chaos#%d" k, Engine.Par_or, all4,
              chaos (201 + k));
             (Printf.sprintf "par@4 and+or chaos#%d" k, Engine.Par_or,
              { andor4 with Config.spo = false }, chaos (301 + k));
           ]))
  in
  let extra =
    match extra_chaos with
    | None -> []
    | Some c ->
      [
        ("seq replay", Engine.Sequential, seq1, Some c);
        ("and@4 replay", Engine.And_parallel, all4, Some c);
        ("or@4 replay", Engine.Or_parallel, all4, Some c);
        ("par@4 replay", Engine.Par_or, all4, Some c);
      ]
  in
  (fixed @ sched @ extra, profiled_row)

(* The matrix for a *tabled* (Datalog) case: every engine, compiled and
   interpreted, plus chaos schedules — all compared against the
   independent bottom-up evaluator ({!Naive}), not the sequential
   engine, so a bug in the shared SLG machinery cannot cancel out.  A
   tabled query is a single call whose answers the table deduplicates,
   so set-vs-multiset comparison is exact. *)
let tabled_matrix ?extra_chaos ~seed ~schedules () =
  let seq1 = Config.default in
  let all4 = Config.all_optimizations ~agents:4 () in
  let c cfg = { cfg with Config.compile = true } in
  let chaos k = Some (Chaos.make ~seed:(seed + k) ()) in
  let fixed =
    [
      ("seq tabled", Engine.Sequential, seq1, None);
      ("seq tabled compiled", Engine.Sequential, c seq1, None);
      ("and@4 tabled", Engine.And_parallel, all4, None);
      ("and@4 tabled compiled", Engine.And_parallel, c all4, None);
      ("or@4 tabled", Engine.Or_parallel, all4, None);
      ("or@4 tabled compiled", Engine.Or_parallel, c all4, None);
      ("par@4 tabled", Engine.Par_or, all4, None);
      ("par@4 tabled compiled", Engine.Par_or, c all4, None);
    ]
  in
  let sched =
    List.concat
      (List.init schedules (fun k ->
           [
             (Printf.sprintf "and@4 tabled chaos#%d" k, Engine.And_parallel,
              all4, chaos (1 + k));
             (Printf.sprintf "or@4 tabled chaos#%d" k, Engine.Or_parallel,
              all4, chaos (101 + k));
             (Printf.sprintf "par@4 tabled chaos#%d" k, Engine.Par_or,
              c all4, chaos (201 + k));
           ]))
  in
  let extra =
    match extra_chaos with
    | None -> []
    | Some ch ->
      [
        ("seq tabled replay", Engine.Sequential, seq1, Some ch);
        ("par@4 tabled replay", Engine.Par_or, c all4, Some ch);
      ]
  in
  let profiled_row =
    [ ("par@4 tabled profiled", Engine.Par_or, c all4, None) ]
  in
  (fixed @ sched @ extra, profiled_row)

let check ?(schedules = 2) ?mutation ?extra_chaos ?(profile_all = false)
    (case : Gen_prog.t) =
  let program = Gen_prog.program_text case in
  let query = Gen_prog.query_text case in
  let mutated_program kind =
    match mutation with
    | Some { m_engine; m_drop } when m_engine = kind
                                     && Gen_prog.clause_count case > 0 ->
      Gen_prog.program_text ~drop:(m_drop mod Gen_prog.clause_count case) case
    | _ -> program
  in
  let tabled = case.Gen_prog.tabled <> [] in
  (* tabled cases loop under plain SLD, so the reference is the
     independent bottom-up evaluator instead of the sequential engine *)
  let reference =
    if tabled then
      match Naive.run case with
      | Naive.Solutions ts -> Ok (Solutions (Canon.multiset ts))
      | Naive.Overflow -> Error "tabled reference overflowed"
      | Naive.Unsupported m -> Error ("tabled reference: " ^ m)
    else
      let cfg = { Config.default with Config.max_solutions = Some (solution_cap + 1) } in
      Ok (run_engine Engine.Sequential cfg
            ~program:(mutated_program Engine.Sequential) ~query)
  in
  match reference with
  | Error why -> Skip why
  | Ok (Solutions ss) when List.length ss > solution_cap ->
    Skip (Printf.sprintf "more than %d solutions" solution_cap)
  | Ok reference ->
    let plain, profiled =
      (if tabled then tabled_matrix else matrix)
        ?extra_chaos ~seed:case.Gen_prog.seed ~schedules ()
    in
    let runs =
      List.map (fun (l, k, c, ch) -> (l, k, c, ch, profile_all)) plain
      @ List.map (fun (l, k, c, ch) -> (l, k, c, ch, true)) profiled
    in
    let serve_rows =
      (* every fourth case: cheap enough to ride along on each fuzz run,
         frequent enough that an overlay or facade regression is caught
         within a handful of cases *)
      if case.Gen_prog.seed land 3 <> 0 then []
      else
        [
          ("serve seq", Engine.Sequential,
           { Config.default with Config.compile = true });
          ("serve par@4", Engine.Par_or,
           { (Config.all_optimizations ~agents:4 ()) with
             Config.compile = true });
        ]
    in
    let rec go_serve n = function
      | [] -> Agree n
      | (label, kind, config) :: rest ->
        let got = run_serve kind config ~program ~query in
        if agrees ~reference got then go_serve (n + 1) rest
        else
          Disagree
            { d_label = label; d_expected = reference; d_got = got;
              d_chaos = "off" }
    in
    let rec go n = function
      | [] -> go_serve n serve_rows
      | (label, kind, config, chaos, profiled) :: rest -> (
        let got =
          run_engine ?chaos ~profiled kind config
            ~program:(mutated_program kind) ~query
        in
        if agrees ~reference got then go (n + 1) rest
        else
          Disagree
            {
              d_label = label;
              d_expected = reference;
              d_got = got;
              d_chaos =
                (match chaos with
                | Some c -> Chaos.to_spec c
                | None -> "off");
            })
    in
    go 1 runs

(* True when the case still FAILS the oracle — the shrinker's property. *)
let fails ?schedules ?mutation ?extra_chaos ?profile_all case =
  match check ?schedules ?mutation ?extra_chaos ?profile_all case with
  | Disagree _ -> true
  | Agree _ | Skip _ -> false
