(** Fuzz driver over the generator + differential oracle + shrinker. *)

type failure = {
  f_index : int;
  f_seed : int;
      (** the case seed — [Gen_prog.generate ~seed:f_seed] replays it *)
  f_label : string;  (** which engine/config run disagreed *)
  f_chaos : string;  (** chaos spec of that run, or ["off"] *)
  f_expected : Oracle.outcome;
  f_got : Oracle.outcome;
  f_case : Gen_prog.t;
  f_shrunk : Gen_prog.t;  (** locally minimal failing variant *)
}

type report = {
  r_count : int;
  r_agreed : int;
  r_skipped : int;
  r_runs : int;
  r_failures : failure list;
}

(** [run ~count ~seed ~schedules ()] checks [count] cases from consecutive
    seeds starting at [seed].  [mutation] injects a semantics bug into one
    engine's program copy (smoke test that the oracle catches real bugs).
    [log] receives progress lines.  [profile_all] runs every matrix row
    with the per-predicate profiler enabled (see {!Oracle.check}). *)
val run :
  ?count:int ->
  ?seed:int ->
  ?schedules:int ->
  ?mutation:Oracle.mutation ->
  ?extra_chaos:Ace_sched.Chaos.t ->
  ?profile_all:bool ->
  ?log:(string -> unit) ->
  unit ->
  report

val pp_failure : Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit

(** No failures (skips are fine). *)
val ok : report -> bool
