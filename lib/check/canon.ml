let strings solutions = List.map Ace_term.Pp.to_canonical_string solutions

let multiset solutions = List.sort String.compare (strings solutions)

let equal a b = multiset a = multiset b

let digest solutions =
  Digest.to_hex (Digest.string (String.concat "\n" (multiset solutions)))
