(** Seeded random generator of closed Prolog programs + queries over the
    subset all four engines accept (no cut / disjunction / if-then-else /
    negation).  Programs terminate by construction: the generated call
    graph is acyclic and the only recursion is a fixed list prelude always
    driven by a ground list literal. *)

type term =
  | Int of int
  | Atm of string
  | Var of string
  | Lst of term list
  | App of string * term list

type goal =
  | Call of term
  | Par of term * term
      (** [g1 & g2]; generated variable-free, hence strictly independent *)

type clause = { c_head : term; c_body : goal list }

type t = {
  seed : int;
  arities : int array;
  clauses : clause list;  (** generated clauses only (prelude excluded) *)
  query : goal list;
  tabled : (string * int) list;
      (** predicates under [:- table] — non-empty exactly for the tabled
          (Datalog) cases, which the oracle checks against {!Naive} *)
}

(** Same seed, same program — byte for byte.  Every fourth seed
    ([seed mod 4 = 3]) generates a {e tabled} case: a ground edge
    relation plus [:- table]d recursive rules (left/right/doubly/mutually
    recursive or same-generation) that only terminate under SLG. *)
val generate : seed:int -> t

(** Full program source (prelude + generated clauses).  [drop] omits the
    clause at that index — used by the mutation smoke test to inject a
    semantics bug into a single engine's copy. *)
val program_text : ?drop:int -> t -> string

val query_text : t -> string

(** Number of generated clauses (shrink size metric). *)
val clause_count : t -> int

(** Prints the program and query as consultable source with the seed in a
    comment — the replay line of a counterexample. *)
val pp : Format.formatter -> t -> unit
