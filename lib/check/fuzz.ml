(* Fuzz driver: generate [count] cases from consecutive seeds, run the
   differential oracle on each, shrink any failure to a local minimum and
   print a replay line.  Everything is derived from the base seed, so a
   failure report is reproducible with
   [--check-seed <case seed> --check-count 1]. *)

type failure = {
  f_index : int;
  f_seed : int; (* the case seed: [generate ~seed:f_seed] replays it *)
  f_label : string;
  f_chaos : string;
  f_expected : Oracle.outcome;
  f_got : Oracle.outcome;
  f_case : Gen_prog.t;
  f_shrunk : Gen_prog.t;
}

type report = {
  r_count : int;
  r_agreed : int;
  r_skipped : int;
  r_runs : int; (* total engine runs compared against the reference *)
  r_failures : failure list;
}

let case_seed ~seed i = seed + i

let run ?(count = 500) ?(seed = 0) ?(schedules = 2) ?mutation ?extra_chaos
    ?profile_all ?log () =
  let log s = match log with Some f -> f s | None -> () in
  let agreed = ref 0 and skipped = ref 0 and runs = ref 0 in
  let failures = ref [] in
  for i = 0 to count - 1 do
    let cs = case_seed ~seed i in
    let case = Gen_prog.generate ~seed:cs in
    (match Oracle.check ~schedules ?mutation ?extra_chaos ?profile_all case with
    | Oracle.Agree n ->
      incr agreed;
      runs := !runs + n
    | Oracle.Skip _ -> incr skipped
    | Oracle.Disagree { d_label; d_expected; d_got; d_chaos } ->
      log (Printf.sprintf "case %d (seed %d): %s disagrees — shrinking" i cs
             d_label);
      let shrunk =
        Shrink.minimize
          ~property:(Oracle.fails ~schedules ?mutation ?extra_chaos ?profile_all)
          case
      in
      failures :=
        {
          f_index = i;
          f_seed = cs;
          f_label = d_label;
          f_chaos = d_chaos;
          f_expected = d_expected;
          f_got = d_got;
          f_case = case;
          f_shrunk = shrunk;
        }
        :: !failures);
    if (i + 1) mod 50 = 0 then
      log (Printf.sprintf "%d/%d cases (%d agreed, %d skipped, %d failures)"
             (i + 1) count !agreed !skipped (List.length !failures))
  done;
  {
    r_count = count;
    r_agreed = !agreed;
    r_skipped = !skipped;
    r_runs = !runs;
    r_failures = List.rev !failures;
  }

let pp_failure ppf f =
  Format.fprintf ppf
    "@.FAIL case %d: engine run %s disagrees with the sequential reference@."
    f.f_index f.f_label;
  Format.fprintf ppf "  replay: --check-seed %d --check-count 1%s@." f.f_seed
    (if f.f_chaos = "off" then ""
     else Printf.sprintf " --check-chaos '%s'" f.f_chaos);
  Format.fprintf ppf "  expected %s, got %s@."
    (Oracle.outcome_to_string f.f_expected)
    (Oracle.outcome_to_string f.f_got);
  Format.fprintf ppf "  shrunk to %d clauses:@.%a"
    (Gen_prog.clause_count f.f_shrunk) Gen_prog.pp f.f_shrunk

let pp_report ppf r =
  List.iter (pp_failure ppf) r.r_failures;
  Format.fprintf ppf
    "check: %d cases — %d agreed (%d engine runs), %d skipped, %d failures@."
    r.r_count r.r_agreed r.r_runs r.r_skipped (List.length r.r_failures)

let ok r = r.r_failures = []
