(* Deterministic fault injection and schedule exploration.

   A chaos configuration is a seed plus per-mille rates for a small set of
   adversarial events at engine yield sites:

   - steal failure:   a thief skips a victim as if its deque were empty
   - publish delay:   a worker declines to publish this time (the work is
                      published on a later opportunity, never lost)
   - preemption:      a worker burns a bounded, seed-determined number of
                      [Domain.cpu_relax] spins, displacing the real-time
                      interleaving around the injection point
   - tick jitter:     extra virtual cycles charged by the *simulated*
                      engines; since the discrete-event simulator is
                      deterministic, each jitter seed selects one exact
                      alternative interleaving of the simulated schedule

   Every decision is drawn from a per-agent splitmix stream derived from
   (seed, agent id), so the decision sequence each agent sees is a pure
   function of the configuration — independent of wall-clock timing of the
   other domains.  A failure report therefore replays from the printed
   [(generator seed, chaos spec)] pair: the same spec re-issues the same
   steal failures, delays and spin lengths at the same decision indices.

   All hooks are safe by construction: they only *reorder* or *delay*
   work (skip a victim, postpone a publish, spin), never drop it, so a
   chaotic run must produce exactly the answers of a quiet run. *)

type t = {
  c_seed : int;
  c_steal_fail : int;    (* per-mille: thief pretends the victim is empty *)
  c_publish_delay : int; (* per-mille: decline to publish at this site *)
  c_preempt : int;       (* per-mille: spin at a yield site *)
  c_jitter : int;        (* per-mille: charge extra simulated cycles *)
  c_max_spin : int;      (* upper bound on injected cpu_relax spins *)
  c_max_jitter : int;    (* upper bound on injected virtual cycles *)
  c_on : bool;
}

let disabled =
  {
    c_seed = 0;
    c_steal_fail = 0;
    c_publish_delay = 0;
    c_preempt = 0;
    c_jitter = 0;
    c_max_spin = 0;
    c_max_jitter = 0;
    c_on = false;
  }

let make ?(steal_fail = 150) ?(publish_delay = 150) ?(preempt = 200)
    ?(jitter = 250) ?(max_spin = 2048) ?(max_jitter = 64) ~seed () =
  let rate name r =
    if r < 0 || r > 1000 then
      invalid_arg (Printf.sprintf "Chaos.make: %s must be in [0, 1000]" name);
    r
  in
  {
    c_seed = seed;
    c_steal_fail = rate "steal_fail" steal_fail;
    c_publish_delay = rate "publish_delay" publish_delay;
    c_preempt = rate "preempt" preempt;
    c_jitter = rate "jitter" jitter;
    c_max_spin = max 1 max_spin;
    c_max_jitter = max 1 max_jitter;
    c_on = true;
  }

let enabled t = t.c_on

(* The replayable schedule descriptor.  [to_spec] and [of_spec] round-trip;
   the spec is what failure reports print. *)
let to_spec t =
  if not t.c_on then "off"
  else
    Printf.sprintf "seed=%d,steal=%d,pub=%d,pre=%d,jit=%d,spin=%d,cycles=%d"
      t.c_seed t.c_steal_fail t.c_publish_delay t.c_preempt t.c_jitter
      t.c_max_spin t.c_max_jitter

let of_spec s =
  if String.trim s = "off" then Ok disabled
  else
    let parts = String.split_on_char ',' (String.trim s) in
    let parse acc part =
      match acc with
      | Error _ -> acc
      | Ok t -> (
        match String.index_opt part '=' with
        | None -> Error (Printf.sprintf "chaos spec: missing '=' in %S" part)
        | Some i -> (
          let key = String.sub part 0 i in
          let v = String.sub part (i + 1) (String.length part - i - 1) in
          match int_of_string_opt v with
          | None -> Error (Printf.sprintf "chaos spec: bad value in %S" part)
          | Some v -> (
            match key with
            | "seed" -> Ok { t with c_seed = v }
            | "steal" -> Ok { t with c_steal_fail = v }
            | "pub" -> Ok { t with c_publish_delay = v }
            | "pre" -> Ok { t with c_preempt = v }
            | "jit" -> Ok { t with c_jitter = v }
            | "spin" -> Ok { t with c_max_spin = v }
            | "cycles" -> Ok { t with c_max_jitter = v }
            | _ -> Error (Printf.sprintf "chaos spec: unknown key %S" key))))
    in
    match List.fold_left parse (Ok { disabled with c_on = true }) parts with
    | Error _ as e -> e
    | Ok t ->
      if
        List.exists
          (fun r -> r < 0 || r > 1000)
          [ t.c_steal_fail; t.c_publish_delay; t.c_preempt; t.c_jitter ]
      then Error "chaos spec: rates must be in [0, 1000]"
      else Ok { t with c_max_spin = max 1 t.c_max_spin;
                       c_max_jitter = max 1 t.c_max_jitter }

(* ------------------------------------------------------------------ *)
(* Per-agent decision streams                                          *)
(* ------------------------------------------------------------------ *)

type agent = {
  a_cfg : t;
  a_rng : Rng.t;
  mutable a_decisions : int; (* decisions drawn, for tests and reports *)
  mutable a_steal_fails : int;
  mutable a_publish_delays : int;
  mutable a_preempts : int;
}

let null_agent =
  {
    a_cfg = disabled;
    a_rng = Rng.create 0;
    a_decisions = 0;
    a_steal_fails = 0;
    a_publish_delays = 0;
    a_preempts = 0;
  }

(* Distinct golden-ratio multiplier keeps agent streams uncorrelated even
   for adjacent seeds. *)
let agent t id =
  if not t.c_on then null_agent
  else
    {
      a_cfg = t;
      a_rng = Rng.create (t.c_seed + ((id + 1) * 0x9E3779B9));
      a_decisions = 0;
      a_steal_fails = 0;
      a_publish_delays = 0;
      a_preempts = 0;
    }

let draw a rate =
  if not a.a_cfg.c_on || rate = 0 then false
  else begin
    a.a_decisions <- a.a_decisions + 1;
    Rng.int a.a_rng 1000 < rate
  end

let steal_blocked a =
  let b = draw a a.a_cfg.c_steal_fail in
  if b then a.a_steal_fails <- a.a_steal_fails + 1;
  b

let publish_delayed a =
  let b = draw a a.a_cfg.c_publish_delay in
  if b then a.a_publish_delays <- a.a_publish_delays + 1;
  b

(* Forced preemption point: burn a seed-determined number of cpu_relax
   spins.  On an oversubscribed host this also invites the OS to deschedule
   the domain, widening the window for the interleavings under test. *)
let preempt a =
  if draw a a.a_cfg.c_preempt then begin
    a.a_preempts <- a.a_preempts + 1;
    let spins = 1 + Rng.int a.a_rng a.a_cfg.c_max_spin in
    for _ = 1 to spins do
      Domain.cpu_relax ()
    done
  end

(* Extra virtual cycles for the simulated engines; the caller charges the
   returned amount through its own cost accounting (0 = no injection). *)
let jitter a =
  if draw a a.a_cfg.c_jitter then 1 + Rng.int a.a_rng a.a_cfg.c_max_jitter
  else 0

let decisions a = a.a_decisions

let injected a = a.a_steal_fails + a.a_publish_delays + a.a_preempts
