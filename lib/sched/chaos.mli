(** Deterministic fault injection and schedule exploration.

    A configuration is a seed plus per-mille rates for adversarial events
    at engine yield sites (steal failures, delayed publishes, forced
    preemption, simulated-clock jitter).  Each agent draws its decisions
    from a private splitmix stream derived from [(seed, agent id)], so a
    run's injection sequence replays exactly from the printed spec —
    independent of real-time interleaving.  Hooks only reorder or delay
    work, never drop it: a chaotic run must compute the same answers as a
    quiet one (the property the differential checker enforces). *)

type t

(** No injection; every hook is a no-op. *)
val disabled : t

val enabled : t -> bool

(** Rates are per-mille (0..1000) per decision point.  [max_spin] bounds
    the injected cpu_relax spins of one preemption; [max_jitter] bounds the
    extra virtual cycles of one simulated-clock jitter. *)
val make :
  ?steal_fail:int ->
  ?publish_delay:int ->
  ?preempt:int ->
  ?jitter:int ->
  ?max_spin:int ->
  ?max_jitter:int ->
  seed:int ->
  unit ->
  t

(** Replayable schedule descriptor, e.g.
    ["seed=7,steal=150,pub=150,pre=200,jit=250,spin=2048,cycles=64"].
    [of_spec (to_spec t)] = [Ok t]; ["off"] parses to {!disabled}. *)
val to_spec : t -> string

val of_spec : string -> (t, string) result

type agent
(** One agent's private decision stream.  Single-writer: only the owning
    worker may draw from it while the run is live. *)

(** The stream for [id]; {!null_agent} when injection is off. *)
val agent : t -> int -> agent

val null_agent : agent

(** True: the thief must skip this victim as if its deque were empty. *)
val steal_blocked : agent -> bool

(** True: the worker must decline to publish at this opportunity. *)
val publish_delayed : agent -> bool

(** Maybe burn a seed-determined number of [Domain.cpu_relax] spins. *)
val preempt : agent -> unit

(** Extra virtual cycles to charge at a simulated-engine yield site
    (0 = none this time). *)
val jitter : agent -> int

(** Decisions drawn so far (for determinism tests). *)
val decisions : agent -> int

(** Faults actually injected so far (steal failures + publish delays +
    preemptions). *)
val injected : agent -> int
