(** Work-stealing deque (lock-protected) for the hardware or-parallel
    engine.

    The owner pushes and pops at the {e bottom} (LIFO: deepest, most
    recently published work); thieves steal from the {e top} (FIFO: the
    node nearest the root, hence the biggest unexplored subtree).  All
    operations are thread-safe, so the owner/thief split is a scheduling
    policy rather than a safety precondition. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t

(** Owner end: push newest work. *)
val push_bottom : 'a t -> 'a -> unit

(** Owner end: take back the most recently pushed item. *)
val pop_bottom : 'a t -> 'a option

(** Thief end: take the oldest item. *)
val steal_top : 'a t -> 'a option

val length : 'a t -> int
val is_empty : 'a t -> bool

(** Lifetime operation counters
    [(pushes, pops, steals, misses, max_len)], where [misses] counts pops
    and steals that found the deque empty and [max_len] is the high-water
    occupancy.  Read under the deque lock. *)
val ops : 'a t -> int * int * int * int * int
