(* Work-stealing deque for the hardware or-parallel engine.

   The owner pushes and pops at the bottom (LIFO: the most recently
   published work is the deepest node, cache-warm and closest to the
   owner's current position in the search tree); thieves steal from the
   top (FIFO: the oldest entry is the node nearest the root, i.e. the
   biggest unexplored subtree — the classic granularity argument of
   work-stealing schedulers, and the or-scheduler discipline of MUSE-style
   systems which also dispatch the bottom-most live choice point).

   This is the lock-protected variant (a single mutex around a growable
   ring buffer).  The operations and their ends match the Chase-Lev deque,
   so a lock-free implementation can be dropped in behind the same
   interface later; at the engine's publish rates (publishing is throttled
   by worker hunger) the mutex is uncontended in practice.

   Because every operation takes the lock, any thread may safely call any
   operation — the owner/thief distinction above is a scheduling policy,
   not a safety requirement. *)

type ops = {
  mutable pushes : int;
  mutable pops : int;
  mutable steals : int;
  mutable misses : int; (* pops and steals that found the deque empty *)
  mutable max_len : int;
}
(* Operation counters, updated under the deque lock (so reads taken after
   the owning engine has quiesced are exact). *)

type 'a t = {
  mutable buf : 'a option array;
  mutable head : int; (* next slot to steal from (top, oldest) *)
  mutable tail : int; (* next slot to push into (bottom, newest) *)
  lock : Mutex.t;
  ops : ops;
}
(* [head] and [tail] grow monotonically; slot [i] lives at
   [i mod Array.length buf].  The deque holds [tail - head] items. *)

let create ?(capacity = 16) () =
  let capacity = max 1 capacity in
  {
    buf = Array.make capacity None;
    head = 0;
    tail = 0;
    lock = Mutex.create ();
    ops = { pushes = 0; pops = 0; steals = 0; misses = 0; max_len = 0 };
  }

let with_lock t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let slot t i = i mod Array.length t.buf

let grow t =
  let old = t.buf in
  let buf = Array.make (2 * Array.length old) None in
  for i = t.head to t.tail - 1 do
    buf.(i mod Array.length buf) <- old.(i mod Array.length old)
  done;
  t.buf <- buf

let push_bottom t x =
  with_lock t (fun () ->
      if t.tail - t.head = Array.length t.buf then grow t;
      t.buf.(slot t t.tail) <- Some x;
      t.tail <- t.tail + 1;
      t.ops.pushes <- t.ops.pushes + 1;
      let len = t.tail - t.head in
      if len > t.ops.max_len then t.ops.max_len <- len)

let pop_bottom t =
  with_lock t (fun () ->
      if t.tail = t.head then begin
        t.ops.misses <- t.ops.misses + 1;
        None
      end
      else begin
        t.tail <- t.tail - 1;
        let x = t.buf.(slot t t.tail) in
        t.buf.(slot t t.tail) <- None;
        t.ops.pops <- t.ops.pops + 1;
        x
      end)

let steal_top t =
  with_lock t (fun () ->
      if t.tail = t.head then begin
        t.ops.misses <- t.ops.misses + 1;
        None
      end
      else begin
        let x = t.buf.(slot t t.head) in
        t.buf.(slot t t.head) <- None;
        t.head <- t.head + 1;
        t.ops.steals <- t.ops.steals + 1;
        x
      end)

let length t = with_lock t (fun () -> t.tail - t.head)

let is_empty t = length t = 0

let ops t =
  with_lock t (fun () ->
      (t.ops.pushes, t.ops.pops, t.ops.steals, t.ops.misses, t.ops.max_len))
