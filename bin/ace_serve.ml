(* ace_serve: the multi-tenant query daemon.  Consults the given
   programs once, freezes and compiles the database, then serves
   line-delimited JSON queries over a Unix or TCP socket (see
   lib/serve/protocol.mli for the wire format).

     ace_serve --socket /tmp/ace.sock --workers 4 program.pl
     ace_serve --port 7071 --engine par --agents 4 program.pl
     echo '{"op":"query","id":1,"goal":"path(a,X)"}' | nc -U /tmp/ace.sock

   SIGTERM / SIGINT drain gracefully: the listener stops, queued and
   new queries are refused, in-flight queries are cancelled (answering
   with their partial solutions), and the process exits once every
   worker has finished. *)

module Config = Ace_machine.Config
module Engine = Ace_core.Engine
module Program = Ace_lang.Program
module Server = Ace_server.Server

let engine_of_string = function
  | "seq" -> Ok Engine.Sequential
  | "and" -> Ok Engine.And_parallel
  | "or" -> Ok Engine.Or_parallel
  | "par" -> Ok Engine.Par_or
  | s -> Error (`Msg (Printf.sprintf "unknown engine %S (seq|and|or|par)" s))

let serve socket port workers max_active engine agents compile files =
  match engine_of_string engine with
  | Error (`Msg m) ->
    prerr_endline m;
    2
  | Ok kind -> (
    match (socket, port, files) with
    | None, None, _ ->
      prerr_endline "ace_serve: --socket PATH or --port N required";
      2
    | _, _, [] ->
      prerr_endline "ace_serve: at least one program file required";
      2
    | _ -> (
      try
        let program =
          List.fold_left
            (fun acc file -> Some (Program.consult_file ?program:acc file))
            None files
        in
        let prepared =
          Engine.prepare (Program.db (Option.get program))
        in
        let listen =
          match socket with
          | Some path -> Unix.ADDR_UNIX path
          | None ->
            Unix.ADDR_INET (Unix.inet_addr_loopback, Option.get port)
        in
        let config = { Config.default with agents; compile } in
        let srv =
          Server.create ~workers ?max_active ~engine:kind ~config ~listen
            prepared
        in
        let drain _ = Server.drain srv in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle drain);
        Sys.set_signal Sys.sigint (Sys.Signal_handle drain);
        Format.eprintf "ace_serve: listening on %s (%s, %d worker(s))@."
          (match listen with
          | Unix.ADDR_UNIX path -> path
          | Unix.ADDR_INET (_, p) -> Printf.sprintf "127.0.0.1:%d" p)
          (Engine.kind_to_string kind) workers;
        Server.wait srv;
        let s = Server.stats srv in
        Format.eprintf "ace_serve: drained (%d served, %d rejected)@."
          s.Server.served s.Server.rejected;
        0
      with
      | Program.Error msg | Ace_core.Errors.Engine_error msg ->
        Format.eprintf "error: %s@." msg;
        1
      | Unix.Unix_error (e, fn, arg) ->
        Format.eprintf "error: %s(%s): %s@." fn arg (Unix.error_message e);
        1))

open Cmdliner

let cmd =
  let doc = "serve ACE queries over a socket" in
  Cmd.v
    (Cmd.info "ace_serve" ~doc)
    Term.(
      const serve
      $ Arg.(value & opt (some string) None & info [ "socket"; "s" ]
               ~docv:"PATH" ~doc:"Listen on a Unix domain socket at PATH.")
      $ Arg.(value & opt (some int) None & info [ "port" ]
               ~docv:"N" ~doc:"Listen on TCP 127.0.0.1:N.")
      $ Arg.(value & opt int 4 & info [ "workers"; "j" ] ~docv:"N"
               ~doc:"Query worker threads.")
      $ Arg.(value & opt (some int) None & info [ "max-active" ] ~docv:"N"
               ~doc:"Admission-control bound: refuse new queries (error \
                     \"overloaded\") while N are queued or running \
                     (default 2 * workers).")
      $ Arg.(value & opt string "seq" & info [ "engine"; "e" ] ~docv:"ENGINE"
               ~doc:"Default engine per session: seq | and | or | par; a \
                     query may override it.")
      $ Arg.(value & opt int 1 & info [ "agents"; "p" ] ~docv:"N"
               ~doc:"Default agent/domain count per query.")
      $ Arg.(value & vflag true
               [ (true, info [ "compile" ] ~doc:"Compiled clause code (default).");
                 (false, info [ "no-compile" ] ~doc:"Interpret clause templates.") ])
      $ Arg.(value & pos_all string [] & info [] ~docv:"PROGRAM"
               ~doc:"Prolog source files, consulted in order."))

let () = exit (Cmd.eval' cmd)
