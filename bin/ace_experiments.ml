(* ace_experiments: regenerate the paper's tables and figures.

     ace_experiments                 # everything
     ace_experiments table3 figure5 # a subset
     ace_experiments --list
     ace_experiments --structural table2
*)

module Experiment = Ace_harness.Experiment
module Report = Ace_harness.Report
module Extras = Ace_harness.Extras

let run_one ~structural id =
  match id with
  | "overhead" ->
    let rows = Extras.run_overhead () in
    Format.printf "@[<v>%a@]@." Extras.pp_overhead rows
  | "memory" ->
    let rows = Extras.run_memory () in
    Format.printf "@[<v>%a@]@." Extras.pp_memory rows
  | "par_or" ->
    let rows = Extras.run_par_or () in
    Format.printf "@[<v>%a@]@." Extras.pp_par_or rows
  | id ->
    let e = Experiment.find id in
    let progress label = Format.eprintf "  running %s: %s...@." id label in
    let results = Experiment.run ~progress e in
    Format.printf "@[<v>%a@]@." Report.pp_results results;
    if structural then Format.printf "@[<v>%a@]@." Report.pp_structural results

let all_ids =
  List.map (fun (e : Experiment.t) -> e.Experiment.id) Experiment.all
  @ [ "overhead"; "memory"; "par_or" ]

let main list_only structural ids =
  if list_only then begin
    List.iter print_endline all_ids;
    0
  end
  else begin
    let ids = if ids = [] then all_ids else ids in
    match List.find_opt (fun id -> not (List.mem id all_ids)) ids with
    | Some bad ->
      Format.eprintf "unknown experiment %s (try --list)@." bad;
      2
    | None ->
      List.iter (run_one ~structural) ids;
      0
  end

open Cmdliner

let ids =
  Arg.(value & pos_all string [] & info [] ~docv:"EXPERIMENT"
         ~doc:"Experiment ids (default: all).")

let list_only =
  Arg.(value & flag & info [ "list" ] ~doc:"List experiment ids and exit.")

let structural =
  Arg.(value & flag & info [ "structural" ]
         ~doc:"Also print the structural counters that explain each result.")

let cmd =
  let doc = "regenerate the paper's tables and figures" in
  Cmd.v (Cmd.info "ace_experiments" ~doc)
    Term.(const main $ list_only $ structural $ ids)

let () = exit (Cmd.eval' cmd)
