(* ace_run: consult a Prolog program and run a query on one of the four
   engines, printing solutions and execution statistics.

     ace_run --engine and --agents 4 --lpco --spo program.pl 'map2([1,2],X)'
     ace_run --engine par --agents 4 -O --par-and program.pl 'main(X)'
     echo 'app([],L,L). ...' | ace_run - 'app(X,Y,[1,2,3])'
*)

module Config = Ace_machine.Config
module Engine = Ace_core.Engine
module Program = Ace_lang.Program
module Trace = Ace_obs.Trace
module Metrics = Ace_obs.Metrics
module Prof = Ace_obs.Prof

let read_stdin () =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf stdin 1
     done
   with End_of_file -> ());
  Buffer.contents buf

let engine_of_string = function
  | "seq" -> Ok Engine.Sequential
  | "and" -> Ok Engine.And_parallel
  | "or" -> Ok Engine.Or_parallel
  | "par" -> Ok Engine.Par_or
  | s -> Error (`Msg (Printf.sprintf "unknown engine %S (seq|and|or|par)" s))

let write_file path contents = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)

(* --check: differential fuzzing of all four engines (lib/check). *)
let run_check ~count ~seed ~schedules ~chaos_spec ~mutate =
  let ( let* ) r f = match r with Error m -> Error m | Ok v -> f v in
  let parsed =
    let* extra_chaos =
      match chaos_spec with
      | None -> Ok None
      | Some s -> (
        match Ace_sched.Chaos.of_spec s with
        | Ok c -> Ok (Some c)
        | Error m -> Error (Printf.sprintf "--check-chaos: %s" m))
    in
    let* mutation =
      match mutate with
      | None -> Ok None
      | Some s -> (
        match String.split_on_char ':' s with
        | [ e; i ] -> (
          match (engine_of_string e, int_of_string_opt i) with
          | Ok kind, Some drop ->
            Ok (Some { Ace_check.Oracle.m_engine = kind; m_drop = drop })
          | Error (`Msg m), _ -> Error m
          | _, None -> Error "--check-mutate: clause index must be an integer")
        | _ -> Error "--check-mutate expects ENGINE:CLAUSE (e.g. or:0)")
    in
    Ok (extra_chaos, mutation)
  in
  match parsed with
  | Error m ->
    prerr_endline m;
    2
  | Ok (extra_chaos, mutation) ->
    let report =
      Ace_check.Fuzz.run ~count ~seed ~schedules ?mutation ?extra_chaos
        ~log:(Format.eprintf "check: %s@.")
        ()
    in
    Format.printf "%a" Ace_check.Fuzz.pp_report report;
    if Ace_check.Fuzz.ok report then 0 else 1

let run check check_count check_seed check_schedules check_chaos check_mutate
    check_code_mutate check_table_mutate source query engine agents compile
    lpco lao spo pdo all par_and gc grain chunk limit deadline table_max show_stats
    verbose_stats annotate trace_file trace_jsonl trace_buf stats_json
    utilization profile profile_json profile_folded =
  (match check_code_mutate with
   | Some k -> Ace_lang.Code.mutation := Some k
   | None -> ());
  (match check_table_mutate with
   | Some k -> Ace_lang.Table.mutation := Some k
   | None -> ());
  if check then
    run_check ~count:check_count ~seed:check_seed ~schedules:check_schedules
      ~chaos_spec:check_chaos ~mutate:check_mutate
  else
  match (source, query) with
  | None, _ | _, None ->
    prerr_endline "ace_run: PROGRAM and QUERY required (or use --check)";
    2
  | Some source, Some query ->
  let program_text =
    if String.equal source "-" then read_stdin ()
    else In_channel.with_open_bin source In_channel.input_all
  in
  match engine_of_string engine with
  | Error (`Msg m) ->
    prerr_endline m;
    2
  | Ok kind -> (
    try
      let program = Program.consult_string program_text in
      let db =
        if annotate then Ace_analysis.Independence.annotate_program program
        else Program.db program
      in
      let q = Program.parse_query query in
      let config =
        {
          Config.default with
          agents;
          lpco = lpco || all;
          lao = lao || all;
          spo = spo || all;
          pdo = pdo || all;
          par_and;
          seq_threshold = gc;
          grain;
          chunk;
          compile;
          max_solutions = limit;
          table_max_answers = table_max;
        }
      in
      (* A 1-core box "running" 8 domains produces <1x speedups that say
         nothing about the schemas — warn instead of silently misleading. *)
      let cores = Domain.recommended_domain_count () in
      if kind = Engine.Par_or && agents > cores then
        Format.eprintf
          "warning: --agents %d exceeds this host's %d available core(s); \
           wall-clock speedups will not reflect real parallelism@."
          agents cores;
      let tracing = trace_file <> None || trace_jsonl <> None in
      let trace =
        if tracing then Trace.create ~capacity:trace_buf ()
        else Trace.disabled
      in
      let profiling =
        profile || profile_json <> None || profile_folded <> None
      in
      let prof = if profiling then Prof.create () else Prof.disabled in
      let cancel =
        match deadline with
        | Some ms -> Ace_core.Cancel.create ~deadline_ms:ms ()
        | None -> Ace_core.Cancel.none
      in
      let t0 = Unix.gettimeofday () in
      let result = Engine.solve ~trace ~prof ~cancel kind config db q.Program.goal in
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      List.iteri
        (fun i solution ->
          Format.printf "solution %d: %a@." (i + 1) Ace_term.Pp.pp solution)
        result.Engine.solutions;
      (match kind with
       | Engine.Par_or ->
         Format.printf "%d solution(s) in %.3f wall-clock ms (%s, %a)@."
           (List.length result.Engine.solutions)
           (float_of_int result.Engine.time /. 1e6)
           (Engine.kind_to_string kind)
           Config.pp config
       | Engine.Sequential | Engine.And_parallel | Engine.Or_parallel ->
         Format.printf
           "%d solution(s) in %d simulated cycles, %.3f wall-clock ms (%s, %a)@."
           (List.length result.Engine.solutions)
           result.Engine.time wall_ms
           (Engine.kind_to_string kind)
           Config.pp config);
      if show_stats || verbose_stats then
        Format.printf "@[<v>%a@]@."
          (fun ppf -> Ace_machine.Stats.pp ~verbose:verbose_stats ppf)
          result.Engine.stats;
      if utilization then
        Format.printf "%a@." Metrics.pp_utilization result.Engine.metrics;
      (match stats_json with
       | Some path ->
         write_file path (Ace_obs.Json.to_string (Metrics.to_json result.Engine.metrics))
       | None -> ());
      (match trace_file with
       | Some path ->
         write_file path (Trace.to_chrome_json trace);
         Format.eprintf "trace: %d event(s) written to %s (%d dropped)@."
           (Trace.recorded trace) path (Trace.dropped trace)
       | None -> ());
      (match trace_jsonl with
       | Some path -> write_file path (Trace.to_jsonl trace)
       | None -> ());
      if profile then print_string (Prof.report prof);
      (match profile_json with
       | Some path -> write_file path (Ace_obs.Json.to_string (Prof.to_json prof))
       | None -> ());
      (match profile_folded with
       | Some path -> write_file path (Prof.to_folded prof)
       | None -> ());
      (match result.Engine.cancelled with
       | Some reason ->
         (* distinct exit status (the timeout(1) convention) so scripts
            can tell "deadline fired, partial answers above" from both
            success and error *)
         Format.printf
           "cancelled (%s) after %.3f wall-clock ms: the %d solution(s) \
            above are the ones completed before the abort@."
           (Ace_core.Cancel.reason_to_string reason)
           wall_ms
           (List.length result.Engine.solutions);
         124
       | None -> 0)
    with
    | Program.Error msg | Ace_core.Errors.Engine_error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ace_term.Arith.Error msg ->
      Format.eprintf "arithmetic error: %s@." msg;
      1)

(* ------------------------------------------------------------------ *)
(* Command line: flags grouped by area                                 *)
(* ------------------------------------------------------------------ *)

(* The four flag groups.  Each flag carries a one-line synopsis used both
   in the manual (via cmdliner's ~docs sections) and by the pre-parser,
   which answers an unknown flag with the synopsis of the closest group
   only, instead of the whole option list. *)
let g_engine = "ENGINE OPTIONS"
let g_schemas = "OPTIMIZATION SCHEMA OPTIONS"
let g_obs = "OBSERVABILITY OPTIONS"
let g_check = "CHECKING OPTIONS"

let groups =
  [
    ( g_engine,
      [
        ("engine, -e ENGINE", "seq | and | or | par (hardware domains)");
        ("agents, -p N", "processors (par: domains)");
        ("limit, -n N", "stop after N solutions");
        ("deadline MS", "cancel the query after MS milliseconds (exit 124)");
        ("annotate", "run the strict-independence annotator first");
        ("compile", "execute compiled clause code (default)");
        ("no-compile", "interpret clause templates (the oracle reference)");
        ("table-max-answers N", "cap per tabled subgoal (0 = unlimited)");
      ] );
    ( g_schemas,
      [
        ("lpco", "last parallel call optimization");
        ("lao", "last alternative optimization");
        ("spo", "shallow parallelism optimization");
        ("pdo", "processor determinacy optimization");
        ("all-opts, -O", "all four schemas");
        ("par-and", "par engine: run '&' conjunctions in parallel");
        ("granularity CELLS", "sequentialize parallel calls below CELLS");
        ("grain N", "publish nodes with >= N alternatives (par)");
        ("chunk N", "at most N alternatives per published task (par)");
      ] );
    ( g_obs,
      [
        ("stats", "print execution statistics");
        ("verbose-stats", "statistics including zero counters");
        ("trace FILE", "Chrome trace_event JSON of the run");
        ("trace-jsonl FILE", "raw event stream as JSON Lines");
        ("trace-buf N", "per-agent trace ring capacity");
        ("stats-json FILE", "statistics as JSON (totals + shards)");
        ("utilization", "per-agent busy/idle table");
        ("profile", "per-predicate 4-port profile table");
        ("profile-json FILE", "per-predicate profile as JSON");
        ("profile-folded FILE", "folded stacks for flamegraph tooling");
      ] );
    ( g_check,
      [
        ("check", "differential fuzzing of all four engines");
        ("check-count N", "generated cases");
        ("check-seed SEED", "base seed (case i uses SEED+i)");
        ("check-schedules N", "chaos schedules per engine and case");
        ("check-chaos SPEC", "replay one exact chaos spec");
        ("check-mutate ENGINE:CLAUSE", "mutation smoke test");
        ("check-code-mutate K", "compiled-code instruction mutation smoke test");
        ("check-table-mutate K", "answer-table truncation smoke test");
      ] )
  ]

(* An unknown --flag is reported against the group of its best
   edit-distance match, and only that group's flags are listed. *)
let levenshtein a b =
  let la = String.length a and lb = String.length b in
  let prev = Array.init (lb + 1) Fun.id and cur = Array.make (lb + 1) 0 in
  for i = 1 to la do
    cur.(0) <- i;
    for j = 1 to lb do
      let cost = if a.[i - 1] = b.[j - 1] then 0 else 1 in
      cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
    done;
    Array.blit cur 0 prev 0 (lb + 1)
  done;
  prev.(lb)

let flag_names spec =
  (* "engine, -e ENGINE" -> ["engine"; "e"] *)
  String.split_on_char ',' spec
  |> List.filter_map (fun part ->
         match String.split_on_char ' ' (String.trim part) with
         | name :: _ when name <> "" ->
           Some
             (if String.length name > 1 && name.[0] = '-' then
                String.sub name 1 (String.length name - 1)
              else name)
         | _ -> None)

let print_group oc (title, flags) =
  Printf.fprintf oc "%s:\n" title;
  List.iter
    (fun (spec, doc) -> Printf.fprintf oc "  --%-28s %s\n" spec doc)
    flags

let reject_unknown_flag arg =
  let bare =
    let a = if String.length arg > 1 && arg.[1] = '-' then 2 else 1 in
    let s = String.sub arg a (String.length arg - a) in
    match String.index_opt s '=' with Some i -> String.sub s 0 i | None -> s
  in
  let best =
    List.fold_left
      (fun acc (title, flags) ->
        List.fold_left
          (fun acc (spec, _) ->
            List.fold_left
              (fun (d0, g0) name ->
                let d = levenshtein bare name in
                if d < d0 then (d, (title, flags)) else (d0, g0))
              acc (flag_names spec))
          acc flags)
      (max_int, List.hd groups)
      groups
  in
  let _, group = best in
  Printf.eprintf "ace_run: unknown option '%s'.\n" arg;
  print_group stderr group;
  Printf.eprintf "Run 'ace_run --help' for the full option list.\n";
  exit 2

let check_argv () =
  let known =
    "help" :: "version"
    :: List.concat_map
         (fun (_, flags) -> List.concat_map (fun (s, _) -> flag_names s) flags)
         groups
  in
  Array.iteri
    (fun i arg ->
      if
        i > 0
        && String.length arg > 1
        && arg.[0] = '-'
        && not (String.for_all (fun c -> c = '-') arg)
        && (arg.[1] < '0' || arg.[1] > '9') (* not a negative number *)
      then begin
        let bare =
          let a = if arg.[1] = '-' then 2 else 1 in
          let s = String.sub arg a (String.length arg - a) in
          match String.index_opt s '=' with
          | Some j -> String.sub s 0 j
          | None -> s
        in
        if not (List.mem bare known) then reject_unknown_flag arg
      end)
    Sys.argv

open Cmdliner

let source =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"PROGRAM"
         ~doc:"Prolog source file ('-' for stdin); omitted with --check.")

let query =
  Arg.(value & pos 1 (some string) None & info [] ~docv:"QUERY"
         ~doc:"Goal to solve (final '.' optional); omitted with --check.")

let engine =
  Arg.(value & opt string "seq" & info [ "engine"; "e" ] ~docv:"ENGINE"
         ~docs:g_engine
         ~doc:"Engine: seq, and (&ACE and-parallel), or (simulated MUSE \
               or-parallel), par (hardware and+or parallel on OCaml \
               domains; --agents = domains, and-parallelism with \
               --par-and).")

let agents =
  Arg.(value & opt int 1 & info [ "agents"; "p" ] ~docv:"N" ~docs:g_engine
         ~doc:"Number of simulated processors.")

let flag ~docs names doc = Arg.(value & flag & info names ~docs ~doc)

let limit =
  Arg.(value & opt (some int) None & info [ "limit"; "n" ] ~docv:"N"
         ~docs:g_engine ~doc:"Stop after N solutions.")

let cmd =
  let doc = "run a query on the ACE engines" in
  Cmd.v
    (Cmd.info "ace_run" ~doc)
    Term.(
      const run
      $ flag ~docs:g_check [ "check" ]
          "Differential fuzzing: generate seeded random programs, run each \
           on all four engines under optimization sweeps and chaos \
           schedules, compare solution multisets, shrink any \
           counterexample and print a replay line.  Exit 1 on any \
           discrepancy."
      $ Arg.(value & opt int 500 & info [ "check-count" ] ~docv:"N"
               ~docs:g_check ~doc:"Number of generated cases for --check.")
      $ Arg.(value & opt int 0 & info [ "check-seed" ] ~docv:"SEED"
               ~docs:g_check
               ~doc:"Base seed for --check; case i uses SEED+i, so a \
                     failure replays with '--check-seed <case seed> \
                     --check-count 1'.")
      $ Arg.(value & opt int 2 & info [ "check-schedules" ] ~docv:"N"
               ~docs:g_check
               ~doc:"Seeded chaos schedules per parallel engine and case \
                     for --check.")
      $ Arg.(value & opt (some string) None & info [ "check-chaos" ]
               ~docv:"SPEC" ~docs:g_check
               ~doc:"Also run every engine under exactly this chaos spec \
                     (as printed in a counterexample replay line), e.g. \
                     'seed=7,steal=150,pub=150,pre=200,jit=250,spin=2048,cycles=64'.")
      $ Arg.(value & opt (some string) None & info [ "check-mutate" ]
               ~docv:"ENGINE:CLAUSE" ~docs:g_check
               ~doc:"Mutation smoke test: drop generated clause CLAUSE from \
                     the program copy given to ENGINE only; --check must \
                     then report a counterexample (exit 1).")
      $ Arg.(value & opt (some int) None & info [ "check-code-mutate" ]
               ~docv:"K" ~docs:g_check
               ~doc:"Compiler mutation smoke test: apply one seeded \
                     structure-preserving instruction rewrite (at index K \
                     mod code length) to every compiled clause head; \
                     --check must then report a counterexample on its \
                     compiled rows (exit 1).")
      $ Arg.(value & opt (some int) None & info [ "check-table-mutate" ]
               ~docv:"K" ~docs:g_check
               ~doc:"Tabling mutation smoke test: silently truncate every \
                     tabled answer set to its first K answers.  All engines \
                     share the broken table and still agree with each \
                     other; --check must catch it on the tabled rows \
                     against the independent bottom-up reference (exit 1).")
      $ source $ query $ engine $ agents
      $ Arg.(value & vflag true
               [ (true,
                  info [ "compile" ] ~docs:g_engine
                    ~doc:"Execute clauses as compiled instruction code \
                          through the switch-on-term dispatch tree (the \
                          default).");
                 (false,
                  info [ "no-compile" ] ~docs:g_engine
                    ~doc:"Interpret clause templates instead of compiled \
                          code (the differential oracle's reference \
                          mode).") ])
      $ flag ~docs:g_schemas [ "lpco" ]
          "Enable the last parallel call optimization."
      $ flag ~docs:g_schemas [ "lao" ]
          "Enable the last alternative optimization."
      $ flag ~docs:g_schemas [ "spo" ]
          "Enable the shallow parallelism optimization."
      $ flag ~docs:g_schemas [ "pdo" ]
          "Enable the processor determinacy optimization."
      $ flag ~docs:g_schemas [ "all-opts"; "O" ] "Enable all optimizations."
      $ flag ~docs:g_schemas [ "par-and" ]
          "Hardware engine (--engine par): execute strictly-independent \
           '&' conjunctions in parallel (parcall frames offered through \
           the work-stealing deques, cross-product join), alongside the \
           or-parallel work stealing.  Other engines ignore it."
      $ Arg.(value & opt int 0 & info [ "granularity" ] ~docv:"CELLS"
               ~docs:g_schemas
               ~doc:"Sequentialize parallel calls whose estimated work is \
                     below CELLS term cells (granularity control; 0 = off).")
      $ Arg.(value & opt int 1 & info [ "grain" ] ~docv:"N" ~docs:g_schemas
               ~doc:"Or-parallel granularity (par engine): publish a choice \
                     point only if it still has at least N untried \
                     alternatives; smaller nodes stay private (1 = publish \
                     anything).")
      $ Arg.(value & opt int 0 & info [ "chunk" ] ~docv:"N" ~docs:g_schemas
               ~doc:"Or-parallel chunking (par engine): ship a published \
                     node's alternatives in tasks of at most N alternatives \
                     each (0 = whole node in one task).")
      $ limit
      $ Arg.(value & opt (some int) None & info [ "deadline" ] ~docv:"MS"
               ~docs:g_engine
               ~doc:"Cancel the query MS milliseconds after it starts.  The \
                     solutions completed before the abort are printed as \
                     usual and the exit status is 124 (as for timeout(1)), \
                     with a partial-solutions report on stdout.")
      $ Arg.(value & opt int 0 & info [ "table-max-answers" ] ~docv:"N"
               ~docs:g_engine
               ~doc:"Abort with an error if any tabled subgoal accumulates \
                     more than N answers (0 = unlimited) — a guard against \
                     accidentally huge tables.")
      $ flag ~docs:g_obs [ "stats" ] "Print execution statistics."
      $ flag ~docs:g_obs [ "verbose-stats" ]
          "Print execution statistics including zero-valued counters (so \
           \"this optimization never fired\" stays visible)."
      $ flag ~docs:g_engine [ "annotate" ]
          "Run the strict-independence annotator before execution (uses \
           mode/1 directives)."
      $ Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
               ~docs:g_obs
               ~doc:"Write a Chrome trace_event JSON of the run to FILE (one \
                     track per agent/domain; open in Perfetto or \
                     chrome://tracing).")
      $ Arg.(value & opt (some string) None & info [ "trace-jsonl" ]
               ~docv:"FILE" ~docs:g_obs
               ~doc:"Write the raw event stream to FILE as JSON Lines (one \
                     event object per line).")
      $ Arg.(value & opt int 65536 & info [ "trace-buf" ] ~docv:"N"
               ~docs:g_obs
               ~doc:"Per-agent trace ring capacity in events (rounded up to \
                     a power of two); the newest N events per agent are \
                     kept.")
      $ Arg.(value & opt (some string) None & info [ "stats-json" ]
               ~docv:"FILE" ~docs:g_obs
               ~doc:"Write execution statistics to FILE as JSON: merged \
                     totals plus per-agent shards, utilization and \
                     histograms.")
      $ flag ~docs:g_obs [ "utilization" ]
          "Print the per-agent utilization table (busy/idle fractions, \
           tasks, steals, copies)."
      $ flag ~docs:g_obs [ "profile" ]
          "Per-predicate profiling: print the ranked hotspot table (4-port \
           call/exit/redo/fail counters plus exclusive instruction, \
           clause-try, cycle and allocation costs)."
      $ Arg.(value & opt (some string) None & info [ "profile-json" ]
               ~docv:"FILE" ~docs:g_obs
               ~doc:"Write the per-predicate profile (counters, costs and \
                     call-graph edges) to FILE as JSON.")
      $ Arg.(value & opt (some string) None & info [ "profile-folded" ]
               ~docv:"FILE" ~docs:g_obs
               ~doc:"Write folded call stacks ('a;b;c COST' lines, exclusive \
                     cycles per calling context) to FILE, directly \
                     consumable by flamegraph.pl or speedscope."))

let () =
  check_argv ();
  exit (Cmd.eval' cmd)
