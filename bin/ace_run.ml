(* ace_run: consult a Prolog program and run a query on one of the three
   engines, printing solutions and execution statistics.

     ace_run --engine and --agents 4 --lpco --spo program.pl 'map2([1,2],X)'
     echo 'app([],L,L). ...' | ace_run - 'app(X,Y,[1,2,3])'
*)

module Config = Ace_machine.Config
module Engine = Ace_core.Engine
module Program = Ace_lang.Program
module Trace = Ace_obs.Trace
module Metrics = Ace_obs.Metrics

let read_stdin () =
  let buf = Buffer.create 4096 in
  (try
     while true do
       Buffer.add_channel buf stdin 1
     done
   with End_of_file -> ());
  Buffer.contents buf

let engine_of_string = function
  | "seq" -> Ok Engine.Sequential
  | "and" -> Ok Engine.And_parallel
  | "or" -> Ok Engine.Or_parallel
  | "par" -> Ok Engine.Par_or
  | s -> Error (`Msg (Printf.sprintf "unknown engine %S (seq|and|or|par)" s))

let write_file path contents = Out_channel.with_open_bin path (fun oc -> Out_channel.output_string oc contents)

(* --check: differential fuzzing of all four engines (lib/check). *)
let run_check ~count ~seed ~schedules ~chaos_spec ~mutate =
  let ( let* ) r f = match r with Error m -> Error m | Ok v -> f v in
  let parsed =
    let* extra_chaos =
      match chaos_spec with
      | None -> Ok None
      | Some s -> (
        match Ace_sched.Chaos.of_spec s with
        | Ok c -> Ok (Some c)
        | Error m -> Error (Printf.sprintf "--check-chaos: %s" m))
    in
    let* mutation =
      match mutate with
      | None -> Ok None
      | Some s -> (
        match String.split_on_char ':' s with
        | [ e; i ] -> (
          match (engine_of_string e, int_of_string_opt i) with
          | Ok kind, Some drop ->
            Ok (Some { Ace_check.Oracle.m_engine = kind; m_drop = drop })
          | Error (`Msg m), _ -> Error m
          | _, None -> Error "--check-mutate: clause index must be an integer")
        | _ -> Error "--check-mutate expects ENGINE:CLAUSE (e.g. or:0)")
    in
    Ok (extra_chaos, mutation)
  in
  match parsed with
  | Error m ->
    prerr_endline m;
    2
  | Ok (extra_chaos, mutation) ->
    let report =
      Ace_check.Fuzz.run ~count ~seed ~schedules ?mutation ?extra_chaos
        ~log:(Format.eprintf "check: %s@.")
        ()
    in
    Format.printf "%a" Ace_check.Fuzz.pp_report report;
    if Ace_check.Fuzz.ok report then 0 else 1

let run check check_count check_seed check_schedules check_chaos check_mutate
    source query engine agents lpco lao spo pdo all gc grain chunk limit
    show_stats verbose_stats annotate trace_file trace_jsonl trace_buf
    stats_json utilization =
  if check then
    run_check ~count:check_count ~seed:check_seed ~schedules:check_schedules
      ~chaos_spec:check_chaos ~mutate:check_mutate
  else
  match (source, query) with
  | None, _ | _, None ->
    prerr_endline "ace_run: PROGRAM and QUERY required (or use --check)";
    2
  | Some source, Some query ->
  let program_text =
    if String.equal source "-" then read_stdin ()
    else In_channel.with_open_bin source In_channel.input_all
  in
  match engine_of_string engine with
  | Error (`Msg m) ->
    prerr_endline m;
    2
  | Ok kind -> (
    try
      let program = Program.consult_string program_text in
      let db =
        if annotate then Ace_analysis.Independence.annotate_program program
        else Program.db program
      in
      let q = Program.parse_query query in
      let config =
        {
          Config.default with
          agents;
          lpco = lpco || all;
          lao = lao || all;
          spo = spo || all;
          pdo = pdo || all;
          seq_threshold = gc;
          grain;
          chunk;
          max_solutions = limit;
        }
      in
      let tracing = trace_file <> None || trace_jsonl <> None in
      let trace =
        if tracing then Trace.create ~capacity:trace_buf ()
        else Trace.disabled
      in
      let t0 = Unix.gettimeofday () in
      let result = Engine.solve ~trace kind config db q.Program.goal in
      let wall_ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      List.iteri
        (fun i solution ->
          Format.printf "solution %d: %a@." (i + 1) Ace_term.Pp.pp solution)
        result.Engine.solutions;
      (match kind with
       | Engine.Par_or ->
         Format.printf "%d solution(s) in %.3f wall-clock ms (%s, %a)@."
           (List.length result.Engine.solutions)
           (float_of_int result.Engine.time /. 1e6)
           (Engine.kind_to_string kind)
           Config.pp config
       | Engine.Sequential | Engine.And_parallel | Engine.Or_parallel ->
         Format.printf
           "%d solution(s) in %d simulated cycles, %.3f wall-clock ms (%s, %a)@."
           (List.length result.Engine.solutions)
           result.Engine.time wall_ms
           (Engine.kind_to_string kind)
           Config.pp config);
      if show_stats || verbose_stats then
        Format.printf "@[<v>%a@]@."
          (fun ppf -> Ace_machine.Stats.pp ~verbose:verbose_stats ppf)
          result.Engine.stats;
      if utilization then
        Format.printf "%a@." Metrics.pp_utilization result.Engine.metrics;
      (match stats_json with
       | Some path ->
         write_file path (Ace_obs.Json.to_string (Metrics.to_json result.Engine.metrics))
       | None -> ());
      (match trace_file with
       | Some path ->
         write_file path (Trace.to_chrome_json trace);
         Format.eprintf "trace: %d event(s) written to %s (%d dropped)@."
           (Trace.recorded trace) path (Trace.dropped trace)
       | None -> ());
      (match trace_jsonl with
       | Some path -> write_file path (Trace.to_jsonl trace)
       | None -> ());
      0
    with
    | Program.Error msg | Ace_core.Errors.Engine_error msg ->
      Format.eprintf "error: %s@." msg;
      1
    | Ace_term.Arith.Error msg ->
      Format.eprintf "arithmetic error: %s@." msg;
      1)

open Cmdliner

let source =
  Arg.(value & pos 0 (some string) None & info [] ~docv:"PROGRAM"
         ~doc:"Prolog source file ('-' for stdin); omitted with --check.")

let query =
  Arg.(value & pos 1 (some string) None & info [] ~docv:"QUERY"
         ~doc:"Goal to solve (final '.' optional); omitted with --check.")

let engine =
  Arg.(value & opt string "seq" & info [ "engine"; "e" ] ~docv:"ENGINE"
         ~doc:"Engine: seq, and (\\&ACE and-parallel), or (simulated MUSE \
               or-parallel), par (hardware or-parallel on OCaml domains; \
               --agents = domains).")

let agents =
  Arg.(value & opt int 1 & info [ "agents"; "p" ] ~docv:"N"
         ~doc:"Number of simulated processors.")

let flag names doc = Arg.(value & flag & info names ~doc)

let limit =
  Arg.(value & opt (some int) None & info [ "limit"; "n" ] ~docv:"N"
         ~doc:"Stop after N solutions.")

let cmd =
  let doc = "run a query on the ACE engines" in
  Cmd.v
    (Cmd.info "ace_run" ~doc)
    Term.(
      const run
      $ flag [ "check" ]
          "Differential fuzzing: generate seeded random programs, run each \
           on all four engines under optimization sweeps and chaos \
           schedules, compare solution multisets, shrink any \
           counterexample and print a replay line.  Exit 1 on any \
           discrepancy."
      $ Arg.(value & opt int 500 & info [ "check-count" ] ~docv:"N"
               ~doc:"Number of generated cases for --check.")
      $ Arg.(value & opt int 0 & info [ "check-seed" ] ~docv:"SEED"
               ~doc:"Base seed for --check; case i uses SEED+i, so a \
                     failure replays with '--check-seed <case seed> \
                     --check-count 1'.")
      $ Arg.(value & opt int 2 & info [ "check-schedules" ] ~docv:"N"
               ~doc:"Seeded chaos schedules per parallel engine and case \
                     for --check.")
      $ Arg.(value & opt (some string) None & info [ "check-chaos" ]
               ~docv:"SPEC"
               ~doc:"Also run every engine under exactly this chaos spec \
                     (as printed in a counterexample replay line), e.g. \
                     'seed=7,steal=150,pub=150,pre=200,jit=250,spin=2048,cycles=64'.")
      $ Arg.(value & opt (some string) None & info [ "check-mutate" ]
               ~docv:"ENGINE:CLAUSE"
               ~doc:"Mutation smoke test: drop generated clause CLAUSE from \
                     the program copy given to ENGINE only; --check must \
                     then report a counterexample (exit 1).")
      $ source $ query $ engine $ agents
      $ flag [ "lpco" ] "Enable the last parallel call optimization."
      $ flag [ "lao" ] "Enable the last alternative optimization."
      $ flag [ "spo" ] "Enable the shallow parallelism optimization."
      $ flag [ "pdo" ] "Enable the processor determinacy optimization."
      $ flag [ "all-opts"; "O" ] "Enable all optimizations."
      $ Arg.(value & opt int 0 & info [ "granularity" ] ~docv:"CELLS"
               ~doc:"Sequentialize parallel calls whose estimated work is \
                     below CELLS term cells (granularity control; 0 = off).")
      $ Arg.(value & opt int 1 & info [ "grain" ] ~docv:"N"
               ~doc:"Or-parallel granularity (par engine): publish a choice \
                     point only if it still has at least N untried \
                     alternatives; smaller nodes stay private (1 = publish \
                     anything).")
      $ Arg.(value & opt int 0 & info [ "chunk" ] ~docv:"N"
               ~doc:"Or-parallel chunking (par engine): ship a published \
                     node's alternatives in tasks of at most N alternatives \
                     each (0 = whole node in one task).")
      $ limit
      $ flag [ "stats" ] "Print execution statistics."
      $ flag [ "verbose-stats" ]
          "Print execution statistics including zero-valued counters (so \
           \"this optimization never fired\" stays visible)."
      $ flag [ "annotate" ]
          "Run the strict-independence annotator before execution (uses \
           mode/1 directives)."
      $ Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
               ~doc:"Write a Chrome trace_event JSON of the run to FILE (one \
                     track per agent/domain; open in Perfetto or \
                     chrome://tracing).")
      $ Arg.(value & opt (some string) None & info [ "trace-jsonl" ]
               ~docv:"FILE"
               ~doc:"Write the raw event stream to FILE as JSON Lines (one \
                     event object per line).")
      $ Arg.(value & opt int 65536 & info [ "trace-buf" ] ~docv:"N"
               ~doc:"Per-agent trace ring capacity in events (rounded up to \
                     a power of two); the newest N events per agent are \
                     kept.")
      $ Arg.(value & opt (some string) None & info [ "stats-json" ]
               ~docv:"FILE"
               ~doc:"Write execution statistics to FILE as JSON: merged \
                     totals plus per-agent shards, utilization and \
                     histograms.")
      $ flag [ "utilization" ]
          "Print the per-agent utilization table (busy/idle fractions, \
           tasks, steals, copies).")

let () = exit (Cmd.eval' cmd)
