bin/ace_run.ml: Ace_analysis Ace_core Ace_lang Ace_machine Ace_term Arg Buffer Cmd Cmdliner Format In_channel List Printf String Term
