bin/ace_run.mli:
