bin/ace_experiments.mli:
