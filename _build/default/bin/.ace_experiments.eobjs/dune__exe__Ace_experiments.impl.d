bin/ace_experiments.ml: Ace_harness Arg Cmd Cmdliner Format List Term
