(** Strict-independence annotation: rewrites conjunctions of goals that
    cannot share an unbound variable into parallel conjunctions ('&'),
    standing in for &ACE's sharing+freeness parallelizing compiler.
    Groundness is seeded by [:- mode(p(+,-,?))] directives. *)

module Var_set : Set.S with type elt = int

type mode = Input | Output | Unknown

type modes

val no_modes : unit -> modes

(** Records a [mode(...)] directive; false when the term is not one. *)
val add_mode_directive : modes -> Ace_term.Term.t -> bool

val modes_of_directives : Ace_term.Term.t list -> modes

(** Ground variable ids after success of a goal, given those ground
    before. *)
val grounded_after : modes -> Var_set.t -> Ace_term.Term.t -> Var_set.t

(** Are two goals strictly independent at a point where [ground] holds? *)
val independent : Var_set.t -> Ace_term.Term.t -> Ace_term.Term.t -> bool

(** Head variables ground at call time, according to the predicate's
    declared mode. *)
val head_ground_of : modes -> Ace_term.Term.t -> Var_set.t

val annotate_clause : modes -> Ace_lang.Clause.t -> Ace_lang.Clause.t

(** New database with every clause re-annotated; modes come from the
    program's directives. *)
val annotate_program : Ace_lang.Program.t -> Ace_lang.Database.t

(** Checks that every parallel conjunction in the body has pairwise
    disjoint non-ground variables (sanity check for hand annotations). *)
val check_annotation :
  modes -> head_ground:Var_set.t -> Ace_lang.Clause.body -> bool
