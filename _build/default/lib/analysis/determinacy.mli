(** Static determinacy analysis: which predicates can never leave a choice
    point behind (first-argument exclusivity closed under the call graph).
    The runtime optimizations detect determinacy exactly; this is the
    compile-time approximation the paper contrasts them with. *)

module Pred_set : Set.S with type elt = string * int

(** Greatest-fixpoint analysis over the database. *)
val analyze : Ace_lang.Database.t -> Pred_set.t

val is_determinate : Pred_set.t -> string -> int -> bool

val to_list : Pred_set.t -> (string * int) list
