lib/analysis/independence.mli: Ace_lang Ace_term Set
