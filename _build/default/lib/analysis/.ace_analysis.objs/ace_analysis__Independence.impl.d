lib/analysis/independence.ml: Ace_core Ace_lang Ace_term Array Fun Hashtbl Int List Set
