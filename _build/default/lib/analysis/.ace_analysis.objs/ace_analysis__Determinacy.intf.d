lib/analysis/determinacy.mli: Ace_lang Set
