lib/analysis/determinacy.ml: Ace_core Ace_lang Ace_term List Set String
