(** Integer arithmetic over terms, as used by [is/2] and the comparison
    builtins. *)

exception Error of string

(** Evaluates an arithmetic expression; raises {!Error} on unbound
    variables, unknown functors, division by zero, or non-integral
    division. *)
val eval : Term.t -> int

(** [compare_op op x y] applies one of [< > =< >= =:= =\=]. *)
val compare_op : string -> int -> int -> bool
