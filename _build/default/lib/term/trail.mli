(** Binding trail: records variables bound since a mark so backtracking can
    restore them. *)

type t

val create : unit -> t

(** Current position, to be passed to {!undo_to}. *)
val mark : t -> int

val size : t -> int

(** Records that [v] was just bound. *)
val push : t -> Term.var -> unit

(** Unbinds everything trailed after the mark; returns the count undone. *)
val undo_to : t -> int -> int

(** [segment t ~lo ~hi] captures the trailed variables in [lo, hi) so they
    can be undone later out of order (used by the shallow-parallelism
    optimization, which records a deterministic subgoal's trail section in
    its parcall slot instead of allocating markers). *)
val segment : t -> lo:int -> hi:int -> Term.var array

(** Unbinds a captured segment; returns the count undone. *)
val undo_segment : Term.var array -> int
