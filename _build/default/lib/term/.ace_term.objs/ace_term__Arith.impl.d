lib/term/arith.ml: Array Format Stdlib Term
