lib/term/arith.mli: Term
