lib/term/trail.mli: Term
