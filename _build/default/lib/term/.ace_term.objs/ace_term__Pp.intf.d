lib/term/pp.mli: Format Term
