lib/term/term.ml: Array Hashtbl List Stdlib String
