lib/term/pp.ml: Buffer Format Hashtbl List String Term
