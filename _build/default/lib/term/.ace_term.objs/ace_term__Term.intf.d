lib/term/term.mli: Hashtbl
