lib/term/unify.ml: Array String Term Trail
