lib/term/unify.mli: Term Trail
