lib/term/trail.ml: Array Term
