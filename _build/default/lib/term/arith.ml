(* Evaluation of Prolog arithmetic expressions (the right-hand side of
   [is/2] and the operands of arithmetic comparisons). *)

exception Error of string

let error fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let rec eval t =
  match Term.deref t with
  | Term.Int n -> n
  | Term.Var _ -> error "arithmetic: unbound variable"
  | Term.Atom "random" -> error "arithmetic: random/0 unsupported (nondeterministic)"
  | Term.Atom a -> error "arithmetic: unknown constant %s" a
  | Term.Struct (op, [| x |]) ->
    let x = eval x in
    (match op with
     | "-" -> -x
     | "+" -> x
     | "abs" -> abs x
     | "sign" -> Stdlib.compare x 0
     | "msb" -> if x <= 0 then error "msb: argument must be positive" else
         (let rec go n acc = if n = 1 then acc else go (n lsr 1) (acc + 1) in
          go x 0)
     | _ -> error "arithmetic: unknown operator %s/1" op)
  | Term.Struct (op, [| x; y |]) ->
    let x = eval x and y = eval y in
    (match op with
     | "+" -> x + y
     | "-" -> x - y
     | "*" -> x * y
     | "//" | "div" ->
       if y = 0 then error "division by zero" else x / y
     | "/" ->
       if y = 0 then error "division by zero"
       else if x mod y <> 0 then error "(/)/2: non-integral result %d/%d" x y
       else x / y
     | "mod" ->
       if y = 0 then error "mod by zero"
       else
         let r = x mod y in
         if (r < 0 && y > 0) || (r > 0 && y < 0) then r + y else r
     | "rem" -> if y = 0 then error "rem by zero" else x mod y
     | "min" -> min x y
     | "max" -> max x y
     | ">>" -> x asr y
     | "<<" -> x lsl y
     | "gcd" ->
       let rec gcd a b = if b = 0 then abs a else gcd b (a mod b) in
       gcd x y
     | "^" ->
       if y < 0 then error "(^)/2: negative exponent"
       else
         let rec pow b e acc =
           if e = 0 then acc
           else pow (b * b) (e / 2) (if e land 1 = 1 then acc * b else acc)
         in
         pow x y 1
     | _ -> error "arithmetic: unknown operator %s/2" op)
  | Term.Struct (op, args) ->
    error "arithmetic: unknown operator %s/%d" op (Array.length args)

let compare_op op x y =
  match op with
  | "<" -> x < y
  | ">" -> x > y
  | "=<" -> x <= y
  | ">=" -> x >= y
  | "=:=" -> x = y
  | "=\\=" -> x <> y
  | _ -> error "arithmetic: unknown comparison %s" op
