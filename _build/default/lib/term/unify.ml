(* Unification with trailing.  [steps] counts visited term pairs so engines
   can charge a proportional cost. *)

let bind trail (v : Term.var) t =
  v.Term.binding <- Some t;
  Trail.push trail v

let rec occurs (v : Term.var) t =
  match Term.deref t with
  | Term.Var w -> w.Term.vid = v.Term.vid
  | Term.Atom _ | Term.Int _ -> false
  | Term.Struct (_, args) -> Array.exists (occurs v) args

let unify ?(occurs_check = false) ~trail ~steps a b =
  let rec go a b =
    incr steps;
    let a = Term.deref a and b = Term.deref b in
    match a, b with
    | Term.Var x, Term.Var y ->
      if x.Term.vid = y.Term.vid then true
      else begin
        (* Bind the younger variable to the older one: keeps bindings
           pointing "downward" which shortens dereference chains. *)
        if x.Term.vid > y.Term.vid then bind trail x b else bind trail y a;
        true
      end
    | Term.Var x, t | t, Term.Var x ->
      if occurs_check && occurs x t then false
      else begin
        bind trail x t;
        true
      end
    | Term.Atom x, Term.Atom y -> String.equal x y
    | Term.Int x, Term.Int y -> x = y
    | Term.Struct (f, xs), Term.Struct (g, ys) ->
      String.equal f g
      && Array.length xs = Array.length ys
      && (let rec all i = i >= Array.length xs || (go xs.(i) ys.(i) && all (i + 1)) in
          all 0)
    | (Term.Atom _ | Term.Int _ | Term.Struct _), _ -> false
  in
  go a b

(* Unification that undoes its own bindings on failure, leaving the trail
   as it was.  On success bindings remain (still trailed above the caller's
   own mark). *)
let unify_or_undo ?occurs_check ~trail ~steps a b =
  let mark = Trail.mark trail in
  if unify ?occurs_check ~trail ~steps a b then true
  else begin
    let undone = Trail.undo_to trail mark in
    steps := !steps + undone;
    false
  end

(* [matches a b] checks satisfiability of unification without leaving any
   binding behind; used for clause filtering and analysis. *)
let matches ?occurs_check a b =
  let trail = Trail.create () in
  let steps = ref 0 in
  let ok = unify ?occurs_check ~trail ~steps a b in
  ignore (Trail.undo_to trail 0);
  ok
