(* The trail records variables bound since a given point so that
   backtracking can restore the state.  Stored as a growable stack. *)

type t = { mutable entries : Term.var array; mutable size : int }

let dummy_var : Term.var = { Term.vid = -1; binding = None }

let create () = { entries = Array.make 64 dummy_var; size = 0 }

let mark t = t.size

let size t = t.size

let grow t =
  let entries = Array.make (2 * Array.length t.entries) dummy_var in
  Array.blit t.entries 0 entries 0 t.size;
  t.entries <- entries

let push t v =
  if t.size = Array.length t.entries then grow t;
  t.entries.(t.size) <- v;
  t.size <- t.size + 1

(* Unbinds every variable trailed after [mark]; returns how many were
   undone (the cost of the untrailing). *)
let undo_to t mark =
  assert (mark >= 0 && mark <= t.size);
  let undone = t.size - mark in
  for i = t.size - 1 downto mark do
    t.entries.(i).Term.binding <- None;
    t.entries.(i) <- dummy_var
  done;
  t.size <- mark;
  undone

(* The variables trailed in the half-open segment [lo, hi).  Used by the
   and-engine to undo a deterministic subgoal's bindings without markers
   (shallow-parallelism optimization). *)
let segment t ~lo ~hi =
  assert (0 <= lo && lo <= hi && hi <= t.size);
  Array.sub t.entries lo (hi - lo)

(* Undoes an out-of-order trail segment captured with [segment]. *)
let undo_segment seg =
  Array.iter (fun (v : Term.var) -> v.Term.binding <- None) seg;
  Array.length seg
