lib/harness/experiment.mli: Ace_core Ace_machine
