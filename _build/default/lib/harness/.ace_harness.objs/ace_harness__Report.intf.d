lib/harness/report.mli: Experiment Format
