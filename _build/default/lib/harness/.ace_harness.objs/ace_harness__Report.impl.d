lib/harness/report.ml: Ace_machine Experiment Format List Printf String
