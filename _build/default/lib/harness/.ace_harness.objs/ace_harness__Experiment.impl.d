lib/harness/experiment.ml: Ace_benchmarks Ace_core Ace_machine List Option Printf String
