lib/harness/extras.ml: Ace_benchmarks Ace_core Ace_machine Format List
