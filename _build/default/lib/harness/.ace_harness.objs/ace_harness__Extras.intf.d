lib/harness/extras.mli: Ace_benchmarks Format
