(** Unnumbered evaluation claims of the paper: X1 (1-processor parallel
    overhead, §1/§2.3/§5) and X2 (LPCO control-stack savings, §3.1). *)

type overhead_row = {
  o_label : string;
  seq_time : int;
  unopt_time : int;
  opt_time : int;
  gc_time : int;  (** all optimizations plus granularity control *)
  unopt_overhead : float;
  opt_overhead : float;
  gc_overhead : float;
}

val overhead_benchmarks : string list

val run_overhead :
  ?benchmarks:string list ->
  ?size_of:(Ace_benchmarks.Programs.t -> int) ->
  unit ->
  overhead_row list

val pp_overhead : Format.formatter -> overhead_row list -> unit

type memory_row = {
  m_label : string;
  unopt_words : int;
  opt_words : int;
  saving : float;
}

val run_memory :
  ?benchmarks:string list -> ?agents:int -> unit -> memory_row list

val pp_memory : Format.formatter -> memory_row list -> unit
