(** Paper-format rendering of experiment results. *)

val pp_cell : Format.formatter -> Experiment.cell -> unit

(** Table in the paper's "unopt/opt (±x%)" row format. *)
val pp_table : Format.formatter -> Experiment.results -> unit

(** Figure as per-processor series; [speedup] normalises each variant to
    its own 1-processor point (Figure 5), otherwise raw times (Figure 8). *)
val pp_figure : speedup:bool -> Format.formatter -> Experiment.results -> unit

(** Dispatches on the experiment id. *)
val pp_results : Format.formatter -> Experiment.results -> unit

val to_string : Experiment.results -> string

(** Structural-counter summary explaining the timing shape. *)
val pp_structural : Format.formatter -> Experiment.results -> unit
