(* The evaluation claims of the paper that are not a numbered table or
   figure:

   X1 — parallel overhead: the unoptimized &ACE engine runs 10-25% slower
   than sequential SICStus on one processor; the optimizations bring the
   overhead under 5% "for many programs" (§1, §2.3, §5).

   X2 — memory: LPCO cuts control-stack usage by about half on
   flattening-friendly programs (§3.1). *)

module Config = Ace_machine.Config
module Engine = Ace_core.Engine
module Programs = Ace_benchmarks.Programs
module Stats = Ace_machine.Stats

type overhead_row = {
  o_label : string;
  seq_time : int;
  unopt_time : int; (* and-engine, 1 agent, no optimizations *)
  opt_time : int;   (* and-engine, 1 agent, all optimizations *)
  gc_time : int;    (* all optimizations + granularity control *)
  unopt_overhead : float; (* percent over sequential *)
  opt_overhead : float;
  gc_overhead : float;
}

let percent_over base v =
  if base = 0 then 0.0 else 100.0 *. float_of_int (v - base) /. float_of_int base

(* The deterministic and-parallel benchmarks, where the sequential engine
   computes the identical result. *)
let overhead_benchmarks =
  [ "map2"; "occur"; "matrix"; "pderiv"; "annotator"; "takeuchi"; "hanoi";
    "bt_cluster"; "quick_sort" ]

let run_overhead ?(benchmarks = overhead_benchmarks) ?size_of () =
  List.map
    (fun name ->
      let b = Programs.find name in
      let size =
        match size_of with Some f -> f b | None -> b.Programs.default_size
      in
      let program = b.Programs.program size and query = b.Programs.query size in
      let seq =
        Engine.solve_program Engine.Sequential Config.default ~program ~query
      in
      let unopt =
        Engine.solve_program Engine.And_parallel
          { Config.default with agents = 1 }
          ~program ~query
      in
      let opt =
        Engine.solve_program Engine.And_parallel
          (Config.all_optimizations ~agents:1 ())
          ~program ~query
      in
      let gc =
        Engine.solve_program Engine.And_parallel
          { (Config.all_optimizations ~agents:1 ()) with Config.seq_threshold = 24 }
          ~program ~query
      in
      {
        o_label = name;
        seq_time = seq.Engine.time;
        unopt_time = unopt.Engine.time;
        opt_time = opt.Engine.time;
        gc_time = gc.Engine.time;
        unopt_overhead = percent_over seq.Engine.time unopt.Engine.time;
        opt_overhead = percent_over seq.Engine.time opt.Engine.time;
        gc_overhead = percent_over seq.Engine.time gc.Engine.time;
      })
    benchmarks

let pp_overhead ppf rows =
  Format.fprintf ppf
    "== X1: parallel overhead on one processor (vs sequential engine) ==@,";
  Format.fprintf ppf "%-12s %10s %12s %12s %12s %10s %9s %9s@," "benchmark"
    "seq" "and(unopt)" "and(opt)" "and(opt+gc)" "ovh-unopt" "ovh-opt" "ovh-gc";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %10d %12d %12d %12d %9.1f%% %8.1f%% %8.1f%%@,"
        r.o_label r.seq_time r.unopt_time r.opt_time r.gc_time r.unopt_overhead
        r.opt_overhead r.gc_overhead)
    rows;
  let avg f =
    match rows with
    | [] -> 0.0
    | _ ->
      List.fold_left (fun acc r -> acc +. f r) 0.0 rows
      /. float_of_int (List.length rows)
  in
  Format.fprintf ppf "%-12s %10s %12s %12s %12s %9.1f%% %8.1f%% %8.1f%%@,@,"
    "average" "" "" "" ""
    (avg (fun r -> r.unopt_overhead))
    (avg (fun r -> r.opt_overhead))
    (avg (fun r -> r.gc_overhead))

type memory_row = {
  m_label : string;
  unopt_words : int;
  opt_words : int;
  saving : float; (* percent *)
}

(* X2: control-stack words allocated with and without LPCO. *)
let run_memory ?(benchmarks = [ "map2"; "occur"; "bt_cluster" ]) ?(agents = 5) () =
  List.map
    (fun name ->
      let b = Programs.find name in
      let size = b.Programs.default_size in
      let program = b.Programs.program size and query = b.Programs.query size in
      let run config =
        Engine.solve_program Engine.And_parallel config ~program ~query
      in
      let unopt = run { Config.default with agents } in
      let opt = run { Config.default with agents; lpco = true } in
      let uw = unopt.Engine.stats.Stats.stack_words in
      let ow = opt.Engine.stats.Stats.stack_words in
      {
        m_label = name;
        unopt_words = uw;
        opt_words = ow;
        saving = (if uw = 0 then 0.0 else 100.0 *. float_of_int (uw - ow) /. float_of_int uw);
      })
    benchmarks

let pp_memory ppf rows =
  Format.fprintf ppf
    "== X2: control-stack allocation with/without LPCO (words) ==@,";
  Format.fprintf ppf "%-12s %12s %12s %10s@," "benchmark" "no LPCO" "LPCO" "saved";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-12s %12d %12d %9.1f%%@," r.m_label r.unopt_words
        r.opt_words r.saving)
    rows;
  Format.fprintf ppf "@,"
