(** Deterministic workload-data generators, rendered as Prolog source text
    so benchmarks exercise the full pipeline (lexer, parser, database). *)

val int_list : seed:int -> n:int -> bound:int -> int list

val pp_int_list : int list -> string

(** n×n integer matrix as row lists. *)
val matrix : seed:int -> n:int -> bound:int -> int list list

val transpose : 'a list list -> 'a list list

val pp_matrix : int list list -> string

(** Random arithmetic expression over num/1, x/0, plus/2, times/2 with
    [size] internal nodes, as source text. *)
val expression : seed:int -> size:int -> string

(** Points for the clustering benchmark, as [p(X,Y)] source terms. *)
val points : seed:int -> n:int -> bound:int -> string list

val pp_term_list : string list -> string

(** Peano numeral [s(s(...0))]. *)
val peano : int -> string

(** Balanced binary ancestry facts [parent(i, 2i).] for i in [1, 2^depth). *)
val ancestry_facts : depth:int -> string

(** Source text of the symbolic derivative of an {!expression}, mirroring
    the Prolog [d/2] so generators can compute exact acceptance targets. *)
val derivative : string -> string
