(** The paper's benchmark programs, written in the engine's Prolog subset,
    with parameterized program and query generators.  See the
    implementation header for the encoding conventions (no cut,
    first-argument indexing for determinacy, strict-independence '&'
    annotations, mode directives). *)

type t = {
  name : string;
  kind : Ace_core.Engine.kind;  (** engine family the paper used it with *)
  description : string;
  program : int -> string;      (** size -> program source *)
  query : int -> string;        (** size -> query text *)
  default_size : int;           (** size used by the paper-table experiments *)
  small_size : int;             (** size used by the test suite *)
}

(** All benchmarks of the paper's evaluation. *)
val all : t list

(** Raises [Invalid_argument] on unknown names. *)
val find : string -> t

val names : string list

(** Number of candidate expressions in the pderiv backward variant. *)
val pderiv_bt_candidates : int

(** Candidate parameters in the map1 backward workload. *)
val map1_candidates : int
