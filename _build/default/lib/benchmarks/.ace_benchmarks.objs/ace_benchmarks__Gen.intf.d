lib/benchmarks/gen.mli:
