lib/benchmarks/programs.mli: Ace_core
