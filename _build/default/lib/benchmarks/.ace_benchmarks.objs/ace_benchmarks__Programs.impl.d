lib/benchmarks/programs.ml: Ace_core Ace_sched Gen List Printf String
