lib/benchmarks/gen.ml: Ace_lang Ace_sched Ace_term Buffer List Printf String
