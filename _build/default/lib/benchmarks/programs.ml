(* The paper's benchmark programs, written in the engine's Prolog subset.

   Conventions forced by the engines:
   - no cut: mutually exclusive clauses are selected by first-argument
     indexing; data-dependent guards are compiled into an index argument
     with branch-free arithmetic (e.g. [C is min(1, max(0, X - Y))] selects
     clause [0] when X =< Y and clause [1] otherwise) — the standard trick
     for making determinacy visible to the indexer, which is what the
     runtime optimizations key on;
   - '&' marks strictly independent conjunctions (checked by
     [Ace_analysis.Independence] in the test suite);
   - [:- mode(...)]. directives document groundness for the annotator.

   Each benchmark carries a program generator and a query generator so
   workload sizes can be swept. *)

type t = {
  name : string;
  kind : Ace_core.Engine.kind; (* engine family the paper used it with *)
  description : string;
  program : int -> string;
  query : int -> string;
  default_size : int; (* size used by the paper-table experiments *)
  small_size : int;   (* size used by the test suite *)
}

let shared_list_library =
  {|
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
|}

(* ------------------------------------------------------------------ *)
(* And-parallel benchmarks                                             *)
(* ------------------------------------------------------------------ *)

let spin_library =
  {|
spin(N) :- C is min(1, N), spin1(C, N).
spin1(0, _).
spin1(1, N) :- _X is ((N * 17 + 5) * (N + 3)) mod 997, N1 is N - 1, spin(N1).
|}


(* map2: deterministic map, forward execution only (Table 1). *)
let map2_program _n =
  {|
:- mode(work(+, -)).
:- mode(triple(+, -)).
:- mode(map2(+, -)).
work(X, Y) :- spin(5), Y is ((X * 3 + 1) * (X + 7)) mod 1009.
triple(X, Y) :- work(X, A), work(A, B), work(B, Y).
map2([], []).
map2([H|T], [H2|T2]) :- triple(H, H2) & map2(T, T2).
|}
  ^ spin_library

let map2_query n =
  Printf.sprintf "map2(%s, Out)" (Gen.pp_int_list (Gen.int_list ~seed:11 ~n ~bound:1000))

(* occur(k): occurrence counting of keys 1..k over a chunked ground list
   (Tables 1 and 4; "poccur" in Table 5 and Figure 8).  Each chunk is
   counted in parallel via a tail parallel call (so LPCO flattens the
   chunk chain), keys are processed in a determinate recursion (indexed on
   the key argument), and the occurrence test is branch-free so the whole
   computation is determinate. *)
let occur_program _n =
  {|
:- mode(occ(+, +, -)).
:- mode(occ_chunks(+, +, -)).
:- mode(sum(+, -)).
:- mode(poccur(+, +, -)).
occ([], _, 0).
occ([H|T], K, N) :- occ(T, K, M), N is M + 1 - min(1, abs(H - K)).
occ_chunks([], _, []).
occ_chunks([C|Cs], K, [N|Ns]) :- occ(C, K, N) & occ_chunks(Cs, K, Ns).
sum([], 0).
sum([N|Ns], S) :- sum(Ns, T), S is N + T.
poccur(0, _, []).
poccur(K, Chunks, [C|Cs]) :-
  K > 0,
  occ_chunks(Chunks, K, Ns), sum(Ns, C),
  K1 is K - 1, poccur(K1, Chunks, Cs).
|}

let chunked ~seed ~n ~bound ~chunk =
  let xs = Gen.int_list ~seed ~n ~bound in
  let rec split xs =
    if List.length xs <= chunk then [ xs ]
    else
      let rec take k = function
        | x :: rest when k > 0 ->
          let first, more = take (k - 1) rest in
          (x :: first, more)
        | rest -> ([], rest)
      in
      let first, more = take chunk xs in
      first :: split more
  in
  "["
  ^ String.concat "," (List.map Gen.pp_int_list (split xs))
  ^ "]"

let occur_query ?(keys = 5) n =
  Printf.sprintf "poccur(%d, %s, Counts)" keys
    (chunked ~seed:23 ~n ~bound:(keys + 3) ~chunk:12)

(* matrix multiplication: rows in parallel, dot products nested-parallel
   (Tables 4 and 5 "matrix mult"). *)
let matrix_program _n =
  {|
:- mode(dot(+, +, -)).
:- mode(rowmul(+, +, -)).    % rowmul(Cols, Row, Es): indexed on the column list
:- mode(mmul(+, +, -)).
dot([], [], 0).
dot([A|As], [B|Bs], S) :- dot(As, Bs, T), S is T + A * B.
rowmul([], _, []).
rowmul([Col|Cols], Row, [E|Es]) :- dot(Row, Col, E) & rowmul(Cols, Row, Es).
mmul([], _, []).
mmul([Row|Rows], Cols, [R|Rs]) :- rowmul(Cols, Row, R) & mmul(Rows, Cols, Rs).
|}

let matrix_query n =
  let a = Gen.matrix ~seed:31 ~n ~bound:10 in
  let b = Gen.matrix ~seed:37 ~n ~bound:10 in
  Printf.sprintf "mmul(%s, %s, R)" (Gen.pp_matrix a) (Gen.pp_matrix (Gen.transpose b))

(* matrix with backward execution (Table 2 "matrix", Figure 5 "Matrix
   Mult."): a nondeterministic generator picks a candidate scalar, the
   (parallel) matrix computation runs, and a trace test rejects all but the
   last candidate — every rejection backtracks over the whole parcall
   tree. *)
let matrix_bt_program n =
  let base = matrix_program n in
  base
  ^ {|
:- mode(scale_row(+, +, -)).
:- mode(scale(+, +, -)).
:- mode(trace_sum(+, +, -)).
scale_row(_, [], []).
scale_row(S, [X|Xs], [Y|Ys]) :- Y is X * S, scale_row(S, Xs, Ys).
scale(_, [], []).
scale(S, [R|Rs], [SR|SRs]) :- scale_row(S, R, SR) & scale(S, Rs, SRs).
trace_sum([], _, 0).
trace_sum([Row|Rows], I, S) :- nth(I, Row, E), I1 is I + 1, trace_sum(Rows, I1, T), S is T + E.
nth(0, [X|_], X).
nth(I, [_|T], X) :- I > 0, I1 is I - 1, nth(I1, T, X).
matrix_search(A, B, Ss, S, V) :-
  member(S, Ss), scale(S, A, SA), mmul(SA, B, C), trace_sum(C, 0, V0), V =:= V0.
|}
  ^ shared_list_library

let matrix_bt_query n =
  (* the accepted scalar is the last candidate: full backtracking sweep *)
  let a = Gen.matrix ~seed:31 ~n ~bound:10 in
  let b = Gen.matrix ~seed:37 ~n ~bound:10 in
  let scalars = List.init 12 (fun i -> i + 1) in
  (* compute the trace of (6*A) * B^T(cols given) to make the test accept
     exactly the last scalar *)
  let bt = Gen.transpose b in
  let dot r c = List.fold_left2 (fun acc x y -> acc + (x * y)) 0 r c in
  let accepted = 12 in
  let trace =
    List.mapi (fun i row -> dot (List.map (( * ) accepted) row) (List.nth bt i)) a
    |> List.fold_left ( + ) 0
  in
  Printf.sprintf "matrix_search(%s, %s, %s, S, %d)" (Gen.pp_matrix a)
    (Gen.pp_matrix bt) (Gen.pp_int_list scalars) trace

(* pderiv: parallel symbolic differentiation (Table 2, Figure 5).  The
   backward-execution variant differentiates each expression of a
   nondeterministically chosen candidate list and rejects on a size test
   until the last one. *)
let pderiv_program _n =
  {|
:- mode(d(+, -)).
:- mode(esize(+, -)).
d(x, num(1)).
d(num(_), num(0)).
d(plus(A, B), plus(DA, DB)) :- d(A, DA) & d(B, DB).
d(times(A, B), plus(times(DA, B), times(A, DB))) :- d(A, DA) & d(B, DB).
pderiv_search(Es, E, Target) :- member(E, Es), d(E, D), D = Target.
|}
  ^ shared_list_library

let pderiv_query n =
  Printf.sprintf "d(%s, D)" (Gen.expression ~seed:41 ~size:n)

(* number of candidate expressions in the backward variant *)
let pderiv_bt_candidates = 16

let pderiv_bt_query n =
  let exprs =
    List.init pderiv_bt_candidates (fun i ->
        Gen.expression ~seed:(100 + i) ~size:n)
  in
  (* the target is the last candidate's derivative: every earlier
     candidate is rejected after its full parallel differentiation *)
  let target = Gen.derivative (List.nth exprs (pderiv_bt_candidates - 1)) in
  Printf.sprintf "pderiv_search(%s, E, %s)" (Gen.pp_term_list exprs) target

(* map1: the paper's backward-execution map (Table 2 "map1", Figure 5
   "Map").  A generator picks a candidate parameter; the parallel map over
   the list *fails inside* the parcall for every candidate but the last
   (one element's check fails), so each rejected candidate tears the whole
   parallel-call structure down — through the chain of nested frames
   without LPCO, in a single flat step with it. *)
let map1_program _n =
  {|
:- mode(chk(+, +, -)).
:- mode(mapt(+, +, -)).
chk(H, P, V) :- spin(20), V is (H * P + H + P) mod 13, V =\= 5.
mapt([], _, []).
mapt([H|T], P, [V|Vs]) :- chk(H, P, V) & mapt(T, P, Vs).
map1(L, Ps, Vs) :- member(P, Ps), mapt(L, P, Vs).
|}
  ^ shared_list_library ^ spin_library

(* Candidate parameters: all but the last make some list element fail. *)
let map1_candidates = 8

let map1_query n =
  let rng = Ace_sched.Rng.create 53 in
  let xs = Ace_sched.Rng.int_list rng ~n ~bound:100 in
  let fails p = List.exists (fun h -> ((h * p) + h + p) mod 13 = 5) xs in
  let rec collect p bad good =
    if p > 2000 then (bad, good)
    else if List.length bad >= map1_candidates - 1 && good <> None then
      (bad, good)
    else if fails p then collect (p + 1) (if List.length bad < map1_candidates - 1 then p :: bad else bad) good
    else collect (p + 1) bad (match good with None -> Some p | some -> some)
  in
  let bad, good = collect 1 [] None in
  let good = match good with Some p -> p | None -> invalid_arg "map1_query: no accepting candidate" in
  Printf.sprintf "map1(%s, %s, Vs)" (Gen.pp_int_list xs)
    (Gen.pp_int_list (List.rev bad @ [ good ]))

(* annotator: a Prolog implementation of independence annotation itself —
   clauses are processed in parallel; per clause, goals (var-id lists) are
   grouped into independent runs (Tables 2, 4, 5; Figure 8).  Fully
   deterministic: branch-free share test. *)
let annotator_program _n =
  {|
:- mode(memb01(+, +, -)).
:- mode(inter01(+, +, -)).
:- mode(grp(+, +, -)).
:- mode(ann_clause(+, -)).
:- mode(annotate(+, -)).
memb01([], _, 0).
memb01([Y|Ys], X, C) :- memb01(Ys, X, T), C is max(T, 1 - min(1, abs(X - Y))).
inter01([], _, 0).
inter01([X|Xs], Ys, R) :- memb01(Ys, X, C), inter01(Xs, Ys, T), R is max(C, T).
share_any([], _, 0).
share_any([g(_, Ws)|Gs], Vs, R) :- inter01(Vs, Ws, C), share_any(Gs, Vs, T), R is max(C, T).
grp([], Grp, [Grp]).
grp([g(I, Vs)|Gs], Grp, Out) :-
  share_any(Grp, Vs, C),
  grp1(C, g(I, Vs), Gs, Grp, Out).
grp1(0, G, Gs, Grp, Out) :- app1(Grp, G, Grp2), grp(Gs, Grp2, Out).
grp1(1, G, Gs, Grp, [Grp|Out]) :- grp(Gs, [G], Out).
app1([], G, [G]).
app1([H|T], G, [H|R]) :- app1(T, G, R).
ann_clause(c(Goals), a(Groups)) :- grp(Goals, [], Groups).
annotate([], []).
annotate([C|Cs], [A|As]) :- ann_clause(C, A) & annotate(Cs, As).
|}

let annotator_query n =
  (* n clauses, each with 4 goals over small var-id sets *)
  let rng = Ace_sched.Rng.create 61 in
  let clause _ =
    let goal i =
      let vars = Ace_sched.Rng.int_list rng ~n:2 ~bound:10 in
      Printf.sprintf "g(%d,%s)" i (Gen.pp_int_list vars)
    in
    Printf.sprintf "c([%s])" (String.concat "," (List.init 4 goal))
  in
  Printf.sprintf "annotate(%s, As)" (Gen.pp_term_list (List.init n clause))

(* takeuchi: tak with the three recursive calls in parallel (Tables 4, 5).
   The guard is compiled into an index argument so every call is
   determinate. *)
let takeuchi_program _n =
  {|
:- mode(tak(+, +, +, -)).
:- mode(tak1(+, +, +, +, -)).
tak(X, Y, Z, A) :- C is min(1, max(0, X - Y)), tak1(C, X, Y, Z, A).
tak1(0, _, _, Z, Z).
tak1(1, X, Y, Z, A) :-
  X1 is X - 1, Y1 is Y - 1, Z1 is Z - 1,
  ( tak(X1, Y, Z, A1) & tak(Y1, Z, X, A2) & tak(Z1, X, Y, A3) ),
  tak(A1, A2, A3, A).
|}

let takeuchi_query n = Printf.sprintf "tak(%d, %d, %d, A)" n (n * 2 / 3) (n / 3)

(* hanoi: the two half-towers in parallel (Table 4, Figure 8).  Depth is a
   Peano numeral so first-argument indexing sees the base case. *)
let hanoi_program _n =
  {|
:- mode(hanoi(+, +, +, +, -)).
hanoi(0, _, _, _, []).
hanoi(s(N), F, T, V, Ms) :-
  ( hanoi(N, F, V, T, M1) & hanoi(N, V, T, F, M2) ),
  app(M1, [mv(F, T)|M2], Ms).
|}
  ^ shared_list_library

let hanoi_query n = Printf.sprintf "hanoi(%s, a, b, c, Ms)" (Gen.peano n)

(* bt_cluster: assign points to the nearest of k centroids, points in
   parallel (Tables 4 and 5).  Branch-free nearest-centroid fold. *)
let bt_cluster_program _n =
  {|
:- mode(dist2(+, +, -)).
:- mode(near(+, +, +, +, -)).
:- mode(assign(+, +, -)).
:- mode(cluster(+, +, -)).
dist2(p(X, Y), c(CX, CY), D) :- DX is X - CX, DY is Y - CY, D is DX * DX + DY * DY.
near([], _, _, b(_, BI), BI).
near([C|Cs], P, I, b(BD, BI), B) :-
  dist2(P, C, D),
  S is min(1, max(0, D - BD)),
  upd(S, D, I, BD, BI, ND, NI),
  I1 is I + 1,
  near(Cs, P, I1, b(ND, NI), B).
upd(0, D, I, _, _, D, I).
upd(1, _, _, BD, BI, BD, BI).
assign(P, Cs, A) :- near(Cs, P, 0, b(99999999, -1), A).
cluster([], _, []).
cluster([P|Ps], Cs, [A|As]) :- assign(P, Cs, A) & cluster(Ps, Cs, As).
|}

let bt_cluster_query n =
  let pts = Gen.points ~seed:71 ~n ~bound:100 in
  let cents = [ "c(10,10)"; "c(50,50)"; "c(90,20)"; "c(20,80)"; "c(70,70)" ] in
  Printf.sprintf "cluster(%s, %s, As)" (Gen.pp_term_list pts) (Gen.pp_term_list cents)

(* quicksort with parallel recursive sorts; partition selects clauses by a
   branch-free comparison index (Table 5 "quick sort"). *)
let quicksort_program _n =
  {|
:- mode(qsort(+, -)).
part([], _, [], []).
part([H|T], P, Sm, Lg) :- C is min(1, max(0, H - P)), part1(C, H, T, P, Sm, Lg).
part1(0, H, T, P, [H|Sm], Lg) :- part(T, P, Sm, Lg).
part1(1, H, T, P, Sm, [H|Lg]) :- part(T, P, Sm, Lg).
qsort([], []).
qsort([H|T], S) :- part(T, H, Sm, Lg), ( qsort(Sm, S1) & qsort(Lg, S2) ), app(S1, [H|S2], S).
|}
  ^ shared_list_library

let quicksort_query n =
  Printf.sprintf "qsort(%s, S)" (Gen.pp_int_list (Gen.int_list ~seed:83 ~n ~bound:10000))

(* ------------------------------------------------------------------ *)
(* Or-parallel benchmarks (Table 3)                                    *)
(* ------------------------------------------------------------------ *)

(* queen1: naive permutation generate-and-test. *)
let queen1_program _n =
  {|
sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).
perm([], []).
perm(L, [H|T]) :- sel(H, L, R), perm(R, T).
noatt(_, [], _).
noatt(Q, [Q2|Qs], D) :- Q2 =\= Q + D, Q2 =\= Q - D, D1 is D + 1, noatt(Q, Qs, D1).
safe([]).
safe([Q|Qs]) :- noatt(Q, Qs, 1), safe(Qs).
queen1(Ns, Qs) :- perm(Ns, Qs), safe(Qs).
|}

let upto n = List.init n (fun i -> i + 1)

let queen1_query n = Printf.sprintf "queen1(%s, Qs)" (Gen.pp_int_list (upto n))

(* queen2: incremental placement with pruning. *)
let queen2_program _n =
  {|
sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).
noatt(_, [], _).
noatt(Q, [Q2|Qs], D) :- Q2 =\= Q + D, Q2 =\= Q - D, D1 is D + 1, noatt(Q, Qs, D1).
place([], Placed, Placed).
place(Un, Placed, Qs) :- sel(Q, Un, Rest), noatt(Q, Placed, 1), place(Rest, [Q|Placed], Qs).
queen2(Ns, Qs) :- place(Ns, [], Qs).
|}

let queen2_query n = Printf.sprintf "queen2(%s, Qs)" (Gen.pp_int_list (upto n))

(* puzzle: 3×3 magic square by incremental pruned search. *)
let puzzle_program _n =
  {|
sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).
magic(S, [A,B,C,D,E,F,G,H,I]) :-
  sel(A, [1,2,3,4,5,6,7,8,9], R1), sel(B, R1, R2), sel(C, R2, R3),
  S =:= A + B + C,
  sel(D, R3, R4), sel(G, R4, R5),
  S =:= A + D + G,
  sel(E, R5, R6),
  S =:= C + E + G,
  I is S - A - E, sel(I, R6, R7),
  sel(F, R7, R8),
  S =:= D + E + F,
  sel(H, R8, []),
  S =:= B + E + H,
  S =:= C + F + I,
  S =:= G + H + I.
|}

let puzzle_query _n = "magic(15, Cells)"

(* ancestors: all descendants reachable in a balanced ancestry. *)
let ancestors_program n =
  {|
anc(X, Y) :- parent(X, Y).
anc(X, Y) :- parent(X, Z), anc(Z, Y).
|}
  ^ Gen.ancestry_facts ~depth:n

let ancestors_query _n = "anc(1, D)"

(* members: constrained cross-product search. *)
let members_program _n =
  {|
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
members(L1, L2, L3, K, t(X, Y, Z)) :-
  member(X, L1), member(Y, L2), member(Z, L3),
  K =:= X + Y + Z.
|}

let members_query n =
  let l ~seed = Gen.pp_int_list (Gen.int_list ~seed ~n ~bound:50) in
  Printf.sprintf "members(%s, %s, %s, 75, T)" (l ~seed:91) (l ~seed:92) (l ~seed:93)

(* maps: 4-colouring of a 13-region map (the classic or-parallel map
   benchmark); colour choices interleaved with disequalities for
   pruning. *)
let maps_program _n =
  {|
color(red). color(green). color(blue). color(yellow).
maps([A,B,C,D,E,F,G,H,I,J,K,L,M]) :-
  color(A), color(B), A \= B,
  color(C), C \= A, C \= B,
  color(D), D \= B, D \= C,
  color(E), E \= A, E \= C, E \= D,
  color(F), F \= D, F \= E,
  color(G), G \= E, G \= F, G \= A,
  color(H), H \= F, H \= G, H \= B,
  color(I), I \= G, I \= H, I \= C,
  color(J), J \= H, J \= I, J \= D,
  color(K), K \= I, K \= J, K \= E,
  color(L), L \= J, L \= K, L \= F,
  color(M), M \= K, M \= L, M \= G, M \= A.
|}

let maps_query _n = "maps(Regions)"

(* ------------------------------------------------------------------ *)
(* Registry                                                            *)
(* ------------------------------------------------------------------ *)

let and_par = Ace_core.Engine.And_parallel
let or_par = Ace_core.Engine.Or_parallel

let all =
  [
    { name = "map2"; kind = and_par;
      description = "deterministic parallel map (forward execution only)";
      program = map2_program; query = map2_query;
      default_size = 320; small_size = 12 };
    { name = "occur"; kind = and_par;
      description = "parallel occurrence counting, occur(5)";
      program = occur_program; query = occur_query ?keys:None;
      default_size = 240; small_size = 10 };
    { name = "matrix"; kind = and_par;
      description = "parallel matrix multiplication";
      program = matrix_program; query = matrix_query;
      default_size = 12; small_size = 4 };
    { name = "matrix_bt"; kind = and_par;
      description = "matrix multiplication under a rejecting generate-and-test (backward execution)";
      program = matrix_bt_program; query = matrix_bt_query;
      default_size = 10; small_size = 3 };
    { name = "pderiv"; kind = and_par;
      description = "parallel symbolic differentiation";
      program = pderiv_program; query = pderiv_query;
      default_size = 220; small_size = 12 };
    { name = "pderiv_bt"; kind = and_par;
      description = "differentiation under a rejecting size test (backward execution)";
      program = pderiv_program; query = pderiv_bt_query;
      default_size = 56; small_size = 6 };
    { name = "map1"; kind = and_par;
      description = "map under a rejecting candidate generator (backward execution)";
      program = map1_program; query = map1_query;
      default_size = 48; small_size = 6 };
    { name = "annotator"; kind = and_par;
      description = "parallel clause annotator (independence grouping)";
      program = annotator_program; query = annotator_query;
      default_size = 64; small_size = 3 };
    { name = "takeuchi"; kind = and_par;
      description = "tak with parallel recursive calls";
      program = takeuchi_program; query = takeuchi_query;
      default_size = 14; small_size = 6 };
    { name = "hanoi"; kind = and_par;
      description = "towers of hanoi with parallel half-towers";
      program = hanoi_program; query = hanoi_query;
      default_size = 10; small_size = 4 };
    { name = "bt_cluster"; kind = and_par;
      description = "nearest-centroid clustering, points in parallel";
      program = bt_cluster_program; query = bt_cluster_query;
      default_size = 120; small_size = 8 };
    { name = "quick_sort"; kind = and_par;
      description = "quicksort with parallel recursive sorts";
      program = quicksort_program; query = quicksort_query;
      default_size = 300; small_size = 12 };
    { name = "queen1"; kind = or_par;
      description = "n-queens, naive permutation generate-and-test";
      program = queen1_program; query = queen1_query;
      default_size = 6; small_size = 4 };
    { name = "queen2"; kind = or_par;
      description = "n-queens, incremental placement with pruning";
      program = queen2_program; query = queen2_query;
      default_size = 7; small_size = 4 };
    { name = "puzzle"; kind = or_par;
      description = "3x3 magic square by pruned permutation search";
      program = puzzle_program; query = puzzle_query;
      default_size = 1; small_size = 1 };
    { name = "ancestors"; kind = or_par;
      description = "all descendants in a balanced ancestry";
      program = ancestors_program; query = ancestors_query;
      default_size = 9; small_size = 4 };
    { name = "members"; kind = or_par;
      description = "constrained triple search over three lists";
      program = members_program; query = members_query;
      default_size = 18; small_size = 5 };
    { name = "maps"; kind = or_par;
      description = "4-colouring of a 13-region map";
      program = maps_program; query = maps_query;
      default_size = 1; small_size = 1 };
  ]

let find name =
  match List.find_opt (fun b -> String.equal b.name name) all with
  | Some b -> b
  | None -> invalid_arg (Printf.sprintf "Programs.find: unknown benchmark %s" name)

let names = List.map (fun b -> b.name) all
