lib/machine/config.ml: Cost Format Printf String
