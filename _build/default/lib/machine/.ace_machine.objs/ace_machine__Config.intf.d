lib/machine/config.mli: Cost Format
