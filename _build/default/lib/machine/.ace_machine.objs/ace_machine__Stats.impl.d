lib/machine/stats.ml: Format List
