lib/machine/cost.mli:
