lib/machine/cost.ml:
