(** Consulting Prolog source into a {!Database.t}. *)

type t

exception Error of string

val create : unit -> t

(** Parses clauses and [:-] directives from source text; clauses are
    asserted, directives collected. *)
val consult_string : ?program:t -> string -> t

val consult_file : ?program:t -> string -> t

type query = {
  goal : Ace_term.Term.t;
  query_vars : (string * Ace_term.Term.var) list;
}

(** Parses a goal (optionally [?-]-prefixed; the final ['.'] may be
    omitted). *)
val parse_query : string -> query

val db : t -> Database.t

val directives : t -> Ace_term.Term.t list
