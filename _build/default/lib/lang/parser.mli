(** Operator-precedence Prolog reader. *)

exception Error of string * Lexer.position

type state

val make : string -> state

type read_term = {
  term : Ace_term.Term.t;
  var_names : (string * Ace_term.Term.var) list;
      (** named user variables of the clause in textual order (for
          displaying query solutions) *)
}

(** Next ['.']-terminated term, or [None] at end of input.  Variable names
    scope over a single term. *)
val next_term : state -> read_term option

(** Parses exactly one term (ending in ['.']); raises on trailing input. *)
val term_of_string : string -> Ace_term.Term.t

(** All terms in the source. *)
val read_all : string -> read_term list
