(** Operator table for the parser (standard ISO core operators plus the
    ['&'/2] parallel-conjunction operator at priority 1000, as in ACE). *)

type assoc = Xfx | Xfy | Yfx

type infix = { prio : int; assoc : assoc }

val infix : string -> infix option

(** [prefix name] is [Some (prio, strict)]; [strict] means the argument must
    have strictly smaller priority ([fy] operators are non-strict). *)
val prefix : string -> (int * bool) option

val is_operator : string -> bool

val declare_infix : string -> int -> assoc -> unit
val declare_prefix : ?strict:bool -> string -> int -> unit
