(* The operator table.  This is the parsing-side twin of the printing table
   in [Ace_term.Pp]; the round-trip property test keeps them consistent. *)

type assoc = Xfx | Xfy | Yfx

type infix = { prio : int; assoc : assoc }

let infix_table : (string, infix) Hashtbl.t = Hashtbl.create 64

let prefix_table : (string, int * bool) Hashtbl.t = Hashtbl.create 16
(* bool: argument must have strictly smaller priority (fy = false) *)

let declare_infix name prio assoc =
  Hashtbl.replace infix_table name { prio; assoc }

let declare_prefix ?(strict = true) name prio =
  Hashtbl.replace prefix_table name (prio, strict)

let () =
  List.iter
    (fun (name, prio, assoc) -> declare_infix name prio assoc)
    [ (":-", 1200, Xfx);
      ("-->", 1200, Xfx);
      (";", 1100, Xfy);
      ("->", 1050, Xfy);
      (",", 1000, Xfy);
      ("&", 950, Xfy);
      ("=", 700, Xfx);
      ("\\=", 700, Xfx);
      ("==", 700, Xfx);
      ("\\==", 700, Xfx);
      ("is", 700, Xfx);
      ("<", 700, Xfx);
      (">", 700, Xfx);
      ("=<", 700, Xfx);
      (">=", 700, Xfx);
      ("=:=", 700, Xfx);
      ("=\\=", 700, Xfx);
      ("@<", 700, Xfx);
      ("@>", 700, Xfx);
      ("@=<", 700, Xfx);
      ("@>=", 700, Xfx);
      ("=..", 700, Xfx);
      ("+", 500, Yfx);
      ("-", 500, Yfx);
      ("/\\", 500, Yfx);
      ("\\/", 500, Yfx);
      ("xor", 500, Yfx);
      ("*", 400, Yfx);
      ("/", 400, Yfx);
      ("//", 400, Yfx);
      ("mod", 400, Yfx);
      ("rem", 400, Yfx);
      ("div", 400, Yfx);
      (">>", 400, Yfx);
      ("<<", 400, Yfx);
      ("^", 200, Xfy) ];
  List.iter
    (fun (name, prio) -> declare_prefix ~strict:false name prio)
    [ (":-", 1200); ("?-", 1200) ];
  declare_prefix "\\+" 900 ~strict:false;
  declare_prefix "-" 200 ~strict:true;
  declare_prefix "+" 200 ~strict:true

let infix name = Hashtbl.find_opt infix_table name

let prefix name = Hashtbl.find_opt prefix_table name

let is_operator name =
  Hashtbl.mem infix_table name || Hashtbl.mem prefix_table name
