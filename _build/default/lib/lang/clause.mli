(** Compiled clauses: flattened sequential conjunctions with explicit
    parallel-conjunction ([Par]) nodes. *)

type body = item list

and item =
  | Call of Ace_term.Term.t
  | Par of body list  (** one compiled body per '&' branch *)

type t = { head : Ace_term.Term.t; body : body }

exception Malformed of string

(** Compiles a goal term (','/2, '&'/2, [true]) into a body. *)
val compile_body : Ace_term.Term.t -> body

(** Inverse of {!compile_body} (round-trips up to [true] elimination). *)
val term_of_body : body -> Ace_term.Term.t

(** From a [H :- B] or fact term; raises {!Malformed} on invalid heads. *)
val of_term : Ace_term.Term.t -> t

val to_term : t -> Ace_term.Term.t

val name_arity : t -> string * int

(** Fresh instance with consistently renamed variables. *)
val rename : t -> t

(** All [Call] goals, left-to-right, descending into [Par]. *)
val body_goals : body -> Ace_term.Term.t list

(** Whether a parallel conjunction occurs anywhere in the body. *)
val has_par : body -> bool

val pp : Format.formatter -> t -> unit
