(* Hand-rolled lexer for the Prolog subset.

   The token stream distinguishes a '(' that immediately follows an atom
   (function application) from a standalone '(' (grouping), as ISO Prolog
   requires.  An end-of-clause dot is a '.' followed by layout or EOF;
   otherwise '.' is an ordinary symbol character. *)

type token =
  | Atom of string
  | Var of string
  | Int of int
  | Str of string            (* "..." double-quoted: list of codes at parse *)
  | Punct of string          (* ( ) [ ] { } , | and the functor-( "((" *)
  | Dot
  | Eof

type position = { line : int; col : int }

type lexeme = { token : token; pos : position }

exception Error of string * position

let error pos fmt = Format.kasprintf (fun s -> raise (Error (s, pos))) fmt

type state = {
  src : string;
  mutable off : int;
  mutable line : int;
  mutable bol : int; (* offset of beginning of current line *)
}

let make src = { src; off = 0; line = 1; bol = 0 }

let position st = { line = st.line; col = st.off - st.bol + 1 }

let peek st = if st.off < String.length st.src then Some st.src.[st.off] else None

let peek2 st =
  if st.off + 1 < String.length st.src then Some st.src.[st.off + 1] else None

let advance st =
  (match peek st with
   | Some '\n' ->
     st.line <- st.line + 1;
     st.bol <- st.off + 1
   | Some _ | None -> ());
  st.off <- st.off + 1

let is_layout = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false
let is_digit = function '0' .. '9' -> true | _ -> false
let is_lower = function 'a' .. 'z' -> true | _ -> false
let is_upper = function 'A' .. 'Z' | '_' -> true | _ -> false
let is_alnum c = is_digit c || is_lower c || is_upper c
let is_symbol_char c = String.contains "+-*/\\^<>=~:.?@#&$" c

let rec skip_layout st =
  match peek st with
  | Some c when is_layout c ->
    advance st;
    skip_layout st
  | Some '%' ->
    let rec to_eol () =
      match peek st with
      | Some '\n' | None -> ()
      | Some _ ->
        advance st;
        to_eol ()
    in
    to_eol ();
    skip_layout st
  | Some '/' when peek2 st = Some '*' ->
    let start = position st in
    advance st;
    advance st;
    let rec to_close () =
      match peek st with
      | None -> error start "unterminated block comment"
      | Some '*' when peek2 st = Some '/' ->
        advance st;
        advance st
      | Some _ ->
        advance st;
        to_close ()
    in
    to_close ();
    skip_layout st
  | Some _ | None -> ()

let take_while st pred =
  let start = st.off in
  let rec go () =
    match peek st with
    | Some c when pred c ->
      advance st;
      go ()
    | Some _ | None -> ()
  in
  go ();
  String.sub st.src start (st.off - start)

let escape_char st pos =
  match peek st with
  | None -> error pos "unterminated escape"
  | Some c ->
    advance st;
    (match c with
     | 'n' -> '\n'
     | 't' -> '\t'
     | 'r' -> '\r'
     | 'a' -> '\007'
     | 'b' -> '\b'
     | 'f' -> '\012'
     | 'v' -> '\011'
     | '\\' -> '\\'
     | '\'' -> '\''
     | '"' -> '"'
     | '`' -> '`'
     | c -> error pos "unknown escape \\%c" c)

let quoted st ~quote pos =
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error pos "unterminated quoted token"
    | Some c when c = quote ->
      advance st;
      (* doubled quote is an escaped quote *)
      (match peek st with
       | Some c' when c' = quote ->
         advance st;
         Buffer.add_char buf quote;
         go ()
       | Some _ | None -> Buffer.contents buf)
    | Some '\\' ->
      advance st;
      (* \<newline> is a line continuation *)
      (match peek st with
       | Some '\n' ->
         advance st;
         go ()
       | Some _ | None ->
         Buffer.add_char buf (escape_char st pos);
         go ())
    | Some c ->
      advance st;
      Buffer.add_char buf c;
      go ()
  in
  go ()

(* [prev_was_name] tells whether the immediately preceding character belongs
   to an atom/var token, to classify a following '(' as functor
   application. *)
let next st =
  let followed_name =
    st.off > 0
    &&
    let c = st.src.[st.off - 1] in
    is_alnum c || c = '\'' || is_symbol_char c || c = '!'
  in
  let no_gap = followed_name in
  skip_layout st;
  let gapless = no_gap && st.off > 0 &&
                (st.off >= String.length st.src || true) &&
                (* any layout skipped breaks adjacency *)
                (let c = st.src.[st.off - 1] in
                 is_alnum c || c = '\'' || is_symbol_char c || c = '!')
  in
  let pos = position st in
  match peek st with
  | None -> { token = Eof; pos }
  | Some c when is_digit c ->
    let digits = take_while st is_digit in
    (* 0'c character code *)
    if String.equal digits "0" && peek st = Some '\'' then begin
      advance st;
      match peek st with
      | None -> error pos "unterminated character code"
      | Some '\\' ->
        advance st;
        { token = Int (Char.code (escape_char st pos)); pos }
      | Some c ->
        advance st;
        { token = Int (Char.code c); pos }
    end
    else { token = Int (int_of_string digits); pos }
  | Some c when is_lower c ->
    let name = take_while st is_alnum in
    { token = Atom name; pos }
  | Some c when is_upper c ->
    let name = take_while st is_alnum in
    { token = Var name; pos }
  | Some '\'' ->
    advance st;
    { token = Atom (quoted st ~quote:'\'' pos); pos }
  | Some '"' ->
    advance st;
    { token = Str (quoted st ~quote:'"' pos); pos }
  | Some '(' ->
    advance st;
    { token = Punct (if gapless then "((" else "("); pos }
  | Some (')' | '[' | ']' | '{' | '}' | ',' | '|') ->
    let c = Option.get (peek st) in
    advance st;
    { token = Punct (String.make 1 c); pos }
  | Some '!' ->
    advance st;
    { token = Atom "!"; pos }
  | Some ';' ->
    advance st;
    { token = Atom ";"; pos }
  | Some c when is_symbol_char c ->
    let sym = take_while st is_symbol_char in
    (* A lone '.' followed by layout/EOF was consumed by take_while; split
       the end-of-clause dot back out. *)
    if String.equal sym "." then { token = Dot; pos }
    else { token = Atom sym; pos }
  | Some c -> error pos "unexpected character %C" c

let tokenize src =
  let st = make src in
  let rec go acc =
    let lx = next st in
    match lx.token with Eof -> List.rev (lx :: acc) | _ -> go (lx :: acc)
  in
  go []
