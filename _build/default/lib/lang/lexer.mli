(** Lexer for the Prolog subset.

    Handles unquoted/quoted/symbolic atoms, variables, integers (including
    [0'c] character codes), double-quoted strings, [%] and [/* */] comments,
    and the ISO end-of-clause dot.  A ['('] immediately following an atom is
    emitted as the functor-paren [Punct "(("] so the parser can distinguish
    [f(x)] from [f (x)]. *)

type token =
  | Atom of string
  | Var of string
  | Int of int
  | Str of string
  | Punct of string
  | Dot
  | Eof

type position = { line : int; col : int }

type lexeme = { token : token; pos : position }

exception Error of string * position

type state

val make : string -> state

(** Next lexeme; returns [Eof] at end of input (and forever after). *)
val next : state -> lexeme

(** Whole input as a lexeme list ending with [Eof]. *)
val tokenize : string -> lexeme list
