(* Compiled clauses.

   A clause body is compiled once at consult time into a list of items;
   sequential conjunction is flattened, and each parallel conjunction
   ('&'/2, as in &ACE) becomes a [Par] node holding one compiled body per
   parallel branch.  Engines interpret this structure directly. *)

module Term = Ace_term.Term

type body = item list

and item =
  | Call of Term.t
  | Par of body list

type t = { head : Term.t; body : body }

exception Malformed of string

let rec compile_body t : body = conj t []

and conj t rest =
  match Term.deref t with
  | Term.Struct (",", [| a; b |]) -> conj a (conj b rest)
  | Term.Atom "true" -> rest
  | Term.Struct ("&", [| _; _ |]) as t -> Par (branches t) :: rest
  | g -> Call g :: rest

and branches t =
  match Term.deref t with
  | Term.Struct ("&", [| a; b |]) -> compile_body a :: branches b
  | g -> [ compile_body g ]

(* Re-assembles a body into a goal term (for printing and analysis). *)
let rec term_of_body = function
  | [] -> Term.Atom "true"
  | [ item ] -> term_of_item item
  | item :: rest -> Term.Struct (",", [| term_of_item item; term_of_body rest |])

and term_of_item = function
  | Call g -> g
  | Par bodies ->
    (match List.rev_map term_of_body bodies with
     | [] -> Term.Atom "true"
     | last :: before ->
       List.fold_left (fun acc b -> Term.Struct ("&", [| b; acc |])) last before)

let check_head head =
  match Term.deref head with
  | Term.Atom _ | Term.Struct _ -> ()
  | Term.Int _ | Term.Var _ ->
    raise (Malformed (Format.asprintf "invalid clause head: %a" Ace_term.Pp.pp head))

let of_term t =
  match Term.deref t with
  | Term.Struct (":-", [| head; body |]) ->
    check_head head;
    { head; body = compile_body body }
  | head ->
    check_head head;
    { head; body = [] }

let to_term { head; body } =
  match body with
  | [] -> head
  | _ -> Term.Struct (":-", [| head; term_of_body body |])

let name_arity { head; _ } =
  match Term.functor_of head with
  | Some na -> na
  | None -> assert false (* checked at construction *)

(* Fresh instance of the clause: head and body share the renaming table so
   variable identity between them is preserved. *)
let rename { head; body } =
  let table = Hashtbl.create 16 in
  let head = Term.rename_with table head in
  let rec rename_body body = List.map rename_item body
  and rename_item = function
    | Call g -> Call (Term.rename_with table g)
    | Par bodies -> Par (List.map rename_body bodies)
  in
  { head; body = rename_body body }

let rec body_goals body =
  List.concat_map
    (function Call g -> [ g ] | Par bodies -> List.concat_map body_goals bodies)
    body

(* True when the body contains a parallel conjunction at any depth. *)
let rec has_par body =
  List.exists (function Call _ -> false | Par _ -> true) body
  || List.exists
       (function Call _ -> false | Par bodies -> List.exists has_par bodies)
       body

let pp ppf c = Ace_term.Pp.pp ppf (to_term c)
