lib/lang/database.ml: Ace_term Array Clause Hashtbl List String
