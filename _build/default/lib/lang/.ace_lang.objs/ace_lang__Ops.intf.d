lib/lang/ops.mli:
