lib/lang/clause.mli: Ace_term Format
