lib/lang/ops.ml: Hashtbl List
