lib/lang/program.ml: Ace_term Clause Database Format Lexer List Parser String
