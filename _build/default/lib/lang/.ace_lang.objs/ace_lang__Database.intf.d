lib/lang/database.mli: Ace_term Clause
