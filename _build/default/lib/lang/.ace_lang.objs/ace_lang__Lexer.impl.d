lib/lang/lexer.ml: Buffer Char Format List Option String
