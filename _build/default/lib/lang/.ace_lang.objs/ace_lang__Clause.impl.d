lib/lang/clause.ml: Ace_term Format Hashtbl List
