lib/lang/lexer.mli:
