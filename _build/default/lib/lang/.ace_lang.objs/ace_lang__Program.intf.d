lib/lang/program.mli: Ace_term Database
