lib/lang/parser.mli: Ace_term Lexer
