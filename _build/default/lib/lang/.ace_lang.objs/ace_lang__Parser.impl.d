lib/lang/parser.ml: Ace_term Array Char Format Hashtbl Lexer List Ops String
