(* Clause database with first-argument indexing.

   First-argument indexing matters beyond speed: the engines create a
   choice point only when more than one clause survives indexing, so the
   index is what makes *runtime determinacy* observable — the property the
   LPCO and shallow-parallelism optimizations of the paper are driven by. *)

module Term = Ace_term.Term

type key =
  | Kany                      (* head first argument is a variable *)
  | Kint of int
  | Katom of string
  | Kstruct of string * int

let key_of_term t =
  match Term.deref t with
  | Term.Var _ -> Kany
  | Term.Int n -> Kint n
  | Term.Atom a -> Katom a
  | Term.Struct (f, args) -> Kstruct (f, Array.length args)

let key_compatible ~head ~call =
  match head, call with
  | Kany, _ | _, Kany -> true
  | Kint a, Kint b -> a = b
  | Katom a, Katom b -> String.equal a b
  | Kstruct (f, n), Kstruct (g, m) -> n = m && String.equal f g
  | (Kint _ | Katom _ | Kstruct _), _ -> false

type pred = { mutable clauses : (key * Clause.t) list (* source order *) }

type t = { preds : (string * int, pred) Hashtbl.t }

let create () = { preds = Hashtbl.create 64 }

let clause_key clause =
  match Term.deref clause.Clause.head with
  | Term.Struct (_, args) when Array.length args > 0 -> key_of_term args.(0)
  | Term.Struct _ | Term.Atom _ -> Kany
  | Term.Int _ | Term.Var _ -> assert false

let find_pred db name arity = Hashtbl.find_opt db.preds (name, arity)

let get_pred db name arity =
  match find_pred db name arity with
  | Some p -> p
  | None ->
    let p = { clauses = [] } in
    Hashtbl.add db.preds (name, arity) p;
    p

let assertz db clause =
  let name, arity = Clause.name_arity clause in
  let p = get_pred db name arity in
  p.clauses <- p.clauses @ [ (clause_key clause, clause) ]

let asserta db clause =
  let name, arity = Clause.name_arity clause in
  let p = get_pred db name arity in
  p.clauses <- (clause_key clause, clause) :: p.clauses

let mem db name arity = find_pred db name arity <> None

let clauses_of db name arity =
  match find_pred db name arity with
  | None -> []
  | Some p -> List.map snd p.clauses

(* Candidate clauses for a call, filtered by first-argument indexing.
   Returns [None] when the predicate is undefined (distinct from defined
   with no matching clause). *)
let lookup db call =
  match Term.functor_of (Term.deref call) with
  | None -> invalid_arg "Database.lookup: callable expected"
  | Some (name, arity) ->
    (match find_pred db name arity with
     | None -> None
     | Some p ->
       if arity = 0 then Some (List.map snd p.clauses)
       else
         let call_key =
           match Term.deref call with
           | Term.Struct (_, args) -> key_of_term args.(0)
           | Term.Atom _ | Term.Int _ | Term.Var _ -> Kany
         in
         Some
           (List.filter_map
              (fun (k, c) ->
                if key_compatible ~head:k ~call:call_key then Some c else None)
              p.clauses))

let predicates db =
  Hashtbl.fold (fun na _ acc -> na :: acc) db.preds []
  |> List.sort compare

let total_clauses db =
  Hashtbl.fold (fun _ p acc -> acc + List.length p.clauses) db.preds 0

(* A predicate is statically determinate-on-first-arg when no two of its
   clauses can match the same (non-variable) first argument.  Used by the
   analysis library and by LPCO's applicability conditions. *)
let first_arg_exclusive db name arity =
  match find_pred db name arity with
  | None -> false
  | Some p ->
    let keys = List.map fst p.clauses in
    let rec pairwise = function
      | [] -> true
      | k :: rest ->
        (not (List.exists (fun k' -> key_compatible ~head:k ~call:k') rest))
        && pairwise rest
    in
    (match keys with
     | [] | [ _ ] -> true
     | _ -> (not (List.mem Kany keys)) && pairwise keys)
