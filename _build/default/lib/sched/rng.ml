(* Deterministic splitmix64 generator for workload generation and
   benchmarks.  The standard library's [Random] is avoided so runs are
   reproducible across OCaml versions. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }

let golden = 0x9E3779B97F4A7C15L

let next_int64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

(* Uniform in [0, bound). *)
let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* land max_int clears the sign bit lost in the Int64 -> int truncation *)
  let v = Int64.to_int (next_int64 t) land max_int in
  v mod bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

(* A list of [n] integers in [0, bound). *)
let int_list t ~n ~bound = List.init n (fun _ -> int t bound)

(* Deterministic shuffle (Fisher-Yates). *)
let shuffle t list =
  let a = Array.of_list list in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a
