(** Deterministic splitmix64 pseudo-random numbers (reproducible
    workloads). *)

type t

val create : int -> t

(** Uniform in [0, bound); raises on non-positive bound. *)
val int : t -> int -> int

val bool : t -> bool

val int_list : t -> n:int -> bound:int -> int list

val shuffle : t -> 'a list -> 'a list
