(* Binary min-heap keyed by (priority, sequence), the sequence number giving
   deterministic FIFO tie-breaking. *)

type 'a entry = { prio : int; seq : int; value : 'a }

type 'a t = {
  mutable entries : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { entries = [||]; size = 0; next_seq = 0 }

let length t = t.size

let is_empty t = t.size = 0

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let swap t i j =
  let tmp = t.entries.(i) in
  t.entries.(i) <- t.entries.(j);
  t.entries.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if less t.entries.(i) t.entries.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < t.size && less t.entries.(l) t.entries.(!smallest) then smallest := l;
  if r < t.size && less t.entries.(r) t.entries.(!smallest) then smallest := r;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let push t prio value =
  let entry = { prio; seq = t.next_seq; value } in
  t.next_seq <- t.next_seq + 1;
  if t.size = Array.length t.entries then begin
    let capacity = max 8 (2 * Array.length t.entries) in
    let entries = Array.make capacity entry in
    Array.blit t.entries 0 entries 0 t.size;
    t.entries <- entries
  end;
  t.entries.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.entries.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.entries.(0) <- t.entries.(t.size);
      sift_down t 0
    end;
    Some (top.prio, top.value)
  end

let peek t = if t.size = 0 then None else Some (t.entries.(0).prio, t.entries.(0).value)
