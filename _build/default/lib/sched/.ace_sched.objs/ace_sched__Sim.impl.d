lib/sched/sim.ml: Array Effect Heap Printexc Printf
