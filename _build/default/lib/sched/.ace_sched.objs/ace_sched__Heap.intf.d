lib/sched/heap.mli:
