lib/sched/rng.mli:
