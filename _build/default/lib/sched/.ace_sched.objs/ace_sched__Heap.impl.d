lib/sched/heap.ml: Array
