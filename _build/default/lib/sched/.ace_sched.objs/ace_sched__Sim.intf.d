lib/sched/sim.mli:
