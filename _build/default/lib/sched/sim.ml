(* Deterministic discrete-event multiprocessor simulator.

   Agents (simulated processors) are effect-handler coroutines.  An agent
   charges virtual time by performing [tick cost]; the scheduler always
   resumes the agent with the smallest virtual clock (FIFO on ties), so a
   run is a deterministic interleaving in which shared mutable state is
   only touched between ticks — no data races, by construction.

   The simulated completion time of a computation is the virtual clock at
   the moment the driving agent declares completion via [stop]. *)

type _ Effect.t += Tick : int -> unit Effect.t

exception Not_in_simulation

let tick cost =
  if cost < 0 then invalid_arg "Sim.tick: negative cost";
  Effect.perform (Tick cost)

type step =
  | Done
  | Yield of int * (unit, step) Effect.Deep.continuation

type pending =
  | Start of (unit -> unit)
  | Resume of (unit, step) Effect.Deep.continuation

type t = {
  queue : (int * pending) Heap.t; (* value = (agent id, work) *)
  mutable clocks : int array;     (* last known virtual clock per agent *)
  mutable now : int;
  mutable current : int;          (* agent being stepped *)
  mutable stopped : bool;
  mutable stop_time : int;        (* now at the moment of stop *)
  mutable live : int;             (* agents not yet Done *)
  mutable steps : int;            (* scheduler iterations, for tracing *)
  max_steps : int;                (* runaway guard *)
}

let create ?(max_steps = 2_000_000_000) () =
  {
    queue = Heap.create ();
    clocks = [||];
    now = 0;
    current = -1;
    stopped = false;
    stop_time = 0;
    live = 0;
    steps = 0;
    max_steps;
  }

let ensure_agent t id =
  let n = Array.length t.clocks in
  if id >= n then begin
    let clocks = Array.make (max (id + 1) (max 4 (2 * n))) 0 in
    Array.blit t.clocks 0 clocks 0 n;
    t.clocks <- clocks
  end

let spawn ?(at = 0) t ~agent body =
  ensure_agent t agent;
  t.live <- t.live + 1;
  Heap.push t.queue at (agent, Start body)

let now t = t.now

let current_agent t = t.current

let stopped t = t.stopped

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    t.stop_time <- t.now
  end

let stop_time t = if t.stopped then t.stop_time else t.now

let handler : (unit, step) Effect.Deep.handler =
  {
    retc = (fun () -> Done);
    exnc =
      (fun e ->
        if Printexc.backtrace_status () then
          Printf.eprintf "agent raised %s\n%s\n%!" (Printexc.to_string e)
            (Printexc.get_backtrace ());
        raise e);
    effc =
      (fun (type a) (eff : a Effect.t) ->
        match eff with
        | Tick cost ->
          Some
            (fun (k : (a, step) Effect.Deep.continuation) -> Yield (cost, k))
        | _ -> None);
  }

let run_step pending =
  match pending with
  | Start body -> Effect.Deep.match_with body () handler
  | Resume k -> Effect.Deep.continue k ()

(* Runs until [stop] is called or all agents finish.  Pending continuations
   of other agents are discarded at stop (their computations are abandoned
   mid-flight, as when a real query completes). *)
let run t =
  let rec loop () =
    if t.stopped then ()
    else
      match Heap.pop t.queue with
      | None -> ()
      | Some (clock, (agent, pending)) ->
        t.steps <- t.steps + 1;
        if t.steps > t.max_steps then
          failwith "Sim.run: max_steps exceeded (livelock?)";
        t.now <- max t.now clock;
        t.current <- agent;
        t.clocks.(agent) <- clock;
        (match run_step pending with
         | Done -> t.live <- t.live - 1
         | Yield (cost, k) ->
           Heap.push t.queue (clock + cost) (agent, Resume k));
        loop ()
  in
  loop ()

let agent_clock t agent =
  if agent < 0 || agent >= Array.length t.clocks then
    invalid_arg "Sim.agent_clock: unknown agent";
  t.clocks.(agent)

let scheduler_steps t = t.steps
