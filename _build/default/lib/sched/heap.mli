(** Deterministic binary min-heap: equal priorities pop in insertion
    order. *)

type 'a t

val create : unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool
val push : 'a t -> int -> 'a -> unit
val pop : 'a t -> (int * 'a) option
val peek : 'a t -> (int * 'a) option
