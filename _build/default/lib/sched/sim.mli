(** Deterministic discrete-event multiprocessor simulator.

    Agents are effect-handler coroutines that charge virtual time with
    {!tick}; the scheduler always resumes the agent with the smallest
    virtual clock (insertion order on ties).  Because everything runs on a
    single OS thread and interleaving points are exactly the ticks, agents
    may freely share mutable OCaml state. *)

type t

exception Not_in_simulation

val create : ?max_steps:int -> unit -> t

(** Registers an agent coroutine, runnable from virtual time [at]
    (default 0).  Must be called before {!run}. *)
val spawn : ?at:int -> t -> agent:int -> (unit -> unit) -> unit

(** Charges [cost] virtual cycles to the calling agent and yields to the
    scheduler.  Must be called from inside an agent body. *)
val tick : int -> unit

(** Runs until {!stop} is called or every agent body returns. *)
val run : t -> unit

(** Current virtual time (max event time seen so far). *)
val now : t -> int

(** Agent currently (or last) being stepped. *)
val current_agent : t -> int

(** Declares the simulated computation complete: {!run} returns after the
    current step, and {!stop_time} records the current virtual time. *)
val stop : t -> unit

val stopped : t -> bool

(** Virtual time at the moment {!stop} was called (or [now] if never
    stopped). *)
val stop_time : t -> int

(** Last virtual clock of one agent. *)
val agent_clock : t -> int -> int

(** Scheduler iterations executed (tracing/tests). *)
val scheduler_steps : t -> int
