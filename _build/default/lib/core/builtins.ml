(* Deterministic builtin predicates, shared by all engines.

   Control constructs (cut, negation, if-then-else, disjunction) are engine
   business and are not here.  Each builtin either succeeds (possibly
   binding variables through the caller's trail), fails, or reports that the
   call is not a builtin at all. *)

module Term = Ace_term.Term
module Trail = Ace_term.Trail
module Unify = Ace_term.Unify
module Arith = Ace_term.Arith

type outcome =
  | Ok
  | Fail
  | Not_builtin

type ctx = {
  trail : Trail.t;
  steps : int ref;      (* unification steps performed, for cost charging *)
  arith_nodes : int ref;(* arithmetic nodes evaluated *)
  output : Buffer.t option; (* destination of write/1, nl/0; None = stdout *)
}

let make_ctx ?output ~trail () = { trail; steps = ref 0; arith_nodes = ref 0; output }

let names =
  [ ("true", 0); ("fail", 0); ("false", 0);
    ("=", 2); ("\\=", 2); ("==", 2); ("\\==", 2);
    ("@<", 2); ("@>", 2); ("@=<", 2); ("@>=", 2);
    ("compare", 3);
    ("is", 2); ("<", 2); (">", 2); ("=<", 2); (">=", 2); ("=:=", 2); ("=\\=", 2);
    ("var", 1); ("nonvar", 1); ("atom", 1); ("number", 1); ("integer", 1);
    ("atomic", 1); ("compound", 1); ("callable", 1); ("is_list", 1); ("ground", 1);
    ("functor", 3); ("arg", 3); ("=..", 2);
    ("write", 1); ("print", 1); ("nl", 0); ("write_canonical", 1);
    ("halt", 0) ]

let is_builtin name arity = List.mem (name, arity) names

let arith ctx t =
  ctx.arith_nodes := !(ctx.arith_nodes) + Term.size t;
  Arith.eval t

let bool_outcome b = if b then Ok else Fail

let type_check name t =
  match name, Term.deref t with
  | "var", Term.Var _ -> true
  | "var", _ -> false
  | "nonvar", Term.Var _ -> false
  | "nonvar", _ -> true
  | "atom", Term.Atom _ -> true
  | "atom", _ -> false
  | ("number" | "integer"), Term.Int _ -> true
  | ("number" | "integer"), _ -> false
  | "atomic", (Term.Atom _ | Term.Int _) -> true
  | "atomic", _ -> false
  | "compound", Term.Struct _ -> true
  | "compound", _ -> false
  | "callable", (Term.Atom _ | Term.Struct _) -> true
  | "callable", _ -> false
  | "is_list", t -> Term.to_list t <> None
  | "ground", t -> Term.is_ground t
  | _ -> assert false

let emit ctx s =
  match ctx.output with
  | Some buf -> Buffer.add_string buf s
  | None -> print_string s

let univ ctx a b =
  (* X =.. [f, Args...] in both directions *)
  match Term.deref a with
  | Term.Var _ -> (
    match Term.to_list b with
    | Some (f :: args) -> (
      match Term.deref f, args with
      | Term.Atom name, args ->
        bool_outcome
          (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps a
             (Term.struct_ name (Array.of_list args)))
      | Term.Int _, [] ->
        bool_outcome (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps a f)
      | _ -> Errors.error "=../2: invalid functor list")
    | Some [] -> Errors.error "=../2: empty list"
    | None -> Errors.error "=../2: unbound arguments")
  | Term.Atom name ->
    bool_outcome
      (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps b
         (Term.of_list [ Term.Atom name ]))
  | Term.Int n ->
    bool_outcome
      (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps b
         (Term.of_list [ Term.Int n ]))
  | Term.Struct (name, args) ->
    bool_outcome
      (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps b
         (Term.of_list (Term.Atom name :: Array.to_list args)))

let functor3 ctx t f a =
  match Term.deref t with
  | Term.Var _ -> (
    match Term.deref f, Term.deref a with
    | f', Term.Int 0 ->
      bool_outcome (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps t f')
    | Term.Atom name, Term.Int n when n > 0 ->
      let args = Array.init n (fun _ -> Term.var ()) in
      bool_outcome
        (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps t
           (Term.Struct (name, args)))
    | _ -> Errors.error "functor/3: insufficiently instantiated"
  )
  | Term.Atom name ->
    bool_outcome
      (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps
         (Term.app "fa" [ f; a ])
         (Term.app "fa" [ Term.Atom name; Term.Int 0 ]))
  | Term.Int n ->
    bool_outcome
      (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps
         (Term.app "fa" [ f; a ])
         (Term.app "fa" [ Term.Int n; Term.Int 0 ]))
  | Term.Struct (name, args) ->
    bool_outcome
      (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps
         (Term.app "fa" [ f; a ])
         (Term.app "fa" [ Term.Atom name; Term.Int (Array.length args) ]))

let arg3 ctx n t a =
  match Term.deref n, Term.deref t with
  | Term.Int i, Term.Struct (_, args) ->
    if i >= 1 && i <= Array.length args then
      bool_outcome
        (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps a args.(i - 1))
    else Fail
  | _ -> Errors.error "arg/3: insufficiently instantiated"

(* Executes a builtin call; [Not_builtin] lets the engine fall back to the
   clause database. *)
let rec call ctx goal =
  try call_unchecked ctx goal
  with Arith.Error msg ->
    raise
      (Arith.Error
         (Format.asprintf "%s in %a" msg Ace_term.Pp.pp (Term.deref goal)))

and call_unchecked ctx goal =
  let g = Term.deref goal in
  match g with
  | Term.Atom "true" -> Ok
  | Term.Atom ("fail" | "false") -> Fail
  | Term.Atom "nl" ->
    emit ctx "\n";
    Ok
  | Term.Atom "halt" -> Errors.error "halt/0: not allowed in embedded engine"
  | Term.Struct ("=", [| a; b |]) ->
    bool_outcome (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps a b)
  | Term.Struct ("\\=", [| a; b |]) ->
    let mark = Trail.mark ctx.trail in
    let unified = Unify.unify ~trail:ctx.trail ~steps:ctx.steps a b in
    ignore (Trail.undo_to ctx.trail mark);
    bool_outcome (not unified)
  | Term.Struct ("==", [| a; b |]) -> bool_outcome (Term.equal a b)
  | Term.Struct ("\\==", [| a; b |]) -> bool_outcome (not (Term.equal a b))
  | Term.Struct ("@<", [| a; b |]) -> bool_outcome (Term.compare a b < 0)
  | Term.Struct ("@>", [| a; b |]) -> bool_outcome (Term.compare a b > 0)
  | Term.Struct ("@=<", [| a; b |]) -> bool_outcome (Term.compare a b <= 0)
  | Term.Struct ("@>=", [| a; b |]) -> bool_outcome (Term.compare a b >= 0)
  | Term.Struct ("compare", [| order; a; b |]) ->
    let c = Term.compare a b in
    let sym = if c < 0 then "<" else if c > 0 then ">" else "=" in
    bool_outcome
      (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps order (Term.Atom sym))
  | Term.Struct ("is", [| result; expr |]) ->
    let n = arith ctx expr in
    bool_outcome
      (Unify.unify_or_undo ~trail:ctx.trail ~steps:ctx.steps result (Term.Int n))
  | Term.Struct (("<" | ">" | "=<" | ">=" | "=:=" | "=\\=") as op, [| a; b |]) ->
    bool_outcome (Arith.compare_op op (arith ctx a) (arith ctx b))
  | Term.Struct
      ( (("var" | "nonvar" | "atom" | "number" | "integer" | "atomic"
         | "compound" | "callable" | "is_list" | "ground") as name),
        [| t |] ) ->
    bool_outcome (type_check name t)
  | Term.Struct ("functor", [| t; f; a |]) -> functor3 ctx t f a
  | Term.Struct ("arg", [| n; t; a |]) -> arg3 ctx n t a
  | Term.Struct ("=..", [| a; b |]) -> univ ctx a b
  | Term.Struct (("write" | "print" | "write_canonical"), [| t |]) ->
    emit ctx (Ace_term.Pp.to_string t);
    Ok
  | Term.Atom _ | Term.Struct _ -> Not_builtin
  | Term.Int _ -> Errors.error "callable expected, got integer"
  | Term.Var _ -> Errors.error "unbound goal"
