(** Deterministic builtin predicates shared by the engines.  Control
    constructs (cut, [\+], [;], [->]) are handled by each engine, not
    here. *)

type outcome =
  | Ok
  | Fail
  | Not_builtin

type ctx = {
  trail : Ace_term.Trail.t;
  steps : int ref;        (** unification steps, reset/read by the engine *)
  arith_nodes : int ref;  (** arithmetic nodes evaluated *)
  output : Buffer.t option;
}

val make_ctx : ?output:Buffer.t -> trail:Ace_term.Trail.t -> unit -> ctx

val is_builtin : string -> int -> bool

(** Runs [goal] if it is a builtin.  May bind variables (trailed); raises
    {!Errors.Engine_error} on type errors. *)
val call : ctx -> Ace_term.Term.t -> outcome
