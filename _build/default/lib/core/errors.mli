(** Runtime errors shared by the engines. *)

exception Engine_error of string

(** Raises {!Engine_error} with a formatted message. *)
val error : ('a, Format.formatter, unit, 'b) format4 -> 'a

(** Calling an undefined predicate is an error, not a failure: benchmark
    programs are closed and a typo must not masquerade as a legitimate
    failure. *)
val existence_error : string -> int -> 'a
