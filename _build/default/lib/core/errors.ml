(* Runtime errors shared by the engines. *)

exception Engine_error of string

let error fmt = Format.kasprintf (fun s -> raise (Engine_error s)) fmt

(* Calling an undefined predicate is an error (not a silent failure): the
   benchmarks are closed programs and a typo must not masquerade as a
   legitimate failure. *)
let existence_error name arity = error "undefined predicate %s/%d" name arity
