(** The or-parallel engine (MUSE-style stack-copying workers) with the Last
    Alternative Optimization of the paper's §3.2.

    Finds all solutions (or [config.max_solutions]) by exploring the or-tree
    with [config.agents] simulated workers.  Parallel conjunctions run
    sequentially; cut and other control constructs are rejected. *)

type t

type result = {
  solutions : Ace_term.Term.t list;
      (** discovery order; deterministic but interleaved for P > 1 —
          compare as multisets against the sequential engine *)
  stats : Ace_machine.Stats.t;
  time : int;
}

val create :
  ?output:Buffer.t ->
  Ace_machine.Config.t ->
  Ace_lang.Database.t ->
  Ace_term.Term.t ->
  t

val run : t -> result

val solve :
  ?output:Buffer.t ->
  Ace_machine.Config.t ->
  Ace_lang.Database.t ->
  Ace_term.Term.t ->
  result

(**/**)

(** Temporary debug tracing. *)
val debug : bool ref
