lib/core/builtins.ml: Ace_term Array Buffer Errors Format List
