lib/core/and_engine.mli: Ace_lang Ace_machine Ace_term Buffer
