lib/core/seq_engine.ml: Ace_lang Ace_machine Ace_term Builtins Errors List
