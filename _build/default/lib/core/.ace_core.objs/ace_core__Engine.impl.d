lib/core/engine.ml: Ace_lang Ace_machine Ace_term And_engine List Or_engine Seq_engine
