lib/core/or_engine.ml: Ace_lang Ace_machine Ace_sched Ace_term Array Buffer Builtins Errors Format Hashtbl List
