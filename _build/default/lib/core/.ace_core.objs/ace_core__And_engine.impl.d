lib/core/and_engine.ml: Ace_lang Ace_machine Ace_sched Ace_term Array Buffer Builtins Errors Format List Option Printf
