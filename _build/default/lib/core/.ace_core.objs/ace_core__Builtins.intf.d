lib/core/builtins.mli: Ace_term Buffer
