(* And-parallel matrix multiplication: speedup curves and the effect of
   each and-parallel optimization (LPCO, SPO, PDO) separately and
   together.

     dune exec examples/matrix_par.exe          # 10x10
     dune exec examples/matrix_par.exe -- 14
*)

module Config = Ace_machine.Config
module Engine = Ace_core.Engine
module Stats = Ace_machine.Stats
module Programs = Ace_benchmarks.Programs

let variants =
  [ ("none", Config.default);
    ("lpco", { Config.default with lpco = true });
    ("spo", { Config.default with spo = true });
    ("pdo", { Config.default with pdo = true });
    ("all", Config.all_optimizations ()) ]

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 10 in
  let b = Programs.find "matrix" in
  let program = b.Programs.program n and query = b.Programs.query n in
  Format.printf "matrix multiplication %dx%d on the and-parallel engine@.@." n n;
  Format.printf "%-6s" "opts";
  List.iter (fun p -> Format.printf "%10s" (Printf.sprintf "P=%d" p)) [ 1; 2; 4; 8 ];
  Format.printf "%12s@." "speedup@8";
  List.iter
    (fun (name, config) ->
      let times =
        List.map
          (fun agents ->
            (Engine.solve_program Engine.And_parallel
               { config with Config.agents }
               ~program ~query)
              .Engine.time)
          [ 1; 2; 4; 8 ]
      in
      Format.printf "%-6s" name;
      List.iter (fun t -> Format.printf "%10d" t) times;
      (match times with
       | t1 :: _ ->
         let t8 = List.nth times 3 in
         Format.printf "%11.2fx@." (float_of_int t1 /. float_of_int t8)
       | [] -> Format.printf "@."))
    variants;
  (* structural view at 4 agents *)
  Format.printf "@.structural counters at P=4:@.";
  List.iter
    (fun (name, config) ->
      let r =
        Engine.solve_program Engine.And_parallel
          { config with Config.agents = 4 }
          ~program ~query
      in
      let s = r.Engine.stats in
      Format.printf
        "  %-6s frames %4d  nesting %2d  markers %5d  avoided %5d  time %d@."
        name s.Stats.frames s.Stats.max_frame_nesting
        (s.Stats.input_markers + s.Stats.end_markers)
        s.Stats.markers_avoided r.Engine.time)
    variants
