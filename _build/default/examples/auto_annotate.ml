(* Automatic parallelization: take an *unannotated* program with mode
   declarations, run the strict-independence annotator (the stand-in for
   &ACE's parallelizing compiler), show what it found, and compare the
   sequential run with the auto-annotated and-parallel run.

     dune exec examples/auto_annotate.exe
*)

module Config = Ace_machine.Config
module Engine = Ace_core.Engine
module Program = Ace_lang.Program
module Database = Ace_lang.Database
module Clause = Ace_lang.Clause
module Independence = Ace_analysis.Independence

let source =
  {|
:- mode(size(+, -)).
:- mode(depth(+, -)).
:- mode(mirror(+, -)).
:- mode(analyze(+, -)).

size(leaf, 1).
size(node(L, R), S) :- size(L, SL), size(R, SR), S is SL + SR + 1.

depth(leaf, 1).
depth(L, D) :- dstep(L, D).
dstep(node(L, R), D) :- depth(L, DL), depth(R, DR), D is max(DL, DR) + 1.

mirror(leaf, leaf).
mirror(node(L, R), node(MR, ML)) :- mirror(L, ML), mirror(R, MR).

% three independent analyses of the same ground tree
analyze(T, result(S, D, M)) :- size(T, S), depth(T, D), mirror(T, M).
|}

let tree depth =
  let rec go d = if d = 0 then "leaf" else Printf.sprintf "node(%s,%s)" (go (d - 1)) (go (d - 1)) in
  go depth

let () =
  let program = Program.consult_string source in
  let annotated = Independence.annotate_program program in
  Format.printf "clauses after automatic strict-independence annotation:@.";
  List.iter
    (fun (name, arity) ->
      List.iter
        (fun c ->
          let t = Clause.to_term c in
          if Clause.has_par c.Clause.body then
            Format.printf "  PARALLELISED:  %a@." Ace_term.Pp.pp t)
        (Database.clauses_of annotated name arity))
    (Database.predicates annotated);
  Format.printf "@.";
  let query =
    Program.parse_query (Printf.sprintf "analyze(%s, R)" (tree 7))
  in
  let seq =
    Engine.solve Engine.Sequential Config.default (Program.db program)
      query.Program.goal
  in
  let par agents =
    Engine.solve Engine.And_parallel
      (Config.all_optimizations ~agents ())
      annotated query.Program.goal
  in
  Format.printf "sequential:            %8d cycles@." seq.Engine.time;
  List.iter
    (fun agents ->
      let r = par agents in
      Format.printf "and-parallel (P = %d): %8d cycles  (speedup %.2fx, %d solutions)@."
        agents r.Engine.time
        (float_of_int (par 1).Engine.time /. float_of_int r.Engine.time)
        (List.length r.Engine.solutions))
    [ 1; 2; 4; 8 ]
