(* Or-parallel n-queens: sweep workers with and without the Last
   Alternative Optimization, showing the paper's Table 3 effect on a
   single workload.

     dune exec examples/nqueens_or.exe          # 6 queens
     dune exec examples/nqueens_or.exe -- 7
*)

module Config = Ace_machine.Config
module Engine = Ace_core.Engine
module Stats = Ace_machine.Stats
module Programs = Ace_benchmarks.Programs

let () =
  let n = if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 6 in
  let b = Programs.find "queen2" in
  let program = b.Programs.program n and query = b.Programs.query n in
  Format.printf "n-queens (incremental placement), board size %d@." n;
  Format.printf "%4s %12s %12s %9s %16s %14s@." "P" "time(unopt)" "time(LAO)"
    "gain" "cp alloc (u/o)" "scans (u/o)";
  let count = ref 0 in
  List.iter
    (fun agents ->
      let run lao =
        Engine.solve_program Engine.Or_parallel
          { Config.default with agents; lao }
          ~program ~query
      in
      let unopt = run false and opt = run true in
      count := List.length unopt.Engine.solutions;
      Format.printf "%4d %12d %12d %8.1f%% %10d/%-6d %8d/%-6d@." agents
        unopt.Engine.time opt.Engine.time
        (100.0
        *. float_of_int (unopt.Engine.time - opt.Engine.time)
        /. float_of_int unopt.Engine.time)
        unopt.Engine.stats.Stats.cp_allocs opt.Engine.stats.Stats.cp_allocs
        unopt.Engine.stats.Stats.or_scans opt.Engine.stats.Stats.or_scans)
    [ 1; 2; 4; 8; 10 ];
  Format.printf "(%d solutions at every configuration)@." !count
