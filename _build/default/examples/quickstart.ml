(* Quickstart: consult a small program and run the same query on all three
   engines.

     dune exec examples/quickstart.exe
*)

module Config = Ace_machine.Config
module Engine = Ace_core.Engine

let program =
  {|
% A tiny route planner.  Parallel conjunctions ('&') mark independent
% subgoals, exactly as in the paper's ACE system.
edge(amsterdam, berlin, 650).   edge(berlin, prague, 350).
edge(amsterdam, brussels, 210). edge(brussels, paris, 310).
edge(paris, lyon, 470).         edge(prague, vienna, 330).
edge(berlin, vienna, 680).      edge(lyon, geneva, 150).

route(A, B, [A, B], D) :- edge(A, B, D).
route(A, C, [A|Rest], D) :- edge(A, B, D1), route(B, C, Rest, D2), D is D1 + D2.

% independent work over a list of queries, run in and-parallel
cost_pair(A, B, D) :- route(A, B, _, D).
survey(D1, D2) :- cost_pair(amsterdam, vienna, D1) & cost_pair(amsterdam, geneva, D2).
|}

let show name (result : Engine.result) =
  Format.printf "--- %s ---@." name;
  List.iter
    (fun s -> Format.printf "  %a@." Ace_term.Pp.pp s)
    result.Engine.solutions;
  Format.printf "  (%d solutions, %d simulated cycles)@.@."
    (List.length result.Engine.solutions)
    result.Engine.time

let () =
  (* 1. All routes Amsterdam -> Vienna, sequential engine. *)
  show "sequential: route(amsterdam, vienna, Path, D)"
    (Engine.solve_program Engine.Sequential Config.default ~program
       ~query:"route(amsterdam, vienna, Path, D)");
  (* 2. The same search explored by 4 or-parallel workers. *)
  show "or-parallel (4 workers): route(amsterdam, vienna, Path, D)"
    (Engine.solve_program Engine.Or_parallel
       { Config.default with agents = 4; lao = true }
       ~program ~query:"route(amsterdam, vienna, Path, D)");
  (* 3. Two independent surveys in and-parallel with all optimizations. *)
  show "and-parallel (2 agents, all optimizations): survey(D1, D2)"
    (Engine.solve_program Engine.And_parallel
       (Config.all_optimizations ~agents:2 ())
       ~program ~query:"survey(D1, D2)")
