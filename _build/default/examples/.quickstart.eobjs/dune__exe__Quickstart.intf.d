examples/quickstart.mli:
