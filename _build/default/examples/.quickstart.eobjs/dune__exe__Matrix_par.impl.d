examples/matrix_par.ml: Ace_benchmarks Ace_core Ace_machine Array Format List Printf Sys
