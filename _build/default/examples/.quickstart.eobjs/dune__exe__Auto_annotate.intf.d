examples/auto_annotate.mli:
