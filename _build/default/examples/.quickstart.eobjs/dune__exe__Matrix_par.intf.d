examples/matrix_par.mli:
