examples/nqueens_or.ml: Ace_benchmarks Ace_core Ace_machine Array Format List Sys
