examples/nqueens_or.mli:
