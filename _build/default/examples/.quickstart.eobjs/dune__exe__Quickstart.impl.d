examples/quickstart.ml: Ace_core Ace_machine Ace_term Format List
