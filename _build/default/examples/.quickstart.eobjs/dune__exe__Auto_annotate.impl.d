examples/auto_annotate.ml: Ace_analysis Ace_core Ace_lang Ace_machine Ace_term Format List Printf
