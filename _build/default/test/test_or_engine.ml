(* Or-parallel engine: solution multisets against the sequential engine,
   MUSE-style stealing, and the LAO invariants. *)

module Config = Ace_machine.Config
module Engine = Ace_core.Engine
module Stats = Ace_machine.Stats
open Test_util

let search_lib =
  {|
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).
pair(X, Y) :- member(X, [1,2,3,4]), member(Y, [a,b,c]).
perm([], []).
perm(L, [H|T]) :- sel(H, L, R), perm(R, T).
constrained(X, Y) :- member(X, [1,2,3,4,5]), member(Y, [1,2,3,4,5]), X + Y =:= 6.
nosol(X) :- member(X, [1,2,3]), X > 10.
deep(0).
deep(N) :- N > 0, member(_, [a,b]), N1 is N - 1, deep(N1).
|}

let or_queries =
  [ "member(X, [1,2,3,4,5,6,7,8])";
    "pair(X, Y)";
    "perm([1,2,3], P)";
    "constrained(X, Y)";
    "nosol(X)";
    "deep(4)" ]

let test_agrees_with_sequential () =
  List.iter
    (fun query ->
      let reference = solutions search_lib query in
      List.iter
        (fun (agents, lao) ->
          let config = { Config.default with agents; lao } in
          let got = solutions ~config ~kind:Engine.Or_parallel search_lib query in
          check_same_solutions
            (Printf.sprintf "%s (P=%d lao=%b)" query agents lao)
            reference got)
        [ (1, false); (1, true); (2, false); (3, true); (6, true); (6, false) ])
    or_queries

let test_single_worker_order_matches () =
  (* with one worker, exploration order is exactly sequential *)
  List.iter
    (fun query ->
      Alcotest.(check (list string)) ("order " ^ query)
        (solutions search_lib query)
        (solutions ~config:{ Config.default with agents = 1 }
           ~kind:Engine.Or_parallel search_lib query))
    or_queries

let run query config =
  Engine.solve_program Engine.Or_parallel config ~program:search_lib ~query

let test_lao_reuses_nodes () =
  let unopt = run "member(X, [1,2,3,4,5,6,7,8])" { Config.default with agents = 1 } in
  let opt =
    run "member(X, [1,2,3,4,5,6,7,8])" { Config.default with agents = 1; lao = true }
  in
  Alcotest.(check bool) "allocations collapse" true
    (opt.Engine.stats.Stats.cp_allocs < unopt.Engine.stats.Stats.cp_allocs);
  Alcotest.(check int) "single node with LAO" 1 opt.Engine.stats.Stats.cp_allocs;
  Alcotest.(check bool) "updates counted" true
    (opt.Engine.stats.Stats.cp_updates > 0);
  (* the MUSE characteristic: LAO is NOT a win at one worker *)
  Alcotest.(check bool) "no 1-worker speedup" true
    (opt.Engine.time >= unopt.Engine.time)

let test_lao_helps_sharing () =
  let q = "constrained(X, Y)" in
  let unopt = run q { Config.default with agents = 6 } in
  let opt = run q { Config.default with agents = 6; lao = true } in
  Alcotest.(check bool) "fewer scan visits" true
    (opt.Engine.stats.Stats.or_scans <= unopt.Engine.stats.Stats.or_scans);
  check_same_solutions "same answers"
    (List.map Ace_term.Pp.to_string unopt.Engine.solutions)
    (List.map Ace_term.Pp.to_string opt.Engine.solutions)

let test_stealing_happens () =
  let r = run "perm([1,2,3,4], P)" { Config.default with agents = 4 } in
  Alcotest.(check bool) "steals recorded" true (r.Engine.stats.Stats.steals > 0);
  Alcotest.(check bool) "copies recorded" true (r.Engine.stats.Stats.copies > 0);
  Alcotest.(check bool) "copied cells counted" true
    (r.Engine.stats.Stats.copied_cells > 0);
  Alcotest.(check int) "all 24 permutations" 24 (List.length r.Engine.solutions)

let test_parallel_speedup () =
  let q = "perm([1,2,3,4,5], P)" in
  let t1 = (run q { Config.default with agents = 1 }).Engine.time in
  let t8 = (run q { Config.default with agents = 8 }).Engine.time in
  Alcotest.(check bool) "or-parallel speedup" true
    (float_of_int t1 /. float_of_int t8 > 2.0)

let test_max_solutions () =
  let config = { Config.default with agents = 3; max_solutions = Some 5 } in
  let r = run "pair(X, Y)" config in
  Alcotest.(check int) "stops at limit" 5 (List.length r.Engine.solutions)

let test_empty_search () =
  let r = run "nosol(X)" { Config.default with agents = 4 } in
  Alcotest.(check int) "terminates with none" 0 (List.length r.Engine.solutions)

let test_deterministic_repeatable () =
  let config = { Config.default with agents = 5 } in
  let r1 = run "pair(X, Y)" config and r2 = run "pair(X, Y)" config in
  Alcotest.(check int) "same time" r1.Engine.time r2.Engine.time;
  Alcotest.(check (list string)) "same discovery order"
    (List.map Ace_term.Pp.to_string r1.Engine.solutions)
    (List.map Ace_term.Pp.to_string r2.Engine.solutions)

(* property: counting solutions of random constrained pair searches *)
let prop_counts_match =
  qcheck ~count:40 "or-engine counts match sequential"
    QCheck2.Gen.(
      triple
        (list_size (int_range 0 6) (int_range 0 9))
        (list_size (int_range 0 6) (int_range 0 9))
        (int_range 1 6))
    (fun (xs, ys, agents) ->
      let query =
        Printf.sprintf "member(X, [0%s]), member(Y, [0%s]), X + Y =:= 7"
          (String.concat "" (List.map (Printf.sprintf ",%d") xs))
          (String.concat "" (List.map (Printf.sprintf ",%d") ys))
      in
      let reference = solutions search_lib query in
      let got =
        solutions ~config:{ Config.default with agents; lao = true }
          ~kind:Engine.Or_parallel search_lib query
      in
      List.length reference = List.length got)

let suite =
  [ Alcotest.test_case "agrees with sequential" `Quick test_agrees_with_sequential;
    Alcotest.test_case "1-worker order" `Quick test_single_worker_order_matches;
    Alcotest.test_case "LAO reuses nodes" `Quick test_lao_reuses_nodes;
    Alcotest.test_case "LAO helps sharing" `Quick test_lao_helps_sharing;
    Alcotest.test_case "stealing happens" `Quick test_stealing_happens;
    Alcotest.test_case "or-parallel speedup" `Quick test_parallel_speedup;
    Alcotest.test_case "max_solutions" `Quick test_max_solutions;
    Alcotest.test_case "empty search terminates" `Quick test_empty_search;
    Alcotest.test_case "deterministic" `Quick test_deterministic_repeatable;
    prop_counts_match ]
