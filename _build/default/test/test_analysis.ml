(* Determinacy and independence analyses. *)

module Term = Ace_term.Term
module Clause = Ace_lang.Clause
module Program = Ace_lang.Program
module Determinacy = Ace_analysis.Determinacy
module Independence = Ace_analysis.Independence
open Test_util

let det_program =
  {|
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
len([], 0).
len([_|T], N) :- len(T, M), N is M + 1.
calls_member(L, X) :- member(X, L).
double([], []).
double([H|T], [H2|T2]) :- H2 is H * 2, double(T, T2).
mutual_a([], x).
mutual_a([_|T], R) :- mutual_b(T, R).
mutual_b([], y).
mutual_b([_|T], R) :- mutual_a(T, R).
|}

let test_determinacy () =
  let p = Program.consult_string det_program in
  let det = Determinacy.analyze (Program.db p) in
  let is_det name arity = Determinacy.is_determinate det name arity in
  Alcotest.(check bool) "app det" true (is_det "app" 3);
  Alcotest.(check bool) "len det" true (is_det "len" 2);
  Alcotest.(check bool) "double det" true (is_det "double" 2);
  Alcotest.(check bool) "member nondet" false (is_det "member" 2);
  Alcotest.(check bool) "caller of nondet is nondet" false
    (is_det "calls_member" 2);
  Alcotest.(check bool) "mutual recursion det" true
    (is_det "mutual_a" 2 && is_det "mutual_b" 2)

(* Soundness against the runtime: analysis-determinate predicates never
   allocate a choice point when run. *)
let test_determinacy_sound () =
  let p = Program.consult_string det_program in
  let db = Program.db p in
  let det = Determinacy.analyze db in
  Alcotest.(check bool) "det analysis nonempty" true
    (Determinacy.to_list det <> []);
  let q = Program.parse_query "app([1,2,3], [4], R), len(R, N), double(R, D)" in
  let _, m = Ace_core.Seq_engine.solve db q.Program.goal in
  Alcotest.(check int) "no choice points at runtime" 0
    (Ace_core.Seq_engine.stats m).Ace_machine.Stats.cp_allocs

let test_mode_parsing () =
  let modes = Independence.no_modes () in
  Alcotest.(check bool) "mode directive accepted" true
    (Independence.add_mode_directive modes (term "mode(f(+, -, ?))"));
  Alcotest.(check bool) "non-mode rejected" false
    (Independence.add_mode_directive modes (term "dynamic(g/2)"))

let test_groundness_propagation () =
  let modes =
    Independence.modes_of_directives [ term "mode(p(+, -))" ]
  in
  let x = Term.fresh_var () and y = Term.fresh_var () in
  let ground0 = Independence.Var_set.of_list [ x.Term.vid ] in
  (* after p(X, Y) with mode p(+,-) and X ground, Y is ground *)
  let after =
    Independence.grounded_after modes ground0
      (Term.app "p" [ Term.Var x; Term.Var y ])
  in
  Alcotest.(check bool) "output grounded" true
    (Independence.Var_set.mem y.Term.vid after);
  (* is/2 grounds its left side when the right is ground *)
  let z = Term.fresh_var () in
  let after2 =
    Independence.grounded_after modes after
      (Term.app "is" [ Term.Var z; Term.app "+" [ Term.Var x; Term.int 1 ] ])
  in
  Alcotest.(check bool) "is grounds lhs" true
    (Independence.Var_set.mem z.Term.vid after2)

let test_annotation () =
  let program =
    Program.consult_string
      {|
:- mode(work(+, -)).
:- mode(combine(+, +, -)).
p(X, Y, R) :- work(X, A), work(Y, B), combine(A, B, R).
q(X, R) :- work(X, A), work(A, B), combine(A, B, R).
|}
  in
  let db = Independence.annotate_program program in
  let body name =
    match Ace_lang.Database.clauses_of db name 3 @ Ace_lang.Database.clauses_of db name 2 with
    | [ c ] -> c.Clause.body
    | _ -> Alcotest.fail "expected one clause"
  in
  (* p: work(X,A) and work(Y,B) share nothing -> parallelised *)
  (match body "p" with
   | [ Clause.Par [ _; _ ]; Clause.Call _ ] -> ()
   | items ->
     Alcotest.failf "p not annotated as expected: %s"
       (Ace_term.Pp.to_string (Clause.term_of_body items)));
  (* q: the second work consumes A from the first -> stays sequential *)
  match body "q" with
  | [ Clause.Call _; Clause.Call _; Clause.Call _ ] -> ()
  | items ->
    Alcotest.failf "q should stay sequential: %s"
      (Ace_term.Pp.to_string (Clause.term_of_body items))

(* Annotated programs must still compute the same solutions on the
   and-parallel engine. *)
let test_annotation_preserves_semantics () =
  let source =
    {|
:- mode(sq(+, -)).
:- mode(cube(+, -)).
sq(X, Y) :- Y is X * X.
cube(X, Y) :- Y is X * X * X.
both(X, S, C) :- sq(X, S), cube(X, C).
main([], []).
main([X|Xs], [r(S, C)|Rs]) :- both(X, S, C), main(Xs, Rs).
|}
  in
  let program = Program.consult_string source in
  let annotated = Independence.annotate_program program in
  let q = Program.parse_query "main([1,2,3,4], R)" in
  let seq = Ace_core.Engine.solve Ace_core.Engine.Sequential Config.default
      (Program.db program) q.Program.goal in
  let par =
    Ace_core.Engine.solve Ace_core.Engine.And_parallel
      { Config.default with agents = 3 } annotated q.Program.goal
  in
  check_same_solutions "annotated program agrees"
    (List.map Ace_term.Pp.to_string seq.Ace_core.Engine.solutions)
    (List.map Ace_term.Pp.to_string par.Ace_core.Engine.solutions)

(* The hand annotations of every and-parallel benchmark pass the
   independence checker. *)
let test_benchmark_annotations_valid () =
  List.iter
    (fun (b : Ace_benchmarks.Programs.t) ->
      if b.Ace_benchmarks.Programs.kind = Ace_core.Engine.And_parallel then begin
        let source = b.Ace_benchmarks.Programs.program b.Ace_benchmarks.Programs.small_size in
        let program = Program.consult_string source in
        let modes =
          Independence.modes_of_directives (Program.directives program)
        in
        let db = Program.db program in
        List.iter
          (fun (name, arity) ->
            List.iter
              (fun clause ->
                Alcotest.(check bool)
                  (Printf.sprintf "%s: %s/%d annotation valid"
                     b.Ace_benchmarks.Programs.name name arity)
                  true
                  (Independence.check_annotation modes
                     ~head_ground:(Independence.head_ground_of modes clause.Clause.head)
                     clause.Clause.body))
              (Ace_lang.Database.clauses_of db name arity))
          (Ace_lang.Database.predicates db)
      end)
    Ace_benchmarks.Programs.all

let suite =
  [ Alcotest.test_case "determinacy analysis" `Quick test_determinacy;
    Alcotest.test_case "determinacy soundness" `Quick test_determinacy_sound;
    Alcotest.test_case "mode parsing" `Quick test_mode_parsing;
    Alcotest.test_case "groundness propagation" `Quick test_groundness_propagation;
    Alcotest.test_case "annotation" `Quick test_annotation;
    Alcotest.test_case "annotation preserves semantics" `Quick
      test_annotation_preserves_semantics;
    Alcotest.test_case "benchmark annotations valid" `Quick
      test_benchmark_annotations_valid ]
