(* Benchmark registry: every benchmark parses, runs, and agrees across
   engines and optimization sets at its test size. *)

module Config = Ace_machine.Config
module Engine = Ace_core.Engine
module Programs = Ace_benchmarks.Programs
module Gen = Ace_benchmarks.Gen
open Test_util

let test_registry () =
  Alcotest.(check bool) "all benchmarks present" true
    (List.for_all
       (fun name -> List.mem name Programs.names)
       [ "map2"; "occur"; "matrix"; "matrix_bt"; "pderiv"; "pderiv_bt"; "map1";
         "annotator"; "takeuchi"; "hanoi"; "bt_cluster"; "quick_sort";
         "queen1"; "queen2"; "puzzle"; "ancestors"; "members"; "maps" ]);
  Alcotest.(check bool) "find raises on unknown" true
    (match Programs.find "nonexistent" with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_sources_parse () =
  List.iter
    (fun (b : Programs.t) ->
      let source = b.Programs.program b.Programs.small_size in
      let p = Ace_lang.Program.consult_string source in
      Alcotest.(check bool)
        (b.Programs.name ^ " has clauses")
        true
        (Ace_lang.Database.total_clauses (Ace_lang.Program.db p) > 0);
      let q = Ace_lang.Program.parse_query (b.Programs.query b.Programs.small_size) in
      Alcotest.(check bool) (b.Programs.name ^ " query callable") true
        (Ace_term.Term.functor_of q.Ace_lang.Program.goal <> None))
    Programs.all

(* The central correctness experiment: each benchmark computes the same
   solution multiset on its parallel engine (several agent counts and
   optimization sets) as on the sequential engine. *)
let test_engines_agree () =
  List.iter
    (fun (b : Programs.t) ->
      let n = b.Programs.small_size in
      let program = b.Programs.program n and query = b.Programs.query n in
      let reference = solutions program query in
      Alcotest.(check bool)
        (b.Programs.name ^ " produces solutions or legitimately none")
        true
        (reference <> [] || List.mem b.Programs.name [ "members" ]);
      List.iter
        (fun config ->
          let got = solutions ~config ~kind:b.Programs.kind program query in
          check_same_solutions
            (Printf.sprintf "%s %s" b.Programs.name
               (Format.asprintf "%a" Config.pp config))
            reference got)
        [ { Config.default with agents = 1 };
          { Config.default with agents = 3 };
          Config.all_optimizations ~agents:1 ();
          Config.all_optimizations ~agents:4 () ])
    Programs.all

let test_expected_answer_counts () =
  let count name =
    let b = Programs.find name in
    let n = b.Programs.small_size in
    List.length (solutions (b.Programs.program n) (b.Programs.query n))
  in
  Alcotest.(check int) "queen1(4) has 2 solutions" 2 (count "queen1");
  Alcotest.(check int) "queen2(4) has 2 solutions" 2 (count "queen2");
  Alcotest.(check int) "magic square has 8 solutions" 8 (count "puzzle");
  (* ancestry of depth 4: every node except the root is a descendant *)
  Alcotest.(check int) "ancestors(4)" 30 (count "ancestors");
  Alcotest.(check int) "map2 determinate" 1 (count "map2");
  Alcotest.(check int) "quick_sort determinate" 1 (count "quick_sort")

let test_quick_sort_really_sorts () =
  let b = Programs.find "quick_sort" in
  let xs = Gen.int_list ~seed:83 ~n:12 ~bound:10000 in
  let program = b.Programs.program 12 in
  let query = b.Programs.query 12 in
  match solutions program query with
  | [ s ] ->
    let sorted = Gen.pp_int_list (List.sort compare xs) in
    Alcotest.(check string) "sorted output"
      (Printf.sprintf "qsort(%s,%s)" (Gen.pp_int_list xs) sorted)
      s
  | other -> Alcotest.failf "expected one solution, got %d" (List.length other)

let test_workload_generators () =
  Alcotest.(check int) "int_list length" 10
    (List.length (Gen.int_list ~seed:1 ~n:10 ~bound:5));
  Alcotest.(check bool) "int_list bounds" true
    (List.for_all (fun x -> x >= 0 && x < 5) (Gen.int_list ~seed:1 ~n:100 ~bound:5));
  let m = Gen.matrix ~seed:2 ~n:4 ~bound:10 in
  Alcotest.(check int) "matrix rows" 4 (List.length m);
  Alcotest.(check bool) "matrix square" true
    (List.for_all (fun r -> List.length r = 4) m);
  let t = Gen.transpose m in
  Alcotest.(check (list (list int))) "transpose involutive" m
    (Gen.transpose t);
  Alcotest.(check string) "peano" "s(s(s(0)))" (Gen.peano 3);
  (* expression generator emits parseable terms of bounded size *)
  let e = Gen.expression ~seed:3 ~size:20 in
  let t = Ace_lang.Parser.term_of_string (e ^ " .") in
  Alcotest.(check bool) "expression parses" true (Ace_term.Term.size t > 1)

let test_derivative_matches_prolog () =
  let b = Programs.find "pderiv" in
  let e = Gen.expression ~seed:5 ~size:12 in
  let program = b.Programs.program 0 in
  match solutions program (Printf.sprintf "d(%s, D)" e) with
  | [ s ] ->
    let expected = Printf.sprintf "d(%s,%s)" e (Gen.derivative e) in
    Alcotest.(check string) "OCaml mirror of d/2 agrees" expected s
  | other -> Alcotest.failf "expected one derivative, got %d" (List.length other)

(* property: occurrence counts from the occur benchmark match OCaml *)
let prop_occur_counts =
  let b = Programs.find "occur" in
  let program = b.Programs.program 0 in
  qcheck ~count:30 "occ counts match reference"
    QCheck2.Gen.(pair (list_size (int_range 0 10) (int_range 0 5)) (int_range 0 5))
    (fun (xs, k) ->
      let expected = List.length (List.filter (fun x -> x = k) xs) in
      match
        solutions program
          (Printf.sprintf "occ(%s, %d, N), N =:= %d" (Gen.pp_int_list xs) k expected)
      with
      | [ _ ] -> true
      | _ -> false)

let suite =
  [ Alcotest.test_case "registry" `Quick test_registry;
    Alcotest.test_case "sources parse" `Quick test_sources_parse;
    Alcotest.test_case "engines agree on all benchmarks" `Slow test_engines_agree;
    Alcotest.test_case "expected answer counts" `Quick test_expected_answer_counts;
    Alcotest.test_case "quick_sort sorts" `Quick test_quick_sort_really_sorts;
    Alcotest.test_case "workload generators" `Quick test_workload_generators;
    Alcotest.test_case "derivative mirror" `Quick test_derivative_matches_prolog;
    prop_occur_counts ]
