(* Builtin predicate tests, driven through the sequential engine so the
   full call path (charging, trail bookkeeping) is exercised. *)

open Test_util

let one program query = solutions program query

let succeeds query = List.length (one "" query) = 1
let fails query = one "" query = []

let test_unification_builtins () =
  Alcotest.(check bool) "=" true (succeeds "X = f(1), X = f(1)");
  Alcotest.(check bool) "= fail" true (fails "f(1) = f(2)");
  Alcotest.(check bool) "\\= pos" true (succeeds "f(1) \\= f(2)");
  Alcotest.(check bool) "\\= neg" true (fails "X \\= 1");
  Alcotest.(check bool) "==" true (succeeds "f(X, X) == f(X, X)");
  Alcotest.(check bool) "== distinct vars" true (fails "X == Y");
  Alcotest.(check bool) "\\==" true (succeeds "X \\== Y")

let test_arithmetic () =
  Alcotest.(check (list string)) "is" [ "14 is 2 + 3 * 4, 14 =:= 14" ]
    [ List.hd (one "" "X is 2 + 3 * 4, X =:= 14") ];
  Alcotest.(check bool) "integer division" true (succeeds "7 // 2 =:= 3");
  Alcotest.(check bool) "mod sign follows divisor" true
    (succeeds "-7 mod 3 =:= 2");
  Alcotest.(check bool) "rem sign follows dividend" true
    (succeeds "-7 rem 3 =:= -1");
  Alcotest.(check bool) "min max abs" true
    (succeeds "X is min(3, max(1, 2)) + abs(-4), X =:= 6");
  Alcotest.(check bool) "power" true (succeeds "2 ^ 10 =:= 1024");
  Alcotest.(check bool) "gcd" true (succeeds "gcd(12, 18) =:= 6");
  Alcotest.(check bool) "comparisons" true
    (succeeds "1 < 2, 2 =< 2, 3 > 2, 3 >= 3, 1 =\\= 2");
  let raises query =
    match one "" query with
    | exception Ace_term.Arith.Error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "unbound in is" true (raises "X is Y + 1");
  Alcotest.(check bool) "division by zero" true (raises "X is 1 // 0");
  Alcotest.(check bool) "non-integral /" true (raises "X is 7 / 2")

let test_type_checks () =
  Alcotest.(check bool) "var" true (succeeds "var(X)");
  Alcotest.(check bool) "nonvar" true (succeeds "nonvar(f(X))");
  Alcotest.(check bool) "atom" true (succeeds "atom(foo), \\+ atom(f(1)), \\+ atom(1)");
  Alcotest.(check bool) "integer" true (succeeds "integer(3)");
  Alcotest.(check bool) "atomic" true (succeeds "atomic(a), atomic(1), \\+ atomic(f(1))");
  Alcotest.(check bool) "compound" true (succeeds "compound(f(1)), \\+ compound(a)");
  Alcotest.(check bool) "is_list" true (succeeds "is_list([1,2]), \\+ is_list([1|_])");
  Alcotest.(check bool) "ground" true (succeeds "ground(f(1)), \\+ ground(f(X))")

let test_term_inspection () =
  Alcotest.(check bool) "functor decompose" true
    (succeeds "functor(f(a, b), f, 2)");
  Alcotest.(check bool) "functor construct" true
    (succeeds "functor(T, g, 3), T = g(_, _, _)");
  Alcotest.(check bool) "functor of atom" true (succeeds "functor(foo, foo, 0)");
  Alcotest.(check bool) "arg" true (succeeds "arg(2, f(a, b, c), b)");
  Alcotest.(check bool) "arg out of range" true (fails "arg(4, f(a, b, c), _)");
  Alcotest.(check bool) "univ decompose" true
    (succeeds "f(1, 2) =.. [f, 1, 2]");
  Alcotest.(check bool) "univ construct" true
    (succeeds "T =.. [h, x], T = h(x)");
  Alcotest.(check bool) "compare order" true
    (succeeds "compare(<, 1, a), compare(=, f(1), f(1)), compare(>, b, a)");
  Alcotest.(check bool) "standard order builtins" true
    (succeeds "1 @< a, f(1) @> a, a @=< a, b @>= a")

let test_write () =
  let buf = Buffer.create 64 in
  let p = Ace_lang.Program.consult_string "" in
  let q = Ace_lang.Program.parse_query "write(f(X, [1,2])), nl" in
  let _ =
    Ace_core.Seq_engine.solve ~output:buf (Ace_lang.Program.db p)
      q.Ace_lang.Program.goal
  in
  Alcotest.(check string) "write output" "f(_G" (String.sub (Buffer.contents buf) 0 4)

let test_existence_error () =
  Alcotest.(check bool) "undefined predicate raises" true
    (match one "" "no_such_thing(1)" with
     | exception Ace_core.Errors.Engine_error _ -> true
     | _ -> false)

let suite =
  [ Alcotest.test_case "unification builtins" `Quick test_unification_builtins;
    Alcotest.test_case "arithmetic" `Quick test_arithmetic;
    Alcotest.test_case "type checks" `Quick test_type_checks;
    Alcotest.test_case "term inspection" `Quick test_term_inspection;
    Alcotest.test_case "write" `Quick test_write;
    Alcotest.test_case "existence error" `Quick test_existence_error ]
