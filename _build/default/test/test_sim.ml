(* Simulator substrate: heap, rng, discrete-event scheduler. *)

module Heap = Ace_sched.Heap
module Rng = Ace_sched.Rng
module Sim = Ace_sched.Sim
open Test_util

let test_heap_order () =
  let h = Heap.create () in
  List.iter (fun (p, v) -> Heap.push h p v) [ (5, "e"); (1, "a"); (3, "c"); (2, "b") ];
  let popped = List.init 4 (fun _ -> Option.get (Heap.pop h)) in
  Alcotest.(check (list (pair int string))) "min-heap order"
    [ (1, "a"); (2, "b"); (3, "c"); (5, "e") ]
    popped;
  Alcotest.(check bool) "empty" true (Heap.pop h = None)

let test_heap_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h 7 v) [ "first"; "second"; "third" ];
  let popped = List.init 3 (fun _ -> snd (Option.get (Heap.pop h))) in
  Alcotest.(check (list string)) "insertion order on ties"
    [ "first"; "second"; "third" ] popped

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys;
  let c = Rng.create 43 in
  let zs = List.init 50 (fun _ -> Rng.int c 1000) in
  Alcotest.(check bool) "different seed differs" true (xs <> zs)

let test_rng_bounds () =
  let rng = Rng.create 7 in
  let xs = Rng.int_list rng ~n:2000 ~bound:17 in
  Alcotest.(check bool) "all within [0, bound)" true
    (List.for_all (fun x -> x >= 0 && x < 17) xs)

let test_rng_shuffle () =
  let rng = Rng.create 9 in
  let xs = List.init 20 (fun i -> i) in
  let ys = Rng.shuffle rng xs in
  Alcotest.(check (list int)) "permutation" xs (List.sort compare ys)

let test_sim_single_agent () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.spawn sim ~agent:0 (fun () ->
      log := "a" :: !log;
      Sim.tick 10;
      log := "b" :: !log;
      Sim.tick 5;
      log := "c" :: !log);
  Sim.run sim;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "final time" 15 (Sim.now sim)

let test_sim_interleaving () =
  (* the smallest clock always runs next: agent 1's cheap steps interleave
     between agent 0's expensive ones deterministically *)
  let sim = Sim.create () in
  let log = ref [] in
  let emit tag = log := tag :: !log in
  Sim.spawn sim ~agent:0 (fun () ->
      emit "A0";
      Sim.tick 10;
      emit "A1";
      Sim.tick 10;
      emit "A2");
  Sim.spawn sim ~agent:1 (fun () ->
      emit "B0";
      Sim.tick 4;
      emit "B1";
      Sim.tick 4;
      emit "B2";
      Sim.tick 20;
      emit "B3");
  Sim.run sim;
  Alcotest.(check (list string)) "deterministic interleaving"
    [ "A0"; "B0"; "B1"; "B2"; "A1"; "A2"; "B3" ]
    (List.rev !log)

let test_sim_stop () =
  let sim = Sim.create () in
  let after_stop = ref false in
  Sim.spawn sim ~agent:0 (fun () ->
      Sim.tick 3;
      Sim.stop sim);
  Sim.spawn sim ~agent:1 (fun () ->
      Sim.tick 100;
      after_stop := true);
  Sim.run sim;
  Alcotest.(check bool) "late agent abandoned" false !after_stop;
  Alcotest.(check int) "stop time" 3 (Sim.stop_time sim)

let test_sim_shared_state () =
  (* agents communicate through shared refs; single-threaded determinism
     makes the final count exact *)
  let sim = Sim.create () in
  let counter = ref 0 in
  for agent = 0 to 3 do
    Sim.spawn sim ~agent (fun () ->
        for _ = 1 to 25 do
          incr counter;
          Sim.tick 1
        done)
  done;
  Sim.run sim;
  Alcotest.(check int) "all increments" 100 !counter

let test_sim_max_steps_guard () =
  let sim = Sim.create ~max_steps:100 () in
  Sim.spawn sim ~agent:0 (fun () ->
      while true do
        Sim.tick 1
      done);
  Alcotest.(check bool) "livelock detected" true
    (match Sim.run sim with exception Failure _ -> true | () -> false)

let prop_heap_sorts =
  qcheck ~count:100 "heap pops sorted"
    QCheck2.Gen.(list_size (int_range 0 40) (int_range 0 1000))
    (fun xs ->
      let h = Heap.create () in
      List.iter (fun x -> Heap.push h x x) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      drain [] = List.sort compare xs)

let suite =
  [ Alcotest.test_case "heap order" `Quick test_heap_order;
    Alcotest.test_case "heap FIFO ties" `Quick test_heap_fifo_ties;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle;
    Alcotest.test_case "single agent" `Quick test_sim_single_agent;
    Alcotest.test_case "interleaving" `Quick test_sim_interleaving;
    Alcotest.test_case "stop" `Quick test_sim_stop;
    Alcotest.test_case "shared state" `Quick test_sim_shared_state;
    Alcotest.test_case "max_steps guard" `Quick test_sim_max_steps_guard;
    prop_heap_sorts ]
