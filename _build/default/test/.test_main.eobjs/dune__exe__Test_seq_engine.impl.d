test/test_seq_engine.ml: Ace_benchmarks Ace_core Ace_lang Ace_machine Alcotest List Printf QCheck2 Test_util
