test/test_sim.ml: Ace_sched Alcotest List Option QCheck2 Test_util
