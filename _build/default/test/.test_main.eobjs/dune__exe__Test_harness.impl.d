test/test_harness.ml: Ace_harness Ace_machine Alcotest List String
