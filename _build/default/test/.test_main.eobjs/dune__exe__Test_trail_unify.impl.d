test/test_trail_unify.ml: Ace_term Alcotest Array List QCheck2 String Test_util
