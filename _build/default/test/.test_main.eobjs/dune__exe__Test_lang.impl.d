test/test_lang.ml: Ace_lang Ace_term Alcotest List Option String Test_util
