test/test_benchmarks.ml: Ace_benchmarks Ace_core Ace_lang Ace_machine Ace_term Alcotest Format List Printf QCheck2 Test_util
