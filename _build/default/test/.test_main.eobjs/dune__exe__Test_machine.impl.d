test/test_machine.ml: Ace_core Ace_machine Ace_term Alcotest Format List Test_util
