test/test_term.ml: Ace_term Alcotest Hashtbl List QCheck2 Test_util
