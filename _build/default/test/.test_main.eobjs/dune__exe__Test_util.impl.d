test/test_util.ml: Ace_core Ace_lang Ace_machine Ace_term Alcotest Array List QCheck2 QCheck_alcotest String
