test/test_and_engine.ml: Ace_benchmarks Ace_core Ace_machine Ace_term Alcotest Format List Printf QCheck2 Test_util
