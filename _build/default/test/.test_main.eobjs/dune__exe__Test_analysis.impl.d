test/test_analysis.ml: Ace_analysis Ace_benchmarks Ace_core Ace_lang Ace_machine Ace_term Alcotest Config List Printf Test_util
