test/test_builtins.ml: Ace_core Ace_lang Ace_term Alcotest Buffer List String Test_util
