test/test_or_engine.ml: Ace_core Ace_machine Ace_term Alcotest List Printf QCheck2 String Test_util
