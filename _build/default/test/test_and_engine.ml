(* And-parallel engine: semantics against the sequential engine, plus the
   structural invariants of LPCO, SPO and PDO. *)

module Config = Ace_machine.Config
module Engine = Ace_core.Engine
module Stats = Ace_machine.Stats
open Test_util

let programs_with_queries =
  (* (program, query) pairs covering determinate work, local
     nondeterminism, cross products, inside failure and outside
     backtracking *)
  let base =
    {|
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
double(X, Y) :- Y is X * 2.
pmap([], []).
pmap([H|T], [H2|T2]) :- double(H, H2) & pmap(T, T2).
pair(X, Y) :- member(X, [1,2,3]) & member(Y, [a,b]).
tree(leaf).
sumt(leaf, 0).
sumt(node(L, V, R), S) :- sumt(L, SL) & sumt(R, SR), S is SL + SR + V.
badmap([], []).
badmap([H|T], [H2|T2]) :- bad(H, H2) & badmap(T, T2).
bad(X, Y) :- X < 3, Y is X * 10.
gen_test(L, X, Y) :- member(X, L), pair(A, B), Y = r(A, B, X).
|}
  in
  [ (base, "pmap([1,2,3,4,5], R)");
    (base, "pair(X, Y)");
    (base, "sumt(node(node(leaf,1,leaf),2,node(leaf,3,node(leaf,4,leaf))), S)");
    (base, "badmap([1,2], R)");
    (base, "badmap([1,2,5,1], R)"); (* inside failure: 5 fails the map *)
    (base, "member(X, [1,2]), pair(A, B)");
    (base, "pmap([1,2], R), member(X, R)");
    (base, "pair(X, Y), X > 1, Y = b") ]

let configs =
  [ { Config.default with agents = 1 };
    { Config.default with agents = 2 };
    { Config.default with agents = 4 };
    { Config.default with agents = 3; lpco = true };
    { Config.default with agents = 3; spo = true };
    { Config.default with agents = 3; pdo = true };
    Config.all_optimizations ~agents:5 () ]

let test_agrees_with_sequential () =
  List.iter
    (fun (program, query) ->
      let reference = solutions program query in
      List.iter
        (fun config ->
          let got = solutions ~config ~kind:Engine.And_parallel program query in
          check_same_solutions
            (Printf.sprintf "%s [%s]" query
               (Format.asprintf "%a" Config.pp config))
            reference got)
        configs)
    programs_with_queries

let test_deterministic_repeatable () =
  let program, query = List.nth programs_with_queries 1 in
  let config = { Config.default with agents = 4 } in
  let run () =
    let r = Engine.solve_program Engine.And_parallel config ~program ~query in
    (r.Engine.time, List.map Ace_term.Pp.to_string r.Engine.solutions)
  in
  let t1, s1 = run () and t2, s2 = run () in
  Alcotest.(check int) "same simulated time" t1 t2;
  Alcotest.(check (list string)) "same solutions in same order" s1 s2

let run_bench ?(config = Config.default) name size =
  let b = Ace_benchmarks.Programs.find name in
  Engine.solve_program Engine.And_parallel config ~program:(b.Ace_benchmarks.Programs.program size)
    ~query:(b.Ace_benchmarks.Programs.query size)

let test_lpco_flattens () =
  let unopt = run_bench ~config:{ Config.default with agents = 2 } "map2" 10 in
  let opt =
    run_bench ~config:{ Config.default with agents = 2; lpco = true } "map2" 10
  in
  Alcotest.(check bool) "frames collapse" true
    (opt.Engine.stats.Stats.frames < unopt.Engine.stats.Stats.frames);
  Alcotest.(check int) "one frame with LPCO" 1 opt.Engine.stats.Stats.frames;
  Alcotest.(check bool) "nesting depth 1 with LPCO" true
    (opt.Engine.stats.Stats.max_frame_nesting = 1);
  Alcotest.(check bool) "nesting deep without" true
    (unopt.Engine.stats.Stats.max_frame_nesting > 5);
  Alcotest.(check bool) "lpco hits counted" true
    (opt.Engine.stats.Stats.lpco_hits > 0);
  Alcotest.(check bool) "stack words reduced" true
    (opt.Engine.stats.Stats.stack_words < unopt.Engine.stats.Stats.stack_words)

let test_spo_avoids_markers () =
  let config = { Config.default with agents = 3 } in
  let unopt = run_bench ~config "matrix" 4 in
  let opt = run_bench ~config:{ config with spo = true } "matrix" 4 in
  let markers r =
    r.Engine.stats.Stats.input_markers + r.Engine.stats.Stats.end_markers
  in
  Alcotest.(check bool) "markers reduced" true (markers opt < markers unopt);
  Alcotest.(check bool) "spo hits counted" true
    (opt.Engine.stats.Stats.spo_hits > 0);
  Alcotest.(check bool) "not slower" true (opt.Engine.time <= unopt.Engine.time)

let test_pdo_contiguity () =
  (* at one agent every next slot is sequentially contiguous, so PDO
     should fire throughout *)
  let config = { Config.default with agents = 1 } in
  let unopt = run_bench ~config "quick_sort" 24 in
  let opt = run_bench ~config:{ config with pdo = true } "quick_sort" 24 in
  Alcotest.(check bool) "pdo hits at P=1" true
    (opt.Engine.stats.Stats.pdo_hits > 0);
  Alcotest.(check bool) "markers avoided" true
    (opt.Engine.stats.Stats.markers_avoided > 0);
  Alcotest.(check bool) "faster" true (opt.Engine.time < unopt.Engine.time)

let test_parallel_speedup () =
  let t1 = (run_bench "map2" 64).Engine.time in
  let t4 =
    (run_bench ~config:{ Config.default with agents = 4 } "map2" 64).Engine.time
  in
  Alcotest.(check bool) "speedup at 4 agents" true
    (float_of_int t1 /. float_of_int t4 > 1.5)

let test_inside_failure_kills () =
  let program =
    {|
ok(X, Y) :- Y is X + 1.
reject(3, _) :- fail.
reject(X, Y) :- X =\= 3, Y is X.
pm([], []).
pm([H|T], [V|Vs]) :- reject(H, V) & pm(T, Vs).
|}
  in
  let config = { Config.default with agents = 4 } in
  let r =
    Engine.solve_program Engine.And_parallel config ~program
      ~query:"pm([1,2,3,4,5,6], R)"
  in
  Alcotest.(check int) "no solutions" 0 (List.length r.Engine.solutions);
  let seq = solutions program "pm([1,2,3,4,5,6], R)" in
  Alcotest.(check int) "sequential agrees" 0 (List.length seq)

let test_max_solutions () =
  let program = "member(X, [X|_]).\nmember(X, [_|T]) :- member(X, T).\np(X, Y) :- member(X, [1,2,3]) & member(Y, [a,b,c])." in
  let config = { Config.default with agents = 2; max_solutions = Some 4 } in
  let r = Engine.solve_program Engine.And_parallel config ~program ~query:"p(X, Y)" in
  Alcotest.(check int) "stops at limit" 4 (List.length r.Engine.solutions)

let test_stats_sanity () =
  let r = run_bench ~config:{ Config.default with agents = 3 } "hanoi" 6 in
  let s = r.Engine.stats in
  Alcotest.(check bool) "slots >= frames" true (s.Stats.slots >= s.Stats.frames);
  Alcotest.(check bool) "some steals at 3 agents" true (s.Stats.steals > 0);
  Alcotest.(check bool) "trail balanced at completion" true
    (s.Stats.untrails <= s.Stats.trail_pushes);
  Alcotest.(check bool) "positive simulated time" true (r.Engine.time > 0)

let test_granularity_control () =
  (* on a list recursion the size estimate shrinks down the tree: the top
     forks, the fine-grained bottom runs sequentially *)
  let config = { Config.default with agents = 1 } in
  let plain = run_bench ~config "quick_sort" 60 in
  let gc = run_bench ~config:{ config with seq_threshold = 30 } "quick_sort" 60 in
  Alcotest.(check bool) "sequentialized parcalls counted" true
    (gc.Engine.stats.Stats.seq_hits > 0);
  Alcotest.(check bool) "fewer frames" true
    (gc.Engine.stats.Stats.frames < plain.Engine.stats.Stats.frames);
  Alcotest.(check bool) "but not zero frames" true (gc.Engine.stats.Stats.frames > 0);
  Alcotest.(check bool) "faster at one agent" true (gc.Engine.time < plain.Engine.time);
  check_same_solutions "solutions unchanged"
    (List.map Ace_term.Pp.to_string plain.Engine.solutions)
    (List.map Ace_term.Pp.to_string gc.Engine.solutions);
  (* parallelism is preserved at the top of the tree *)
  let gc4 =
    run_bench ~config:{ Config.default with agents = 4; seq_threshold = 30 }
      "quick_sort" 60
  in
  Alcotest.(check bool) "still parallel" true (gc4.Engine.time < gc.Engine.time);
  (* integer-parameterized recursion (tak) has constant-size goals: the
     structural estimate cannot see depth, so the whole computation is
     sequentialized — documented limitation of size-based granularity
     control *)
  let tak_gc =
    run_bench ~config:{ config with seq_threshold = 24 } "takeuchi" 8
  in
  Alcotest.(check int) "tak fully sequentialized" 0 tak_gc.Engine.stats.Stats.frames

let test_unsupported_control () =
  let raises query =
    match
      Engine.solve_program Engine.And_parallel Config.default ~program:"" ~query
    with
    | exception Ace_core.Errors.Engine_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "cut rejected" true (raises "!");
  Alcotest.(check bool) "negation rejected" true (raises "\\+ fail");
  Alcotest.(check bool) "if-then-else rejected" true (raises "(true -> a = a ; a = b)")

(* property: and-engine and sequential engine agree on quicksort of random
   lists under every optimization set *)
let prop_qsort_agrees =
  let b = Ace_benchmarks.Programs.find "quick_sort" in
  let program = b.Ace_benchmarks.Programs.program 0 in
  qcheck ~count:40 "quicksort agrees across engines"
    QCheck2.Gen.(
      pair
        (list_size (int_range 0 12) (int_range 0 99))
        (int_range 1 6))
    (fun (xs, agents) ->
      let query =
        Printf.sprintf "qsort(%s, S)" (Ace_benchmarks.Gen.pp_int_list xs)
      in
      let reference = solutions program query in
      let opt =
        solutions
          ~config:(Config.all_optimizations ~agents ())
          ~kind:Engine.And_parallel program query
      in
      sorted_strings reference = sorted_strings opt)

let suite =
  [ Alcotest.test_case "agrees with sequential" `Quick test_agrees_with_sequential;
    Alcotest.test_case "deterministic and repeatable" `Quick
      test_deterministic_repeatable;
    Alcotest.test_case "LPCO flattens frames" `Quick test_lpco_flattens;
    Alcotest.test_case "SPO avoids markers" `Quick test_spo_avoids_markers;
    Alcotest.test_case "PDO contiguity" `Quick test_pdo_contiguity;
    Alcotest.test_case "parallel speedup" `Quick test_parallel_speedup;
    Alcotest.test_case "inside failure kills parcall" `Quick
      test_inside_failure_kills;
    Alcotest.test_case "max_solutions" `Quick test_max_solutions;
    Alcotest.test_case "stats sanity" `Quick test_stats_sanity;
    Alcotest.test_case "granularity control" `Quick test_granularity_control;
    Alcotest.test_case "unsupported control rejected" `Quick
      test_unsupported_control;
    prop_qsort_agrees ]
