(* Sequential engine: standard Prolog semantics. *)

module Config = Ace_machine.Config
module Engine = Ace_core.Engine
open Test_util

let lists =
  {|
app([], L, L).
app([H|T], L, [H|R]) :- app(T, L, R).
member(X, [X|_]).
member(X, [_|T]) :- member(X, T).
nrev([], []).
nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
|}

let test_append_modes () =
  Alcotest.(check (list string)) "forward" [ "app([1,2],[3],[1,2,3])" ]
    (solutions lists "app([1,2], [3], R)");
  Alcotest.(check int) "backward enumerates splits" 4
    (List.length (solutions lists "app(X, Y, [1,2,3])"));
  Alcotest.(check (list string)) "first split"
    [ "app([],[1,2,3],[1,2,3])" ]
    [ List.hd (solutions lists "app(X, Y, [1,2,3])") ]

let test_member_order () =
  Alcotest.(check (list string)) "solution order"
    [ "member(1,[1,2,3])"; "member(2,[1,2,3])"; "member(3,[1,2,3])" ]
    (solutions lists "member(X, [1,2,3])")

let test_nrev () =
  Alcotest.(check (list string)) "nrev"
    [ "nrev([1,2,3,4],[4,3,2,1])" ]
    (solutions lists "nrev([1,2,3,4], R)")

let test_conjunction_backtracking () =
  Alcotest.(check int) "cross product" 6
    (List.length (solutions lists "member(X, [1,2]), member(Y, [a,b,c])"));
  Alcotest.(check (list string)) "constrained"
    [ "member(2,[1,2,3]), 2 > 1" ]
    [ List.hd (solutions lists "member(X, [1,2,3]), X > 1") ]

let test_cut () =
  let program = lists ^ "first(X, L) :- member(X, L), !.\nonce_p(X) :- member(X, [a,b]), !." in
  Alcotest.(check int) "cut prunes" 1
    (List.length (solutions program "first(X, [5,6,7])"));
  Alcotest.(check (list string)) "cut keeps first" [ "once_p(a)" ]
    (solutions program "once_p(X)");
  (* cut is local to the clause *)
  let program2 = lists ^ "p(X) :- q(X).\nq(X) :- member(X, [1,2]), !.\nq(9)." in
  Alcotest.(check (list string)) "cut in callee doesn't cut caller"
    [ "p(1)" ]
    (solutions program2 "p(X)")

let test_negation () =
  Alcotest.(check int) "\\+ succeeds" 1
    (List.length (solutions lists "\\+ member(9, [1,2,3])"));
  Alcotest.(check int) "\\+ fails" 0
    (List.length (solutions lists "\\+ member(2, [1,2,3])"));
  (* bindings made inside \+ are undone *)
  Alcotest.(check (list string)) "no bindings leak"
    [ "\\+ (2 = 1, fail), 2 = 2" ]
    (solutions "" "\\+ (X = 1, fail), X = 2")

let test_if_then_else () =
  Alcotest.(check (list string)) "then branch" [ "1 < 2 -> a = a ; a = b" ]
    (solutions "" "(1 < 2 -> a = a ; a = b)");
  Alcotest.(check int) "else branch" 1
    (List.length (solutions "" "(2 < 1 -> fail ; true)"));
  (* the condition is committed to its first solution *)
  Alcotest.(check int) "condition commits" 1
    (List.length (solutions lists "(member(X, [1,2,3]) -> X = 1 ; true)"));
  Alcotest.(check int) "bare if-then fails without else" 0
    (List.length (solutions "" "(fail -> true)"))

let test_disjunction () =
  Alcotest.(check int) "both branches" 2
    (List.length (solutions "" "(X = 1 ; X = 2)"));
  Alcotest.(check (list string)) "order"
    [ "1 = 1 ; 1 = 2"; "2 = 1 ; 2 = 2" ]
    (solutions "" "(X = 1 ; X = 2)")

let test_call () =
  Alcotest.(check int) "call/1" 2
    (List.length (solutions lists "call(member(X, [1,2]))"))

let test_par_runs_sequentially () =
  Alcotest.(check int) "& as conjunction" 4
    (List.length (solutions lists "member(X, [1,2]) & member(Y, [a,b])"))

let test_limit_and_generator () =
  let p = Ace_lang.Program.consult_string lists in
  let q = Ace_lang.Program.parse_query "member(X, [1,2,3,4,5])" in
  let m = Ace_core.Seq_engine.create (Ace_lang.Program.db p) q.Ace_lang.Program.goal in
  Alcotest.(check bool) "first" true (Ace_core.Seq_engine.next m <> None);
  Alcotest.(check bool) "second" true (Ace_core.Seq_engine.next m <> None);
  let rest = Ace_core.Seq_engine.all_solutions m in
  Alcotest.(check int) "remaining three" 3 (List.length rest);
  Alcotest.(check bool) "exhausted" true (Ace_core.Seq_engine.next m = None)

let test_time_monotone () =
  let p = Ace_lang.Program.consult_string lists in
  let run n =
    let q =
      Ace_lang.Program.parse_query
        (Printf.sprintf "nrev(%s, R)"
           (Ace_benchmarks.Gen.pp_int_list (List.init n (fun i -> i))))
    in
    let _, m = Ace_core.Seq_engine.solve (Ace_lang.Program.db p) q.Ace_lang.Program.goal in
    Ace_core.Seq_engine.time m
  in
  Alcotest.(check bool) "bigger input costs more" true (run 16 > run 8)

(* property: engine agrees with a reference OCaml implementation of
   append splits *)
let prop_append_splits =
  qcheck ~count:60 "append enumerates exactly the splits"
    QCheck2.Gen.(list_size (int_range 0 6) (int_range 0 9))
    (fun xs ->
      let q =
        Printf.sprintf "app(X, Y, %s)" (Ace_benchmarks.Gen.pp_int_list xs)
      in
      List.length (solutions lists q) = List.length xs + 1)

let suite =
  [ Alcotest.test_case "append modes" `Quick test_append_modes;
    Alcotest.test_case "member order" `Quick test_member_order;
    Alcotest.test_case "nrev" `Quick test_nrev;
    Alcotest.test_case "conjunction backtracking" `Quick test_conjunction_backtracking;
    Alcotest.test_case "cut" `Quick test_cut;
    Alcotest.test_case "negation" `Quick test_negation;
    Alcotest.test_case "if-then-else" `Quick test_if_then_else;
    Alcotest.test_case "disjunction" `Quick test_disjunction;
    Alcotest.test_case "call/1" `Quick test_call;
    Alcotest.test_case "'&' sequential semantics" `Quick test_par_runs_sequentially;
    Alcotest.test_case "solution generator" `Quick test_limit_and_generator;
    Alcotest.test_case "time monotonicity" `Quick test_time_monotone;
    prop_append_splits ]
