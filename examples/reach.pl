% Tabled reachability over a cyclic graph.
%
% The left-recursive path/2 below would loop forever under plain SLD
% resolution; under :- table it terminates with the exact reachable
% set, on every engine:
%
%   ace_run examples/reach.pl 'path(a, X)'
%   ace_run --engine par --agents 4 examples/reach.pl 'path(X, Y)'
%
% Expected: path(a, X) has 6 answers (every node is reachable from a,
% including a itself through the a-b-c cycle).

:- table(path/2).

edge(a, b).
edge(b, c).
edge(c, a).
edge(c, d).
edge(d, e).
edge(a, f).

path(X, Y) :- edge(X, Y).
path(X, Y) :- path(X, Z), edge(Z, Y).
