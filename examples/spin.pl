% An infinitely backtracking goal with no solutions: spin/0 never
% terminates on its own.  Demonstrates cooperative cancellation —
% `ace_run --deadline 100 examples/spin.pl spin` (exit 124), the wire
% deadline_ms field of ace_serve, and server drain on SIGTERM.

gen(z).
gen(s(N)) :- gen(N).

spin :- gen(N), never(N).
never(none).
