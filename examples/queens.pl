% n-queens by incremental placement with pruning (the paper's queen2
% benchmark).  Query e.g.:  queens([1,2,3,4,5,6], Qs)
%
% Used by the CI trace smoke test:
%   ace_run --engine par --agents 4 --trace /tmp/t.json examples/queens.pl 'queens([1,2,3,4,5,6], Qs)'

sel(X, [X|T], T).
sel(X, [H|T], [H|R]) :- sel(X, T, R).

noatt(_, [], _).
noatt(Q, [Q2|Qs], D) :- Q2 =\= Q + D, Q2 =\= Q - D, D1 is D + 1, noatt(Q, Qs, D1).

place([], Placed, Placed).
place(Un, Placed, Qs) :- sel(Q, Un, Rest), noatt(Q, Placed, 1), place(Rest, [Q|Placed], Qs).

queens(Ns, Qs) :- place(Ns, [], Qs).
