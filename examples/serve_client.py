#!/usr/bin/env python3
"""Minimal ace_serve client: line-delimited JSON over a Unix or TCP socket.

Usage:
    serve_client.py /tmp/ace.sock 'path(a, X)' ['goal2' ...]
    serve_client.py localhost:7071 'path(a, X)'

Each goal is sent as one query (ids 1, 2, ...); one response line is
printed per query, verbatim.  A goal may carry a deadline by prefixing
it with 'N@', e.g. '200@spin' sends {"deadline_ms": 200}.  Exits
non-zero if any query comes back with ok=false or the connection drops.
"""

import json
import socket
import sys


def connect(target):
    if ":" in target and not target.startswith("/"):
        host, port = target.rsplit(":", 1)
        return socket.create_connection((host, int(port)))
    s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
    s.connect(target)
    return s


def main():
    if len(sys.argv) < 3:
        print(__doc__, file=sys.stderr)
        return 2
    target, goals = sys.argv[1], sys.argv[2:]
    f = connect(target).makefile("rw", encoding="utf-8", newline="\n")
    ok = True
    for i, goal in enumerate(goals, 1):
        req = {"op": "query", "id": i, "goal": goal}
        if "@" in goal and goal.split("@", 1)[0].isdigit():
            ms, req["goal"] = goal.split("@", 1)
            req["deadline_ms"] = int(ms)
        f.write(json.dumps(req) + "\n")
        f.flush()
        line = f.readline()
        if not line:
            print(json.dumps({"ok": False, "error": "connection closed"}))
            return 1
        print(line, end="")
        if not json.loads(line).get("ok"):
            ok = False
    try:
        f.write(json.dumps({"op": "quit"}) + "\n")
        f.flush()
    except OSError:
        pass
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
