(* Cancellation tokens, session overlays, and cancelled runs.

   Covers the run-lifecycle refactor: the Cancel primitive itself, the
   thread-safety of Database.freeze, assert/retract session overlays
   over a frozen base, and cooperative aborts on all four engines —
   including deterministic poll-budget aborts (the chaos story: a fixed
   budget replays the same abort site) and answer-table consistency
   across a cancelled tabled run. *)

module Cancel = Ace_core.Cancel
module Chaos = Ace_sched.Chaos
module Clause = Ace_lang.Clause
module Config = Ace_machine.Config
module Database = Ace_lang.Database
module Engine = Ace_core.Engine
module Program = Ace_lang.Program
module Table = Ace_lang.Table
open Test_util

(* Infinite backtracking, zero solutions: only a fired token ends it. *)
let spin =
  "gen(z). gen(s(N)) :- gen(N). spin :- gen(N), never(N). never(none)."

let chain n =
  let b = Buffer.create 1024 in
  for i = 0 to n - 2 do
    Printf.bprintf b "edge(n%d, n%d).\n" i (i + 1)
  done;
  Buffer.add_string b "path(X, Y) :- edge(X, Y).\n";
  Buffer.add_string b "path(X, Y) :- edge(X, Z), path(Z, Y).\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* The token                                                           *)
(* ------------------------------------------------------------------ *)

let reason = Alcotest.testable
    (Fmt.of_to_string (function
       | Some r -> Cancel.reason_to_string r
       | None -> "none"))
    ( = )

let test_token_none () =
  Alcotest.(check bool) "never fires" false (Cancel.poll Cancel.none);
  Cancel.cancel Cancel.none;
  Alcotest.(check bool) "cancel ignored" false (Cancel.poll Cancel.none);
  Alcotest.check reason "no reason" None (Cancel.fired Cancel.none)

let test_token_request () =
  let t = Cancel.create () in
  Alcotest.(check bool) "fresh" false (Cancel.poll t);
  Alcotest.check reason "unfired" None (Cancel.fired t);
  Cancel.cancel t;
  Alcotest.(check bool) "fires" true (Cancel.poll t);
  Alcotest.check reason "requested" (Some Cancel.Requested) (Cancel.fired t)

let test_token_deadline () =
  let t = Cancel.create ~deadline_ms:15 () in
  Alcotest.(check bool) "before the deadline" false (Cancel.poll t);
  Unix.sleepf 0.03;
  (* the clock check is decimated: poll enough times to cross a stride *)
  let fired = ref false in
  for _ = 1 to 64 do
    if Cancel.poll t then fired := true
  done;
  Alcotest.(check bool) "after the deadline" true !fired;
  Alcotest.check reason "deadline" (Some Cancel.Deadline) (Cancel.fired t)

let test_token_budget () =
  let t = Cancel.at_polls 5 in
  let polls = ref 0 in
  while not (Cancel.poll t) && !polls < 100 do
    incr polls
  done;
  Alcotest.(check int) "fires on the n-th poll" 4 !polls;
  Alcotest.check reason "budget" (Some Cancel.Budget) (Cancel.fired t)

let test_token_first_reason_wins () =
  let t = Cancel.create () in
  Cancel.cancel t;
  Cancel.cancel t;
  Alcotest.check reason "still requested" (Some Cancel.Requested)
    (Cancel.fired t);
  let b = Cancel.at_polls 1 in
  ignore (Cancel.poll b);
  Cancel.cancel b;
  Alcotest.check reason "budget won" (Some Cancel.Budget) (Cancel.fired b)

let test_check_raises () =
  let t = Cancel.create () in
  Cancel.check t;
  Cancel.cancel t;
  Alcotest.check_raises "check raises" Cancel.Cancelled (fun () ->
      Cancel.check t)

(* ------------------------------------------------------------------ *)
(* Freeze thread-safety and overlays                                   *)
(* ------------------------------------------------------------------ *)

let test_freeze_race () =
  (* regression: concurrent freezes of one database must build the
     dispatch cache exactly once and never expose a half-built one *)
  for _ = 1 to 10 do
    let db = Program.db (Program.consult_string "p(1). p(2). q(X) :- p(X).") in
    let domains =
      Array.init 4 (fun _ -> Domain.spawn (fun () -> Database.freeze db))
    in
    Array.iter Domain.join domains;
    Database.freeze db;
    let r =
      Engine.solve Engine.Sequential
        { Config.default with Config.compile = true }
        db (term "q(X)")
    in
    Alcotest.(check int) "solutions after racy freeze" 2
      (List.length r.Engine.solutions)
  done

let session_solutions p sdb query =
  let r = Engine.run ~session:sdb Engine.Sequential Config.default p query in
  List.map Ace_term.Pp.to_string r.Engine.solutions

let test_overlay_semantics () =
  let p = Engine.prepare_string "p(1). p(2)." in
  let s1 = Engine.session p and s2 = Engine.session p in
  Database.assertz s1 (Clause.of_term (term "p(3)"));
  Database.asserta s1 (Clause.of_term (term "p(0)"));
  Alcotest.(check (list string)) "asserta front, assertz back"
    [ "p(0)"; "p(1)"; "p(2)"; "p(3)" ]
    (session_solutions p s1 (term "p(X)"));
  Alcotest.(check (list string)) "other session isolated" [ "p(1)"; "p(2)" ]
    (session_solutions p s2 (term "p(X)"))

let test_overlay_retract () =
  let p = Engine.prepare_string "p(1). p(2)." in
  let s1 = Engine.session p and s2 = Engine.session p in
  Alcotest.(check bool) "retract shadows a base clause" true
    (Database.retract s1 (Clause.of_term (term "p(1)")));
  Alcotest.(check (list string)) "shadowed" [ "p(2)" ]
    (session_solutions p s1 (term "p(X)"));
  Alcotest.(check (list string)) "base untouched" [ "p(1)"; "p(2)" ]
    (session_solutions p s2 (term "p(X)"));
  let r = Engine.run Engine.Sequential Config.default p (term "p(X)") in
  Alcotest.(check int) "shared base direct" 2 (List.length r.Engine.solutions);
  Alcotest.(check bool) "retract misses" false
    (Database.retract s1 (Clause.of_term (term "p(9)")))

(* ------------------------------------------------------------------ *)
(* Cancelled runs                                                      *)
(* ------------------------------------------------------------------ *)

let engines =
  [ (Engine.Sequential, 1); (Engine.And_parallel, 2);
    (Engine.Or_parallel, 2); (Engine.Par_or, 2) ]

let test_deadline_all_engines () =
  List.iter
    (fun (kind, agents) ->
      let name = Engine.kind_to_string kind in
      let config =
        { (Config.all_optimizations ~agents ()) with Config.compile = true }
      in
      let cancel = Cancel.create ~deadline_ms:50 () in
      let t0 = Unix.gettimeofday () in
      let r =
        Engine.solve_program ~cancel kind config ~program:spin ~query:"spin"
      in
      let ms = (Unix.gettimeofday () -. t0) *. 1e3 in
      Alcotest.check reason (name ^ " cancelled") (Some Cancel.Deadline)
        r.Engine.cancelled;
      Alcotest.(check int) (name ^ " no solutions") 0
        (List.length r.Engine.solutions);
      (* bounded interval after the deadline: generous for loaded CI *)
      Alcotest.(check bool) (name ^ " stops promptly") true (ms < 5000.0))
    engines

let test_budget_partial_and_deterministic () =
  let program = chain 30 and query = "path(n0, X)" in
  let full =
    Ace_check.Canon.multiset
      (Engine.solve_program Engine.Sequential Config.default ~program ~query)
        .Engine.solutions
  in
  List.iter
    (fun (kind, agents) ->
      let name = Engine.kind_to_string kind in
      let config =
        { (Config.all_optimizations ~agents ()) with Config.compile = true }
      in
      let run () =
        Engine.solve_program ~cancel:(Cancel.at_polls 60) kind config ~program
          ~query
      in
      let r1 = run () in
      Alcotest.check reason (name ^ " budget fired") (Some Cancel.Budget)
        r1.Engine.cancelled;
      let part = Ace_check.Canon.multiset r1.Engine.solutions in
      Alcotest.(check bool) (name ^ " proper partial") true
        (List.length part < List.length full);
      (* every recorded solution was complete when recorded *)
      List.iter
        (fun s ->
          Alcotest.(check bool) (name ^ " partial within full") true
            (List.mem s full))
        part;
      (* the deterministic engines replay the same abort site *)
      if kind <> Engine.Par_or then begin
        let r2 = run () in
        Alcotest.(check (list string)) (name ^ " deterministic abort")
          (List.map Ace_term.Pp.to_string r1.Engine.solutions)
          (List.map Ace_term.Pp.to_string r2.Engine.solutions)
      end)
    engines

let test_budget_deterministic_under_chaos () =
  (* fixed chaos seed + fixed poll budget => identical partial run *)
  let program = chain 30 and query = "path(n0, X)" in
  let config =
    { (Config.all_optimizations ~agents:2 ()) with Config.compile = true }
  in
  List.iter
    (fun kind ->
      let run () =
        Engine.solve_program ~chaos:(Chaos.make ~seed:7 ())
          ~cancel:(Cancel.at_polls 60) kind config ~program ~query
      in
      let r1 = run () and r2 = run () in
      Alcotest.check reason
        (Engine.kind_to_string kind ^ " chaos budget fired")
        (Some Cancel.Budget) r1.Engine.cancelled;
      Alcotest.(check (list string))
        (Engine.kind_to_string kind ^ " chaos deterministic")
        (List.map Ace_term.Pp.to_string r1.Engine.solutions)
        (List.map Ace_term.Pp.to_string r2.Engine.solutions))
    [ Engine.And_parallel; Engine.Or_parallel ]

let tabled_chain =
  ":- table(path/2).\n" ^ chain 25

let test_cancelled_table_consistent () =
  (* a budget abort mid-evaluation leaves the shared table reusable: a
     second run over the same table completes and the answer set is the
     full one (publication is monotone; incomplete entries re-evaluate) *)
  let program = tabled_chain and query = "path(n0, X)" in
  let full =
    Ace_check.Canon.multiset
      (Engine.solve_program Engine.Sequential Config.default ~program ~query)
        .Engine.solutions
  in
  let table = Table.create () in
  let r1 =
    Engine.solve_program ~table ~cancel:(Cancel.at_polls 40) Engine.Sequential
      Config.default ~program ~query
  in
  Alcotest.check reason "tabled run aborted" (Some Cancel.Budget)
    r1.Engine.cancelled;
  List.iter
    (fun e ->
      if Table.is_complete e then
        Alcotest.(check bool) "complete entries keep their answers" true
          (Table.answer_count e > 0))
    (Table.entries table);
  let r2 =
    Engine.solve_program ~table Engine.Sequential Config.default ~program
      ~query
  in
  Alcotest.check reason "second run completes" None r2.Engine.cancelled;
  Alcotest.(check (list string)) "full answers from the reused table" full
    (Ace_check.Canon.multiset r2.Engine.solutions)

let test_par_cancel_no_leak () =
  (* a cancelled par run must join all its domains: three back-to-back
     cancelled runs complete (leaked domains would accumulate or hang) *)
  let config =
    { (Config.all_optimizations ~agents:2 ()) with Config.compile = true }
  in
  for _ = 1 to 3 do
    let r =
      Engine.solve_program
        ~cancel:(Cancel.create ~deadline_ms:30 ())
        Engine.Par_or config ~program:spin ~query:"spin"
    in
    Alcotest.(check bool) "cancelled" true (r.Engine.cancelled <> None)
  done

let test_requested_cancel_from_thread () =
  (* cancel fired from another thread mid-run: the seq engine aborts *)
  let cancel = Cancel.create () in
  let th =
    Thread.create
      (fun () ->
        Unix.sleepf 0.03;
        Cancel.cancel cancel)
      ()
  in
  let r =
    Engine.solve_program ~cancel Engine.Sequential Config.default
      ~program:spin ~query:"spin"
  in
  Thread.join th;
  Alcotest.check reason "requested" (Some Cancel.Requested) r.Engine.cancelled

let suite =
  [
    Alcotest.test_case "token: none" `Quick test_token_none;
    Alcotest.test_case "token: request" `Quick test_token_request;
    Alcotest.test_case "token: deadline" `Quick test_token_deadline;
    Alcotest.test_case "token: poll budget" `Quick test_token_budget;
    Alcotest.test_case "token: first reason wins" `Quick
      test_token_first_reason_wins;
    Alcotest.test_case "token: check raises" `Quick test_check_raises;
    Alcotest.test_case "freeze: concurrent freezes" `Quick test_freeze_race;
    Alcotest.test_case "overlay: assert ordering + isolation" `Quick
      test_overlay_semantics;
    Alcotest.test_case "overlay: retract shadows base" `Quick
      test_overlay_retract;
    Alcotest.test_case "cancel: deadline on all engines" `Quick
      test_deadline_all_engines;
    Alcotest.test_case "cancel: budget partial + deterministic" `Quick
      test_budget_partial_and_deterministic;
    Alcotest.test_case "cancel: deterministic under chaos" `Quick
      test_budget_deterministic_under_chaos;
    Alcotest.test_case "cancel: table consistent across abort" `Quick
      test_cancelled_table_consistent;
    Alcotest.test_case "cancel: par run joins its domains" `Quick
      test_par_cancel_no_leak;
    Alcotest.test_case "cancel: requested from another thread" `Quick
      test_requested_cancel_from_thread;
  ]
