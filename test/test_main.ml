(* Aggregated test runner for the whole repository. *)

let () =
  Alcotest.run "ace"
    [ ("symbol", Test_symbol.suite);
      ("term", Test_term.suite);
      ("trail-unify", Test_trail_unify.suite);
      ("lang", Test_lang.suite);
      ("machine", Test_machine.suite);
      ("obs", Test_obs.suite);
      ("prof", Test_prof.suite);
      ("builtins", Test_builtins.suite);
      ("kernel", Test_kernel.suite);
      ("code", Test_code.suite);
      ("seq-engine", Test_seq_engine.suite);
      ("sim", Test_sim.suite);
      ("and-engine", Test_and_engine.suite);
      ("or-engine", Test_or_engine.suite);
      ("deque", Test_deque.suite);
      ("par-or-engine", Test_par_or_engine.suite);
      ("errors", Test_errors.suite);
      ("cancel", Test_cancel.suite);
      ("serve", Test_serve.suite);
      ("check", Test_check.suite);
      ("table", Test_table.suite);
      ("analysis", Test_analysis.suite);
      ("benchmarks", Test_benchmarks.suite);
      ("harness", Test_harness.suite) ]
