(* Work-stealing deque: LIFO/FIFO discipline, ring growth, and a
   two-domain stress run checking that no item is lost or duplicated. *)

module Deque = Ace_sched.Deque

let drain_bottom d =
  let rec go acc =
    match Deque.pop_bottom d with Some v -> go (v :: acc) | None -> List.rev acc
  in
  go []

let test_owner_lifo () =
  let d = Deque.create () in
  Alcotest.(check bool) "fresh deque empty" true (Deque.is_empty d);
  Alcotest.(check (option int)) "pop on empty" None (Deque.pop_bottom d);
  List.iter (Deque.push_bottom d) [ 1; 2; 3 ];
  Alcotest.(check int) "length" 3 (Deque.length d);
  Alcotest.(check (option int)) "newest first" (Some 3) (Deque.pop_bottom d);
  Alcotest.(check (option int)) "then middle" (Some 2) (Deque.pop_bottom d);
  Alcotest.(check (option int)) "then oldest" (Some 1) (Deque.pop_bottom d);
  Alcotest.(check (option int)) "now empty" None (Deque.pop_bottom d)

let test_thief_fifo () =
  let d = Deque.create () in
  Alcotest.(check (option int)) "steal on empty" None (Deque.steal_top d);
  List.iter (Deque.push_bottom d) [ 1; 2; 3 ];
  Alcotest.(check (option int)) "oldest first" (Some 1) (Deque.steal_top d);
  Alcotest.(check (option int)) "then next" (Some 2) (Deque.steal_top d);
  Alcotest.(check (option int)) "then newest" (Some 3) (Deque.steal_top d);
  Alcotest.(check (option int)) "now empty" None (Deque.steal_top d)

let test_mixed_ends () =
  (* owner and thief interleaved: the two ends stay consistent *)
  let d = Deque.create () in
  List.iter (Deque.push_bottom d) [ 1; 2; 3; 4 ];
  Alcotest.(check (option int)) "steal oldest" (Some 1) (Deque.steal_top d);
  Alcotest.(check (option int)) "pop newest" (Some 4) (Deque.pop_bottom d);
  Deque.push_bottom d 5;
  Alcotest.(check (option int)) "steal next oldest" (Some 2) (Deque.steal_top d);
  Alcotest.(check (list int)) "remainder pops newest-first" [ 5; 3 ]
    (drain_bottom d)

let test_growth () =
  (* push far beyond the initial capacity; nothing is lost or reordered *)
  let d = Deque.create ~capacity:4 () in
  let n = 1000 in
  for i = 1 to n do
    Deque.push_bottom d i
  done;
  Alcotest.(check int) "all present" n (Deque.length d);
  Alcotest.(check (list int)) "FIFO order across growth"
    (List.init n (fun i -> i + 1))
    (let rec go acc =
       match Deque.steal_top d with Some v -> go (v :: acc) | None -> List.rev acc
     in
     go [])

let test_concurrent_no_loss_no_dup () =
  (* One owner pushing/popping at the bottom while a thief domain steals
     from the top: every pushed item must be seen exactly once. *)
  let n = 20_000 in
  let d = Deque.create () in
  let stop = Atomic.make false in
  let thief =
    Domain.spawn (fun () ->
        let got = ref [] in
        while not (Atomic.get stop) do
          match Deque.steal_top d with
          | Some v -> got := v :: !got
          | None -> Domain.cpu_relax ()
        done;
        let rec drain () =
          match Deque.steal_top d with
          | Some v ->
            got := v :: !got;
            drain ()
          | None -> ()
        in
        drain ();
        !got)
  in
  let owner_got = ref [] in
  for i = 1 to n do
    Deque.push_bottom d i;
    if i mod 3 = 0 then
      match Deque.pop_bottom d with
      | Some v -> owner_got := v :: !owner_got
      | None -> ()
  done;
  Atomic.set stop true;
  let thief_got = Domain.join thief in
  let all = drain_bottom d @ !owner_got @ thief_got in
  Alcotest.(check int) "every item seen exactly once" n (List.length all);
  Alcotest.(check (list int)) "no loss, no duplication"
    (List.init n (fun i -> i + 1))
    (List.sort compare all)

let suite =
  [ Alcotest.test_case "owner end is LIFO" `Quick test_owner_lifo;
    Alcotest.test_case "thief end is FIFO" `Quick test_thief_fifo;
    Alcotest.test_case "mixed ends" `Quick test_mixed_ends;
    Alcotest.test_case "ring growth" `Quick test_growth;
    Alcotest.test_case "concurrent no-loss/no-dup" `Quick
      test_concurrent_no_loss_no_dup ]
