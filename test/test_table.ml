(* SLG tabling: the shared answer table (lib/lang/table), the kernel's
   generator/consumer evaluation, and its integration with all four
   engines.  Covers subgoal-trie variant detection, answer-trie
   deduplication, the golden incremental-completion order on a
   hand-built SCC chain, the acceptance-criterion 200-node cyclic
   left-recursive reachability on every engine (compiled and
   interpreted), chaos-schedule determinism of the suspend/resume
   interleaving, and concurrent 4-domain answer-table consistency. *)

module Term = Ace_term.Term
module Table = Ace_lang.Table
module Config = Ace_machine.Config
module Chaos = Ace_sched.Chaos
module Engine = Ace_core.Engine
module Canon = Ace_check.Canon

let solve ?table ?chaos ?(kind = Engine.Sequential) ?(config = Config.default)
    program query =
  Engine.solve_program ?table ?chaos kind config ~program ~query

let multiset ?table ?chaos ?kind ?config program query =
  Canon.multiset (solve ?table ?chaos ?kind ?config program query).Engine.solutions

(* ------------------------------------------------------------------ *)
(* Subgoal trie: variant detection                                     *)
(* ------------------------------------------------------------------ *)

let test_variant_detection () =
  let t = Table.create () in
  let g1 = Term.app "p" [ Term.var (); Term.app "f" [ Term.atom "a"; Term.var () ] ] in
  let e1, created1 = Table.subgoal_entry t g1 in
  Alcotest.(check bool) "first call creates" true created1;
  (* same pattern, fresh variables: a variant — must share the entry *)
  let g2 = Term.app "p" [ Term.var (); Term.app "f" [ Term.atom "a"; Term.var () ] ] in
  let e2, created2 = Table.subgoal_entry t g2 in
  Alcotest.(check bool) "variant does not create" false created2;
  Alcotest.(check int) "variant shares the entry" e1.Table.id e2.Table.id;
  (* repeated variable vs distinct variables: NOT variants *)
  let v = Term.var () in
  let g3 = Term.app "p" [ v; Term.app "f" [ Term.atom "a"; v ] ] in
  let _, created3 = Table.subgoal_entry t g3 in
  Alcotest.(check bool) "repeated-var pattern is a new subgoal" true created3;
  (* different constant: a new subgoal *)
  let g4 = Term.app "p" [ Term.var (); Term.app "f" [ Term.atom "b"; Term.var () ] ] in
  let _, created4 = Table.subgoal_entry t g4 in
  Alcotest.(check bool) "different constant is a new subgoal" true created4;
  Alcotest.(check int) "three entries" 3 (Table.subgoal_count t);
  (* a bound variable makes the call an instance of its resolved form *)
  let w = Term.fresh_var () in
  w.Term.binding <- Some (Term.atom "a");
  let g5 = Term.app "p" [ Term.var (); Term.app "f" [ Term.Var w; Term.var () ] ] in
  let e5, created5 = Table.subgoal_entry t g5 in
  Alcotest.(check bool) "bound var resolves before filing" false created5;
  Alcotest.(check int) "resolves to the first entry" e1.Table.id e5.Table.id

(* ------------------------------------------------------------------ *)
(* Answer trie: insert-if-new                                          *)
(* ------------------------------------------------------------------ *)

let test_answer_dedup () =
  let t = Table.create () in
  let entry, _ = Table.subgoal_entry t (Term.app "p" [ Term.var () ]) in
  let ins x = Table.insert t entry (Term.app "p" [ x ]) in
  Alcotest.(check bool) "first insert" true (ins (Term.atom "a") = Table.Inserted);
  Alcotest.(check bool) "duplicate" true (ins (Term.atom "a") = Table.Duplicate);
  Alcotest.(check bool) "distinct answer" true (ins (Term.int 3) = Table.Inserted);
  (* alpha-equivalent non-ground answers are duplicates too *)
  Alcotest.(check bool) "open answer" true (ins (Term.var ()) = Table.Inserted);
  Alcotest.(check bool) "variant answer" true (ins (Term.var ()) = Table.Duplicate);
  Alcotest.(check int) "three retained" 3 (Table.answer_count entry);
  (* the max_answers guard *)
  let t2 = Table.create ~max_answers:2 () in
  let e2, _ = Table.subgoal_entry t2 (Term.app "q" [ Term.var () ]) in
  let ins2 x = Table.insert t2 e2 (Term.app "q" [ Term.int x ]) in
  Alcotest.(check bool) "under the cap" true (ins2 0 = Table.Inserted);
  Alcotest.(check bool) "at the cap" true (ins2 1 = Table.Inserted);
  Alcotest.(check bool) "over the cap" true (ins2 2 = Table.Overflow)

(* ------------------------------------------------------------------ *)
(* Golden completion order on a hand-built SCC chain                   *)
(* ------------------------------------------------------------------ *)

(* Dependencies: a -> b -> {c, d}, b -> a (so {a,b} is one SCC), with c
   and d independent below it.  Every call passes a free variable, so
   each predicate contributes exactly one subgoal.  Incremental
   completion must close c and d as soon as their own fixpoints are
   done — while {a,b} is still open — and then pop the {a,b} region
   deepest-first. *)
let scc_program =
  {|
:- table(a/1).
:- table(b/1).
:- table(c/1).
:- table(d/1).
a(X) :- b(X).
b(X) :- c(X).
b(X) :- d(X).
b(X) :- a(X).
c(1).
d(2).
|}

let test_completion_order () =
  let table = Table.create () in
  let r = solve ~table scc_program "a(X)" in
  Alcotest.(check (list string)) "answers" [ "a(1)"; "a(2)" ]
    (Canon.multiset r.Engine.solutions);
  Alcotest.(check (list string)) "incremental completion order"
    [ "c('_V0')"; "d('_V0')"; "b('_V0')"; "a('_V0')" ]
    (Table.completion_log table);
  (* every engine reproduces the same completion order: the evaluation
     is the same kernel loop regardless of the surrounding scheduler *)
  List.iter
    (fun kind ->
      let table = Table.create ~locked:(kind = Engine.Par_or) () in
      ignore (solve ~table ~kind scc_program "a(X)");
      Alcotest.(check (list string))
        (Printf.sprintf "completion order on %s" (Engine.kind_to_string kind))
        [ "c('_V0')"; "d('_V0')"; "b('_V0')"; "a('_V0')" ]
        (Table.completion_log table))
    [ Engine.And_parallel; Engine.Or_parallel; Engine.Par_or ]

(* ------------------------------------------------------------------ *)
(* 200-node cyclic reachability (the acceptance criterion)             *)
(* ------------------------------------------------------------------ *)

let nodes = 200

(* A directed ring plus chords: strongly connected, so the reachable set
   from n0 is all 200 nodes, and plain SLD on the left recursion would
   loop forever. *)
let cyclic_program =
  let b = Buffer.create 4096 in
  Buffer.add_string b ":- table(path/2).\n";
  for i = 0 to nodes - 1 do
    Printf.bprintf b "edge(n%d, n%d).\n" i ((i + 1) mod nodes)
  done;
  for i = 0 to (nodes / 10) - 1 do
    Printf.bprintf b "edge(n%d, n%d).\n" (i * 10) ((i * 10 + 37) mod nodes)
  done;
  Buffer.add_string b "path(X, Y) :- edge(X, Y).\n";
  Buffer.add_string b "path(X, Y) :- path(X, Z), edge(Z, Y).\n";
  Buffer.contents b

let reachable_expected =
  Canon.multiset
    (List.init nodes (fun j ->
         Term.app "path" [ Term.atom "n0"; Term.atom (Printf.sprintf "n%d" j) ]))

let test_cyclic_reachability () =
  List.iter
    (fun kind ->
      List.iter
        (fun compile ->
          let config =
            match kind with
            | Engine.Sequential -> { Config.default with Config.compile }
            | _ -> { (Config.all_optimizations ~agents:2 ()) with Config.compile }
          in
          Alcotest.(check (list string))
            (Printf.sprintf "reachable set on %s %s" (Engine.kind_to_string kind)
               (if compile then "compiled" else "interpreted"))
            reachable_expected
            (multiset ~kind ~config cyclic_program "path(n0, X)"))
        [ false; true ])
    [ Engine.Sequential; Engine.And_parallel; Engine.Or_parallel; Engine.Par_or ]

(* ------------------------------------------------------------------ *)
(* Chaos schedules: suspend/resume interleaving is deterministic        *)
(* ------------------------------------------------------------------ *)

(* Mutual recursion over a cycle: evaluation suspends on both tabled
   predicates and resumes through the leader's fixpoint rounds.  Chaos
   jitter reorders the surrounding engine scheduling; the answers and
   the completion order must not move, and the same chaos seed must
   replay the identical run. *)
let mutual_program =
  {|
:- table(p/2).
:- table(q/2).
e(a, b). e(b, c). e(c, a). e(c, d).
p(X, Y) :- e(X, Y).
p(X, Y) :- q(X, Z), e(Z, Y).
q(X, Y) :- p(X, Y).
|}

let test_chaos_replay () =
  let reference = multiset mutual_program "p(a, X)" in
  Alcotest.(check int) "reference reaches everything" 4 (List.length reference);
  List.iter
    (fun kind ->
      for seed = 0 to 4 do
        let run () =
          let table = Table.create () in
          let config = Config.all_optimizations ~agents:3 () in
          let sols =
            multiset ~table ~chaos:(Chaos.make ~seed ()) ~kind ~config
              mutual_program "p(a, X)"
          in
          (sols, Table.completion_log table)
        in
        let sols1, log1 = run () in
        let sols2, log2 = run () in
        Alcotest.(check (list string))
          (Printf.sprintf "%s chaos#%d matches reference"
             (Engine.kind_to_string kind) seed)
          reference sols1;
        Alcotest.(check (list string))
          (Printf.sprintf "%s chaos#%d solutions replay"
             (Engine.kind_to_string kind) seed)
          sols1 sols2;
        Alcotest.(check (list string))
          (Printf.sprintf "%s chaos#%d completion order replays"
             (Engine.kind_to_string kind) seed)
          log1 log2
      done)
    [ Engine.And_parallel; Engine.Or_parallel ]

(* ------------------------------------------------------------------ *)
(* Concurrent 4-domain answer table                                    *)
(* ------------------------------------------------------------------ *)

(* start/1 fans out into parallel branches that all call the same
   path/2 variants, so domains race to evaluate shared subgoals.  The
   answer trie must neither lose nor duplicate answers: the solution
   multiset equals the sequential run, every repetition. *)
let concurrent_program =
  cyclic_program ^ "start(s1). start(s2). start(s3). start(s4).\n"

let test_concurrent_domains () =
  let query = "start(S), path(n0, X)" in
  let expected = multiset concurrent_program query in
  Alcotest.(check int) "4 starts x 200 targets" (4 * nodes)
    (List.length expected);
  let config = { (Config.all_optimizations ~agents:4 ()) with Config.compile = true } in
  for round = 1 to 3 do
    let table = Table.create ~locked:true () in
    Alcotest.(check (list string))
      (Printf.sprintf "par@4 multiset, round %d" round)
      expected
      (multiset ~table ~kind:Engine.Par_or ~config concurrent_program query);
    (* exactly one completion of each tabled subgoal, however many
       domains raced on it *)
    let log = List.sort String.compare (Table.completion_log table) in
    Alcotest.(check (list string))
      (Printf.sprintf "unique completions, round %d" round)
      (List.sort_uniq String.compare log) log
  done

(* ------------------------------------------------------------------ *)

let suite =
  [ Alcotest.test_case "subgoal trie variant detection" `Quick
      test_variant_detection;
    Alcotest.test_case "answer trie dedup + cap" `Quick test_answer_dedup;
    Alcotest.test_case "golden completion order" `Quick test_completion_order;
    Alcotest.test_case "200-node cyclic reachability" `Slow
      test_cyclic_reachability;
    Alcotest.test_case "chaos suspend/resume replay" `Slow test_chaos_replay;
    Alcotest.test_case "concurrent 4-domain table" `Slow
      test_concurrent_domains ]
