(* Concurrent interning: the symbol table is one shared, mutex-protected
   intern table, so the same string interned from any domain must yield the
   same id, ids must stay dense and collision-free, and [name] (a lock-free
   read of the atomically published reverse store) must resolve every id a
   domain has observed.

   Spawned domains only collect observations (Alcotest's check machinery is
   not domain-safe); every assertion runs in the joining domain. *)

module Symbol = Ace_term.Symbol

(* Each domain interns the same [shared] names repeatedly (rotated, so the
   domains hit the same names at different times), racing against the
   others.  Returns (name -> id seen, names whose [name] did not round-trip
   or whose id changed between observations). *)
let intern_from_domain ~rounds ~domain_id shared =
  let results = Hashtbl.create 64 in
  let bad = ref [] in
  let n = List.length shared in
  for r = 0 to rounds - 1 do
    List.iteri
      (fun i _ ->
        let name = List.nth shared ((i + domain_id + r) mod n) in
        let s = Symbol.intern name in
        if not (String.equal name (Symbol.name s)) then bad := name :: !bad;
        match Hashtbl.find_opt results name with
        | None -> Hashtbl.replace results name (Symbol.id s)
        | Some id -> if id <> Symbol.id s then bad := name :: !bad)
      shared
  done;
  let private_name = Printf.sprintf "private_%d" domain_id in
  Hashtbl.replace results private_name (Symbol.id (Symbol.intern private_name));
  (results, !bad)

let test_concurrent_interning () =
  let shared = List.init 40 (fun i -> Printf.sprintf "concurrent_sym_%d" i) in
  let n_domains = 4 in
  let count_before = Symbol.count () in
  let domains =
    List.init n_domains (fun d ->
        Domain.spawn (fun () ->
            intern_from_domain ~rounds:50 ~domain_id:d shared))
  in
  let observed = List.map Domain.join domains in
  let tables = List.map fst observed in
  List.iter
    (fun (_, bad) ->
      Alcotest.(check (list string)) "round-trips and stable ids in-domain" []
        bad)
    observed;
  (* overlapping names agree across every pair of domains, and with a
     re-intern from the joining domain *)
  List.iter
    (fun name ->
      let ids =
        List.filter_map (fun tbl -> Hashtbl.find_opt tbl name) tables
      in
      Alcotest.(check int) "every domain saw the name" n_domains
        (List.length ids);
      List.iter
        (fun id ->
          Alcotest.(check int) ("id agrees for " ^ name) (List.hd ids) id)
        ids;
      Alcotest.(check int) "main domain agrees" (List.hd ids)
        (Symbol.id (Symbol.intern name)))
    shared;
  (* ids are collision-free: distinct names got distinct ids *)
  let all_ids = Hashtbl.create 64 in
  List.iter
    (fun tbl ->
      Hashtbl.iter
        (fun name id ->
          match Hashtbl.find_opt all_ids id with
          | None -> Hashtbl.replace all_ids id name
          | Some name' ->
            Alcotest.(check string) "one name per id" name' name)
        tbl)
    tables;
  (* exactly the shared + per-domain private names were added *)
  let expected_new = List.length shared + n_domains in
  Alcotest.(check int) "table grew by the distinct names"
    (count_before + expected_new)
    (Symbol.count ())

let test_name_visible_across_domains () =
  (* an id interned in one domain resolves in another *)
  let s = Symbol.intern "cross_domain_name" in
  let resolved = Domain.join (Domain.spawn (fun () -> Symbol.name s)) in
  Alcotest.(check string) "resolves in the other domain" "cross_domain_name"
    resolved

let suite =
  [ Alcotest.test_case "concurrent interning agrees" `Quick
      test_concurrent_interning;
    Alcotest.test_case "name visible across domains" `Quick
      test_name_visible_across_domains ]
