(* The shared solver kernel: schema hook decisions (fired / not fired
   around their thresholds), goal classification, and the and-parallel
   tuple/cross-product helpers — engine-independent, so they are tested
   once here instead of per engine. *)

module Term = Ace_term.Term
module Clause = Ace_lang.Clause
module Config = Ace_machine.Config
module Kernel = Ace_core.Kernel
module Schema = Kernel.Schema

let cfg = Config.all_optimizations ()
let off = Config.default

let call s = Clause.Call (Test_util.term s)

(* ------------------------------------------------------------------ *)
(* Sequentialization (granularity control)                             *)

let test_sequentialize_threshold () =
  let small = [ [ call "p(a)" ]; [ call "q(b)" ] ] in
  Alcotest.(check bool) "fires below threshold" true
    (Schema.sequentialize { cfg with Config.seq_threshold = 100 } small);
  Alcotest.(check bool) "does not fire above threshold" false
    (Schema.sequentialize { cfg with Config.seq_threshold = 2 } small);
  Alcotest.(check bool) "threshold 0 is off" false
    (Schema.sequentialize { cfg with Config.seq_threshold = 0 } small)

let test_sequentialize_counts_nested () =
  (* nested parcall work counts against the budget too *)
  let nested =
    [ [ Clause.Par [ [ call "p(f(a,b,c))" ]; [ call "q(g(d,e))" ] ] ];
      [ call "r(h(i,j,k))" ] ]
  in
  Alcotest.(check bool) "nested branches spend the budget" false
    (Schema.sequentialize { cfg with Config.seq_threshold = 5 } nested)

(* ------------------------------------------------------------------ *)
(* LPCO: nested-parcall flattening                                     *)

let test_lpco_flattens () =
  let inner = Clause.Par [ [ call "a" ]; [ call "b" ] ] in
  let bodies = [ [ inner ]; [ call "c" ] ] in
  let flat, splices = Schema.lpco_flatten cfg bodies in
  Alcotest.(check int) "one splice" 1 splices;
  Alcotest.(check int) "three branches after flattening" 3 (List.length flat)

let test_lpco_keeps_mixed_branches () =
  (* a branch with work besides the nested parcall must keep its frame *)
  let mixed = [ call "setup"; Clause.Par [ [ call "a" ]; [ call "b" ] ] ] in
  let flat, splices = Schema.lpco_flatten cfg [ mixed; [ call "c" ] ] in
  Alcotest.(check int) "no splice" 0 splices;
  Alcotest.(check int) "branches unchanged" 2 (List.length flat)

let test_lpco_off () =
  let inner = Clause.Par [ [ call "a" ]; [ call "b" ] ] in
  let _, splices = Schema.lpco_flatten off [ [ inner ] ] in
  Alcotest.(check int) "no splice with lpco off" 0 splices

(* ------------------------------------------------------------------ *)
(* SPO: procrastinated frame setup                                     *)

let test_spo_inline () =
  Alcotest.(check bool) "fires while nobody is hungry" true
    (Schema.spo_inline cfg ~hungry:0);
  Alcotest.(check bool) "does not fire with a hungry worker" false
    (Schema.spo_inline cfg ~hungry:1);
  Alcotest.(check bool) "off without the flag" false
    (Schema.spo_inline off ~hungry:0)

(* ------------------------------------------------------------------ *)
(* PDO: contiguous-slot preference                                     *)

let test_pdo_contiguous () =
  Alcotest.(check bool) "fires on the sequentially-next slot" true
    (Schema.pdo_contiguous cfg ~last:(Some (7, 2)) ~next:(7, 3));
  Alcotest.(check bool) "does not fire across frames" false
    (Schema.pdo_contiguous cfg ~last:(Some (7, 2)) ~next:(8, 3));
  Alcotest.(check bool) "does not fire on a gap" false
    (Schema.pdo_contiguous cfg ~last:(Some (7, 0)) ~next:(7, 2));
  Alcotest.(check bool) "no history, no preference" false
    (Schema.pdo_contiguous cfg ~last:None ~next:(7, 1));
  Alcotest.(check bool) "off without the flag" false
    (Schema.pdo_contiguous off ~last:(Some (7, 2)) ~next:(7, 3))

(* ------------------------------------------------------------------ *)
(* Or-parallel publish decisions                                       *)

let test_publish_grain () =
  let g2 = { cfg with Config.grain = 2 } in
  Alcotest.(check bool) "at grain" true (Schema.publish_grain g2 ~nalts:2);
  Alcotest.(check bool) "below grain" false (Schema.publish_grain g2 ~nalts:1)

let test_chunk_alts () =
  let c2 = { cfg with Config.chunk = 2 } in
  Alcotest.(check (list (list int))) "chunks of two"
    [ [ 1; 2 ]; [ 3; 4 ]; [ 5 ] ]
    (Schema.chunk_alts c2 [ 1; 2; 3; 4; 5 ]);
  Alcotest.(check (list (list int))) "chunk 0 keeps the node whole"
    [ [ 1; 2; 3 ] ]
    (Schema.chunk_alts { cfg with Config.chunk = 0 } [ 1; 2; 3 ])

let test_lao_refurbish () =
  Alcotest.(check bool) "fires on an exhausted top" true
    (Schema.lao_refurbish cfg ~top_exhausted:true);
  Alcotest.(check bool) "does not fire on a live top" false
    (Schema.lao_refurbish cfg ~top_exhausted:false);
  Alcotest.(check bool) "off without the flag" false
    (Schema.lao_refurbish off ~top_exhausted:true)

(* ------------------------------------------------------------------ *)
(* Goal classification                                                 *)

let test_classify () =
  let is_goal t = match Kernel.classify t with Kernel.Goal _ -> true | _ -> false in
  (match Kernel.classify (Test_util.term "(a, b)") with
   | Kernel.Conj _ -> ()
   | _ -> Alcotest.fail "','/2 should classify as Conj");
  (match Kernel.classify (Test_util.term "(a ; b)") with
   | Kernel.Disj _ -> ()
   | _ -> Alcotest.fail "';'/2 should classify as Disj");
  (match Kernel.classify (Test_util.term "(a -> b ; c)") with
   | Kernel.Ite _ -> ()
   | _ -> Alcotest.fail "if-then-else should classify as Ite");
  (match Kernel.classify (Test_util.term "call(foo(X))") with
   | Kernel.Meta _ -> ()
   | _ -> Alcotest.fail "call/1 should classify as Meta");
  Alcotest.(check bool) "plain goal" true (is_goal (Test_util.term "foo(X, 1)"))

(* ------------------------------------------------------------------ *)
(* And-parallel tuples and cross products                              *)

let test_slot_tuples_independent () =
  let x = Term.fresh_var () and y = Term.fresh_var () in
  let bodies =
    [ [ Clause.Call (Term.struct_ "p" [| Term.Var x |]) ];
      [ Clause.Call (Term.struct_ "q" [| Term.Var y |]) ] ]
  in
  match Kernel.Parcall.slot_tuples bodies with
  | None -> Alcotest.fail "independent branches should produce tuples"
  | Some tuples ->
    Alcotest.(check int) "one tuple per branch" 2 (Array.length tuples)

let test_slot_tuples_shared_var () =
  let x = Term.fresh_var () in
  let bodies =
    [ [ Clause.Call (Term.struct_ "p" [| Term.Var x |]) ];
      [ Clause.Call (Term.struct_ "q" [| Term.Var x |]) ] ]
  in
  Alcotest.(check bool) "shared variable vetoes the frame" true
    (Kernel.Parcall.slot_tuples bodies = None)

let test_slot_tuples_bound_shared_ok () =
  (* sharing a *bound* structure is fine; only unbound sharing vetoes *)
  let x = Term.fresh_var () in
  let trail = Ace_term.Trail.create () in
  assert (Ace_term.Unify.unify ~trail ~steps:(ref 0) (Term.Var x) (Term.atom "a"));
  let bodies =
    [ [ Clause.Call (Term.struct_ "p" [| Term.Var x |]) ];
      [ Clause.Call (Term.struct_ "q" [| Term.Var x |]) ] ]
  in
  Alcotest.(check bool) "bound sharing is independent" true
    (Kernel.Parcall.slot_tuples bodies <> None)

let test_cross_order () =
  (* rightmost slot varies fastest: the sequential enumeration order *)
  let t s = Term.atom s in
  let rows = [| [ t "a1"; t "a2" ]; [ t "b1"; t "b2" ] |] in
  let render row = Ace_term.Pp.to_string row in
  Alcotest.(check (list string)) "sequential order"
    [ "'$parjoin'(a1,b1)"; "'$parjoin'(a1,b2)"; "'$parjoin'(a2,b1)";
      "'$parjoin'(a2,b2)" ]
    (List.map render (Kernel.Parcall.cross rows))

let test_cross_empty_slot_fails () =
  let rows = [| [ Term.atom "a" ]; [] |] in
  Alcotest.(check int) "an empty slot empties the product" 0
    (List.length (Kernel.Parcall.cross rows))

let suite =
  [
    Alcotest.test_case "sequentialize threshold" `Quick
      test_sequentialize_threshold;
    Alcotest.test_case "sequentialize nested" `Quick
      test_sequentialize_counts_nested;
    Alcotest.test_case "lpco flattens" `Quick test_lpco_flattens;
    Alcotest.test_case "lpco keeps mixed" `Quick test_lpco_keeps_mixed_branches;
    Alcotest.test_case "lpco off" `Quick test_lpco_off;
    Alcotest.test_case "spo inline" `Quick test_spo_inline;
    Alcotest.test_case "pdo contiguous" `Quick test_pdo_contiguous;
    Alcotest.test_case "publish grain" `Quick test_publish_grain;
    Alcotest.test_case "chunk alts" `Quick test_chunk_alts;
    Alcotest.test_case "lao refurbish" `Quick test_lao_refurbish;
    Alcotest.test_case "classify" `Quick test_classify;
    Alcotest.test_case "slot tuples independent" `Quick
      test_slot_tuples_independent;
    Alcotest.test_case "slot tuples shared" `Quick test_slot_tuples_shared_var;
    Alcotest.test_case "slot tuples bound share" `Quick
      test_slot_tuples_bound_shared_ok;
    Alcotest.test_case "cross order" `Quick test_cross_order;
    Alcotest.test_case "cross empty slot" `Quick test_cross_empty_slot_fails;
  ]
