(* Per-predicate profiler: port semantics on a hand-driven shard,
   disabled no-ops, cost attribution to the stack top, the three export
   views, and cross-engine agreement of the 4-port counts on a
   deterministic program. *)

module Prof = Ace_obs.Prof
module Json = Ace_obs.Json
module Stats = Ace_machine.Stats
module Symbol = Ace_term.Symbol
module Config = Ace_machine.Config
module Engine = Ace_core.Engine

let key name arity = Prof.key (Symbol.intern name) arity

let row_of prof name =
  List.find_opt (fun r -> r.Prof.r_name = name) (Prof.rows prof)

let get prof name =
  match row_of prof name with
  | Some r -> r
  | None -> Alcotest.failf "no profile row for %s" name

(* ------------------------------------------------------------------ *)

let test_disabled_noop () =
  Alcotest.(check bool) "disabled profile" false (Prof.enabled Prof.disabled);
  Alcotest.(check bool) "null shard is dead" false (Prof.live Prof.null);
  let sh = Prof.shard Prof.disabled ~dom:0 () in
  Alcotest.(check bool) "disabled shard is null" false (Prof.live sh);
  (* every hook is a no-op on the null shard *)
  let k = key "p" 1 in
  Prof.call sh k;
  Prof.exit_key sh k;
  Prof.exit_top sh;
  Prof.redo sh k;
  Prof.fail sh k;
  Prof.builtin sh k ~ok:true;
  Prof.spawned sh 3;
  Prof.stole sh k;
  Prof.copied sh 100;
  Prof.slots sh 2;
  Alcotest.(check int) "no rows" 0 (List.length (Prof.rows Prof.disabled))

let test_key_packing () =
  Alcotest.(check string) "key_name round-trips" "foo/3"
    (Prof.key_name (key "foo" 3));
  Alcotest.(check bool) "arity distinguishes" true (key "foo" 1 <> key "foo" 2);
  Alcotest.(check bool) "symbol distinguishes" true (key "a" 1 <> key "b" 1)

let test_port_semantics () =
  let prof = Prof.create () in
  let sh = Prof.shard prof ~dom:0 () in
  let p = key "p" 1 and q = key "q" 2 in
  (* p calls q; q exits; p retries once, then fails *)
  Prof.call sh p;
  Prof.call sh q;
  Prof.exit_key sh q;
  Prof.redo sh p;
  Prof.fail sh p;
  let rp = get prof "p/1" and rq = get prof "q/2" in
  Alcotest.(check int) "p calls" 1 rp.Prof.r_calls;
  Alcotest.(check int) "p redos" 1 rp.Prof.r_redos;
  Alcotest.(check int) "p fails" 1 rp.Prof.r_fails;
  Alcotest.(check int) "p exits" 0 rp.Prof.r_exits;
  Alcotest.(check int) "q calls" 1 rq.Prof.r_calls;
  Alcotest.(check int) "q exits" 1 rq.Prof.r_exits;
  Alcotest.(check int) "q redos" 0 rq.Prof.r_redos

let test_builtin_pair () =
  let prof = Prof.create () in
  let sh = Prof.shard prof ~dom:0 () in
  let p = key "p" 0 and b = key "is" 2 in
  Prof.call sh p;
  Prof.builtin sh b ~ok:true;
  Prof.builtin sh b ~ok:false;
  let rb = get prof "is/2" in
  Alcotest.(check int) "builtin calls" 2 rb.Prof.r_calls;
  Alcotest.(check int) "builtin exits" 1 rb.Prof.r_exits;
  Alcotest.(check int) "builtin fails" 1 rb.Prof.r_fails;
  (* builtins never win top_hotspot; arity 0 renders as the bare atom *)
  match Prof.top_hotspot prof with
  | Some r -> Alcotest.(check string) "hotspot is the user pred" "p" r.Prof.r_name
  | None -> Alcotest.fail "expected a hotspot"

let test_cost_attribution () =
  let clock = ref 0 in
  let stats = Stats.create () in
  let prof = Prof.create () in
  let sh = Prof.shard prof ~dom:0 ~stats ~clock:(fun () -> !clock) () in
  let p = key "p" 1 and q = key "q" 1 in
  Prof.call sh p;
  (* work inside p before it calls q: exclusive to p *)
  clock := 10;
  stats.Stats.clause_tries <- 4;
  Prof.call sh q;
  (* work inside q: exclusive to q *)
  clock := 15;
  stats.Stats.clause_tries <- 7;
  Prof.exit_key sh q;
  let rp = get prof "p/1" and rq = get prof "q/1" in
  Alcotest.(check int) "p exclusive cycles" 10 rp.Prof.r_cycles;
  Alcotest.(check int) "q exclusive cycles" 5 rq.Prof.r_cycles;
  Alcotest.(check int) "p exclusive tries" 4 rp.Prof.r_tries;
  Alcotest.(check int) "q exclusive tries" 3 rq.Prof.r_tries

let test_parallel_attribution () =
  let prof = Prof.create () in
  let sh = Prof.shard prof ~dom:0 () in
  let p = key "p" 1 in
  Prof.call sh p;
  Prof.spawned sh 3;
  Prof.slots sh 3;
  Prof.copied sh 120;
  Prof.stole sh p;
  let rp = get prof "p/1" in
  Alcotest.(check int) "tasks" 3 rp.Prof.r_tasks;
  Alcotest.(check int) "slots" 3 rp.Prof.r_slots;
  Alcotest.(check int) "copied cells" 120 rp.Prof.r_copied;
  Alcotest.(check int) "steals" 1 rp.Prof.r_steals

let test_depth_cap () =
  let prof = Prof.create () in
  let sh = Prof.shard prof ~dom:0 () in
  let p = key "deep" 1 in
  for _ = 1 to 200 do
    Prof.call sh p
  done;
  let rp = get prof "deep/1" in
  Alcotest.(check int) "all calls counted" 200 rp.Prof.r_calls;
  match Json.parse (Json.to_string (Prof.to_json prof)) with
  | Error m -> Alcotest.failf "profile json: %s" m
  | Ok v -> (
    match Json.member "truncated" v with
    | Some (Json.Num n) ->
      Alcotest.(check bool) "beyond-cap frames counted as truncated" true
        (n > 0.)
    | _ -> Alcotest.fail "no truncated field")

(* ------------------------------------------------------------------ *)
(* Engine integration                                                  *)
(* ------------------------------------------------------------------ *)

let nrev_program =
  {|
    app([], L, L).
    app([H|T], L, [H|R]) :- app(T, L, R).
    nrev([], []).
    nrev([H|T], R) :- nrev(T, RT), app(RT, [H], R).
  |}

let run_profiled ?(agents = 1) ?(compile = true) kind =
  let prof = Prof.create () in
  let config = { Config.default with Config.agents; compile } in
  let r =
    Engine.solve_program ~prof kind config ~program:nrev_program
      ~query:"nrev([a,b,c,d,e,f,g,h,i,j], R)."
  in
  Alcotest.(check int)
    (Printf.sprintf "%s solves" (Engine.kind_to_string kind))
    1
    (List.length r.Engine.solutions);
  prof

let test_engines_agree_on_ports () =
  (* nrev(10): 11 nrev calls, 55 app calls, deterministic on every
     engine and in both execution modes *)
  let check_counts prof label =
    let ra = get prof "app/3" and rn = get prof "nrev/2" in
    Alcotest.(check int) (label ^ ": app calls") 55 ra.Prof.r_calls;
    Alcotest.(check int) (label ^ ": app fact exits") 10 ra.Prof.r_exits;
    Alcotest.(check int) (label ^ ": nrev calls") 11 rn.Prof.r_calls;
    Alcotest.(check int) (label ^ ": no redos") 0 rn.Prof.r_redos;
    match Prof.top_hotspot prof with
    | Some r -> Alcotest.(check string) (label ^ ": hotspot") "app/3" r.Prof.r_name
    | None -> Alcotest.failf "%s: no hotspot" label
  in
  check_counts (run_profiled Engine.Sequential) "seq/c";
  check_counts (run_profiled ~compile:false Engine.Sequential) "seq";
  check_counts (run_profiled ~agents:2 Engine.And_parallel) "and@2";
  check_counts (run_profiled ~agents:2 Engine.Or_parallel) "or@2";
  check_counts (run_profiled ~agents:2 Engine.Par_or) "par@2"

let contains hay needle =
  let nl = String.length needle and hl = String.length hay in
  let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
  go 0

let test_report_and_json () =
  let prof = run_profiled Engine.Sequential in
  let report = Prof.report prof in
  Alcotest.(check bool) "report mentions app/3" true (contains report "app/3");
  match Json.parse (Json.to_string (Prof.to_json prof)) with
  | Error m -> Alcotest.failf "profile json invalid: %s" m
  | Ok v ->
    let preds =
      Option.bind (Json.member "predicates" v) Json.to_list
      |> Option.value ~default:[]
    in
    Alcotest.(check bool) "json has predicate rows" true (List.length preds >= 2);
    let edges =
      Option.bind (Json.member "edges" v) Json.to_list
      |> Option.value ~default:[]
    in
    (* nrev -> nrev, nrev -> app, app -> app at least *)
    Alcotest.(check bool) "json has call-graph edges" true
      (List.length edges >= 3)

(* Folded-stack golden: a deterministic two-level program whose calling
   contexts are known exactly.  Every line must be "path N" with a
   ';'-separated path rooted at $root and a positive integral cost. *)
let test_folded_golden () =
  let prof = Prof.create () in
  let config = { Config.default with Config.agents = 1; compile = true } in
  ignore
    (Engine.solve_program ~prof Engine.Sequential config
       ~program:"leaf(1).\nleaf(2).\nmid(X) :- leaf(X).\ntop(X) :- mid(X)."
       ~query:"top(X).");
  let folded = Prof.to_folded prof in
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' folded)
  in
  Alcotest.(check bool) "has sample paths" true (List.length lines > 0);
  let paths =
    List.map
      (fun line ->
        match String.rindex_opt line ' ' with
        | None -> Alcotest.failf "folded line %S has no cost column" line
        | Some i ->
          let path = String.sub line 0 i in
          let cost =
            String.sub line (i + 1) (String.length line - i - 1)
          in
          (match int_of_string_opt cost with
           | Some n when n > 0 -> ()
           | _ -> Alcotest.failf "folded line %S: bad cost %S" line cost);
          Alcotest.(check bool)
            (Printf.sprintf "path %S rooted at $root" path)
            true
            (path = "$root" || String.length path > 6
                               && String.sub path 0 6 = "$root;");
          path)
      lines
  in
  Alcotest.(check bool) "the known hot path is present" true
    (List.mem "$root;top/1;mid/1;leaf/1" paths);
  (* paths are unique (aggregated, not repeated) *)
  Alcotest.(check int) "paths unique"
    (List.length paths)
    (List.length (List.sort_uniq compare paths))

(* Profiling must not perturb results: same program, profiled and not,
   identical solutions and identical engine stats. *)
let test_profiling_is_pure () =
  let run profiled =
    let prof = if profiled then Prof.create () else Prof.disabled in
    let config = { Config.default with Config.agents = 1; compile = true } in
    Engine.solve_program ~prof Engine.Sequential config ~program:nrev_program
      ~query:"nrev([a,b,c], R)."
  in
  let a = run false and b = run true in
  Alcotest.(check (list string)) "same solutions"
    (List.map (Format.asprintf "%a" Ace_term.Pp.pp) a.Engine.solutions)
    (List.map (Format.asprintf "%a" Ace_term.Pp.pp) b.Engine.solutions);
  Alcotest.(check int) "same unify steps" a.Engine.stats.Stats.unify_steps
    b.Engine.stats.Stats.unify_steps;
  Alcotest.(check int) "same clause tries" a.Engine.stats.Stats.clause_tries
    b.Engine.stats.Stats.clause_tries

let suite =
  [ Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
    Alcotest.test_case "key packing" `Quick test_key_packing;
    Alcotest.test_case "port semantics" `Quick test_port_semantics;
    Alcotest.test_case "builtin call+exit pair" `Quick test_builtin_pair;
    Alcotest.test_case "cost attribution" `Quick test_cost_attribution;
    Alcotest.test_case "parallel attribution" `Quick test_parallel_attribution;
    Alcotest.test_case "depth cap" `Quick test_depth_cap;
    Alcotest.test_case "engines agree on ports" `Quick
      test_engines_agree_on_ports;
    Alcotest.test_case "report and json views" `Quick test_report_and_json;
    Alcotest.test_case "folded golden" `Quick test_folded_golden;
    Alcotest.test_case "profiling is pure" `Quick test_profiling_is_pure ]
