(* Hardware or-parallel engine (OCaml domains): solution-set equivalence
   with the sequential engine at 1, 2 and 4 domains, scheduling invariants,
   and the structural LAO. *)

module Config = Ace_machine.Config
module Engine = Ace_core.Engine
module Stats = Ace_machine.Stats
module Programs = Ace_benchmarks.Programs

(* Solutions from different domains carry unrelated variable ids, so
   compare alpha-invariant renderings. *)
let canonical r = Ace_check.Canon.strings r.Engine.solutions
let canonical_set r = Ace_check.Canon.multiset r.Engine.solutions

let run ?(config = Config.default) ~program query =
  Engine.solve_program Engine.Par_or config ~program ~query

let seq ~program query =
  Engine.solve_program Engine.Sequential Config.default ~program ~query

let search_lib = Test_or_engine.search_lib

let or_queries =
  [ "member(X, [1,2,3,4,5,6,7,8])";
    "pair(X, Y)";
    "perm([1,2,3], P)";
    "constrained(X, Y)";
    "nosol(X)";
    "deep(4)" ]

let test_agrees_with_sequential () =
  List.iter
    (fun query ->
      let reference = canonical_set (seq ~program:search_lib query) in
      List.iter
        (fun agents ->
          let config = { Config.default with agents } in
          let got = canonical_set (run ~config ~program:search_lib query) in
          Alcotest.(check (list string))
            (Printf.sprintf "%s (domains=%d)" query agents)
            reference got)
        [ 1; 2; 4 ])
    or_queries

let test_benchmarks_agree () =
  (* the or-parallel benchmark programs, at their test sizes *)
  List.iter
    (fun name ->
      let b = Programs.find name in
      let size = b.Programs.small_size in
      let program = b.Programs.program size and query = b.Programs.query size in
      let reference = canonical_set (seq ~program query) in
      List.iter
        (fun agents ->
          let got =
            canonical_set
              (run ~config:{ Config.default with agents } ~program query)
          in
          Alcotest.(check (list string))
            (Printf.sprintf "%s (domains=%d)" name agents)
            reference got)
        [ 1; 2; 4 ])
    [ "queen1"; "members"; "puzzle"; "maps" ]

let test_single_domain_order_matches () =
  (* one domain never publishes, so exploration is exactly sequential *)
  List.iter
    (fun query ->
      Alcotest.(check (list string)) ("order " ^ query)
        (canonical (seq ~program:search_lib query))
        (canonical
           (run ~config:{ Config.default with agents = 1 } ~program:search_lib
              query)))
    or_queries

let test_single_domain_no_sharing () =
  let r =
    run ~config:{ Config.default with agents = 1 } ~program:search_lib
      "perm([1,2,3,4], P)"
  in
  Alcotest.(check int) "no steals" 0 r.Engine.stats.Stats.steals;
  Alcotest.(check int) "no copies" 0 r.Engine.stats.Stats.copies;
  Alcotest.(check int) "24 permutations" 24 (List.length r.Engine.solutions)

let test_lao_trust_pops () =
  (* every member/2 node's last alternative continues in place *)
  let r =
    run ~config:{ Config.default with agents = 1 } ~program:search_lib
      "member(X, [1,2,3,4,5,6,7,8])"
  in
  Alcotest.(check bool) "lao hits recorded" true
    (r.Engine.stats.Stats.lao_hits > 0)

let test_max_solutions () =
  let config = { Config.default with agents = 2; max_solutions = Some 5 } in
  let r = run ~config ~program:search_lib "pair(X, Y)" in
  Alcotest.(check int) "stops at limit" 5 (List.length r.Engine.solutions)

let test_empty_search_terminates () =
  List.iter
    (fun agents ->
      let r =
        run ~config:{ Config.default with agents } ~program:search_lib
          "nosol(X)"
      in
      Alcotest.(check int)
        (Printf.sprintf "no solutions (domains=%d)" agents)
        0
        (List.length r.Engine.solutions))
    [ 1; 4 ]

let test_undefined_predicate_raises () =
  Alcotest.(check bool) "existence error propagates across domains" true
    (List.for_all
       (fun agents ->
         match
           run ~config:{ Config.default with agents } ~program:"p :- q(1)." "p"
         with
         | _ -> false
         | exception Ace_core.Errors.Engine_error _ -> true)
       [ 1; 2 ])

let test_solution_count_in_stats () =
  let r = run ~config:{ Config.default with agents = 2 } ~program:search_lib
      "pair(X, Y)"
  in
  Alcotest.(check int) "stats.solutions matches list" 12
    r.Engine.stats.Stats.solutions;
  Alcotest.(check int) "twelve pairs" 12 (List.length r.Engine.solutions)

let test_repeated_runs_stable () =
  (* parallel discovery order is nondeterministic; the set is not *)
  let config = { Config.default with agents = 4 } in
  let reference = canonical_set (seq ~program:search_lib "perm([1,2,3,4], P)") in
  for _ = 1 to 5 do
    Alcotest.(check (list string)) "set stable across runs" reference
      (canonical_set (run ~config ~program:search_lib "perm([1,2,3,4], P)"))
  done

let suite =
  [ Alcotest.test_case "agrees with sequential" `Quick test_agrees_with_sequential;
    Alcotest.test_case "benchmarks agree" `Quick test_benchmarks_agree;
    Alcotest.test_case "1-domain order" `Quick test_single_domain_order_matches;
    Alcotest.test_case "1-domain runs privately" `Quick test_single_domain_no_sharing;
    Alcotest.test_case "structural LAO" `Quick test_lao_trust_pops;
    Alcotest.test_case "max_solutions" `Quick test_max_solutions;
    Alcotest.test_case "empty search terminates" `Quick test_empty_search_terminates;
    Alcotest.test_case "undefined predicate" `Quick test_undefined_predicate_raises;
    Alcotest.test_case "stats solution count" `Quick test_solution_count_in_stats;
    Alcotest.test_case "repeated runs stable" `Quick test_repeated_runs_stable ]
