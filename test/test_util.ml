(* Shared helpers for the test suite. *)

module Term = Ace_term.Term
module Config = Ace_machine.Config
module Engine = Ace_core.Engine

let term s = Ace_lang.Parser.term_of_string (s ^ " .")

let check_term msg expected actual =
  Alcotest.(check string) msg expected (Ace_term.Pp.to_string actual)

(* Runs [query] against [program] on [kind]/[config]; returns printed
   solutions. *)
let solutions ?(config = Config.default) ?(kind = Engine.Sequential) program
    query =
  let r = Engine.solve_program kind config ~program ~query in
  List.map Ace_term.Pp.to_string r.Engine.solutions

let sorted_strings xs = List.sort String.compare xs

(* Engines must agree up to solution order. *)
let check_same_solutions msg a b =
  Alcotest.(check (list string)) msg (sorted_strings a) (sorted_strings b)

(* QCheck generator for closed terms (no unbound variables). *)
let ground_term_gen =
  QCheck2.Gen.(
    sized @@ fix (fun self n ->
        if n <= 0 then
          oneof
            [ map (fun i -> Term.Int i) (int_range (-99) 99);
              map
                (fun s -> Term.atom s)
                (oneofl [ "a"; "b"; "foo"; "[]"; "bar_baz"; "+"; "hello world" ]) ]
        else
          frequency
            [ (1, map (fun i -> Term.Int i) (int_range (-99) 99));
              (1, map (fun s -> Term.atom s) (oneofl [ "a"; "f"; "g" ]));
              (3,
               map2
                 (fun name args -> Term.struct_ name (Array.of_list args))
                 (oneofl [ "f"; "g"; "."; "pair" ])
                 (list_size (int_range 1 3) (self (n / 2)))) ]))

(* Terms with a sprinkling of shared variables. *)
let open_term_gen =
  QCheck2.Gen.(
    let* vars = int_range 0 3 in
    let pool = Array.init (max 1 vars) (fun _ -> Term.fresh_var ()) in
    let rec gen n =
      if n <= 0 then
        oneof
          [ map (fun i -> Term.Int i) (int_range 0 9);
            map (fun s -> Term.atom s) (oneofl [ "a"; "b"; "[]" ]);
            map (fun i -> Term.Var pool.(i mod Array.length pool))
              (int_range 0 (Array.length pool - 1)) ]
      else
        frequency
          [ (1, map (fun i -> Term.Var pool.(i mod Array.length pool))
                  (int_range 0 (Array.length pool - 1)));
            (3,
             map2
               (fun name args -> Term.struct_ name (Array.of_list args))
               (oneofl [ "f"; "g"; "." ])
               (list_size (int_range 1 3) (gen (n / 2)))) ]
    in
    sized gen)

(* Property tests run from an explicit seed (no ambient randomness), and
   the seed is part of the test name so any failure replays immediately:
   ACE_QCHECK_SEED=<n> dune runtest. *)
let qcheck_seed =
  match Option.bind (Sys.getenv_opt "ACE_QCHECK_SEED") int_of_string_opt with
  | Some n -> n
  | None -> 0xACE5EED

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    ~rand:(Random.State.make [| qcheck_seed |])
    (QCheck2.Test.make ~count
       ~name:(Printf.sprintf "%s [seed %d]" name qcheck_seed)
       gen prop)
