(* Lexer, parser, clause compilation, database and program tests. *)

module Term = Ace_term.Term
module Lexer = Ace_lang.Lexer
module Parser = Ace_lang.Parser
module Clause = Ace_lang.Clause
module Database = Ace_lang.Database
module Program = Ace_lang.Program
open Test_util

let tokens src =
  List.map (fun l -> l.Lexer.token) (Lexer.tokenize src)

let token_pp = function
  | Lexer.Atom a -> "atom:" ^ a
  | Lexer.Var v -> "var:" ^ v
  | Lexer.Int n -> "int:" ^ string_of_int n
  | Lexer.Str s -> "str:" ^ s
  | Lexer.Punct p -> "punct:" ^ p
  | Lexer.Dot -> "dot"
  | Lexer.Eof -> "eof"

let check_tokens msg expected src =
  Alcotest.(check (list string)) msg expected (List.map token_pp (tokens src))

let test_lexer_basic () =
  check_tokens "atoms and vars"
    [ "atom:foo"; "var:X"; "var:_y"; "int:42"; "dot"; "eof" ]
    "foo X _y 42 .";
  check_tokens "functor paren vs grouping"
    [ "atom:f"; "punct:(("; "var:X"; "punct:)"; "atom:f"; "punct:(";
      "var:X"; "punct:)"; "eof" ]
    "f(X) f (X)";
  check_tokens "symbolic atoms"
    [ "atom::-"; "atom:="; "atom:=.."; "atom:-"; "eof" ]
    ":- = =.. -";
  check_tokens "char code" [ "int:97"; "eof" ] "0'a";
  check_tokens "escaped char code" [ "int:10"; "eof" ] "0'\\n"

let test_lexer_quotes_and_comments () =
  check_tokens "quoted atom" [ "atom:hello world"; "eof" ] "'hello world'";
  check_tokens "doubled quote" [ "atom:it's"; "eof" ] "'it''s'";
  check_tokens "line comment skipped" [ "atom:a"; "atom:b"; "eof" ]
    "a % comment\nb";
  check_tokens "block comment skipped" [ "atom:a"; "atom:b"; "eof" ]
    "a /* multi\nline */ b";
  check_tokens "string" [ "str:hi"; "eof" ] "\"hi\""

let test_lexer_dot_disambiguation () =
  check_tokens "clause dot" [ "atom:a"; "dot"; "atom:b"; "dot"; "eof" ] "a. b.";
  check_tokens "dot at eof" [ "atom:a"; "dot"; "eof" ] "a."

let test_parser_precedence () =
  check_term "comma right assoc" "a, b, c" (term "a, b, c");
  (* the crucial ACE priority: '&' at 950 binds tighter than ','. *)
  Alcotest.(check bool) "par binds tighter than comma" true
    (Term.equal (term "a & b, c") (term "','('&'(a, b), c)"));
  check_term "comma inside par needs parens" "a & (b, c)" (term "a & (b, c)");
  check_term "arith precedence" "1 + 2 * 3" (term "1 + 2 * 3");
  Alcotest.(check bool) "plus of times" true
    (Term.equal (term "1 + 2 * 3") (term "+(1, *(2, 3))"));
  Alcotest.(check bool) "left assoc minus" true
    (Term.equal (term "1 - 2 - 3") (term "-(-(1, 2), 3)"));
  Alcotest.(check bool) "xfy caret" true
    (Term.equal (term "2 ^ 3 ^ 4") (term "^(2, ^(3, 4))"));
  Alcotest.(check bool) "clause op" true
    (Term.equal (term "h :- b") (term ":-(h, b)"))

let test_parser_lists_and_negatives () =
  check_term "list" "[1,2,3]" (term "[1, 2, 3]");
  Alcotest.(check bool) "list tail keeps open end" true
    (let printed = Ace_term.Pp.to_string (term "[1, 2 | X]") in
     String.length printed > 7 && String.sub printed 0 7 = "[1,2|_G");
  check_term "nested list" "[[a],[b,[c]]]" (term "[[a],[b,[c]]]");
  check_term "negative literal" "-5" (term "-5");
  Alcotest.(check bool) "negation of var is struct" true
    (match Term.deref (term "-X") with
     | Term.Struct (s, [| _ |]) when Ace_term.Symbol.name s = "-" -> true
     | _ -> false);
  check_term "arith with negative" "3 - -2" (term "3 - -2")

let test_parser_errors () =
  let fails src =
    match Parser.term_of_string src with
    | exception Parser.Error _ -> true
    | exception Lexer.Error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "missing dot" true (fails "foo(");
  Alcotest.(check bool) "unbalanced paren" true (fails "f(a.");
  Alcotest.(check bool) "two terms" true (fails "a b.");
  Alcotest.(check bool) "unterminated quote" true (fails "'abc.")

let test_variable_scoping () =
  match Parser.read_all "p(X, X, Y). q(X)." with
  | [ c1; c2 ] ->
    Alcotest.(check int) "clause 1 vars" 2 (List.length c1.Parser.var_names);
    Alcotest.(check int) "clause 2 vars" 1 (List.length c2.Parser.var_names);
    let x1 = List.assoc "X" c1.Parser.var_names in
    let x2 = List.assoc "X" c2.Parser.var_names in
    Alcotest.(check bool) "clause-local scope" true (x1.Term.vid <> x2.Term.vid)
  | _ -> Alcotest.fail "expected two clauses"

let test_clause_compilation () =
  let c = Clause.of_term (term "p :- a, (b & (c, d)), e") in
  (match c.Clause.body with
   | [ Clause.Call _; Clause.Par [ b1; b2 ]; Clause.Call _ ] ->
     Alcotest.(check int) "first branch one goal" 1 (List.length b1);
     Alcotest.(check int) "second branch two goals" 2 (List.length b2)
   | _ -> Alcotest.fail "unexpected body structure");
  let fact = Clause.of_term (term "f(1)") in
  Alcotest.(check int) "fact has empty body" 0 (List.length fact.Clause.body);
  Alcotest.(check bool) "malformed head rejected" true
    (match Clause.of_term (term "42 :- true") with
     | exception Clause.Malformed _ -> true
     | _ -> false)

let test_body_roundtrip () =
  (* compare canonical printing: of_term renames clause variables apart, so
     gensym numbers differ between round-trips while structure must not *)
  let check src =
    let c = Clause.of_term (term src) in
    let again = Clause.of_term (Clause.to_term c) in
    Alcotest.(check string) ("roundtrip " ^ src)
      (Ace_term.Pp.to_canonical_string (Clause.to_term c))
      (Ace_term.Pp.to_canonical_string (Clause.to_term again))
  in
  List.iter check
    [ "p :- q"; "p :- q, r"; "p :- q & r"; "p :- a, (b & c), d"; "p(X) :- q(X)" ]

let test_database_indexing () =
  let p =
    Program.consult_string
      "f(0, zero). f(s(N), succ) :- f(N, _). f(foo, atom). g(X) :- f(X, _)."
  in
  let db = Program.db p in
  let lookup s = Option.value ~default:[] (Database.lookup db (term s)) in
  Alcotest.(check int) "int key selects" 1 (List.length (lookup "f(0, R)"));
  Alcotest.(check int) "struct key selects" 1 (List.length (lookup "f(s(0), R)"));
  Alcotest.(check int) "atom key selects" 1 (List.length (lookup "f(foo, R)"));
  Alcotest.(check int) "var key selects all" 3 (List.length (lookup "f(X, R)"));
  Alcotest.(check int) "no key match" 0 (List.length (lookup "f(99, R)"));
  Alcotest.(check bool) "undefined predicate" true
    (Database.lookup db (term "nope(1)") = None);
  Alcotest.(check bool) "f is first-arg exclusive" true
    (Database.first_arg_exclusive db "f" 2);
  (* single-clause predicates are trivially exclusive *)
  Alcotest.(check bool) "single clause exclusive" true
    (Database.first_arg_exclusive db "g" 1);
  let db2 = Program.db (Program.consult_string "h(X, 1) :- q(X).\nh(Y, 2) :- q(Y).\nq(_).") in
  Alcotest.(check bool) "var-headed clauses not exclusive" false
    (Database.first_arg_exclusive db2 "h" 2)

let test_database_order () =
  let db = Database.create () in
  Database.assertz db (Clause.of_term (term "p(1)"));
  Database.assertz db (Clause.of_term (term "p(2)"));
  Database.asserta db (Clause.of_term (term "p(0)"));
  let heads =
    List.map
      (fun c -> Ace_term.Pp.to_string c.Clause.head)
      (Database.clauses_of db "p" 1)
  in
  Alcotest.(check (list string)) "asserta/assertz order" [ "p(0)"; "p(1)"; "p(2)" ]
    heads

let test_database_bucket_order () =
  (* keyed and variable-headed clauses interleaved: the bucketed index
     must still return candidates in source order *)
  let db = Database.create () in
  List.iter
    (fun s -> Database.assertz db (Clause.of_term (term s)))
    [ "m(1, a)"; "m(X, any1)"; "m(1, b)"; "m(2, c)"; "m(X, any2)"; "m(1, d)" ];
  let snd_args cs =
    List.map
      (fun c ->
        match c.Clause.head with
        | Term.Struct (_, [| _; a |]) -> Ace_term.Pp.to_string a
        | _ -> "?")
      cs
  in
  let lookup s = Option.value ~default:[] (Database.lookup db (term s)) in
  Alcotest.(check (list string)) "key 1 in source order"
    [ "a"; "any1"; "b"; "any2"; "d" ]
    (snd_args (lookup "m(1, R)"));
  Alcotest.(check (list string)) "key 2 in source order" [ "any1"; "c"; "any2" ]
    (snd_args (lookup "m(2, R)"));
  Alcotest.(check (list string)) "unbound key sees everything"
    [ "a"; "any1"; "b"; "c"; "any2"; "d" ]
    (snd_args (lookup "m(K, R)"));
  Alcotest.(check (list string)) "unmatched key still sees var clauses"
    [ "any1"; "any2" ]
    (snd_args (lookup "m(9, R)"));
  Database.asserta db (Clause.of_term (term "m(1, front)"));
  Alcotest.(check (list string)) "asserta lands first in its bucket"
    [ "front"; "a"; "any1"; "b"; "any2"; "d" ]
    (snd_args (lookup "m(1, R)"));
  Alcotest.(check bool) "duplicate keys not exclusive" false
    (Database.first_arg_exclusive db "m" 2);
  let db2 = Database.create () in
  List.iter
    (fun s -> Database.assertz db2 (Clause.of_term (term s)))
    [ "k(1, a)"; "k(1, b)"; "k(2, c)" ];
  Alcotest.(check bool) "duplicate keys, no var heads: not exclusive" false
    (Database.first_arg_exclusive db2 "k" 2)

let test_database_assertz_bulk () =
  (* assertz of N clauses is linear: a quadratic append would make this
     test hang rather than fail, but the count and order checks also pin
     the bucket bookkeeping under load *)
  let db = Database.create () in
  let n = 10_000 in
  for i = 1 to n do
    Database.assertz db (Clause.of_term (term (Printf.sprintf "big(%d)" i)))
  done;
  Alcotest.(check int) "all clauses present" n
    (List.length (Database.clauses_of db "big" 1));
  let first_of s =
    match Database.lookup db (term s) with
    | Some [ c ] -> Ace_term.Pp.to_string c.Clause.head
    | _ -> "?"
  in
  Alcotest.(check string) "indexed lookup finds one" "big(7777)"
    (first_of "big(7777)")

let test_program_directives () =
  let p = Program.consult_string ":- mode(f(+, -)). f(X, X)." in
  Alcotest.(check int) "one directive" 1 (List.length (Program.directives p));
  Alcotest.(check bool) "clause asserted" true (Database.mem (Program.db p) "f" 2)

let test_parse_query () =
  let q = Program.parse_query "f(X, Y)" in
  Alcotest.(check int) "two query vars" 2 (List.length q.Program.query_vars);
  let q2 = Program.parse_query "?- g(1)." in
  check_term "?- stripped" "g(1)" q2.Program.goal

(* property: printing then re-parsing gives an equal term *)
let prop_print_parse_roundtrip =
  qcheck "pp/parse round-trip" ground_term_gen (fun t ->
      let printed = Ace_term.Pp.to_string t in
      match Parser.term_of_string (printed ^ " .") with
      | t' -> Term.equal t t'
      | exception _ -> false)

let suite =
  [ Alcotest.test_case "lexer basics" `Quick test_lexer_basic;
    Alcotest.test_case "lexer quotes/comments" `Quick test_lexer_quotes_and_comments;
    Alcotest.test_case "lexer dots" `Quick test_lexer_dot_disambiguation;
    Alcotest.test_case "operator precedence" `Quick test_parser_precedence;
    Alcotest.test_case "lists and negatives" `Quick test_parser_lists_and_negatives;
    Alcotest.test_case "parse errors" `Quick test_parser_errors;
    Alcotest.test_case "variable scoping" `Quick test_variable_scoping;
    Alcotest.test_case "clause compilation" `Quick test_clause_compilation;
    Alcotest.test_case "body round-trip" `Quick test_body_roundtrip;
    Alcotest.test_case "database indexing" `Quick test_database_indexing;
    Alcotest.test_case "database order" `Quick test_database_order;
    Alcotest.test_case "database bucket order" `Quick test_database_bucket_order;
    Alcotest.test_case "database bulk assertz" `Quick test_database_assertz_bulk;
    Alcotest.test_case "program directives" `Quick test_program_directives;
    Alcotest.test_case "parse query" `Quick test_parse_query;
    prop_print_parse_roundtrip ]
