(* The clause compiler: golden instruction listings, switch-on-term
   dispatch through the frozen database, the seeded mutation hook, and
   compiled-vs-interpreted solution equivalence. *)

module Term = Ace_term.Term
module Code = Ace_lang.Code
module Clause = Ace_lang.Clause
module Database = Ace_lang.Database
module Program = Ace_lang.Program
module Config = Ace_machine.Config
module Engine = Ace_core.Engine
module Canon = Ace_check.Canon
module Gen_prog = Ace_check.Gen_prog

let compiled = { Config.default with Config.compile = true }

let clause_of program name arity idx =
  let db = Program.db (Program.consult_string program) in
  match List.nth_opt (Database.clauses_of db name arity) idx with
  | Some c -> c
  | None -> Alcotest.failf "no clause %d of %s/%d" idx name arity

let check_listing msg program name arity expected =
  let actual = Code.listing (Code.compile (clause_of program name arity 0)) in
  Alcotest.(check string) msg expected actual

(* ------------------------------------------------------------------ *)
(* Golden listings                                                     *)
(* ------------------------------------------------------------------ *)

let test_listing_fact () =
  check_listing "atom and int arguments" "p(a, 42)." "p" 2
    "  get_atom a, A0\n  get_int 42, A1\n"

let test_listing_ground () =
  (* a fully ground compound argument collapses to one shared template *)
  check_listing "ground argument" "d(point(1, 2))." "d" 1
    "  get_ground point(1,2), A0\n"

let test_listing_deep () =
  (* nested structures open read/write-mode unify ranges closed by pop;
     the list cell is ./2.  Frame slots are ordered by descending last
     occurrence (environment trimming), so H and T — live until the
     final call — get X0/X1 and the head-only X gets the last slot.  The
     body loads the callee's arguments into registers and [execute]s it:
     the last call drops the frame before the callee runs. *)
  check_listing "deep structure head"
    "p2(f(g(X), [H | T]), X) :- q(H, T)." "p2" 2
    (String.concat "\n"
       [ "  get_struct f/2, A0";
         "    unify_struct g/1";
         "      unify_var X2";
         "    pop";
         "    unify_struct ./2";
         "      unify_var X0";
         "      unify_var X1";
         "    pop";
         "  pop";
         "  get_val X2, A1";
         "  put_val X0, A0";
         "  put_val X1, A1";
         "  execute q/2";
         "" ])

let test_listing_arith () =
  (* builtins dispatch straight from the registers — no goal term is
     ever built for them, so the whole body runs on the scratch frame *)
  check_listing "arithmetic body"
    "s(N, F) :- N > 0, M is N - 1, F is M * 2." "s" 2
    (String.concat "\n"
       [ "  get_var X2, A0";
         "  get_var X0, A1";
         "  put_val X2, A0";
         "  put_int 0, A1";
         "  builtin >/2";
         "  put_var X1, A0";
         "  put_struct -(X2,1), A1";
         "  builtin is/2";
         "  put_val X0, A0";
         "  put_struct *(X1,2), A1";
         "  builtin is/2";
         "" ])

let test_listing_chain () =
  (* a non-final user call spills the frame: [call] carries the number of
     slots still live after it — X2 (only occurrence in the head and the
     first call) is trimmed away, X0/X1 survive to the last call *)
  check_listing "chained calls"
    "r(X, Y) :- q(X, Z), t(Z, Y)." "r" 2
    (String.concat "\n"
       [ "  get_var X2, A0";
         "  get_var X0, A1";
         "  put_val X2, A0";
         "  put_var X1, A1";
         "  call q/2, trim 2";
         "  put_val X1, A0";
         "  put_val X0, A1";
         "  execute t/2";
         "" ])

(* ------------------------------------------------------------------ *)
(* Switch-on-term dispatch                                             *)
(* ------------------------------------------------------------------ *)

(* Mixed first arguments: atoms, structures sharing a functor, lists and
   a catch-all variable clause.  The dispatch tree must prune clauses a
   bound first argument cannot match while keeping every variable clause
   and preserving source order. *)
let mixed =
  "m(a, 1). m(b, 2). m(f(c), 3). m(f(d), 4). m([], 5). m([x], 6). m(X, 7)."

let mixed_db =
  lazy
    (let db = Program.db (Program.consult_string mixed) in
     Database.freeze db;
     db)

let candidates goal =
  match Database.lookup_code (Lazy.force mixed_db) (Test_util.term goal) with
  | Some cs -> List.length cs
  | None -> Alcotest.failf "unexpectedly undefined: %s" goal

let test_dispatch_counts () =
  let expect = Alcotest.(check int) in
  (* each bound atom keeps its own clause plus the variable clause *)
  expect "m(a, R)" 2 (candidates "m(a, R)");
  expect "m(b, R)" 2 (candidates "m(b, R)");
  (* deep indexing splits f(c) from f(d) on the argument inside f/1 *)
  expect "m(f(c), R)" 2 (candidates "m(f(c), R)");
  expect "m(f(d), R)" 2 (candidates "m(f(d), R)");
  (* f with an unbound argument keeps both f/1 clauses *)
  expect "m(f(Z), R)" 3 (candidates "m(f(Z), R)");
  expect "m([], R)" 2 (candidates "m([], R)");
  expect "m([x], R)" 2 (candidates "m([x], R)");
  (* [y] matches no list clause's content but still reaches ./2's
     variable-argument clauses: only the catch-all plus m([x],_)'s
     cons-cell shape survive *)
  expect "m([y], R)" 2 (candidates "m([y], R)");
  (* unbound first argument: no pruning at all *)
  expect "m(X, R)" 7 (candidates "m(X, R)");
  (* an integer matches only the variable clause *)
  expect "m(99, R)" 1 (candidates "m(99, R)");
  Alcotest.(check bool)
    "undefined predicate is [None], not []" true
    (Database.lookup_code (Lazy.force mixed_db) (Test_util.term "zz(1)")
     = None)

(* Pruning must be invisible to semantics: the compiled engine's answers
   on every dispatch shape equal the interpreter's. *)
let test_dispatch_solutions () =
  List.iter
    (fun goal ->
      let query = goal ^ " ." in
      let run config =
        (Engine.solve_program Engine.Sequential config ~program:mixed ~query)
          .Engine.solutions
      in
      Alcotest.(check (list string))
        goal
        (Canon.multiset (run Config.default))
        (Canon.multiset (run compiled)))
    [ "m(a, R)"; "m(f(c), R)"; "m(f(Z), R)"; "m([], R)"; "m([x], R)";
      "m([y], R)"; "m(X, R)"; "m(99, R)" ]

(* ------------------------------------------------------------------ *)
(* Mutation hook                                                       *)
(* ------------------------------------------------------------------ *)

let test_mutation_hook () =
  let c = clause_of "p(a, 42)." "p" 2 0 in
  let clean = Code.listing (Code.compile c) in
  Fun.protect
    ~finally:(fun () -> Code.mutation := None)
    (fun () ->
      Code.mutation := Some 0;
      let mutated = Code.listing (Code.compile c) in
      Alcotest.(check bool)
        "seeded mutation rewrites an instruction" true (clean <> mutated));
  Alcotest.(check string)
    "clearing the hook restores clean compilation" clean
    (Code.listing (Code.compile c))

let test_mutation_body () =
  (* the mutation point ordering visits body steps before head
     instructions, so seed 0 must rewrite body code while leaving the
     head untouched — this is what keeps the differential checker's
     must-fail smoke sensitive to the body compiler *)
  let c = clause_of "r(X, Y) :- q(X, Z), t(Z, Y)." "r" 2 0 in
  let clean = Code.listing (Code.compile c) in
  let head_lines s =
    String.split_on_char '\n' s
    |> List.filter (fun l -> String.length l > 4 && l.[2] = 'g' (* get_* *))
  in
  Fun.protect
    ~finally:(fun () -> Code.mutation := None)
    (fun () ->
      Code.mutation := Some 0;
      let mutated = Code.listing (Code.compile c) in
      Alcotest.(check bool)
        "seed 0 rewrites a body step" true (clean <> mutated);
      Alcotest.(check (list string))
        "head instructions untouched" (head_lines clean) (head_lines mutated))

(* ------------------------------------------------------------------ *)
(* Last-call optimization                                              *)
(* ------------------------------------------------------------------ *)

let test_lco_constant_space () =
  (* a determinate recursion whose body is builtins + a final call runs
     entirely on the reusable scratch frame: tens of thousands of
     iterations must allocate zero environments (and, incidentally, no
     choice points until the base case) *)
  let program = "count(0). count(N) :- N > 0, M is N - 1, count(M)." in
  let r =
    Engine.solve_program Engine.Sequential compiled ~program
      ~query:"count(20000) ."
  in
  Alcotest.(check int) "one solution" 1 (List.length r.Engine.solutions);
  Alcotest.(check int)
    "no environment allocated over 20k iterations" 0
    r.Engine.stats.Ace_machine.Stats.env_allocs

(* ------------------------------------------------------------------ *)
(* Compiled = interpreted (property)                                   *)
(* ------------------------------------------------------------------ *)

let equivalence_prop =
  Test_util.qcheck ~count:100 "compiled = interpreted (seq, alpha-canonical)"
    QCheck2.Gen.(int_range 0 1_000_000)
    (fun seed ->
      let p = Gen_prog.generate ~seed in
      let program = Gen_prog.program_text p in
      let query = Gen_prog.query_text p in
      let run config =
        (Engine.solve_program Engine.Sequential config ~program ~query)
          .Engine.solutions
      in
      Canon.equal (run Config.default) (run compiled))

let suite =
  [ Alcotest.test_case "listing: fact" `Quick test_listing_fact;
    Alcotest.test_case "listing: ground argument" `Quick test_listing_ground;
    Alcotest.test_case "listing: deep structure" `Quick test_listing_deep;
    Alcotest.test_case "listing: arithmetic body" `Quick test_listing_arith;
    Alcotest.test_case "listing: chained calls" `Quick test_listing_chain;
    Alcotest.test_case "dispatch: candidate counts" `Quick test_dispatch_counts;
    Alcotest.test_case "dispatch: solutions unchanged" `Quick
      test_dispatch_solutions;
    Alcotest.test_case "mutation hook" `Quick test_mutation_hook;
    Alcotest.test_case "mutation: body code" `Quick test_mutation_body;
    Alcotest.test_case "lco: constant environment space" `Quick
      test_lco_constant_space;
    equivalence_prop ]
