(* Observability layer: JSON round-trips, trace ring-buffer semantics
   (overflow, per-domain monotone timestamps, no tearing under 4 real
   domains), the Chrome trace_event exporter, and metric histograms. *)

module Json = Ace_obs.Json
module Trace = Ace_obs.Trace
module Metrics = Ace_obs.Metrics
module Stats = Ace_machine.Stats

(* ------------------------------------------------------------------ *)
(* Json                                                                *)
(* ------------------------------------------------------------------ *)

let parse_ok s =
  match Json.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "parse %S: %s" s msg

let test_json_roundtrip () =
  let v =
    Json.Obj
      [ ("name", Json.Str "q\"uo\\te\n\t");
        ("n", Json.int 42);
        ("x", Json.Num 1.5);
        ("flag", Json.Bool true);
        ("nothing", Json.Null);
        ("xs", Json.List [ Json.int 1; Json.int (-2); Json.Str "" ]) ]
  in
  let s = Json.to_string v in
  let v' = parse_ok s in
  Alcotest.(check string) "print-parse-print fixpoint" s (Json.to_string v');
  Alcotest.(check bool) "values equal" true (v = v')

let test_json_parse_misc () =
  (match Json.parse "[1, 2" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "unterminated array must not parse");
  (match Json.parse "{\"a\": 1} trailing" with
   | Error _ -> ()
   | Ok _ -> Alcotest.fail "trailing garbage must not parse");
  let v = parse_ok {| {"a": [1, -2.5e1, "A"], "b": {"c": null}} |} in
  (match Json.member "a" v with
   | Some (Json.List [ Json.Num 1.0; Json.Num -25.0; Json.Str "A" ]) -> ()
   | _ -> Alcotest.fail "nested members");
  match Json.member "b" v with
  | Some b ->
    Alcotest.(check bool) "nested null" true (Json.member "c" b = Some Json.Null)
  | None -> Alcotest.fail "missing b"

(* The profiler JSON carries per-predicate nanosecond totals, so Num
   printing must be lossless for every integer up to 2^53 and must
   round-trip exponent-form floats. *)
let test_json_float_roundtrip () =
  let roundtrip v =
    match Json.parse (Json.to_string v) with
    | Ok v' -> v'
    | Error m -> Alcotest.failf "reparse %s: %s" (Json.to_string v) m
  in
  (* large integral timestamps, lossless up to 2^53 *)
  List.iter
    (fun n ->
      let v = Json.Num n in
      match roundtrip v with
      | Json.Num n' ->
        Alcotest.(check bool)
          (Printf.sprintf "lossless integral %.0f" n)
          true (n = n')
      | _ -> Alcotest.fail "number reparsed as non-number")
    [ 0.; 1.; 1.7e9; 1_702_000_123_456_789.; 2. ** 53.; -.(2. ** 53.);
      (2. ** 53.) -. 1. ];
  (* exponent-form and fractional floats *)
  List.iter
    (fun n ->
      match roundtrip (Json.Num n) with
      | Json.Num n' ->
        Alcotest.(check (float 1e-12))
          (Printf.sprintf "float %g" n)
          n n'
      | _ -> Alcotest.fail "number reparsed as non-number")
    [ 1.5; -2.5e1; 6.02e23; 1e-9; 3.14159265358979 ];
  (* exponent syntax variants parse to the same value *)
  List.iter
    (fun (s, expect) ->
      match Json.parse s with
      | Ok (Json.Num n) ->
        Alcotest.(check (float 1e-9)) ("parse " ^ s) expect n
      | Ok _ -> Alcotest.failf "parse %s: not a number" s
      | Error m -> Alcotest.failf "parse %s: %s" s m)
    [ ("1e15", 1e15); ("2.5E-3", 2.5e-3); ("-1.25e+2", -125.) ]

(* ------------------------------------------------------------------ *)
(* Trace rings                                                         *)
(* ------------------------------------------------------------------ *)

let test_ring_overflow () =
  let t = Trace.create ~capacity:8 () in
  let b = Trace.buffer t ~dom:0 in
  for i = 1 to 20 do
    Trace.record_at b ~ts:i Trace.Copy i
  done;
  let events = Trace.events t in
  Alcotest.(check int) "ring keeps capacity" 8 (List.length events);
  Alcotest.(check int) "recorded counts everything" 20 (Trace.recorded t);
  Alcotest.(check int) "dropped = recorded - kept" 12 (Trace.dropped t);
  (* the *newest* events survive, in order *)
  Alcotest.(check (list int)) "newest survive"
    [ 13; 14; 15; 16; 17; 18; 19; 20 ]
    (List.map (fun e -> e.Trace.e_arg) events)

let test_ring_monotone_clamp () =
  let t = Trace.create ~capacity:16 () in
  let b = Trace.buffer t ~dom:3 in
  (* non-monotone input timestamps must come out strictly increasing *)
  List.iter (fun ts -> Trace.record_at b ~ts Trace.Steal 0) [ 5; 5; 3; 9; 1 ];
  let ts = List.map (fun e -> e.Trace.e_ts) (Trace.events t) in
  Alcotest.(check (list int)) "clamped strictly monotone" [ 5; 6; 7; 9; 10 ] ts;
  List.iter
    (fun e -> Alcotest.(check int) "domain tag" 3 e.Trace.e_dom)
    (Trace.events t)

(* Overflow combined with the monotone clamp: wrap the ring with
   deliberately non-monotone input stamps and assert drop-oldest
   semantics plus still-monotone surviving timestamps. *)
let test_ring_wrap_monotone () =
  let t = Trace.create ~capacity:8 () in
  let b = Trace.buffer t ~dom:0 in
  for i = 1 to 30 do
    (* stamps zig-zag: 10, 9, 12, 11, 14, ... *)
    let ts = (10 + i) - (2 * (i mod 2)) in
    Trace.record_at b ~ts Trace.Copy i
  done;
  let events = Trace.events t in
  Alcotest.(check int) "capacity kept after wrap" 8 (List.length events);
  Alcotest.(check int) "dropped oldest" 22 (Trace.dropped t);
  Alcotest.(check (list int)) "newest args survive in order"
    [ 23; 24; 25; 26; 27; 28; 29; 30 ]
    (List.map (fun e -> e.Trace.e_arg) events);
  ignore
    (List.fold_left
       (fun last e ->
         Alcotest.(check bool) "timestamps strictly monotone after wrap" true
           (e.Trace.e_ts > last);
         e.Trace.e_ts)
       min_int events)

let test_disabled_noop () =
  let b = Trace.buffer Trace.disabled ~dom:0 in
  for i = 1 to 1000 do
    Trace.record b Trace.Copy i
  done;
  Alcotest.(check int) "disabled records nothing" 0 (Trace.recorded Trace.disabled);
  Alcotest.(check bool) "now_ns works on null" true (Trace.now_ns b >= 0)

(* Four real domains hammer their own rings concurrently; after joining,
   every buffer must hold exactly its own domain's events (no tearing:
   kind and arg were written by the same recorder) in per-domain recording
   order. *)
let test_concurrent_domains () =
  let per_domain = 5_000 and doms = 4 in
  let t = Trace.create ~capacity:1024 () in
  let buffers = Array.init doms (fun d -> Trace.buffer t ~dom:d) in
  let worker d () =
    let b = buffers.(d) in
    for i = 0 to per_domain - 1 do
      (* the arg encodes (domain, seq) so a torn or misrouted write is
         detectable after the merge *)
      Trace.record b Trace.Copy ((d * per_domain) + i)
    done
  in
  let spawned = Array.init doms (fun d -> Domain.spawn (worker d)) in
  Array.iter Domain.join spawned;
  Alcotest.(check int) "all events counted" (doms * per_domain) (Trace.recorded t);
  Alcotest.(check int) "overflow accounted"
    (Trace.recorded t - (doms * 1024))
    (Trace.dropped t);
  let events = Trace.events t in
  Alcotest.(check int) "kept = capacity per domain" (doms * 1024)
    (List.length events);
  let last_ts = Array.make doms min_int in
  let last_arg = Array.make doms min_int in
  List.iter
    (fun e ->
      let d = e.Trace.e_dom in
      Alcotest.(check bool) "kind preserved" true (e.Trace.e_kind = Trace.Copy);
      (* arg belongs to this domain's range: the write was not torn *)
      Alcotest.(check bool) "arg in owner range" true
        (e.Trace.e_arg / per_domain = d);
      (* per-domain ordering: sequence numbers are authoritative; the
         wall clock may be coarse enough for equal stamps, so assert
         order, never gaps *)
      Alcotest.(check bool) "ts non-decreasing per domain" true
        (e.Trace.e_ts >= last_ts.(d));
      Alcotest.(check bool) "seq increasing per domain" true
        (e.Trace.e_arg > last_arg.(d));
      last_ts.(d) <- e.Trace.e_ts;
      last_arg.(d) <- e.Trace.e_arg)
    events

(* ------------------------------------------------------------------ *)
(* Chrome exporter                                                     *)
(* ------------------------------------------------------------------ *)

(* A small deterministic trace covering spans, instants, and an unmatched
   span end (from a wrapped ring) — the golden shape the exporter must
   emit: valid JSON, one thread per domain, balanced B/E per track. *)
let golden_trace () =
  let t = Trace.create ~capacity:64 () in
  let b0 = Trace.buffer t ~dom:0 and b1 = Trace.buffer t ~dom:1 in
  Trace.record_at b0 ~ts:1_000 Trace.Task_start 7;
  Trace.record_at b0 ~ts:2_000 Trace.Copy 120;
  Trace.record_at b0 ~ts:3_000 Trace.Task_finish 7;
  Trace.record_at b1 ~ts:1_500 Trace.Idle_begin 0;
  Trace.record_at b1 ~ts:2_500 Trace.Steal 0;
  Trace.record_at b1 ~ts:2_600 Trace.Idle_end 0;
  Trace.record_at b1 ~ts:2_700 Trace.Task_finish 9 (* no matching start *);
  t

let test_chrome_export () =
  let t = golden_trace () in
  let v = parse_ok (Trace.to_chrome_json t) in
  let events =
    match Json.member "traceEvents" v with
    | Some l -> Option.get (Json.to_list l)
    | None -> Alcotest.fail "no traceEvents"
  in
  let field name e =
    match Json.member name e with
    | Some (Json.Str s) -> s
    | Some (Json.Num n) -> string_of_float n
    | _ -> ""
  in
  let phases tid ph =
    List.filter (fun e -> field "ph" e = ph && field "tid" e = string_of_float (float_of_int tid)) events
  in
  (* one metadata thread_name per domain *)
  List.iter
    (fun tid ->
      Alcotest.(check int)
        (Printf.sprintf "thread_name for domain %d" tid)
        1
        (List.length
           (List.filter (fun e -> field "name" e = "thread_name") (phases tid "M"))))
    [ 0; 1 ];
  (* balanced spans per track: B count = E count *)
  List.iter
    (fun tid ->
      Alcotest.(check int)
        (Printf.sprintf "balanced spans on tid %d" tid)
        (List.length (phases tid "B"))
        (List.length (phases tid "E")))
    [ 0; 1 ];
  (* the unmatched Task_finish on dom 1 was dropped, not emitted as E *)
  Alcotest.(check int) "dom1 task spans" 0
    (List.length (List.filter (fun e -> field "name" e = "task") (phases 1 "B")));
  (* instants carry their arg *)
  let copy =
    List.find (fun e -> field "name" e = "copy") events
  in
  (match Json.member "args" copy with
   | Some args ->
     Alcotest.(check bool) "copy cells arg" true
       (Json.member "n" args = Some (Json.int 120))
   | None -> Alcotest.fail "copy instant has no args");
  (* timestamps are microseconds: 2000 ns -> 2 us *)
  match Json.member "ts" copy with
  | Some (Json.Num us) -> Alcotest.(check (float 1e-9)) "ns->us" 2.0 us
  | _ -> Alcotest.fail "copy has no ts"

let test_jsonl_export () =
  let t = golden_trace () in
  let lines =
    String.split_on_char '\n' (String.trim (Trace.to_jsonl t))
  in
  Alcotest.(check int) "one line per event" 7 (List.length lines);
  List.iter (fun line -> ignore (parse_ok line)) lines

(* ------------------------------------------------------------------ *)
(* Metrics                                                             *)
(* ------------------------------------------------------------------ *)

let test_hist () =
  let h = Metrics.hist_create () in
  List.iter (Metrics.hist_add h) [ 1; 2; 3; 4; 1000; 0 ];
  Alcotest.(check int) "n" 6 h.Metrics.h_n;
  Alcotest.(check int) "sum" 1010 h.Metrics.h_sum;
  Alcotest.(check int) "max" 1000 h.Metrics.h_max;
  Alcotest.(check (float 1e-6)) "mean" (1010.0 /. 6.0) (Metrics.hist_mean h);
  (* log2 buckets by bit count: <=0 | 1 | 2..3 | 4..7 | 512..1023 *)
  Alcotest.(check (list (pair int int))) "buckets"
    [ (0, 1); (1, 1); (3, 2); (7, 1); (1023, 1) ]
    (Metrics.hist_buckets h);
  let h2 = Metrics.hist_create () in
  Metrics.hist_add h2 4;
  Metrics.hist_merge_into ~into:h2 h;
  Alcotest.(check int) "merged n" 7 h2.Metrics.h_n;
  Alcotest.(check int) "merged max" 1000 h2.Metrics.h_max

let test_metrics_total_and_util () =
  let m = Metrics.create ~domains:2 in
  let s0 = Metrics.stats m 0 and s1 = Metrics.stats m 1 in
  s0.Stats.solutions <- 2;
  s1.Stats.solutions <- 3;
  s0.Stats.steals <- 1;
  (Metrics.shard m 0).Metrics.s_busy_ns <- 900;
  (Metrics.shard m 0).Metrics.s_idle_ns <- 100;
  let total = Metrics.total m in
  Alcotest.(check int) "summed solutions" 5 total.Stats.solutions;
  Alcotest.(check bool) "total is fresh" true
    (total != s0 && total != s1);
  match Metrics.utilization m with
  | [ u0; u1 ] ->
    Alcotest.(check (float 1e-6)) "busy fraction" 0.9 u0.Metrics.u_busy_frac;
    Alcotest.(check int) "steals" 1 u0.Metrics.u_steals;
    Alcotest.(check int) "solutions" 3 u1.Metrics.u_solutions
  | _ -> Alcotest.fail "expected two domains"

let test_metrics_json () =
  let m = Metrics.create ~domains:2 in
  (Metrics.stats m 1).Stats.copies <- 7;
  let v = parse_ok (Json.to_string (Metrics.to_json m)) in
  (match Json.member "total" v with
   | Some total ->
     Alcotest.(check bool) "total.copies" true
       (Json.member "copies" total = Some (Json.int 7))
   | None -> Alcotest.fail "no total");
  match Json.member "shards" v with
  | Some l ->
    Alcotest.(check int) "two shards" 2
      (List.length (Option.get (Json.to_list l)))
  | None -> Alcotest.fail "no shards"

let suite =
  [ Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
    Alcotest.test_case "json parse misc" `Quick test_json_parse_misc;
    Alcotest.test_case "json float roundtrip" `Quick test_json_float_roundtrip;
    Alcotest.test_case "ring overflow" `Quick test_ring_overflow;
    Alcotest.test_case "ring monotone clamp" `Quick test_ring_monotone_clamp;
    Alcotest.test_case "ring wrap stays monotone" `Quick
      test_ring_wrap_monotone;
    Alcotest.test_case "disabled no-op" `Quick test_disabled_noop;
    Alcotest.test_case "concurrent domains" `Quick test_concurrent_domains;
    Alcotest.test_case "chrome export" `Quick test_chrome_export;
    Alcotest.test_case "jsonl export" `Quick test_jsonl_export;
    Alcotest.test_case "histograms" `Quick test_hist;
    Alcotest.test_case "metrics total+util" `Quick test_metrics_total_and_util;
    Alcotest.test_case "metrics json" `Quick test_metrics_json ]
